package liferaft_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"liferaft"
)

// TestPublicAPIEndToEnd drives the whole documented surface the way the
// quickstart does: catalogs, partition, trace, engine, metrics.
func TestPublicAPIEndToEnd(t *testing.T) {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 30_000, Seed: 1, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 2, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 300, 0)
	if err != nil {
		t.Fatal(err)
	}

	tcfg := liferaft.DefaultTraceConfig(3)
	tcfg.NumQueries = 20
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.3, 1.0
	trace, err := liferaft.GenerateTrace(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []liferaft.Job
	var offs []time.Duration
	for i, q := range trace.Queries {
		jobs = append(jobs, liferaft.Job{
			ID:      q.ID,
			Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed),
			Pred:    q.Predicate(),
		})
		offs = append(offs, time.Duration(i)*200*time.Millisecond)
	}

	cfg, clk := liferaft.NewVirtualConfig(part, 0.25, true)
	if clk == nil {
		t.Fatal("clock missing")
	}
	results, stats, err := liferaft.Run(cfg, jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) || stats.Completed != len(jobs) {
		t.Fatalf("completed %d of %d", len(results), len(jobs))
	}
	matches := 0
	resp := make([]float64, len(results))
	for i, r := range results {
		matches += r.Matches
		resp[i] = r.ResponseTime().Seconds()
	}
	if matches == 0 {
		t.Fatal("no cross-matches through the public API")
	}
	s := liferaft.Summarize(resp)
	if s.Count != int64(len(results)) || math.IsNaN(s.CoV) {
		t.Fatalf("summary malformed: %+v", s)
	}
}

// TestPublicAPIGeometry exercises the geometry and HTM aliases.
func TestPublicAPIGeometry(t *testing.T) {
	v := liferaft.FromRaDec(187.5, 12.3)
	ra, dec := liferaft.ToRaDec(v)
	if math.Abs(ra-187.5) > 1e-9 || math.Abs(dec-12.3) > 1e-9 {
		t.Fatalf("round trip = (%v, %v)", ra, dec)
	}
	id := liferaft.HTMLookup(v, 14)
	if !id.Contains(v) {
		t.Fatal("HTM lookup does not contain point")
	}
	cover := liferaft.CoverCap(liferaft.NewCap(v, liferaft.ArcsecToRad(5)), 14)
	if len(cover) == 0 {
		t.Fatal("empty cover")
	}
	found := false
	for _, r := range cover {
		if r.Contains(id) {
			found = true
		}
	}
	if !found {
		t.Fatal("cover misses the center trixel")
	}
}

// TestPublicAPIDiskCalibration verifies the exported disk model carries
// the paper's constants.
func TestPublicAPIDiskCalibration(t *testing.T) {
	m := liferaft.SkyQueryDisk()
	tb, tm := m.Calibrate(40 << 20)
	if math.Abs(tb.Seconds()-1.2) > 0.06 {
		t.Errorf("Tb = %v", tb)
	}
	if tm != 130*time.Microsecond {
		t.Errorf("Tm = %v", tm)
	}
}

// TestPublicAPISkewHelpers exercises the metrics aliases.
func TestPublicAPISkewHelpers(t *testing.T) {
	ws := []float64{8, 1, 1}
	cum := liferaft.CumulativeShare(ws)
	if cum[0] != 0.8 {
		t.Errorf("share = %v", cum)
	}
	if liferaft.RankForShare(ws, 0.5) != 1 {
		t.Error("rank")
	}
}

// TestPublicAPISharded exercises the sharded-engine surface: the Shards
// knob, both partitioners, the shard map, and the PerShard breakdown.
func TestPublicAPISharded(t *testing.T) {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 12_800, Seed: 11, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 12, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0) // 32 buckets
	if err != nil {
		t.Fatal(err)
	}
	m, err := liferaft.NewShardMap(part, 4, liferaft.ShardByHTMHash{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < m.Shards(); s++ {
		total += m.Buckets(s)
	}
	if total != part.NumBuckets() {
		t.Fatalf("shard map covers %d of %d buckets", total, part.NumBuckets())
	}

	tcfg := liferaft.DefaultTraceConfig(13)
	tcfg.NumQueries = 24
	tcfg.HotFraction = 0
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.3, 1.0
	trace, err := liferaft.GenerateTrace(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []liferaft.Job
	var offs []time.Duration
	for i, q := range trace.Queries {
		jobs = append(jobs, liferaft.Job{
			ID: q.ID, Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed), Pred: q.Predicate(),
		})
		offs = append(offs, time.Duration(i)*time.Millisecond)
	}
	var single liferaft.RunStats
	for _, shards := range []int{1, 4} {
		cfg, _ := liferaft.NewVirtualConfig(part, 0.25, true)
		cfg.Shards = shards
		var p liferaft.ShardPartitioner = liferaft.ShardByRange{}
		cfg.ShardPartitioner = p
		results, stats, err := liferaft.Run(cfg, jobs, offs)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(jobs) {
			t.Fatalf("shards=%d: %d of %d completed", shards, len(results), len(jobs))
		}
		if shards == 1 {
			single = stats
			if stats.PerShard != nil {
				t.Error("single-disk run should have no PerShard breakdown")
			}
			continue
		}
		if len(stats.PerShard) != shards {
			t.Fatalf("PerShard has %d entries, want %d", len(stats.PerShard), shards)
		}
		var ss liferaft.ShardStats = stats.PerShard[0]
		if ss.Buckets == 0 {
			t.Error("shard 0 owns no buckets under a range split")
		}
		if stats.Disk.Matches != single.Disk.Matches {
			t.Errorf("sharded run charged %d matches, single-disk %d",
				stats.Disk.Matches, single.Disk.Matches)
		}
		if stats.Makespan >= single.Makespan {
			t.Errorf("4 shards (%v) not faster than 1 (%v)", stats.Makespan, single.Makespan)
		}
	}
}

// TestPublicServingAPI drives the exported multi-tenant serving surface:
// NewServer over a Live engine, admission, backpressure, cancellation,
// and per-tenant stats.
func TestPublicServingAPI(t *testing.T) {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 12_000, Seed: 5, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 6, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := liferaft.DefaultTraceConfig(7)
	tcfg.NumQueries = 8
	trace, err := liferaft.GenerateTrace(tcfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg, _ := liferaft.NewVirtualConfig(part, 0.25, false)
	cfg.Shards = 2
	eng, err := liferaft.NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := liferaft.NewServer(eng, liferaft.ServerConfig{
		Tenants: []liferaft.TenantConfig{{Name: "vip", Weight: 4, Rate: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for i, q := range trace.Queries {
		job := liferaft.Job{
			ID: uint64(i + 1), Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed),
		}
		for j := range job.Objects {
			job.Objects[j].QueryID = job.ID
		}
		ch, err := srv.Submit(context.Background(), "vip", job)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := <-ch; !ok || r.Cancelled {
			t.Fatalf("query %d: result %+v ok=%v", job.ID, r, ok)
		}
	}
	var st liferaft.ServerStats = srv.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("tenants = %+v", st.Tenants)
	}
	var ts liferaft.TenantStats = st.Tenants[0]
	if ts.Tenant != "vip" || ts.Completed != int64(len(trace.Queries)) || ts.Weight != 4 {
		t.Errorf("tenant stats = %+v", ts)
	}
	var sum liferaft.Summary = ts.RespTime
	if sum.Count != int64(len(trace.Queries)) {
		t.Errorf("resp summary count = %d", sum.Count)
	}

	// The overload error surfaces typed through the public alias.
	srv2, err := liferaft.NewServer(eng, liferaft.ServerConfig{MaxTenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if _, err := srv2.Submit(context.Background(), "a", liferaft.Job{ID: 900}); err != nil {
		t.Fatal(err)
	}
	_, err = srv2.Submit(context.Background(), "b", liferaft.Job{ID: 901})
	var over *liferaft.OverloadError
	if !errors.As(err, &over) || over.Reason != liferaft.OverloadTenants {
		t.Errorf("err = %v, want OverloadTenants", err)
	}
}

module liferaft

go 1.24

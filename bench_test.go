// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, at CI scale (DESIGN.md §2 maps each to its
// experiment). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figure's headline statistic as a custom
// metric alongside the usual ns/op, so `go test -bench` output doubles as
// a reproduction summary.
package liferaft_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"liferaft"
	"liferaft/internal/core"
	"liferaft/internal/exper"
	"liferaft/internal/zones"
)

var (
	benchOnce sync.Once
	benchEnv  *exper.Env
	benchErr  error
)

func env(b *testing.B) *exper.Env {
	b.Helper()
	benchOnce.Do(func() {
		scale := exper.CI()
		scale.NumQueries = 400
		benchEnv, benchErr = exper.NewEnv(scale)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkFig2HybridJoin regenerates the Figure 2 scan-vs-index sweep.
func BenchmarkFig2HybridJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := exper.Fig2(nil)
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig5WorkloadReuse regenerates the Figure 5 top-bucket
// characterization.
func BenchmarkFig5WorkloadReuse(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exper.Fig5(e)
	}
}

// BenchmarkFig6WorkloadSkew regenerates the Figure 6 cumulative-share
// characterization.
func BenchmarkFig6WorkloadSkew(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exper.Fig6(e)
	}
}

// BenchmarkFig7Schedulers regenerates the Figure 7 algorithm comparison
// (NoShare, LifeRaft across α, RR) and reports the headline greedy-over-
// NoShare throughput ratio.
func BenchmarkFig7Schedulers(b *testing.B) {
	e := env(b)
	offs := e.SaturatedOffsets()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, ns, err := core.RunNoShare(e.Config(0), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		_, greedy, err := core.Run(e.Config(0), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		ratio = greedy.Throughput() / ns.Throughput()
	}
	b.ReportMetric(ratio, "greedy/noshare-x")
}

// BenchmarkFig8Saturation regenerates one column of the Figure 8 sweep
// (all α at the highest saturation).
func BenchmarkFig8Saturation(b *testing.B) {
	e := env(b)
	cap, err := e.Capacity()
	if err != nil {
		b.Fatal(err)
	}
	offs := e.PoissonOffsets(1.25 * cap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if _, _, err := core.Run(e.Config(alpha), e.Jobs, offs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4Tradeoff builds the Figure 4 trade-off curve at one
// saturation via BuildCurve.
func BenchmarkFig4Tradeoff(b *testing.B) {
	e := env(b)
	cap, err := e.Capacity()
	if err != nil {
		b.Fatal(err)
	}
	offs := e.PoissonOffsets(0.5 * cap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.BuildCurve(nil, func(alpha float64) ([]core.Result, core.RunStats, error) {
			return core.Run(e.Config(alpha), e.Jobs, offs)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexOnly regenerates the §5 index-only-vs-NoShare comparison
// and reports the slowdown.
func BenchmarkIndexOnly(b *testing.B) {
	e := env(b)
	offs := e.SaturatedOffsets()
	b.ResetTimer()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		_, ns, err := core.RunNoShare(e.Config(0), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		_, io, err := core.RunIndexOnly(e.Config(0), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		slowdown = ns.Throughput() / io.Throughput()
	}
	b.ReportMetric(slowdown, "noshare/indexonly-x")
}

// BenchmarkCacheHitRates regenerates the §6 cache observation (α=0 vs α=1)
// and reports both hit rates.
func BenchmarkCacheHitRates(b *testing.B) {
	e := env(b)
	offs := e.SaturatedOffsets()
	b.ResetTimer()
	var greedy, aged float64
	for i := 0; i < b.N; i++ {
		_, s0, err := core.Run(e.Config(0), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		_, s1, err := core.Run(e.Config(1), e.Jobs, offs)
		if err != nil {
			b.Fatal(err)
		}
		greedy, aged = s0.Cache.HitRate(), s1.Cache.HitRate()
	}
	b.ReportMetric(100*greedy, "hit%-α0")
	b.ReportMetric(100*aged, "hit%-α1")
}

// BenchmarkAblationPolicies compares most-contentious-first with
// least-sharable-first and round-robin (the §6 policy discussion).
func BenchmarkAblationPolicies(b *testing.B) {
	e := env(b)
	offs := e.SaturatedOffsets()
	for _, pk := range []core.PolicyKind{core.PolicyLifeRaft, core.PolicyLeastShared, core.PolicyRoundRobin} {
		b.Run(string(pk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := e.Config(0)
				cfg.Policy = pk
				if _, _, err := core.Run(cfg, e.Jobs, offs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The sharded benchmark environment: a uniform (no hotspot) trace over
// exactly 32 equal buckets, the acceptance workload for the sharded
// engine.
var (
	shardOnce sync.Once
	shardPart *liferaft.Partition
	shardJobs []liferaft.Job
	shardOffs []time.Duration
	shardErr  error
)

func shardEnv(b *testing.B) (*liferaft.Partition, []liferaft.Job, []time.Duration) {
	b.Helper()
	shardOnce.Do(func() {
		local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
			Name: "sdss", N: 12800, Seed: 11, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			shardErr = err
			return
		}
		remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
			Name: "twomass", Seed: 12, Fraction: 0.8,
			JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
		})
		if err != nil {
			shardErr = err
			return
		}
		shardPart, err = liferaft.NewPartition(local, 400, 0) // 32 buckets
		if err != nil {
			shardErr = err
			return
		}
		tcfg := liferaft.DefaultTraceConfig(13)
		tcfg.NumQueries = 96
		tcfg.HotFraction = 0 // uniform
		tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.3, 1.0
		trace, err := liferaft.GenerateTrace(tcfg)
		if err != nil {
			shardErr = err
			return
		}
		for _, q := range trace.Queries {
			shardJobs = append(shardJobs, liferaft.Job{
				ID: q.ID, Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed), Pred: q.Predicate(),
			})
		}
		// A saturating uniform stream: makespan is disk-bound.
		shardOffs = make([]time.Duration, len(shardJobs))
		for i := range shardOffs {
			shardOffs[i] = time.Duration(i) * time.Millisecond
		}
	})
	if shardErr != nil {
		b.Fatal(shardErr)
	}
	return shardPart, shardJobs, shardOffs
}

// BenchmarkShardedRun replays the uniform 32-bucket trace through the
// sharded engine at 1, 2, 4, and 8 shards, reporting the virtual-clock
// query throughput (vqps) so the scan-throughput scaling across modeled
// disks is visible alongside the wall-clock cost of the replay itself.
// The acceptance bar is >= 2x vqps at shards=4 versus shards=1
// (TestShardedThroughputScaling in internal/core enforces it).
func BenchmarkShardedRun(b *testing.B) {
	part, jobs, offs := shardEnv(b)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			var vqps float64
			for i := 0; i < b.N; i++ {
				cfg, _ := liferaft.NewVirtualConfig(part, 0.25, false)
				cfg.Shards = k
				_, stats, err := liferaft.Run(cfg, jobs, offs)
				if err != nil {
					b.Fatal(err)
				}
				vqps = stats.Throughput()
			}
			b.ReportMetric(vqps, "vqps")
		})
	}
}

// BenchmarkEndToEndQuery measures the public-API cost of one materialized
// cross-match query through the engine (the quickstart path).
func BenchmarkEndToEndQuery(b *testing.B) {
	e := env(b)
	job := e.Jobs[0]
	for job.Objects == nil {
		b.Fatal("fixture job empty")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, _ := liferaft.NewVirtualConfig(e.Part, 0.25, false)
		if _, _, err := liferaft.Run(cfg, []liferaft.Job{job}, []time.Duration{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZonesVsMergeJoin compares the paper's HTM-sorted merge join
// with the Zones algorithm (Gray et al., the paper's ref [8]) on the same
// bucket-sized inputs — the two scan-based cross-match formulations must
// agree on results and differ only in constant factors.
func BenchmarkZonesVsMergeJoin(b *testing.B) {
	e := env(b)
	objs := e.Part.Materialize(0)
	var queue []liferaft.WorkloadObject
	for _, j := range e.Jobs {
		for _, wo := range j.Objects {
			if wo.MinID >= e.Part.Bucket(0).Span.Start && wo.MaxID <= e.Part.Bucket(0).Span.End {
				queue = append(queue, wo)
			}
		}
	}
	if len(queue) == 0 {
		// Synthesize a queue from the bucket itself.
		for i := 0; i < 64 && i < len(objs); i += 2 {
			queue = append(queue, liferaft.NewWorkloadObject(1, objs[i], liferaft.ArcsecToRad(5)))
		}
	}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			liferaft.MergeJoin(objs, queue, nil)
		}
	})
	b.Run("zones", func(b *testing.B) {
		idx, err := zones.NewIndex(objs, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.CrossMatch(queue, nil)
		}
	})
}

// Package liferaft is a Go implementation of LifeRaft (Wang, Burns, Malik;
// CIDR 2009): a data-driven, batch query scheduler for data-intensive
// scientific databases. Instead of evaluating queries in arrival order,
// LifeRaft decomposes each query into per-partition units of work, merges
// the units of concurrent queries that need the same data into shared
// workload queues, and services the partition with the highest *aged
// workload throughput* — a convex blend of data contention and request age
// that trades throughput against starvation the way VSCAN(R) disk
// schedulers trade seek time against wait time.
//
// The module ships everything the paper's system depended on, built from
// scratch: HTM sky indexing, equal-sized bucket partitioning, a calibrated
// disk cost model, synthetic survey catalogs, the cross-match spatial
// join with its hybrid scan/index strategy, SkyQuery-style federation, a
// discrete-event virtual clock, and an experiment harness that regenerates
// every figure in the paper's evaluation.
//
// # Quick start
//
//	local, _ := liferaft.NewCatalog(liferaft.CatalogConfig{
//		Name: "sdss", N: 100_000, Seed: 1, GenLevel: 4, CacheTrixels: true,
//	})
//	part, _ := liferaft.NewPartition(local, 500, 0)
//	cfg, _ := liferaft.NewVirtualConfig(part, 0.25, true)
//	results, stats, _ := liferaft.Run(cfg, jobs, offsets)
//
// See examples/ for complete programs: a quickstart, an in-process
// federation cross-match, the adaptive-α saturation trade-off, a mixed
// interactive/batch workload using the QoS extension, and the sharded
// engine's scan-throughput scaling.
//
// # Sharded execution
//
// The paper's engine drives a single disk arm; this module scales the
// same aged-workload-throughput policy across K disks. Setting
// Config.Shards to K > 1 partitions the bucket space across K shards
// (ShardByRange for contiguous balanced ranges, ShardByHTMHash to spread
// spatial hotspots; the ShardPartitioner interface is pluggable). Each
// shard owns its own modeled disk, bucket cache, and workload queues, and
// a worker per shard services that shard's local LifeRaft schedule. A
// coordinator fans each query's workload objects out to the shards owning
// the buckets they overlap and completes the query when its last shard
// finishes; RunStats merges across shards with a PerShard breakdown. On a
// virtual clock each shard charges costs to its own forked clock, so K
// shards finish in ~1/K the virtual time instead of serializing on one
// modeled disk. Shards <= 1 preserves the paper's single-disk engine —
// and its results — exactly.
//
//	cfg, clk := liferaft.NewVirtualConfig(part, 0.25, false)
//	cfg.Shards = 4
//	results, stats, _ := liferaft.Run(cfg, jobs, offsets)
//	for _, ss := range stats.PerShard { fmt.Println(ss.Shard, ss.Stats.BucketsServed) }
//
// Run, Live engines (NewLive), Adaptive engines, and federation nodes
// (FedNodeConfig.Shards) all accept the knob; cmd/skybench and
// cmd/liferaftd expose it as -shards.
//
// # Multi-tenant serving
//
// The paper trades throughput against starvation per bucket; a production
// archive must make the same trade per client. NewServer wraps a Live
// engine in a serving layer: per-tenant token-bucket rate limits, a
// deficit-round-robin fair queue across tenants, bounded queues with
// explicit backpressure (OverloadError carries a retry-after), and
// deadline/cancellation threading — a query whose context expires is
// withdrawn from the engine's workload queues (Live.SubmitCtx,
// Live.Cancel), so abandoned work stops consuming schedule slots.
//
//	eng, _ := liferaft.NewLive(cfg)
//	srv, _ := liferaft.NewServer(eng, liferaft.ServerConfig{
//		Tenants: []liferaft.TenantConfig{{Name: "vip", Weight: 4}},
//		DefaultRate: 50, QueueDepth: 32,
//	})
//	ch, err := srv.Submit(ctx, "vip", job)
//
// By default admission rates are self-tuning: an AIMD controller cuts
// backlogged tenants' rates when the windowed p99 breaches the configured
// SLO (ServerConfig.SLOP99) and regrows them on headroom; RateStatic
// keeps configured rates fixed. internal/server/DESIGN-overload.md has
// the control-loop design and stability argument.
//
// Federation nodes take the same layer via FedNodeConfig.Serving, and
// cmd/liferaftd exposes it as -rate, -rate-mode, -slo-p99, -queue-depth,
// and -tenants, plus an HTTP+JSON gateway (-http) accepting SkyQL on
// /v1/query with per-tenant stats on /v1/stats and a Prometheus-text
// metric scrape on /metrics. See examples/multitenant for the fairness
// demo, README.md for the daemon walkthrough, and docs/OPERATIONS.md —
// the operator's manual — for every flag, every exported metric, and the
// SLO/AIMD tuning model.
//
// # Persistent storage
//
// The paper reproduction serves every bucket from the analytic disk
// model; the segment store makes the same engine run against real
// disks. WriteSegments (or skygen -write-segments) materializes a
// partition into checksummed, versioned segment files; a Store built by
// NewFileBackedConfig serves buckets from them with pread-based real
// I/O on the real clock, recording measured read times in the disk
// statistics. Sharded engines open one segment set per shard, and
// federation nodes take FedNodeConfig.DataDir (liferaftd -data-dir). A
// parity test proves the file backend makes bit-identical scheduling
// decisions to the simulated disk on the golden traces.
//
//	set, _, err := liferaft.EnsureSegments("/var/lib/liferaft/sdss", part, liferaft.SegmentWriteOptions{})
//	cfg, err := liferaft.NewFileBackedConfigFrom(part, 0.25, true, set) // takes ownership of set
//	defer cfg.Store.Close()
//	results, stats, _ := liferaft.Run(cfg, jobs, offsets) // stats.Disk measured, not modeled
//
// See examples/persist and internal/segment/DESIGN-segments.md.
//
// # Contributing
//
// See README.md for a repository overview. CI (.github/workflows/ci.yml)
// gates every change on:
//
//	go build ./...
//	go vet ./...
//	gofmt -l .            # must print nothing
//	go test -shuffle=on ./...
//	go test -race ./internal/core/... ./internal/shard/... ./internal/federation/... ./internal/server/...
//	go test -race -run 'TestBackendParity' ./internal/core/   # file backend == simulated disk
//	go test -bench=. -benchtime=1x -run='^$' ./...
//	go run ./cmd/skybench -overload BENCH_5.json              # overload scenarios, SLO verdicts
//	go run ./cmd/docdrift                                     # docs/OPERATIONS.md covers every flag + metric
//
// Keep all of them green locally before sending a change.
//
// The subsystem implementations live under internal/; this package is the
// supported API surface and re-exports them by alias, so the documented
// types here are identical to the ones used internally.
package liferaft

import (
	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/disk"
	"liferaft/internal/federation"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
	"liferaft/internal/metric"
	"liferaft/internal/metrics"
	"liferaft/internal/segment"
	"liferaft/internal/server"
	"liferaft/internal/shard"
	"liferaft/internal/simclock"
	"liferaft/internal/skyql"
	"liferaft/internal/workload"
	"liferaft/internal/xmatch"
)

// ---- Scheduler core (the paper's contribution) ----

// Core engine types; see internal/core for full documentation.
type (
	// Config configures a scheduler engine.
	Config = core.Config
	// Job is one pre-processed query: its workload objects and predicate.
	Job = core.Job
	// Result reports one completed query.
	Result = core.Result
	// RunStats aggregates a run's throughput, I/O, and cache behaviour.
	RunStats = core.RunStats
	// PolicyKind selects the scheduling discipline.
	PolicyKind = core.PolicyKind
	// Live is the long-running concurrent engine used by federation nodes.
	Live = core.Live
	// Tuner selects α from measured trade-off curves (paper §4).
	Tuner = core.Tuner
	// SaturationEstimator tracks arrival rate for the tuner.
	SaturationEstimator = core.SaturationEstimator
	// Adaptive closes the §4 loop: a Live engine whose α follows the
	// measured saturation through the tuner's curves.
	Adaptive = core.Adaptive
	// ShardStats is one shard's slice of a sharded run (RunStats.PerShard).
	ShardStats = core.ShardStats
)

// ---- Sharded execution (scaling the paper's policy across K disks) ----

type (
	// ShardPartitioner assigns buckets to shards (Config.ShardPartitioner).
	ShardPartitioner = shard.Partitioner
	// ShardByRange assigns contiguous balanced bucket ranges (default).
	ShardByRange = shard.ByRange
	// ShardByHTMHash assigns buckets by HTM ID hash, spreading spatial
	// hotspots across shards.
	ShardByHTMHash = shard.ByHTMHash
	// ShardMap is a computed bucket-to-shard assignment.
	ShardMap = shard.Map
)

// NewShardMap computes the bucket-to-shard assignment a sharded engine
// would use, for inspection and capacity planning.
var NewShardMap = shard.NewMap

// Scheduling policies.
const (
	// PolicyLifeRaft is the aged-workload-throughput scheduler (Eq. 2).
	PolicyLifeRaft = core.PolicyLifeRaft
	// PolicyRoundRobin is the RR baseline (buckets in HTM ID order).
	PolicyRoundRobin = core.PolicyRoundRobin
	// PolicyLeastShared is the least-sharable-first ablation policy.
	PolicyLeastShared = core.PolicyLeastShared
)

// Engine entry points.
var (
	// Run replays jobs with arrival offsets through the configured
	// scheduler (LifeRaft or round-robin).
	Run = core.Run
	// RunNoShare is the paper's NoShare baseline: queries evaluated
	// independently in arrival order.
	RunNoShare = core.RunNoShare
	// RunIndexOnly is SkyQuery's pre-LifeRaft index-exclusive approach.
	RunIndexOnly = core.RunIndexOnly
	// NewLive starts a concurrent engine accepting Submit calls.
	NewLive = core.NewLive
	// NewVirtualConfig builds the standard virtual-clock stack with
	// paper defaults (20-bucket LRU cache, 3% hybrid threshold).
	NewVirtualConfig = core.NewVirtual
	// NewConfigOn builds the standard stack on a caller-provided clock.
	NewConfigOn = core.NewOn
	// BuildCurve measures a throughput/response trade-off curve.
	BuildCurve = core.BuildCurve
	// NewTuner creates an adaptive-α tuner with a throughput tolerance.
	NewTuner = core.NewTuner
	// NewSaturationEstimator creates an arrival-rate EWMA estimator.
	NewSaturationEstimator = core.NewSaturationEstimator
	// NewAdaptive wraps a Live engine with saturation-driven α retuning.
	NewAdaptive = core.NewAdaptive
)

// ---- Multi-tenant serving layer ----

// Serving types; see internal/server for full documentation. The serving
// layer sits between clients and a Live engine and provides per-tenant
// token-bucket admission control, a deficit-round-robin fair queue across
// tenants, bounded queues with explicit backpressure (OverloadError with a
// retry-after), and deadline/cancellation threading into the engine's
// workload queues (Live.SubmitCtx / Live.Cancel).
type (
	// Server is the admission-control + fair-queueing layer.
	Server = server.Server
	// ServerConfig configures a Server (rates, queue depths, tenants).
	ServerConfig = server.Config
	// TenantConfig declares one tenant's limits and DRR weight.
	TenantConfig = server.TenantConfig
	// ServerStats is a serving-layer snapshot with per-tenant breakdowns.
	ServerStats = server.Stats
	// TenantStats is one tenant's breakdown, including a response-time
	// Summary sampled at bounded memory.
	TenantStats = server.TenantStats
	// OverloadError is the backpressure signal (reason + retry-after).
	OverloadError = server.OverloadError
	// Gateway is the HTTP+JSON front door (/v1/query, /v1/stats,
	// /metrics, /healthz).
	Gateway = server.Gateway
	// GatewayConfig configures a Gateway.
	GatewayConfig = server.GatewayConfig
	// RateMode selects how admission rates are governed; see
	// ServerConfig.RateMode and internal/server/DESIGN-overload.md.
	RateMode = server.RateMode
	// MetricRegistry collects metric families and serves them in
	// Prometheus text format (internal/metric); wire one through
	// ServerConfig.Registry and GatewayConfig.Registry to expose
	// /metrics. docs/OPERATIONS.md documents every exported family.
	MetricRegistry = metric.Registry
)

// Admission rejection reasons carried by OverloadError.
const (
	OverloadRate    = server.OverloadRate
	OverloadQueue   = server.OverloadQueue
	OverloadTenants = server.OverloadTenants
)

// Admission rate-control modes for ServerConfig.RateMode.
const (
	// RateAdaptive self-tunes per-tenant rates with an AIMD controller
	// against ServerConfig.SLOP99 (the default).
	RateAdaptive = server.RateAdaptive
	// RateStatic keeps configured rates fixed, the pre-adaptive behavior.
	RateStatic = server.RateStatic
)

var (
	// NewServer starts a serving layer over a Live engine.
	NewServer = server.New
	// NewGateway builds the HTTP handler over a query executor.
	NewGateway = server.NewGateway
	// ErrServerClosed is returned by Server.Submit after Close.
	ErrServerClosed = server.ErrClosed
	// NewMetricRegistry creates an empty metric registry.
	NewMetricRegistry = metric.NewRegistry
	// NewEngineMetrics registers the engine metric families on a
	// registry; hand the result to Config.Metrics to instrument an
	// engine (nil Metrics — the default — costs nothing).
	NewEngineMetrics = core.NewEngineMetrics
)

// ---- Catalogs (synthetic sky archives) ----

type (
	// Catalog is a lazily-materialized synthetic archive.
	Catalog = catalog.Catalog
	// CatalogConfig describes a base survey.
	CatalogConfig = catalog.Config
	// DerivedConfig describes a re-observation of a base survey.
	DerivedConfig = catalog.DerivedConfig
	// Object is one catalog observation.
	Object = catalog.Object
	// Density is a relative sky-density profile.
	Density = catalog.Density
)

var (
	// NewCatalog builds a base survey.
	NewCatalog = catalog.New
	// NewDerivedCatalog builds a correlated re-observation (the only
	// kind of catalog pair cross-matching is meaningful between).
	NewDerivedCatalog = catalog.NewDerived
	// UniformDensity, BandDensity, HotspotsDensity, and SumDensity build
	// density profiles.
	UniformDensity  = catalog.Uniform
	BandDensity     = catalog.Band
	HotspotsDensity = catalog.Hotspots
	SumDensity      = catalog.Sum
)

// ---- Partitioning and storage ----

type (
	// Partition is an equal-sized bucketing of a catalog (paper §3.1).
	Partition = bucket.Partition
	// Bucket is one equal-sized partition.
	Bucket = bucket.Bucket
	// Store serves buckets from the modeled disk or a real backend.
	Store = bucket.Store
	// StoreBackend is the pluggable storage layer under a Store; the
	// segment package provides the real-I/O file implementation.
	StoreBackend = bucket.Backend
	// DiskModel is the analytic seek/rotate/transfer cost model.
	DiskModel = disk.Model
	// Disk charges model costs to a clock and tracks statistics.
	Disk = disk.Disk
	// SegmentSet is an opened on-disk segment directory.
	SegmentSet = segment.Set
	// SegmentWriteOptions tunes segment building.
	SegmentWriteOptions = segment.WriteOptions
	// SegmentWriteStats reports what a segment build produced.
	SegmentWriteStats = segment.WriteStats
	// BackendKind names a storage backend (BackendSim or BackendFile).
	BackendKind = core.BackendKind
)

// Storage backends for Config.Backend.
const (
	// BackendSim serves buckets from the analytic disk model (default).
	BackendSim = core.BackendSim
	// BackendFile serves buckets from segment files with real I/O.
	BackendFile = core.BackendFile
)

var (
	// WriteSegments materializes a partition into segment files.
	WriteSegments = segment.Write
	// EnsureSegments opens a segment directory, building it if missing.
	EnsureSegments = segment.Ensure
	// OpenSegments opens an existing segment directory.
	OpenSegments = segment.OpenSet
	// NewSegmentBackend adapts an opened segment set to a StoreBackend.
	NewSegmentBackend = segment.NewBackend
	// NewFileBackedConfig builds the real-I/O engine stack over a
	// segment directory (real clock, measured read costs).
	NewFileBackedConfig = core.NewFileBacked
	// NewFileBackedConfigFrom is NewFileBackedConfig over an
	// already-opened segment set (e.g. the one EnsureSegments
	// returned), taking ownership of it.
	NewFileBackedConfigFrom = core.NewFileBackedFrom
)

var (
	// NewPartition divides a catalog into equal-object-count buckets.
	NewPartition = bucket.NewPartition
	// NewStore builds a bucket store over a partition and disk.
	NewStore = bucket.NewStore
	// SkyQueryDisk returns the disk model calibrated to the paper's
	// measured constants (Tb = 1.2 s / 40 MB bucket, Tm = 0.13 ms).
	SkyQueryDisk = disk.SkyQuery
	// NewDisk wires a model to a clock.
	NewDisk = disk.New
)

// CachePolicy names a bucket-cache replacement policy.
type CachePolicy = cache.PolicyName

// Cache replacement policies.
const (
	CacheLRU      = cache.PolicyLRU
	CacheClock    = cache.PolicyClock
	CacheTwoQueue = cache.PolicyTwoQueue
)

// ---- Cross-match join ----

type (
	// WorkloadObject is one cross-match request with its HTM bounds.
	WorkloadObject = xmatch.WorkloadObject
	// Pair is one successful cross-match.
	Pair = xmatch.Pair
	// Predicate filters pairs that succeed in the spatial join.
	Predicate = xmatch.Predicate
)

var (
	// NewWorkloadObject wraps a remote object with its error-cap bounds.
	NewWorkloadObject = xmatch.NewWorkloadObject
	// MergeJoin is the HTM-sorted plane-sweep join (scan strategy).
	MergeJoin = xmatch.MergeJoin
	// IndexJoin is the probing join (index strategy).
	IndexJoin = xmatch.IndexJoin
	// MagnitudeWindow builds a photometric-cut predicate.
	MagnitudeWindow = xmatch.MagnitudeWindow
)

// ---- Workload generation ----

type (
	// Query is one trace query.
	Query = workload.Query
	// TraceConfig parameterizes trace generation.
	TraceConfig = workload.TraceConfig
	// Trace is a generated query sequence.
	Trace = workload.Trace
	// Arrivals produces arrival-time offsets.
	Arrivals = workload.Arrivals
	// PoissonArrivals, UniformArrivals, and BurstyArrivals are the
	// built-in arrival processes.
	PoissonArrivals = workload.Poisson
	UniformArrivals = workload.Uniform
	BurstyArrivals  = workload.Bursty
)

var (
	// DefaultTraceConfig is calibrated to the published SkyQuery trace
	// statistics (Figures 5-6).
	DefaultTraceConfig = workload.DefaultTraceConfig
	// GenerateTrace produces a deterministic query trace.
	GenerateTrace = workload.Generate
	// MaterializeQuery converts a trace query into workload objects.
	MaterializeQuery = workload.Materialize
)

// ---- Federation (SkyQuery-style) ----

type (
	// FedNode is one archive site running a LifeRaft engine.
	FedNode = federation.Node
	// FedNodeConfig configures a node.
	FedNodeConfig = federation.NodeConfig
	// FedPortal plans and executes serial left-deep cross-matches.
	FedPortal = federation.Portal
	// FedQuery is a federation cross-match query.
	FedQuery = federation.Query
	// FedTransport reaches one archive (in-process or TCP).
	FedTransport = federation.Transport
	// FedInProc embeds a node in-process.
	FedInProc = federation.InProc
)

var (
	// NewFedNode builds and starts an archive node.
	NewFedNode = federation.NewNode
	// NewFedPortal returns an empty portal.
	NewFedPortal = federation.NewPortal
	// ServeFed serves a node over TCP.
	ServeFed = federation.Serve
	// DialFed connects to a remote node.
	DialFed = federation.Dial
)

// ---- SkyQL (the SkyQuery SQL dialect) ----

type (
	// SkyQL is a parsed SkyQL cross-match query.
	SkyQL = skyql.Query
)

var (
	// ParseSkyQL parses the SQL dialect SkyQuery exposed to astronomers.
	ParseSkyQL = skyql.Parse
	// CompileSkyQL lowers a parsed query to a federation query.
	CompileSkyQL = skyql.Compile
)

// ---- Time, geometry, metrics ----

type (
	// Clock abstracts time (virtual for experiments, real for serving).
	Clock = simclock.Clock
	// VirtualClock is the discrete-event clock.
	VirtualClock = simclock.Virtual
	// RealClock is the wall clock.
	RealClock = simclock.Real
	// Vec3 is a unit position vector on the celestial sphere.
	Vec3 = geom.Vec3
	// Cap is a spherical cap (circular sky region).
	Cap = geom.Cap
	// HTMID is a level-addressed trixel identifier.
	HTMID = htm.ID
	// Summary is a response-time summary with CoV and percentiles.
	Summary = metrics.Summary
	// Curve is a throughput/response trade-off curve over α.
	Curve = metrics.Curve
	// TradeoffPoint is one curve point.
	TradeoffPoint = metrics.TradeoffPoint
)

var (
	// NewVirtualClock returns a virtual clock at the epoch.
	NewVirtualClock = simclock.NewVirtual
	// FromRaDec and ToRaDec convert equatorial coordinates.
	FromRaDec = geom.FromRaDec
	ToRaDec   = geom.ToRaDec
	// Radians converts degrees to radians.
	Radians = geom.Radians
	// ArcsecToRad converts cross-match radii.
	ArcsecToRad = geom.ArcsecToRad
	// NewCap builds a sky region.
	NewCap = geom.NewCap
	// HTMLookup returns the trixel containing a point.
	HTMLookup = htm.Lookup
	// CoverCap computes the HTM range cover of a region.
	CoverCap = htm.CoverCap
	// Summarize computes response-time statistics.
	Summarize = metrics.Summarize
	// CumulativeShare and RankForShare compute workload-skew statistics.
	CumulativeShare = metrics.CumulativeShare
	RankForShare    = metrics.RankForShare
)

package zones

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
	"liferaft/internal/xmatch"
)

func field(seed int64, n int) []catalog.Object {
	rng := rand.New(rand.NewSource(seed))
	objs := make([]catalog.Object, n)
	for i := range objs {
		// Mix a uniform field with a dense clump so windows overlap.
		var p geom.Vec3
		if i%4 == 0 {
			base := geom.FromRaDec(30, 10)
			p = base.Add(geom.Vec3{
				X: rng.NormFloat64() * 1e-4,
				Y: rng.NormFloat64() * 1e-4,
				Z: rng.NormFloat64() * 1e-4,
			}).Normalize()
		} else {
			z := rng.Float64()*2 - 1
			phi := rng.Float64() * 6.283185307179586
			r := math.Sqrt(math.Max(0, 1-z*z))
			p = geom.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
		}
		objs[i] = catalog.Object{
			ID: uint64(i), Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel),
			Mag: 14 + rng.Float64()*10,
		}
	}
	return objs
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, 0); err == nil {
		t.Error("zero zone height should fail")
	}
	if _, err := NewIndex(nil, 91); err == nil {
		t.Error("oversize zone height should fail")
	}
}

func TestNearMatchesBruteForce(t *testing.T) {
	objs := field(1, 3000)
	idx, err := NewIndex(objs, 0.01) // 36 arcsec zones
	if err != nil {
		t.Fatal(err)
	}
	if idx.ZoneCount() == 0 {
		t.Fatal("no zones")
	}
	rng := rand.New(rand.NewSource(2))
	radius := geom.ArcsecToRad(20)
	for trial := 0; trial < 200; trial++ {
		// Probe near existing objects half the time to force matches.
		var p geom.Vec3
		if trial%2 == 0 {
			p = objs[rng.Intn(len(objs))].Pos
		} else {
			p = geom.FromRaDec(rng.Float64()*360, rng.Float64()*180-90)
		}
		got := idx.Near(p, radius)
		want := 0
		for _, o := range objs {
			if p.Angle(o.Pos) <= radius+geom.Epsilon {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: Near found %d, brute force %d", trial, len(got), want)
		}
	}
}

func TestNearAtPolesAndWrap(t *testing.T) {
	var objs []catalog.Object
	// Objects hugging the pole and the RA wrap line.
	for i, rd := range [][2]float64{
		{0, 89.999}, {180, 89.999}, {359.9995, 0}, {0.0005, 0}, {10, 10},
	} {
		p := geom.FromRaDec(rd[0], rd[1])
		objs = append(objs, catalog.Object{ID: uint64(i), Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)})
	}
	idx, err := NewIndex(objs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Near the pole: both polar objects are within ~0.002 deg of the pole.
	got := idx.Near(geom.FromRaDec(90, 90), geom.Radians(0.01))
	if len(got) != 2 {
		t.Errorf("polar query found %d, want 2", len(got))
	}
	// Across the RA wrap: the two wrap objects are ~3.6 arcsec apart.
	got = idx.Near(geom.FromRaDec(0, 0), geom.ArcsecToRad(5))
	if len(got) != 2 {
		t.Errorf("wrap query found %d, want 2", len(got))
	}
}

func TestCrossMatchAgreesWithMergeJoin(t *testing.T) {
	objs := field(3, 2000)
	// Sort by HTM ID: MergeJoin's precondition.
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j-1].HTMID > objs[j].HTMID; j-- {
			objs[j-1], objs[j] = objs[j], objs[j-1]
		}
	}
	rng := rand.New(rand.NewSource(4))
	radius := geom.ArcsecToRad(10)
	var queue []xmatch.WorkloadObject
	for i := 0; i < 150; i++ {
		base := objs[rng.Intn(len(objs))]
		p := base.Pos.Add(geom.Vec3{
			X: rng.NormFloat64() * radius / 3,
			Y: rng.NormFloat64() * radius / 3,
			Z: rng.NormFloat64() * radius / 3,
		}).Normalize()
		remote := catalog.Object{ID: uint64(10000 + i), Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)}
		queue = append(queue, xmatch.NewWorkloadObject(uint64(i%4), remote, radius))
	}
	preds := map[uint64]xmatch.Predicate{1: xmatch.MagnitudeWindow(15, 20)}

	idx, err := NewIndex(objs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	zp := idx.CrossMatch(queue, preds)
	mp := xmatch.MergeJoin(objs, queue, preds)
	xmatch.SortPairs(zp)
	xmatch.SortPairs(mp)
	if len(zp) == 0 {
		t.Fatal("zones join found nothing; fixture broken")
	}
	if len(zp) != len(mp) {
		t.Fatalf("zones %d pairs, merge join %d", len(zp), len(mp))
	}
	for i := range zp {
		if zp[i].QueryID != mp[i].QueryID || zp[i].Local.ID != mp[i].Local.ID || zp[i].Remote.ID != mp[i].Remote.ID {
			t.Fatalf("pair %d differs: %v vs %v", i, zp[i], mp[i])
		}
	}
}

// Property: Near is symmetric-ish — if a is within r of b, querying at a
// finds b and vice versa.
func TestQuickNearSymmetry(t *testing.T) {
	objs := field(5, 500)
	idx, err := NewIndex(objs, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	radius := geom.ArcsecToRad(60)
	f := func(ai, bi uint16) bool {
		a := objs[int(ai)%len(objs)]
		b := objs[int(bi)%len(objs)]
		if a.Pos.Angle(b.Pos) > radius {
			return true
		}
		foundB, foundA := false, false
		for _, o := range idx.Near(a.Pos, radius) {
			if o.ID == b.ID {
				foundB = true
			}
		}
		for _, o := range idx.Near(b.Pos, radius) {
			if o.ID == a.ID {
				foundA = true
			}
		}
		return foundA && foundB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkZonesNear(b *testing.B) {
	objs := field(6, 20000)
	idx, _ := NewIndex(objs, 0.01)
	radius := geom.ArcsecToRad(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Near(objs[i%len(objs)].Pos, radius)
	}
}

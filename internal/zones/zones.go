// Package zones implements the Zones algorithm of Gray, Nieto-Santisteban,
// and Szalay ("The Zones Algorithm for Finding Points-Near-a-Point or
// Cross-Matching Spatial Datasets", MSR-TR-2006-52), which the paper cites
// as the foundation of its scan-based cross-match (§3.1): partitioning the
// sky into declination zones turns a spatial join into a B-tree-friendly
// merge over (zone, ra) order with an exact distance test.
//
// LifeRaft uses HTM buckets rather than zones because HTM's space-filling
// curve gives contiguous ID ranges (the unit of its workload queues), but
// the zones join is the natural cross-check: both algorithms must produce
// identical match sets. The ablation bench compares their in-memory join
// throughput.
package zones

import (
	"fmt"
	"math"
	"sort"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/xmatch"
)

// Zone partitioning: zone(i) = floor((dec + 90) / zoneHeight). A match
// within radius r can only pair objects whose declinations differ by at
// most r, i.e. in the same zone or adjacent zones when zoneHeight >= r.

// Index is a zoned, RA-sorted index over a set of objects.
type Index struct {
	zoneHeightDeg float64
	zones         map[int][]entry // zone id -> entries sorted by ra
}

type entry struct {
	ra, dec float64 // degrees
	obj     catalog.Object
}

// NewIndex builds a zone index with the given zone height in degrees.
// Heights at or just above the maximum match radius are optimal: one zone
// above and below suffice.
func NewIndex(objs []catalog.Object, zoneHeightDeg float64) (*Index, error) {
	if zoneHeightDeg <= 0 || zoneHeightDeg > 90 {
		return nil, fmt.Errorf("zones: zone height %v out of (0, 90]", zoneHeightDeg)
	}
	idx := &Index{zoneHeightDeg: zoneHeightDeg, zones: make(map[int][]entry)}
	for _, o := range objs {
		ra, dec := geom.ToRaDec(o.Pos)
		z := idx.zoneOf(dec)
		idx.zones[z] = append(idx.zones[z], entry{ra: ra, dec: dec, obj: o})
	}
	for z := range idx.zones {
		es := idx.zones[z]
		sort.Slice(es, func(i, j int) bool { return es[i].ra < es[j].ra })
	}
	return idx, nil
}

func (idx *Index) zoneOf(dec float64) int {
	return int(math.Floor((dec + 90) / idx.zoneHeightDeg))
}

// ZoneCount returns the number of non-empty zones.
func (idx *Index) ZoneCount() int { return len(idx.zones) }

// Near returns all indexed objects within radius (radians) of position p.
// It scans the zones overlapping the declination band and, within each,
// the RA window widened by the declination-dependent cos factor — the
// textbook zones predicate — then verifies with the exact spherical
// distance.
func (idx *Index) Near(p geom.Vec3, radiusRad float64) []catalog.Object {
	ra, dec := geom.ToRaDec(p)
	rDeg := geom.Degrees(radiusRad)
	zLo := idx.zoneOf(math.Max(dec-rDeg, -90))
	zHi := idx.zoneOf(math.Min(dec+rDeg, 90-1e-12))
	// RA window: Δra = r / cos(dec), guarding the poles.
	cosDec := math.Cos(geom.Radians(dec))
	var raWin float64
	if cosDec < 1e-6 {
		raWin = 360 // at the pole every RA qualifies
	} else {
		raWin = rDeg / cosDec
	}
	var out []catalog.Object
	for z := zLo; z <= zHi; z++ {
		es := idx.zones[z]
		if len(es) == 0 {
			continue
		}
		if raWin >= 180 {
			// The window spans the full circle (polar queries).
			out = idx.scanWindow(es, 0, 360, p, radiusRad, out)
			continue
		}
		// Clamp the main window to [0, 360] and scan the folded
		// remainders across the RA wrap without overlap.
		out = idx.scanWindow(es, math.Max(ra-raWin, 0), math.Min(ra+raWin, 360), p, radiusRad, out)
		if ra-raWin < 0 {
			out = idx.scanWindow(es, ra-raWin+360, 360, p, radiusRad, out)
		}
		if ra+raWin > 360 {
			out = idx.scanWindow(es, 0, ra+raWin-360, p, radiusRad, out)
		}
	}
	return out
}

func (idx *Index) scanWindow(es []entry, lo, hi float64, p geom.Vec3, radiusRad float64, out []catalog.Object) []catalog.Object {
	i := sort.Search(len(es), func(i int) bool { return es[i].ra >= lo })
	for ; i < len(es) && es[i].ra <= hi; i++ {
		if p.Angle(es[i].obj.Pos) <= radiusRad+geom.Epsilon {
			out = append(out, es[i].obj)
		}
	}
	return out
}

// CrossMatch joins a workload queue against the index, producing the same
// pair set as xmatch.MergeJoin over the same objects. preds follows the
// xmatch convention.
func (idx *Index) CrossMatch(queue []xmatch.WorkloadObject, preds map[uint64]xmatch.Predicate) []xmatch.Pair {
	var out []xmatch.Pair
	for _, wo := range queue {
		var pred xmatch.Predicate
		if preds != nil {
			pred = preds[wo.QueryID]
		}
		for _, local := range idx.Near(wo.Obj.Pos, wo.Radius) {
			if pred != nil && !pred(local, wo.Obj) {
				continue
			}
			out = append(out, xmatch.Pair{
				QueryID: wo.QueryID,
				Local:   local,
				Remote:  wo.Obj,
				SepRad:  local.Pos.Angle(wo.Obj.Pos),
			})
		}
	}
	return out
}

// Package shard partitions the bucket space of a LifeRaft engine across K
// independent disk/worker shards. LifeRaft (the paper) schedules queries
// by data contention so a *single* disk arm services the hottest
// partition; this package scales the same aged-workload-throughput policy
// to many disks by giving each shard its own disk, bucket cache, and
// workload queues, while a coordinator fans each submitted query's
// workload objects out to the shards owning the buckets they overlap and
// tracks per-query completion across shards.
//
// The package provides the building blocks the engine composes:
//
//   - Partitioner assigns buckets to shards. ByRange (contiguous,
//     balanced bucket counts) and ByHTMHash (HTM ID hash, decorrelates
//     spatial hotspots from shard identity) are provided; the interface
//     is pluggable.
//   - Map is a computed assignment for one partition: bucket ownership
//     lookups and workload-object fan-out.
//   - Coordinator tracks in-flight queries that fanned out to several
//     shards and reports the merged completion instant when the last
//     shard finishes.
//
// The per-shard engines themselves live in internal/core (see
// core.Config.Shards); shards on a virtual clock each charge costs to
// their own forked clock (simclock.Fork) so concurrent shards do not
// serialize on one modeled disk.
package shard

import (
	"fmt"
	"sync"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/xmatch"
)

// Partitioner assigns every bucket of a partition to one of K shards.
type Partitioner interface {
	// Name identifies the strategy in stats and logs.
	Name() string
	// Assign returns one owner in [0, shards) per bucket index.
	Assign(part *bucket.Partition, shards int) []int
}

// ByRange assigns contiguous runs of buckets to each shard, balancing
// bucket counts within one bucket of each other. Contiguous ranges keep
// each shard's working set spatially local (neighbouring buckets along
// the HTM curve), the layout a striped multi-disk deployment would use.
type ByRange struct{}

// Name implements Partitioner.
func (ByRange) Name() string { return "range" }

// Assign implements Partitioner.
func (ByRange) Assign(part *bucket.Partition, shards int) []int {
	n := part.NumBuckets()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = i * shards / n
	}
	return owner
}

// ByHTMHash assigns each bucket by a hash of the level-14 HTM ID its span
// starts at. Hashing decorrelates shard identity from sky position, so a
// spatial hotspot (a heavily re-observed survey stripe) spreads across
// shards instead of saturating one.
type ByHTMHash struct{}

// Name implements Partitioner.
func (ByHTMHash) Name() string { return "htmhash" }

// Assign implements Partitioner.
func (ByHTMHash) Assign(part *bucket.Partition, shards int) []int {
	owner := make([]int, part.NumBuckets())
	for i := range owner {
		owner[i] = int(mix64(uint64(part.Bucket(i).Span.Start)) % uint64(shards))
	}
	return owner
}

// mix64 is the splitmix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Map is a computed bucket-to-shard assignment for one partition.
type Map struct {
	part   *bucket.Partition
	shards int
	owner  []int
	counts []int
	name   string
}

// NewMap computes the assignment of part's buckets across shards using p
// (nil means ByRange). shards may exceed the bucket count; the excess
// shards simply own no buckets.
func NewMap(part *bucket.Partition, shards int, p Partitioner) (*Map, error) {
	if part == nil {
		return nil, fmt.Errorf("shard: nil partition")
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shards %d must be >= 1", shards)
	}
	if p == nil {
		p = ByRange{}
	}
	owner := p.Assign(part, shards)
	if len(owner) != part.NumBuckets() {
		return nil, fmt.Errorf("shard: partitioner %q assigned %d buckets, partition has %d",
			p.Name(), len(owner), part.NumBuckets())
	}
	m := &Map{part: part, shards: shards, owner: owner, counts: make([]int, shards), name: p.Name()}
	for i, s := range owner {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("shard: partitioner %q assigned bucket %d to shard %d of %d",
				p.Name(), i, s, shards)
		}
		m.counts[s]++
	}
	return m, nil
}

// Shards returns the number of shards.
func (m *Map) Shards() int { return m.shards }

// NumBuckets returns the number of buckets in the underlying partition.
func (m *Map) NumBuckets() int { return len(m.owner) }

// Owner returns the shard owning bucket b.
func (m *Map) Owner(b int) int { return m.owner[b] }

// Buckets returns how many buckets shard s owns.
func (m *Map) Buckets(s int) int { return m.counts[s] }

// PartitionerName returns the name of the strategy that built the map.
func (m *Map) PartitionerName() string { return m.name }

// Fanout groups a query's workload objects by owning shard: object w goes
// to every shard owning a bucket whose span overlaps w's bounding HTM
// range, once per shard. The result always has exactly Shards() entries;
// shards the query does not touch hold nil. This is the coordinator-side
// half of admission — each shard's engine re-derives the per-bucket
// assignment locally, restricted to the buckets it owns, so the union of
// per-shard assignments equals the single-engine assignment exactly.
func (m *Map) Fanout(objs []xmatch.WorkloadObject) [][]xmatch.WorkloadObject {
	out := make([][]xmatch.WorkloadObject, m.shards)
	mark := make([]bool, m.shards)
	touched := make([]int, 0, m.shards)
	for _, wo := range objs {
		for _, bi := range m.part.BucketsForRanges(wo.Ranges()) {
			s := m.owner[bi]
			if !mark[s] {
				mark[s] = true
				touched = append(touched, s)
				out[s] = append(out[s], wo)
			}
		}
		for _, s := range touched {
			mark[s] = false
		}
		touched = touched[:0]
	}
	return out
}

// Coordinator tracks queries in flight across several shards: a query
// registers with its fan-out width, each shard reports its local
// completion, and the coordinator reports the query done — with the
// latest (merged) completion instant — when the last shard finishes. It
// is safe for concurrent use by shard workers.
type Coordinator struct {
	mu      sync.Mutex
	pending map[uint64]*fanState
}

type fanState struct {
	remaining int
	latest    time.Time
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{pending: make(map[uint64]*fanState)}
}

// Register records that query q fanned out to n shards. Registering an
// in-flight query twice or a non-positive fan-out is a programming error.
func (c *Coordinator) Register(q uint64, n int) error {
	if n < 1 {
		return fmt.Errorf("shard: query %d registered with fan-out %d", q, n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.pending[q]; dup {
		return fmt.Errorf("shard: query %d already in flight", q)
	}
	c.pending[q] = &fanState{remaining: n}
	return nil
}

// Complete records that one shard finished its part of query q at
// instant at. When the last shard reports, done is true and latest is the
// merged completion instant (the maximum across shards). Completing an
// unregistered query panics: it means a shard serviced work the
// coordinator never fanned out.
func (c *Coordinator) Complete(q uint64, at time.Time) (done bool, latest time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.pending[q]
	if st == nil {
		panic(fmt.Sprintf("shard: completion for unregistered query %d", q))
	}
	if at.After(st.latest) {
		st.latest = at
	}
	st.remaining--
	if st.remaining > 0 {
		return false, time.Time{}
	}
	delete(c.pending, q)
	return true, st.latest
}

// Pending returns the number of queries still in flight.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

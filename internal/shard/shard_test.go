package shard

import (
	"math"
	"sync"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/xmatch"
)

func testPartition(t *testing.T, perBucket int) *bucket.Partition {
	t.Helper()
	cat, err := catalog.New(catalog.Config{
		Name: "sdss", N: 6400, Seed: 9, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := bucket.NewPartition(cat, perBucket, 0)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestNewMapValidation(t *testing.T) {
	part := testPartition(t, 200) // 32 buckets
	if _, err := NewMap(nil, 2, nil); err == nil {
		t.Error("nil partition should fail")
	}
	if _, err := NewMap(part, 0, nil); err == nil {
		t.Error("zero shards should fail")
	}
	if _, err := NewMap(part, -1, nil); err == nil {
		t.Error("negative shards should fail")
	}
}

func TestByRangeBalance(t *testing.T) {
	part := testPartition(t, 200) // 32 buckets
	for _, k := range []int{1, 2, 3, 4, 7, 8, 31, 32} {
		m, err := NewMap(part, k, ByRange{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Shards() != k || m.NumBuckets() != part.NumBuckets() {
			t.Fatalf("k=%d: wrong dimensions", k)
		}
		total, min, max := 0, part.NumBuckets(), 0
		for s := 0; s < k; s++ {
			n := m.Buckets(s)
			total += n
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if total != part.NumBuckets() {
			t.Fatalf("k=%d: %d buckets assigned, want %d", k, total, part.NumBuckets())
		}
		if max-min > 1 {
			t.Errorf("k=%d: range split imbalanced: min %d max %d", k, min, max)
		}
		// Contiguity: owners must be non-decreasing.
		for b := 1; b < part.NumBuckets(); b++ {
			if m.Owner(b) < m.Owner(b-1) {
				t.Fatalf("k=%d: range owners not contiguous at bucket %d", k, b)
			}
		}
	}
}

func TestByHTMHashCoversAllBuckets(t *testing.T) {
	part := testPartition(t, 200)
	m, err := NewMap(part, 4, ByHTMHash{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for s := 0; s < 4; s++ {
		total += m.Buckets(s)
	}
	if total != part.NumBuckets() {
		t.Fatalf("%d buckets assigned, want %d", total, part.NumBuckets())
	}
	if m.PartitionerName() != "htmhash" {
		t.Errorf("name %q", m.PartitionerName())
	}
}

func TestMoreShardsThanBuckets(t *testing.T) {
	part := testPartition(t, 3200) // 2 buckets
	m, err := NewMap(part, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for s := 0; s < 8; s++ {
		if m.Buckets(s) > 0 {
			owned++
		}
	}
	if owned != 2 {
		t.Fatalf("%d shards own buckets, want 2 (the rest are empty shards)", owned)
	}
}

func TestFanout(t *testing.T) {
	part := testPartition(t, 200)
	m, err := NewMap(part, 4, ByRange{})
	if err != nil {
		t.Fatal(err)
	}
	cat := part.Catalog()
	objs := cat.Objects(0, 64)
	var wos []xmatch.WorkloadObject
	for _, o := range objs {
		wos = append(wos, xmatch.NewWorkloadObject(1, o, geom.ArcsecToRad(5)))
	}
	fan := m.Fanout(wos)
	if len(fan) != 4 {
		t.Fatalf("fan-out has %d entries, want 4", len(fan))
	}
	// Every object must land on exactly the shards owning its buckets,
	// once per shard.
	for _, wo := range wos {
		want := map[int]bool{}
		for _, bi := range part.BucketsForRanges(wo.Ranges()) {
			want[m.Owner(bi)] = true
		}
		for s := 0; s < 4; s++ {
			got := 0
			for _, fo := range fan[s] {
				if fo.Obj.ID == wo.Obj.ID {
					got++
				}
			}
			wantN := 0
			if want[s] {
				wantN = 1
			}
			if got != wantN {
				t.Fatalf("object %d appears %d times on shard %d, want %d", wo.Obj.ID, got, s, wantN)
			}
		}
	}
	// Low-ordinal objects are spatially local: they must all fan out to
	// shard 0 under a range split (an all-on-one-shard query).
	first := m.Fanout(wos[:1])
	if len(first[0]) != 1 {
		t.Error("first object should land on shard 0 under a range split")
	}
	// Empty input fans out to nothing.
	for s, part := range m.Fanout(nil) {
		if len(part) != 0 {
			t.Errorf("empty fan-out has work on shard %d", s)
		}
	}
}

func TestCoordinator(t *testing.T) {
	c := NewCoordinator()
	if err := c.Register(1, 0); err == nil {
		t.Error("fan-out 0 should fail")
	}
	if err := c.Register(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(1, 1); err == nil {
		t.Error("duplicate registration should fail")
	}
	t0 := time.Unix(100, 0)
	t1 := time.Unix(200, 0)
	if done, _ := c.Complete(1, t1); done {
		t.Fatal("done after 1 of 2 shards")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending %d, want 1", c.Pending())
	}
	done, latest := c.Complete(1, t0)
	if !done {
		t.Fatal("not done after both shards")
	}
	if !latest.Equal(t1) {
		t.Fatalf("latest %v, want the later completion %v", latest, t1)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending %d, want 0", c.Pending())
	}
	defer func() {
		if recover() == nil {
			t.Error("completing an unregistered query should panic")
		}
	}()
	c.Complete(99, t0)
}

func TestCoordinatorConcurrent(t *testing.T) {
	c := NewCoordinator()
	const queries, shards = 64, 8
	for q := uint64(0); q < queries; q++ {
		if err := c.Register(q, shards); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	doneCount := 0
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for q := uint64(0); q < queries; q++ {
				if done, _ := c.Complete(q, time.Unix(int64(s), 0)); done {
					mu.Lock()
					doneCount++
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()
	if doneCount != queries {
		t.Fatalf("%d queries reported done, want %d", doneCount, queries)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending %d, want 0", c.Pending())
	}
}

// TestByHTMHashBalance: hashing must spread buckets across shards without
// gross imbalance, across several shard counts and partition sizes. The
// assignment is deterministic (splitmix64 of each bucket's span start), so
// the tolerance only needs to absorb binomial spread, not flakiness: every
// shard must own at least one bucket and no shard may exceed twice its
// fair share plus the binomial standard deviation.
func TestByHTMHashBalance(t *testing.T) {
	for _, perBucket := range []int{50, 100, 200} {
		part := testPartition(t, perBucket) // 128, 64, 32 buckets
		n := part.NumBuckets()
		for _, k := range []int{2, 4, 8} {
			m, err := NewMap(part, k, ByHTMHash{})
			if err != nil {
				t.Fatal(err)
			}
			mean := float64(n) / float64(k)
			sd := math.Sqrt(mean * (1 - 1/float64(k)))
			min, max, total := n, 0, 0
			for s := 0; s < k; s++ {
				c := m.Buckets(s)
				total += c
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if total != n {
				t.Fatalf("buckets=%d shards=%d: counts sum to %d", n, k, total)
			}
			if min == 0 {
				t.Errorf("buckets=%d shards=%d: a shard owns no buckets", n, k)
			}
			if float64(max) > 2*mean+sd {
				t.Errorf("buckets=%d shards=%d: max %d exceeds 2*mean+sd (%.1f)", n, k, max, 2*mean+sd)
			}
			if float64(max-min) > mean+2*sd {
				t.Errorf("buckets=%d shards=%d: spread max-min = %d-%d exceeds mean+2sd (%.1f)",
					n, k, max, min, mean+2*sd)
			}
		}
	}
}

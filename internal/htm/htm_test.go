package htm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"liferaft/internal/geom"
)

func TestFaceIDs(t *testing.T) {
	for i := 0; i < 8; i++ {
		id := FaceID(i)
		if uint64(id) != uint64(8+i) {
			t.Errorf("FaceID(%d) = %d", i, id)
		}
		if !id.Valid() || id.Level() != 0 {
			t.Errorf("FaceID(%d) invalid or wrong level", i)
		}
		if id.FaceIndex() != i {
			t.Errorf("FaceIndex of face %d = %d", i, id.FaceIndex())
		}
	}
}

func TestFaceIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FaceID(8) should panic")
		}
	}()
	FaceID(8)
}

func TestValidity(t *testing.T) {
	cases := []struct {
		id   ID
		want bool
	}{
		{0, false}, {1, false}, {7, false},
		{8, true}, {15, true},
		{16, false}, {31, false}, // odd bit length
		{32, true}, {63, true}, // level 1
		{ID(8) << (2 * MaxLevel), true},
		{ID(8) << (2 * (MaxLevel + 1)), false},
	}
	for _, c := range cases {
		if got := c.id.Valid(); got != c.want {
			t.Errorf("Valid(%#x) = %v, want %v", uint64(c.id), got, c.want)
		}
	}
}

func TestLevelPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Level of invalid ID should panic")
		}
	}()
	ID(3).Level()
}

func TestParentChild(t *testing.T) {
	id := FaceID(2)
	for i := 0; i < 4; i++ {
		c := id.Child(i)
		if c.Parent() != id {
			t.Errorf("Parent(Child(%d)) != id", i)
		}
		if c.ChildIndex() != i {
			t.Errorf("ChildIndex = %d, want %d", c.ChildIndex(), i)
		}
		if c.Level() != 1 {
			t.Errorf("child level = %d", c.Level())
		}
	}
}

func TestParentPanicsAtRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Parent of face should panic")
		}
	}()
	FaceID(0).Parent()
}

func TestLevel14Is32Bits(t *testing.T) {
	// The paper: SkyQuery assigns 32-bit level-14 HTM IDs.
	if got := LastAtLevel(PaperLevel); got >= 1<<32 {
		t.Errorf("level-14 IDs exceed 32 bits: %#x", uint64(got))
	}
	if got := FirstAtLevel(PaperLevel); got != ID(8)<<28 {
		t.Errorf("FirstAtLevel(14) = %#x", uint64(got))
	}
	if NumTrixels(PaperLevel) != 8*1<<28 {
		t.Errorf("NumTrixels(14) = %d", NumTrixels(PaperLevel))
	}
}

func TestNameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		level := rng.Intn(MaxLevel + 1)
		id := FromPos(uint64(rng.Int63n(int64(NumTrixels(level)))), level)
		name := id.Name()
		back, err := ParseName(name)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", name, err)
		}
		if back != id {
			t.Fatalf("round trip %q: %#x != %#x", name, uint64(back), uint64(id))
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	for _, bad := range []string{"", "N", "X0", "N04", "N0123456789012345678901", "Na"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) should fail", bad)
		}
	}
}

func TestStringForms(t *testing.T) {
	if FaceID(4).String() != "N0" {
		t.Errorf("N0 name = %q", FaceID(4).String())
	}
	if FaceID(0).Child(3).String() != "S03" {
		t.Errorf("S03 name = %q", FaceID(0).Child(3).String())
	}
	if ID(0).String() == "" {
		t.Error("invalid ID String should be non-empty")
	}
}

func TestPosRoundTrip(t *testing.T) {
	for level := 0; level <= 6; level++ {
		n := NumTrixels(level)
		for _, pos := range []uint64{0, 1, n / 2, n - 1} {
			id := FromPos(pos, level)
			if id.Pos() != pos || id.Level() != level {
				t.Errorf("FromPos(%d,%d) round trip failed", pos, level)
			}
		}
	}
}

func TestFromPosPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromPos out of range should panic")
		}
	}()
	FromPos(NumTrixels(3), 3)
}

func TestTrianglesPartitionSphere(t *testing.T) {
	// The 8 faces cover the sphere and their areas sum to 4*pi.
	total := 0.0
	for i := 0; i < 8; i++ {
		total += FaceTriangle(i).Area()
	}
	if math.Abs(total-4*math.Pi) > 1e-9 {
		t.Errorf("face areas sum to %v, want 4*pi", total)
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		level := rng.Intn(5)
		id := FromPos(uint64(rng.Int63n(int64(NumTrixels(level)))), level)
		parentArea := id.Triangle().Area()
		var childArea float64
		for c := 0; c < 4; c++ {
			childArea += id.Child(c).Triangle().Area()
		}
		if math.Abs(parentArea-childArea) > 1e-9*parentArea {
			t.Fatalf("children of %s do not partition parent: %v vs %v",
				id, childArea, parentArea)
		}
	}
}

func TestLookupContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		ra := rng.Float64() * 360
		dec := math.Asin(rng.Float64()*2-1) * 180 / math.Pi
		v := geom.FromRaDec(ra, dec)
		for _, level := range []int{0, 3, 8, PaperLevel} {
			id := Lookup(v, level)
			if id.Level() != level {
				t.Fatalf("Lookup level = %d, want %d", id.Level(), level)
			}
			if !id.Contains(v) {
				t.Fatalf("Lookup(%v,%v @ %d) = %s does not contain point", ra, dec, level, id)
			}
		}
	}
}

func TestLookupHierarchyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		v := geom.FromRaDec(rng.Float64()*360, math.Asin(rng.Float64()*2-1)*180/math.Pi)
		deep := Lookup(v, PaperLevel)
		// The ancestor of the deep lookup must contain the point too;
		// shallow lookups may differ only at boundaries.
		for level := 0; level < PaperLevel; level++ {
			anc := deep.AncestorAtLevel(level)
			if !anc.Contains(v) {
				t.Fatalf("ancestor %s at level %d does not contain point", anc, level)
			}
		}
	}
}

func TestLookupDeterministicOnBoundary(t *testing.T) {
	// A face vertex lies on many trixel boundaries; Lookup must still
	// return a containing trixel and be deterministic.
	v := geom.Vec3{X: 1, Y: 0, Z: 0}
	a := Lookup(v, 10)
	b := Lookup(v, 10)
	if a != b {
		t.Errorf("Lookup not deterministic: %s vs %s", a, b)
	}
	if !a.Contains(v) {
		t.Errorf("boundary lookup %s does not contain point", a)
	}
}

func TestRangeBasics(t *testing.T) {
	r := Range{Start: FromPos(10, 4), End: FromPos(20, 4)}
	if !r.Valid() || r.Level() != 4 || r.Count() != 11 {
		t.Errorf("range basics failed: %+v", r)
	}
	if !r.Contains(FromPos(15, 4)) || r.Contains(FromPos(21, 4)) {
		t.Error("Contains wrong")
	}
	s := Range{Start: FromPos(20, 4), End: FromPos(30, 4)}
	u := Range{Start: FromPos(31, 4), End: FromPos(40, 4)}
	if !r.Overlaps(s) || r.Overlaps(u) {
		t.Error("Overlaps wrong")
	}
	if r.String() == "" {
		t.Error("Range String empty")
	}
	bad := Range{Start: FromPos(10, 4), End: FromPos(5, 3)}
	if bad.Valid() {
		t.Error("cross-level range should be invalid")
	}
}

func TestRangeAtLevel(t *testing.T) {
	id := FaceID(0) // S0
	r := id.RangeAtLevel(2)
	if r.Count() != 16 {
		t.Errorf("S0 at level 2 has %d trixels, want 16", r.Count())
	}
	if r.Start != FaceID(0).Child(0).Child(0) {
		t.Errorf("range start = %s", r.Start)
	}
	if r.End != FaceID(0).Child(3).Child(3) {
		t.Errorf("range end = %s", r.End)
	}
	self := id.RangeAtLevel(0)
	if self.Start != id || self.End != id {
		t.Error("RangeAtLevel at own level should be the singleton range")
	}
}

func TestMergeRanges(t *testing.T) {
	mk := func(a, b uint64) Range { return Range{Start: FromPos(a, 6), End: FromPos(b, 6)} }
	in := []Range{mk(10, 20), mk(25, 30), mk(15, 22), mk(23, 24), mk(40, 41)}
	out := MergeRanges(in)
	want := []Range{mk(10, 30), mk(40, 41)}
	if len(out) != len(want) {
		t.Fatalf("MergeRanges = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MergeRanges[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if got := MergeRanges(nil); len(got) != 0 {
		t.Error("MergeRanges(nil) should be empty")
	}
	single := []Range{mk(1, 2)}
	if got := MergeRanges(single); len(got) != 1 || got[0] != single[0] {
		t.Error("MergeRanges single")
	}
}

func TestRangesOverlap(t *testing.T) {
	mk := func(a, b uint64) Range { return Range{Start: FromPos(a, 6), End: FromPos(b, 6)} }
	a := []Range{mk(0, 5), mk(10, 15)}
	b := []Range{mk(6, 9), mk(16, 20)}
	if RangesOverlap(a, b) {
		t.Error("disjoint sets reported overlapping")
	}
	c := []Range{mk(15, 15)}
	if !RangesOverlap(a, c) {
		t.Error("touching sets reported disjoint")
	}
	if RangesOverlap(nil, a) || RangesOverlap(a, nil) {
		t.Error("nil overlap")
	}
}

func TestCoverCapSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		center := geom.FromRaDec(rng.Float64()*360, math.Asin(rng.Float64()*2-1)*180/math.Pi)
		radius := geom.Radians(0.01 + rng.Float64()*5)
		c := geom.NewCap(center, radius)
		level := 6 + rng.Intn(4)
		cover := CoverCap(c, level)
		if len(cover) == 0 {
			t.Fatalf("empty cover for cap radius %v deg", geom.Degrees(radius))
		}
		// Ranges sorted and non-overlapping.
		for i := 1; i < len(cover); i++ {
			if cover[i].Start <= cover[i-1].End {
				t.Fatalf("cover ranges overlap or unsorted: %v", cover)
			}
		}
		// Soundness: sampled points inside the cap land inside the cover.
		for s := 0; s < 50; s++ {
			// Random point within the cap.
			p := sampleInCap(rng, c)
			id := Lookup(p, level)
			found := false
			for _, r := range cover {
				if r.Contains(id) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("point in cap not covered: iter %d level %d", iter, level)
			}
		}
	}
}

func sampleInCap(rng *rand.Rand, c geom.Cap) geom.Vec3 {
	// Build an orthonormal frame at the center and sample within the
	// angular radius.
	z := c.Center
	var x geom.Vec3
	if math.Abs(z.X) < 0.9 {
		x = geom.Vec3{X: 1}.Sub(z.Scale(z.X)).Normalize()
	} else {
		x = geom.Vec3{Y: 1}.Sub(z.Scale(z.Y)).Normalize()
	}
	y := z.Cross(x)
	theta := rng.Float64() * c.Radius() * 0.999
	phi := rng.Float64() * 2 * math.Pi
	st, ct := math.Sin(theta), math.Cos(theta)
	return z.Scale(ct).Add(x.Scale(st * math.Cos(phi))).Add(y.Scale(st * math.Sin(phi)))
}

func TestCoverCapTightness(t *testing.T) {
	// An arcsecond-scale cap at level 14 should need only a handful of
	// trixels (a level-14 trixel is ~25 arcsec across).
	c := geom.NewCap(geom.FromRaDec(123.4, -12.3), geom.ArcsecToRad(3))
	cover := CoverCap(c, PaperLevel)
	var n uint64
	for _, r := range cover {
		n += r.Count()
	}
	if n > 16 {
		t.Errorf("3-arcsec cap covered by %d level-14 trixels, want few", n)
	}
}

func TestCoverFullSphere(t *testing.T) {
	c := geom.NewCap(geom.Vec3{Z: 1}, math.Pi)
	cover := CoverCap(c, 3)
	var n uint64
	for _, r := range cover {
		n += r.Count()
	}
	if n != NumTrixels(3) {
		t.Errorf("full-sphere cover has %d trixels, want %d", n, NumTrixels(3))
	}
	if len(cover) != 1 {
		t.Errorf("full-sphere cover should merge to one range, got %d", len(cover))
	}
}

func TestTrixelArea(t *testing.T) {
	if got, want := TrixelArea(0), 4*math.Pi/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("TrixelArea(0) = %v, want %v", got, want)
	}
}

// Property: Pos/FromPos are inverse and preserve ordering.
func TestQuickPosOrdering(t *testing.T) {
	f := func(a, b uint16) bool {
		pa, pb := uint64(a)%NumTrixels(5), uint64(b)%NumTrixels(5)
		ia, ib := FromPos(pa, 5), FromPos(pb, 5)
		return (pa < pb) == (ia < ib) && ia.Pos() == pa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ancestor ranges nest.
func TestQuickAncestorNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := FromPos(uint64(rng.Int63n(int64(NumTrixels(10)))), 10)
		anc := id.AncestorAtLevel(4)
		return anc.RangeAtLevel(10).Contains(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupLevel14(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Vec3, 1024)
	for i := range pts {
		pts[i] = geom.FromRaDec(rng.Float64()*360, math.Asin(rng.Float64()*2-1)*180/math.Pi)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lookup(pts[i%len(pts)], PaperLevel)
	}
}

func BenchmarkCoverCapArcsec(b *testing.B) {
	c := geom.NewCap(geom.FromRaDec(200, 30), geom.ArcsecToRad(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoverCap(c, PaperLevel)
	}
}

func TestLookupWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 300; i++ {
		v := geom.FromRaDec(rng.Float64()*360, math.Asin(rng.Float64()*2-1)*180/math.Pi)
		base := Lookup(v, 5)
		got := LookupWithin(base, v, PaperLevel)
		if got.Level() != PaperLevel {
			t.Fatalf("level = %d", got.Level())
		}
		if got.AncestorAtLevel(5) != base {
			t.Fatalf("LookupWithin escaped its base trixel")
		}
		if !got.Contains(v) {
			t.Fatalf("LookupWithin result does not contain point")
		}
		// Must agree with a full Lookup away from boundaries.
		full := Lookup(v, PaperLevel)
		if full != got && full.AncestorAtLevel(5) == base {
			t.Fatalf("LookupWithin %s disagrees with Lookup %s", got, full)
		}
	}
}

func TestLookupWithinSameLevel(t *testing.T) {
	v := geom.FromRaDec(42, 42)
	base := Lookup(v, 7)
	if got := LookupWithin(base, v, 7); got != base {
		t.Errorf("same-level LookupWithin = %s, want %s", got, base)
	}
}

func TestLookupWithinOutsideBaseStillTerminates(t *testing.T) {
	// A point on the far side of the sphere: descent snaps to nearest
	// children and terminates at the right level.
	base := FaceID(0)
	v := base.Center().Scale(-1)
	got := LookupWithin(base, v, 6)
	if got.Level() != 6 || got.AncestorAtLevel(0) != base {
		t.Errorf("outside-point descent broken: %s", got)
	}
}

func TestPanicPaths(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("Child(-1)", func() { FaceID(0).Child(-1) })
	mustPanic("Child(4)", func() { FaceID(0).Child(4) })
	deepest := FromPos(0, MaxLevel)
	mustPanic("Child below MaxLevel", func() { deepest.Child(0) })
	mustPanic("RangeAtLevel above", func() { FromPos(0, 5).RangeAtLevel(3) })
	mustPanic("AncestorAtLevel below", func() { FromPos(0, 3).AncestorAtLevel(5) })
	mustPanic("Lookup bad level", func() { Lookup(geom.Vec3{X: 1}, -1) })
	mustPanic("Lookup deep level", func() { Lookup(geom.Vec3{X: 1}, MaxLevel+1) })
	mustPanic("CoverCap bad level", func() { CoverCap(geom.NewCap(geom.Vec3{X: 1}, 0.1), MaxLevel+1) })
	mustPanic("LookupWithin above base", func() { LookupWithin(FromPos(0, 5), geom.Vec3{X: 1}, 3) })
}

func TestLookupPathologicalPoint(t *testing.T) {
	// The epsilon-snap fallback: a vertex shared by four faces must
	// still resolve deterministically at depth.
	for _, v := range []geom.Vec3{
		{X: 0, Y: 0, Z: 1}, {X: 0, Y: 0, Z: -1}, {X: 1, Y: 0, Z: 0},
	} {
		id := Lookup(v, 12)
		if id.Level() != 12 {
			t.Fatalf("level = %d", id.Level())
		}
	}
}

// Package htm implements the Hierarchical Triangular Mesh (Kunszt, Szalay,
// Csabai, Thakar: "The Indexing of the SDSS Science Archive", ADASS 2000),
// the spatial index LifeRaft uses to partition sky catalogs and to assign
// cross-match objects to buckets.
//
// HTM decomposes the unit sphere into eight spherical triangles (the faces
// of an octahedron) and recursively subdivides each triangle into four by
// bisecting its edges. A trixel at level L is identified by an integer ID
// whose binary representation is a 4-bit face prefix (values 8-15)
// followed by two bits per level selecting a child (0-3). Level-14 IDs
// therefore occupy 32 bits, matching the IDs SkyQuery assigns to
// observations.
//
// The ID numbering is a space-filling curve: trixels that are adjacent in
// ID order are spatially close, so a contiguous ID range corresponds to a
// compact region of sky. LifeRaft exploits this to define equal-sized
// buckets as contiguous ID ranges (paper §3.1, Figure 1).
package htm

import (
	"fmt"
	"math/bits"
	"sort"

	"liferaft/internal/geom"
)

// MaxLevel is the deepest subdivision supported. Level 20 trixels are
// ~0.4 arcseconds across, far below any cross-match radius of interest.
const MaxLevel = 20

// PaperLevel is the subdivision depth used by SkyQuery and throughout the
// paper: level-14 IDs fit in 32 bits.
const PaperLevel = 14

// ID identifies an HTM trixel. The zero value is invalid.
type ID uint64

// octahedron vertices, in the order used by the SDSS HTM code.
var octVerts = [6]geom.Vec3{
	{X: 0, Y: 0, Z: 1},  // v0: north pole
	{X: 1, Y: 0, Z: 0},  // v1
	{X: 0, Y: 1, Z: 0},  // v2
	{X: -1, Y: 0, Z: 0}, // v3
	{X: 0, Y: -1, Z: 0}, // v4
	{X: 0, Y: 0, Z: -1}, // v5: south pole
}

// faces maps face index (ID 8+i) to vertex indices, following the standard
// HTM layout: S0-S3 are IDs 8-11, N0-N3 are IDs 12-15.
var faces = [8][3]int{
	{1, 5, 2}, // S0 = 8
	{2, 5, 3}, // S1 = 9
	{3, 5, 4}, // S2 = 10
	{4, 5, 1}, // S3 = 11
	{1, 0, 4}, // N0 = 12
	{4, 0, 3}, // N1 = 13
	{3, 0, 2}, // N2 = 14
	{2, 0, 1}, // N3 = 15
}

var faceNames = [8]string{"S0", "S1", "S2", "S3", "N0", "N1", "N2", "N3"}

// FaceID returns the level-0 trixel ID for face index i in [0, 8).
func FaceID(i int) ID {
	if i < 0 || i >= 8 {
		panic(fmt.Sprintf("htm: face index %d out of range", i))
	}
	return ID(8 + i)
}

// FaceTriangle returns the spherical triangle of face index i in [0, 8).
func FaceTriangle(i int) geom.Triangle {
	f := faces[i]
	return geom.Triangle{V0: octVerts[f[0]], V1: octVerts[f[1]], V2: octVerts[f[2]]}
}

// Valid reports whether id encodes a trixel: the leading 1 bit must sit at
// an even bit-length position of at least 4 (level 0 IDs are 8-15, each
// level appends exactly two bits), and the level must not exceed MaxLevel.
func (id ID) Valid() bool {
	n := bits.Len64(uint64(id))
	return n >= 4 && n%2 == 0 && (n-4)/2 <= MaxLevel
}

// Level returns the subdivision level of id. It panics on invalid IDs.
func (id ID) Level() int {
	if !id.Valid() {
		panic(fmt.Sprintf("htm: invalid ID %#x", uint64(id)))
	}
	return (bits.Len64(uint64(id)) - 4) / 2
}

// Parent returns the trixel containing id at the previous level. It panics
// on level-0 IDs.
func (id ID) Parent() ID {
	if id.Level() == 0 {
		panic("htm: level-0 trixel has no parent")
	}
	return id >> 2
}

// Child returns the i-th child (i in [0,4)) of id at the next level.
func (id ID) Child(i int) ID {
	if i < 0 || i >= 4 {
		panic(fmt.Sprintf("htm: child index %d out of range", i))
	}
	if id.Level() >= MaxLevel {
		panic("htm: cannot subdivide below MaxLevel")
	}
	return id<<2 | ID(i)
}

// ChildIndex returns which child of its parent id is (0-3).
func (id ID) ChildIndex() int { return int(id & 3) }

// FaceIndex returns the octahedron face (0-7) that id descends from.
func (id ID) FaceIndex() int {
	return int(id>>(2*uint(id.Level()))) - 8
}

// Triangle returns the spherical triangle covered by id, computed by
// descending the quad-tree from the face triangle.
func (id ID) Triangle() geom.Triangle {
	level := id.Level()
	tri := FaceTriangle(id.FaceIndex())
	for l := level - 1; l >= 0; l-- {
		child := int(id>>(2*uint(l))) & 3
		tri = subTriangle(tri, child)
	}
	return tri
}

// subTriangle returns child i of tri under HTM's midpoint subdivision.
func subTriangle(tri geom.Triangle, i int) geom.Triangle {
	w0 := tri.V1.Mid(tri.V2)
	w1 := tri.V0.Mid(tri.V2)
	w2 := tri.V0.Mid(tri.V1)
	switch i {
	case 0:
		return geom.Triangle{V0: tri.V0, V1: w2, V2: w1}
	case 1:
		return geom.Triangle{V0: tri.V1, V1: w0, V2: w2}
	case 2:
		return geom.Triangle{V0: tri.V2, V1: w1, V2: w0}
	default:
		return geom.Triangle{V0: w0, V1: w1, V2: w2}
	}
}

// Contains reports whether unit vector v lies in the trixel.
func (id ID) Contains(v geom.Vec3) bool { return id.Triangle().Contains(v) }

// Center returns the centroid of the trixel, a convenient representative
// point for density evaluation.
func (id ID) Center() geom.Vec3 { return id.Triangle().Center() }

// Name returns the conventional string form of the ID: the face name
// followed by one digit per level, e.g. "N32030330".
func (id ID) Name() string {
	level := id.Level()
	buf := make([]byte, 0, 2+level)
	buf = append(buf, faceNames[id.FaceIndex()]...)
	for l := level - 1; l >= 0; l-- {
		buf = append(buf, byte('0'+int(id>>(2*uint(l)))&3))
	}
	return string(buf)
}

// ParseName parses the conventional string form produced by Name.
func ParseName(s string) (ID, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("htm: name %q too short", s)
	}
	face := -1
	for i, n := range faceNames {
		if s[:2] == n {
			face = i
			break
		}
	}
	if face < 0 {
		return 0, fmt.Errorf("htm: name %q has no valid face prefix", s)
	}
	if len(s)-2 > MaxLevel {
		return 0, fmt.Errorf("htm: name %q deeper than MaxLevel", s)
	}
	id := ID(8 + face)
	for _, c := range s[2:] {
		if c < '0' || c > '3' {
			return 0, fmt.Errorf("htm: name %q has invalid digit %q", s, c)
		}
		id = id<<2 | ID(c-'0')
	}
	return id, nil
}

// String implements fmt.Stringer.
func (id ID) String() string {
	if !id.Valid() {
		return fmt.Sprintf("htm.ID(%#x)", uint64(id))
	}
	return id.Name()
}

// FirstAtLevel returns the smallest trixel ID at the given level.
func FirstAtLevel(level int) ID { return ID(8) << (2 * uint(level)) }

// LastAtLevel returns the largest trixel ID at the given level.
func LastAtLevel(level int) ID { return ID(16)<<(2*uint(level)) - 1 }

// NumTrixels returns the number of trixels at the given level (8 * 4^level).
func NumTrixels(level int) uint64 { return 8 << (2 * uint(level)) }

// Pos returns the position of id along the space-filling curve at its own
// level: 0 for the first trixel, NumTrixels(level)-1 for the last.
func (id ID) Pos() uint64 { return uint64(id - FirstAtLevel(id.Level())) }

// FromPos returns the trixel at curve position pos of the given level.
func FromPos(pos uint64, level int) ID {
	if pos >= NumTrixels(level) {
		panic(fmt.Sprintf("htm: position %d out of range at level %d", pos, level))
	}
	return FirstAtLevel(level) + ID(pos)
}

// RangeAtLevel returns the inclusive range of level-`level` IDs descended
// from id. level must be >= id.Level().
func (id ID) RangeAtLevel(level int) Range {
	shift := 2 * uint(level-id.Level())
	if level < id.Level() {
		panic("htm: RangeAtLevel target above trixel level")
	}
	return Range{Start: id << shift, End: (id+1)<<shift - 1}
}

// AncestorAtLevel returns the enclosing trixel of id at the given
// (shallower or equal) level.
func (id ID) AncestorAtLevel(level int) ID {
	d := id.Level() - level
	if d < 0 {
		panic("htm: AncestorAtLevel target below trixel level")
	}
	return id >> (2 * uint(d))
}

// Lookup returns the trixel of the given level containing unit vector v.
// Points on trixel boundaries resolve deterministically to the
// lowest-numbered containing child.
func Lookup(v geom.Vec3, level int) ID {
	if level < 0 || level > MaxLevel {
		panic(fmt.Sprintf("htm: level %d out of range", level))
	}
	v = v.Normalize()
	face := -1
	var tri geom.Triangle
	for i := 0; i < 8; i++ {
		tri = FaceTriangle(i)
		if tri.Contains(v) {
			face = i
			break
		}
	}
	if face < 0 {
		// Numerically pathological; snap to the nearest face by centroid.
		best, bestDot := 0, -2.0
		for i := 0; i < 8; i++ {
			d := FaceTriangle(i).Center().Dot(v)
			if d > bestDot {
				best, bestDot = i, d
			}
		}
		face = best
		tri = FaceTriangle(face)
	}
	id := ID(8 + face)
	for l := 0; l < level; l++ {
		placed := false
		for c := 0; c < 4; c++ {
			sub := subTriangle(tri, c)
			if sub.Contains(v) {
				id = id<<2 | ID(c)
				tri = sub
				placed = true
				break
			}
		}
		if !placed {
			// Epsilon gaps can exclude a boundary point from all four
			// children; snap to the child whose centroid is nearest.
			best, bestDot := 0, -2.0
			for c := 0; c < 4; c++ {
				d := subTriangle(tri, c).Center().Dot(v)
				if d > bestDot {
					best, bestDot = c, d
				}
			}
			id = id<<2 | ID(best)
			tri = subTriangle(tri, best)
		}
	}
	return id
}

// LookupWithin returns the trixel of the given level containing v,
// descending from base instead of from the octahedron faces. It is the
// fast path for catalog generation, where the containing coarse trixel is
// already known. If v lies outside base (within epsilon), the descent
// still terminates by snapping to the nearest child at each level.
func LookupWithin(base ID, v geom.Vec3, level int) ID {
	if level < base.Level() {
		panic("htm: LookupWithin target above base level")
	}
	v = v.Normalize()
	id := base
	tri := base.Triangle()
	for l := base.Level(); l < level; l++ {
		placed := false
		for c := 0; c < 4; c++ {
			sub := subTriangle(tri, c)
			if sub.Contains(v) {
				id = id<<2 | ID(c)
				tri = sub
				placed = true
				break
			}
		}
		if !placed {
			best, bestDot := 0, -2.0
			for c := 0; c < 4; c++ {
				d := subTriangle(tri, c).Center().Dot(v)
				if d > bestDot {
					best, bestDot = c, d
				}
			}
			id = id<<2 | ID(best)
			tri = subTriangle(tri, best)
		}
	}
	return id
}

// Range is an inclusive range [Start, End] of trixel IDs at a single
// level. Ranges are the unit of spatial filtering: a cross-match object's
// bounding box is a set of Ranges, and buckets are Ranges.
type Range struct {
	Start, End ID
}

// Valid reports whether the range is well formed: both endpoints valid,
// same level, Start <= End.
func (r Range) Valid() bool {
	return r.Start.Valid() && r.End.Valid() && r.Start <= r.End &&
		bits.Len64(uint64(r.Start)) == bits.Len64(uint64(r.End))
}

// Level returns the level of the range's trixels.
func (r Range) Level() int { return r.Start.Level() }

// Count returns the number of trixels in the range.
func (r Range) Count() uint64 { return uint64(r.End-r.Start) + 1 }

// Contains reports whether the range includes id (which must be at the
// same level).
func (r Range) Contains(id ID) bool { return id >= r.Start && id <= r.End }

// Overlaps reports whether two same-level ranges share any trixel.
func (r Range) Overlaps(s Range) bool { return r.Start <= s.End && s.Start <= r.End }

// String implements fmt.Stringer.
func (r Range) String() string {
	return fmt.Sprintf("[%s, %s]", r.Start.Name(), r.End.Name())
}

// CoverCap computes a sorted, merged list of level-`level` ID ranges that
// together cover the spherical cap c: every point of the cap lies in some
// returned range. This is the coarse filter of paper §3.1: a cross-match
// object's potential join region (its positional-error cap) is converted
// to HTM ranges, which are then intersected with bucket ranges.
//
// The cover is conservative (it may include trixels that only graze the
// cap) but sound (it never omits a trixel intersecting the cap).
func CoverCap(c geom.Cap, level int) []Range {
	if level < 0 || level > MaxLevel {
		panic(fmt.Sprintf("htm: level %d out of range", level))
	}
	var out []Range
	for i := 0; i < 8; i++ {
		coverNode(FaceID(i), FaceTriangle(i), c, level, &out)
	}
	return MergeRanges(out)
}

func coverNode(id ID, tri geom.Triangle, c geom.Cap, level int, out *[]Range) {
	switch tri.CapRelation(c) {
	case geom.Disjoint:
		return
	case geom.Inside:
		*out = append(*out, id.RangeAtLevel(level))
		return
	}
	if id.Level() == level {
		*out = append(*out, Range{Start: id, End: id})
		return
	}
	for i := 0; i < 4; i++ {
		coverNode(id.Child(i), subTriangle(tri, i), c, level, out)
	}
}

// MergeRanges sorts ranges by Start and coalesces overlapping or adjacent
// ranges. All ranges must be at the same level.
func MergeRanges(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End+1 {
			if r.End > last.End {
				last.End = r.End
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// RangesOverlap reports whether any range in a overlaps any range in b.
// Both slices must be sorted by Start (as returned by CoverCap or
// MergeRanges). Runs in O(len(a)+len(b)).
func RangesOverlap(a, b []Range) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Overlaps(b[j]) {
			return true
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return false
}

// TrixelArea returns the average solid angle of a trixel at the given
// level: 4*pi / NumTrixels(level) steradians.
func TrixelArea(level int) float64 {
	return 4 * 3.141592653589793 / float64(NumTrixels(level))
}

// Package segment implements the persistent on-disk bucket store: the
// real-I/O backend behind bucket.Store. The analytic model in
// internal/disk reproduces the paper's measured constants without
// touching hardware; this package is where the reproduction finally
// does real reads, so throughput can be measured against actual disks
// instead of derived from Tb and Tm.
//
// Layout. A segment directory holds one segment file per *bucket
// group* — a contiguous run of buckets in HTM-curve order — plus a
// MANIFEST.json written last (its atomic rename marks the directory
// complete). Each segment file is
//
//	[ header block | bucket index | bucket blocks ... ]
//
// where every region starts on a BlockSize (4 KiB) boundary:
//
//   - The header is one 4 KiB block: magic, format version, the bucket
//     range the file covers, the record stride, and two CRC32-C
//     checksums (one over the header fields, one over the index
//     region), so a truncated or foreign file is rejected before any
//     bucket is read.
//   - The index holds one fixed-width entry per bucket: data offset,
//     byte length, object count, and the CRC32-C of the bucket's data
//     region.
//   - A bucket block is the bucket's objects encoded as fixed-stride
//     records (the stride is the partition's on-disk object size, the
//     paper's 4 KiB SDSS row by default), in HTM-curve order — exactly
//     what Partition.Materialize returns, so a full-block pread is the
//     sequential bucket scan the scheduler charges for.
//
// Records encode every catalog.Object field bit-exactly (IEEE-754 bits
// for the floats), so a materializing read returns objects identical to
// the synthetic catalog's — the property the backend parity test in
// internal/core relies on.
//
// Readers use pread (os.File.ReadAt) exclusively: no seek state, safe
// for concurrent bucket reads from one descriptor, and each shard of a
// sharded engine opens its own Set so descriptors are never shared
// across schedulers.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
)

// floatBits and bitsFloat round-trip IEEE-754 doubles bit-exactly, so
// positions and magnitudes survive the disk unchanged.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

const (
	// Magic identifies a LifeRaft segment file ("LFSG").
	Magic = 0x4C465347
	// FormatVersion is bumped on any incompatible layout change;
	// readers reject files from other versions.
	FormatVersion = 1
	// BlockSize aligns the header, index, and every bucket's data
	// region. 4 KiB matches both the paper's per-object row size and
	// the page size real disks and file systems transfer in.
	BlockSize = 4096
	// RecordBytes is the encoded payload of one object: ID, level-14
	// HTM ID, three position coordinates, and the magnitude, all
	// little-endian 8-byte words. The on-disk stride is the partition's
	// object size and must be at least this.
	RecordBytes = 48
	// headerBytes is the fixed-width header field region covered by the
	// header checksum.
	headerBytes = 40
	// indexEntryBytes is the fixed width of one bucket index entry.
	indexEntryBytes = 32
	// ManifestName is the directory's completion marker, written last.
	ManifestName = "MANIFEST.json"
)

// castagnoli is the CRC32-C table; Castagnoli is hardware-accelerated
// on amd64/arm64, which matters on the scan path.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// header describes one segment file.
type header struct {
	version     uint32
	firstBucket uint32
	numBuckets  uint32
	objectBytes uint32
	blockSize   uint32
	indexCRC    uint32
}

// marshalHeader encodes h into a BlockSize block. Layout (little-endian
// u32 words): magic, version, flags, firstBucket, numBuckets,
// objectBytes, blockSize, indexCRC, reserved, headerCRC.
func marshalHeader(h header) []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], Magic)
	le.PutUint32(b[4:], h.version)
	le.PutUint32(b[8:], 0) // flags, reserved
	le.PutUint32(b[12:], h.firstBucket)
	le.PutUint32(b[16:], h.numBuckets)
	le.PutUint32(b[20:], h.objectBytes)
	le.PutUint32(b[24:], h.blockSize)
	le.PutUint32(b[28:], h.indexCRC)
	le.PutUint32(b[32:], 0) // reserved
	le.PutUint32(b[36:], crc32.Checksum(b[:36], castagnoli))
	return b
}

// unmarshalHeader decodes and verifies a header block.
func unmarshalHeader(b []byte) (header, error) {
	if len(b) < headerBytes {
		return header{}, fmt.Errorf("segment: short header (%d bytes)", len(b))
	}
	le := binary.LittleEndian
	if got := le.Uint32(b[0:]); got != Magic {
		return header{}, fmt.Errorf("segment: bad magic %#x (not a segment file)", got)
	}
	if sum := crc32.Checksum(b[:36], castagnoli); sum != le.Uint32(b[36:]) {
		return header{}, fmt.Errorf("segment: header checksum mismatch")
	}
	h := header{
		version:     le.Uint32(b[4:]),
		firstBucket: le.Uint32(b[12:]),
		numBuckets:  le.Uint32(b[16:]),
		objectBytes: le.Uint32(b[20:]),
		blockSize:   le.Uint32(b[24:]),
		indexCRC:    le.Uint32(b[28:]),
	}
	if h.version != FormatVersion {
		return header{}, fmt.Errorf("segment: format version %d (reader supports %d)", h.version, FormatVersion)
	}
	if h.blockSize != BlockSize {
		return header{}, fmt.Errorf("segment: block size %d (reader supports %d)", h.blockSize, BlockSize)
	}
	if h.objectBytes < RecordBytes {
		return header{}, fmt.Errorf("segment: object stride %d below record size %d", h.objectBytes, RecordBytes)
	}
	return h, nil
}

// indexEntry locates one bucket's data region within its segment file.
type indexEntry struct {
	offset  uint64
	length  uint64
	objects uint32
	crc     uint32
}

func putIndexEntry(b []byte, e indexEntry) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], e.offset)
	le.PutUint64(b[8:], e.length)
	le.PutUint32(b[16:], e.objects)
	le.PutUint32(b[20:], e.crc)
	le.PutUint64(b[24:], 0) // reserved
}

func getIndexEntry(b []byte) indexEntry {
	le := binary.LittleEndian
	return indexEntry{
		offset:  le.Uint64(b[0:]),
		length:  le.Uint64(b[8:]),
		objects: le.Uint32(b[16:]),
		crc:     le.Uint32(b[20:]),
	}
}

// encodeObject writes o as one fixed-stride record into dst (stride
// bytes; the tail past RecordBytes is zero padding, standing in for the
// wide survey row the paper's 4 KiB objects model).
func encodeObject(dst []byte, o catalog.Object) {
	le := binary.LittleEndian
	le.PutUint64(dst[0:], o.ID)
	le.PutUint64(dst[8:], uint64(o.HTMID))
	le.PutUint64(dst[16:], floatBits(o.Pos.X))
	le.PutUint64(dst[24:], floatBits(o.Pos.Y))
	le.PutUint64(dst[32:], floatBits(o.Pos.Z))
	le.PutUint64(dst[40:], floatBits(o.Mag))
}

// decodeObject is the exact inverse of encodeObject.
func decodeObject(src []byte) catalog.Object {
	le := binary.LittleEndian
	return catalog.Object{
		ID:    le.Uint64(src[0:]),
		HTMID: htm.ID(le.Uint64(src[8:])),
		Pos: geom.Vec3{
			X: bitsFloat(le.Uint64(src[16:])),
			Y: bitsFloat(le.Uint64(src[24:])),
			Z: bitsFloat(le.Uint64(src[32:])),
		},
		Mag: bitsFloat(le.Uint64(src[40:])),
	}
}

// alignUp rounds n up to the next BlockSize boundary.
func alignUp(n int64) int64 {
	rem := n % BlockSize
	if rem == 0 {
		return n
	}
	return n + BlockSize - rem
}

// segmentName returns the file name of segment i.
func segmentName(i int) string { return fmt.Sprintf("seg-%05d.lfseg", i) }

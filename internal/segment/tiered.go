package segment

import (
	"fmt"
	"sync/atomic"

	"liferaft/internal/bucket"
	"liferaft/internal/cache/disktier"
	"liferaft/internal/catalog"
)

// TieredBackend layers the disk cache tier between the bucket store and
// the segment set: reads that hit the tier are served from the mmap'd
// group region (page touches for cost-only probes, in-place record
// decoding for materializing reads) and misses fall through to the
// segment files while promoting the whole bucket group in the
// background. It also exposes the promotion hook the scheduler's
// Eq.-2-driven prefetcher calls: the tier's caching granule is the
// bucket group — exactly one segment file's data region — so a single
// promotion warms every bucket the group holds.
//
// The tier is shared across forks (one promotion benefits every shard);
// the segment Set is reopened per fork as before so descriptors stay
// shard-private. Foreground hit/miss counters are per fork, giving the
// per-shard tier metrics without cross-shard double counting.
type TieredBackend struct {
	set         *Set
	tier        *disktier.Tier
	tierRefs    *atomic.Int32
	materialize bool

	hits   atomic.Int64
	misses atomic.Int64
	// probeSink keeps the page-touch loop from being optimized away.
	probeSink atomic.Uint32
}

// NewTieredBackend wraps an opened Set and an opened disk tier. The
// backend owns the tier: the last Close (across forks) closes it.
func NewTieredBackend(set *Set, tier *disktier.Tier, materialize bool) *TieredBackend {
	refs := &atomic.Int32{}
	refs.Store(1)
	return &TieredBackend{set: set, tier: tier, tierRefs: refs, materialize: materialize}
}

// Set returns the underlying segment set.
func (b *TieredBackend) Set() *Set { return b.set }

// Tier returns the shared disk tier (metrics and benches poll it).
func (b *TieredBackend) Tier() *disktier.Tier { return b.tier }

// ForegroundCounts returns this fork's tier hit/miss counts — the
// per-shard numbers, unlike the tier-global disktier.Stats.
func (b *TieredBackend) ForegroundCounts() (hits, misses int64) {
	return b.hits.Load(), b.misses.Load()
}

// get pins bucket i's group region when resident, resolving the
// bucket's region-relative extent. A corrupt tier entry registers as a
// miss inside the tier (and is dropped there), so the caller falls
// through to the segment files.
func (b *TieredBackend) get(i int) (h disktier.Handle, lo, hi int64, ok bool, err error) {
	g, lo, hi, err := b.set.GroupExtent(i)
	if err != nil {
		return disktier.Handle{}, 0, 0, false, err
	}
	h, ok = b.tier.Get(uint32(g))
	if ok && hi > int64(len(h.Bytes())) {
		// The cached region disagrees with the index — treat as a miss
		// and let the fill path replace it.
		h.Release()
		return disktier.Handle{}, 0, 0, false, nil
	}
	return h, lo, hi, ok, nil
}

// promote schedules a background fill of bucket i's group.
func (b *TieredBackend) promote(i int, prefetch bool) bool {
	g := b.set.GroupOf(i)
	if g < 0 {
		return false
	}
	return b.tier.Promote(uint32(g), prefetch, func() ([]byte, error) {
		return b.set.ReadGroupRegion(g)
	})
}

// PrefetchBucket implements bucket.Prefetcher: promote bucket i's group
// toward the fast tier ahead of its service. Best-effort — residency,
// a pending fill, or an exhausted in-flight budget all return false
// without work.
func (b *TieredBackend) PrefetchBucket(i int) bool { return b.promote(i, true) }

// touchPages walks one byte per block of region — the page-granular
// probe I/O of an mmap'd read, faulting pages in without copying them.
func (b *TieredBackend) touchPages(region []byte) int64 {
	var x byte
	for off := 0; off < len(region); off += BlockSize {
		x ^= region[off]
	}
	b.probeSink.Store(uint32(x))
	return int64(len(region))
}

// decodeRegion decodes the fixed-stride records of one bucket's slice
// of a group region.
func (b *TieredBackend) decodeRegion(region []byte) []catalog.Object {
	stride := int(b.set.man.ObjectBytes)
	objs := make([]catalog.Object, len(region)/stride)
	for j := range objs {
		objs[j] = decodeObject(region[j*stride:])
	}
	return objs
}

// ReadBucket implements bucket.Backend: a tier hit serves the bucket
// from the mapped group region (decoded in place when materializing,
// page-touched when cost-only); a miss reads the segment file exactly
// as the untiered backend would and promotes the group behind the
// read.
func (b *TieredBackend) ReadBucket(i int) ([]catalog.Object, int64, error) {
	h, lo, hi, ok, err := b.get(i)
	if err != nil {
		return nil, 0, err
	}
	if ok {
		b.hits.Add(1)
		region := h.Bytes()[lo:hi]
		var objs []catalog.Object
		if b.materialize {
			objs = b.decodeRegion(region)
		} else {
			b.touchPages(region)
		}
		h.Release()
		return objs, hi - lo, nil
	}
	b.misses.Add(1)
	b.promote(i, false)
	if !b.materialize {
		_, n, err := b.set.ReadBucketRaw(i)
		return nil, n, err
	}
	return b.set.ReadBucket(i)
}

// Probe implements bucket.Backend: on a tier hit a cost-only probe
// touches just the n head pages of the bucket's region, a
// materializing probe decodes the whole bucket (the join evaluator
// needs its objects, per the simulated store's contract). Misses fall
// through and promote, like ReadBucket.
func (b *TieredBackend) Probe(i, n int) ([]catalog.Object, int64, error) {
	h, lo, hi, ok, err := b.get(i)
	if err != nil {
		return nil, 0, err
	}
	if ok {
		b.hits.Add(1)
		region := h.Bytes()[lo:hi]
		if !b.materialize {
			want := int64(n) * BlockSize
			if want > int64(len(region)) {
				want = int64(len(region))
			}
			b.touchPages(region[:want])
			h.Release()
			return nil, want, nil
		}
		objs := b.decodeRegion(region)
		h.Release()
		return objs, hi - lo, nil
	}
	b.misses.Add(1)
	b.promote(i, false)
	if !b.materialize {
		read, err := b.set.ReadPages(i, n)
		return nil, read, err
	}
	return b.set.ReadBucket(i)
}

// Fork implements bucket.Backend: an independent Set (own descriptors)
// over the same shared tier.
func (b *TieredBackend) Fork() (bucket.Backend, error) {
	set, err := b.set.Reopen()
	if err != nil {
		return nil, err
	}
	if b.tierRefs.Add(1) <= 1 {
		set.Close()
		return nil, fmt.Errorf("segment: fork of a closed tiered backend")
	}
	return &TieredBackend{set: set, tier: b.tier, tierRefs: b.tierRefs, materialize: b.materialize}, nil
}

// Close implements bucket.Backend; the last fork to close also closes
// the shared tier (persisting its eviction state). In-flight
// promotions read through this fork's Set, so they are drained before
// its descriptors go away.
func (b *TieredBackend) Close() error {
	b.tier.WaitIdle()
	err := b.set.Close()
	if b.tierRefs.Add(-1) == 0 {
		if terr := b.tier.Close(); err == nil {
			err = terr
		}
	}
	return err
}

package segment

import (
	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
)

// FileBackend adapts a Set to the bucket.Backend interface: the store's
// sequential scans become full-region preads with checksum
// verification, and index probes become page reads from the bucket's
// block run. In cost-only mode (the configuration scheduling
// experiments use) reads still move every byte — that is the point —
// but skip decoding.
type FileBackend struct {
	set         *Set
	materialize bool
}

// NewBackend wraps an opened Set. materialize must match the Store the
// backend serves: a materializing store needs decoded objects, a
// cost-only store needs only the I/O.
func NewBackend(set *Set, materialize bool) *FileBackend {
	return &FileBackend{set: set, materialize: materialize}
}

// Set returns the underlying segment set.
func (b *FileBackend) Set() *Set { return b.set }

// ReadBucket implements bucket.Backend: a checksum-verified pread of
// the bucket's full data region.
func (b *FileBackend) ReadBucket(i int) ([]catalog.Object, int64, error) {
	if !b.materialize {
		_, n, err := b.set.ReadBucketRaw(i)
		return nil, n, err
	}
	return b.set.ReadBucket(i)
}

// Probe implements bucket.Backend. A materializing probe must hand the
// join evaluator the bucket's objects (it probes them in memory, as the
// simulated store's contract prescribes), so it reads the full region;
// a cost-only probe reads just the n head pages an index pass would
// touch. Either way the caller accounts n probes, not a scan.
func (b *FileBackend) Probe(i, n int) ([]catalog.Object, int64, error) {
	if !b.materialize {
		read, err := b.set.ReadPages(i, n)
		return nil, read, err
	}
	objs, read, err := b.set.ReadBucket(i)
	return objs, read, err
}

// Fork implements bucket.Backend: an independent Set over the same
// directory, with its own file descriptors.
func (b *FileBackend) Fork() (bucket.Backend, error) {
	set, err := b.set.Reopen()
	if err != nil {
		return nil, err
	}
	return &FileBackend{set: set, materialize: b.materialize}, nil
}

// Close implements bucket.Backend.
func (b *FileBackend) Close() error { return b.set.Close() }

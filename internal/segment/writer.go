package segment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"liferaft/internal/bucket"
)

// DefaultBucketsPerSegment groups 64 buckets per segment file: large
// enough that a paper-scale store is a few hundred files instead of
// twenty thousand, small enough that compaction (a future rewrite unit)
// stays bounded.
const DefaultBucketsPerSegment = 64

// WriteOptions tunes segment building.
type WriteOptions struct {
	// BucketsPerSegment is the bucket-group size; 0 means
	// DefaultBucketsPerSegment.
	BucketsPerSegment int
}

// WriteStats reports what a Write produced.
type WriteStats struct {
	Segments int
	Buckets  int
	Objects  int64
	// Bytes is the total size of the segment files, padding included.
	Bytes int64
}

// manifest is the directory-level completion marker and geometry
// record. Readers validate it against the partition they serve;
// GenLevel/Seed/Derived record the catalog's provenance so a tool
// holding only the directory can re-synthesize the base survey the
// store was built from (see Set.Geometry).
type manifest struct {
	FormatVersion     int      `json:"format_version"`
	Catalog           string   `json:"catalog"`
	TotalObjects      int64    `json:"total_objects"`
	NumBuckets        int      `json:"num_buckets"`
	PerBucket         int      `json:"per_bucket"`
	ObjectBytes       int64    `json:"object_bytes"`
	GenLevel          int      `json:"gen_level"`
	Seed              int64    `json:"seed"`
	Derived           bool     `json:"derived,omitempty"`
	BucketsPerSegment int      `json:"buckets_per_segment"`
	Segments          []string `json:"segments"`
}

// Write materializes every bucket of part into segment files under dir
// (created if missing). Each file is written to a temporary name,
// synced, and renamed; the manifest is written the same way, last, so a
// crash mid-build leaves either a directory without a manifest (rebuilt
// on the next Write) or a complete store — never a readable torn one.
func Write(dir string, part *bucket.Partition, opts WriteOptions) (WriteStats, error) {
	group := opts.BucketsPerSegment
	if group <= 0 {
		group = DefaultBucketsPerSegment
	}
	stride := part.ObjectBytes()
	if stride < RecordBytes {
		return WriteStats{}, fmt.Errorf("segment: partition object size %d cannot hold a %d-byte record", stride, RecordBytes)
	}
	if stride > 1<<31-1 {
		return WriteStats{}, fmt.Errorf("segment: object size %d too large", stride)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return WriteStats{}, err
	}
	var st WriteStats
	m := manifest{
		FormatVersion:     FormatVersion,
		Catalog:           part.Catalog().Name(),
		TotalObjects:      int64(part.Catalog().Total()),
		NumBuckets:        part.NumBuckets(),
		PerBucket:         part.PerBucket(),
		ObjectBytes:       stride,
		GenLevel:          part.Catalog().GenLevel(),
		Seed:              part.Catalog().Seed(),
		Derived:           part.Catalog().Derived(),
		BucketsPerSegment: group,
	}
	for first, seg := 0, 0; first < part.NumBuckets(); first, seg = first+group, seg+1 {
		n := group
		if first+n > part.NumBuckets() {
			n = part.NumBuckets() - first
		}
		name := segmentName(seg)
		written, objs, err := writeSegment(filepath.Join(dir, name), part, first, n, int(stride))
		if err != nil {
			return WriteStats{}, fmt.Errorf("segment: writing %s: %w", name, err)
		}
		m.Segments = append(m.Segments, name)
		st.Segments++
		st.Buckets += n
		st.Objects += objs
		st.Bytes += written
	}
	// Make the segment renames durable before the manifest appears:
	// POSIX does not order directory-entry updates across renames, so
	// without this a power loss could journal the manifest's entry but
	// not a segment's, leaving a manifest that points at missing files
	// — the torn state the manifest-last protocol exists to rule out.
	if err := syncDir(dir); err != nil {
		return WriteStats{}, err
	}
	if err := writeManifest(dir, m); err != nil {
		return WriteStats{}, err
	}
	if err := syncDir(dir); err != nil {
		return WriteStats{}, err
	}
	return st, nil
}

// syncDir fsyncs a directory, making renames into it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSegment writes one segment file covering buckets [first,
// first+n) and returns its final size and object count. The header and
// index are laid out first as zero blocks, the bucket data streamed
// behind them, and both are back-filled once every checksum is known.
func writeSegment(path string, part *bucket.Partition, first, n, stride int) (int64, int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	indexBytes := alignUp(int64(n) * indexEntryBytes)
	dataStart := BlockSize + indexBytes
	if _, err := f.Seek(dataStart, 0); err != nil {
		return 0, 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	entries := make([]indexEntry, n)
	record := make([]byte, stride)
	var pad [BlockSize]byte
	off := dataStart
	var objects int64
	for i := 0; i < n; i++ {
		objs := part.Materialize(first + i)
		crc := crc32.New(castagnoli)
		length := int64(0)
		// The stride tail past RecordBytes stays zero from the initial
		// make; encodeObject rewrites all of [0, RecordBytes) each
		// iteration, so the buffer needs no per-object clearing.
		for _, o := range objs {
			encodeObject(record, o)
			crc.Write(record)
			if _, err := w.Write(record); err != nil {
				return 0, 0, err
			}
			length += int64(stride)
		}
		entries[i] = indexEntry{
			offset:  uint64(off),
			length:  uint64(length),
			objects: uint32(len(objs)),
			crc:     crc.Sum32(),
		}
		objects += int64(len(objs))
		// Pad to the next block boundary so every bucket read is
		// block-aligned.
		if padding := alignUp(off+length) - (off + length); padding > 0 {
			if _, err := w.Write(pad[:padding]); err != nil {
				return 0, 0, err
			}
		}
		off = alignUp(off + length)
	}
	if err := w.Flush(); err != nil {
		return 0, 0, err
	}

	// Back-fill the index and header now that the checksums are known.
	index := make([]byte, indexBytes)
	for i, e := range entries {
		putIndexEntry(index[i*indexEntryBytes:], e)
	}
	if _, err := f.WriteAt(index, BlockSize); err != nil {
		return 0, 0, err
	}
	hdr := marshalHeader(header{
		version:     FormatVersion,
		firstBucket: uint32(first),
		numBuckets:  uint32(n),
		objectBytes: uint32(stride),
		blockSize:   BlockSize,
		indexCRC:    crc32.Checksum(index, castagnoli),
	})
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		f = nil
		return 0, 0, err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	return off, objects, nil
}

// writeManifest atomically installs the manifest: tmp, sync, rename.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// Ensure opens the segment store under dir, building it first when the
// manifest is missing (an interrupted build leaves no manifest, so
// Ensure also recovers those). The opened set is validated against
// part; a directory built for different geometry is an error, not a
// rebuild — silently clobbering data a caller pointed at by mistake is
// how real stores eat archives.
func Ensure(dir string, part *bucket.Partition, opts WriteOptions) (*Set, WriteStats, error) {
	var st WriteStats
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); os.IsNotExist(err) {
		var werr error
		if st, werr = Write(dir, part, opts); werr != nil {
			return nil, WriteStats{}, werr
		}
	} else if err != nil {
		return nil, WriteStats{}, err
	}
	set, err := OpenSet(dir)
	if err != nil {
		return nil, WriteStats{}, err
	}
	if err := set.Validate(part); err != nil {
		set.Close()
		return nil, WriteStats{}, err
	}
	return set, st, nil
}

package segment

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegImage assembles a structurally valid segment-file image
// (header block, aligned index, data regions) the way writeSegment lays
// one out, so the fuzzer starts from inputs that pass every checksum.
func buildSegImage(buckets [][]byte) []byte {
	n := len(buckets)
	indexBytes := alignUp(int64(n) * indexEntryBytes)
	index := make([]byte, indexBytes)
	var data bytes.Buffer
	base := int64(BlockSize) + indexBytes
	for i, b := range buckets {
		var e indexEntry
		if len(b) > 0 {
			e = indexEntry{
				offset:  uint64(base + int64(data.Len())),
				length:  uint64(len(b)),
				objects: uint32(len(b) / RecordBytes),
				crc:     crc32.Checksum(b, castagnoli),
			}
		}
		putIndexEntry(index[i*indexEntryBytes:], e)
		data.Write(b)
	}
	img := marshalHeader(header{
		version:     FormatVersion,
		firstBucket: 0,
		numBuckets:  uint32(n),
		objectBytes: RecordBytes,
		blockSize:   BlockSize,
		indexCRC:    crc32.Checksum(index, castagnoli),
	})
	img = append(img, index...)
	img = append(img, data.Bytes()...)
	return img
}

func fuzzBucketPayload(key, records int) []byte {
	b := make([]byte, records*RecordBytes)
	for i := range b {
		b[i] = byte(key + i)
	}
	return b
}

// FuzzSegmentHeader drives unmarshalHeader with arbitrary bytes: it
// must reject or decode, never panic, and an accepted header must
// survive an encode/decode roundtrip with identical fields.
func FuzzSegmentHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, headerBytes))
	f.Add(marshalHeader(header{
		version: FormatVersion, firstBucket: 3, numBuckets: 7,
		objectBytes: RecordBytes, blockSize: BlockSize, indexCRC: 0xdeadbeef,
	})[:headerBytes])
	corrupt := marshalHeader(header{version: FormatVersion, numBuckets: 1, objectBytes: RecordBytes, blockSize: BlockSize})
	corrupt[5] ^= 0xFF
	f.Add(corrupt[:headerBytes])
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := unmarshalHeader(b)
		if err != nil {
			return
		}
		h2, err := unmarshalHeader(marshalHeader(h))
		if err != nil {
			t.Fatalf("re-encoded header failed to decode: %v", err)
		}
		if h2 != h {
			t.Fatalf("header roundtrip changed fields: %+v -> %+v", h, h2)
		}
	})
}

// FuzzSegmentIndex feeds whole fuzzed file images to openSegFile. An
// accepted file must then serve every bucket read path without
// panicking or over-allocating: corrupt stores fail with errors, never
// crashes (the hardened bounds checks in openSegFile are what keep a
// forged numBuckets or index entry from driving a huge allocation).
func FuzzSegmentIndex(f *testing.F) {
	f.Add(buildSegImage(nil))
	f.Add(buildSegImage([][]byte{fuzzBucketPayload(1, 2), nil, fuzzBucketPayload(3, 1)}))
	torn := buildSegImage([][]byte{fuzzBucketPayload(5, 4)})
	f.Add(torn[:len(torn)-7]) // truncated data region
	flipped := buildSegImage([][]byte{fuzzBucketPayload(9, 2)})
	flipped[BlockSize+3] ^= 0x40 // index corruption
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) > 1<<20 {
			return // bound disk churn per exec; structure fits well below this
		}
		path := filepath.Join(t.TempDir(), "seg-00000.lfseg")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		sf, err := openSegFile(path)
		if err != nil {
			return
		}
		defer sf.f.Close()
		if sf.hdr.firstBucket != 0 {
			return // a Set never pairs this file with bucket 0; nothing to drive
		}
		n := len(sf.entries)
		s := &Set{
			man:       manifest{NumBuckets: n, ObjectBytes: int64(sf.hdr.objectBytes)},
			segs:      []*segFile{sf},
			bucketSeg: make([]int, n),
		}
		for i := 0; i < n; i++ {
			raw, _, err := s.ReadBucketRaw(i)
			if err == nil {
				if sum := crc32.Checksum(raw, castagnoli); sum != sf.entries[i].crc {
					t.Fatalf("bucket %d served bytes whose checksum %#x differs from its index entry %#x", i, sum, sf.entries[i].crc)
				}
			}
			if _, _, err := s.ReadBucket(i); err != nil {
				continue
			}
			if _, err := s.ReadPages(i, 1); err != nil {
				t.Fatalf("bucket %d: scan succeeded but probe pread failed: %v", i, err)
			}
		}
		_, _ = s.ReadGroupRegion(0)
	})
}

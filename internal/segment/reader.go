package segment

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
)

// Set is an opened segment directory: the manifest plus one pread
// handle per segment file. Reads are safe for concurrent use (ReadAt
// carries no seek state); Close is not safe concurrently with reads.
type Set struct {
	dir  string
	man  manifest
	segs []*segFile
	// bucketSeg[i] is the segment serving global bucket i; buckets are
	// grouped contiguously, so this is i / BucketsPerSegment, kept as a
	// table anyway so the lookup cannot drift from the files.
	bucketSeg []int
}

// segFile is one opened segment file with its decoded index.
type segFile struct {
	f       *os.File
	hdr     header
	entries []indexEntry
	// dataStart/dataEnd bound the bucket data region (both zero when
	// every bucket is empty), fixed at open.
	dataStart, dataEnd int64
}

// OpenSet opens the segment directory at dir: it reads the manifest,
// opens every segment file, and verifies each header and index
// checksum. Bucket data checksums are verified on read.
func OpenSet(dir string) (*Set, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("segment: %s has no %s (not a segment directory, or an interrupted build)", dir, ManifestName)
		}
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("segment: corrupt manifest in %s: %w", dir, err)
	}
	if man.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("segment: %s is format version %d (reader supports %d)", dir, man.FormatVersion, FormatVersion)
	}
	// A manifest that parses but carries nonsense geometry must fail
	// like any other corruption, not panic allocating the lookup table.
	const maxBuckets = 1 << 30
	switch {
	case man.NumBuckets < 0 || man.NumBuckets > maxBuckets:
		return nil, fmt.Errorf("segment: corrupt manifest in %s: num_buckets %d", dir, man.NumBuckets)
	case man.PerBucket <= 0:
		return nil, fmt.Errorf("segment: corrupt manifest in %s: per_bucket %d", dir, man.PerBucket)
	case man.ObjectBytes < RecordBytes:
		return nil, fmt.Errorf("segment: corrupt manifest in %s: object_bytes %d below record size %d", dir, man.ObjectBytes, RecordBytes)
	case man.TotalObjects < 0:
		return nil, fmt.Errorf("segment: corrupt manifest in %s: total_objects %d", dir, man.TotalObjects)
	case len(man.Segments) > man.NumBuckets && man.NumBuckets > 0:
		return nil, fmt.Errorf("segment: corrupt manifest in %s: %d segments for %d buckets", dir, len(man.Segments), man.NumBuckets)
	}
	s := &Set{dir: dir, man: man, bucketSeg: make([]int, man.NumBuckets)}
	next := 0
	for si, name := range man.Segments {
		sf, err := openSegFile(filepath.Join(dir, name))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("segment: %s: %w", name, err)
		}
		// Appended before validation so every error path below releases
		// this file's descriptor through s.Close().
		s.segs = append(s.segs, sf)
		if int(sf.hdr.firstBucket) != next {
			s.Close()
			return nil, fmt.Errorf("segment: %s covers buckets from %d, want %d (gap or reorder)", name, sf.hdr.firstBucket, next)
		}
		if int64(sf.hdr.objectBytes) != man.ObjectBytes {
			s.Close()
			return nil, fmt.Errorf("segment: %s stride %d disagrees with manifest %d", name, sf.hdr.objectBytes, man.ObjectBytes)
		}
		for b := 0; b < int(sf.hdr.numBuckets); b++ {
			if next >= man.NumBuckets {
				s.Close()
				return nil, fmt.Errorf("segment: %s extends past manifest's %d buckets", name, man.NumBuckets)
			}
			s.bucketSeg[next] = si
			next++
		}
	}
	if next != man.NumBuckets {
		s.Close()
		return nil, fmt.Errorf("segment: directory covers %d buckets, manifest says %d", next, man.NumBuckets)
	}
	return s, nil
}

// openSegFile opens and verifies one segment file's header and index.
func openSegFile(path string) (*segFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hb := make([]byte, BlockSize)
	if _, err := f.ReadAt(hb, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("reading header: %w", err)
	}
	hdr, err := unmarshalHeader(hb)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Bound every header-derived size by the actual file size before
	// allocating or trusting it: a corrupt (or hostile) header must not
	// drive a multi-gigabyte allocation or out-of-range reads.
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	indexBytes := alignUp(int64(hdr.numBuckets) * indexEntryBytes)
	if BlockSize+indexBytes > size {
		f.Close()
		return nil, fmt.Errorf("segment: header claims %d buckets (%d index bytes) but the file is only %d bytes", hdr.numBuckets, indexBytes, size)
	}
	ib := make([]byte, indexBytes)
	if _, err := f.ReadAt(ib, BlockSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("reading index: %w", err)
	}
	if sum := crc32.Checksum(ib, castagnoli); sum != hdr.indexCRC {
		f.Close()
		return nil, fmt.Errorf("index checksum mismatch")
	}
	sf := &segFile{f: f, hdr: hdr, entries: make([]indexEntry, hdr.numBuckets)}
	dataStart := uint64(BlockSize + indexBytes)
	for i := range sf.entries {
		e := getIndexEntry(ib[i*indexEntryBytes:])
		if e.length != 0 {
			end := e.offset + e.length
			if end < e.offset || e.offset < dataStart || end > uint64(size) {
				f.Close()
				return nil, fmt.Errorf("segment: bucket %d index entry [%d,+%d) outside the data region [%d,%d)", i, e.offset, e.length, dataStart, size)
			}
		}
		sf.entries[i] = e
	}
	sf.dataStart, sf.dataEnd = sf.dataBounds()
	return sf, nil
}

// Dir returns the directory the set was opened from.
func (s *Set) Dir() string { return s.dir }

// NumBuckets returns the number of buckets the set serves.
func (s *Set) NumBuckets() int { return s.man.NumBuckets }

// ObjectBytes returns the on-disk record stride.
func (s *Set) ObjectBytes() int64 { return s.man.ObjectBytes }

// Geometry describes the store's recorded layout and catalog
// provenance, from the manifest.
type Geometry struct {
	// Catalog is the archive name the store was built from.
	Catalog string
	// TotalObjects, NumBuckets, PerBucket, and ObjectBytes are the
	// partition geometry.
	TotalObjects int64
	NumBuckets   int
	PerBucket    int
	ObjectBytes  int64
	// GenLevel and Seed identify a base survey's content exactly;
	// Derived marks a store whose catalog additionally depends on a
	// base survey (so Seed alone cannot re-synthesize it).
	GenLevel int
	Seed     int64
	Derived  bool
}

// Geometry returns the store's recorded geometry, letting a tool that
// holds only the directory rebuild the matching catalog and partition
// (for a non-Derived store).
func (s *Set) Geometry() Geometry {
	return Geometry{
		Catalog:      s.man.Catalog,
		TotalObjects: s.man.TotalObjects,
		NumBuckets:   s.man.NumBuckets,
		PerBucket:    s.man.PerBucket,
		ObjectBytes:  s.man.ObjectBytes,
		GenLevel:     s.man.GenLevel,
		Seed:         s.man.Seed,
		Derived:      s.man.Derived,
	}
}

// Validate checks the set's recorded geometry and provenance against a
// partition; a store built for a different catalog, bucket size, or
// object stride — or from a different seed or materialization level,
// which would serve geometrically-plausible but wrong objects — is
// rejected before the engine reads a single wrong byte.
func (s *Set) Validate(part *bucket.Partition) error {
	cat := part.Catalog()
	switch {
	case s.man.NumBuckets != part.NumBuckets():
		return fmt.Errorf("segment: %s holds %d buckets, partition has %d", s.dir, s.man.NumBuckets, part.NumBuckets())
	case s.man.PerBucket != part.PerBucket():
		return fmt.Errorf("segment: %s built for %d objects/bucket, partition uses %d", s.dir, s.man.PerBucket, part.PerBucket())
	case s.man.ObjectBytes != part.ObjectBytes():
		return fmt.Errorf("segment: %s built with %d-byte objects, partition uses %d", s.dir, s.man.ObjectBytes, part.ObjectBytes())
	case s.man.TotalObjects != int64(cat.Total()):
		return fmt.Errorf("segment: %s holds %d objects, catalog has %d", s.dir, s.man.TotalObjects, cat.Total())
	case s.man.Catalog != cat.Name():
		return fmt.Errorf("segment: %s built from catalog %q, partition is over %q", s.dir, s.man.Catalog, cat.Name())
	case s.man.Seed != cat.Seed():
		return fmt.Errorf("segment: %s built from seed %d, catalog uses %d", s.dir, s.man.Seed, cat.Seed())
	case s.man.GenLevel != cat.GenLevel():
		return fmt.Errorf("segment: %s built at materialization level %d, catalog uses %d", s.dir, s.man.GenLevel, cat.GenLevel())
	case s.man.Derived != cat.Derived():
		return fmt.Errorf("segment: %s derived=%v, catalog derived=%v", s.dir, s.man.Derived, cat.Derived())
	}
	return nil
}

// entry resolves global bucket i to its segment file and index entry.
func (s *Set) entry(i int) (*segFile, indexEntry, error) {
	if i < 0 || i >= len(s.bucketSeg) {
		return nil, indexEntry{}, fmt.Errorf("segment: bucket %d out of [0,%d)", i, len(s.bucketSeg))
	}
	sf := s.segs[s.bucketSeg[i]]
	return sf, sf.entries[i-int(sf.hdr.firstBucket)], nil
}

// ReadBucketRaw preads bucket i's full data region and verifies its
// checksum, returning the raw records and the number of data bytes
// read. This is the real sequential bucket scan.
func (s *Set) ReadBucketRaw(i int) ([]byte, int64, error) {
	sf, e, err := s.entry(i)
	if err != nil {
		return nil, 0, err
	}
	buf := make([]byte, e.length)
	if len(buf) == 0 {
		return buf, 0, nil
	}
	if _, err := sf.f.ReadAt(buf, int64(e.offset)); err != nil {
		return nil, 0, fmt.Errorf("segment: bucket %d pread: %w", i, err)
	}
	if sum := crc32.Checksum(buf, castagnoli); sum != e.crc {
		return nil, 0, fmt.Errorf("segment: bucket %d data checksum mismatch (corrupt store)", i)
	}
	return buf, int64(e.length), nil
}

// ReadBucket is ReadBucketRaw plus decoding: the bucket's objects in
// HTM-curve order, bit-identical to what the catalog materializes.
func (s *Set) ReadBucket(i int) ([]catalog.Object, int64, error) {
	buf, n, err := s.ReadBucketRaw(i)
	if err != nil {
		return nil, 0, err
	}
	stride := int(s.man.ObjectBytes)
	objs := make([]catalog.Object, len(buf)/stride)
	for j := range objs {
		objs[j] = decodeObject(buf[j*stride:])
	}
	return objs, n, nil
}

// ReadPages preads up to n BlockSize pages from the head of bucket i's
// data region — the I/O an index probe pass issues — and returns the
// bytes actually read. Partial reads skip the checksum (it covers the
// full region); scans verify it.
func (s *Set) ReadPages(i, n int) (int64, error) {
	sf, e, err := s.entry(i)
	if err != nil {
		return 0, err
	}
	want := int64(n) * BlockSize
	if want > int64(e.length) {
		want = int64(e.length)
	}
	if want <= 0 {
		return 0, nil
	}
	buf := make([]byte, want)
	if _, err := sf.f.ReadAt(buf, int64(e.offset)); err != nil {
		return 0, fmt.Errorf("segment: bucket %d probe pread: %w", i, err)
	}
	return want, nil
}

// Groups returns the number of bucket groups — one per segment file;
// the group is the disk tier's caching granule.
func (s *Set) Groups() int { return len(s.segs) }

// GroupOf returns the group serving global bucket i, or -1 when i is
// out of range.
func (s *Set) GroupOf(i int) int {
	if i < 0 || i >= len(s.bucketSeg) {
		return -1
	}
	return s.bucketSeg[i]
}

// GroupBuckets returns the global bucket range [first, first+n) that
// group g covers.
func (s *Set) GroupBuckets(g int) (first, n int) {
	sf := s.segs[g]
	return int(sf.hdr.firstBucket), int(sf.hdr.numBuckets)
}

// dataBounds returns the file-offset bounds [start, end) of sf's bucket
// data region (zero-width when every bucket is empty).
func (sf *segFile) dataBounds() (start, end int64) {
	for _, e := range sf.entries {
		if e.length == 0 {
			continue
		}
		if start == 0 && end == 0 || int64(e.offset) < start {
			start = int64(e.offset)
		}
		if eo := int64(e.offset + e.length); eo > end {
			end = eo
		}
	}
	return start, end
}

// GroupRegionBytes returns the size of group g's bucket data region —
// what one disk-tier entry for it costs.
func (s *Set) GroupRegionBytes(g int) int64 {
	if g < 0 || g >= len(s.segs) {
		return 0
	}
	return s.segs[g].dataEnd - s.segs[g].dataStart
}

// ReadGroupRegion preads group g's whole bucket data region and
// verifies every bucket's checksum within it — the fill path of the
// disk cache tier. The returned slice is indexed by GroupExtent's
// region-relative offsets.
func (s *Set) ReadGroupRegion(g int) ([]byte, error) {
	if g < 0 || g >= len(s.segs) {
		return nil, fmt.Errorf("segment: group %d out of [0,%d)", g, len(s.segs))
	}
	sf := s.segs[g]
	start, end := sf.dataStart, sf.dataEnd
	buf := make([]byte, end-start)
	if len(buf) == 0 {
		return buf, nil
	}
	if _, err := sf.f.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("segment: group %d region pread: %w", g, err)
	}
	for i, e := range sf.entries {
		if e.length == 0 {
			continue
		}
		rel := int64(e.offset) - start
		if sum := crc32.Checksum(buf[rel:rel+int64(e.length)], castagnoli); sum != e.crc {
			return nil, fmt.Errorf("segment: bucket %d data checksum mismatch reading group %d (corrupt store)", int(sf.hdr.firstBucket)+i, g)
		}
	}
	return buf, nil
}

// GroupExtent locates bucket i inside its group's region: the group
// index and the region-relative byte range ReadGroupRegion serves it
// at.
func (s *Set) GroupExtent(i int) (g int, lo, hi int64, err error) {
	sf, e, err := s.entry(i)
	if err != nil {
		return 0, 0, 0, err
	}
	return s.bucketSeg[i], int64(e.offset) - sf.dataStart, int64(e.offset+e.length) - sf.dataStart, nil
}

// Reopen opens an independent Set over the same directory (fresh file
// descriptors). Sharded engines give each shard its own.
func (s *Set) Reopen() (*Set, error) { return OpenSet(s.dir) }

// Close releases every file handle. Safe to call more than once.
func (s *Set) Close() error {
	var first error
	for _, sf := range s.segs {
		if sf.f != nil {
			if err := sf.f.Close(); err != nil && first == nil {
				first = err
			}
			sf.f = nil
		}
	}
	return first
}

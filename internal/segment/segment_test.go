package segment

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
)

// fixture builds a small catalog and partition: 3000 objects in 25
// buckets of 120, with a 64-byte record stride (the smallest multiple
// of 8 above RecordBytes, keeping the test directory tiny).
func fixture(t *testing.T) *bucket.Partition {
	t.Helper()
	cat, err := catalog.New(catalog.Config{
		Name: "seg-test", N: 3000, Seed: 7, GenLevel: 3, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := bucket.NewPartition(cat, 120, 64)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func writeFixture(t *testing.T, part *bucket.Partition, group int) (string, WriteStats) {
	t.Helper()
	dir := t.TempDir()
	st, err := Write(dir, part, WriteOptions{BucketsPerSegment: group})
	if err != nil {
		t.Fatal(err)
	}
	return dir, st
}

func TestSegmentRoundTrip(t *testing.T) {
	part := fixture(t)
	dir, st := writeFixture(t, part, 8) // 25 buckets -> 4 segments
	if st.Segments != 4 || st.Buckets != part.NumBuckets() || st.Objects != 3000 {
		t.Fatalf("write stats = %+v", st)
	}
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	if err := set.Validate(part); err != nil {
		t.Fatal(err)
	}
	var bytes int64
	for i := 0; i < part.NumBuckets(); i++ {
		objs, n, err := set.ReadBucket(i)
		if err != nil {
			t.Fatalf("bucket %d: %v", i, err)
		}
		bytes += n
		want := part.Materialize(i)
		if !reflect.DeepEqual(objs, want) {
			t.Fatalf("bucket %d objects diverge from catalog materialization", i)
		}
		if n != part.BucketBytes(i) {
			t.Errorf("bucket %d read %d bytes, model charges %d", i, n, part.BucketBytes(i))
		}
	}
	if bytes != 3000*64 {
		t.Errorf("total data bytes = %d, want %d", bytes, 3000*64)
	}
}

func TestSegmentProbePages(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	// Bucket 0 holds 120*64 = 7680 data bytes: one probe reads one
	// 4 KiB page, a flood of probes is capped at the region size.
	if n, err := set.ReadPages(0, 1); err != nil || n != BlockSize {
		t.Errorf("ReadPages(0,1) = %d, %v; want %d", n, err, BlockSize)
	}
	if n, err := set.ReadPages(0, 100); err != nil || n != 7680 {
		t.Errorf("ReadPages(0,100) = %d, %v; want 7680", n, err)
	}
}

func TestSegmentChecksumDetectsCorruption(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 32) // single segment
	path := filepath.Join(dir, segmentName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the data region (bucket ~12).
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xFF
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err) // header/index untouched; open must still succeed
	}
	defer set.Close()
	corrupted := 0
	for i := 0; i < set.NumBuckets(); i++ {
		if _, _, err := set.ReadBucket(i); err != nil {
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("bucket %d failed with non-checksum error: %v", i, err)
			}
			corrupted++
		}
	}
	if corrupted != 1 {
		t.Errorf("%d buckets failed checksum, want exactly 1", corrupted)
	}

	// Corrupting the header must fail at open, before any read.
	mut2 := append([]byte(nil), data...)
	mut2[16] ^= 0xFF
	if err := os.WriteFile(path, mut2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSet(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("open over corrupt header = %v, want checksum error", err)
	}
}

func TestSegmentOpenRejectsMissingManifest(t *testing.T) {
	if _, err := OpenSet(t.TempDir()); err == nil || !strings.Contains(err.Error(), ManifestName) {
		t.Errorf("open of empty dir = %v, want missing-manifest error", err)
	}
}

func TestSegmentValidateRejectsForeignGeometry(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	other, err := bucket.NewPartition(part.Catalog(), 150, 64) // different bucketing
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(other); err == nil {
		t.Error("Validate accepted a partition with a different bucket size")
	}
}

func TestSegmentEnsureIdempotentAndSafe(t *testing.T) {
	part := fixture(t)
	dir := t.TempDir()
	set1, st, err := Ensure(dir, part, WriteOptions{BucketsPerSegment: 8})
	if err != nil {
		t.Fatal(err)
	}
	set1.Close()
	if st.Segments == 0 {
		t.Fatal("first Ensure did not build the store")
	}
	// Second Ensure opens without rebuilding.
	set2, st2, err := Ensure(dir, part, WriteOptions{BucketsPerSegment: 8})
	if err != nil {
		t.Fatal(err)
	}
	set2.Close()
	if st2.Segments != 0 {
		t.Errorf("second Ensure rewrote %d segments", st2.Segments)
	}
	// Ensure over a store built for other geometry refuses, never
	// clobbers.
	other, err := bucket.NewPartition(part.Catalog(), 150, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ensure(dir, other, WriteOptions{}); err == nil {
		t.Error("Ensure accepted a directory built for different geometry")
	}
}

func TestSegmentWriteRejectsNarrowStride(t *testing.T) {
	cat, err := catalog.New(catalog.Config{Name: "narrow", N: 100, Seed: 1, GenLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	part, err := bucket.NewPartition(cat, 10, 16) // 16 < RecordBytes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Write(t.TempDir(), part, WriteOptions{}); err == nil {
		t.Error("Write accepted a stride narrower than a record")
	}
}

func TestBackendForkIsIndependent(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBackend(set, true)
	fork, err := be.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Closing the original must not break the fork's descriptors.
	be.Close()
	objs, _, err := fork.ReadBucket(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(objs, part.Materialize(3)) {
		t.Error("forked backend returned diverging objects")
	}
	fork.Close()
}

func TestBackendCostOnlyStillReads(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	be := NewBackend(set, false)
	objs, n, err := be.ReadBucket(0)
	if err != nil {
		t.Fatal(err)
	}
	if objs != nil {
		t.Error("cost-only read returned objects")
	}
	if n != part.BucketBytes(0) {
		t.Errorf("cost-only read moved %d bytes, want %d", n, part.BucketBytes(0))
	}
}

// Regression: a manifest that parses as JSON but carries nonsense
// geometry must fail open like any other corruption — the negative
// bucket count used to panic allocating the lookup table.
func TestSegmentOpenRejectsCorruptManifestGeometry(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	path := filepath.Join(dir, ManifestName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct{ field, repl string }{
		{"num_buckets", `"num_buckets": -1`},
		{"num_buckets", `"num_buckets": 2147483647000`},
		{"per_bucket", `"per_bucket": 0`},
		{"object_bytes", `"object_bytes": 8`},
		{"total_objects", `"total_objects": -5`},
	} {
		mut := regexp.MustCompile(`"`+bad.field+`": [0-9-]+`).ReplaceAll(good, []byte(bad.repl))
		if string(mut) == string(good) {
			t.Fatalf("mutation %q did not apply", bad.repl)
		}
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSet(dir); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
			t.Errorf("open with %s = %v, want corrupt-manifest error", bad.repl, err)
		}
	}
}

// Validate must reject a store whose geometry matches but whose content
// provenance (seed, materialization level) differs — serving
// plausible-but-wrong objects is worse than failing.
func TestSegmentValidateRejectsForeignProvenance(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	otherSeed, err := catalog.New(catalog.Config{
		Name: "seg-test", N: 3000, Seed: 8, GenLevel: 3, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	partOther, err := bucket.NewPartition(otherSeed, 120, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(partOther); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("Validate over a different seed = %v, want seed-mismatch error", err)
	}
}

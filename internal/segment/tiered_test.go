package segment

import (
	"reflect"
	"testing"

	"liferaft/internal/bucket"
	"liferaft/internal/cache/disktier"
)

func openTieredFixture(t *testing.T, part *bucket.Partition, group int, materialize bool, capacity int64) (*TieredBackend, *bucket.Partition) {
	t.Helper()
	dir, _ := writeFixture(t, part, group)
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := disktier.Open(disktier.Config{Dir: t.TempDir(), CapacityBytes: capacity})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTieredBackend(set, tier, materialize)
	t.Cleanup(func() { tb.Close() })
	return tb, part
}

func TestGroupRegionAPIs(t *testing.T) {
	part := fixture(t)
	dir, _ := writeFixture(t, part, 8) // 25 buckets -> 4 groups
	set, err := OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	if set.Groups() != 4 {
		t.Fatalf("Groups() = %d, want 4", set.Groups())
	}
	if g := set.GroupOf(0); g != 0 {
		t.Fatalf("GroupOf(0) = %d", g)
	}
	if g := set.GroupOf(24); g != 3 {
		t.Fatalf("GroupOf(24) = %d", g)
	}
	if g := set.GroupOf(25); g != -1 {
		t.Fatalf("GroupOf(25) = %d, want -1", g)
	}

	// Every bucket of every group must decode bit-identically from the
	// group region slice at its extent.
	for g := 0; g < set.Groups(); g++ {
		region, err := set.ReadGroupRegion(g)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		if int64(len(region)) != set.GroupRegionBytes(g) {
			t.Fatalf("group %d region is %d bytes, GroupRegionBytes says %d", g, len(region), set.GroupRegionBytes(g))
		}
		first, n := set.GroupBuckets(g)
		for i := first; i < first+n; i++ {
			gg, lo, hi, err := set.GroupExtent(i)
			if err != nil {
				t.Fatal(err)
			}
			if gg != g {
				t.Fatalf("GroupExtent(%d) group = %d, want %d", i, gg, g)
			}
			want := part.Materialize(i)
			stride := int(set.ObjectBytes())
			got := region[lo:hi]
			if len(got)/stride != len(want) {
				t.Fatalf("bucket %d extent holds %d records, want %d", i, len(got)/stride, len(want))
			}
			for j := range want {
				if decodeObject(got[j*stride:]) != want[j] {
					t.Fatalf("bucket %d object %d diverges when decoded from the group region", i, j)
				}
			}
		}
	}
}

// A warm tiered backend must return bit-identical objects to the plain
// file backend — the mmap decode path against the pread decode path.
func TestTieredBackendParityWarm(t *testing.T) {
	tb, part := openTieredFixture(t, fixture(t), 8, true, 1<<20)
	plain := NewBackend(tb.Set(), true)

	// Cold pass: every read falls through (served by pread) and demand-
	// promotes its group.
	for i := 0; i < part.NumBuckets(); i++ {
		objs, n, err := tb.ReadBucket(i)
		if err != nil {
			t.Fatalf("cold bucket %d: %v", i, err)
		}
		want, wn, _ := plain.ReadBucket(i)
		if !reflect.DeepEqual(objs, want) || n != wn {
			t.Fatalf("cold bucket %d diverges from the plain backend", i)
		}
	}
	// Demand promotion is budgeted and may have skipped groups while
	// earlier fills were pending; warm every group deterministically.
	for g := 0; g < tb.Set().Groups(); g++ {
		first, _ := tb.Set().GroupBuckets(g)
		tb.PrefetchBucket(first)
		tb.Tier().WaitIdle()
	}

	// Warm pass: every read must hit the tier and still match.
	_, missesBefore := tb.ForegroundCounts()
	for i := 0; i < part.NumBuckets(); i++ {
		objs, n, err := tb.ReadBucket(i)
		if err != nil {
			t.Fatalf("warm bucket %d: %v", i, err)
		}
		want, wn, _ := plain.ReadBucket(i)
		if !reflect.DeepEqual(objs, want) || n != wn {
			t.Fatalf("warm bucket %d diverges from the plain backend", i)
		}
		pobjs, _, err := tb.Probe(i, 1)
		if err != nil {
			t.Fatalf("warm probe %d: %v", i, err)
		}
		if !reflect.DeepEqual(pobjs, want) {
			t.Fatalf("warm probe %d diverges from the plain backend", i)
		}
	}
	if _, misses := tb.ForegroundCounts(); misses != missesBefore {
		t.Fatalf("warm pass took %d tier misses, want 0 new", misses-missesBefore)
	}
	if hits, _ := tb.ForegroundCounts(); hits < int64(2*part.NumBuckets()) {
		t.Fatalf("warm pass hits = %d, want >= %d", hits, 2*part.NumBuckets())
	}
}

// Cost-only mode: reads return nil objects but account the same byte
// counts warm as cold.
func TestTieredBackendCostOnly(t *testing.T) {
	tb, part := openTieredFixture(t, fixture(t), 8, false, 1<<20)
	for i := 0; i < part.NumBuckets(); i++ {
		objs, n, err := tb.ReadBucket(i)
		if err != nil || objs != nil {
			t.Fatalf("cold cost-only bucket %d: objs=%v err=%v", i, objs, err)
		}
		if n != part.BucketBytes(i) {
			t.Fatalf("cold cost-only bucket %d read %d bytes, want %d", i, n, part.BucketBytes(i))
		}
	}
	tb.Tier().WaitIdle()
	for i := 0; i < part.NumBuckets(); i++ {
		objs, n, err := tb.ReadBucket(i)
		if err != nil || objs != nil {
			t.Fatalf("warm cost-only bucket %d: objs=%v err=%v", i, objs, err)
		}
		if n != part.BucketBytes(i) {
			t.Fatalf("warm cost-only bucket %d read %d bytes, want %d", i, n, part.BucketBytes(i))
		}
		// One warm probe touches at most one page of the bucket region.
		_, pn, err := tb.Probe(i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if pn > int64(BlockSize) || pn <= 0 {
			t.Fatalf("warm cost-only probe read %d bytes, want (0,%d]", pn, BlockSize)
		}
	}
}

func TestTieredBackendPrefetch(t *testing.T) {
	tb, part := openTieredFixture(t, fixture(t), 8, true, 1<<20)

	if !tb.PrefetchBucket(0) {
		t.Fatal("PrefetchBucket(0) refused on a cold tier")
	}
	tb.Tier().WaitIdle()
	// Bucket 0's whole group is now resident: the first service of any
	// of its buckets is a tier hit with zero misses.
	first, n := tb.Set().GroupBuckets(0)
	for i := first; i < first+n; i++ {
		objs, _, err := tb.ReadBucket(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := part.Materialize(i); !reflect.DeepEqual(objs, want) {
			t.Fatalf("prefetched bucket %d diverges", i)
		}
	}
	hits, misses := tb.ForegroundCounts()
	if misses != 0 || hits != int64(n) {
		t.Fatalf("after prefetch: hits=%d misses=%d, want %d/0", hits, misses, n)
	}
	// Re-prefetching a resident group is a no-op.
	if tb.PrefetchBucket(0) {
		t.Fatal("PrefetchBucket re-promoted a resident group")
	}
	st := tb.Tier().Stats()
	if st.PrefetchIssued != 1 || st.PrefetchHits != 1 {
		t.Fatalf("tier stats = %+v, want 1 issued / 1 hit", st)
	}
}

// Forks share one tier: a promotion through one fork serves hits on the
// other, and closing one fork leaves the tier open for the rest.
func TestTieredBackendForkSharesTier(t *testing.T) {
	tb, _ := openTieredFixture(t, fixture(t), 8, true, 1<<20)
	fb, err := tb.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if !tb.PrefetchBucket(0) {
		t.Fatal("prefetch refused")
	}
	tb.Tier().WaitIdle()

	fork := fb.(*TieredBackend)
	if _, _, err := fork.ReadBucket(0); err != nil {
		t.Fatal(err)
	}
	if hits, misses := fork.ForegroundCounts(); hits != 1 || misses != 0 {
		t.Fatalf("fork counts = %d/%d, want 1 hit", hits, misses)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	// Tier still serves the surviving fork.
	if _, _, err := tb.ReadBucket(1); err != nil {
		t.Fatal(err)
	}
}

// The Store-level wiring: a store over a tiered backend exposes it as a
// Prefetcher; the plain backend does not.
func TestStorePrefetcherResolution(t *testing.T) {
	tb, _ := openTieredFixture(t, fixture(t), 8, true, 1<<20)
	if _, ok := any(tb).(bucket.Prefetcher); !ok {
		t.Fatal("TieredBackend does not implement bucket.Prefetcher")
	}
	var plain bucket.Backend = NewBackend(tb.Set(), true)
	if _, ok := plain.(bucket.Prefetcher); ok {
		t.Fatal("plain FileBackend unexpectedly implements bucket.Prefetcher")
	}
}

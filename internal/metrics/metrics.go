// Package metrics provides the statistics LifeRaft's evaluation reports:
// query throughput, response-time summaries with coefficient of variance
// (Figure 7b), percentiles, cumulative workload shares (Figure 6), and
// normalized throughput/response-time trade-off curves (Figure 4).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample of non-negative values (typically response
// times in seconds).
//
// When a Summary comes from a Reservoir that has discarded observations,
// Sampled is true and the dispersion and percentile fields (StdDev, CoV,
// P50, P90, P99) are estimates computed from the SampleSize retained
// values; Count, Mean, Min, and Max are always exact over every
// observation. The JSON encoding carries the same two fields ("sampled",
// "sample_size") so /v1/stats consumers can tell estimated quantiles from
// exact ones.
type Summary struct {
	// Count is the number of observed values. int64, not int: reservoir
	// summaries count every observation ever made (billions over a
	// long-lived tenant), not just the retained sample, and the old int
	// truncated that on 32-bit platforms.
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// StdDev is the population standard deviation.
	StdDev float64 `json:"stddev"`
	// CoV is the coefficient of variance (StdDev/Mean), the dispersion
	// statistic of Figure 7b. Zero when Mean is zero.
	CoV float64 `json:"cov"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	// Sampled marks the dispersion and percentile fields above as
	// estimates from a uniform subsample of SampleSize values (reservoir
	// sampling discarded the rest). False means every statistic was
	// computed over the full stream.
	Sampled bool `json:"sampled,omitempty"`
	// SampleSize is the number of retained values behind a reservoir
	// summary's dispersion and percentile fields (equal to Count until
	// the reservoir overflows); 0 for summaries computed without one.
	SampleSize int `json:"sample_size,omitempty"`
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: int64(len(xs)), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	if s.Mean != 0 {
		s.CoV = s.StdDev / s.Mean
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// SummarizeDurations converts durations to seconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample by linear interpolation. Empty samples yield 0.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f cov=%.2f p50=%.3f p90=%.3f max=%.3f",
		s.Count, s.Mean, s.CoV, s.P50, s.P90, s.Max)
}

// Throughput returns completed/elapsed in events per second; 0 when the
// elapsed time is non-positive.
func Throughput(completed int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed.Seconds()
}

// CumulativeShare sorts weights descending and returns, for each rank k
// (1-based), the fraction of the total captured by the top k. This is the
// statistic behind Figure 6 ("2% of the buckets capture 50% of the
// workload"). A zero-total input returns all zeros.
func CumulativeShare(weights []float64) []float64 {
	ws := make([]float64, len(weights))
	copy(ws, weights)
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	var total float64
	for _, w := range ws {
		total += w
	}
	out := make([]float64, len(ws))
	if total == 0 {
		return out
	}
	run := 0.0
	for i, w := range ws {
		run += w
		out[i] = run / total
	}
	return out
}

// RankForShare returns the smallest number of top-ranked weights whose
// cumulative share reaches the target fraction, or len(weights) if the
// target is never reached.
func RankForShare(weights []float64, target float64) int {
	cum := CumulativeShare(weights)
	for i, c := range cum {
		if c >= target {
			return i + 1
		}
	}
	return len(weights)
}

// TradeoffPoint is one point of a Figure-4 curve: the performance of one
// age-bias setting under one saturation.
type TradeoffPoint struct {
	Alpha      float64
	Throughput float64 // queries per second
	RespTime   float64 // mean response time, seconds
}

// Curve is a throughput/response-time trade-off curve across α values at
// fixed saturation.
type Curve []TradeoffPoint

// Normalized returns the curve with throughput divided by the curve
// maximum and response time divided by the curve maximum, the form
// Figure 4 plots. A zero maximum leaves values unscaled.
func (c Curve) Normalized() Curve {
	var maxT, maxR float64
	for _, p := range c {
		maxT = math.Max(maxT, p.Throughput)
		maxR = math.Max(maxR, p.RespTime)
	}
	out := make(Curve, len(c))
	for i, p := range c {
		q := p
		if maxT > 0 {
			q.Throughput = p.Throughput / maxT
		}
		if maxR > 0 {
			q.RespTime = p.RespTime / maxR
		}
		out[i] = q
	}
	return out
}

// PickAlpha implements the tolerance-threshold parameter selection of
// paper §4: among settings whose throughput is at least (1 - tolerance) of
// the curve's maximum, return the one minimizing response time. Ties break
// toward the larger α (stronger starvation resistance).
func (c Curve) PickAlpha(tolerance float64) (TradeoffPoint, error) {
	if len(c) == 0 {
		return TradeoffPoint{}, fmt.Errorf("metrics: empty trade-off curve")
	}
	var maxT float64
	for _, p := range c {
		maxT = math.Max(maxT, p.Throughput)
	}
	floor := (1 - tolerance) * maxT
	best := TradeoffPoint{RespTime: math.Inf(1)}
	found := false
	for _, p := range c {
		if p.Throughput+1e-12 < floor {
			continue
		}
		if p.RespTime < best.RespTime-1e-12 ||
			(math.Abs(p.RespTime-best.RespTime) <= 1e-12 && p.Alpha > best.Alpha) {
			best = p
			found = true
		}
	}
	if !found {
		return TradeoffPoint{}, fmt.Errorf("metrics: no point within tolerance %.2f", tolerance)
	}
	return best, nil
}

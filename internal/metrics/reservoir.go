package metrics

import (
	"fmt"
	"math/rand"
)

// Reservoir is a bounded uniform sample of a value stream (Vitter's
// Algorithm R): after n observations each one is retained with probability
// cap/n, so summaries computed from the sample stay unbiased while memory
// stays fixed. The serving layer uses one reservoir per tenant for
// response-time breakdowns that must survive tenants submitting millions
// of queries.
//
// Semantics of the resulting Summary: Count, Mean, Min, and Max are
// tracked exactly over every observation regardless of what the sample
// retains; the dispersion and percentile fields are computed from the
// retained sample and are therefore estimates once the stream outgrows
// the capacity — the Summary marks that case with Sampled=true and
// reports the retained size in SampleSize. Because the sample is uniform
// over the whole stream, those estimates are unbiased but weight old and
// recent observations equally: a reservoir answers "what has this
// tenant's p99 been overall", not "what is it right now" (the windowed
// signals live in the metric registry's histograms). Replacement
// decisions come from the seeded RNG, so a fixed observation order
// reproduces the identical sample.
//
// A Reservoir is not safe for concurrent use; callers serialize access.
type Reservoir struct {
	cap   int
	seen  int64
	vals  []float64
	rng   *rand.Rand
	min   float64
	max   float64
	total float64
}

// NewReservoir returns a reservoir holding at most cap values. The seed
// makes replacement decisions deterministic for reproducible tests.
func NewReservoir(cap int, seed int64) (*Reservoir, error) {
	if cap < 1 {
		return nil, fmt.Errorf("metrics: reservoir capacity %d must be >= 1", cap)
	}
	return &Reservoir{cap: cap, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add observes one value.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if r.seen == 1 || x < r.min {
		r.min = x
	}
	if r.seen == 1 || x > r.max {
		r.max = x
	}
	r.total += x
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.vals[j] = x
	}
}

// Count returns the number of values observed (not retained).
func (r *Reservoir) Count() int64 { return r.seen }

// Summary summarizes the stream: Count, Mean, Min, and Max are exact over
// every observed value; the dispersion and percentile fields are estimated
// from the retained sample, and the Summary's Sampled/SampleSize fields
// say so whenever the stream has outgrown the reservoir. An empty
// reservoir yields the zero Summary.
func (r *Reservoir) Summary() Summary {
	if r.seen == 0 {
		return Summary{}
	}
	s := Summarize(r.vals)
	s.Count = r.seen
	s.Mean = r.total / float64(r.seen)
	s.Min = r.min
	s.Max = r.max
	if s.Mean != 0 {
		s.CoV = s.StdDev / s.Mean
	}
	s.Sampled = r.seen > int64(len(r.vals))
	s.SampleSize = len(r.vals)
	return s
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 || s.Mean != 5 {
		t.Errorf("count/mean = %d/%v", s.Count, s.Mean)
	}
	if s.StdDev != 2 { // classic textbook sample
		t.Errorf("stddev = %v", s.StdDev)
	}
	if !almostEq(s.CoV, 0.4, 1e-12) {
		t.Errorf("cov = %v", s.CoV)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if !almostEq(s.P50, 4.5, 1e-12) {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSummarizeZeroMean(t *testing.T) {
	s := Summarize([]float64{0, 0, 0})
	if s.CoV != 0 {
		t.Errorf("CoV with zero mean = %v", s.CoV)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almostEq(s.Mean, 2, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton percentile = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, 50*time.Second); !almostEq(got, 2, 1e-12) {
		t.Errorf("Throughput = %v", got)
	}
	if Throughput(5, 0) != 0 || Throughput(5, -time.Second) != 0 {
		t.Error("non-positive elapsed should yield 0")
	}
}

func TestCumulativeShare(t *testing.T) {
	got := CumulativeShare([]float64{1, 3, 2, 4})
	want := []float64{0.4, 0.7, 0.9, 1.0}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("share[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := CumulativeShare([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("zero total should give zeros")
	}
	if len(CumulativeShare(nil)) != 0 {
		t.Error("nil input")
	}
}

func TestRankForShare(t *testing.T) {
	ws := []float64{4, 3, 2, 1}
	if got := RankForShare(ws, 0.5); got != 2 {
		t.Errorf("RankForShare(0.5) = %d, want 2", got)
	}
	if got := RankForShare(ws, 1.0); got != 4 {
		t.Errorf("RankForShare(1.0) = %d", got)
	}
	if got := RankForShare([]float64{0}, 0.5); got != 1 {
		t.Errorf("unreachable target = %d, want len", got)
	}
}

func TestCurveNormalized(t *testing.T) {
	c := Curve{
		{Alpha: 0, Throughput: 0.4, RespTime: 400},
		{Alpha: 1, Throughput: 0.2, RespTime: 200},
	}
	n := c.Normalized()
	if !almostEq(n[0].Throughput, 1, 1e-12) || !almostEq(n[0].RespTime, 1, 1e-12) {
		t.Errorf("max point should normalize to 1: %+v", n[0])
	}
	if !almostEq(n[1].Throughput, 0.5, 1e-12) || !almostEq(n[1].RespTime, 0.5, 1e-12) {
		t.Errorf("point = %+v", n[1])
	}
	// Original untouched.
	if c[0].Throughput != 0.4 {
		t.Error("Normalized mutated input")
	}
	empty := Curve{}.Normalized()
	if len(empty) != 0 {
		t.Error("empty normalize")
	}
}

func TestPickAlpha(t *testing.T) {
	// Shaped like the paper's high-saturation curve: greedy is fastest
	// overall but α=0.25 costs only 20% throughput and improves response.
	c := Curve{
		{Alpha: 0, Throughput: 0.40, RespTime: 420},
		{Alpha: 0.25, Throughput: 0.33, RespTime: 330},
		{Alpha: 0.5, Throughput: 0.26, RespTime: 310},
		{Alpha: 1, Throughput: 0.20, RespTime: 290},
	}
	p, err := c.PickAlpha(0.20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha != 0.25 {
		t.Errorf("PickAlpha(0.20) = %v, want 0.25", p.Alpha)
	}
	// Zero tolerance: must take the max-throughput point.
	p, err = c.PickAlpha(0)
	if err != nil || p.Alpha != 0 {
		t.Errorf("PickAlpha(0) = %+v, %v", p, err)
	}
	// Full tolerance: min response time wins.
	p, err = c.PickAlpha(1)
	if err != nil || p.Alpha != 1 {
		t.Errorf("PickAlpha(1) = %+v, %v", p, err)
	}
	if _, err := (Curve{}).PickAlpha(0.1); err == nil {
		t.Error("empty curve should error")
	}
}

func TestPickAlphaTieBreaksTowardLargerAlpha(t *testing.T) {
	c := Curve{
		{Alpha: 0.25, Throughput: 1, RespTime: 100},
		{Alpha: 0.75, Throughput: 1, RespTime: 100},
	}
	p, err := c.PickAlpha(0.5)
	if err != nil || p.Alpha != 0.75 {
		t.Errorf("tie-break = %+v, %v", p, err)
	}
}

// Property: CumulativeShare is non-decreasing and ends at 1 for positive
// totals.
func TestQuickCumulativeShareMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ws := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			ws[i] = float64(r)
			total += ws[i]
		}
		cum := CumulativeShare(ws)
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1]-1e-12 {
				return false
			}
		}
		if total > 0 && !almostEq(cum[len(cum)-1], 1, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Summary mean lies within [min, max].
func TestQuickSummaryBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.P50 >= s.Min-1e-9 && s.P99 <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

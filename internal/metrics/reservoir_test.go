package metrics

import (
	"math"
	"testing"
)

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("capacity 0 should fail")
	}
}

func TestReservoirEmpty(t *testing.T) {
	r, _ := NewReservoir(8, 1)
	if s := r.Summary(); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// TestReservoirExactUnderCapacity: below capacity the reservoir holds the
// whole stream, so the summary matches Summarize exactly.
func TestReservoirExactUnderCapacity(t *testing.T) {
	r, _ := NewReservoir(100, 1)
	xs := []float64{5, 1, 4, 2, 3}
	for _, x := range xs {
		r.Add(x)
	}
	got, want := r.Summary(), Summarize(xs)
	// The only difference from Summarize is the sample labeling: nothing
	// was discarded, so the summary is exact and says so.
	want.SampleSize = len(xs)
	if got != want {
		t.Errorf("summary = %+v, want %+v", got, want)
	}
	if got.Sampled {
		t.Error("under-capacity reservoir marked Sampled")
	}
}

// TestReservoirBoundedAndUnbiased: a long stream keeps memory at capacity,
// the exact fields stay exact, and the sampled percentiles land near the
// true ones.
func TestReservoirBoundedAndUnbiased(t *testing.T) {
	const n = 100000
	r, _ := NewReservoir(512, 7)
	for i := 0; i < n; i++ {
		r.Add(float64(i)) // uniform ramp: p50 ~ n/2, p99 ~ 0.99n
	}
	if len(r.vals) != 512 {
		t.Fatalf("retained %d values, want 512", len(r.vals))
	}
	s := r.Summary()
	if s.Count != n {
		t.Errorf("count = %d, want %d", s.Count, n)
	}
	if s.Min != 0 || s.Max != n-1 {
		t.Errorf("min/max = %v/%v, want exact 0/%d", s.Min, s.Max, n-1)
	}
	if math.Abs(s.Mean-(n-1)/2.0) > 1e-6 {
		t.Errorf("mean = %v, want exact %v", s.Mean, (n-1)/2.0)
	}
	if !s.Sampled || s.SampleSize != 512 {
		t.Errorf("sampled/size = %v/%d, want true/512: estimated fields must be labeled", s.Sampled, s.SampleSize)
	}
	// Sampled percentiles: within 10% of the true quantiles (512 samples
	// give ~±4.4% standard error at the median; the seed is fixed).
	if rel := math.Abs(s.P50-n/2) / (n / 2); rel > 0.10 {
		t.Errorf("p50 = %v, want within 10%% of %v", s.P50, n/2)
	}
	if rel := math.Abs(s.P99-0.99*n) / (0.99 * n); rel > 0.10 {
		t.Errorf("p99 = %v, want within 10%% of %v", s.P99, 0.99*n)
	}
}

// TestReservoirDeterministic: the same seed replays the same sample.
func TestReservoirDeterministic(t *testing.T) {
	a, _ := NewReservoir(16, 3)
	b, _ := NewReservoir(16, 3)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i % 37))
		b.Add(float64(i % 37))
	}
	if a.Summary() != b.Summary() {
		t.Error("same seed produced different summaries")
	}
}

package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(zero) = %v, want zero", got)
	}
	n := Vec3{10, 0, 0}.Normalize()
	if !almostEq(n.Norm(), 1, 1e-15) {
		t.Errorf("Normalize length = %v", n.Norm())
	}
}

func TestMidpoint(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	m := a.Mid(b)
	if !almostEq(m.Norm(), 1, 1e-15) {
		t.Errorf("Mid not unit: %v", m.Norm())
	}
	if !almostEq(m.Angle(a), m.Angle(b), 1e-12) {
		t.Errorf("Mid not equidistant: %v vs %v", m.Angle(a), m.Angle(b))
	}
}

func TestAngle(t *testing.T) {
	a := Vec3{1, 0, 0}
	cases := []struct {
		b    Vec3
		want float64
	}{
		{Vec3{1, 0, 0}, 0},
		{Vec3{0, 1, 0}, math.Pi / 2},
		{Vec3{-1, 0, 0}, math.Pi},
	}
	for _, c := range cases {
		if got := a.Angle(c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Angle(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestAngleSmallSeparation(t *testing.T) {
	// One arcsecond separation must be resolved accurately: cross-match
	// radii are a few arcseconds.
	a := FromRaDec(10, 20)
	b := FromRaDec(10+1.0/3600/math.Cos(Radians(20)), 20)
	got := RadToArcsec(a.Angle(b))
	if !almostEq(got, 1, 1e-6) {
		t.Errorf("1-arcsec separation measured as %v arcsec", got)
	}
}

func TestRaDecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ra := rng.Float64() * 360
		dec := rng.Float64()*180 - 90
		v := FromRaDec(ra, dec)
		if !almostEq(v.Norm(), 1, 1e-12) {
			t.Fatalf("FromRaDec(%v,%v) not unit", ra, dec)
		}
		ra2, dec2 := ToRaDec(v)
		sep := v.Angle(FromRaDec(ra2, dec2))
		if sep > 1e-9 {
			t.Fatalf("round trip moved point by %v rad (ra=%v dec=%v)", sep, ra, dec)
		}
	}
}

func TestRaDecEdgeCases(t *testing.T) {
	// Poles: RA pinned to 0.
	ra, dec := ToRaDec(Vec3{0, 0, 1})
	if ra != 0 || !almostEq(dec, 90, 1e-9) {
		t.Errorf("north pole = (%v,%v)", ra, dec)
	}
	ra, dec = ToRaDec(Vec3{0, 0, -1})
	if ra != 0 || !almostEq(dec, -90, 1e-9) {
		t.Errorf("south pole = (%v,%v)", ra, dec)
	}
	// RA wraps.
	if got := FromRaDec(370, 0).Angle(FromRaDec(10, 0)); got > 1e-12 {
		t.Errorf("RA wrap failed: %v", got)
	}
	if got := FromRaDec(-10, 0).Angle(FromRaDec(350, 0)); got > 1e-12 {
		t.Errorf("negative RA wrap failed: %v", got)
	}
	// Dec clamps.
	if got := FromRaDec(0, 100).Angle(Vec3{0, 0, 1}); got > 1e-12 {
		t.Errorf("dec clamp failed: %v", got)
	}
}

func TestDegreeConversions(t *testing.T) {
	if !almostEq(Degrees(math.Pi), 180, 1e-12) {
		t.Error("Degrees")
	}
	if !almostEq(Radians(180), math.Pi, 1e-12) {
		t.Error("Radians")
	}
	if !almostEq(RadToArcsec(ArcsecToRad(3.5)), 3.5, 1e-9) {
		t.Error("arcsec round trip")
	}
}

func TestCapContains(t *testing.T) {
	c := NewCap(FromRaDec(0, 0), Radians(10))
	if !c.Contains(FromRaDec(5, 0)) {
		t.Error("point at 5 deg should be inside 10-deg cap")
	}
	if c.Contains(FromRaDec(15, 0)) {
		t.Error("point at 15 deg should be outside 10-deg cap")
	}
	if !c.Contains(FromRaDec(0, 10)) {
		t.Error("boundary point should be inside (inclusive)")
	}
	if !almostEq(c.Radius(), Radians(10), 1e-12) {
		t.Errorf("Radius = %v", Degrees(c.Radius()))
	}
}

func TestCapIntersectsArc(t *testing.T) {
	c := NewCap(FromRaDec(0, 0), Radians(5))
	// Arc passing through the cap center region.
	a := FromRaDec(350, 0)
	b := FromRaDec(10, 0)
	if !c.IntersectsArc(a, b) {
		t.Error("equatorial arc through cap should intersect")
	}
	// Arc whose closest approach is inside the cap but endpoints outside.
	a2 := FromRaDec(-20, 3)
	b2 := FromRaDec(20, 3)
	if !c.IntersectsArc(a2, b2) {
		t.Error("arc grazing within 3 deg should intersect a 5-deg cap")
	}
	// Arc far away.
	a3 := FromRaDec(0, 60)
	b3 := FromRaDec(90, 60)
	if c.IntersectsArc(a3, b3) {
		t.Error("distant arc should not intersect")
	}
	// Arc on the same great circle but on the far side.
	a4 := FromRaDec(90, 0)
	b4 := FromRaDec(170, 0)
	if c.IntersectsArc(a4, b4) {
		t.Error("far segment of the same great circle should not intersect")
	}
	// Endpoint inside.
	if !c.IntersectsArc(FromRaDec(2, 0), FromRaDec(40, 40)) {
		t.Error("arc with an endpoint inside must intersect")
	}
}

func TestTriangleContains(t *testing.T) {
	tri := Triangle{Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}} // octant
	if !tri.Contains(Vec3{1, 1, 1}.Normalize()) {
		t.Error("centroid should be inside")
	}
	if !tri.Contains(Vec3{1, 0, 0}) {
		t.Error("vertex should be inside (inclusive)")
	}
	if !tri.Contains(Vec3{1, 1, 0}.Normalize()) {
		t.Error("edge midpoint should be inside (inclusive)")
	}
	if tri.Contains(Vec3{-1, 0, 0}) {
		t.Error("antipode should be outside")
	}
	if tri.Contains(Vec3{1, 1, -0.1}.Normalize()) {
		t.Error("point below the xy edge should be outside")
	}
}

func TestTriangleCenterAndArea(t *testing.T) {
	tri := Triangle{Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}
	c := tri.Center()
	if !tri.Contains(c) {
		t.Error("center should be contained")
	}
	// An octant is 1/8 of the sphere: area 4*pi/8.
	if got, want := tri.Area(), math.Pi/2; !almostEq(got, want, 1e-9) {
		t.Errorf("octant area = %v, want %v", got, want)
	}
	vs := tri.Vertices()
	if vs[0] != tri.V0 || vs[1] != tri.V1 || vs[2] != tri.V2 {
		t.Error("Vertices order")
	}
}

func TestCapRelation(t *testing.T) {
	tri := Triangle{Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}
	// Tiny cap at the centroid: Partial (cap inside triangle, no vertex in cap).
	if got := tri.CapRelation(NewCap(tri.Center(), Radians(1))); got != Partial {
		t.Errorf("tiny interior cap: %v, want partial", got)
	}
	// Huge cap containing the whole octant.
	if got := tri.CapRelation(NewCap(tri.Center(), Radians(89))); got != Inside {
		t.Errorf("enclosing cap: %v, want inside", got)
	}
	// Cap far away.
	if got := tri.CapRelation(NewCap(Vec3{-1, -1, -1}.Normalize(), Radians(10))); got != Disjoint {
		t.Errorf("distant cap: %v, want disjoint", got)
	}
	// Cap straddling an edge.
	edge := Vec3{1, 1, 0}.Normalize()
	if got := tri.CapRelation(NewCap(edge, Radians(5))); got != Partial {
		t.Errorf("edge cap: %v, want partial", got)
	}
	// Cap covering one vertex only.
	if got := tri.CapRelation(NewCap(Vec3{1, 0, 0}, Radians(5))); got != Partial {
		t.Errorf("vertex cap: %v, want partial", got)
	}
}

func TestRelationString(t *testing.T) {
	if Disjoint.String() != "disjoint" || Partial.String() != "partial" || Inside.String() != "inside" {
		t.Error("Relation strings")
	}
	if Relation(9).String() != "Relation(9)" {
		t.Error("unknown Relation string")
	}
}

func randUnit(rng *rand.Rand) Vec3 {
	for {
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if v.Norm() > 1e-6 {
			return v.Normalize()
		}
	}
}

// Property: CapRelation never reports Disjoint for a cap that contains a
// point of the triangle, and never reports Inside when some point of the
// triangle is outside the cap (sampled).
func TestCapRelationConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		// Random smallish triangle.
		a := randUnit(rng)
		b := a.Add(randUnit(rng).Scale(0.3)).Normalize()
		c := a.Add(randUnit(rng).Scale(0.3)).Normalize()
		// Orient counterclockwise.
		if a.Cross(b).Dot(c) < 0 {
			b, c = c, b
		}
		tri := Triangle{a, b, c}
		cap := NewCap(randUnit(rng), rng.Float64()*0.5)
		rel := tri.CapRelation(cap)

		// Sample points inside the triangle.
		for s := 0; s < 30; s++ {
			u, v := rng.Float64(), rng.Float64()
			if u+v > 1 {
				u, v = 1-u, 1-v
			}
			p := a.Scale(1 - u - v).Add(b.Scale(u)).Add(c.Scale(v)).Normalize()
			inCap := cap.Contains(p)
			if inCap && rel == Disjoint {
				t.Fatalf("iter %d: relation disjoint but sampled point in cap", iter)
			}
			if !inCap && rel == Inside {
				t.Fatalf("iter %d: relation inside but sampled point outside cap", iter)
			}
		}
	}
}

// Property: FromRaDec always produces unit vectors and Angle is symmetric
// and bounded.
func TestQuickAngleProperties(t *testing.T) {
	f := func(ra1, dec1, ra2, dec2 float64) bool {
		a := FromRaDec(math.Mod(ra1, 360), math.Mod(dec1, 90))
		b := FromRaDec(math.Mod(ra2, 360), math.Mod(dec2, 90))
		ang := a.Angle(b)
		return almostEq(a.Norm(), 1, 1e-9) && ang >= 0 && ang <= math.Pi+1e-9 &&
			almostEq(ang, b.Angle(a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVecString(t *testing.T) {
	if s := (Vec3{1, 0, 0}).String(); s == "" {
		t.Error("empty String")
	}
}

// Package geom provides the spherical geometry primitives used throughout
// LifeRaft: unit vectors on the celestial sphere, right-ascension /
// declination conversions, angular separations, spherical caps, and
// spherical-triangle containment tests.
//
// All positions are represented as unit vectors (Vec3) in a right-handed
// Cartesian frame: the x axis points at (ra=0, dec=0), the z axis at the
// north celestial pole. Angles are degrees at the API boundary and radians
// internally, following astronomy convention.
package geom

import (
	"fmt"
	"math"
)

// Epsilon is the tolerance used for geometric sidedness tests. Spherical
// triangle containment must be tolerant of floating-point drift at trixel
// boundaries; this value matches the tolerance used by the SDSS HTM
// implementation.
const Epsilon = 1e-12

// Vec3 is a vector in three-dimensional Cartesian space. Positions on the
// celestial sphere are unit vectors.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns the component-wise sum v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns the component-wise difference v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. Normalizing the zero vector
// returns the zero vector.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Mid returns the unit vector at the midpoint of the great-circle arc
// between unit vectors v and w. It is the edge-bisection operation of the
// HTM quad-tree decomposition.
func (v Vec3) Mid(w Vec3) Vec3 { return v.Add(w).Normalize() }

// Angle returns the angular separation between unit vectors v and w in
// radians. It uses atan2 of the cross and dot products, which is accurate
// for both small and near-antipodal separations (acos of a dot product
// loses precision at both extremes, and cross-match radii are arcseconds).
func (v Vec3) Angle(w Vec3) float64 {
	return math.Atan2(v.Cross(w).Norm(), v.Dot(w))
}

// String formats the vector with enough precision for debugging.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.9f, %.9f, %.9f)", v.X, v.Y, v.Z)
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// ArcsecToRad converts arcseconds to radians. Cross-match radii in SkyQuery
// are specified in arcseconds.
func ArcsecToRad(arcsec float64) float64 { return Radians(arcsec / 3600) }

// RadToArcsec converts radians to arcseconds.
func RadToArcsec(rad float64) float64 { return Degrees(rad) * 3600 }

// FromRaDec converts equatorial coordinates (right ascension and
// declination, both in degrees) to a unit vector. RA is taken modulo 360
// and dec is clamped to [-90, 90].
func FromRaDec(raDeg, decDeg float64) Vec3 {
	ra := Radians(math.Mod(math.Mod(raDeg, 360)+360, 360))
	dec := Radians(clamp(decDeg, -90, 90))
	cd := math.Cos(dec)
	return Vec3{cd * math.Cos(ra), cd * math.Sin(ra), math.Sin(dec)}
}

// ToRaDec converts a unit vector to equatorial coordinates in degrees. RA
// is in [0, 360); dec in [-90, 90]. The RA of a pole vector is 0.
func ToRaDec(v Vec3) (raDeg, decDeg float64) {
	dec := math.Asin(clamp(v.Z, -1, 1))
	ra := math.Atan2(v.Y, v.X)
	if ra < 0 {
		ra += 2 * math.Pi
	}
	if math.Abs(v.X) < Epsilon && math.Abs(v.Y) < Epsilon {
		ra = 0
	}
	return Degrees(ra), Degrees(dec)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Cap is a spherical cap: the set of unit vectors p with p·Center >= CosR.
// It represents the circular search region around a cross-match object.
type Cap struct {
	Center Vec3    // unit vector at the cap center
	CosR   float64 // cosine of the angular radius
}

// NewCap builds a cap from a center unit vector and an angular radius in
// radians. Radii are clamped to [0, pi].
func NewCap(center Vec3, radiusRad float64) Cap {
	return Cap{Center: center.Normalize(), CosR: math.Cos(clamp(radiusRad, 0, math.Pi))}
}

// Radius returns the angular radius of the cap in radians.
func (c Cap) Radius() float64 { return math.Acos(clamp(c.CosR, -1, 1)) }

// Contains reports whether unit vector p lies inside the cap (boundary
// inclusive, within Epsilon).
func (c Cap) Contains(p Vec3) bool { return p.Dot(c.Center) >= c.CosR-Epsilon }

// IntersectsArc reports whether the cap intersects the great-circle arc
// between unit vectors a and b. The test finds the point of the great
// circle through a and b closest to the cap center and checks whether that
// point lies on the arc segment.
func (c Cap) IntersectsArc(a, b Vec3) bool {
	if c.Contains(a) || c.Contains(b) {
		return true
	}
	n := a.Cross(b)
	nn := n.Norm()
	if nn < Epsilon {
		return false // degenerate arc
	}
	n = n.Scale(1 / nn)
	// Distance from cap center to the great circle's plane.
	sinDist := math.Abs(c.Center.Dot(n))
	cosDist := math.Sqrt(math.Max(0, 1-sinDist*sinDist))
	if cosDist < c.CosR-Epsilon {
		return false // circle never enters the cap
	}
	// Closest point on the great circle to the center.
	p := c.Center.Sub(n.Scale(c.Center.Dot(n))).Normalize()
	if p.Norm() == 0 {
		return true // center on the circle's axis: whole circle equidistant
	}
	// p must lie on the arc (between a and b): p is on the minor arc iff it
	// is on the same side as the other endpoint for both edge normals.
	return a.Cross(p).Dot(n) >= -Epsilon && p.Cross(b).Dot(n) >= -Epsilon
}

// Triangle is a spherical triangle with counterclockwise-ordered unit
// vertices (as seen from outside the sphere). HTM trixels are Triangles.
type Triangle struct {
	V0, V1, V2 Vec3
}

// Contains reports whether unit vector p lies inside the triangle
// (boundary inclusive). A point is inside iff it is on the inner side of
// all three edge planes.
func (t Triangle) Contains(p Vec3) bool {
	return t.V0.Cross(t.V1).Dot(p) >= -Epsilon &&
		t.V1.Cross(t.V2).Dot(p) >= -Epsilon &&
		t.V2.Cross(t.V0).Dot(p) >= -Epsilon
}

// Center returns the (normalized) centroid of the triangle.
func (t Triangle) Center() Vec3 {
	return t.V0.Add(t.V1).Add(t.V2).Normalize()
}

// Vertices returns the three vertices in order.
func (t Triangle) Vertices() [3]Vec3 { return [3]Vec3{t.V0, t.V1, t.V2} }

// Area returns the spherical area (solid angle, steradians) of the
// triangle via Girard's theorem.
func (t Triangle) Area() float64 {
	a := t.V1.Angle(t.V2)
	b := t.V0.Angle(t.V2)
	c := t.V0.Angle(t.V1)
	s := (a + b + c) / 2
	// L'Huilier's formula, numerically stable for small triangles.
	tanE4 := math.Sqrt(math.Max(0, math.Tan(s/2)*math.Tan((s-a)/2)*math.Tan((s-b)/2)*math.Tan((s-c)/2)))
	return 4 * math.Atan(tanE4)
}

// RelationToCap classifies the triangle against a cap.
type Relation int

const (
	// Disjoint means the triangle and cap share no points (conservatively:
	// the test may report Partial for some disjoint pairs, never the
	// reverse).
	Disjoint Relation = iota
	// Partial means the triangle and cap may overlap without containment.
	Partial
	// Inside means the triangle lies entirely within the cap.
	Inside
)

func (r Relation) String() string {
	switch r {
	case Disjoint:
		return "disjoint"
	case Partial:
		return "partial"
	case Inside:
		return "inside"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// CapRelation classifies triangle t against cap c. The result is
// conservative in the direction required by spatial filtering: Inside and
// Disjoint are exact; any uncertain case is reported as Partial, so a
// coverage computed from it never drops a matching region.
func (t Triangle) CapRelation(c Cap) Relation {
	in := 0
	if c.Contains(t.V0) {
		in++
	}
	if c.Contains(t.V1) {
		in++
	}
	if c.Contains(t.V2) {
		in++
	}
	switch in {
	case 3:
		// All vertices inside. The triangle is fully inside unless the cap
		// is smaller than the triangle's inscribed region, which cannot
		// happen when all vertices are inside a convex cap of radius < pi/2
		// ... except for caps whose complement pokes through an edge; for
		// caps with CosR >= 0 the region is convex so we are exact.
		if c.CosR >= 0 {
			return Inside
		}
		// Huge cap (> 90 deg): check edges conservatively.
		anti := Cap{Center: c.Center.Scale(-1), CosR: -c.CosR}
		if anti.IntersectsArc(t.V0, t.V1) || anti.IntersectsArc(t.V1, t.V2) || anti.IntersectsArc(t.V2, t.V0) {
			return Partial
		}
		return Inside
	case 1, 2:
		return Partial
	}
	// No vertex inside: the cap may still poke through an edge or sit
	// entirely within the triangle.
	if t.Contains(c.Center) {
		return Partial
	}
	if c.IntersectsArc(t.V0, t.V1) || c.IntersectsArc(t.V1, t.V2) || c.IntersectsArc(t.V2, t.V0) {
		return Partial
	}
	return Disjoint
}

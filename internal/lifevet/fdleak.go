package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFDLeak enforces descriptor hygiene in the storage packages:
// a file (or descriptor-owning handle) obtained from os.Open, os.Create,
// os.OpenFile, os.CreateTemp, or segment.OpenSet/Reopen must be closed
// on every error-return path between the open and the point where
// ownership transfers (a defer close, an escape into a struct or return
// value, or an explicit close). Long-running engines open one
// descriptor per segment file; a leak on a rare recovery path is a
// slow-motion EMFILE outage.
//
// The check is intra-procedural and block-scoped: it follows the
// statements after the open within its enclosing block (descending into
// nested if/for/switch bodies). Ownership transfer — the handle
// returned, stored into a composite or field, or passed to another
// function — ends tracking.
var AnalyzerFDLeak = &Analyzer{
	Name: "fdleak",
	Doc:  "os.Open/os.Create/OpenSet results must be closed on all error-return paths",
	Run:  runFDLeak,
}

// fdScopes are the packages that own real descriptors.
var fdScopes = []string{"internal/segment", "internal/cache/disktier"}

// osOpenFuncs are the descriptor-returning os entry points.
var osOpenFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
}

func runFDLeak(m *Module, r *Reporter) {
	for _, pkg := range m.PackagesInScope(fdScopes...) {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c := &fdChecker{pkg: pkg, r: r, fn: fd}
				c.scanBlock(fd.Body.List)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						(&fdChecker{pkg: pkg, r: r, lit: lit}).scanBlock(lit.Body.List)
					}
					return true
				})
			}
		}
	}
}

type fdChecker struct {
	pkg *Package
	r   *Reporter
	fn  *ast.FuncDecl
	lit *ast.FuncLit
}

// results returns the result field list of the enclosing function.
func (c *fdChecker) results() *ast.FieldList {
	if c.fn != nil {
		return c.fn.Type.Results
	}
	return c.lit.Type.Results
}

// scanBlock looks for open-call assignments in stmts and tracks each
// one over the remainder of its block; nested blocks are scanned for
// their own opens too.
func (c *fdChecker) scanBlock(stmts []ast.Stmt) {
	for i, s := range stmts {
		if as, ok := s.(*ast.AssignStmt); ok {
			if v, errv, name, ok := c.openAssign(as); ok {
				t := &fdTrack{c: c, v: v, errv: errv, openName: name, openPos: as.Pos(), firstCheck: true}
				t.walk(stmts[i+1:], false)
			}
		}
		// Recurse to find opens that happen inside nested blocks.
		switch s := s.(type) {
		case *ast.BlockStmt:
			c.scanBlock(s.List)
		case *ast.IfStmt:
			c.scanBlock(s.Body.List)
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				c.scanBlock(b.List)
			}
		case *ast.ForStmt:
			c.scanBlock(s.Body.List)
		case *ast.RangeStmt:
			c.scanBlock(s.Body.List)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					c.scanBlock(cl.Body)
				}
			}
		}
	}
}

// openAssign matches `f, err := <open>(...)` (or `f, err = ...`) and
// returns the descriptor variable, the error variable, and the open
// function's display name.
func (c *fdChecker) openAssign(as *ast.AssignStmt) (v, errv *types.Var, name string, ok bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 1 {
		return nil, nil, "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil, "", false
	}
	fn := staticCallee(c.pkg.Info, call)
	if fn == nil {
		return nil, nil, "", false
	}
	switch {
	case isPkgFunc(fn, "os") && osOpenFuncs[fn.Name()]:
		name = "os." + fn.Name()
	case fn.Pkg() != nil && PathInScope(fn.Pkg().Path(), "internal/segment") &&
		(fn.Name() == "OpenSet" || fn.Name() == "Reopen"):
		name = fn.Name()
	default:
		return nil, nil, "", false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil, "", false
	}
	v, ok = c.defOrUse(id)
	if !ok {
		return nil, nil, "", false
	}
	if len(as.Lhs) > 1 {
		if eid, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok {
			errv, _ = c.defOrUse(eid)
		}
	}
	return v, errv, name, true
}

func (c *fdChecker) defOrUse(id *ast.Ident) (*types.Var, bool) {
	if v, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
		return v, true
	}
	v, ok := c.pkg.Info.Uses[id].(*types.Var)
	return v, ok
}

// fdTrack follows one opened descriptor through its block.
type fdTrack struct {
	c        *fdChecker
	v        *types.Var
	errv     *types.Var
	openName string
	openPos  token.Pos
	// firstCheck is true until the descriptor is first used: the open's
	// own `if err != nil { return }` arm runs with an invalid handle and
	// owes no close.
	firstCheck bool
}

// walk processes stmts in order; closed reports whether a close has
// already executed on this path. Returns true when tracking ended
// (deferred close, escape, or kill).
func (t *fdTrack) walk(stmts []ast.Stmt, closed bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if t.callsClose(s.Call) || t.funcLitCloses(s.Call) {
				return true
			}
			if t.mentions(s) {
				return true // handle captured by deferred cleanup
			}
		case *ast.ExprStmt:
			if t.closesIn(s) {
				closed = true
				continue
			}
			if t.escapes(s) {
				return true
			}
			t.noteUse(s)
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, _ := t.c.defOrUse(id); v == t.v {
						return true // reassigned (f = nil ownership idiom)
					}
				}
			}
			if t.closesIn(s) {
				closed = true
				continue
			}
			if t.escapes(s) {
				return true
			}
			t.noteUse(s)
		case *ast.ReturnStmt:
			if t.mentions(s) {
				return true // returned to the caller: ownership transfers
			}
			if !closed && t.errorReturn(s) && !t.firstCheck {
				t.c.r.Reportf(s.Pos(), "%s result %q (opened at %s) is not closed on this error-return path", t.openName, t.v.Name(), t.c.pkg.Fset.Position(t.openPos))
			}
		case *ast.IfStmt:
			// The open's own error check: the handle is invalid inside it.
			if s.Init == nil && t.firstCheck && t.errv != nil && t.condChecksErr(s.Cond) {
				t.firstCheck = false
				continue
			}
			if s.Init != nil {
				if t.closesIn(s.Init) {
					closed = true
				} else if t.escapes(s.Init) {
					return true
				}
				t.noteUse(s.Init)
			}
			t.noteUse(s.Cond)
			if t.walk(s.Body.List, closed) {
				return true
			}
			if b, ok := s.Else.(*ast.BlockStmt); ok {
				if t.walk(b.List, closed) {
					return true
				}
			}
		case *ast.BlockStmt:
			if t.walk(s.List, closed) {
				return true
			}
		case *ast.ForStmt:
			if t.escapes(s) {
				return true
			}
			if t.walk(s.Body.List, closed) {
				return true
			}
		case *ast.RangeStmt:
			if t.escapes(s) {
				return true
			}
			if t.walk(s.Body.List, closed) {
				return true
			}
		case *ast.SwitchStmt:
			t.noteUse(s)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					if t.walk(cl.Body, closed) {
						return true
					}
				}
			}
		default:
			if t.escapes(s) {
				return true
			}
			t.noteUse(s)
		}
	}
	return false
}

// closesIn reports a f.Close() call anywhere in n (statement
// expressions and if-statement initializers; branch bodies are walked
// separately so their closes stay branch-scoped).
func (t *fdTrack) closesIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && t.callsClose(c) {
			found = true
		}
		return !found
	})
	return found
}

// callsClose matches f.Close().
func (t *fdTrack) callsClose(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, _ := t.c.defOrUse(id)
	return v == t.v
}

// funcLitCloses matches `defer func() { ... f.Close() ... }()`.
func (t *fdTrack) funcLitCloses(call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && t.callsClose(c) {
			found = true
		}
		return !found
	})
	return found
}

// mentions reports any appearance of the tracked variable in n.
func (t *fdTrack) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := t.c.defOrUse(id); v == t.v {
				found = true
			}
		}
		return !found
	})
	return found
}

// noteUse clears firstCheck once the handle is actually used.
func (t *fdTrack) noteUse(n ast.Node) {
	if t.firstCheck && t.mentions(n) {
		t.firstCheck = false
	}
}

// escapes reports whether the handle's ownership leaves this function
// in n: passed as a call argument (other than to its own methods),
// stored into a composite literal, or assigned somewhere.
func (t *fdTrack) escapes(n ast.Node) bool {
	escaped := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if t.mentions(arg) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if t.mentions(el) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// errorReturn reports whether ret returns a non-nil error: the
// enclosing function has an error result and the corresponding
// expression is not the nil literal. Naked returns are assumed clean.
func (t *fdTrack) errorReturn(ret *ast.ReturnStmt) bool {
	res := t.c.results()
	if res == nil || len(ret.Results) == 0 {
		return false
	}
	for i, expr := range ret.Results {
		if i >= len(resultTypes(t.c.pkg, res)) {
			break
		}
		if !isErrorType(resultTypes(t.c.pkg, res)[i]) {
			continue
		}
		if id, ok := ast.Unparen(expr).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

func resultTypes(pkg *Package, res *ast.FieldList) []types.Type {
	var out []types.Type
	for _, f := range res.List {
		tv := pkg.Info.Types[f.Type]
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, tv.Type)
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// condChecksErr matches `err != nil` (possibly with && conjuncts) for
// the open's error variable.
func (t *fdTrack) condChecksErr(cond ast.Expr) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LAND || c.Op == token.LOR {
			return t.condChecksErr(c.X) || t.condChecksErr(c.Y)
		}
		if c.Op != token.NEQ {
			return false
		}
		for _, side := range []ast.Expr{c.X, c.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok {
				if v, _ := t.c.defOrUse(id); v != nil && v == t.errv {
					return true
				}
			}
		}
	}
	return false
}

package segment

import "os"

// leak opens a file and drops the descriptor on the write-error path.
func leak(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err // open failed: nothing to close
	}
	if _, err := f.Write(data); err != nil {
		return err // want fdleak "not closed on this error-return path"
	}
	return f.Close()
}

// clean closes on every error path.
func clean(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// deferred hands the close to defer: ownership is settled immediately.
func deferred(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// transfer returns the handle: the caller owns the close from here on.
func transfer(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Set is a descriptor-owning handle, like the real segment set.
type Set struct{ f *os.File }

// OpenSet is a module-level open entry point the analyzer tracks.
func OpenSet(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Set{f: f}, nil
}

func (s *Set) Close() error { return s.f.Close() }

func (s *Set) stat() (int64, error) {
	fi, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// leakSet drops a Set on the validation-error path.
func leakSet(path string) (*Set, error) {
	s, err := OpenSet(path)
	if err != nil {
		return nil, err
	}
	if _, err := s.stat(); err != nil {
		return nil, err // want fdleak "not closed on this error-return path"
	}
	return s, nil
}

package core

import "fmt"

type pair struct{ a int }

type sched struct {
	buf []int
}

// step is a service-loop root by name and package.
func (s *sched) step() {
	s.service(1)
	if len(s.buf) > 100 {
		// panic arguments are post-mortem: formatting the crash message
		// is the last thing the process does.
		panic(fmt.Sprintf("overflow %d", len(s.buf)))
	}
}

// service is reachable from step: allocations here are hot-path bugs.
func (s *sched) service(n int) {
	s.buf = append(s.buf, n) // append: amortized pooled growth, probe-gated
	x := make([]int, n)      // want hotpath-alloc "make allocates"
	_ = x
	p := &pair{a: n} // want hotpath-alloc "composite literal escapes"
	_ = p
	msg := fmt.Sprintf("%d", n) // want hotpath-alloc "fmt.Sprintf allocates"
	_ = msg
}

// coldSetup is not reachable from any root: it may allocate freely.
func coldSetup() []int {
	return make([]int, 8)
}

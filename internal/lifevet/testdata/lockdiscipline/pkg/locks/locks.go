package locks

import (
	"os"
	"sync"
)

type tier struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	order []uint32
	out   chan int
}

// persistUnderLock writes the sidecar while holding the tier lock.
func (t *tier) persistUnderLock(path string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	os.WriteFile(path, data, 0o644) // want lockdiscipline "os.WriteFile while holding t.mu"
}

// notifyUnderLock publishes on a channel before releasing.
func (t *tier) notifyUnderLock(v int) {
	t.mu.Lock()
	t.out <- v // want lockdiscipline "channel send while holding t.mu"
	t.mu.Unlock()
}

// readUnderRLock does file I/O under the read lock: readers block
// writers just the same.
func (t *tier) readUnderRLock(f *os.File, buf []byte) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	f.Read(buf) // want lockdiscipline "while holding t.rw"
}

// viaHelper blocks through a call chain: the I/O summary propagates.
func (t *tier) viaHelper(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flush(path) // want lockdiscipline "while holding t.mu"
}

// flush does real disk I/O; it is only a finding when called under a lock.
func (t *tier) flush(path string) {
	os.Remove(path)
}

// unlockFirst snapshots under the lock and blocks after releasing.
func (t *tier) unlockFirst(path string, data []byte) {
	t.mu.Lock()
	order := append([]uint32(nil), t.order...)
	t.mu.Unlock()
	_ = order
	os.WriteFile(path, data, 0o644)
}

// tryNotify uses select-with-default: non-blocking under the lock.
func (t *tier) tryNotify(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case t.out <- v:
	default:
	}
}

// Fixture for goroleak: endless loops with no exit path are flagged at
// the go statement (including through static callees, and including the
// break-targets-the-select bug); bounded loops, returns, range-over-
// channel, and labeled breaks are clean.
package server

func work() {}

// leakySpin launches a goroutine spinning forever.
func leakySpin() {
	go func() { // want goroleak "no provable termination"
		for {
			work()
		}
	}()
}

// leakyNamed reaches the endless loop through a static callee.
func leakyNamed() {
	go pump() // want goroleak "no provable termination"
}

func pump() {
	for {
		work()
	}
}

// leakyNestedBreak: the unlabeled break targets the select, not the
// loop — the classic shutdown bug is reported, not excused.
func leakyNestedBreak(done chan struct{}) {
	go func() { // want goroleak "no provable termination"
		for {
			select {
			case <-done:
				break
			default:
			}
		}
	}()
}

// bounded falls off the end: bounded work needs no shutdown path.
func bounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

// exitOnDone returns from inside the loop.
func exitOnDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

// drain ends when the channel closes: range loops are conditional by
// construction.
func drain(ch chan int) {
	go func() {
		for range ch {
			work()
		}
	}()
}

// labeledBreak exits the loop via its label.
func labeledBreak(done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-done:
				break loop
			default:
			}
		}
	}()
}

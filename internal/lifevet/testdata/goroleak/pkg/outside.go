// Out-of-scope package: goroleak only patrols the serving and engine
// packages, so this endless goroutine is not flagged.
package pkg

func spin() {
	go func() {
		for {
		}
	}()
}

// Fixture for lockorder: the A->B / B->A inversion is a cycle and both
// edges report; a consistent A->C order, hand-over-hand on one class,
// and release-before-acquire are clean.
package core

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

var (
	ga A
	gb B
	gc C
)

// abPath acquires A then B: one direction of the inversion.
func abPath() {
	ga.mu.Lock()
	gb.mu.Lock() // want lockorder "lock order cycle"
	gb.mu.Unlock()
	ga.mu.Unlock()
}

// baPath acquires A while holding B — transitively, through lockA, so
// the edge carries a callee chain.
func baPath() {
	gb.mu.Lock()
	lockA() // want lockorder "through"
	gb.mu.Unlock()
}

func lockA() {
	ga.mu.Lock()
	ga.mu.Unlock()
}

// consistentAC and consistentAC2 always take A before C: an edge, but
// no cycle, so no report.
func consistentAC() {
	ga.mu.Lock()
	gc.mu.Lock()
	gc.mu.Unlock()
	ga.mu.Unlock()
}

func consistentAC2() {
	ga.mu.Lock()
	gc.mu.Lock()
	gc.mu.Unlock()
	ga.mu.Unlock()
}

// sameClass is hand-over-hand over two instances of one class: lock
// identity is per class, so this is not an order edge.
func sameClass(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// unlockedOrder releases B before taking A: nothing held, no edge.
func unlockedOrder() {
	gb.mu.Lock()
	gb.mu.Unlock()
	ga.mu.Lock()
	ga.mu.Unlock()
}

// Package metric mirrors the registry constructor signatures that the
// boundedlabels analyzer keys on.
package metric

type VecOpts struct {
	MaxSeries int
}

type Registry struct{}

type CounterVec struct{}
type GaugeVec struct{}
type HistogramVec struct{}

func (r *Registry) NewCounterVec(name, help string, labels []string, opts VecOpts) *CounterVec {
	return &CounterVec{}
}

func (r *Registry) NewGaugeVec(name, help string, labels []string, opts VecOpts) *GaugeVec {
	return &GaugeVec{}
}

func (r *Registry) NewHistogramVec(name, help string, labels []string, buckets []float64, opts VecOpts) *HistogramVec {
	return &HistogramVec{}
}

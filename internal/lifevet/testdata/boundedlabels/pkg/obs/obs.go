package obs

import "fixture/internal/metric"

func register(reg *metric.Registry) {
	// Unbounded tenant family: the zero VecOpts caps nothing.
	reg.NewCounterVec("requests_total", "requests", []string{"tenant", "verb"}, metric.VecOpts{}) // want boundedlabels "must pass metric.VecOpts"

	// Labels and opts routed through single-assignment locals still resolve.
	labels := []string{"tenant"}
	uncapped := metric.VecOpts{}
	reg.NewHistogramVec("latency_seconds", "latency", labels, []float64{0.1, 1}, uncapped) // want boundedlabels "must pass metric.VecOpts"

	// Bounded: MaxSeries set to a positive constant.
	capped := metric.VecOpts{MaxSeries: 64}
	reg.NewCounterVec("admissions_total", "admissions", []string{"tenant", "decision"}, capped)

	// Non-tenant labels carry no caller-controlled cardinality.
	reg.NewGaugeVec("queue_depth", "depth", []string{"shard"}, metric.VecOpts{})
}

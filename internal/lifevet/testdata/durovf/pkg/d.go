// Fixture for durovf: unbounded scale-ups, float conversions, and
// narrowing arithmetic are flagged module-wide; constants, mask/modulo
// bounds, and the two clamp idioms (saturating assign, guard return)
// are clean.
package pkg

import "time"

// scaleBad launders an unbounded count into a Duration.
func scaleBad(ms int64) time.Duration {
	return time.Duration(ms) * time.Millisecond // want durovf "overflow int64 nanoseconds"
}

// scaleBadReversed flags regardless of operand order.
func scaleBadReversed(ms int64) time.Duration {
	return time.Millisecond * time.Duration(ms) // want durovf "overflow int64 nanoseconds"
}

// scaleClamped saturates in the scalar domain first: clean.
func scaleClamped(ms int64) time.Duration {
	if ms > 1000 {
		ms = 1000
	}
	return time.Duration(ms) * time.Millisecond
}

// scaleGuarded returns early on out-of-range input: clean.
func scaleGuarded(ms int64) time.Duration {
	if ms >= 1000 {
		return time.Second
	}
	return time.Duration(ms) * time.Millisecond
}

// scaleMod is provably bounded by the modulo.
func scaleMod(ms int64) time.Duration {
	return time.Duration(ms%1000) * time.Millisecond
}

// scaleConst is compile-time constant.
func scaleConst() time.Duration {
	return time.Duration(250) * time.Millisecond
}

// floatBad converts an unbounded float product.
func floatBad(sec float64) time.Duration {
	return time.Duration(sec * 1e9) // want durovf "float product/quotient"
}

// floatQuoBad converts an unbounded quotient (tiny rate blows it up).
func floatQuoBad(n, rate float64) time.Duration {
	return time.Duration(n / rate) // want durovf "float product/quotient"
}

// floatClamped bounds the float first (the tokenBucket.wait shape).
func floatClamped(sec float64) time.Duration {
	if !(sec < 1000) {
		return time.Second
	}
	return time.Duration(sec * 1e9)
}

// narrowBad truncates 64-bit arithmetic to 32 bits.
func narrowBad(n int64) int32 {
	return int32(n * 3) // want durovf "truncates"
}

// narrowPlain converts a plain variable: bounds are usually structural.
func narrowPlain(n int64) int32 {
	return int32(n)
}

// narrowMasked is explicitly bounded.
func narrowMasked(n int64) int32 {
	return int32(n & 0xffff)
}

// narrowSameWidth starts from 32-bit operands: no silent width loss.
func narrowSameWidth(a, b int32) int32 {
	return int32(a + b)
}

// Package trace declares the Recorder handle, nil when tracing is off.
package trace

type Recorder struct{ n int }

func (r *Recorder) Note() { r.n++ }

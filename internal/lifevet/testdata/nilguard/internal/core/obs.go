package core

import "fixture/internal/trace"

type counter struct{ n int }

func (c *counter) Inc() { c.n++ }

// EngineMetrics is nil when instrumentation is off.
type EngineMetrics struct {
	hits counter
}

type sched struct {
	obs *EngineMetrics
	rec *trace.Recorder
}

// bad dereferences the handle with no dominating check.
func bad(s *sched) {
	s.obs.hits.Inc() // want nilguard "without a dominating nil check"
}

// badRecorder dereferences the cross-package trace handle unguarded.
func badRecorder(s *sched) {
	s.rec.Note() // want nilguard "without a dominating nil check"
}

// guarded is the convention: the branch dominates the deref.
func guarded(s *sched) {
	if s.obs != nil {
		s.obs.hits.Inc()
	}
}

// earlyReturn guards the remainder of the block.
func earlyReturn(s *sched) {
	if s.obs == nil {
		return
	}
	s.obs.hits.Inc()
}

// conjunct guards via the leading && operand.
func conjunct(s *sched, on bool) {
	if s.obs != nil && on {
		s.obs.hits.Inc()
	}
}

// reassigned loses its guard when the handle changes.
func reassigned(s *sched, other *EngineMetrics) {
	if s.obs == nil {
		return
	}
	s.obs = other
	s.obs.hits.Inc() // want nilguard "without a dominating nil check"
}

// closures run later: the guard does not carry into the literal.
func closureEscapes(s *sched) func() {
	if s.obs == nil {
		return nil
	}
	return func() {
		s.obs.hits.Inc() // want nilguard "without a dominating nil check"
	}
}

// reset is a method ON the guarded type: its own receiver is the
// caller's proof obligation, not this function's.
func (m *EngineMetrics) reset() {
	m.hits = counter{}
}

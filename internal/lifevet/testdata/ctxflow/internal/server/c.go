// Fixture for ctxflow: bare root contexts on the serving path are
// flagged unless immediately bounded; a named ctx parameter that is
// never consulted in a blocking body is flagged at the function name,
// with `_` as the documented opt-out.
package server

import (
	"context"
	"time"
)

// mint creates a bare root on the serving path.
func mint() context.Context {
	return context.Background() // want ctxflow "mints a root context"
}

// mintTODO is the same drop with TODO.
func mintTODO() context.Context {
	return context.TODO() // want ctxflow "mints a root context"
}

// bounded attaches a deadline immediately: a deliberate lifetime, not a
// dropped one.
func bounded() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), time.Second)
}

// drops accepts ctx, ignores it, and blocks on a channel: the caller's
// deadline dies at this frame.
func drops(ctx context.Context, ch chan int) int { // want ctxflow "never consults"
	return <-ch
}

// dropsSend is the send-side version.
func dropsSend(ctx context.Context, ch chan int) { // want ctxflow "never consults"
	ch <- 1
}

// optOut renames the parameter _: the signature documents the drop.
func optOut(_ context.Context, ch chan int) int {
	return <-ch
}

// uses consults ctx.
func uses(ctx context.Context, ch chan int) int {
	select {
	case <-ctx.Done():
		return 0
	case v := <-ch:
		return v
	}
}

// pure never blocks: an unused ctx is harmless.
func pure(ctx context.Context, a, b int) int {
	return a + b
}

// Out-of-scope package: ctxflow only patrols the serving path, so a
// root context here is not flagged.
package pkg

import "context"

func background() context.Context {
	return context.Background()
}

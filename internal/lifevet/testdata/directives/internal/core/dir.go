package core

import (
	"fmt"
	"time"
)

type sched struct{ n int }

// step is the service-loop root wiring the helpers into the hot path.
func (s *sched) step() {
	s.both()
	s.helper()
	s.stale()
}

// both silences two checks with one line-scoped directive.
func (s *sched) both() {
	//lifevet:allow wallclock, hotpath-alloc -- fixture: one directive, two checks
	_ = fmt.Sprint(time.Now())
}

//lifevet:allow hotpath-alloc -- fixture: doc-comment directive covers the whole body
func (s *sched) helper() {
	buf := make([]byte, 8)
	_ = fmt.Sprintf("%d", len(buf))
}

// stale hosts directives that match nothing, plus malformed ones.
func (s *sched) stale() {
	s.n++
	//lifevet:allow wallclock -- fixture: nothing nearby reads the clock // want stale-directive "suppressed no wallclock"
	s.n++
	//lifevet:allow warpclock -- fixture: no such analyzer // want stale-directive "unknown check"
	s.n++
	//lifevet:allow -- fixture: empty check list // want stale-directive "names no checks"
	s.n++
}

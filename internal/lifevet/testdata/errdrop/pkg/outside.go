// Out-of-scope package: errdrop only patrols the fail-stop storage and
// transport packages, so this discard is not flagged.
package pkg

import "os"

func drop(f *os.File) {
	f.Close()
}

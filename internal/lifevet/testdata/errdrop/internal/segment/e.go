// Fixture for errdrop: silent discards in a fail-stop package are
// flagged; deferred closes, cleanup before an error-propagating return,
// err-guarded teardown, never-fail writers, and //lifevet:allow are
// clean.
package segment

import (
	"bytes"
	"errors"
	"os"
)

// drop discards a Close error on the success path.
func drop(f *os.File) {
	f.Close() // want errdrop "call statement discards"
}

// blank discards through the blank identifier.
func blank(f *os.File) {
	_ = f.Close() // want errdrop "blank assignment discards"
}

// blankMulti discards only the error position of a multi-value call.
func blankMulti(f *os.File, b []byte) int {
	n, _ := f.Write(b) // want errdrop "blank assignment discards"
	return n
}

// deferred is the accepted read-path idiom.
func deferred(f *os.File) {
	defer f.Close()
}

// deferredLit is the accepted cleanup-literal idiom.
func deferredLit(f *os.File, tmp string) {
	defer func() {
		f.Close()
		os.Remove(tmp)
	}()
}

// propagating cleans up while the real error travels: exempt.
func propagating(f *os.File, tmp string) error {
	f.Close()
	os.Remove(tmp)
	return errors.New("write failed")
}

// guarded tears down inside an err != nil block: exempt.
func guarded(f *os.File, b []byte) int {
	if _, err := f.Write(b); err != nil {
		f.Close()
		return -1
	}
	return 0
}

// neverFail writers have vestigial error results.
func neverFail(buf *bytes.Buffer) {
	buf.WriteString("x")
}

// allowed records a deliberate best-effort decision.
func allowed(path string) {
	//lifevet:allow errdrop -- best-effort unlink on a path the caller already abandoned
	os.Remove(path)
}

package core

import "time"

// bad reads the wall clock in an engine package.
func bad() time.Time {
	return time.Now() // want wallclock "time.Now reads the wall clock"
}

// sleepy waits on the wall clock.
func sleepy() {
	time.Sleep(time.Millisecond) // want wallclock "time.Sleep"
}

// methodsAreFree uses time.Time arithmetic, which never touches the
// clock: only the package-level readers are flagged.
func methodsAreFree(a, b time.Time) bool {
	return a.After(b) && a.Add(time.Second).Before(b)
}

// allowed carries a line directive: an audited real-time measurement.
func allowed() time.Time {
	//lifevet:allow wallclock -- fixture: deliberate wall read
	return time.Now()
}

// Package outside is not an engine package: wall-clock reads here are
// unconstrained.
package outside

import "time"

func Stamp() time.Time {
	return time.Now()
}

package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerNilguard enforces the nil-guarded observability convention on
// engine paths: EngineMetrics/EngineObs handles and the trace Recorder
// are nil by default (the zero-alloc, uninstrumented configuration), so
// any field access or method call through them must be dominated by a
// `!= nil` check. A missed guard is a latent panic that only fires on
// un-instrumented deployments — exactly the configurations tests
// exercise least.
//
// The check is intra-procedural: a function whose callers guarantee a
// non-nil handle (e.g. one only called from inside a guarded branch)
// documents that contract with a //lifevet:allow nilguard directive on
// its declaration. Methods declared *on* a guarded type assume their
// own receiver non-nil; every other guarded expression still needs its
// check.
var AnalyzerNilguard = &Analyzer{
	Name: "nilguard",
	Doc:  "EngineMetrics/EngineObs/trace.Recorder derefs must be dominated by a nil check",
	Run:  runNilguard,
}

// nilguardScopes are the packages whose hot paths run with nil
// observability handles by default.
var nilguardScopes = []string{"internal/core"}

// guardedTypeNames maps package-path suffix to the type names whose
// pointers must be nil-checked before dereference.
var guardedTypeNames = map[string][]string{
	"internal/core":  {"EngineMetrics", "EngineObs"},
	"internal/trace": {"Recorder"},
}

func isGuardedType(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		// Also accept the named pointer case and plain named struct? No:
		// only pointers can be nil-dereferenced here.
		if p, isPtr := t.(*types.Pointer); isPtr {
			ptr = p
		} else {
			return false
		}
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	names, ok := guardedTypeNames[scopeKeyFor(named.Obj().Pkg().Path())]
	if !ok {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}

// scopeKeyFor maps an import path to its guardedTypeNames key.
func scopeKeyFor(path string) string {
	for key := range guardedTypeNames {
		if PathInScope(path, key) {
			return key
		}
	}
	return ""
}

func runNilguard(m *Module, r *Reporter) {
	for _, pkg := range m.PackagesInScope(nilguardScopes...) {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g := &nilGuardChecker{pkg: pkg, r: r}
				guards := map[string]bool{}
				// A method on a guarded type assumes its own receiver
				// non-nil: callers hold the guard.
				if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
					if tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]; ok && isGuardedType(tv.Type) {
						guards[fd.Recv.List[0].Names[0].Name] = true
					}
				}
				g.walkStmts(fd.Body.List, guards)
			}
		}
	}
}

type nilGuardChecker struct {
	pkg *Package
	r   *Reporter
}

// walkStmts checks statements in order. guards maps expression paths
// ("s.obs") proven non-nil on this path; branches copy it.
func (g *nilGuardChecker) walkStmts(stmts []ast.Stmt, guards map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				g.checkExpr(s.Init, guards)
			}
			g.checkExpr(s.Cond, guards)
			nonNil, isNilEq, path := nilCondition(s.Cond)
			then := copyGuards(guards)
			els := copyGuards(guards)
			if path != "" && nonNil {
				then[path] = true
			}
			if path != "" && isNilEq {
				els[path] = true
			}
			g.walkStmts(s.Body.List, then)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				g.walkStmts(e.List, els)
			case *ast.IfStmt:
				g.walkStmts([]ast.Stmt{e}, els)
			}
			// `if p == nil { return }` guards the remainder of this block.
			if path != "" && isNilEq && terminates(s.Body) {
				guards = copyGuards(guards)
				guards[path] = true
			}
		case *ast.AssignStmt:
			g.checkExpr(s, guards)
			for _, lhs := range s.Lhs {
				if p := exprPath(lhs); p != "" && len(guards) > 0 {
					guards = invalidate(guards, p)
				}
			}
		case *ast.BlockStmt:
			g.walkStmts(s.List, copyGuards(guards))
		case *ast.LabeledStmt:
			g.walkStmts([]ast.Stmt{s.Stmt}, guards)
		case *ast.ForStmt:
			if s.Init != nil {
				g.checkExpr(s.Init, guards)
			}
			g.checkExpr(s.Cond, guards)
			if s.Post != nil {
				g.checkExpr(s.Post, guards)
			}
			g.walkStmts(s.Body.List, copyGuards(guards))
		case *ast.RangeStmt:
			g.checkExpr(s.X, guards)
			g.walkStmts(s.Body.List, copyGuards(guards))
		case *ast.SwitchStmt:
			if s.Init != nil {
				g.checkExpr(s.Init, guards)
			}
			g.checkExpr(s.Tag, guards)
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					for _, e := range cl.List {
						g.checkExpr(e, guards)
					}
					g.walkStmts(cl.Body, copyGuards(guards))
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Assign != nil {
				g.checkExpr(s.Assign, guards)
			}
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CaseClause); ok {
					g.walkStmts(cl.Body, copyGuards(guards))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if cl, ok := cc.(*ast.CommClause); ok {
					g.walkStmts(cl.Body, copyGuards(guards))
				}
			}
		default:
			g.checkExpr(s, guards)
		}
	}
}

// checkExpr flags guarded-type dereferences in n that no dominating nil
// check covers. Function literals get a fresh (empty) guard set: the
// closure may run long after the guard.
func (g *nilGuardChecker) checkExpr(n ast.Node, guards map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.walkStmts(n.Body.List, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			base := ast.Unparen(n.X)
			tv, ok := g.pkg.Info.Types[base]
			if !ok || !isGuardedType(tv.Type) {
				return true
			}
			p := exprPath(base)
			if p != "" && guards[p] {
				return true
			}
			g.r.Reportf(n.Pos(), "%s dereferences %s (type %s) without a dominating nil check; observability handles are nil when instrumentation is off", exprPath(n), renderExpr(p, base), tv.Type)
			return true
		}
		return true
	})
}

func renderExpr(path string, e ast.Expr) string {
	if path != "" {
		return path
	}
	return "expression"
}

// nilCondition classifies cond: `p != nil` (possibly the head of a &&
// chain) or `p == nil`, returning the guarded path.
func nilCondition(cond ast.Expr) (nonNil, isNilEq bool, path string) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false, false, ""
	}
	if be.Op == token.LAND {
		// First conjunct guards the rest and the body.
		return nilCondition(be.X)
	}
	if be.Op != token.EQL && be.Op != token.NEQ {
		return false, false, ""
	}
	var other ast.Expr
	if isNilIdent(be.Y) {
		other = be.X
	} else if isNilIdent(be.X) {
		other = be.Y
	} else {
		return false, false, ""
	}
	p := exprPath(other)
	if p == "" {
		return false, false, ""
	}
	return be.Op == token.NEQ, be.Op == token.EQL, p
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block certainly leaves the enclosing
// block: its last statement is a return, branch, or panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// invalidate drops guards for path and anything reached through it.
func invalidate(guards map[string]bool, path string) map[string]bool {
	out := copyGuards(guards)
	for p := range out {
		if p == path || len(p) > len(path) && p[:len(path)] == path && p[len(path)] == '.' {
			delete(out, p)
		}
	}
	return out
}

func copyGuards(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

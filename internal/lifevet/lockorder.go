package lifevet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AnalyzerLockOrder proves the module's mutexes are acquired in one
// consistent global order. It names every mutex by its global lock
// class (the Type.field it lives in — see lockClassOf), walks each
// function flow-sensitively to find acquisitions performed while
// another class is held (directly, or through any statically resolved
// call via the transitive may-acquire summary), and assembles the edges
// into one module-wide order graph. A cycle in that graph — scheduler
// lock taken under the disk-tier lock on one path, disk-tier lock taken
// under the scheduler lock on another — is a potential deadlock the
// moment both paths run concurrently, and is reported on every edge
// that participates.
//
// Boundaries: lock identity is per *class*, not per instance, so
// hand-over-hand acquisition of two instances of the same class (parent
// and child of the same type) is not an edge; function literals are
// excluded (a closure usually runs on another goroutine, after the
// enclosing locks are gone); interface calls have no static callee and
// contribute no edges.
var AnalyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be acyclic module-wide (cycles are potential deadlocks)",
	Run:  runLockOrder,
}

// lockEdge is one observed "B acquired while A held" fact.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       string // function where the edge was observed
	via      string // callee chain when the acquisition is transitive
}

func runLockOrder(m *Module, r *Reporter) {
	ix := buildFuncIndex(m)
	sum := buildLockSummary(ix)

	var edges []lockEdge
	seen := make(map[string]bool)
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // same class: instance-level, not an order violation
		}
		key := e.from + "\x00" + e.to
		if seen[key] {
			return
		}
		seen[key] = true
		edges = append(edges, e)
	}

	for fn, d := range ix.decls {
		w := &orderWalker{d: d, sum: sum, fnName: funcDisplay(fn), add: addEdge}
		w.walkStmts(d.decl.Body.List, map[string]token.Pos{})
	}

	// Order graph over classes; report every edge inside a cycle.
	succ := make(map[string][]string)
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		visited := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			stack = append(stack, succ[n]...)
		}
		return false
	}

	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if !reaches(e.to, e.from) {
			continue
		}
		via := ""
		if e.via != "" {
			via = fmt.Sprintf(" (through %s)", e.via)
		}
		cycle := cyclePath(succ, e.to, e.from)
		r.Reportf(e.pos, "lock order cycle: %s acquired%s while holding %s in %s, but %s is reachable while holding %s (cycle: %s); two goroutines taking these paths concurrently deadlock",
			e.to, via, e.from, e.fn, e.from, e.to, strings.Join(cycle, " -> "))
	}
}

// cyclePath renders one from->...->to path plus the closing edge, for
// the diagnostic.
func cyclePath(succ map[string][]string, from, to string) []string {
	type node struct {
		name string
		path []string
	}
	visited := map[string]bool{from: true}
	queue := []node{{from, []string{to, from}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.name == to {
			return n.path
		}
		next := append([]string(nil), succ[n.name]...)
		sort.Strings(next)
		for _, s := range next {
			if visited[s] {
				continue
			}
			visited[s] = true
			queue = append(queue, node{s, append(append([]string(nil), n.path...), s)})
		}
	}
	return []string{to, from, to}
}

// orderWalker tracks held lock classes through one function body in
// execution order, mirroring lockdiscipline's traversal: sequential
// statements share a held-set, branch bodies get copies, defer Unlock
// keeps the lock held to function end.
type orderWalker struct {
	d      *funcDecl
	sum    *lockSummary
	fnName string
	add    func(lockEdge)
}

func (w *orderWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *orderWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scan(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Tag, held)
		for _, c := range s.Body.List {
			if cl, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cl, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				w.scan(cc.Comm, held)
			}
			w.walkStmts(cc.Body, copyHeld(held))
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end; the deferred
		// call's own acquisitions run after the body, outside any
		// still-held locks we can reason about, so only arguments scan.
		for _, a := range s.Call.Args {
			w.scan(a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scan(a, held)
		}
	default:
		w.scan(s, held)
	}
}

// scan inspects an expression or simple statement: mutex calls update
// the held-set and record edges; other calls contribute their summary's
// acquire set as edges.
func (w *orderWalker) scan(n ast.Node, held map[string]token.Pos) {
	if n == nil {
		return
	}
	info := w.d.pkg.Info
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, method := mutexMethod(info, call); path != "" {
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			class := lockClassOf(w.d.pkg, sel.X)
			switch method {
			case "Lock", "RLock", "TryLock", "TryRLock":
				if class != "" {
					for from := range held {
						w.add(lockEdge{from: from, to: class, pos: call.Pos(), fn: w.fnName})
					}
					held[class] = call.Pos()
				}
			case "Unlock", "RUnlock":
				if class != "" {
					delete(held, class)
				}
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		callee := origin(staticCallee(info, call))
		if callee == nil {
			return true
		}
		for class, acq := range w.sum.acquires[callee] {
			via := funcDisplay(callee)
			if acq.via != "" {
				via += " -> " + acq.via
			}
			for from := range held {
				// A callee re-acquiring the class the caller already holds
				// is a recursive-lock hazard, but instance identity is
				// unknown; only cross-class edges enter the order graph.
				w.add(lockEdge{from: from, to: class, pos: call.Pos(), fn: w.fnName, via: via})
			}
		}
		return true
	})
}

package lifevet

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-fixture harness copies testdata/<name> into a temp dir,
// stamps a go.mod onto it (module "fixture", so the analyzers'
// suffix-scoped package predicates fire for fixture/internal/...), runs
// the production loader and analyzer set, and matches the result
// bidirectionally against `// want <check> "substr"` comments: every
// diagnostic must be expected, and every expectation must be hit.

var wantRe = regexp.MustCompile(`// want ([a-z-]+)(?: "([^"]*)")?`)

type want struct {
	file   string
	line   int
	check  string
	substr string
}

func runFixture(t *testing.T, name string) (Result, string) {
	t.Helper()
	dir := t.TempDir()
	src := filepath.Join("testdata", name)
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, p)
		if rerr != nil {
			return rerr
		}
		dst := filepath.Join(dir, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return rerr
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture %s: %v", name, err)
	}
	mod := []byte("module fixture\n\ngo 1.24\n")
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), mod, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return Run(m, Analyzers()), dir
}

func collectWants(t *testing.T, dir string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(p) != ".go" {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, want{file: p, line: line, check: m[1], substr: m[2]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("collect wants: %v", err)
	}
	return wants
}

// checkFixture asserts the diagnostic set matches the want-comments
// exactly and returns the Result for extra assertions (Suppressed).
func checkFixture(t *testing.T, name string) Result {
	t.Helper()
	res, dir := runFixture(t, name)
	wants := collectWants(t, dir)
	used := make([]bool, len(wants))
	for _, d := range res.Diagnostics {
		matched := false
		for i, w := range wants {
			if !used[i] && w.file == d.File && w.line == d.Line && w.check == d.Check &&
				(w.substr == "" || containsSubstr(d.Message, w.substr)) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d [%s] %s", relTo(dir, d.File), d.Line, d.Check, d.Message)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic: want %s at %s:%d (substr %q)", w.check, relTo(dir, w.file), w.line, w.substr)
		}
	}
	return res
}

func containsSubstr(msg, substr string) bool {
	return substr == "" || regexp.MustCompile(regexp.QuoteMeta(substr)).MatchString(msg)
}

func relTo(dir, p string) string {
	if rel, err := filepath.Rel(dir, p); err == nil {
		return rel
	}
	return p
}

func assertSuppressed(t *testing.T, res Result, n int) {
	t.Helper()
	if res.Suppressed != n {
		t.Errorf("suppressed = %d, want %d", res.Suppressed, n)
	}
}

func TestWallclockFixture(t *testing.T) {
	// One positive per flagged func, time.Time methods and out-of-scope
	// packages ignored, one line-directive suppression.
	res := checkFixture(t, "wallclock")
	assertSuppressed(t, res, 1)
}

func TestHotpathAllocFixture(t *testing.T) {
	// make/&lit/fmt flagged only when reachable from the step root;
	// panic arguments and unreachable helpers are exempt.
	res := checkFixture(t, "hotpathalloc")
	assertSuppressed(t, res, 0)
}

func TestNilguardFixture(t *testing.T) {
	// Unguarded derefs flagged; dominating checks, early returns,
	// conjunct guards, and guarded-type receivers are clean; guards die
	// on reassignment and do not leak into closures.
	res := checkFixture(t, "nilguard")
	assertSuppressed(t, res, 0)
}

func TestBoundedLabelsFixture(t *testing.T) {
	// Tenant-labeled Vecs without MaxSeries flagged, including through
	// single-assignment locals; capped or tenant-free families pass.
	res := checkFixture(t, "boundedlabels")
	assertSuppressed(t, res, 0)
}

func TestFDLeakFixture(t *testing.T) {
	// Error returns after a successful open must close first; defers,
	// explicit closes, and ownership transfers end tracking.
	res := checkFixture(t, "fdleak")
	assertSuppressed(t, res, 0)
}

func TestLockDisciplineFixture(t *testing.T) {
	// Disk and channel traffic under a held mutex flagged, including
	// through the transitive I/O summary; unlock-first and
	// select-with-default are clean.
	res := checkFixture(t, "lockdiscipline")
	assertSuppressed(t, res, 0)
}

func TestDirectivesFixture(t *testing.T) {
	// One line directive carrying two checks suppresses both; a
	// doc-comment directive covers the whole function; stale, unknown,
	// and empty directives are themselves diagnostics.
	res := checkFixture(t, "directives")
	assertSuppressed(t, res, 4)
}

func TestLockOrderFixture(t *testing.T) {
	// An A->B / B->A inversion reports both edges (one transitive,
	// carrying the callee chain); a consistent order, hand-over-hand on
	// one class, and release-before-acquire are clean.
	res := checkFixture(t, "lockorder")
	assertSuppressed(t, res, 0)
}

func TestGoroleakFixture(t *testing.T) {
	// Endless loops with no exit are flagged at the go statement —
	// including through static callees and the break-targets-the-select
	// bug; bounded loops, returns, range-over-channel, labeled breaks,
	// and out-of-scope packages are clean.
	res := checkFixture(t, "goroleak")
	assertSuppressed(t, res, 0)
}

func TestCtxflowFixture(t *testing.T) {
	// Bare roots on the serving path and dropped ctx params before
	// blocking are flagged; immediately bounded roots, `_` opt-outs,
	// consulted contexts, non-blocking bodies, and out-of-scope packages
	// are clean.
	res := checkFixture(t, "ctxflow")
	assertSuppressed(t, res, 0)
}

func TestDurovfFixture(t *testing.T) {
	// Unbounded duration scale-ups, float conversions, and narrowing
	// arithmetic are flagged; constants, mask/modulo bounds, and both
	// clamp idioms (saturating assign, guard return) are clean.
	res := checkFixture(t, "durovf")
	assertSuppressed(t, res, 0)
}

func TestErrdropFixture(t *testing.T) {
	// Silent discards in fail-stop packages are flagged; defers
	// (including deferred cleanup literals), error-propagating cleanup,
	// err-guarded teardown, never-fail writers, and out-of-scope
	// packages are clean. One allow directive records a decision.
	res := checkFixture(t, "errdrop")
	assertSuppressed(t, res, 1)
}

func TestAnalyzersRegistered(t *testing.T) {
	as := Analyzers()
	if len(as) < 11 {
		t.Fatalf("Analyzers() returned %d analyzers, want >= 11", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run func", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if seen[StaleDirectiveCheck] {
		t.Errorf("%q is reserved for the directive meta-check", StaleDirectiveCheck)
	}
	if seen[StaleBaselineCheck] {
		t.Errorf("%q is reserved for the baseline meta-check", StaleBaselineCheck)
	}
	for _, name := range []string{"lockorder", "goroleak", "ctxflow", "durovf", "errdrop"} {
		if !seen[name] {
			t.Errorf("v2 analyzer %q not registered", name)
		}
	}
}

// TestSelfCheck runs the suite over its own package and the command
// tree: the analyzers must hold their own code to the invariants they
// enforce, with no directives and no baseline.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real module")
	}
	m, err := Load("../..", "./internal/lifevet/...", "./cmd/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := Run(m, Analyzers())
	moduleDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		// The load set drags in module-internal dependencies of the other
		// cmd binaries; those are covered by the module-wide run and its
		// baseline. The self-check only vouches for the tool's own trees.
		rel, rerr := filepath.Rel(moduleDir, d.File)
		if rerr != nil {
			rel = d.File
		}
		rel = filepath.ToSlash(rel)
		if !strings.HasPrefix(rel, "internal/lifevet/") && !strings.HasPrefix(rel, "cmd/") {
			continue
		}
		t.Errorf("self-check finding: %s", d)
	}
}

// TestModuleBaselineTight runs the full module exactly as CI does and
// asserts the committed baseline absorbs everything with no stale
// entries: the ratchet is tight in both directions.
func TestModuleBaselineTight(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the real module")
	}
	m, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := Run(m, Analyzers())
	b, err := LoadBaseline("../../lifevet-baseline.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ApplyBaseline(&res, b, "../..")
	for _, d := range res.Diagnostics {
		t.Errorf("module finding survived the baseline: %s", d)
	}
	if res.Baselined == 0 {
		t.Error("baseline absorbed nothing — the committed file should pin at least one finding class")
	}
}

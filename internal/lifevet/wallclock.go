package lifevet

import (
	"go/ast"
	"go/types"
)

// engineScopes are the packages whose scheduling paths must read the
// virtual clock: golden-trace bit-identity and virtual-clock replay
// depend on the engine never observing real time. Matched by path
// suffix so fixture modules exercise the same predicate.
var engineScopes = []string{"internal/core", "internal/cache", "internal/segment"}

// wallclockFuncs are the time-package entry points that observe or wait
// on the wall clock. Types (time.Time, time.Duration) and arithmetic
// remain free.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"After": true, "Tick": true, "Sleep": true,
}

// AnalyzerWallclock flags wall-clock reads in engine packages. The
// engine's clock is Config.Clock (a simclock on every replay path);
// time.Now or a timer anywhere under internal/core, internal/cache, or
// internal/segment silently desynchronizes virtual-clock replay and
// breaks golden-trace bit-identity. Intentional real-time measurement
// (perf probes, wall-latency metrics) carries a //lifevet:allow
// wallclock directive so every such site is an audited decision.
var AnalyzerWallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "engine packages must not read the wall clock (use the configured simclock)",
	Run:  runWallclock,
}

func runWallclock(m *Module, r *Reporter) {
	for _, pkg := range m.PackagesInScope(engineScopes...) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok || !wallclockFuncs[fn.Name()] || !isPkgFunc(fn, "time") {
					return true
				}
				// Methods like time.Time.After share names with the
				// package-level clock readers but are pure arithmetic.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				r.Reportf(id.Pos(), "time.%s reads the wall clock in engine package %s; scheduling paths must use the configured clock (simclock) so virtual-clock replay stays bit-identical", fn.Name(), pkg.ImportPath)
				return true
			})
		}
	}
}

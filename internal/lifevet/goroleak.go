package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoroleak requires every goroutine launched in the serving and
// engine packages to have a provable termination path. A `go` statement
// whose body — transitively, through every statically resolved module
// call — contains an unconditional `for { ... }` loop with no reachable
// exit (no `return`, no `break` targeting that loop, no panic, and no
// termination-signal construct in a select case) runs forever: it
// outlives Close, pins its captured state, and on a server that starts
// one per connection or per shard it is a goroutine leak that grows
// with traffic.
//
// What counts as an exit from an unconditional loop:
//
//   - `return` or `panic` anywhere in the loop body (outside nested
//     function literals);
//   - `break` that targets the loop itself — an unlabeled break inside
//     a nested for/switch/select targets the inner statement and does
//     NOT count (the classic `case <-done: break` bug is reported, not
//     excused);
//   - `range ch` loops are conditional by construction (channel close
//     ends them), as are loops with a condition expression.
//
// Goroutine bodies that terminate by falling off the end (no infinite
// loop anywhere) are fine without any signal: bounded work needs no
// shutdown path.
var AnalyzerGoroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines in serving/engine packages must have a provable termination path",
	Run:  runGoroleak,
}

// goroleakScopes are the packages whose goroutines must be
// lifecycle-managed: the engine, the serving layer, the federation
// transport, and the cache tiers all start goroutines per query, per
// connection, or per promotion.
var goroleakScopes = []string{"internal/core", "internal/server", "internal/federation", "internal/cache"}

func runGoroleak(m *Module, r *Reporter) {
	ix := buildFuncIndex(m)
	for _, pkg := range m.PackagesInScope(goroleakScopes...) {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				c := &leakChecker{ix: ix, visited: make(map[*types.Func]bool)}
				var bad *ast.ForStmt
				var where string
				switch fun := ast.Unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					bad, where = c.findEndlessLoop(pkg, fun.Body)
				default:
					callee := origin(staticCallee(pkg.Info, g.Call))
					if callee == nil {
						return true // dynamic dispatch: no static body to prove
					}
					bad, where = c.findEndlessLoopIn(callee)
				}
				if bad != nil {
					pos := g.Pos()
					loc := pkg.Fset.Position(bad.Pos())
					r.Reportf(pos, "goroutine has no provable termination path: unconditional for loop at %s:%d%s has no return, loop break, or panic; it outlives Close and leaks (add a ctx/done-channel exit)",
						loc.Filename, loc.Line, where)
				}
				return true
			})
		}
	}
}

// leakChecker hunts for an endless loop reachable from a goroutine
// body through static calls.
type leakChecker struct {
	ix      *funcIndex
	visited map[*types.Func]bool
}

// findEndlessLoopIn checks a named function's body (and its callees).
func (c *leakChecker) findEndlessLoopIn(fn *types.Func) (*ast.ForStmt, string) {
	if c.visited[fn] {
		return nil, ""
	}
	c.visited[fn] = true
	d := c.ix.decls[fn]
	if d == nil {
		return nil, ""
	}
	loop, _ := c.findEndlessLoop(d.pkg, d.decl.Body)
	if loop != nil {
		return loop, " (in " + funcDisplay(fn) + ")"
	}
	return nil, ""
}

// findEndlessLoop scans body for an unconditional for loop with no
// reachable exit, descending into statically called module functions.
func (c *leakChecker) findEndlessLoop(pkg *Package, body *ast.BlockStmt) (*ast.ForStmt, string) {
	var found *ast.ForStmt
	where := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested goroutine/closure: its own launch site owns it
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n) {
				found = n
			}
			return true
		case *ast.CallExpr:
			callee := origin(staticCallee(pkg.Info, n))
			if callee == nil {
				return true
			}
			if loop, via := c.findEndlessLoopIn(callee); loop != nil {
				found, where = loop, via
				return false
			}
		}
		return true
	})
	return found, where
}

// loopHasExit reports whether an unconditional for loop has a reachable
// exit: return/panic anywhere in its body, or a break that targets this
// loop (unlabeled and not nested in an inner breakable statement, or
// labeled with this loop's label).
func loopHasExit(loop *ast.ForStmt) bool {
	// Labeled breaks are matched permissively: a labeled break exits
	// *some* enclosing loop, and if that loop is an outer one, this
	// loop's iteration ends with it anyway.
	exit := false
	var walk func(n ast.Node, breakTargetsLoop bool)
	walk = func(n ast.Node, breakTargetsLoop bool) {
		if n == nil || exit {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if exit {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				// Inner breakable statement: unlabeled breaks inside it
				// target it, not our loop.
				walk(m.Body, false)
				return false
			case *ast.RangeStmt:
				walk(m.Body, false)
				return false
			case *ast.SwitchStmt:
				if m.Init != nil {
					walk(m.Init, breakTargetsLoop)
				}
				walk(m.Body, false)
				return false
			case *ast.TypeSwitchStmt:
				walk(m.Body, false)
				return false
			case *ast.SelectStmt:
				walk(m.Body, false)
				return false
			case *ast.ReturnStmt:
				exit = true
				return false
			case *ast.BranchStmt:
				switch m.Tok {
				case token.BREAK:
					if breakTargetsLoop || m.Label != nil {
						exit = true
						return false
					}
				case token.GOTO:
					// A goto can leave the loop; be permissive.
					exit = true
					return false
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok && id.Name == "panic" {
					exit = true
					return false
				}
			}
			return true
		})
	}
	walk(loop.Body, true)
	return exit
}

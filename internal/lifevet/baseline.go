package lifevet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Baseline pins the findings a repository has accepted: each entry is a
// (check, file, message) class that passes the gate without an inline
// directive. The ratchet only turns one way — a finding not pinned here
// fails the run, and a pinned finding that no longer occurs fails as
// stale (StaleBaselineCheck), so the file can shrink but never silently
// grow or rot.
//
// Entries match on the check name, the module-relative file path
// (forward slashes), and the exact diagnostic message — but not line or
// column, so unrelated edits that shift a pinned finding around its
// file do not churn the baseline. The corollary is that an entry pins a
// finding *class* within one file: a second identical diagnostic in the
// same file rides the same entry. Findings that deserve per-site
// scrutiny belong in //lifevet:allow directives, which are positional;
// the baseline is for bounded-by-construction sites where the class is
// the decision.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Check string `json:"check"`
	// File is the module-relative path, forward slashes.
	File    string `json:"file"`
	Message string `json:"message"`
	// Why records the acceptance rationale; it is documentation only and
	// never matched against.
	Why string `json:"why,omitempty"`
}

// StaleBaselineCheck names the meta-check reporting baseline entries
// that matched no diagnostic. Like stale directives, a stale baseline
// entry fails the run: either the finding is gone (delete the entry)
// or the entry never matched (fix it).
const StaleBaselineCheck = "stale-baseline"

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lifevet: parsing baseline %s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline writes b, entries sorted for stable diffs.
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline removes diagnostics pinned by b from res (counting them
// in res.Baselined) and appends a StaleBaselineCheck diagnostic for
// every entry that matched nothing. Meta-check diagnostics
// (stale-directive, stale-baseline) are never baselined — the
// bookkeeping itself cannot be grandfathered.
func ApplyBaseline(res *Result, b *Baseline, moduleDir string) {
	absDir, err := filepath.Abs(moduleDir)
	if err != nil {
		absDir = moduleDir
	}
	matched := make([]bool, len(b.Findings))
	kept := res.Diagnostics[:0]
	for _, d := range res.Diagnostics {
		if d.Check == StaleDirectiveCheck || d.Check == StaleBaselineCheck {
			kept = append(kept, d)
			continue
		}
		rel := baselineRel(absDir, d.File)
		hit := false
		for i, e := range b.Findings {
			if e.Check == d.Check && e.File == rel && e.Message == d.Message {
				matched[i] = true
				hit = true
				break
			}
		}
		if hit {
			res.Baselined++
		} else {
			kept = append(kept, d)
		}
	}
	for i, e := range b.Findings {
		if !matched[i] {
			kept = append(kept, Diagnostic{
				Check: StaleBaselineCheck,
				File:  e.File, Line: 0, Col: 0,
				Message: fmt.Sprintf("baseline pins a %s finding (%q) that no longer occurs — delete the entry so the ratchet stays tight", e.Check, e.Message),
			})
		}
	}
	res.Diagnostics = kept
	sortDiagnostics(res.Diagnostics)
}

// BaselineFrom builds a baseline pinning every current non-meta
// diagnostic, deduplicated by (check, file, message).
func BaselineFrom(res Result, moduleDir string) *Baseline {
	absDir, err := filepath.Abs(moduleDir)
	if err != nil {
		absDir = moduleDir
	}
	b := &Baseline{Findings: []BaselineEntry{}}
	seen := make(map[BaselineEntry]bool)
	for _, d := range res.Diagnostics {
		if d.Check == StaleDirectiveCheck || d.Check == StaleBaselineCheck {
			continue
		}
		e := BaselineEntry{Check: d.Check, File: baselineRel(absDir, d.File), Message: d.Message}
		if seen[e] {
			continue
		}
		seen[e] = true
		b.Findings = append(b.Findings, e)
	}
	return b
}

// baselineRel converts an absolute diagnostic path to the module-relative
// slash form the baseline stores; paths outside the module stay as-is.
func baselineRel(absDir, file string) string {
	rel, err := filepath.Rel(absDir, file)
	if err != nil || rel == "" || rel[0] == '.' {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}

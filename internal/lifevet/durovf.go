package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerDurovf hunts the PR 4 bug class: duration and integer
// arithmetic that can silently overflow or truncate. time.Duration is
// int64 nanoseconds — ~292 years — which feels unoverflowable until a
// caller-controlled count is scaled up (`time.Duration(millis) *
// time.Millisecond` flips negative past ~2.9 million years of millis,
// which is exactly nine digits more than a JSON client can type), or a
// float seconds value is converted after a division by a tiny rate.
// Three patterns are flagged, module-wide:
//
//   - scale-up multiplication: `time.Duration(x) * unit` (either
//     operand order) where x is not a constant — the conversion launders
//     an unbounded integer into a Duration and the multiply overflows
//     silently. Compare and clamp in the scalar domain first. x of the
//     form `expr % const` or `expr & const` is provably bounded and
//     exempt.
//   - float conversion of a product: `time.Duration(f)` where f is a
//     non-constant floating multiplication or division — the classic
//     `seconds * float64(time.Second)` idiom; values past 2^63 convert
//     to an implementation-defined garbage int64. Clamp the float
//     first (the tokenBucket.wait pattern).
//   - narrowing conversion of arithmetic: `int32(e)`/`uint32(e)`/...
//     where e is a non-constant arithmetic expression (+ - * << /) of a
//     strictly wider integer type — the truncation keeps the low bits
//     and drops the sign. Converting a plain variable or len() is not
//     flagged (bounds are usually structural); arithmetic is where
//     silent wraparound hides.
//
// The check is flow-sensitive about the fix idiom: a value that is
// clamped before the conversion is exempt. Two clamp shapes are
// recognized, both scanning the enclosing function body for a
// dominating if-statement over the same variable:
//
//   - saturating assign: `if x > max { x = max }` before
//     `time.Duration(x) * unit` — the post-PR-4 gateway shape.
//   - guard return: `if !(sec < max) { return ... }` before
//     `time.Duration(sec * float64(time.Second))` — the
//     tokenBucket.wait shape.
//
// Sites that are provably bounded by construction (trace generators,
// paper-figure math over fixed inputs) are pinned in the findings
// baseline rather than suppressed inline — see lifevet-baseline.json.
var AnalyzerDurovf = &Analyzer{
	Name: "durovf",
	Doc:  "duration/integer arithmetic must not silently overflow or truncate",
	Run:  runDurovf,
}

func runDurovf(m *Module, r *Reporter) {
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			// Walk per function so each check can consult the enclosing
			// body for dominating clamps.
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				durovfBody(pkg, fd.Body, r)
			}
		}
	}
}

// durovfBody runs the three overflow checks over one function body.
// FuncLit bodies are checked against the literal's own body (a clamp
// in the enclosing function does not dominate the literal's later
// executions).
func durovfBody(pkg *Package, body *ast.BlockStmt, r *Reporter) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				durovfBody(pkg, n.Body, r)
				return false
			}
		case *ast.BinaryExpr:
			checkDurationMul(pkg, body, n, r)
		case *ast.CallExpr:
			checkDurationFloatConv(pkg, body, n, r)
			checkNarrowingConv(pkg, n, r)
		}
		return true
	})
}

// isDurationType reports whether t is time.Duration.
func isDurationType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Duration"
}

// isConst reports whether e has a compile-time constant value.
func isConst(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// durationConvOperand matches `time.Duration(x)` and returns x.
func durationConvOperand(pkg *Package, e ast.Expr) (ast.Expr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isDurationType(tv.Type) {
		return nil, false
	}
	return call.Args[0], true
}

// boundedByMask reports expressions of the form `x % c` or `x & c`
// (constant c): their value is provably bounded, so scaling them up
// cannot overflow for any sane unit.
func boundedByMask(pkg *Package, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op != token.REM && be.Op != token.AND {
		return false
	}
	return isConst(pkg, be.Y)
}

// clampVars returns the variables whose clamping would bound e: e
// itself when it is a plain variable, or every variable operand of a
// one-level arithmetic expression (`sec * float64(time.Second)` is
// bounded when `sec` is).
func clampVars(pkg *Package, e ast.Expr) []*types.Var {
	e = ast.Unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok {
		return append(clampVars(pkg, be.X), clampVars(pkg, be.Y)...)
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			return []*types.Var{v}
		}
	}
	return nil
}

// clampedBefore reports whether variable v is clamped by an
// if-statement lexically before pos in body: a condition comparing v
// (with < <= > >=, possibly under !) whose body either assigns v (the
// saturating-assign shape) or returns (the guard-return shape). The
// lexical-order test is a pragmatic stand-in for dominance; the clamp
// idioms this is built for put the guard immediately above the
// conversion.
func clampedBefore(pkg *Package, body *ast.BlockStmt, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return !found
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !condCompares(pkg, ifs.Cond, v) {
			return true
		}
		for _, s := range ifs.Body.List {
			switch s := s.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if pkg.Info.Uses[id] == v || pkg.Info.Defs[id] == v {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// condCompares reports whether cond contains an ordering comparison
// (< <= > >=) with v as an operand, looking through ! and && / ||.
func condCompares(pkg *Package, cond ast.Expr, v *types.Var) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.NOT && condCompares(pkg, e.X, v)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			return condCompares(pkg, e.X, v) || condCompares(pkg, e.Y, v)
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{e.X, e.Y} {
				if id, ok := ast.Unparen(side).(*ast.Ident); ok && pkg.Info.Uses[id] == v {
					return true
				}
			}
		}
	}
	return false
}

// clamped reports whether every clamp-relevant variable feeding e is
// bounded by a dominating clamp; expressions with no variable operands
// are not clamped (they carry their own arithmetic).
func clamped(pkg *Package, body *ast.BlockStmt, e ast.Expr, pos token.Pos) bool {
	vars := clampVars(pkg, e)
	if len(vars) == 0 {
		return false
	}
	for _, v := range vars {
		if clampedBefore(pkg, body, v, pos) {
			return true
		}
	}
	return false
}

// checkDurationMul flags `time.Duration(x) * y` scale-ups.
func checkDurationMul(pkg *Package, body *ast.BlockStmt, be *ast.BinaryExpr, r *Reporter) {
	if be.Op != token.MUL {
		return
	}
	tv, ok := pkg.Info.Types[be]
	if !ok || !isDurationType(tv.Type) || tv.Value != nil {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		x, isConv := durationConvOperand(pkg, side)
		if !isConv || isConst(pkg, x) || boundedByMask(pkg, x) {
			continue
		}
		if clamped(pkg, body, x, be.Pos()) {
			continue
		}
		r.Reportf(be.Pos(), "time.Duration(...) * unit can overflow int64 nanoseconds when the converted value is unbounded; compare and clamp in the scalar domain before converting (the Retry-After overflow bug class)")
		return
	}
}

// checkDurationFloatConv flags `time.Duration(f)` where f is float
// arithmetic.
func checkDurationFloatConv(pkg *Package, body *ast.BlockStmt, call *ast.CallExpr, r *Reporter) {
	x, ok := durationConvOperand(pkg, call)
	if !ok || isConst(pkg, x) {
		return
	}
	tv, ok := pkg.Info.Types[x]
	if !ok {
		return
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	be, ok := ast.Unparen(x).(*ast.BinaryExpr)
	if !ok || (be.Op != token.MUL && be.Op != token.QUO) {
		return
	}
	if clamped(pkg, body, x, call.Pos()) {
		return
	}
	r.Reportf(call.Pos(), "time.Duration of a float product/quotient: values past 2^63 ns convert to garbage (negative or clamped, platform-defined); bound the float before converting (clamp like tokenBucket.wait)")
}

// narrowTargets maps narrowing conversion targets to their bit width.
var narrowTargets = map[string]int{
	"int8": 8, "int16": 16, "int32": 32,
	"uint8": 8, "uint16": 16, "uint32": 32,
}

// widerSources have >= 64 value bits (int/uint are 64 on every
// platform this module targets; treating them as wide keeps the check
// portable-conservative).
var widerSources = map[string]bool{
	"int": true, "int64": true, "uint": true, "uint64": true, "uintptr": true,
}

// checkNarrowingConv flags `int32(e)` (and friends) where e is
// non-constant arithmetic of a wider integer type.
func checkNarrowingConv(pkg *Package, call *ast.CallExpr, r *Reporter) {
	if len(call.Args) != 1 {
		return
	}
	tvFun, ok := pkg.Info.Types[call.Fun]
	if !ok || !tvFun.IsType() {
		return
	}
	target, ok := tvFun.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	bits, narrow := narrowTargets[target.Name()]
	if !narrow {
		return
	}
	x := ast.Unparen(call.Args[0])
	if isConst(pkg, x) {
		return
	}
	be, ok := x.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.SHL, token.QUO:
	default:
		return
	}
	if boundedByMask(pkg, x) {
		return
	}
	tv, ok := pkg.Info.Types[x]
	if !ok {
		return
	}
	src, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || src.Info()&types.IsInteger == 0 || !widerSources[src.Name()] {
		return
	}
	r.Reportf(call.Pos(), "%s(...) truncates a %s arithmetic result to %d bits, silently keeping the low bits; range-check the value (or mask explicitly) before narrowing", target.Name(), src.Name(), bits)
}

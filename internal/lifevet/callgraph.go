package lifevet

import (
	"go/ast"
	"go/types"
	"strings"
)

// funcIndex maps every function and method declared in the module to
// its body, and resolves static call sites — the shared machinery under
// the hotpath-alloc reachability gate and lockdiscipline's transitive
// I/O summaries. Interface-method calls have no static callee and
// resolve to nil; both analyzers document that boundary.
type funcIndex struct {
	mod   *Module
	decls map[*types.Func]*funcDecl
}

// funcDecl is one declared function with the package it lives in.
type funcDecl struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// buildFuncIndex indexes every function declaration in the module.
func buildFuncIndex(m *Module) *funcIndex {
	ix := &funcIndex{mod: m, decls: make(map[*types.Func]*funcDecl)}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ix.decls[obj] = &funcDecl{fn: obj, decl: fd, pkg: pkg}
			}
		}
	}
	return ix
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: package-level functions, methods on concrete
// receiver types, and method expressions. Calls through interfaces,
// function values, and builtins return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A method call whose receiver is an interface dispatches
			// dynamically: no static callee.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// origin returns the generic origin of fn so instantiations share one
// call-graph node.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// funcDisplay renders a function for diagnostics: pkg.Func or
// pkg.(*Recv).Method, with the package shortened to its import-path
// tail.
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if p := fn.Pkg(); p != nil {
		pkg = p.Path()
		if i := strings.LastIndex(pkg, "/"); i >= 0 {
			pkg = pkg[i+1:]
		}
		pkg += "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		name := ""
		if ptr, ok := recv.(*types.Pointer); ok {
			name = "(*" + namedName(ptr.Elem()) + ")"
		} else {
			name = namedName(recv)
		}
		return pkg + name + "." + fn.Name()
	}
	return pkg + fn.Name()
}

func namedName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// isPkgFunc reports whether fn is a package-level function (or method)
// of the package with exactly the given import path, with one of the
// given names. An empty name list matches any name.
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// exprPath renders a pure identifier/field-select chain ("s.obs",
// "t.mu") as a stable string, or "" when the expression is anything
// more dynamic (calls, indexes, dereferences).
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

package lifevet

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxflow enforces context discipline on the serving path. Two
// rules:
//
//  1. Serving-path code must not mint a fresh root context: a
//     context.Background() (or TODO()) call inside internal/server,
//     internal/federation, or internal/core silently discards the
//     caller's deadline and cancellation — the query keeps running
//     after the client gave up. Minting is allowed only as the direct
//     parent argument of WithTimeout/WithDeadline/WithCancel (a root
//     with an immediately attached bound is a deliberate lifetime, not
//     a dropped one).
//
//  2. A function that accepts a context.Context must consult it: a
//     named ctx parameter that is never used in a body that performs
//     blocking work (channel traffic, I/O, or calls that block) means
//     the deadline dies at this frame while the function waits.
//     Renaming the parameter `_` is the explicit opt-out and is not
//     flagged — the signature then documents that the context is
//     ignored.
//
// Both rules are syntactic over the typed AST plus the transitive
// blocking summary; they do not trace a context value through locals.
var AnalyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "serving-path code must not mint root contexts or drop a ctx parameter before blocking",
	Run:  runCtxflow,
}

// ctxflowScopes are the serving-path packages: everything between the
// gateway's request context and the engine's cancellation machinery.
var ctxflowScopes = []string{"internal/server", "internal/federation", "internal/core"}

func runCtxflow(m *Module, r *Reporter) {
	ix := buildFuncIndex(m)
	io := buildIOSummary(ix)
	for _, pkg := range m.PackagesInScope(ctxflowScopes...) {
		for _, f := range pkg.Files {
			checkRootContexts(pkg, f, r)
		}
	}
	for fn, d := range ix.decls {
		if !PathInScope(d.pkg.ImportPath, ctxflowScopes...) {
			continue
		}
		checkDroppedCtx(d, fn, io, r)
	}
}

// checkRootContexts flags context.Background()/TODO() calls except when
// immediately bounded by WithTimeout/WithDeadline/WithCancel.
func checkRootContexts(pkg *Package, f *ast.File, r *Reporter) {
	// Collect the root-context calls that appear as the parent argument
	// of a bounding constructor; those are exempt.
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if !isPkgFunc(fn, "context", "WithTimeout", "WithDeadline", "WithCancel") {
			return true
		}
		if parent, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
			exempt[parent] = true
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(pkg.Info, call)
		if !isPkgFunc(fn, "context", "Background", "TODO") {
			return true
		}
		if exempt[call] {
			return true
		}
		r.Reportf(call.Pos(), "context.%s mints a root context on the serving path, discarding any caller deadline or cancellation; thread the caller's ctx through (or bound the root immediately with context.WithTimeout/WithCancel)", fn.Name())
		return true
	})
}

// checkDroppedCtx flags a named, unused context parameter on a function
// whose body blocks.
func checkDroppedCtx(d *funcDecl, fn *types.Func, io *ioSummary, r *Reporter) {
	params := contextParams(d.pkg, d.decl)
	if len(params) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := d.pkg.Info.Uses[id].(*types.Var); ok {
			used[v] = true
		}
		return true
	})
	for _, p := range params {
		if used[p] {
			continue
		}
		op, blocks := blockingOpIn(d, io)
		if !blocks {
			continue
		}
		r.Reportf(d.decl.Name.Pos(), "%s accepts ctx but never consults it, and its body blocks (%s); the caller's deadline dies at this frame — plumb ctx into the blocking call or rename the parameter _ to document the drop", funcDisplay(fn), op)
	}
}

// blockingOpIn reports a sample blocking operation in d's body: a
// direct I/O call, channel traffic, or a call whose transitive summary
// blocks.
func blockingOpIn(d *funcDecl, io *ioSummary) (string, bool) {
	desc := ""
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			desc = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				desc = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc = "blocking select"
			}
		case *ast.CallExpr:
			if s, ok := directCallIO(d.pkg.Info, n); ok {
				desc = s
				return false
			}
			if callee := origin(staticCallee(d.pkg.Info, n)); callee != nil {
				if op, ok := io.does[callee]; ok {
					desc = op.desc + " via " + funcDisplay(callee)
					return false
				}
			}
		}
		return desc == ""
	})
	return desc, desc != ""
}

package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerErrdrop enforces error propagation in the packages that own
// durable state and remote traffic: internal/segment, the disk cache
// tier, and the federation transport. An error from a checksum, I/O,
// Close, or any other error-returning call there must be propagated,
// inspected, or logged — never discarded with a blank assignment
// (`_ = f.Close()`) or a bare call statement. A swallowed write error
// in these packages is how a fail-stop store silently serves a torn
// segment; a deliberately best-effort site (cleanup of a temp file on
// an already-failing path) records the decision with a
// `//lifevet:allow errdrop -- why` directive.
//
// Boundaries — three exemptions keep the check about *silent* drops,
// not about cleanup hygiene on paths that already fail loudly:
//
//   - `defer f.Close()` and other deferred discards are exempt —
//     close-on-error paths are fdleak's contract, and the deferred
//     best-effort close on read paths is the package idiom.
//   - a discard followed (in the same statement list) by a `return`
//     that propagates a non-nil error is exempt: the function is
//     already failing, and `f.Close(); os.Remove(tmp); return err` is
//     cleanup while the real error travels.
//   - a discard inside a block guarded by an `err != nil` condition is
//     exempt for the same reason — the failure is already being
//     handled; the discard is best-effort teardown.
//
// Calls through interfaces have no static callee and are not flagged.
// Writers that structurally cannot fail (bytes.Buffer,
// strings.Builder) are exempt.
var AnalyzerErrdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "errors from I/O/checksum/Close calls in storage and federation packages must not be silently discarded",
	Run:  runErrdrop,
}

// errdropScopes are the fail-stop packages: durable segments, the disk
// cache tier, and the federation transport.
var errdropScopes = []string{"internal/segment", "internal/cache/disktier", "internal/federation"}

// neverFailRecv are receiver types whose error results are vestigial
// (interface-satisfaction errors that are documented to always be nil).
var neverFailRecv = map[string]bool{
	"bytes.Buffer": true, "strings.Builder": true,
}

func runErrdrop(m *Module, r *Reporter) {
	for _, pkg := range m.PackagesInScope(errdropScopes...) {
		for _, f := range pkg.Files {
			w := &errdropWalker{pkg: pkg, r: r}
			// Walk every function body (declarations and literals) as a
			// statement tree so each discard sees its surrounding control
			// flow: the statements after it in its block (error-propagating
			// return?) and the guards above it (err != nil block?).
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					// A deferred FuncLit is the cleanup idiom end to end;
					// nothing under a defer is a silent drop.
					return false
				case *ast.FuncDecl:
					if n.Body != nil {
						w.walkStmts(n.Body.List, false)
					}
					return true // keep descending: FuncLits nest inside
				case *ast.FuncLit:
					w.walkStmts(n.Body.List, false)
					return true
				}
				return true
			})
		}
	}
}

// errdropWalker carries the flow context for one file: whether the
// current statement is dominated by a failing-path guard.
type errdropWalker struct {
	pkg *Package
	r   *Reporter
}

// walkStmts walks a statement list; failing is true when the list is
// dominated by an err != nil guard.
func (w *errdropWalker) walkStmts(stmts []ast.Stmt, failing bool) {
	for i, s := range stmts {
		w.walkStmt(s, stmts[i+1:], failing)
	}
}

// walkStmt dispatches one statement. rest is the tail of the enclosing
// block after s, used for the error-propagating-return exemption.
func (w *errdropWalker) walkStmt(s ast.Stmt, rest []ast.Stmt, failing bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if !failing && !w.propagatesError(rest) {
				checkDroppedCall(w.pkg, call, "call statement discards", w.r)
			}
		}
	case *ast.AssignStmt:
		if !failing && !w.propagatesError(rest) {
			checkBlankErrAssign(w.pkg, s, w.r)
		}
	case *ast.DeferStmt:
		// Deferred discards are the accepted idiom (fdleak owns the
		// close-on-every-path contract).
	case *ast.BlockStmt:
		w.walkStmts(s.List, failing)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, nil, failing)
		}
		w.walkStmts(s.Body.List, failing || w.errGuard(s.Cond))
		if s.Else != nil {
			// The else arm of an err != nil guard is the success path.
			w.walkStmt(s.Else, nil, failing)
		}
	case *ast.ForStmt:
		w.walkStmts(s.Body.List, failing)
	case *ast.RangeStmt:
		w.walkStmts(s.Body.List, failing)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, failing)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, failing)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, failing)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, rest, failing)
	case *ast.GoStmt:
		// A `go fn()` launch returns nothing itself; the FuncLit body (if
		// any) is walked by the file-level Inspect.
	}
}

// propagatesError reports whether any statement in rest (the remainder
// of the discard's own block) returns a non-nil error value — the
// signature of best-effort cleanup on an already-failing path.
func (w *errdropWalker) propagatesError(rest []ast.Stmt) bool {
	for _, s := range rest {
		ret, ok := s.(*ast.ReturnStmt)
		if !ok {
			continue
		}
		for _, res := range ret.Results {
			res = ast.Unparen(res)
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			tv, ok := w.pkg.Info.Types[res]
			if ok && tv.Type != nil && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// errGuard reports conditions that establish "we are already failing":
// a comparison of an error-typed expression against nil with !=, or a
// boolean combination containing one.
func (w *errdropWalker) errGuard(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LAND, token.LOR:
		return w.errGuard(be.X) || w.errGuard(be.Y)
	case token.NEQ:
		for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			if id, ok := ast.Unparen(pair[1]).(*ast.Ident); !ok || id.Name != "nil" {
				continue
			}
			if tv, ok := w.pkg.Info.Types[ast.Unparen(pair[0])]; ok && tv.Type != nil && isErrorType(tv.Type) {
				return true
			}
		}
	}
	return false
}

// checkDroppedCall flags a statement-position call that returns an
// error among its results.
func checkDroppedCall(pkg *Package, call *ast.CallExpr, how string, r *Reporter) {
	fn := staticCallee(pkg.Info, call)
	if fn == nil || isNeverFail(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if !lastResultIsError(sig) {
		return
	}
	r.Reportf(call.Pos(), "%s the error from %s; in a fail-stop storage/transport package every dropped error is a silent corruption path — propagate it, log it, or record the decision with //lifevet:allow errdrop", how, funcDisplay(fn))
}

// checkBlankErrAssign flags assignments that send an error result to _.
func checkBlankErrAssign(pkg *Package, as *ast.AssignStmt, r *Reporter) {
	// Single call on the RHS, possibly multi-value: `_ = f()`,
	// `n, _ := f()`.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := staticCallee(pkg.Info, call)
	if fn == nil || isNeverFail(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results() == nil {
		return
	}
	for i := 0; i < sig.Results().Len() && i < len(as.Lhs); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		r.Reportf(as.Pos(), "blank assignment discards the error from %s; in a fail-stop storage/transport package every dropped error is a silent corruption path — propagate it, log it, or record the decision with //lifevet:allow errdrop", funcDisplay(fn))
		return
	}
}

// lastResultIsError reports whether any result of sig is an error (the
// convention puts it last, but checking all positions is free).
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res == nil {
		return false
	}
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// isNeverFail reports methods on writer types whose error results are
// always nil by documented contract.
func isNeverFail(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return neverFailRecv[named.Obj().Pkg().Name()+"."+named.Obj().Name()]
}

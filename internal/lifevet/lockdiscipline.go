package lifevet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerLockDiscipline flags blocking operations — channel traffic,
// network or disk I/O, sleeps — performed while holding a sync.Mutex or
// sync.RWMutex acquired in the same function. A lock that serializes
// hot-path readers must bound its hold time by memory operations; one
// fsync under the tier mutex and every concurrent Get stalls behind the
// disk. Sites that are deliberately synchronous (crash-safety writes
// that must be ordered with the map update) carry a
// //lifevet:allow lockdiscipline directive recording the decision.
//
// The check is per-function: it tracks mu.Lock()/mu.Unlock() pairs by
// receiver path, treats `defer mu.Unlock()` as held-to-end, and
// consults a transitive I/O summary of the module call graph so a
// helper that hides the write (a persistLocked calling os.WriteFile)
// still flags its locked caller. Non-blocking channel ops (select with
// a default clause) are exempt, as are operations inside function
// literals (they run in their own context, usually after the lock is
// gone).
var AnalyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no channel, network, or disk I/O while holding a mutex acquired in the same function",
	Run:  runLockDiscipline,
}

// osBlockingFuncs are os-package entry points that hit the filesystem.
var osBlockingFuncs = map[string]bool{
	"ReadFile": true, "WriteFile": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Open": true, "OpenFile": true,
	"Create": true, "CreateTemp": true, "MkdirAll": true, "Mkdir": true,
	"ReadDir": true, "Stat": true, "Truncate": true,
}

// osFileBlockingMethods are (*os.File) methods that hit the filesystem.
// Close is deliberately absent: closing a descriptor under a lock is
// cheap, and flagging it would make fd hygiene fight lock hygiene.
var osFileBlockingMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Sync": true, "Seek": true,
}

// ioOp describes why an operation counts as blocking, for diagnostics.
type ioOp struct {
	pos  token.Pos
	desc string
}

// directCallIO classifies a call as a direct blocking operation.
func directCallIO(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(info, call)
	if fn == nil {
		return "", false
	}
	switch {
	case isPkgFunc(fn, "time", "Sleep"):
		return "time.Sleep", true
	case isPkgFunc(fn, "os") && osBlockingFuncs[fn.Name()]:
		return "os." + fn.Name(), true
	case isOSFileMethod(fn) && osFileBlockingMethods[fn.Name()]:
		return "(*os.File)." + fn.Name(), true
	case fn.Pkg() != nil && fn.Pkg().Path() == "net":
		return "net." + fn.Name(), true
	}
	return "", false
}

func isOSFileMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// selectHasDefault reports whether a select statement has a default
// clause, making its channel operations non-blocking.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// directIOOps scans one function body for operations that block
// directly (not through calls).
func directIOOps(d *funcDecl) []ioOp {
	info := d.pkg.Info
	var ops []ioOp
	var visit func(n ast.Node, nonBlocking bool)
	visit = func(n ast.Node, nonBlocking bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := selectHasDefault(m)
				if !hasDefault {
					ops = append(ops, ioOp{m.Pos(), "blocking select"})
				}
				for _, c := range m.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok {
						continue
					}
					visit(cc.Comm, hasDefault)
					for _, s := range cc.Body {
						visit(s, false)
					}
				}
				return false
			case *ast.SendStmt:
				if !nonBlocking {
					ops = append(ops, ioOp{m.Pos(), "channel send"})
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !nonBlocking {
					ops = append(ops, ioOp{m.Pos(), "channel receive"})
				}
			case *ast.CallExpr:
				if desc, ok := directCallIO(info, m); ok {
					ops = append(ops, ioOp{m.Pos(), desc})
				}
			}
			return true
		})
	}
	visit(d.decl.Body, false)
	return ops
}

// ioSummary records, for every module function that blocks (directly
// or through static calls), a sample operation for diagnostics. Note
// internal/disk is a virtual-time cost model (accounting only, no real
// I/O), so it contributes nothing here; the module's real disk I/O is
// the os package traffic in internal/segment and the disk cache tier.
type ioSummary struct {
	does map[*types.Func]ioOp
}

func buildIOSummary(ix *funcIndex) *ioSummary {
	s := &ioSummary{does: make(map[*types.Func]ioOp)}
	for fn, d := range ix.decls {
		if ops := directIOOps(d); len(ops) > 0 {
			s.does[fn] = ops[0]
		}
	}
	// Propagate caller<-callee to a fixpoint (the graph is small).
	for changed := true; changed; {
		changed = false
		for fn, d := range ix.decls {
			if _, done := s.does[fn]; done {
				continue
			}
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if _, done := s.does[fn]; done {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := origin(staticCallee(d.pkg.Info, call))
				if callee == nil {
					return true
				}
				if op, ok := s.does[callee]; ok {
					s.does[fn] = ioOp{call.Pos(), op.desc + " (via " + funcDisplay(callee) + ")"}
					changed = true
					return false
				}
				return true
			})
		}
	}
	return s
}

// mutexMethod classifies a call as Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver path.
func mutexMethod(info *types.Info, call *ast.CallExpr) (path, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", ""
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", ""
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", ""
	}
	p := exprPath(sel.X)
	if p == "" {
		return "", ""
	}
	return p, sel.Sel.Name
}

func runLockDiscipline(m *Module, r *Reporter) {
	ix := buildFuncIndex(m)
	io := buildIOSummary(ix)
	for _, d := range ix.decls {
		w := &lockWalker{d: d, io: io, r: r, du: buildDefUse(d.pkg, d.decl.Body)}
		w.walkStmts(d.decl.Body.List, map[string]token.Pos{})
	}
}

// freshChanSend reports whether a send provably cannot block: the
// channel resolves (through the def-use core) to a `make(chan T, n)`
// with constant n >= 1 created in this function, at most n sends on
// that variable appear lexically at or before this one, and the
// channel has not been passed to another function as a call argument
// before this send (a second sender elsewhere could fill the buffer).
// Sends and escapes lexically after this send cannot have filled the
// buffer yet — a result channel handed to a merge goroutine launched
// later is still fresh here. Returning the channel is fine — callers
// receive.
func (w *lockWalker) freshChanSend(send *ast.SendStmt) bool {
	capN, ok := w.du.freshChanCap(send.Chan)
	if !ok {
		return false
	}
	v := w.du.singleVar(send.Chan)
	if v == nil {
		return false
	}
	sends := int64(0)
	passed := false
	ast.Inspect(w.d.decl.Body, func(n ast.Node) bool {
		if n != nil && n.Pos() > send.Pos() {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if w.du.singleVar(n.Chan) == v {
				sends++
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if w.du.singleVar(arg) == v {
					passed = true
				}
			}
		}
		return true
	})
	return sends <= capN && !passed
}

// lockWalker walks one function's statements in execution order,
// tracking which mutexes are held. Sequential statements share one
// held-set (a Lock in statement 3 is held in statement 4); branch
// bodies get copies.
type lockWalker struct {
	d  *funcDecl
	io *ioSummary
	r  *Reporter
	du *defUse
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held, false)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held, false)
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.scan(s.X, held, false)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scan(s.Tag, held, false)
		for _, c := range s.Body.List {
			if cl, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cl, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cl.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := selectHasDefault(s)
		if !hasDefault && len(held) > 0 {
			w.report(s.Pos(), "blocking select", held)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				w.scan(cc.Comm, held, hasDefault)
			}
			w.walkStmts(cc.Body, copyHeld(held))
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() is the canonical held-to-end pattern: the
		// lock stays held, so nothing changes here. The deferred call
		// itself runs after the body; its arguments are scanned for
		// blocking evaluation.
		for _, a := range s.Call.Args {
			w.scan(a, held, false)
		}
	case *ast.GoStmt:
		// The goroutine runs elsewhere; only argument evaluation
		// happens under the lock.
		for _, a := range s.Call.Args {
			w.scan(a, held, false)
		}
	default:
		w.scan(s, held, false)
	}
}

// scan inspects an expression or simple statement: mutex calls update
// held, blocking operations are reported when held is non-empty.
func (w *lockWalker) scan(n ast.Node, held map[string]token.Pos, nonBlocking bool) {
	if n == nil {
		return
	}
	info := w.d.pkg.Info
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if path, method := mutexMethod(info, m); path != "" {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held[path] = m.Pos()
				case "Unlock", "RUnlock":
					delete(held, path)
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			if desc, ok := directCallIO(info, m); ok {
				w.report(m.Pos(), desc, held)
				return true
			}
			fn := origin(staticCallee(info, m))
			if fn == nil {
				return true
			}
			if op, ok := w.io.does[fn]; ok {
				w.report(m.Pos(), op.desc+" via "+funcDisplay(fn), held)
			}
		case *ast.SendStmt:
			if !nonBlocking && len(held) > 0 && !w.freshChanSend(m) {
				w.report(m.Pos(), "channel send", held)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !nonBlocking && len(held) > 0 {
				w.report(m.Pos(), "channel receive", held)
			}
		}
		return true
	})
}

func (w *lockWalker) report(pos token.Pos, op string, held map[string]token.Pos) {
	paths := make([]string, 0, len(held))
	for p := range held {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	w.r.Reportf(pos, "%s while holding %s (locked in %s); blocking under a mutex turns every contending goroutine's lock wait into an I/O wait", op, paths[0], funcDisplay(w.d.fn))
}

func copyHeld(h map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

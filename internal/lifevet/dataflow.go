package lifevet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// dataflow.go is the SSA-lite def-use core under the v2 analyzers
// (lockorder, goroleak, ctxflow, durovf, errdrop) and the
// flow-sensitive refinements to the v1 set. It deliberately stops short
// of full SSA: the module's analyzers need exactly three facts —
//
//   - single-assignment resolution: which expression a local variable
//     provably holds (assigned exactly once, address never taken), so a
//     value threaded through a local still matches a syntactic pattern;
//   - global lock identity: a stable name for "the mutex field mu of
//     type Tier" that two different functions agree on, so acquisition
//     edges observed in different corners of the module compose into
//     one order graph;
//   - transitive per-function summaries over the static call graph
//     (locks a call may acquire, whether a body can block), reusing
//     funcIndex/staticCallee from callgraph.go.
//
// Everything flow-sensitive on top (held-sets, guard domination) stays
// in the analyzers; this file owns the value- and identity-level facts.

// defUse records, for one function body, how many times each local is
// assigned and the unique defining expression when there is exactly one.
// Address-taken locals are poisoned: a pointer can rewrite them behind
// the analyzer's back.
type defUse struct {
	pkg    *Package
	counts map[*types.Var]int
	rhs    map[*types.Var]ast.Expr
}

// buildDefUse scans body (including nested function literals: a closure
// can reassign captured locals) and indexes every definition.
func buildDefUse(pkg *Package, body ast.Node) *defUse {
	du := &defUse{pkg: pkg, counts: make(map[*types.Var]int), rhs: make(map[*types.Var]ast.Expr)}
	note := func(id *ast.Ident, rhs ast.Expr) {
		v := du.varOf(id)
		if v == nil {
			return
		}
		du.counts[v]++
		if du.counts[v] == 1 && rhs != nil {
			du.rhs[v] = rhs
		} else {
			delete(du.rhs, v)
		}
	}
	poison := func(id *ast.Ident) {
		if v := du.varOf(id); v != nil {
			du.counts[v] += 2
			delete(du.rhs, v)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				note(id, rhs)
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				note(id, rhs)
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				poison(id)
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					poison(id)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					poison(id)
				}
			}
		}
		return true
	})
	return du
}

func (du *defUse) varOf(id *ast.Ident) *types.Var {
	if v, ok := du.pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := du.pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// resolve follows e through single-assignment locals to the expression
// that defined it, bounded to avoid cycles. A non-ident or multiply
// assigned expression resolves to itself.
func (du *defUse) resolve(e ast.Expr) ast.Expr {
	for depth := 0; depth < 8; depth++ {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return e
		}
		v := du.varOf(id)
		if v == nil || du.counts[v] != 1 {
			return e
		}
		rhs, ok := du.rhs[v]
		if !ok {
			return e
		}
		e = rhs
	}
	return e
}

// singleVar returns the variable behind e when e is a plain local
// identifier, nil otherwise.
func (du *defUse) singleVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return du.varOf(id)
}

// freshChanCap reports whether e resolves to `make(chan T, n)` with a
// constant capacity n >= 1 created in this function — a channel whose
// first send provably cannot block as long as the function performs at
// most one send on it.
func (du *defUse) freshChanCap(e ast.Expr) (int64, bool) {
	call, ok := ast.Unparen(du.resolve(e)).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return 0, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return 0, false
	}
	if _, isBuiltin := du.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return 0, false
	}
	tv, ok := du.pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	n, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok || n < 1 {
		return 0, false
	}
	if tvr, ok := du.pkg.Info.Types[call]; !ok || !isChanType(tvr.Type) {
		return 0, false
	}
	return n, true
}

func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// lockClassOf names the mutex behind a Lock/Unlock receiver expression
// in module-global terms: "pkgtail.Type.field" for a mutex field
// (resolved through the named type of the enclosing struct, so t.mu and
// s.tier.mu in different functions agree), "pkgtail.var" for a
// package-level mutex variable. Function-local mutexes (and receivers
// the type checker cannot name) return "": they cannot participate in a
// cross-function order.
func lockClassOf(pkg *Package, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.SelectorExpr:
		tv, ok := pkg.Info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return pkgTail(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			if v, ok = pkg.Info.Defs[e].(*types.Var); !ok {
				return ""
			}
		}
		// Package-level variables have the package itself as parent scope.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return pkgTail(v.Pkg().Path()) + "." + v.Name()
		}
	}
	return ""
}

func pkgTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lockAcq is one lock acquisition a function may perform: the global
// class, where, and — when reached through a call — via whom.
type lockAcq struct {
	class string
	pos   token.Pos
	via   string // display name of the callee chain head, "" when direct
}

// lockSummary maps every module function to the set of lock classes it
// may acquire, directly or transitively through static calls. Function
// literals are excluded throughout: a closure typically runs on another
// goroutine (or after the enclosing locks are released), so charging its
// acquisitions to the enclosing function would fabricate edges.
type lockSummary struct {
	acquires map[*types.Func]map[string]lockAcq
}

// buildLockSummary computes the transitive may-acquire sets to a
// fixpoint over the static call graph.
func buildLockSummary(ix *funcIndex) *lockSummary {
	s := &lockSummary{acquires: make(map[*types.Func]map[string]lockAcq)}
	// Direct acquisitions.
	for fn, d := range ix.decls {
		set := make(map[string]lockAcq)
		inspectOutsideFuncLits(d.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			path, method := mutexMethod(d.pkg.Info, call)
			if path == "" {
				return
			}
			if method != "Lock" && method != "RLock" && method != "TryLock" && method != "TryRLock" {
				return
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if class := lockClassOf(d.pkg, sel.X); class != "" {
				if _, seen := set[class]; !seen {
					set[class] = lockAcq{class: class, pos: call.Pos()}
				}
			}
		})
		if len(set) > 0 {
			s.acquires[fn] = set
		}
	}
	// Propagate callee sets to callers until stable.
	for changed := true; changed; {
		changed = false
		for fn, d := range ix.decls {
			inspectOutsideFuncLits(d.decl.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := origin(staticCallee(d.pkg.Info, call))
				if callee == nil || callee == fn {
					return
				}
				for class, acq := range s.acquires[callee] {
					set := s.acquires[fn]
					if set == nil {
						set = make(map[string]lockAcq)
						s.acquires[fn] = set
					}
					if _, seen := set[class]; !seen {
						via := funcDisplay(callee)
						if acq.via != "" {
							via = funcDisplay(callee) + " -> " + acq.via
						}
						set[class] = lockAcq{class: class, pos: call.Pos(), via: via}
						changed = true
					}
				}
			})
		}
	}
	return s
}

// inspectOutsideFuncLits walks n, calling f on every node except those
// inside nested function literals.
func inspectOutsideFuncLits(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// contextParams returns the named context.Context parameters of a
// function declaration (blank ones excluded: `_ context.Context` is an
// explicit statement that the context is unused).
func contextParams(pkg *Package, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pkg.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

package lifevet

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// AnalyzerBoundedLabels enforces bounded cardinality on tenant-labeled
// metric families. Tenants are caller-controlled input: an unbounded
// {tenant} Vec lets one churny client grow the registry and every
// scrape without limit. Any metric.New*Vec call whose label list
// contains "tenant" must pass a VecOpts with MaxSeries set (the
// bounded-cardinality wrapper pattern of internal/server/obs.go, where
// idle tenants fold into the "_other" overflow series).
var AnalyzerBoundedLabels = &Analyzer{
	Name: "boundedlabels",
	Doc:  "tenant-labeled metric Vecs must set VecOpts.MaxSeries (bounded cardinality)",
	Run:  runBoundedLabels,
}

// vecConstructors maps the metric-registry Vec constructors to the
// argument index of their VecOpts parameter (the labels slice is always
// argument 2).
var vecConstructors = map[string]int{
	"NewCounterVec":   3,
	"NewGaugeVec":     3,
	"NewHistogramVec": 4,
}

func runBoundedLabels(m *Module, r *Reporter) {
	for _, pkg := range m.Packages {
		inits := singleInitializers(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil {
					return true
				}
				optsIdx, ok := vecConstructors[fn.Name()]
				if !ok || fn.Pkg() == nil || !PathInScope(fn.Pkg().Path(), "internal/metric") {
					return true
				}
				if len(call.Args) <= optsIdx {
					return true
				}
				labels, known := stringElems(pkg, inits, call.Args[2])
				if !known {
					return true // dynamic label list: out of this check's reach
				}
				hasTenant := false
				for _, l := range labels {
					if l == "tenant" {
						hasTenant = true
					}
				}
				if !hasTenant {
					return true
				}
				if !optsBounded(pkg, inits, call.Args[optsIdx]) {
					r.Reportf(call.Pos(), "%s with a \"tenant\" label must pass metric.VecOpts{MaxSeries: ...}: tenant names are caller-controlled, and an uncapped family lets tenant churn grow the registry and every scrape without bound", fn.Name())
				}
				return true
			})
		}
	}
}

// singleInitializers maps variables defined exactly once by a simple
// `x := expr` / `var x = expr` to that expression, so label and opts
// arguments passed through a local (the obs.go idiom) still resolve.
func singleInitializers(pkg *Package) map[*types.Var]ast.Expr {
	inits := make(map[*types.Var]ast.Expr)
	reassigned := make(map[*types.Var]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						if _, dup := inits[v]; dup {
							reassigned[v] = true
						}
						inits[v] = n.Rhs[i]
					} else if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
						reassigned[v] = true // plain assignment after definition
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
						inits[v] = n.Values[i]
					}
				}
			}
			return true
		})
	}
	for v := range reassigned {
		delete(inits, v)
	}
	return inits
}

// resolveExpr follows one level of single-assignment locals.
func resolveExpr(pkg *Package, inits map[*types.Var]ast.Expr, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if init, ok := inits[v]; ok {
				return ast.Unparen(init)
			}
		}
	}
	return e
}

// stringElems extracts the constant strings of a []string literal
// (possibly behind a single-assignment local). known is false when the
// expression cannot be proven to be a literal list.
func stringElems(pkg *Package, inits map[*types.Var]ast.Expr, e ast.Expr) (elems []string, known bool) {
	lit, ok := resolveExpr(pkg, inits, e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	for _, el := range lit.Elts {
		tv, ok := pkg.Info.Types[el]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return nil, false
		}
		elems = append(elems, constant.StringVal(tv.Value))
	}
	return elems, true
}

// optsBounded reports whether the VecOpts argument provably sets a
// nonzero MaxSeries. Unresolvable expressions count as unbounded: a
// tenant-labeled family must be *provably* capped.
func optsBounded(pkg *Package, inits map[*types.Var]ast.Expr, e ast.Expr) bool {
	lit, ok := resolveExpr(pkg, inits, e).(*ast.CompositeLit)
	if !ok {
		return false
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "MaxSeries" {
			continue
		}
		tv, ok := pkg.Info.Types[kv.Value]
		if !ok {
			return false
		}
		if tv.Value != nil {
			v, exact := constant.Int64Val(tv.Value)
			return exact && v > 0
		}
		return true // non-constant expression: explicitly set, assume intentional
	}
	return false
}

package lifevet

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerHotpathAlloc guards the zero-alloc service loop. The engine's
// steady state — step, the indexed LifeRaft pick, and trace visit
// accounting — must not allocate: TestStepServiceLoopZeroAlloc pins
// 0 allocs/op, and a single make/new/boxing site on that path turns
// every scheduling tick into GC pressure. This analyzer walks the
// static call graph from the service-loop roots and flags allocating
// constructs (make, new, composite-literal addresses, fmt calls,
// closures, goroutine launches) in any reachable module function.
//
// Pool-backed or cold-start allocations that are deliberate (pool-miss
// construction, panic messages on corruption) carry //lifevet:allow
// hotpath-alloc directives, so the allowlist is explicit and audited
// rather than implied.
var AnalyzerHotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "functions reachable from the service loop must not allocate",
	Run:  runHotpathAlloc,
}

// hotpathRoot identifies a service-loop entry point: a function with
// this name declared in a package whose import path has this suffix.
type hotpathRoot struct {
	pkgSuffix string
	name      string
}

var hotpathRoots = []hotpathRoot{
	{"internal/core", "step"},
	{"internal/core", "pickLifeRaftIndexed"},
	{"internal/trace", "ServiceVisit"},
}

func runHotpathAlloc(m *Module, r *Reporter) {
	ix := buildFuncIndex(m)

	// Seed the worklist with the declared roots.
	type rootedFunc struct {
		fn   *types.Func
		root string
	}
	var work []rootedFunc
	rootOf := make(map[*types.Func]string)
	for fn, d := range ix.decls {
		for _, root := range hotpathRoots {
			if fn.Name() == root.name && PathInScope(d.pkg.ImportPath, root.pkgSuffix) {
				rootOf[fn] = funcDisplay(fn)
				work = append(work, rootedFunc{fn, funcDisplay(fn)})
			}
		}
	}

	// BFS over static callees: everything reachable inherits the
	// nearest root for diagnostics.
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		d := ix.decls[cur.fn]
		if d == nil {
			continue
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := origin(staticCallee(d.pkg.Info, call))
			if callee == nil {
				return true
			}
			if _, inModule := ix.decls[callee]; !inModule {
				return true
			}
			if _, seen := rootOf[callee]; seen {
				return true
			}
			rootOf[callee] = cur.root
			work = append(work, rootedFunc{callee, cur.root})
			return true
		})
	}

	// Flag allocating constructs in every reachable function.
	for fn, root := range rootOf {
		d := ix.decls[fn]
		if d == nil {
			continue
		}
		checkAllocs(d, root, r)
	}
}

// checkAllocs walks one reachable function body and reports allocating
// constructs. panic(...) arguments are exempt: a corruption panic is
// already off the steady-state path, and its message formatting is the
// last thing the process does.
func checkAllocs(d *funcDecl, root string, r *Reporter) {
	info := d.pkg.Info
	report := func(pos ast.Node, what string) {
		r.Reportf(pos.Pos(), "%s in %s, reachable from service-loop root %s; the steady-state loop is pinned at 0 allocs/op", what, funcDisplay(d.fn), root)
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "panic":
						// Everything under panic(...) is post-mortem.
						return false
					case "make", "new":
						report(n, fmt.Sprintf("%s allocates", id.Name))
					case "append":
						// append itself is gated by the runtime alloc
						// probe: amortized growth of pooled slices is
						// the engine's documented pattern.
					}
				}
			}
			if fn := staticCallee(info, n); fn != nil && isPkgFunc(fn, "fmt") {
				report(n, "fmt."+fn.Name()+" allocates (formats and boxes its arguments)")
			}
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes and allocates")
					return false
				}
			}
			return true
		case *ast.CompositeLit:
			// Slice and map literals allocate their backing store;
			// struct/array values do not (they live in the frame).
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice/map literal allocates its backing store")
				}
			}
			return true
		case *ast.FuncLit:
			report(n, "func literal allocates a closure")
			return false // its body is not on the synchronous path we prove
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine stack")
			return true
		}
		return true
	}
	ast.Inspect(d.decl.Body, walk)
}

// Package lifevet is the project-invariant static-analysis suite: a
// dependency-free driver (stdlib go/parser + go/types over `go list
// -json` package graphs) with analyzers that enforce the invariants the
// engine's correctness and reproducibility rest on — virtual-clock
// discipline, a zero-alloc service loop, nil-guarded observability,
// bounded metric cardinality, fd hygiene, and lock discipline. Each
// invariant is documented in docs/ANALYZERS.md; `cmd/lifevet` wires the
// suite into CI.
//
// Suppression is explicit and audited: a `//lifevet:allow <checks>`
// comment directive silences the named checks on its own line and the
// next (or, attached to a func declaration, the whole function), and a
// directive that suppresses nothing is itself a diagnostic — the
// allowlist can only shrink, never silently rot.
package lifevet

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: an invariant violation at a position.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named invariant check over a loaded module.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and in
	// //lifevet:allow directives.
	Name string
	// Doc is the one-line invariant statement.
	Doc string
	// Run reports violations via the Reporter.
	Run func(*Module, *Reporter)
}

// Analyzers returns the full suite in documentation order: the v1
// syntactic/flow-lite checks followed by the v2 dataflow set built on
// the def-use core (dataflow.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerWallclock,
		AnalyzerHotpathAlloc,
		AnalyzerNilguard,
		AnalyzerBoundedLabels,
		AnalyzerFDLeak,
		AnalyzerLockDiscipline,
		AnalyzerLockOrder,
		AnalyzerGoroleak,
		AnalyzerCtxflow,
		AnalyzerDurovf,
		AnalyzerErrdrop,
	}
}

// Reporter collects diagnostics for one analyzer run.
type Reporter struct {
	fset  *token.FileSet
	check string
	diags *[]Diagnostic
}

// Reportf records one diagnostic at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	*r.diags = append(*r.diags, Diagnostic{
		Check: r.check, Pos: p, File: p.Filename, Line: p.Line, Col: p.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of a Run: surviving diagnostics (suppressions
// applied, stale directives added) sorted by position.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts diagnostics silenced by allow directives.
	Suppressed int
	// Baselined counts diagnostics absorbed by the findings baseline
	// (ApplyBaseline).
	Baselined int
}

// directivePrefix introduces an allow directive comment. The rest of
// the comment line is a comma- or space-separated list of check names;
// anything after " -- " is a free-form justification.
const directivePrefix = "lifevet:allow"

// StaleDirectiveCheck names the meta-check reporting allow directives
// that suppress nothing. It cannot itself be suppressed.
const StaleDirectiveCheck = "stale-directive"

// directive is one parsed //lifevet:allow comment.
type directive struct {
	pos    token.Position
	checks []string
	// startLine/endLine bound the lines the directive covers: its own
	// line and the next, or a whole function body when attached to a
	// func declaration.
	startLine, endLine int
	hits               map[string]int
}

// Run executes the analyzers over the module, applies allow directives,
// and reports stale ones.
func Run(m *Module, analyzers []*Analyzer) Result {
	known := make(map[string]bool, len(analyzers))
	var raw []Diagnostic
	for _, a := range analyzers {
		known[a.Name] = true
		a.Run(m, &Reporter{fset: m.Fset, check: a.Name, diags: &raw})
	}

	dirs, dirDiags := collectDirectives(m, known)
	var res Result
	for _, d := range raw {
		if suppress(dirs, d) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	// A directive entry that silenced nothing is dead weight — either
	// the invariant violation it excused is gone (delete the directive)
	// or the directive never matched (fix it). Either way it fails the
	// run: a stale allowlist is how invariants rot.
	for _, dir := range dirs {
		for _, c := range dir.checks {
			if dir.hits[c] == 0 {
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Check: StaleDirectiveCheck,
					File:  dir.pos.Filename, Line: dir.pos.Line, Col: dir.pos.Column,
					Message: fmt.Sprintf("directive allows %q but suppressed no %s diagnostic — remove or fix it", c, c),
				})
			}
		}
	}
	res.Diagnostics = append(res.Diagnostics, dirDiags...)
	sortDiagnostics(res.Diagnostics)
	return res
}

// sortDiagnostics orders diagnostics by position for deterministic
// output (and stable CI diffs).
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// suppress finds the first applicable directive for d and counts the
// hit. The stale-directive meta-check is never suppressible.
func suppress(dirs []*directive, d Diagnostic) bool {
	if d.Check == StaleDirectiveCheck {
		return false
	}
	for _, dir := range dirs {
		if dir.pos.Filename != d.File || d.Line < dir.startLine || d.Line > dir.endLine {
			continue
		}
		for _, c := range dir.checks {
			if c == d.Check {
				dir.hits[c]++
				return true
			}
		}
	}
	return false
}

// collectDirectives parses every //lifevet:allow comment in the module,
// reporting malformed ones (unknown check names, empty lists) as
// diagnostics rather than silently ignoring them.
func collectDirectives(m *Module, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			// Map func declarations to their line ranges so a directive in
			// a doc comment (or on the func line) covers the whole body.
			type funcRange struct{ doc, start, end int }
			var funcs []funcRange
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fr := funcRange{
					start: m.Fset.Position(fd.Pos()).Line,
					end:   m.Fset.Position(fd.End()).Line,
				}
				fr.doc = fr.start
				if fd.Doc != nil {
					fr.doc = m.Fset.Position(fd.Doc.Pos()).Line
				}
				funcs = append(funcs, fr)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(text, directivePrefix)
					if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
						continue // e.g. lifevet:allowance — not this directive
					}
					// Strip the optional " -- why" justification tail.
					if i := strings.Index(rest, "--"); i >= 0 {
						rest = rest[:i]
					}
					var checks []string
					for _, tok := range strings.FieldsFunc(rest, func(r rune) bool {
						return r == ',' || r == ' ' || r == '\t'
					}) {
						checks = append(checks, tok)
					}
					if len(checks) == 0 {
						diags = append(diags, Diagnostic{
							Check: StaleDirectiveCheck,
							File:  pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: "directive names no checks (want //lifevet:allow <check>[,<check>...])",
						})
						continue
					}
					bad := false
					for _, c := range checks {
						if !known[c] {
							diags = append(diags, Diagnostic{
								Check: StaleDirectiveCheck,
								File:  pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: fmt.Sprintf("directive names unknown check %q", c),
							})
							bad = true
						}
					}
					if bad {
						continue
					}
					d := &directive{
						pos: pos, checks: checks,
						startLine: pos.Line, endLine: pos.Line + 1,
						hits: make(map[string]int),
					}
					for _, fr := range funcs {
						if pos.Line >= fr.doc && pos.Line <= fr.start {
							d.startLine, d.endLine = fr.start, fr.end
							break
						}
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs, diags
}

package lifevet

import (
	"os"
	"path/filepath"
	"testing"
)

func diag(check, file, msg string, line int) Diagnostic {
	return Diagnostic{Check: check, File: file, Line: line, Col: 1, Message: msg}
}

func TestBaselineAbsorbsPinnedFindings(t *testing.T) {
	res := Result{Diagnostics: []Diagnostic{
		diag("durovf", "/mod/a.go", "overflow", 10),
		diag("durovf", "/mod/b.go", "overflow", 20),
	}}
	b := &Baseline{Findings: []BaselineEntry{
		{Check: "durovf", File: "a.go", Message: "overflow"},
	}}
	ApplyBaseline(&res, b, "/mod")
	if res.Baselined != 1 {
		t.Errorf("Baselined = %d, want 1", res.Baselined)
	}
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].File != "/mod/b.go" {
		t.Errorf("surviving diagnostics = %v, want only b.go", res.Diagnostics)
	}
}

func TestBaselineMatchesIgnoringLine(t *testing.T) {
	// The same finding after unrelated edits shifted it: still pinned.
	res := Result{Diagnostics: []Diagnostic{
		diag("durovf", "/mod/a.go", "overflow", 999),
	}}
	b := &Baseline{Findings: []BaselineEntry{
		{Check: "durovf", File: "a.go", Message: "overflow"},
	}}
	ApplyBaseline(&res, b, "/mod")
	if res.Baselined != 1 || len(res.Diagnostics) != 0 {
		t.Errorf("baselined=%d survivors=%v, want 1 and none", res.Baselined, res.Diagnostics)
	}
}

func TestBaselineNewFindingFails(t *testing.T) {
	// An injected finding not in the baseline survives: the ratchet
	// catches regressions even when the file already pins other classes.
	res := Result{Diagnostics: []Diagnostic{
		diag("durovf", "/mod/a.go", "overflow", 10),
		diag("goroleak", "/mod/a.go", "endless loop", 30),
	}}
	b := &Baseline{Findings: []BaselineEntry{
		{Check: "durovf", File: "a.go", Message: "overflow"},
	}}
	ApplyBaseline(&res, b, "/mod")
	if len(res.Diagnostics) != 1 || res.Diagnostics[0].Check != "goroleak" {
		t.Fatalf("survivors = %v, want the injected goroleak finding", res.Diagnostics)
	}
}

func TestBaselineOrphanEntryFails(t *testing.T) {
	// A pinned finding that no longer occurs turns into a stale-baseline
	// diagnostic: the accepted set can only shrink deliberately.
	res := Result{Diagnostics: []Diagnostic{
		diag("durovf", "/mod/a.go", "overflow", 10),
	}}
	b := &Baseline{Findings: []BaselineEntry{
		{Check: "durovf", File: "a.go", Message: "overflow"},
		{Check: "durovf", File: "gone.go", Message: "fixed long ago"},
	}}
	ApplyBaseline(&res, b, "/mod")
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %v, want exactly the stale entry", res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if d.Check != StaleBaselineCheck || d.File != "gone.go" {
		t.Errorf("got %+v, want stale-baseline at gone.go", d)
	}
}

func TestBaselineNeverAbsorbsMetaChecks(t *testing.T) {
	// Stale directives cannot be grandfathered into the baseline.
	res := Result{Diagnostics: []Diagnostic{
		diag(StaleDirectiveCheck, "/mod/a.go", "directive suppressed nothing", 5),
	}}
	b := &Baseline{Findings: []BaselineEntry{
		{Check: StaleDirectiveCheck, File: "a.go", Message: "directive suppressed nothing"},
	}}
	ApplyBaseline(&res, b, "/mod")
	if res.Baselined != 0 {
		t.Errorf("Baselined = %d, want 0: meta-checks are never baselined", res.Baselined)
	}
	// The surviving set holds the stale directive AND the now-orphaned
	// baseline entry (it matched nothing, because it may match nothing).
	if len(res.Diagnostics) != 2 {
		t.Errorf("diagnostics = %v, want stale-directive plus stale-baseline", res.Diagnostics)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	// BaselineFrom pins every current finding; applying it back absorbs
	// them all, and the file survives a write/load cycle.
	res := Result{Diagnostics: []Diagnostic{
		diag("durovf", "/mod/a.go", "overflow", 10),
		diag("durovf", "/mod/a.go", "overflow", 40), // same class, second site
		diag("errdrop", "/mod/b.go", "dropped", 7),
	}}
	b := BaselineFrom(res, "/mod")
	if len(b.Findings) != 2 {
		t.Fatalf("BaselineFrom produced %d entries, want 2 (deduplicated)", len(b.Findings))
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	ApplyBaseline(&res, loaded, "/mod")
	if len(res.Diagnostics) != 0 || res.Baselined != 3 {
		t.Errorf("survivors=%v baselined=%d, want none and 3", res.Diagnostics, res.Baselined)
	}
}

func TestBaselineLoadErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want IsNotExist", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("corrupt baseline parsed without error")
	}
}

func TestBaselineEndToEndOverFixture(t *testing.T) {
	// The full ratchet over a real analyzer run: pin the durovf
	// fixture's findings, apply, everything absorbed; drop one entry and
	// that finding fails again.
	res, dir := runFixture(t, "durovf")
	if len(res.Diagnostics) == 0 {
		t.Fatal("durovf fixture produced no findings to pin")
	}
	b := BaselineFrom(res, dir)
	ApplyBaseline(&res, b, dir)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("pinned run still has findings: %v", res.Diagnostics)
	}

	res2, dir2 := runFixture(t, "durovf")
	b2 := BaselineFrom(res2, dir2)
	dropped := b2.Findings[0]
	b2.Findings = b2.Findings[1:]
	ApplyBaseline(&res2, b2, dir2)
	if len(res2.Diagnostics) == 0 {
		t.Fatalf("unpinning %v should have left its finding failing", dropped)
	}
}

package lifevet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// Package is one type-checked main-module package: its syntax trees plus
// the go/types objects the analyzers resolve against.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Module is the loaded main module: every package the requested patterns
// cover, type-checked from source in dependency order (so cross-package
// references resolve to identical type objects).
type Module struct {
	Path     string
	Dir      string
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
}

// PackageBySuffix returns the loaded packages whose import path matches
// base: equal to it, ending in "/"+base, or containing "/"+base+"/" (so
// "internal/cache" covers internal/cache/disktier). Scope predicates
// match by suffix rather than full path so analyzer tests can run the
// same analyzers over fixture modules.
func (m *Module) PackagesInScope(bases ...string) []*Package {
	var out []*Package
	for _, p := range m.Packages {
		if PathInScope(p.ImportPath, bases...) {
			out = append(out, p)
		}
	}
	return out
}

// PathInScope reports whether import path p falls under any of the given
// path bases (see PackagesInScope).
func PathInScope(p string, bases ...string) bool {
	for _, b := range bases {
		if p == b || strings.HasSuffix(p, "/"+b) || strings.Contains(p, "/"+b+"/") {
			return true
		}
	}
	return false
}

// exportLookup resolves dependency imports from the compiler export data
// `go list -export` recorded, keyed by import path.
type exportLookup struct {
	exports map[string]string
}

func (l *exportLookup) open(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lifevet: no export data for %q", path)
	}
	return os.Open(file)
}

// moduleImporter prefers packages already type-checked from source (so
// intra-module imports share type identity) and falls back to export
// data for everything else. Import is called concurrently by the
// level-parallel type-check: the source map is guarded by mu, and the
// gc export-data importer — which is not safe for concurrent use — is
// serialized behind gcMu.
type moduleImporter struct {
	mu     sync.RWMutex
	source map[string]*types.Package
	gcMu   sync.Mutex
	gc     types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	im.mu.RLock()
	p, ok := im.source[path]
	im.mu.RUnlock()
	if ok {
		return p, nil
	}
	im.gcMu.Lock()
	defer im.gcMu.Unlock()
	return im.gc.Import(path)
}

func (im *moduleImporter) add(path string, p *types.Package) {
	im.mu.Lock()
	im.source[path] = p
	im.mu.Unlock()
}

// Load builds, lists, parses, and type-checks the main-module packages
// matched by patterns (default "./...") under dir, using only the Go
// toolchain and the standard library: dependencies are imported from the
// compiler's export data, module packages are checked from source.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Standard,Export,GoFiles,Imports,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lifevet: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	// -deps emits packages in dependency order: every import of a package
	// appears before it, so one forward pass can type-check from source
	// with all module dependencies already resolved.
	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lifevet: decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}

	lookup := &exportLookup{exports: make(map[string]string, len(listed))}
	for _, p := range listed {
		if p.Export != "" {
			lookup.exports[p.ImportPath] = p.Export
		}
	}
	imp := &moduleImporter{
		source: make(map[string]*types.Package),
		gc:     importer.ForCompiler(token.NewFileSet(), "gc", lookup.open),
	}

	m := &Module{Dir: dir, Fset: token.NewFileSet(), byPath: make(map[string]*Package)}
	var mod []*listPackage
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lifevet: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if m.Path == "" {
			m.Path = lp.Module.Path
		}
		mod = append(mod, lp)
	}
	if len(mod) == 0 {
		return nil, fmt.Errorf("lifevet: patterns %v matched no main-module packages under %s", patterns, dir)
	}

	// Parse every module package in parallel. token.FileSet serializes
	// AddFile internally, so one shared fset across parser goroutines is
	// safe; the per-package file slices keep their own order.
	parsed := make([][]*ast.File, len(mod))
	parseErrs := make([]error, len(mod))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, lp := range mod {
		wg.Add(1)
		go func(i int, lp *listPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			files := make([]*ast.File, 0, len(lp.GoFiles))
			for _, name := range lp.GoFiles {
				f, err := parser.ParseFile(m.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					parseErrs[i] = fmt.Errorf("lifevet: parsing %s: %v", name, err)
					return
				}
				files = append(files, f)
			}
			parsed[i] = files
		}(i, lp)
	}
	wg.Wait()
	for _, err := range parseErrs {
		if err != nil {
			return nil, err
		}
	}

	// Type-check in dependency levels: -deps order guarantees imports
	// precede importers, so packages whose module-internal imports are
	// all checked form a level and check concurrently. Packages append
	// to m.Packages in listing order regardless, keeping analyzer output
	// deterministic.
	sizes := types.SizesFor("gc", runtime.GOARCH)
	index := make(map[string]int, len(mod))
	for i, lp := range mod {
		index[lp.ImportPath] = i
	}
	pkgs := make([]*Package, len(mod))
	done := make([]bool, len(mod))
	for remaining := len(mod); remaining > 0; {
		var level []int
		for i, lp := range mod {
			if done[i] || pkgs[i] != nil {
				continue
			}
			ready := true
			for _, imp := range lp.Imports {
				if j, inMod := index[imp]; inMod && !done[j] {
					ready = false
					break
				}
			}
			if ready {
				level = append(level, i)
			}
		}
		if len(level) == 0 {
			return nil, fmt.Errorf("lifevet: import cycle among module packages (go list should have rejected this)")
		}
		checkErrs := make([]error, len(level))
		var cwg sync.WaitGroup
		for li, i := range level {
			cwg.Add(1)
			go func(li, i int) {
				defer cwg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				lp := mod[i]
				info := &types.Info{
					Types:      make(map[ast.Expr]types.TypeAndValue),
					Defs:       make(map[*ast.Ident]types.Object),
					Uses:       make(map[*ast.Ident]types.Object),
					Selections: make(map[*ast.SelectorExpr]*types.Selection),
					Implicits:  make(map[ast.Node]types.Object),
				}
				conf := types.Config{Importer: imp, Sizes: sizes}
				tpkg, err := conf.Check(lp.ImportPath, m.Fset, parsed[i], info)
				if err != nil {
					checkErrs[li] = fmt.Errorf("lifevet: type-checking %s: %v", lp.ImportPath, err)
					return
				}
				pkgs[i] = &Package{
					ImportPath: lp.ImportPath,
					Dir:        lp.Dir,
					Fset:       m.Fset,
					Files:      parsed[i],
					Types:      tpkg,
					Info:       info,
				}
				imp.add(lp.ImportPath, tpkg)
			}(li, i)
		}
		cwg.Wait()
		for _, err := range checkErrs {
			if err != nil {
				return nil, err
			}
		}
		for _, i := range level {
			done[i] = true
			remaining--
		}
	}
	for _, pkg := range pkgs {
		m.Packages = append(m.Packages, pkg)
		m.byPath[pkg.ImportPath] = pkg
	}
	return m, nil
}

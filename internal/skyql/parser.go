package skyql

import (
	"fmt"
	"strconv"
	"strings"

	"liferaft/internal/federation"
)

// Column is a projected column reference (alias.field or *).
type Column struct {
	Alias string // empty for *
	Field string // "*" for alias.* and bare *
}

// Source is one FROM entry: an archive with its alias.
type Source struct {
	Archive string
	Alias   string
}

// MagWindow is a "alias.mag BETWEEN lo AND hi" predicate.
type MagWindow struct {
	Alias  string
	Lo, Hi float64
}

// Query is the parsed AST.
type Query struct {
	Columns []Column
	Sources []Source
	// XMatch lists the aliases joined, in plan order; RadiusArcsec is
	// the match tolerance.
	XMatch       []string
	RadiusArcsec float64
	// Region: CIRCLE center/radius in degrees.
	RA, Dec, RegionRadiusDeg float64
	// Mag holds at most one photometric window (the engine applies
	// per-query predicates on the matched archive's objects).
	Mag *MagWindow
	// Sample is the driving-archive selectivity; 1 when absent.
	Sample float64
	// Limit caps returned rows; 0 means unlimited.
	Limit int
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
	src  string
}

// Parse parses a SkyQL cross-match query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("skyql: %s (at offset %d near %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.cur().text)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errorf("expected %s", strings.ToUpper(kw))
	}
	p.i++
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errorf("expected %v", kind)
	}
	return p.next(), nil
}

func (p *parser) number() (float64, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	x, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("skyql: bad number %q at offset %d", t.text, t.pos)
	}
	return x, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Sample: 1}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseColumns(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseSources(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	if err := p.parsePredicates(q); err != nil {
		return nil, err
	}
	if p.cur().isKeyword("limit") {
		p.i++
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		if n < 0 || n != float64(int(n)) {
			return nil, fmt.Errorf("skyql: LIMIT must be a non-negative integer")
		}
		q.Limit = int(n)
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input")
	}
	return q, p.validate(q)
}

func (p *parser) parseColumns(q *Query) error {
	for {
		if p.cur().kind == tokStar {
			p.i++
			q.Columns = append(q.Columns, Column{Field: "*"})
		} else {
			id, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			col := Column{Alias: id.text, Field: "*"}
			if p.cur().kind == tokDot {
				p.i++
				if p.cur().kind == tokStar {
					p.i++
				} else {
					f, err := p.expect(tokIdent)
					if err != nil {
						return err
					}
					col.Field = f.text
				}
			} else {
				// Bare identifier: treat as a field of the first source.
				col = Column{Field: id.text}
			}
			q.Columns = append(q.Columns, col)
		}
		if p.cur().kind != tokComma {
			return nil
		}
		p.i++
	}
}

func (p *parser) parseSources(q *Query) error {
	for {
		arch, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		alias := arch.text
		if p.cur().kind == tokIdent && !p.cur().isKeyword("where") {
			alias = p.next().text
		}
		q.Sources = append(q.Sources, Source{Archive: strings.ToLower(arch.text), Alias: alias})
		if p.cur().kind != tokComma {
			return nil
		}
		p.i++
	}
}

func (p *parser) parsePredicates(q *Query) error {
	for {
		switch {
		case p.cur().isKeyword("xmatch"):
			if err := p.parseXMatch(q); err != nil {
				return err
			}
		case p.cur().isKeyword("region"):
			if err := p.parseRegion(q); err != nil {
				return err
			}
		case p.cur().isKeyword("sample"):
			p.i++
			if _, err := p.expect(tokLParen); err != nil {
				return err
			}
			x, err := p.number()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return err
			}
			q.Sample = x
		case p.cur().kind == tokIdent:
			if err := p.parseMagWindow(q); err != nil {
				return err
			}
		default:
			return p.errorf("expected predicate")
		}
		if !p.cur().isKeyword("and") {
			return nil
		}
		p.i++
	}
}

func (p *parser) parseXMatch(q *Query) error {
	if q.XMatch != nil {
		return fmt.Errorf("skyql: duplicate XMATCH predicate")
	}
	p.i++
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for {
		a, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		q.XMatch = append(q.XMatch, a.text)
		if p.cur().kind != tokComma {
			break
		}
		p.i++
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if _, err := p.expect(tokLess); err != nil {
		return err
	}
	r, err := p.number()
	if err != nil {
		return err
	}
	q.RadiusArcsec = r
	return nil
}

func (p *parser) parseRegion(q *Query) error {
	if q.RegionRadiusDeg != 0 {
		return fmt.Errorf("skyql: duplicate REGION predicate")
	}
	p.i++
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	shape, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if !strings.EqualFold(shape.text, "circle") {
		return fmt.Errorf("skyql: unsupported region shape %q (only CIRCLE)", shape.text)
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	if q.RA, err = p.number(); err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	if q.Dec, err = p.number(); err != nil {
		return err
	}
	if _, err := p.expect(tokComma); err != nil {
		return err
	}
	if q.RegionRadiusDeg, err = p.number(); err != nil {
		return err
	}
	_, err = p.expect(tokRParen)
	return err
}

func (p *parser) parseMagWindow(q *Query) error {
	alias, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	field, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if !strings.EqualFold(field.text, "mag") {
		return fmt.Errorf("skyql: unsupported predicate field %q (only mag)", field.text)
	}
	if err := p.expectKeyword("between"); err != nil {
		return err
	}
	lo, err := p.number()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("and"); err != nil {
		return err
	}
	hi, err := p.number()
	if err != nil {
		return err
	}
	if q.Mag != nil {
		return fmt.Errorf("skyql: at most one magnitude window is supported")
	}
	q.Mag = &MagWindow{Alias: alias.text, Lo: lo, Hi: hi}
	return nil
}

func (p *parser) validate(q *Query) error {
	if len(q.Sources) < 2 {
		return fmt.Errorf("skyql: cross-match needs at least two FROM sources")
	}
	if len(q.XMatch) < 2 {
		return fmt.Errorf("skyql: WHERE must contain XMATCH(a, b, ...) < radius")
	}
	if q.RadiusArcsec <= 0 {
		return fmt.Errorf("skyql: XMATCH radius must be positive arcseconds")
	}
	if q.RegionRadiusDeg <= 0 {
		return fmt.Errorf("skyql: WHERE must contain REGION(CIRCLE, ra, dec, radius)")
	}
	if q.Sample <= 0 || q.Sample > 1 {
		return fmt.Errorf("skyql: SAMPLE must be in (0, 1]")
	}
	byAlias := make(map[string]Source, len(q.Sources))
	for _, s := range q.Sources {
		if _, dup := byAlias[s.Alias]; dup {
			return fmt.Errorf("skyql: duplicate alias %q", s.Alias)
		}
		byAlias[s.Alias] = s
	}
	for _, a := range q.XMatch {
		if _, ok := byAlias[a]; !ok {
			return fmt.Errorf("skyql: XMATCH references unknown alias %q", a)
		}
	}
	if q.Mag != nil {
		if _, ok := byAlias[q.Mag.Alias]; !ok {
			return fmt.Errorf("skyql: magnitude window references unknown alias %q", q.Mag.Alias)
		}
		if q.Mag.Hi < q.Mag.Lo {
			return fmt.Errorf("skyql: magnitude window bounds inverted")
		}
	}
	for _, c := range q.Columns {
		if c.Alias == "" {
			continue
		}
		if _, ok := byAlias[c.Alias]; !ok {
			return fmt.Errorf("skyql: SELECT references unknown alias %q", c.Alias)
		}
	}
	return nil
}

// Compile lowers the AST to a federation query: the XMATCH alias order
// becomes the serial left-deep plan order.
func Compile(q *Query, id uint64, seed int64) (federation.Query, error) {
	byAlias := make(map[string]Source, len(q.Sources))
	for _, s := range q.Sources {
		byAlias[s.Alias] = s
	}
	fq := federation.Query{
		ID: id, RA: q.RA, Dec: q.Dec, RadiusDeg: q.RegionRadiusDeg,
		MatchRadiusArcsec: q.RadiusArcsec,
		Selectivity:       q.Sample,
		Seed:              seed,
	}
	for _, a := range q.XMatch {
		fq.Archives = append(fq.Archives, byAlias[a].Archive)
	}
	if q.Mag != nil {
		fq.MagLo, fq.MagHi = q.Mag.Lo, q.Mag.Hi
	}
	return fq, nil
}

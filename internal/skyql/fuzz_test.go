package skyql

import "testing"

// FuzzSkyQL drives the lexer and recursive-descent parser with
// arbitrary input: every outcome must be a (*Query, nil) or a
// (nil, error) — never a panic, and never both or neither.
func FuzzSkyQL(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM a x, b y WHERE XMATCH(x, y) < 3 AND REGION(CIRCLE, 0, -10, 2)",
		"SELECT t.id, s.id, s.mag FROM twomass t, sdss s WHERE XMATCH(t, s) < 2 AND REGION(CIRCLE, 1, 2, 3) AND s.mag BETWEEN 10 AND 20 LIMIT 5",
		"SELECT t.id FROM twomass t, sdss s, usnob u WHERE XMATCH(t, s, u) < 1.5 AND REGION(CIRCLE, -10.5, -45.25, 1.5)",
		"SELECT * FROM a TABLESAMPLE (1) , b WHERE XMATCH(a,b)<2 AND REGION(CIRCLE,1,1,1)",
		"select * from a x, b y where xmatch(x, y) < 3 and region(circle, 0, 0, 1)",
		"SELECT * FROM",
		"SELECT * FROM a x WHERE XMATCH(x, x) < 1e309 AND REGION(CIRCLE,1,1,1)",
		"\x00\xff SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("Parse returned nil query and nil error")
		}
		if err != nil && q != nil {
			t.Fatalf("Parse returned both a query and error %v", err)
		}
	})
}

// Package skyql implements the small SQL dialect SkyQuery exposed to
// astronomers, restricted to the cross-match form LifeRaft schedules
// (Malik et al., CIDR 2003 describe the original). A query names the
// archives to join, the match tolerance, a sky region, and optional
// photometric predicates:
//
//	SELECT t.id, s.id, s.mag
//	FROM twomass t, sdss s
//	WHERE XMATCH(t, s) < 5
//	  AND REGION(CIRCLE, 150.0, 20.0, 4.0)
//	  AND s.mag BETWEEN 15 AND 18
//	  AND SAMPLE(0.5)
//	LIMIT 100
//
// Parse produces an AST; Compile lowers it to a federation.Query the
// portal executes. The archive order in XMATCH fixes the left-deep plan
// order (the first alias drives the extraction).
package skyql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLess
	tokStar
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLess:
		return "'<'"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// lex splits the input into tokens. Identifiers are case-preserved;
// keyword comparison is case-insensitive at the parser level.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '<':
			toks = append(toks, token{tokLess, "<", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '-' || c == '+' || unicode.IsDigit(c):
			start := i
			i++
			seenDot := false
			for i < len(input) {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				break
			}
			text := input[start:i]
			if text == "-" || text == "+" || text == "." {
				return nil, fmt.Errorf("skyql: malformed number at offset %d", start)
			}
			toks = append(toks, token{tokNumber, text, start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			return nil, fmt.Errorf("skyql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

// isKeyword reports a case-insensitive keyword match.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

package skyql

import (
	"strings"
	"testing"
	"testing/quick"
)

const canonical = `
SELECT t.id, s.id, s.mag
FROM twomass t, sdss s
WHERE XMATCH(t, s) < 5
  AND REGION(CIRCLE, 150.0, 20.0, 4.0)
  AND s.mag BETWEEN 15 AND 18
  AND SAMPLE(0.5)
LIMIT 100`

func TestParseCanonical(t *testing.T) {
	q, err := Parse(canonical)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 3 {
		t.Errorf("columns = %+v", q.Columns)
	}
	if len(q.Sources) != 2 || q.Sources[0].Archive != "twomass" || q.Sources[0].Alias != "t" {
		t.Errorf("sources = %+v", q.Sources)
	}
	if len(q.XMatch) != 2 || q.XMatch[0] != "t" || q.XMatch[1] != "s" {
		t.Errorf("xmatch = %v", q.XMatch)
	}
	if q.RadiusArcsec != 5 {
		t.Errorf("radius = %v", q.RadiusArcsec)
	}
	if q.RA != 150 || q.Dec != 20 || q.RegionRadiusDeg != 4 {
		t.Errorf("region = (%v, %v, %v)", q.RA, q.Dec, q.RegionRadiusDeg)
	}
	if q.Mag == nil || q.Mag.Alias != "s" || q.Mag.Lo != 15 || q.Mag.Hi != 18 {
		t.Errorf("mag = %+v", q.Mag)
	}
	if q.Sample != 0.5 || q.Limit != 100 {
		t.Errorf("sample/limit = %v/%v", q.Sample, q.Limit)
	}
}

func TestParseMinimal(t *testing.T) {
	q, err := Parse(`SELECT * FROM a x, b y WHERE XMATCH(x, y) < 3 AND REGION(CIRCLE, 0, -10, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sample != 1 || q.Limit != 0 || q.Mag != nil {
		t.Errorf("defaults: %+v", q)
	}
	if len(q.Columns) != 1 || q.Columns[0].Field != "*" {
		t.Errorf("columns = %+v", q.Columns)
	}
}

func TestParseThreeWay(t *testing.T) {
	q, err := Parse(`SELECT t.id FROM twomass t, sdss s, usnob u
		WHERE XMATCH(t, s, u) < 4 AND REGION(CIRCLE, 10, 10, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.XMatch) != 3 {
		t.Errorf("xmatch = %v", q.XMatch)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Parse(`select * from a x, b y where xmatch(x,y) < 1 and region(circle, 1, 1, 1)`); err != nil {
		t.Fatal(err)
	}
}

func TestAliasDefaultsToArchiveName(t *testing.T) {
	q, err := Parse(`SELECT * FROM twomass, sdss WHERE XMATCH(twomass, sdss) < 2 AND REGION(CIRCLE, 1, 2, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sources[0].Alias != "twomass" {
		t.Errorf("alias = %q", q.Sources[0].Alias)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	q, err := Parse(`SELECT * FROM a x, b y WHERE XMATCH(x,y) < 2.5 AND REGION(CIRCLE, -10.5, -45.25, 1.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.RA != -10.5 || q.Dec != -45.25 {
		t.Errorf("coords = (%v, %v)", q.RA, q.Dec)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "expected SELECT"},
		{"no from", "SELECT *", "expected FROM"},
		{"one source", "SELECT * FROM a x WHERE XMATCH(x, x) < 1 AND REGION(CIRCLE,1,1,1)", "at least two"},
		{"no xmatch", "SELECT * FROM a x, b y WHERE REGION(CIRCLE,1,1,1)", "XMATCH"},
		{"no region", "SELECT * FROM a x, b y WHERE XMATCH(x, y) < 1", "REGION"},
		{"bad shape", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(BOX,1,1,1)", "unsupported region shape"},
		{"zero radius", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 0 AND REGION(CIRCLE,1,1,1)", "radius must be positive"},
		{"unknown alias", "SELECT * FROM a x, b y WHERE XMATCH(x, z) < 1 AND REGION(CIRCLE,1,1,1)", "unknown alias"},
		{"dup alias", "SELECT * FROM a x, b x WHERE XMATCH(x, x) < 1 AND REGION(CIRCLE,1,1,1)", "duplicate alias"},
		{"bad sample", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND SAMPLE(2)", "SAMPLE"},
		{"bad mag field", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND x.flux BETWEEN 1 AND 2", "unsupported predicate field"},
		{"inverted mag", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND x.mag BETWEEN 5 AND 2", "inverted"},
		{"mag unknown alias", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND z.mag BETWEEN 1 AND 2", "unknown alias"},
		{"trailing", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) garbage here", "trailing"},
		{"bad limit", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) LIMIT 1.5", "LIMIT"},
		{"select unknown alias", "SELECT z.id FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1)", "unknown alias"},
		{"dup xmatch", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1)", "duplicate XMATCH"},
		{"dup region", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND REGION(CIRCLE,1,1,1)", "duplicate REGION"},
		{"bad char", "SELECT * FROM a x; DROP", "unexpected character"},
		{"lone minus", "SELECT * FROM a x, b y WHERE XMATCH(x,y) < - AND REGION(CIRCLE,1,1,1)", "malformed number"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestCompile(t *testing.T) {
	q, err := Parse(canonical)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := Compile(q, 9, 77)
	if err != nil {
		t.Fatal(err)
	}
	if fq.ID != 9 || fq.Seed != 77 {
		t.Errorf("id/seed = %v/%v", fq.ID, fq.Seed)
	}
	if len(fq.Archives) != 2 || fq.Archives[0] != "twomass" || fq.Archives[1] != "sdss" {
		t.Errorf("archives = %v", fq.Archives)
	}
	if fq.MatchRadiusArcsec != 5 || fq.RadiusDeg != 4 || fq.Selectivity != 0.5 {
		t.Errorf("params = %+v", fq)
	}
	if fq.MagLo != 15 || fq.MagHi != 18 {
		t.Errorf("mag = (%v, %v)", fq.MagLo, fq.MagHi)
	}
}

// Property: the parser never panics on arbitrary input and either errors
// or returns a validated query.
func TestQuickParserTotal(t *testing.T) {
	f := func(s string) bool {
		q, err := Parse(s)
		if err != nil {
			return true
		}
		return q != nil && len(q.Sources) >= 2 && q.RadiusArcsec > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parsing is deterministic.
func TestQuickParserDeterministic(t *testing.T) {
	f := func(s string) bool {
		q1, e1 := Parse(s)
		q2, e2 := Parse(s)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return e1.Error() == e2.Error()
		}
		return len(q1.Columns) == len(q2.Columns) && q1.RadiusArcsec == q2.RadiusArcsec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokStar; k++ {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
	if tokenKind(99).String() == "" {
		t.Error("unknown kind string")
	}
}

func TestLexerCoverage(t *testing.T) {
	toks, err := lex("a.b, (1.5) < * -2")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokDot, tokIdent, tokComma, tokLParen,
		tokNumber, tokRParen, tokLess, tokStar, tokNumber, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestColumnForms(t *testing.T) {
	q, err := Parse(`SELECT id, t.*, t.mag, * FROM twomass t, sdss s
		WHERE XMATCH(t, s) < 1 AND REGION(CIRCLE, 1, 1, 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Columns) != 4 {
		t.Fatalf("columns = %+v", q.Columns)
	}
	if q.Columns[0].Alias != "" || q.Columns[0].Field != "id" {
		t.Errorf("bare column = %+v", q.Columns[0])
	}
	if q.Columns[1].Alias != "t" || q.Columns[1].Field != "*" {
		t.Errorf("alias.* column = %+v", q.Columns[1])
	}
	if q.Columns[2].Field != "mag" {
		t.Errorf("alias.field column = %+v", q.Columns[2])
	}
}

func TestMoreParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",                       // missing columns
		"SELECT ,",                     // empty column
		"SELECT * FROM",                // missing source
		"SELECT * FROM a x, b y",       // missing WHERE
		"SELECT * FROM a x, b y WHERE", // empty predicates
		"SELECT * FROM a x, b y WHERE XMATCH x, y) < 1 AND REGION(CIRCLE,1,1,1)",                                                    // missing paren
		"SELECT * FROM a x, b y WHERE XMATCH(x, y) 1 AND REGION(CIRCLE,1,1,1)",                                                      // missing <
		"SELECT * FROM a x, b y WHERE XMATCH(x, y) < abc AND REGION(CIRCLE,1,1,1)",                                                  // radius not number
		"SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE 1,1,1)",                                                     // missing comma
		"SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND SAMPLE 0.5",                                      // missing paren
		"SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND x.mag BETWEEN 1 2",                               // missing AND
		"SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) AND x.mag BETWEEN 1 AND 2 AND y.mag BETWEEN 1 AND 2", // two windows
		"SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) LIMIT -3",                                            // negative limit
		"SELECT * FROM a x, b y WHERE AND",                                                                                          // bare AND
		"SELECT * FROM a x, b y WHERE 5",                                                                                            // number predicate
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestLimitZeroExplicit(t *testing.T) {
	q, err := Parse(`SELECT * FROM a x, b y WHERE XMATCH(x,y) < 1 AND REGION(CIRCLE,1,1,1) LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 0 {
		t.Errorf("limit = %d", q.Limit)
	}
}

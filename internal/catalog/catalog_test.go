package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"liferaft/internal/geom"
	"liferaft/internal/htm"
)

func mustNew(t *testing.T, cfg Config) *Catalog {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: -1, GenLevel: 4}); err == nil {
		t.Error("negative N should fail")
	}
	if _, err := New(Config{N: 10, GenLevel: -1}); err == nil {
		t.Error("negative GenLevel should fail")
	}
	if _, err := New(Config{N: 10, GenLevel: 14}); err == nil {
		t.Error("GenLevel at object level should fail")
	}
	if _, err := New(Config{N: 10, GenLevel: 11}); err == nil {
		t.Error("GenLevel above 10 should fail")
	}
	bad := func(geom.Vec3) float64 { return math.NaN() }
	if _, err := New(Config{N: 10, GenLevel: 3, Density: bad}); err == nil {
		t.Error("NaN density should fail")
	}
	neg := func(geom.Vec3) float64 { return -1 }
	if _, err := New(Config{N: 10, GenLevel: 3, Density: neg}); err == nil {
		t.Error("negative density should fail")
	}
}

func TestExactTotal(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 123457} {
		c := mustNew(t, Config{Name: "t", N: n, Seed: 5, GenLevel: 4})
		var sum int64
		for pos := uint64(0); pos < htm.NumTrixels(4); pos++ {
			sum += int64(c.TrixelCount(pos))
		}
		if sum != int64(n) {
			t.Errorf("N=%d: counts sum to %d", n, sum)
		}
		if c.Total() != n {
			t.Errorf("Total = %d", c.Total())
		}
	}
}

func TestCumConsistency(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 5000, Seed: 9, GenLevel: 3})
	var run int64
	for pos := uint64(0); pos < htm.NumTrixels(3); pos++ {
		if c.CumBefore(pos) != run {
			t.Fatalf("CumBefore(%d) = %d, want %d", pos, c.CumBefore(pos), run)
		}
		run += int64(c.TrixelCount(pos))
	}
}

func TestTrixelOf(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 1000, Seed: 2, GenLevel: 3})
	for ord := int64(0); ord < 1000; ord += 37 {
		pos := c.TrixelOf(ord)
		if ord < c.CumBefore(pos) || ord >= c.CumBefore(pos)+int64(c.TrixelCount(pos)) {
			t.Fatalf("TrixelOf(%d) = %d: ordinal outside trixel", ord, pos)
		}
	}
}

func TestTrixelOfPanics(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 10, Seed: 2, GenLevel: 2})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ordinal should panic")
		}
	}()
	c.TrixelOf(10)
}

func TestMaterializationDeterministic(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 20000, Seed: 77, GenLevel: 4})
	var pos uint64
	for p := uint64(0); p < htm.NumTrixels(4); p++ {
		if c.TrixelCount(p) > 0 {
			pos = p
			break
		}
	}
	a := c.TrixelObjects(pos)
	b := c.TrixelObjects(pos)
	if len(a) == 0 {
		t.Fatal("no objects materialized")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("materialization not deterministic at %d", i)
		}
	}
}

func TestObjectsSortedAndContained(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 50000, Seed: 4, GenLevel: 4})
	checked := 0
	for pos := uint64(0); pos < htm.NumTrixels(4) && checked < 5; pos++ {
		objs := c.TrixelObjects(pos)
		if len(objs) < 2 {
			continue
		}
		checked++
		base := htm.FromPos(pos, 4)
		tr := base.Triangle()
		for i, o := range objs {
			if i > 0 && objs[i-1].HTMID > o.HTMID {
				t.Fatalf("trixel %d objects unsorted at %d", pos, i)
			}
			if !tr.Contains(o.Pos) {
				t.Fatalf("object %d escapes its trixel", i)
			}
			if o.HTMID.Level() != htm.PaperLevel {
				t.Fatalf("object HTM level = %d", o.HTMID.Level())
			}
			if !o.HTMID.Contains(o.Pos) {
				t.Fatalf("object HTMID does not contain its position")
			}
			if o.Mag < 14 || o.Mag >= 24 {
				t.Fatalf("magnitude %v out of range", o.Mag)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no trixel had 2+ objects")
	}
}

func TestObjectIDsGloballyUnique(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 3000, Seed: 8, GenLevel: 2})
	seen := make(map[uint64]bool, 3000)
	for pos := uint64(0); pos < htm.NumTrixels(2); pos++ {
		for _, o := range c.TrixelObjects(pos) {
			if seen[o.ID] {
				t.Fatalf("duplicate object ID %d", o.ID)
			}
			seen[o.ID] = true
		}
	}
	if len(seen) != 3000 {
		t.Fatalf("materialized %d unique IDs, want 3000", len(seen))
	}
}

func TestObjectsRange(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 4000, Seed: 3, GenLevel: 2})
	all := c.Objects(0, 4000)
	if len(all) != 4000 {
		t.Fatalf("Objects(0,N) returned %d", len(all))
	}
	// IDs are the global ordinals in order.
	for i, o := range all {
		if o.ID != uint64(i) {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
	}
	// A sub-range must equal the corresponding slice of the full range.
	sub := c.Objects(1234, 2345)
	for i, o := range sub {
		if o != all[1234+i] {
			t.Fatalf("sub-range mismatch at %d", i)
		}
	}
	if got := c.Objects(7, 7); len(got) != 0 {
		t.Error("empty range should return nothing")
	}
}

func TestObjectsRangePanics(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 100, Seed: 3, GenLevel: 2})
	for _, r := range [][2]int64{{-1, 5}, {0, 101}, {50, 40}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Objects(%d,%d) should panic", r[0], r[1])
				}
			}()
			c.Objects(r[0], r[1])
		}()
	}
}

func TestInCap(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 100000, Seed: 6, GenLevel: 5})
	cp := geom.NewCap(geom.FromRaDec(40, 10), geom.Radians(8))
	got := c.InCap(cp)
	if len(got) == 0 {
		t.Fatal("cap over a dense catalog returned no objects")
	}
	for _, o := range got {
		if !cp.Contains(o.Pos) {
			t.Fatal("InCap returned object outside cap")
		}
	}
	// Cross-check against brute force over the full catalog.
	want := 0
	for _, o := range c.Objects(0, int64(c.Total())) {
		if cp.Contains(o.Pos) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("InCap found %d, brute force %d", len(got), want)
	}
}

func TestEstimateInCap(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 200000, Seed: 10, GenLevel: 5})
	for _, radius := range []float64{2, 5, 12} {
		cp := geom.NewCap(geom.FromRaDec(111, -20), geom.Radians(radius))
		est := c.EstimateInCap(cp)
		exact := int64(len(c.InCap(cp)))
		if exact == 0 {
			t.Fatalf("radius %v: no exact objects", radius)
		}
		ratio := float64(est) / float64(exact)
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("radius %v: estimate %d vs exact %d (ratio %.2f)", radius, est, exact, ratio)
		}
	}
}

func TestDensityProfiles(t *testing.T) {
	pole := geom.Vec3{Z: 1}
	band := Band(pole, 10, 20)
	onPlane := band(geom.FromRaDec(30, 0))
	offPlane := band(geom.FromRaDec(30, 80))
	if onPlane <= offPlane {
		t.Errorf("band density on plane %v should exceed off-plane %v", onPlane, offPlane)
	}
	hs := Hotspots([]geom.Vec3{geom.FromRaDec(0, 0)}, 5, 50)
	if hs(geom.FromRaDec(0, 0)) <= hs(geom.FromRaDec(90, 0)) {
		t.Error("hotspot density should peak at center")
	}
	s := Sum(Uniform(), Uniform())
	if s(pole) != 2 {
		t.Errorf("Sum = %v", s(pole))
	}
	if Uniform()(pole) != 1 {
		t.Error("Uniform should be 1")
	}
}

func TestBandCatalogSkew(t *testing.T) {
	// A band catalog should concentrate objects near the plane.
	c := mustNew(t, Config{
		Name: "band", N: 50000, Seed: 12, GenLevel: 4,
		Density: Band(geom.Vec3{Z: 1}, 8, 30),
	})
	near, far := 0, 0
	for _, o := range c.Objects(0, 50000) {
		_, dec := geom.ToRaDec(o.Pos)
		if math.Abs(dec) < 10 {
			near++
		} else if math.Abs(dec) > 45 {
			far++
		}
	}
	// The near-plane belt (|dec|<10) is ~17% of the sky, the |dec|>45
	// polar caps ~29%; with contrast 30 the belt must dominate.
	if near < far {
		t.Errorf("band catalog not skewed: near=%d far=%d", near, far)
	}
}

func TestName(t *testing.T) {
	c := mustNew(t, Config{Name: "sdss", N: 10, Seed: 1, GenLevel: 2})
	if c.Name() != "sdss" || c.GenLevel() != 2 {
		t.Error("accessors")
	}
}

func TestDerivedValidation(t *testing.T) {
	base := mustNew(t, Config{Name: "b", N: 1000, Seed: 1, GenLevel: 3})
	if _, err := NewDerived(base, DerivedConfig{Fraction: 0}); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := NewDerived(base, DerivedConfig{Fraction: 2}); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := NewDerived(base, DerivedConfig{Fraction: 0.5, JitterRad: -1}); err == nil {
		t.Error("negative jitter should fail")
	}
}

func TestDerivedCatalogCorrelation(t *testing.T) {
	base := mustNew(t, Config{Name: "sdss", N: 30000, Seed: 5, GenLevel: 4, CacheTrixels: true})
	jitter := geom.ArcsecToRad(1.5)
	der, err := NewDerived(base, DerivedConfig{
		Name: "twomass", Seed: 77, Fraction: 0.4, JitterRad: jitter, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Size: ~40% of base.
	frac := float64(der.Total()) / float64(base.Total())
	if math.Abs(frac-0.4) > 0.03 {
		t.Errorf("derived fraction %.3f, want ~0.4", frac)
	}
	if der.Name() != "twomass" || der.GenLevel() != base.GenLevel() {
		t.Error("derived metadata")
	}
	// Counts sum to Total and cum is consistent.
	var sum int64
	for pos := uint64(0); pos < htm.NumTrixels(4); pos++ {
		if der.CumBefore(pos) != sum {
			t.Fatalf("cum mismatch at %d", pos)
		}
		sum += int64(der.TrixelCount(pos))
	}
	if sum != int64(der.Total()) {
		t.Fatalf("counts sum %d != total %d", sum, der.Total())
	}
	// Determinism.
	a := der.Objects(0, int64(der.Total()))
	b := der.Objects(0, int64(der.Total()))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("derived materialization not deterministic")
		}
	}
	// Correlation: most derived objects have a base object within a few
	// sigma; positions stay in their trixel; curve order holds.
	near := 0
	for pos := uint64(0); pos < htm.NumTrixels(4); pos++ {
		objs := der.TrixelObjects(pos)
		if len(objs) == 0 {
			continue
		}
		baseObjs := base.TrixelObjects(pos)
		tr := htm.FromPos(pos, 4).Triangle()
		prev := htm.ID(0)
		for _, o := range objs {
			if !tr.Contains(o.Pos) {
				t.Fatalf("derived object escaped trixel %d", pos)
			}
			if o.HTMID < prev {
				t.Fatalf("derived objects unsorted in trixel %d", pos)
			}
			prev = o.HTMID
			for _, bo := range baseObjs {
				if o.Pos.Angle(bo.Pos) < 4*geom.ArcsecToRad(1.5) {
					near++
					break
				}
			}
		}
	}
	if got := float64(near) / float64(der.Total()); got < 0.95 {
		t.Errorf("only %.2f of derived objects near a base object", got)
	}
}

// Property: every ordinal round-trips through TrixelOf + CumBefore.
func TestQuickOrdinalRoundTrip(t *testing.T) {
	c := mustNew(t, Config{Name: "t", N: 9999, Seed: 21, GenLevel: 3})
	f := func(x uint32) bool {
		ord := int64(x) % 9999
		pos := c.TrixelOf(ord)
		off := ord - c.CumBefore(pos)
		return off >= 0 && off < int64(c.TrixelCount(pos))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package catalog provides deterministic, seeded synthetic sky catalogs
// that stand in for the SDSS, 2MASS, and USNO-B archives of the paper's
// evaluation. A catalog is defined by a total object count and a density
// profile over the sphere; objects are materialized lazily, one coarse
// trixel at a time, so a 200-million-object archive occupies no resident
// memory until buckets are read. Materialization is a pure function of
// (catalog seed, trixel), so repeated reads return identical objects —
// the property the bucket store and cache rely on.
//
// Objects are globally ordered along the HTM space-filling curve (by
// level-14 ID, ties broken by object ID), which is the ordering LifeRaft's
// equal-sized bucket partitioning assumes (paper §3.1).
package catalog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"liferaft/internal/geom"
	"liferaft/internal/htm"
)

// Object is one catalog observation: the unit of cross-matching.
type Object struct {
	// ID is the object's unique identifier within its catalog.
	ID uint64
	// HTMID is the level-14 trixel containing the object, the paper's
	// 32-bit spatial key.
	HTMID htm.ID
	// Pos is the object's unit position vector (mean cartesian
	// coordinates in the paper's terms).
	Pos geom.Vec3
	// Mag is a synthetic magnitude used by query-specific predicates.
	Mag float64
}

// Density is a relative density profile over the sphere. Values must be
// non-negative; only ratios matter.
type Density func(v geom.Vec3) float64

// Uniform returns a constant density profile.
func Uniform() Density { return func(geom.Vec3) float64 { return 1 } }

// Band returns a density profile concentrated around the great circle
// whose pole is the given unit vector, with Gaussian fall-off of the given
// angular width (degrees) and the given peak-to-floor contrast. It mimics
// the galactic-plane concentration of real star catalogs.
func Band(pole geom.Vec3, widthDeg, contrast float64) Density {
	pole = pole.Normalize()
	w := geom.Radians(widthDeg)
	return func(v geom.Vec3) float64 {
		lat := math.Abs(math.Asin(clamp(v.Dot(pole), -1, 1))) // distance from the plane
		return 1 + contrast*math.Exp(-lat*lat/(2*w*w))
	}
}

// Hotspots returns a density profile with Gaussian bumps of the given
// angular radius (degrees) and weight at each center, over a uniform
// floor. It produces the clustered-density fields that make cross-match
// selectivity heterogeneous (paper §3.4).
func Hotspots(centers []geom.Vec3, radiusDeg, weight float64) Density {
	r := geom.Radians(radiusDeg)
	return func(v geom.Vec3) float64 {
		d := 1.0
		for _, c := range centers {
			a := v.Angle(c)
			d += weight * math.Exp(-a*a/(2*r*r))
		}
		return d
	}
}

// Sum returns the weighted sum of density profiles.
func Sum(parts ...Density) Density {
	return func(v geom.Vec3) float64 {
		t := 0.0
		for _, p := range parts {
			t += p(v)
		}
		return t
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Config describes a synthetic catalog.
type Config struct {
	// Name identifies the archive (e.g. "sdss").
	Name string
	// N is the total number of objects.
	N int
	// Seed makes generation deterministic.
	Seed int64
	// Density is the relative density profile; nil means uniform.
	Density Density
	// GenLevel is the coarse trixel level at which objects are counted
	// and materialized. Depth 6 (32k trixels) suits tests; depth 8
	// (524k trixels) matches the resolution needed for 20,000 buckets.
	GenLevel int
	// CacheTrixels memoizes materialized trixels. Generation is
	// deterministic either way; memoization only trades memory for the
	// wall-clock cost of regenerating, which experiment harnesses that
	// replay the same trace thousands of times want. Leave false for
	// paper-scale catalogs that must stay out of memory.
	CacheTrixels bool
}

// Catalog is a lazily-materialized synthetic archive. It is safe for
// concurrent use.
type Catalog struct {
	cfg    Config
	counts []int32 // objects per GenLevel trixel
	cum    []int64 // cum[i] = sum of counts[0:i]; len = trixels+1

	mu   sync.Mutex
	memo map[uint64][]Object

	// derive is non-nil for catalogs built by NewDerived.
	derive *derivation
}

// New builds a catalog: it evaluates the density at every GenLevel trixel
// center and apportions exactly cfg.N objects by the largest-remainder
// method, so Total() == cfg.N exactly.
func New(cfg Config) (*Catalog, error) {
	if cfg.N < 0 {
		return nil, fmt.Errorf("catalog %q: negative N %d", cfg.Name, cfg.N)
	}
	if cfg.GenLevel < 0 || cfg.GenLevel > 10 {
		return nil, fmt.Errorf("catalog %q: GenLevel %d out of [0,10]", cfg.Name, cfg.GenLevel)
	}
	if cfg.GenLevel >= htm.PaperLevel {
		return nil, fmt.Errorf("catalog %q: GenLevel %d must be above object level %d",
			cfg.Name, cfg.GenLevel, htm.PaperLevel)
	}
	if cfg.Density == nil {
		cfg.Density = Uniform()
	}
	n := htm.NumTrixels(cfg.GenLevel)
	weights := make([]float64, n)
	var total float64
	for pos := uint64(0); pos < n; pos++ {
		w := cfg.Density(htm.FromPos(pos, cfg.GenLevel).Center())
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("catalog %q: density returned invalid weight %v", cfg.Name, w)
		}
		weights[pos] = w
		total += w
	}
	c := &Catalog{cfg: cfg, counts: make([]int32, n), cum: make([]int64, n+1)}
	if cfg.CacheTrixels {
		c.memo = make(map[uint64][]Object)
	}
	if total > 0 && cfg.N > 0 {
		apportion(weights, total, cfg.N, c.counts)
	}
	for i, cnt := range c.counts {
		c.cum[i+1] = c.cum[i] + int64(cnt)
	}
	return c, nil
}

// apportion distributes n objects over weights by largest remainder.
func apportion(weights []float64, total float64, n int, out []int32) {
	type frac struct {
		pos int
		rem float64
	}
	fracs := make([]frac, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(n) * w / total
		fl := math.Floor(exact)
		out[i] = int32(fl)
		assigned += int(fl)
		fracs[i] = frac{pos: i, rem: exact - fl}
	}
	remain := n - assigned
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].pos < fracs[b].pos
	})
	for i := 0; i < remain; i++ {
		out[fracs[i%len(fracs)].pos]++
	}
}

// Name returns the catalog's archive name.
func (c *Catalog) Name() string { return c.cfg.Name }

// Total returns the exact total number of objects.
func (c *Catalog) Total() int { return c.cfg.N }

// GenLevel returns the coarse materialization level.
func (c *Catalog) GenLevel() int { return c.cfg.GenLevel }

// Seed returns the generation seed. Together with Name, Total, and
// GenLevel it identifies a base survey's content exactly (derived
// catalogs additionally depend on their base); the segment store
// records it so tools can re-synthesize the catalog a store was built
// from.
func (c *Catalog) Seed() int64 { return c.cfg.Seed }

// Derived reports whether the catalog was built by NewDerived (its
// content depends on a base survey, not on Seed alone).
func (c *Catalog) Derived() bool { return c.derive != nil }

// TrixelCount returns the number of objects in GenLevel trixel pos.
func (c *Catalog) TrixelCount(pos uint64) int { return int(c.counts[pos]) }

// CumBefore returns the number of objects in trixels [0, pos), i.e. the
// global ordinal of the first object of trixel pos.
func (c *Catalog) CumBefore(pos uint64) int64 { return c.cum[pos] }

// TrixelOf returns the GenLevel trixel position containing global object
// ordinal ord in [0, Total()).
//
//lifevet:allow hotpath-alloc -- the sort.Search closure does not escape (stack-allocated), and lookups run on the store-miss materialization path, not the warm loop
func (c *Catalog) TrixelOf(ord int64) uint64 {
	if ord < 0 || ord >= int64(c.cfg.N) {
		panic(fmt.Sprintf("catalog: ordinal %d out of range", ord))
	}
	// First pos with cum[pos+1] > ord.
	return uint64(sort.Search(len(c.counts), func(i int) bool { return c.cum[i+1] > ord }))
}

// TrixelObjects materializes the objects of GenLevel trixel pos, sorted by
// (level-14 HTM ID, object ID). The result is a pure function of the
// catalog seed and pos.
//
//lifevet:allow hotpath-alloc -- cold-path synthesis: objects materialize (and memoize) only on a store miss; the steady-state loop serves from the RAM cache
func (c *Catalog) TrixelObjects(pos uint64) []Object {
	n := int(c.counts[pos])
	if n == 0 {
		return nil
	}
	if c.memo != nil {
		c.mu.Lock()
		if objs, ok := c.memo[pos]; ok {
			c.mu.Unlock()
			return objs
		}
		c.mu.Unlock()
	}
	if c.derive != nil {
		objs := c.deriveTrixel(pos)
		if c.memo != nil {
			c.mu.Lock()
			c.memo[pos] = objs
			c.mu.Unlock()
		}
		return objs
	}
	base := htm.FromPos(pos, c.cfg.GenLevel)
	tri := base.Triangle()
	rng := rand.New(rand.NewSource(c.cfg.Seed ^ int64(pos*0x9E3779B97F4A7C15)))
	objs := make([]Object, n)
	for i := 0; i < n; i++ {
		p := samplePointInTriangle(rng, tri)
		objs[i] = Object{
			Pos: p,
			Mag: 14 + rng.Float64()*10, // synthetic magnitude in [14, 24)
		}
	}
	for i := range objs {
		objs[i].HTMID = htm.LookupWithin(base, objs[i].Pos, htm.PaperLevel)
	}
	sort.Slice(objs, func(a, b int) bool { return objs[a].HTMID < objs[b].HTMID })
	start := uint64(c.cum[pos])
	for i := range objs {
		objs[i].ID = start + uint64(i)
	}
	if c.memo != nil {
		c.mu.Lock()
		c.memo[pos] = objs
		c.mu.Unlock()
	}
	return objs
}

// DerivedConfig describes a catalog derived from a base survey: the same
// sky objects re-observed by a different instrument. Cross-matching is
// only meaningful between correlated catalogs — 2MASS and SDSS see the
// same stars with independent positional errors — so experiment fixtures
// build the remote archives this way.
type DerivedConfig struct {
	// Name identifies the derived archive.
	Name string
	// Seed drives the subsampling and jitter, independent of the base.
	Seed int64
	// Fraction of base objects re-observed, in (0, 1].
	Fraction float64
	// JitterRad is the 1-sigma positional error in radians
	// (arcseconds in practice).
	JitterRad float64
	// CacheTrixels memoizes materialized trixels, as in Config.
	CacheTrixels bool
}

// NewDerived builds a catalog whose objects are a deterministic subsample
// of base's objects with Gaussian positional jitter. Derived objects stay
// within their base GenLevel trixel (jitter is re-drawn smaller in the
// rare boundary case), preserving the curve-order invariants.
func NewDerived(base *Catalog, cfg DerivedConfig) (*Catalog, error) {
	if cfg.Fraction <= 0 || cfg.Fraction > 1 {
		return nil, fmt.Errorf("catalog %q: Fraction %v out of (0,1]", cfg.Name, cfg.Fraction)
	}
	if cfg.JitterRad < 0 {
		return nil, fmt.Errorf("catalog %q: negative jitter", cfg.Name)
	}
	n := htm.NumTrixels(base.cfg.GenLevel)
	c := &Catalog{
		cfg: Config{
			Name:         cfg.Name,
			Seed:         cfg.Seed,
			GenLevel:     base.cfg.GenLevel,
			CacheTrixels: cfg.CacheTrixels,
		},
		counts: make([]int32, n),
		cum:    make([]int64, n+1),
		derive: &derivation{base: base, cfg: cfg},
	}
	if cfg.CacheTrixels {
		c.memo = make(map[uint64][]Object)
	}
	total := 0
	for pos := uint64(0); pos < n; pos++ {
		cnt := 0
		for i := 0; i < int(base.counts[pos]); i++ {
			if derivedKeep(cfg.Seed, pos, i, cfg.Fraction) {
				cnt++
			}
		}
		c.counts[pos] = int32(cnt)
		total += cnt
	}
	c.cfg.N = total
	for i, cnt := range c.counts {
		c.cum[i+1] = c.cum[i] + int64(cnt)
	}
	return c, nil
}

// derivation stores the provenance of a derived catalog.
type derivation struct {
	base *Catalog
	cfg  DerivedConfig
}

// derivedKeep decides deterministically whether base object i of trixel
// pos is re-observed.
func derivedKeep(seed int64, pos uint64, i int, p float64) bool {
	x := uint64(seed) ^ pos*0x9E3779B97F4A7C15 ^ uint64(i)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < p
}

// deriveTrixel materializes a derived trixel from its base.
//
//lifevet:allow hotpath-alloc -- cold-path synthesis, reached only through TrixelObjects on a memo miss
func (c *Catalog) deriveTrixel(pos uint64) []Object {
	d := c.derive
	baseObjs := d.base.TrixelObjects(pos)
	if len(baseObjs) == 0 {
		return nil
	}
	baseTrixel := htm.FromPos(pos, c.cfg.GenLevel)
	tri := baseTrixel.Triangle()
	rng := rand.New(rand.NewSource(d.cfg.Seed ^ int64(pos*0x94D049BB133111EB)))
	out := make([]Object, 0, int(c.counts[pos]))
	for i, o := range baseObjs {
		if !derivedKeep(d.cfg.Seed, pos, i, d.cfg.Fraction) {
			continue
		}
		p := o.Pos
		sigma := d.cfg.JitterRad
		for try := 0; try < 4 && sigma > 0; try++ {
			cand := p.Add(geom.Vec3{
				X: rng.NormFloat64() * sigma,
				Y: rng.NormFloat64() * sigma,
				Z: rng.NormFloat64() * sigma,
			}).Normalize()
			if tri.Contains(cand) {
				p = cand
				break
			}
			sigma /= 2 // boundary object: damp the jitter and retry
		}
		out = append(out, Object{
			Pos: p,
			Mag: 14 + rng.Float64()*10,
		})
	}
	for i := range out {
		out[i].HTMID = htm.LookupWithin(baseTrixel, out[i].Pos, htm.PaperLevel)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].HTMID < out[b].HTMID })
	start := uint64(c.cum[pos])
	for i := range out {
		out[i].ID = start + uint64(i)
	}
	return out
}

// samplePointInTriangle draws a point approximately uniformly within a
// small spherical triangle using barycentric folding on the chord triangle
// followed by projection to the sphere.
func samplePointInTriangle(rng *rand.Rand, tri geom.Triangle) geom.Vec3 {
	u, v := rng.Float64(), rng.Float64()
	if u+v > 1 {
		u, v = 1-u, 1-v
	}
	return tri.V0.Scale(1 - u - v).Add(tri.V1.Scale(u)).Add(tri.V2.Scale(v)).Normalize()
}

// Objects materializes the global ordinal range [lo, hi), in curve order.
// It spans trixel boundaries as needed. Callers that read entire buckets
// use this: a bucket is exactly such a range.
//
//lifevet:allow hotpath-alloc -- bucket materialization is the store-miss path (charged as disk time by the cost model); warm steady-state reads come from the RAM cache
func (c *Catalog) Objects(lo, hi int64) []Object {
	if lo < 0 || hi > int64(c.cfg.N) || lo > hi {
		panic(fmt.Sprintf("catalog: range [%d,%d) out of [0,%d]", lo, hi, c.cfg.N))
	}
	if lo == hi {
		return nil
	}
	out := make([]Object, 0, hi-lo)
	pos := c.TrixelOf(lo)
	for int64(len(out)) < hi-lo {
		objs := c.TrixelObjects(pos)
		tStart := c.cum[pos]
		from := int64(0)
		if lo > tStart {
			from = lo - tStart
		}
		to := int64(len(objs))
		if hi < tStart+to {
			to = hi - tStart
		}
		out = append(out, objs[from:to]...)
		pos++
	}
	return out
}

// InCap materializes all objects whose position lies within the cap. It
// walks the GenLevel trixels covering the cap and filters. This is how a
// remote archive computes the object list it ships to the next site in a
// cross-match plan.
func (c *Catalog) InCap(cp geom.Cap) []Object {
	cover := htm.CoverCap(cp, c.cfg.GenLevel)
	var out []Object
	for _, r := range cover {
		for pos := r.Start.Pos(); pos <= r.End.Pos(); pos++ {
			if c.counts[pos] == 0 {
				continue
			}
			for _, o := range c.TrixelObjects(pos) {
				if cp.Contains(o.Pos) {
					out = append(out, o)
				}
			}
		}
	}
	return out
}

// EstimateInCap returns the approximate number of objects in the cap
// without materializing them: full trixels contribute their exact counts,
// boundary trixels contribute in proportion to an area estimate. Paper-
// scale cost-mode experiments use this to build workload queues cheaply.
func (c *Catalog) EstimateInCap(cp geom.Cap) int64 {
	cover := htm.CoverCap(cp, c.cfg.GenLevel)
	var est float64
	for _, r := range cover {
		for pos := r.Start.Pos(); pos <= r.End.Pos(); pos++ {
			cnt := float64(c.counts[pos])
			if cnt == 0 {
				continue
			}
			id := htm.FromPos(pos, c.cfg.GenLevel)
			switch id.Triangle().CapRelation(cp) {
			case geom.Inside:
				est += cnt
			case geom.Partial:
				est += cnt * capTriangleFraction(cp, id)
			}
		}
	}
	return int64(math.Round(est))
}

// capTriangleFraction estimates the fraction of a trixel's area inside the
// cap by deterministic low-discrepancy sampling.
func capTriangleFraction(cp geom.Cap, id htm.ID) float64 {
	tri := id.Triangle()
	const grid = 4 // 10 sample points from a barycentric lattice
	in, n := 0, 0
	for i := 0; i <= grid; i++ {
		for j := 0; j+i <= grid; j++ {
			u := (float64(i) + 0.5) / (grid + 1)
			v := (float64(j) + 0.5) / (grid + 1)
			if u+v >= 1 {
				continue
			}
			p := tri.V0.Scale(1 - u - v).Add(tri.V1.Scale(u)).Add(tri.V2.Scale(v)).Normalize()
			n++
			if cp.Contains(p) {
				in++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(in) / float64(n)
}

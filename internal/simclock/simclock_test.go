package simclock

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Error("real clock did not advance")
	}
	c.Sleep(-time.Hour) // must not block
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Errorf("start = %v, want Epoch", v.Now())
	}
	v.Sleep(3 * time.Second)
	if got := v.Now().Sub(Epoch); got != 3*time.Second {
		t.Errorf("after Sleep: %v", got)
	}
	v.Advance(-time.Hour) // no-op
	if got := v.Now().Sub(Epoch); got != 3*time.Second {
		t.Errorf("negative Advance moved clock: %v", got)
	}
	v.AdvanceTo(Epoch.Add(10 * time.Second))
	if got := v.Now().Sub(Epoch); got != 10*time.Second {
		t.Errorf("AdvanceTo: %v", got)
	}
	v.AdvanceTo(Epoch) // backwards: no-op
	if got := v.Now().Sub(Epoch); got != 10*time.Second {
		t.Errorf("backwards AdvanceTo moved clock: %v", got)
	}
}

func TestNewVirtualAt(t *testing.T) {
	start := time.Date(2026, 6, 12, 0, 0, 0, 0, time.UTC)
	v := NewVirtualAt(start)
	if !v.Now().Equal(start) {
		t.Errorf("start = %v", v.Now())
	}
}

func TestVirtualConcurrency(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Microsecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now().Sub(Epoch); got != 16*1000*time.Microsecond {
		t.Errorf("concurrent advances lost: %v", got)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue[int]
	rng := rand.New(rand.NewSource(3))
	times := make([]time.Duration, 100)
	for i := range times {
		times[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		q.Push(Epoch.Add(times[i]), i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	var prev time.Time
	for i := 0; i < 100; i++ {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("queue exhausted early")
		}
		if ev.At.Before(prev) {
			t.Fatalf("out of order: %v before %v", ev.At, prev)
		}
		prev = ev.At
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should fail")
	}
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue should fail")
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	var q EventQueue[string]
	at := Epoch.Add(time.Second)
	q.Push(at, "first")
	q.Push(at, "second")
	q.Push(at, "third")
	want := []string{"first", "second", "third"}
	for _, w := range want {
		ev, _ := q.Pop()
		if ev.Value != w {
			t.Errorf("got %q, want %q", ev.Value, w)
		}
	}
}

func TestPopUntil(t *testing.T) {
	var q EventQueue[int]
	for i := 0; i < 10; i++ {
		q.Push(Epoch.Add(time.Duration(i)*time.Second), i)
	}
	got := q.PopUntil(Epoch.Add(4 * time.Second))
	if len(got) != 5 {
		t.Fatalf("PopUntil returned %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.Value != i {
			t.Errorf("event %d = %d", i, ev.Value)
		}
	}
	if q.Len() != 5 {
		t.Errorf("remaining = %d", q.Len())
	}
	if got := q.PopUntil(Epoch); len(got) != 0 {
		t.Error("PopUntil before all events should return nothing")
	}
	at, ok := q.PeekTime()
	if !ok || !at.Equal(Epoch.Add(5*time.Second)) {
		t.Errorf("PeekTime = %v, %v", at, ok)
	}
}

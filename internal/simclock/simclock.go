// Package simclock abstracts time for the LifeRaft engine. Experiments
// replay hours of simulated schedule in milliseconds of wall-clock time by
// running the engine against a virtual clock whose Sleep advances a
// counter instead of blocking; production deployments use the real clock.
// All scheduling decisions (age computation, arrival replay, cost
// charging) go through this interface, so the two modes make identical
// decisions.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock supplies the current time and the ability to wait. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks (really or virtually) for d. Negative or zero
	// durations return immediately.
	Sleep(d time.Duration)
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Epoch is the default start instant for virtual clocks. Its particular
// value is irrelevant; only durations matter.
var Epoch = time.Date(2009, time.January, 4, 0, 0, 0, 0, time.UTC) // CIDR 2009

// Virtual is a discrete-event clock: Sleep advances time instantly. It is
// safe for concurrent use, though the LifeRaft engine drives it from a
// single scheduling goroutine.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at Epoch.
func NewVirtual() *Virtual { return &Virtual{now: Epoch} }

// NewVirtualAt returns a virtual clock starting at t.
func NewVirtualAt(t time.Time) *Virtual { return &Virtual{now: t} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the virtual time by d.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the clock forward by d (no-op for d <= 0).
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op:
// virtual time is monotonic.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
}

// Fork returns a clock that advances independently of c but starts at the
// same instant. For a *Virtual clock it returns a fresh Virtual at c's
// current time — the per-shard clock-charging discipline of the sharded
// engine, where K shards each charge modeled I/O to their own clock so
// concurrent shards do not serialize on one modeled disk. Any other clock
// (the real clock in particular) is returned unchanged: real time is
// naturally parallel.
func Fork(c Clock) Clock {
	if v, ok := c.(*Virtual); ok {
		return NewVirtualAt(v.Now())
	}
	return c
}

// Join advances a *Virtual clock c forward to t — the rendezvous at the
// end of a sharded run, where the parent clock adopts the latest forked
// shard clock. It is a no-op for any other clock, and for t in c's past.
func Join(c Clock, t time.Time) {
	if v, ok := c.(*Virtual); ok {
		v.AdvanceTo(t)
	}
}

// Event is a value scheduled at an instant.
type Event[T any] struct {
	At    time.Time
	Value T
	seq   uint64 // tie-break: FIFO among equal timestamps
}

// EventQueue is a time-ordered priority queue used to replay query
// arrivals. Events with equal timestamps pop in push order. The zero value
// is ready to use. Not safe for concurrent use.
type EventQueue[T any] struct {
	h   eventHeap[T]
	seq uint64
}

// Push schedules value at instant at.
func (q *EventQueue[T]) Push(at time.Time, value T) {
	q.seq++
	heap.Push(&q.h, Event[T]{At: at, Value: value, seq: q.seq})
}

// Len returns the number of pending events.
func (q *EventQueue[T]) Len() int { return len(q.h) }

// PeekTime returns the instant of the earliest event. ok is false when the
// queue is empty.
func (q *EventQueue[T]) PeekTime() (at time.Time, ok bool) {
	if len(q.h) == 0 {
		return time.Time{}, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. ok is false when the queue
// is empty.
func (q *EventQueue[T]) Pop() (ev Event[T], ok bool) {
	if len(q.h) == 0 {
		return Event[T]{}, false
	}
	return heap.Pop(&q.h).(Event[T]), true
}

// PopUntil removes and returns, in order, all events at or before t.
func (q *EventQueue[T]) PopUntil(t time.Time) []Event[T] {
	var out []Event[T]
	for len(q.h) > 0 && !q.h[0].At.After(t) {
		out = append(out, heap.Pop(&q.h).(Event[T]))
	}
	return out
}

type eventHeap[T any] []Event[T]

func (h eventHeap[T]) Len() int { return len(h) }
func (h eventHeap[T]) Less(i, j int) bool {
	if !h[i].At.Equal(h[j].At) {
		return h[i].At.Before(h[j].At)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap[T]) Push(x any)   { *h = append(*h, x.(Event[T])) }
func (h *eventHeap[T]) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

package federation

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"liferaft/internal/server"
	"liferaft/internal/simclock"
)

// TestClientTimeoutOnSilentServer: a server that accepts connections but
// never speaks must not wedge the client — the deadline fails the round
// trip promptly.
func TestClientTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Deliberately silent: hold the connection open, send nothing.
			defer conn.Close()
		}
	}()

	c := DialTimeout(ln.Addr().String(), 100*time.Millisecond)
	defer c.Close()
	start := time.Now()
	_, err = c.Archive()
	if err == nil {
		t.Fatal("round trip against a silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client took %v to fail; the deadline should fire at ~100ms", elapsed)
	}
}

// TestClientCancelAbortsInFlight: cancelling the context mid-round-trip
// (no deadline involved) unblocks the client promptly instead of waiting
// out the full client timeout.
func TestClientCancelAbortsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Complete the handshake, then go silent mid-exchange.
			go func() {
				defer conn.Close()
				fmt.Fprintf(conn, "LIFERAFT/1\n")
				buf := make([]byte, 64)
				conn.Read(buf)
				<-make(chan struct{}) // never respond
			}()
		}
	}()

	c := DialTimeout(ln.Addr().String(), 30*time.Second)
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.MatchCtx(ctx, MatchRequest{QueryID: 1, MatchRadiusArcsec: 1})
	if err == nil {
		t.Fatal("cancelled round trip succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v to unblock the round trip; want ~100ms", elapsed)
	}
}

// TestServerDropsSilentClient: a dialer that never completes the handshake
// is disconnected by the server's I/O deadline instead of pinning a
// handler goroutine.
func TestServerDropsSilentClient(t *testing.T) {
	f := newFixture(t)
	srv, err := Serve(f.sdss, "127.0.0.1:0", WithIOTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server (after emitting its handshake line) must
	// close the connection once its handshake deadline passes; reading
	// then hits EOF/reset. Our own 5s read deadline firing instead means
	// the server kept the silent connection alive.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		_, err := conn.Read(buf)
		if err == nil {
			continue // the server's handshake line
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("server never dropped the silent connection")
		}
		return // dropped by the server — expected
	}
}

// TestNodeServingLayer: a node built with NodeConfig.Serving applies
// per-tenant admission control to Match traffic and exposes the
// per-tenant breakdown through ServingStats.
func TestNodeServingLayer(t *testing.T) {
	f := newFixture(t)
	clk := simclock.NewVirtual()
	node, err := NewNode(NodeConfig{
		Catalog: fedCats[1], ObjectsPerBucket: 400, Alpha: 0.25, Clock: clk,
		Serving: &server.Config{
			Tenants: []server.TenantConfig{{Name: "limited", Rate: 0.001, Burst: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Ship a small region through Match under the limited tenant: the
	// burst admits the first request, the second bounces with a typed
	// overload error.
	ext, err := f.sdss.Extract(ExtractRequest{QueryID: 1, RA: 150, Dec: 20, RadiusDeg: 2, Selectivity: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Objects) == 0 {
		t.Fatal("empty extraction")
	}
	req := MatchRequest{QueryID: 1, MatchRadiusArcsec: 5, Objects: ext.Objects, Tenant: "limited"}
	if _, err := node.Match(req); err != nil {
		t.Fatalf("first match: %v", err)
	}
	_, err = node.Match(req)
	var over *server.OverloadError
	if !errors.As(err, &over) || over.Reason != server.OverloadRate {
		t.Fatalf("second match err = %v, want rate OverloadError", err)
	}

	st, ok := node.ServingStats()
	if !ok {
		t.Fatal("serving stats unavailable on a serving node")
	}
	if len(st.Tenants) == 0 || st.Tenants[0].Tenant != "limited" ||
		st.Tenants[0].Completed != 1 || st.Tenants[0].RejectedRate != 1 {
		t.Errorf("serving stats = %+v", st.Tenants)
	}
	// A node without a serving layer reports none.
	if _, ok := f.sdss.ServingStats(); ok {
		t.Error("plain node claims serving stats")
	}
}

// TestMatchCtxCancellation: an expired context withdraws the cross-match
// from the node's engine and surfaces the context error.
func TestMatchCtxCancellation(t *testing.T) {
	f := newFixture(t)
	ext, err := f.sdss.Extract(ExtractRequest{QueryID: 2, RA: 150, Dec: 20, RadiusDeg: 4, Selectivity: 0.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = f.twomass.MatchCtx(ctx, MatchRequest{QueryID: 2, MatchRadiusArcsec: 5, Objects: ext.Objects})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecuteCtxAborted: a cancelled context aborts the portal plan.
func TestExecuteCtxAborted(t *testing.T) {
	f := newFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.portal.ExecuteCtx(ctx, testQuery()); err == nil {
		t.Fatal("cancelled plan should fail")
	}
}

package federation

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/simclock"
)

// fedFixture builds a three-archive federation over one shared virtual
// clock: sdss is the base survey; twomass and usnob re-observe it.
type fedFixture struct {
	sdss, twomass, usnob *Node
	portal               *Portal
}

var (
	fedOnce sync.Once
	fedCats [3]*catalog.Catalog
)

func newFixture(t *testing.T) *fedFixture {
	t.Helper()
	fedOnce.Do(func() {
		base, err := catalog.New(catalog.Config{
			Name: "sdss", N: 40000, Seed: 11, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		tm, err := catalog.NewDerived(base, catalog.DerivedConfig{
			Name: "twomass", Seed: 12, Fraction: 0.7,
			JitterRad: geom.ArcsecToRad(1), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ub, err := catalog.NewDerived(base, catalog.DerivedConfig{
			Name: "usnob", Seed: 13, Fraction: 0.6,
			JitterRad: geom.ArcsecToRad(1), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fedCats = [3]*catalog.Catalog{base, tm, ub}
	})
	clk := simclock.NewVirtual()
	mk := func(c *catalog.Catalog) *Node {
		n, err := NewNode(NodeConfig{Catalog: c, ObjectsPerBucket: 400, Alpha: 0.25, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	f := &fedFixture{sdss: mk(fedCats[0]), twomass: mk(fedCats[1]), usnob: mk(fedCats[2])}
	f.portal = NewPortal()
	f.portal.Register("sdss", InProc{f.sdss})
	f.portal.Register("twomass", InProc{f.twomass})
	f.portal.Register("usnob", InProc{f.usnob})
	t.Cleanup(func() {
		f.sdss.Close()
		f.twomass.Close()
		f.usnob.Close()
	})
	return f
}

func testQuery() Query {
	return Query{
		ID: 1, RA: 150, Dec: 20, RadiusDeg: 5,
		MatchRadiusArcsec: 5, Selectivity: 0.5,
		Archives: []string{"twomass", "sdss"}, Seed: 42,
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Error("nil catalog should fail")
	}
	c, _ := catalog.New(catalog.Config{Name: "x", N: 100, Seed: 1, GenLevel: 2})
	if _, err := NewNode(NodeConfig{Catalog: c}); err == nil {
		t.Error("zero bucket size should fail")
	}
}

func TestExtractValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.sdss.Extract(ExtractRequest{Selectivity: 0, RadiusDeg: 1}); err == nil {
		t.Error("zero selectivity should fail")
	}
	if _, err := f.sdss.Extract(ExtractRequest{Selectivity: 0.5, RadiusDeg: 0}); err == nil {
		t.Error("zero radius should fail")
	}
	if _, err := f.sdss.Match(MatchRequest{}); err == nil {
		t.Error("zero match radius should fail")
	}
}

func TestExtractSubsamples(t *testing.T) {
	f := newFixture(t)
	full, err := f.sdss.Extract(ExtractRequest{
		QueryID: 1, RA: 150, Dec: 20, RadiusDeg: 5, Selectivity: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	half, err := f.sdss.Extract(ExtractRequest{
		QueryID: 1, RA: 150, Dec: 20, RadiusDeg: 5, Selectivity: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Objects) == 0 {
		t.Fatal("no objects extracted")
	}
	ratio := float64(len(half.Objects)) / float64(len(full.Objects))
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("subsample ratio %.2f, want ~0.5", ratio)
	}
}

func TestTwoArchiveCrossMatch(t *testing.T) {
	f := newFixture(t)
	rs, err := f.portal.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("cross-match of correlated catalogs found nothing")
	}
	radius := geom.ArcsecToRad(5)
	for _, row := range rs.Rows {
		a, ok1 := row.Objects["twomass"]
		b, ok2 := row.Objects["sdss"]
		if !ok1 || !ok2 {
			t.Fatal("row missing an archive")
		}
		sep := a.toCatalog().Pos.Angle(b.toCatalog().Pos)
		if sep > radius+geom.Epsilon {
			t.Fatalf("matched pair separated by %v arcsec", geom.RadToArcsec(sep))
		}
	}
	if rs.Shipped["sdss"] == 0 {
		t.Error("shipment accounting missing")
	}
	if _, ok := rs.HopElapsed["sdss"]; !ok {
		t.Error("hop timing missing")
	}
}

func TestThreeArchivePlan(t *testing.T) {
	f := newFixture(t)
	q := testQuery()
	q.Archives = []string{"twomass", "sdss", "usnob"}
	rs, err := f.portal.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("three-way cross-match found nothing")
	}
	for _, row := range rs.Rows {
		if len(row.Objects) != 3 {
			t.Fatalf("row has %d archives, want 3", len(row.Objects))
		}
	}
	// The three-way result must be a subset of the two-way result count:
	// every surviving tuple also matched at sdss.
	q2 := testQuery()
	rs2, err := f.portal.Execute(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) > len(rs2.Rows)*3 {
		t.Errorf("three-way rows %d wildly exceed two-way %d", len(rs.Rows), len(rs2.Rows))
	}
}

func TestPortalValidation(t *testing.T) {
	f := newFixture(t)
	q := testQuery()
	q.Archives = []string{"sdss"}
	if _, err := f.portal.Execute(q); err == nil {
		t.Error("single-archive plan should fail")
	}
	q = testQuery()
	q.Archives = []string{"nope", "sdss"}
	if _, err := f.portal.Execute(q); err == nil || !strings.Contains(err.Error(), "unknown archive") {
		t.Errorf("unknown archive error = %v", err)
	}
	q = testQuery()
	q.MatchRadiusArcsec = 0
	if _, err := f.portal.Execute(q); err == nil {
		t.Error("zero radius plan should fail")
	}
	got := f.portal.Archives()
	if len(got) != 3 || got[0] != "sdss" {
		t.Errorf("Archives = %v", got)
	}
}

func TestPredicatePushdown(t *testing.T) {
	f := newFixture(t)
	q := testQuery()
	q.MagLo, q.MagHi = 15, 18
	rs, err := f.portal.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rs.Rows {
		if m := row.Objects["sdss"].Mag; m < 15 || m >= 18 {
			t.Fatalf("predicate violated: mag %v", m)
		}
	}
}

func TestConcurrentPortalQueries(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := testQuery()
			q.ID = uint64(100 + i)
			q.RA = 150 + float64(i)*2
			rs, err := f.portal.Execute(q)
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = len(rs.Rows)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if counts[i] == 0 {
			t.Errorf("query %d found nothing", i)
		}
	}
}

func TestTCPTransportEquivalence(t *testing.T) {
	f := newFixture(t)
	srv, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(srv.Addr().String())
	defer cli.Close()

	name, err := cli.Archive()
	if err != nil || name != "sdss" {
		t.Fatalf("Archive() = %q, %v", name, err)
	}

	// The same requests through TCP and in-proc must agree exactly.
	ereq := ExtractRequest{QueryID: 9, RA: 150, Dec: 20, RadiusDeg: 3, Selectivity: 0.8, Seed: 5}
	over, err := cli.Extract(ereq)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.sdss.Extract(ereq)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Objects) != len(direct.Objects) {
		t.Fatalf("TCP extract %d objects, direct %d", len(over.Objects), len(direct.Objects))
	}
	for i := range over.Objects {
		if over.Objects[i] != direct.Objects[i] {
			t.Fatalf("object %d differs over TCP", i)
		}
	}

	mreq := MatchRequest{QueryID: 9, MatchRadiusArcsec: 5, Objects: over.Objects}
	mOver, err := cli.Match(mreq)
	if err != nil {
		t.Fatal(err)
	}
	mDirect, err := f.sdss.Match(mreq)
	if err != nil {
		t.Fatal(err)
	}
	if len(mOver.Pairs) != len(mDirect.Pairs) {
		t.Fatalf("TCP match %d pairs, direct %d", len(mOver.Pairs), len(mDirect.Pairs))
	}

	// Server-side errors propagate as client errors.
	if _, err := cli.Extract(ExtractRequest{Selectivity: -1, RadiusDeg: 1}); err == nil {
		t.Error("server-side validation error should propagate")
	}
	// The connection survives an application error.
	if _, err := cli.Archive(); err != nil {
		t.Errorf("connection should survive app errors: %v", err)
	}
}

func TestTCPPortalEndToEnd(t *testing.T) {
	f := newFixture(t)
	srvA, err := Serve(f.twomass, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	p := NewPortal()
	p.Register("twomass", Dial(srvA.Addr().String()))
	p.Register("sdss", Dial(srvB.Addr().String()))
	rs, err := p.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := f.portal.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(direct.Rows) {
		t.Errorf("TCP federation %d rows, in-proc %d", len(rs.Rows), len(direct.Rows))
	}
}

func TestDialFailure(t *testing.T) {
	cli := Dial("127.0.0.1:1") // nothing listens there
	if _, err := cli.Archive(); err == nil {
		t.Error("dial to dead address should fail")
	}
}

func TestServerSurvivesGarbageClient(t *testing.T) {
	f := newFixture(t)
	srv, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A client that speaks the wrong protocol version is dropped.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "HTTP/1.1\n")
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn.Read(buf) // server banner
	_, err = conn.Read(buf)
	if err == nil {
		// One more read must observe the close.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err = conn.Read(buf); err == nil {
			t.Error("server should drop protocol-mismatched clients")
		}
	}
	conn.Close()

	// A well-behaved client still works afterwards.
	cli := Dial(srv.Addr().String())
	defer cli.Close()
	if name, err := cli.Archive(); err != nil || name != "sdss" {
		t.Fatalf("healthy client broken after garbage client: %q, %v", name, err)
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	f := newFixture(t)
	srv, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	cli := Dial(addr)
	defer cli.Close()
	if _, err := cli.Archive(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The broken connection must surface as an error...
	if _, err := cli.Archive(); err == nil {
		t.Fatal("request against a closed server should fail")
	}
	// ...and a new server on the same address must be reachable again
	// through the same client (lazy re-dial).
	srv2, err := Serve(f.sdss, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if name, err := cli.Archive(); err != nil || name != "sdss" {
		t.Fatalf("reconnect failed: %q, %v", name, err)
	}
}

func TestUnknownRPCKindRejected(t *testing.T) {
	f := newFixture(t)
	srv, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(srv.Addr().String())
	defer cli.Close()
	resp, err := cli.roundTrip(rpcRequest{Kind: "bogus"})
	if err == nil {
		t.Errorf("unknown kind should error, got %+v", resp)
	}
	// Missing payloads are application errors, not connection killers.
	if _, err := cli.roundTrip(rpcRequest{Kind: "extract"}); err == nil {
		t.Error("missing extract payload should error")
	}
	if _, err := cli.roundTrip(rpcRequest{Kind: "match"}); err == nil {
		t.Error("missing match payload should error")
	}
	if _, err := cli.Archive(); err != nil {
		t.Errorf("connection should survive: %v", err)
	}
}

func TestPortalEmptyExtraction(t *testing.T) {
	f := newFixture(t)
	// A region with guaranteed-zero shipped objects (selectivity tiny in
	// an empty pole region) yields zero rows, not an error.
	q := testQuery()
	q.RA, q.Dec, q.RadiusDeg = 0, 89.9, 0.01
	q.Selectivity = 0.0001
	rs, err := f.portal.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 0 {
		t.Errorf("expected no rows, got %d", len(rs.Rows))
	}
}

func TestObjectWireRoundTrip(t *testing.T) {
	o := catalog.Object{ID: 5, HTMID: 1 << 31, Pos: geom.FromRaDec(10, 20), Mag: 17.5}
	back := fromCatalog(o).toCatalog()
	if back != o {
		t.Errorf("wire round trip: %+v != %+v", back, o)
	}
}

// TestShardedNodeEquivalence runs the same cross-match through
// single-disk nodes and through nodes sharded across 3 disks: the sharded
// engine must return exactly the same match rows.
func TestShardedNodeEquivalence(t *testing.T) {
	f := newFixture(t)
	single, err := f.portal.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}

	clk := simclock.NewVirtual()
	mk := func(c *catalog.Catalog) *Node {
		n, err := NewNode(NodeConfig{
			Catalog: c, ObjectsPerBucket: 400, Alpha: 0.25, Shards: 3, Clock: clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	sdss, twomass := mk(fedCats[0]), mk(fedCats[1])
	defer sdss.Close()
	defer twomass.Close()
	portal := NewPortal()
	portal.Register("sdss", InProc{sdss})
	portal.Register("twomass", InProc{twomass})
	sharded, err := portal.Execute(testQuery())
	if err != nil {
		t.Fatal(err)
	}

	key := func(row Row) [2]uint64 {
		return [2]uint64{row.Objects["twomass"].ID, row.Objects["sdss"].ID}
	}
	collect := func(rs *ResultSet) map[[2]uint64]bool {
		out := make(map[[2]uint64]bool, len(rs.Rows))
		for _, row := range rs.Rows {
			out[key(row)] = true
		}
		return out
	}
	a, b := collect(single), collect(sharded)
	if len(a) == 0 {
		t.Fatal("single-disk portal found nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("sharded portal found %d rows, single-disk %d", len(b), len(a))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("row %v missing from sharded result", k)
		}
	}
}

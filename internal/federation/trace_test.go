package federation

import (
	"context"
	"net"
	"testing"
	"time"

	"liferaft/internal/trace"
)

// TestTCPTracePropagation: a portal-side trace crosses the gob transport
// by ID, the remote node records a continuation on its own recorder, and
// the returned spans stitch into the caller's capture — one trace showing
// the whole plan, clocks unshared.
func TestTCPTracePropagation(t *testing.T) {
	f := newFixture(t)
	// The matched archive gets a recorder on its own (virtual) clock, as
	// NodeConfig.Tracer would install it.
	f.sdss.tracer = trace.New(trace.Config{Now: f.sdss.engine.Clock().Now})

	srvA, err := Serve(f.twomass, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := Serve(f.sdss, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	p := NewPortal()
	p.Register("twomass", Dial(srvA.Addr().String()))
	p.Register("sdss", Dial(srvB.Addr().String()))

	rec := trace.New(trace.Config{})
	tr := rec.Start("fed", 1)
	ctx := trace.NewContext(context.Background(), tr)
	rs, err := p.ExecuteCtx(ctx, testQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 {
		t.Fatal("no rows matched")
	}
	d := rec.Finish(tr)

	var extract, hop, stitched bool
	for _, sp := range d.Spans {
		switch {
		case sp.Stage == trace.StageFedExtract && sp.Node == "twomass" && sp.N > 0:
			extract = true
		case sp.Stage == trace.StageFedMatch && sp.Node == "sdss" && sp.Err == "":
			hop = true
		case sp.Node == "sdss" && sp.Stage == trace.StageService:
			stitched = true
		}
	}
	if !extract {
		t.Errorf("no federation_extract span for the driving archive: %+v", d.Spans)
	}
	if !hop {
		t.Errorf("no federation_match span for the matched archive: %+v", d.Spans)
	}
	if !stitched {
		t.Errorf("remote engine spans did not stitch into the caller's trace: %+v", d.Spans)
	}

	// The continuation also landed in the remote node's own forensics
	// rings, under the caller's trace ID.
	rd, ok := f.sdss.tracer.Get(d.TraceID)
	if !ok {
		t.Fatalf("remote recorder has no capture for trace %s", d.TraceID)
	}
	if rd.Tenant != "" && rd.Tenant != "fed" {
		t.Errorf("remote capture tenant = %q", rd.Tenant)
	}
	if len(rd.Spans) == 0 {
		t.Error("remote capture has no spans")
	}
}

// TestSilentPeerAnnotatesTrace: a hop to a peer that accepts the
// connection but never speaks times out AND leaves an error-annotated
// federation_match span in the trace — the capture shows which archive
// the plan died at, instead of being dropped.
func TestSilentPeerAnnotatesTrace(t *testing.T) {
	f := newFixture(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the connection silently
		}
	}()

	p := NewPortal()
	p.Register("twomass", InProc{f.twomass})
	p.Register("sdss", DialTimeout(ln.Addr().String(), 150*time.Millisecond))

	rec := trace.New(trace.Config{})
	tr := rec.Start("fed", 2)
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := p.ExecuteCtx(ctx, testQuery()); err == nil {
		t.Fatal("silent peer should fail the plan")
	}
	d := rec.Finish(tr)

	found := false
	for _, sp := range d.Spans {
		if sp.Stage == trace.StageFedMatch && sp.Node == "sdss" {
			if sp.Err == "" {
				t.Fatalf("hop span to silent peer has no error: %+v", sp)
			}
			if sp.End.Before(sp.Start.Add(100 * time.Millisecond)) {
				t.Errorf("hop span shorter than the dial timeout: %+v", sp)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no federation_match span for the silent peer: %+v", d.Spans)
	}
}

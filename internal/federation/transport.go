package federation

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// InProc adapts a Node to the Transport interface directly, for embedded
// federations (tests, experiments, single-process demos).
type InProc struct {
	Node *Node
}

// Archive implements Transport.
func (t InProc) Archive() (string, error) { return t.Node.Name(), nil }

// Extract implements Transport.
func (t InProc) Extract(req ExtractRequest) (ExtractResponse, error) { return t.Node.Extract(req) }

// Match implements Transport.
func (t InProc) Match(req MatchRequest) (MatchResponse, error) { return t.Node.Match(req) }

// Wire protocol: a version handshake line, then length-free gob streams of
// request/response envelopes. One request per round trip; connections are
// reused by the client transport.

// protoVersion guards against cross-version deployments.
const protoVersion = "LIFERAFT/1"

type rpcRequest struct {
	Kind    string // "archive" | "extract" | "match"
	Extract *ExtractRequest
	Match   *MatchRequest
}

type rpcResponse struct {
	Err     string
	Archive string
	Extract *ExtractResponse
	Match   *MatchResponse
}

// Server serves a Node over TCP.
type Server struct {
	node *Node
	ln   net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving node on addr (e.g. "127.0.0.1:7701"). It returns
// once the listener is bound; connections are handled in the background.
func Serve(node *Node, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("federation: listen %s: %w", addr, err)
	}
	s := &Server{node: node, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and all connections. The node itself is not
// closed (the caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// Handshake.
	if _, err := fmt.Fprintf(conn, "%s\n", protoVersion); err != nil {
		return
	}
	var client string
	if _, err := fmt.Fscanf(conn, "%s\n", &client); err != nil || client != protoVersion {
		return
	}
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp rpcResponse
		switch req.Kind {
		case "archive":
			resp.Archive = s.node.Name()
		case "extract":
			if req.Extract == nil {
				resp.Err = "federation: extract request missing payload"
				break
			}
			r, err := s.node.Extract(*req.Extract)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Extract = &r
			}
		case "match":
			if req.Match == nil {
				resp.Err = "federation: match request missing payload"
				break
			}
			r, err := s.node.Match(*req.Match)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Match = &r
			}
		default:
			resp.Err = fmt.Sprintf("federation: unknown request kind %q", req.Kind)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a TCP Transport to a remote archive node. It holds one
// connection, re-dialing on demand, and serializes round trips. It is safe
// for concurrent use.
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial returns a client for the node at addr. The connection is
// established lazily on first use.
func Dial(addr string) *Client { return &Client{addr: addr} }

func (c *Client) connect() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("federation: dial %s: %w", c.addr, err)
	}
	var server string
	if _, err := fmt.Fscanf(conn, "%s\n", &server); err != nil {
		conn.Close()
		return fmt.Errorf("federation: handshake read: %w", err)
	}
	if server != protoVersion {
		conn.Close()
		return fmt.Errorf("federation: protocol mismatch: server speaks %q", server)
	}
	if _, err := fmt.Fprintf(conn, "%s\n", protoVersion); err != nil {
		conn.Close()
		return fmt.Errorf("federation: handshake write: %w", err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

func (c *Client) roundTrip(req rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connect(); err != nil {
		return rpcResponse{}, err
	}
	var resp rpcResponse
	if err := c.enc.Encode(&req); err != nil {
		c.reset()
		return rpcResponse{}, fmt.Errorf("federation: send: %w", err)
	}
	if err := c.dec.Decode(&resp); err != nil {
		c.reset()
		return rpcResponse{}, fmt.Errorf("federation: receive: %w", err)
	}
	if resp.Err != "" {
		return rpcResponse{}, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.enc, c.dec = nil, nil, nil
	}
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
	return nil
}

// Archive implements Transport.
func (c *Client) Archive() (string, error) {
	resp, err := c.roundTrip(rpcRequest{Kind: "archive"})
	if err != nil {
		return "", err
	}
	return resp.Archive, nil
}

// Extract implements Transport.
func (c *Client) Extract(req ExtractRequest) (ExtractResponse, error) {
	resp, err := c.roundTrip(rpcRequest{Kind: "extract", Extract: &req})
	if err != nil {
		return ExtractResponse{}, err
	}
	if resp.Extract == nil {
		return ExtractResponse{}, errors.New("federation: empty extract response")
	}
	return *resp.Extract, nil
}

// Match implements Transport.
func (c *Client) Match(req MatchRequest) (MatchResponse, error) {
	resp, err := c.roundTrip(rpcRequest{Kind: "match", Match: &req})
	if err != nil {
		return MatchResponse{}, err
	}
	if resp.Match == nil {
		return MatchResponse{}, errors.New("federation: empty match response")
	}
	return *resp.Match, nil
}

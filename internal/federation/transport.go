package federation

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// InProc adapts a Node to the Transport interface directly, for embedded
// federations (tests, experiments, single-process demos).
type InProc struct {
	Node *Node
}

// Archive implements Transport.
func (t InProc) Archive() (string, error) { return t.Node.Name(), nil }

// Extract implements Transport.
func (t InProc) Extract(req ExtractRequest) (ExtractResponse, error) { return t.Node.Extract(req) }

// Match implements Transport.
func (t InProc) Match(req MatchRequest) (MatchResponse, error) { return t.Node.Match(req) }

// MatchCtx implements ContextTransport.
func (t InProc) MatchCtx(ctx context.Context, req MatchRequest) (MatchResponse, error) {
	return t.Node.MatchCtx(ctx, req)
}

// Wire protocol: a version handshake line, then length-free gob streams of
// request/response envelopes. One request per round trip; connections are
// reused by the client transport.

// protoVersion guards against cross-version deployments.
const protoVersion = "LIFERAFT/1"

type rpcRequest struct {
	Kind    string // "archive" | "extract" | "match"
	Extract *ExtractRequest
	Match   *MatchRequest
}

type rpcResponse struct {
	Err     string
	Archive string
	Extract *ExtractResponse
	Match   *MatchResponse
}

// Server serves a Node over TCP.
type Server struct {
	node *Node
	ln   net.Listener
	opts serverOpts

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// serverOpts holds the I/O pacing knobs; see the ServerOption builders.
type serverOpts struct {
	// ioTimeout bounds the handshake and each response write: a peer
	// that stops reading cannot wedge a handler goroutine forever.
	ioTimeout time.Duration
	// readIdle bounds how long a connection may sit between requests
	// (and how long a half-written request may stall mid-decode).
	readIdle time.Duration
}

// ServerOption tunes Serve.
type ServerOption func(*serverOpts)

// WithIOTimeout bounds the handshake and each response write (default 30s).
func WithIOTimeout(d time.Duration) ServerOption {
	return func(o *serverOpts) { o.ioTimeout = d }
}

// WithReadIdleTimeout bounds how long the server waits for the next (or a
// stalled mid-transfer) request on a connection (default 5m). Clients that
// reuse connections after longer think time transparently re-dial.
func WithReadIdleTimeout(d time.Duration) ServerOption {
	return func(o *serverOpts) { o.readIdle = d }
}

// Serve starts serving node on addr (e.g. "127.0.0.1:7701"). It returns
// once the listener is bound; connections are handled in the background.
// Handshake, request-read, and response-write deadlines guard every
// connection so a stalled or silent peer cannot wedge the RPC loop.
func Serve(node *Node, addr string, opts ...ServerOption) (*Server, error) {
	o := serverOpts{ioTimeout: 30 * time.Second, readIdle: 5 * time.Minute}
	for _, opt := range opts {
		opt(&o)
	}
	if o.ioTimeout <= 0 || o.readIdle <= 0 {
		return nil, fmt.Errorf("federation: non-positive server timeout")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("federation: listen %s: %w", addr, err)
	}
	s := &Server{node: node, ln: ln, opts: o, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and all connections. The node itself is not
// closed (the caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// Handshake, under the I/O deadline: a silent dialer is dropped
	// instead of pinning this goroutine.
	conn.SetDeadline(time.Now().Add(s.opts.ioTimeout))
	if _, err := fmt.Fprintf(conn, "%s\n", protoVersion); err != nil {
		return
	}
	var client string
	if _, err := fmt.Fscanf(conn, "%s\n", &client); err != nil || client != protoVersion {
		return
	}
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		// Reading the next request may idle legitimately (a client
		// holding the connection between queries) but not forever.
		conn.SetDeadline(time.Now().Add(s.opts.readIdle))
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp rpcResponse
		switch req.Kind {
		case "archive":
			resp.Archive = s.node.Name()
		case "extract":
			if req.Extract == nil {
				resp.Err = "federation: extract request missing payload"
				break
			}
			r, err := s.node.Extract(*req.Extract)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Extract = &r
			}
		case "match":
			if req.Match == nil {
				resp.Err = "federation: match request missing payload"
				break
			}
			// Bound the engine-side work like the peer's patience: a match
			// still running after the read-idle window would only find a
			// torn connection to reply to, so withdraw it from the engine's
			// queues instead of wedging this handler goroutine forever.
			ctx, cancel := context.WithTimeout(context.Background(), s.opts.readIdle)
			r, err := s.node.MatchCtx(ctx, *req.Match)
			cancel()
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Match = &r
			}
		default:
			resp.Err = fmt.Sprintf("federation: unknown request kind %q", req.Kind)
		}
		// The response write gets the tighter I/O deadline: the request
		// has been serviced, and a peer that stopped reading must not
		// wedge the handler.
		conn.SetDeadline(time.Now().Add(s.opts.ioTimeout))
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Client is a TCP Transport to a remote archive node. It holds one
// connection, re-dialing on demand, and serializes round trips. Every
// round trip runs under a deadline so a stalled or silent server surfaces
// as a prompt error instead of wedging the caller forever. It is safe for
// concurrent use.
type Client struct {
	addr    string
	timeout time.Duration

	mu       sync.Mutex
	conn     net.Conn
	enc      *gob.Encoder
	dec      *gob.Decoder
	lastUsed time.Time
}

// DefaultClientTimeout bounds a client round trip (including the dial and
// handshake) unless DialTimeout overrides it.
const DefaultClientTimeout = 30 * time.Second

// clientIdleReuse is the age past which a held connection is proactively
// re-dialed instead of reused: it stays safely under the server's default
// read-idle timeout, so a request never races the server dropping the
// connection.
const clientIdleReuse = time.Minute

// Dial returns a client for the node at addr. The connection is
// established lazily on first use.
func Dial(addr string) *Client { return DialTimeout(addr, DefaultClientTimeout) }

// DialTimeout is Dial with an explicit per-round-trip deadline.
func DialTimeout(addr string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	return &Client{addr: addr, timeout: timeout}
}

func (c *Client) connect(deadline time.Time) error {
	if c.conn != nil {
		// A connection idle longer than the server tolerates is
		// re-dialed rather than raced.
		if time.Since(c.lastUsed) < clientIdleReuse {
			return nil
		}
		c.reset()
	}
	conn, err := net.DialTimeout("tcp", c.addr, time.Until(deadline))
	if err != nil {
		return fmt.Errorf("federation: dial %s: %w", c.addr, err)
	}
	conn.SetDeadline(deadline)
	var server string
	if _, err := fmt.Fscanf(conn, "%s\n", &server); err != nil {
		conn.Close()
		return fmt.Errorf("federation: handshake read: %w", err)
	}
	if server != protoVersion {
		conn.Close()
		return fmt.Errorf("federation: protocol mismatch: server speaks %q", server)
	}
	if _, err := fmt.Fprintf(conn, "%s\n", protoVersion); err != nil {
		conn.Close()
		return fmt.Errorf("federation: handshake write: %w", err)
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	return nil
}

//lifevet:allow ctxflow -- compat shim: the ctx-less entry point's documented root; every deadline-carrying path calls roundTripCtx directly
func (c *Client) roundTrip(req rpcRequest) (rpcResponse, error) {
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx runs one request/response exchange under the earlier of the
// client timeout and the context deadline. An explicit ctx cancellation
// (Done fired without a deadline — an abandoned caller) aborts in-flight
// I/O immediately by expiring the connection deadline, and the torn
// connection is discarded rather than reused.
//
//lifevet:allow lockdiscipline -- c.mu intentionally serializes the whole exchange: the client models one in-flight RPC per connection, every network op is deadline-bounded, and no hot scheduling path contends on this lock
func (c *Client) roundTripCtx(ctx context.Context, req rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return rpcResponse{}, fmt.Errorf("federation: %w", err)
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	// watch expires conn's deadline the moment ctx is cancelled
	// (net.Conn deadlines are safe to set concurrently); the returned
	// stop ends the watch.
	watch := func(conn net.Conn) func() {
		if ctx.Done() == nil {
			return func() {}
		}
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		return func() { close(stop) }
	}
	defer func() {
		// A cancelled exchange leaves the stream mid-message: never
		// reuse the connection.
		if ctx.Err() != nil {
			c.reset()
		}
	}()

	if err := c.connect(deadline); err != nil {
		return rpcResponse{}, err
	}
	c.conn.SetDeadline(deadline)
	c.lastUsed = time.Now()
	stop := watch(c.conn)
	var resp rpcResponse
	if err := c.enc.Encode(&req); err != nil {
		// A reused connection may have been dropped server-side while
		// idle; one fresh dial retries the (not yet executed) request.
		stop()
		c.reset()
		if err2 := c.connect(deadline); err2 != nil {
			return rpcResponse{}, fmt.Errorf("federation: send: %w", err)
		}
		c.conn.SetDeadline(deadline)
		stop = watch(c.conn)
		if err2 := c.enc.Encode(&req); err2 != nil {
			stop()
			c.reset()
			return rpcResponse{}, fmt.Errorf("federation: send: %w", err2)
		}
	}
	if err := c.dec.Decode(&resp); err != nil {
		stop()
		c.reset()
		return rpcResponse{}, fmt.Errorf("federation: receive: %w", err)
	}
	stop()
	c.lastUsed = time.Now()
	if resp.Err != "" {
		return rpcResponse{}, errors.New(resp.Err)
	}
	return resp, nil
}

func (c *Client) reset() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.enc, c.dec = nil, nil, nil
	}
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
	return nil
}

// Archive implements Transport.
func (c *Client) Archive() (string, error) {
	resp, err := c.roundTrip(rpcRequest{Kind: "archive"})
	if err != nil {
		return "", err
	}
	return resp.Archive, nil
}

// Extract implements Transport.
func (c *Client) Extract(req ExtractRequest) (ExtractResponse, error) {
	resp, err := c.roundTrip(rpcRequest{Kind: "extract", Extract: &req})
	if err != nil {
		return ExtractResponse{}, err
	}
	if resp.Extract == nil {
		return ExtractResponse{}, errors.New("federation: empty extract response")
	}
	return *resp.Extract, nil
}

// Match implements Transport.
//
//lifevet:allow ctxflow -- compat shim for the ctx-less Transport API: the fresh root is the documented semantic ("no deadline"); deadline-carrying callers use MatchCtx
func (c *Client) Match(req MatchRequest) (MatchResponse, error) {
	return c.MatchCtx(context.Background(), req)
}

// MatchCtx implements ContextTransport: the context deadline tightens the
// round-trip deadline, so an abandoned federation query stops waiting on
// the remote hop promptly. (The remote engine's own cancellation still
// requires the remote node's serving-layer deadline; the wire protocol
// carries no cancel message.)
func (c *Client) MatchCtx(ctx context.Context, req MatchRequest) (MatchResponse, error) {
	resp, err := c.roundTripCtx(ctx, rpcRequest{Kind: "match", Match: &req})
	if err != nil {
		return MatchResponse{}, err
	}
	if resp.Match == nil {
		return MatchResponse{}, errors.New("federation: empty match response")
	}
	return *resp.Match, nil
}

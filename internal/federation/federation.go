// Package federation reproduces the SkyQuery execution environment the
// paper targets (§1, §3; Malik et al., CIDR 2003): a portal accepts a
// cross-match query naming several archives, produces a serial left-deep
// join plan, and ships intermediate object lists from archive to archive
// until all are cross-matched. Each archive node runs its own LifeRaft
// engine and batches the cross-match workloads of concurrent queries
// independently (§6: "Our solution allows individual sites in a cluster or
// federation to batch queries independently").
//
// Two transports are provided: in-process (for tests, experiments, and
// embedding) and TCP with gob encoding (cmd/liferaftd, cmd/skyquery).
package federation

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
	"liferaft/internal/server"
	"liferaft/internal/simclock"
	"liferaft/internal/trace"
	"liferaft/internal/xmatch"
)

// Object is the wire form of a catalog object shipped between sites.
type Object struct {
	ID    uint64
	HTMID uint64
	X, Y  float64
	Z     float64
	Mag   float64
}

func fromCatalog(o catalog.Object) Object {
	return Object{ID: o.ID, HTMID: uint64(o.HTMID), X: o.Pos.X, Y: o.Pos.Y, Z: o.Pos.Z, Mag: o.Mag}
}

func (o Object) toCatalog() catalog.Object {
	return catalog.Object{ID: o.ID, HTMID: htm.ID(o.HTMID), Pos: geom.Vec3{X: o.X, Y: o.Y, Z: o.Z}, Mag: o.Mag}
}

// ExtractRequest asks an archive for its objects within a region — the
// first step of the plan, run at the driving archive.
type ExtractRequest struct {
	QueryID     uint64
	RA, Dec     float64 // degrees
	RadiusDeg   float64
	Selectivity float64 // fraction of region objects shipped, (0,1]
	Seed        int64   // subsampling seed
}

// ExtractResponse returns the region objects.
type ExtractResponse struct {
	Objects []Object
}

// MatchRequest ships an intermediate object list to an archive for
// cross-matching against its local catalog through its LifeRaft engine.
type MatchRequest struct {
	QueryID           uint64
	MatchRadiusArcsec float64
	// MagLo/MagHi optionally filter local counterparts; both zero means
	// no predicate.
	MagLo, MagHi float64
	Objects      []Object
	// Tenant identifies the client for the node's admission control;
	// empty means the default tenant. Ignored by nodes without a serving
	// layer (NodeConfig.Serving).
	Tenant string
	// TraceID, when non-zero, asks the node to record the cross-match
	// into a continuation of the caller's trace (NodeConfig.Tracer) and
	// return the spans in MatchResponse.Spans. Zero disables tracing for
	// the hop. Old peers ignore the field (gob skips unknown fields), so
	// the addition is wire-compatible.
	TraceID uint64
}

// MatchPair is one (local, shipped) match.
type MatchPair struct {
	Local  Object
	Remote Object
}

// MatchResponse returns the matches found at the archive.
type MatchResponse struct {
	Pairs []MatchPair
	// Elapsed is the node-side processing time (virtual or real,
	// depending on the node's clock).
	Elapsed time.Duration
	// Spans carries the node-side trace continuation when the request
	// asked for one (MatchRequest.TraceID): span times are nanosecond
	// offsets from the hop's start on the node's clock, so the caller can
	// stitch them onto its own time base (trace.Trace.Stitch) without the
	// two clocks sharing an epoch.
	Spans []trace.WireSpan
}

// Transport reaches one archive.
type Transport interface {
	// Archive returns the archive name served.
	Archive() (string, error)
	// Extract runs a region extraction.
	Extract(req ExtractRequest) (ExtractResponse, error)
	// Match runs a cross-match.
	Match(req MatchRequest) (MatchResponse, error)
}

// NodeConfig configures an archive node.
type NodeConfig struct {
	// Catalog is the node's local archive.
	Catalog *catalog.Catalog
	// ObjectsPerBucket partitions the archive (paper: 10,000).
	ObjectsPerBucket int
	// Engine configures the node's LifeRaft engine. Store/Disk/Clock
	// fields are constructed by NewNode and must be nil; set policy
	// knobs (Alpha, CacheBuckets, ...) only.
	Alpha        float64
	CacheBuckets int
	// Shards runs the node's engine across K independent disk/worker
	// shards (see core.Config.Shards); 0 or 1 is the single-disk
	// engine. Each site in a federation shards independently, exactly
	// as each site batches independently.
	Shards int
	// Clock is the node's time source: virtual clocks make node-side
	// cost charging instantaneous (tests, experiments); nil means the
	// real clock (deployments).
	Clock simclock.Clock
	// Serving, when non-nil, puts a multi-tenant serving layer —
	// per-tenant rate limits, deficit-round-robin fair queueing, and
	// bounded queues with backpressure — between the transports and the
	// engine (see internal/server). MatchRequest.Tenant selects the
	// tenant; rejected queries surface *server.OverloadError.
	Serving *server.Config
	// DataDir, when non-empty, serves this node's buckets from the
	// segment store under it (built beforehand; see segment.Ensure and
	// skygen -write-segments) instead of the analytic disk model. The
	// engine then does real I/O on the real clock, so Clock must be nil
	// or the real clock.
	DataDir string
	// ObjectBytes is the on-disk size per object for the node's
	// partition (0 = the paper's 4 KiB). A file-backed node's segment
	// store must have been written with the same value.
	ObjectBytes int64
	// CacheDir, when non-empty on a file-backed node (DataDir set),
	// layers the persistent disk cache tier under that directory between
	// the engine and the segment files: bucket-group regions are cached
	// as checksummed files served via mmap, and the tier restarts warm.
	// Ignored without DataDir.
	CacheDir string
	// DiskTierBytes bounds the disk tier's cached data (0 with CacheDir
	// set is an error — an unbounded tier would eat the volume).
	DiskTierBytes int64
	// PrefetchDepth, when > 0, has the engine prefetch the top-K buckets
	// of its own Ut/age orderings into the disk tier after every pick
	// (see core.Config.PrefetchDepth). Requires CacheDir.
	PrefetchDepth int
	// PrefetchInflight bounds concurrent background promotions (0 = the
	// tier default).
	PrefetchInflight int
	// Metrics, when non-nil, instruments the node's engine on that
	// registry (pick latency, cache hit/miss, store reads, per-shard);
	// pair it with Serving.Registry to cover the request path end to
	// end. One EngineMetrics must not be shared across nodes — each node
	// needs its own registry.
	Metrics *core.EngineMetrics
	// Tracer, when non-nil, lets remote callers continue their traces on
	// this node: a MatchRequest with a TraceID gets a node-side trace
	// continuation whose spans return in MatchResponse.Spans (and land in
	// this node's own /debug/traces rings under the caller's trace ID).
	Tracer *trace.Recorder
}

// Node is one archive site: a catalog, its bucket partition, and a live
// LifeRaft engine batching concurrent cross-match requests — optionally
// behind a multi-tenant serving layer.
type Node struct {
	name    string
	cat     *catalog.Catalog
	part    *bucket.Partition
	store   *bucket.Store // closed on Close (releases a file backend)
	engine  *core.Live
	serving *server.Server  // nil without NodeConfig.Serving
	tracer  *trace.Recorder // nil without NodeConfig.Tracer

	mu     sync.Mutex
	nextID uint64
}

// NewNode builds and starts an archive node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("federation: NodeConfig.Catalog is required")
	}
	if cfg.ObjectsPerBucket <= 0 {
		return nil, fmt.Errorf("federation: ObjectsPerBucket must be positive")
	}
	part, err := bucket.NewPartition(cfg.Catalog, cfg.ObjectsPerBucket, cfg.ObjectBytes)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = simclock.Real{}
	}
	var ecfg core.Config
	switch {
	case cfg.DataDir != "" && cfg.CacheDir != "":
		if _, virtual := clk.(*simclock.Virtual); virtual {
			return nil, fmt.Errorf("federation: DataDir does real I/O and needs the real clock, not a virtual one")
		}
		if cfg.DiskTierBytes <= 0 {
			return nil, fmt.Errorf("federation: CacheDir requires a positive DiskTierBytes bound")
		}
		ecfg, err = core.NewFileBackedTiered(part, cfg.Alpha, true, cfg.DataDir, core.TierOptions{
			Dir:              cfg.CacheDir,
			CapacityBytes:    cfg.DiskTierBytes,
			PrefetchDepth:    cfg.PrefetchDepth,
			PrefetchInflight: cfg.PrefetchInflight,
		})
		if err != nil {
			return nil, err
		}
	case cfg.DataDir != "":
		if _, virtual := clk.(*simclock.Virtual); virtual {
			return nil, fmt.Errorf("federation: DataDir does real I/O and needs the real clock, not a virtual one")
		}
		if cfg.PrefetchDepth > 0 {
			return nil, fmt.Errorf("federation: PrefetchDepth requires CacheDir (the disk tier is the prefetch target)")
		}
		ecfg, err = core.NewFileBacked(part, cfg.Alpha, true, cfg.DataDir)
		if err != nil {
			return nil, err
		}
	default:
		if cfg.CacheDir != "" || cfg.PrefetchDepth > 0 {
			return nil, fmt.Errorf("federation: CacheDir/PrefetchDepth require a file-backed node (DataDir)")
		}
		ecfg = core.NewOn(part, cfg.Alpha, true, clk)
	}
	if cfg.CacheBuckets > 0 {
		ecfg.CacheBuckets = cfg.CacheBuckets
	}
	ecfg.Shards = cfg.Shards
	ecfg.Metrics = cfg.Metrics
	eng, err := core.NewLive(ecfg)
	if err != nil {
		ecfg.Store.Close()
		return nil, err
	}
	n := &Node{name: cfg.Catalog.Name(), cat: cfg.Catalog, part: part, store: ecfg.Store, engine: eng, tracer: cfg.Tracer}
	if cfg.Serving != nil {
		srv, err := server.New(eng, *cfg.Serving)
		if err != nil {
			eng.Close()
			ecfg.Store.Close()
			return nil, err
		}
		n.serving = srv
	}
	return n, nil
}

// Close drains the serving layer (if any), shuts the node's engine down
// after draining, then releases the store (a file-backed node's segment
// handles).
func (n *Node) Close() error {
	var err error
	if n.serving != nil {
		err = n.serving.Close()
	}
	if cerr := n.engine.Close(); err == nil {
		err = cerr
	}
	if cerr := n.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Serving returns the node's serving layer, nil for nodes built without
// one (the HTTP gateway backs /v1/stats with it).
func (n *Node) Serving() *server.Server { return n.serving }

// ServingStats snapshots the node's serving layer; ok is false for nodes
// built without one.
func (n *Node) ServingStats() (server.Stats, bool) {
	if n.serving == nil {
		return server.Stats{}, false
	}
	return n.serving.Stats(), true
}

// Name returns the archive name.
func (n *Node) Name() string { return n.name }

// Extract implements the driving-archive region scan.
func (n *Node) Extract(req ExtractRequest) (ExtractResponse, error) {
	if req.Selectivity <= 0 || req.Selectivity > 1 {
		return ExtractResponse{}, fmt.Errorf("federation: selectivity %v out of (0,1]", req.Selectivity)
	}
	if req.RadiusDeg <= 0 {
		return ExtractResponse{}, fmt.Errorf("federation: non-positive radius")
	}
	cap := geom.NewCap(geom.FromRaDec(req.RA, req.Dec), geom.Radians(req.RadiusDeg))
	var out []Object
	for _, o := range n.cat.InCap(cap) {
		if subsample(req.Seed, req.QueryID, o.ID, req.Selectivity) {
			out = append(out, fromCatalog(o))
		}
	}
	return ExtractResponse{Objects: out}, nil
}

// Match implements the cross-match step: the shipped objects become a
// LifeRaft job; the node's engine batches it with other in-flight queries.
//
//lifevet:allow ctxflow -- compat shim for the ctx-less Transport API: the fresh root is the documented semantic ("no deadline"); deadline-carrying callers use MatchCtx
func (n *Node) Match(req MatchRequest) (MatchResponse, error) {
	return n.MatchCtx(context.Background(), req)
}

// MatchCtx is Match with deadline and cancellation threading: when ctx
// expires before the cross-match completes, the query is withdrawn all the
// way into the engine's workload queues (abandoned work stops consuming
// schedule slots) and ctx.Err() is returned. On a node with a serving
// layer, the request passes admission control first: rejected queries
// surface *server.OverloadError without ever reaching the engine.
func (n *Node) MatchCtx(ctx context.Context, req MatchRequest) (MatchResponse, error) {
	if req.MatchRadiusArcsec <= 0 {
		return MatchResponse{}, fmt.Errorf("federation: non-positive match radius")
	}
	// Fail fast on a dead context: on a virtual clock the engine could
	// otherwise complete the whole job before a cancel reaches it.
	if err := ctx.Err(); err != nil {
		return MatchResponse{}, fmt.Errorf("federation: node %s: query %d: %w", n.name, req.QueryID, err)
	}
	radius := geom.ArcsecToRad(req.MatchRadiusArcsec)
	// A trace reaches this node one of two ways: an in-process caller
	// carries it in ctx (its spans record straight into the caller's
	// trace), while a remote caller names it by ID and gets a node-side
	// continuation on this node's own recorder — finished here so the hop
	// lands in this node's forensics rings under the caller's trace ID,
	// with its spans shipped back in MatchResponse.Spans for stitching.
	tr := trace.FromContext(ctx)
	remote := false
	if tr == nil && req.TraceID != 0 && n.tracer != nil {
		tr = n.tracer.StartRemote(trace.ID(req.TraceID), req.Tenant, req.QueryID)
		if tr != nil {
			remote = true
			ctx = trace.NewContext(ctx, tr)
			defer n.tracer.Finish(tr)
		}
	}
	// Engine job IDs are node-local: remote query IDs from different
	// portals may collide.
	n.mu.Lock()
	n.nextID++
	jobID := n.nextID
	n.mu.Unlock()

	wos := make([]xmatch.WorkloadObject, len(req.Objects))
	for i, o := range req.Objects {
		wos[i] = xmatch.NewWorkloadObject(jobID, o.toCatalog(), radius)
	}
	var pred xmatch.Predicate
	if req.MagLo != 0 || req.MagHi != 0 {
		pred = xmatch.MagnitudeWindow(req.MagLo, req.MagHi)
	}
	job := core.Job{ID: jobID, Objects: wos, Pred: pred, Trace: tr}
	start := time.Now()
	var (
		ch  <-chan core.Result
		err error
	)
	if n.serving != nil {
		tenant := req.Tenant
		if tenant == "" {
			tenant = "default"
		}
		ch, err = n.serving.Submit(ctx, tenant, job)
	} else {
		ch, err = n.engine.SubmitCtx(ctx, job)
	}
	if err != nil {
		return MatchResponse{}, fmt.Errorf("federation: node %s: %w", n.name, err)
	}
	res, ok := <-ch
	if !ok {
		return MatchResponse{}, fmt.Errorf("federation: node %s dropped query", n.name)
	}
	if res.Cancelled {
		if err := ctx.Err(); err != nil {
			return MatchResponse{}, fmt.Errorf("federation: node %s: query %d: %w", n.name, req.QueryID, err)
		}
		return MatchResponse{}, fmt.Errorf("federation: node %s: query %d cancelled", n.name, req.QueryID)
	}
	resp := MatchResponse{Elapsed: time.Since(start)}
	for _, p := range res.Pairs {
		resp.Pairs = append(resp.Pairs, MatchPair{Local: fromCatalog(p.Local), Remote: fromCatalog(p.Remote)})
	}
	if remote {
		resp.Spans = tr.Wire()
	}
	return resp, nil
}

func subsample(seed int64, qid, oid uint64, p float64) bool {
	x := uint64(seed) ^ qid*0x9E3779B97F4A7C15 ^ oid*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < p
}

// Query is a federation cross-match query as the portal accepts it.
type Query struct {
	ID                uint64
	RA, Dec           float64 // region center, degrees
	RadiusDeg         float64
	MatchRadiusArcsec float64
	// Archives lists the archives to cross-match; the first is the
	// driving archive of the left-deep plan.
	Archives []string
	// Selectivity is the shipped fraction at the driving archive.
	Selectivity float64
	// MagLo/MagHi optionally constrain every matched archive's objects.
	MagLo, MagHi float64
	// Seed drives deterministic subsampling.
	Seed int64
	// Tenant identifies the submitting client to each archive's
	// admission control (empty = default tenant).
	Tenant string
}

// Row is one result tuple: the object observed by each archive.
type Row struct {
	Objects map[string]Object
}

// ResultSet is the portal's answer.
type ResultSet struct {
	Rows []Row
	// HopElapsed records per-archive processing time in plan order.
	HopElapsed map[string]time.Duration
	// Shipped records how many objects were sent to each archive.
	Shipped map[string]int
}

// Portal plans and executes federation queries.
type Portal struct {
	mu    sync.Mutex
	sites map[string]Transport
}

// NewPortal returns an empty portal.
func NewPortal() *Portal { return &Portal{sites: make(map[string]Transport)} }

// Register adds an archive transport. Registering a name twice replaces
// the previous transport.
func (p *Portal) Register(name string, t Transport) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sites[name] = t
}

// Archives returns the registered archive names, sorted.
func (p *Portal) Archives() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.sites))
	for n := range p.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (p *Portal) site(name string) (Transport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.sites[name]
	if !ok {
		return nil, fmt.Errorf("federation: unknown archive %q", name)
	}
	return t, nil
}

// ContextTransport is the optional extension of Transport for carrying a
// deadline/cancellation context across a cross-match hop; InProc and the
// TCP Client implement it. ExecuteCtx uses it when present and falls back
// to the plain Match otherwise.
type ContextTransport interface {
	MatchCtx(ctx context.Context, req MatchRequest) (MatchResponse, error)
}

// Execute runs the serial left-deep plan: extract at the driving archive,
// then cross-match the surviving tuple frontier at each subsequent
// archive, shipping intermediate results site to site (paper §3:
// "intermediate join results are shipped from database to database until
// all archives are cross-matched").
//
//lifevet:allow ctxflow -- compat shim for the ctx-less portal API: the fresh root is the documented semantic ("no deadline"); deadline-carrying callers use ExecuteCtx
func (p *Portal) Execute(q Query) (*ResultSet, error) {
	return p.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx is Execute with the caller's context threaded through every
// hop: when ctx expires, the in-flight hop's query is cancelled at its
// archive (dropping its remaining workload objects from that node's
// queues) and the plan aborts.
func (p *Portal) ExecuteCtx(ctx context.Context, q Query) (*ResultSet, error) {
	if len(q.Archives) < 2 {
		return nil, fmt.Errorf("federation: cross-match needs >= 2 archives, got %d", len(q.Archives))
	}
	if q.MatchRadiusArcsec <= 0 {
		return nil, fmt.Errorf("federation: non-positive match radius")
	}
	// The caller's trace (if any) rides in ctx: the extraction and every
	// hop get a portal-side span, and each hop's node-side spans are
	// stitched in, so one capture shows the whole left-deep plan.
	tr := trace.FromContext(ctx)
	driving := q.Archives[0]
	site, err := p.site(driving)
	if err != nil {
		return nil, err
	}
	var stepStart time.Time
	if tr != nil {
		stepStart = tr.Now()
	}
	ext, err := site.Extract(ExtractRequest{
		QueryID: q.ID, RA: q.RA, Dec: q.Dec, RadiusDeg: q.RadiusDeg,
		Selectivity: q.Selectivity, Seed: q.Seed,
	})
	if err != nil {
		if tr != nil {
			tr.Add(trace.Span{Stage: trace.StageFedExtract, Node: driving,
				Start: stepStart, End: tr.Now(), Err: err.Error()})
		}
		return nil, fmt.Errorf("federation: extract at %s: %w", driving, err)
	}
	if tr != nil {
		tr.Add(trace.Span{Stage: trace.StageFedExtract, Node: driving,
			Start: stepStart, End: tr.Now(), N: int64(len(ext.Objects))})
	}

	rs := &ResultSet{
		HopElapsed: make(map[string]time.Duration),
		Shipped:    make(map[string]int),
	}
	// The frontier holds one entry per live tuple: the object the next
	// archive must match against (the most recently joined object).
	rows := make([]Row, len(ext.Objects))
	frontier := make([]Object, len(ext.Objects))
	for i, o := range ext.Objects {
		rows[i] = Row{Objects: map[string]Object{driving: o}}
		frontier[i] = o
	}

	for _, archive := range q.Archives[1:] {
		if len(rows) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("federation: plan aborted before %s: %w", archive, err)
		}
		site, err := p.site(archive)
		if err != nil {
			return nil, err
		}
		// Ship the frontier, deduplicated by object ID.
		uniq := make(map[uint64]Object, len(frontier))
		for _, o := range frontier {
			uniq[o.ID] = o
		}
		shipped := make([]Object, 0, len(uniq))
		for _, o := range uniq {
			shipped = append(shipped, o)
		}
		sort.Slice(shipped, func(i, j int) bool { return shipped[i].ID < shipped[j].ID })
		rs.Shipped[archive] = len(shipped)

		mreq := MatchRequest{
			QueryID: q.ID, MatchRadiusArcsec: q.MatchRadiusArcsec,
			MagLo: q.MagLo, MagHi: q.MagHi, Objects: shipped, Tenant: q.Tenant,
			TraceID: uint64(tr.ID()),
		}
		if tr != nil {
			stepStart = tr.Now()
		}
		var resp MatchResponse
		if ct, ok := site.(ContextTransport); ok {
			resp, err = ct.MatchCtx(ctx, mreq)
		} else {
			resp, err = site.Match(mreq)
		}
		if err != nil {
			// A failed hop — a silent peer, a timeout, an overloaded node —
			// annotates the trace instead of dropping it: the capture shows
			// which archive the plan died at and after how long.
			if tr != nil {
				tr.Add(trace.Span{Stage: trace.StageFedMatch, Node: archive,
					Start: stepStart, End: tr.Now(), N: int64(len(shipped)), Err: err.Error()})
			}
			return nil, fmt.Errorf("federation: match at %s: %w", archive, err)
		}
		if tr != nil {
			tr.Add(trace.Span{Stage: trace.StageFedMatch, Node: archive,
				Start: stepStart, End: tr.Now(), N: int64(len(shipped))})
			// A TCP hop returns the node-side continuation as offsets from
			// the hop start; rebase them onto this trace's clock. An
			// in-process hop recorded straight into tr (Spans is empty).
			tr.Stitch(archive, stepStart, resp.Spans)
		}
		rs.HopElapsed[archive] = resp.Elapsed

		// Join: each tuple whose frontier object matched extends by the
		// local counterpart(s); tuples without matches are dropped.
		byRemote := make(map[uint64][]Object)
		for _, pr := range resp.Pairs {
			byRemote[pr.Remote.ID] = append(byRemote[pr.Remote.ID], pr.Local)
		}
		var nextRows []Row
		var nextFrontier []Object
		for i, row := range rows {
			for _, local := range byRemote[frontier[i].ID] {
				nr := Row{Objects: make(map[string]Object, len(row.Objects)+1)}
				for k, v := range row.Objects {
					nr.Objects[k] = v
				}
				nr.Objects[archive] = local
				nextRows = append(nextRows, nr)
				nextFrontier = append(nextFrontier, local)
			}
		}
		rows, frontier = nextRows, nextFrontier
	}
	rs.Rows = rows
	return rs, nil
}

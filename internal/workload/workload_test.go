package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/metrics"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultTraceConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultTraceConfig(1)
	mutations := []func(*TraceConfig){
		func(c *TraceConfig) { c.NumQueries = 0 },
		func(c *TraceConfig) { c.Hotspots = -1 },
		func(c *TraceConfig) { c.HotFraction = 1.5 },
		func(c *TraceConfig) { c.Stickiness = -0.1 },
		func(c *TraceConfig) { c.MinRadiusDeg = 0 },
		func(c *TraceConfig) { c.MaxRadiusDeg = 0.1 },
		func(c *TraceConfig) { c.MinSelectivity = 0 },
		func(c *TraceConfig) { c.MaxSelectivity = 2 },
		func(c *TraceConfig) { c.MatchRadiusArcsec = 0 },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate with mutation %d should fail", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultTraceConfig(99)
	cfg.NumQueries = 200
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg)
	if !reflect.DeepEqual(a.Queries, b.Queries) {
		t.Error("same seed produced different traces")
	}
	cfg2 := cfg
	cfg2.Seed = 100
	c, _ := Generate(cfg2)
	if reflect.DeepEqual(a.Queries, c.Queries) {
		t.Error("different seeds produced identical traces")
	}
}

func TestTraceShape(t *testing.T) {
	cfg := DefaultTraceConfig(7)
	cfg.NumQueries = 2000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Queries) != 2000 || len(tr.Hotspots) != cfg.Hotspots {
		t.Fatalf("trace sizes: %d queries, %d hotspots", len(tr.Queries), len(tr.Hotspots))
	}
	hot := 0
	for i, q := range tr.Queries {
		if q.ID != uint64(i) {
			t.Fatalf("query %d has ID %d", i, q.ID)
		}
		if q.Hot {
			hot++
		}
		r := geom.Degrees(q.RadiusRad)
		if r < cfg.MinRadiusDeg-1e-9 || r > cfg.MaxRadiusDeg+1e-9 {
			t.Fatalf("query %d radius %v out of bounds", i, r)
		}
		if q.Selectivity < cfg.MinSelectivity-1e-12 || q.Selectivity > cfg.MaxSelectivity+1e-12 {
			t.Fatalf("query %d selectivity %v out of bounds", i, q.Selectivity)
		}
		if len(q.Archives) < 2 {
			t.Fatalf("query %d has %d archives", i, len(q.Archives))
		}
		if math.Abs(q.Center.Norm()-1) > 1e-9 {
			t.Fatalf("query %d center not unit", i)
		}
	}
	frac := float64(hot) / 2000
	if math.Abs(frac-cfg.HotFraction) > 0.05 {
		t.Errorf("hot fraction %v, want ~%v", frac, cfg.HotFraction)
	}
	if tr.Queries[0].String() == "" {
		t.Error("String empty")
	}
}

func TestPredicate(t *testing.T) {
	q := Query{}
	if q.Predicate() != nil {
		t.Error("no-window query should have nil predicate")
	}
	q.MagLo, q.MagHi = 15, 18
	p := q.Predicate()
	if p == nil {
		t.Fatal("windowed query should have predicate")
	}
	if !p(catalog.Object{Mag: 16}, catalog.Object{}) || p(catalog.Object{Mag: 19}, catalog.Object{}) {
		t.Error("predicate window wrong")
	}
}

func remoteCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.New(catalog.Config{
		Name: "twomass", N: 300000, Seed: 31, GenLevel: 5, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMaterializeDeterministicAndFiltered(t *testing.T) {
	remote := remoteCatalog(t)
	q := Query{
		ID: 3, Center: geom.FromRaDec(50, 20), RadiusRad: geom.Radians(6),
		MatchRadiusRad: geom.ArcsecToRad(5), Selectivity: 0.2,
	}
	a := Materialize(q, remote, 17)
	b := Materialize(q, remote, 17)
	if !reflect.DeepEqual(a, b) {
		t.Error("materialization not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no workload objects")
	}
	cp := q.Cap()
	for _, w := range a {
		if w.QueryID != 3 {
			t.Fatal("wrong query ID")
		}
		if !cp.Contains(w.Obj.Pos) {
			t.Fatal("workload object outside query cap")
		}
		if w.Radius != q.MatchRadiusRad {
			t.Fatal("radius not propagated")
		}
	}
	// Selectivity controls the sampled fraction.
	inCap := len(remote.InCap(cp))
	got := float64(len(a)) / float64(inCap)
	if math.Abs(got-q.Selectivity) > 0.05 {
		t.Errorf("sampled fraction %v, want ~%v", got, q.Selectivity)
	}
	// Different trace seeds sample differently.
	c := Materialize(q, remote, 18)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds gave identical samples")
	}
}

func TestPoissonArrivals(t *testing.T) {
	offs := Poisson{RatePerSec: 0.5}.Offsets(4000, 5)
	if len(offs) != 4000 {
		t.Fatal("length")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatal("offsets decrease")
		}
	}
	mean := offs[len(offs)-1].Seconds() / 4000
	if math.Abs(mean-2) > 0.2 {
		t.Errorf("mean interval %v s, want ~2", mean)
	}
}

func TestUniformArrivals(t *testing.T) {
	offs := Uniform{Interval: time.Second}.Offsets(3, 0)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if !reflect.DeepEqual(offs, want) {
		t.Errorf("offsets = %v", offs)
	}
}

func TestBurstyArrivals(t *testing.T) {
	offs := Bursty{BurstRate: 2, BurstLen: 10, Gap: 5 * time.Minute}.Offsets(500, 9)
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			t.Fatal("offsets decrease")
		}
	}
	// Bursty traffic must have higher inter-arrival variance than Poisson
	// at the same mean.
	gaps := make([]float64, len(offs)-1)
	for i := 1; i < len(offs); i++ {
		gaps[i-1] = (offs[i] - offs[i-1]).Seconds()
	}
	s := metrics.Summarize(gaps)
	if s.CoV < 1.2 {
		t.Errorf("bursty CoV = %v, want > 1.2 (Poisson is ~1)", s.CoV)
	}
}

func TestArrivalPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"poisson": func() { Poisson{}.Offsets(1, 0) },
		"uniform": func() { Uniform{}.Offsets(1, 0) },
		"bursty":  func() { Bursty{}.Offsets(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid params should panic", name)
				}
			}()
			f()
		}()
	}
}

// TestTraceCalibration checks the generated trace against the published
// workload statistics that Figures 5 and 6 report, at CI scale:
//   - the ten most-queried buckets are touched by a large fraction of all
//     queries (paper: 61%), and
//   - a small fraction of buckets carries half the workload objects
//     (paper: 2% of buckets capture 50%).
func TestTraceCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	remote := remoteCatalog(t)
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: 400000, Seed: 8, GenLevel: 5, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	part, err := bucket.NewPartition(local, 400, 0) // 1000 buckets
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTraceConfig(12)
	cfg.NumQueries = 500
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	queryTouches := make(map[int]map[uint64]bool) // bucket -> query set
	objCount := make([]float64, part.NumBuckets())
	for _, q := range tr.Queries {
		for _, w := range Materialize(q, remote, cfg.Seed) {
			for _, bi := range part.BucketsForRanges(w.Ranges()) {
				if queryTouches[bi] == nil {
					queryTouches[bi] = make(map[uint64]bool)
				}
				queryTouches[bi][q.ID] = true
				objCount[bi]++
			}
		}
	}

	// Figure 5 statistic: queries touching the top-10 buckets.
	type bq struct {
		bucket int
		n      int
	}
	var byQueries []bq
	for b, qs := range queryTouches {
		byQueries = append(byQueries, bq{b, len(qs)})
	}
	if len(byQueries) < 20 {
		t.Fatalf("only %d buckets touched; trace too narrow", len(byQueries))
	}
	for i := 0; i < len(byQueries); i++ {
		for j := i + 1; j < len(byQueries); j++ {
			if byQueries[j].n > byQueries[i].n {
				byQueries[i], byQueries[j] = byQueries[j], byQueries[i]
			}
		}
	}
	top10 := make(map[uint64]bool)
	for i := 0; i < 10 && i < len(byQueries); i++ {
		for q := range queryTouches[byQueries[i].bucket] {
			top10[q] = true
		}
	}
	frac := float64(len(top10)) / float64(len(tr.Queries))
	if frac < 0.45 {
		t.Errorf("top-10 buckets touched by %.0f%% of queries, want >=45%% (paper: 61%%)", 100*frac)
	}

	// Figure 6 statistic: share of workload in the top 2% of buckets.
	rank := metrics.RankForShare(objCount, 0.5)
	fracBuckets := float64(rank) / float64(part.NumBuckets())
	if fracBuckets > 0.10 {
		t.Errorf("50%% of workload needs top %.1f%% of buckets, want <=10%% (paper: 2%%)", 100*fracBuckets)
	}
}

// Package workload synthesizes the SkyQuery query trace the paper
// evaluates against (§5.1): two thousand long-running cross-match
// queries whose data-access pattern matches the published web-log
// statistics — a small set of heavily reused sky regions (Figure 5: the
// top ten buckets are accessed by 61% of queries, with temporal
// clustering) and a heavy-tailed per-bucket workload distribution
// (Figure 6: 2% of buckets capture 50% of the workload objects).
//
// A Query describes the work a single node receives: a sky region of
// interest, the fraction of remote-archive objects shipped (selectivity),
// the per-object match radius, and an optional photometric predicate.
// Materialize converts a query into the workload objects a node's
// pre-processor ingests.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/xmatch"
)

// Query is one cross-match query as seen by a single archive node.
type Query struct {
	// ID is the query's position in the trace (also its identity).
	ID uint64
	// Center and RadiusRad define the sky region of interest.
	Center    geom.Vec3
	RadiusRad float64
	// MatchRadiusRad is the positional-error radius for each shipped
	// object, radians (arcseconds in practice).
	MatchRadiusRad float64
	// Selectivity is the fraction of remote objects in the region that
	// are shipped for matching, in (0, 1].
	Selectivity float64
	// Hot marks queries that targeted a hotspot region (analysis only).
	Hot bool
	// MagLo/MagHi define an optional local-magnitude predicate window;
	// both zero means no predicate.
	MagLo, MagHi float64
	// Archives lists the archive names the full cross-match joins,
	// first entry is the plan's driving archive.
	Archives []string
}

// Predicate returns the query's xmatch predicate, or nil if none.
func (q Query) Predicate() xmatch.Predicate {
	if q.MagLo == 0 && q.MagHi == 0 {
		return nil
	}
	return xmatch.MagnitudeWindow(q.MagLo, q.MagHi)
}

// Cap returns the query's region of interest as a spherical cap.
func (q Query) Cap() geom.Cap { return geom.NewCap(q.Center, q.RadiusRad) }

// String implements fmt.Stringer.
func (q Query) String() string {
	ra, dec := geom.ToRaDec(q.Center)
	return fmt.Sprintf("q%d: (%.2f,%.2f) r=%.2fdeg sel=%.3f hot=%v",
		q.ID, ra, dec, geom.Degrees(q.RadiusRad), q.Selectivity, q.Hot)
}

// TraceConfig parameterizes trace generation.
type TraceConfig struct {
	// NumQueries is the trace length (the paper replays 2,000).
	NumQueries int
	// Seed makes the trace deterministic.
	Seed int64
	// Hotspots is the number of heavily reused sky regions.
	Hotspots int
	// HotFraction is the probability a query targets a hotspot rather
	// than a uniformly random region.
	HotFraction float64
	// Stickiness is the probability that a hot query reuses the
	// previous hot query's hotspot, producing the temporal clustering
	// of Figure 5.
	Stickiness float64
	// HotRadiusDeg scatters hot query centers around their hotspot.
	HotRadiusDeg float64
	// MinRadiusDeg and MaxRadiusDeg bound the log-uniform distribution
	// of region radii.
	MinRadiusDeg, MaxRadiusDeg float64
	// MatchRadiusArcsec is the per-object match radius.
	MatchRadiusArcsec float64
	// MinSelectivity and MaxSelectivity bound the log-uniform shipped
	// fraction.
	MinSelectivity, MaxSelectivity float64
	// PredicateFraction is the probability a query carries a magnitude
	// predicate.
	PredicateFraction float64
}

// DefaultTraceConfig returns the configuration calibrated to reproduce the
// published trace statistics at CI scale (a few thousand buckets); the
// calibration tests in this package and the Figure 5/6 experiments check
// it.
func DefaultTraceConfig(seed int64) TraceConfig {
	return TraceConfig{
		NumQueries:        2000,
		Seed:              seed,
		Hotspots:          5,
		HotFraction:       0.7,
		Stickiness:        0.7,
		HotRadiusDeg:      2,
		MinRadiusDeg:      2.5,
		MaxRadiusDeg:      14,
		MatchRadiusArcsec: 5,
		MinSelectivity:    0.02,
		MaxSelectivity:    0.5,
		PredicateFraction: 0.3,
	}
}

// Validate reports configuration mistakes.
func (c TraceConfig) Validate() error {
	switch {
	case c.NumQueries <= 0:
		return fmt.Errorf("workload: NumQueries %d must be positive", c.NumQueries)
	case c.Hotspots < 0:
		return fmt.Errorf("workload: negative Hotspots")
	case c.HotFraction < 0 || c.HotFraction > 1:
		return fmt.Errorf("workload: HotFraction %v out of [0,1]", c.HotFraction)
	case c.Stickiness < 0 || c.Stickiness > 1:
		return fmt.Errorf("workload: Stickiness %v out of [0,1]", c.Stickiness)
	case c.MinRadiusDeg <= 0 || c.MaxRadiusDeg < c.MinRadiusDeg:
		return fmt.Errorf("workload: radius bounds (%v,%v) invalid", c.MinRadiusDeg, c.MaxRadiusDeg)
	case c.MinSelectivity <= 0 || c.MaxSelectivity < c.MinSelectivity || c.MaxSelectivity > 1:
		return fmt.Errorf("workload: selectivity bounds (%v,%v) invalid", c.MinSelectivity, c.MaxSelectivity)
	case c.MatchRadiusArcsec <= 0:
		return fmt.Errorf("workload: MatchRadiusArcsec must be positive")
	}
	return nil
}

// Trace is a generated query sequence with its hotspot centers.
type Trace struct {
	Queries  []Query
	Hotspots []geom.Vec3
	Config   TraceConfig
}

// archiveSets are the cross-match combinations dominating the SkyQuery
// log ("a vast majority of cross-matches occurs between archives twomass,
// sdss, and usnob").
var archiveSets = [][]string{
	{"twomass", "sdss"},
	{"twomass", "sdss", "usnob"},
	{"usnob", "sdss"},
	{"twomass", "sdss", "usnob", "first"},
	{"galex", "sdss", "usnob", "first", "rosat"},
}

// Generate produces a deterministic trace from cfg.
func Generate(cfg TraceConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hs := make([]geom.Vec3, cfg.Hotspots)
	for i := range hs {
		hs[i] = randomPoint(rng)
	}
	// Hotspot popularity is Zipf-ish so a few dominate, as in Figure 5.
	weights := make([]float64, len(hs))
	var wTotal float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		wTotal += weights[i]
	}
	pickHotspot := func() int {
		x := rng.Float64() * wTotal
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return i
			}
		}
		return len(weights) - 1
	}

	qs := make([]Query, cfg.NumQueries)
	cur := 0
	if len(hs) > 0 {
		cur = pickHotspot()
	}
	for i := range qs {
		q := Query{ID: uint64(i)}
		hot := len(hs) > 0 && rng.Float64() < cfg.HotFraction
		if hot {
			if rng.Float64() >= cfg.Stickiness {
				cur = pickHotspot()
			}
			q.Center = scatter(rng, hs[cur], geom.Radians(cfg.HotRadiusDeg))
			q.Hot = true
		} else {
			q.Center = randomPoint(rng)
		}
		q.RadiusRad = geom.Radians(logUniform(rng, cfg.MinRadiusDeg, cfg.MaxRadiusDeg))
		q.MatchRadiusRad = geom.ArcsecToRad(cfg.MatchRadiusArcsec)
		q.Selectivity = logUniform(rng, cfg.MinSelectivity, cfg.MaxSelectivity)
		if rng.Float64() < cfg.PredicateFraction {
			lo := 14 + rng.Float64()*6
			q.MagLo, q.MagHi = lo, lo+2+rng.Float64()*4
		}
		q.Archives = archiveSets[rng.Intn(len(archiveSets))]
		qs[i] = q
	}
	return &Trace{Queries: qs, Hotspots: hs, Config: cfg}, nil
}

func randomPoint(rng *rand.Rand) geom.Vec3 {
	z := rng.Float64()*2 - 1
	phi := rng.Float64() * 2 * math.Pi
	r := math.Sqrt(1 - z*z)
	return geom.Vec3{X: r * math.Cos(phi), Y: r * math.Sin(phi), Z: z}
}

func scatter(rng *rand.Rand, center geom.Vec3, maxRad float64) geom.Vec3 {
	return center.Add(geom.Vec3{
		X: rng.NormFloat64() * maxRad / 2,
		Y: rng.NormFloat64() * maxRad / 2,
		Z: rng.NormFloat64() * maxRad / 2,
	}).Normalize()
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// Materialize converts a query into the workload objects the node's
// pre-processor receives: remote-archive objects inside the query region,
// subsampled by the query's selectivity, each wrapped with its bounding
// HTM range. Subsampling is a deterministic hash of (trace seed, query,
// object), so repeated materialization is identical.
func Materialize(q Query, remote *catalog.Catalog, seed int64) []xmatch.WorkloadObject {
	objs := remote.InCap(q.Cap())
	out := make([]xmatch.WorkloadObject, 0, int(float64(len(objs))*q.Selectivity)+1)
	for _, o := range objs {
		if !keep(seed, q.ID, o.ID, q.Selectivity) {
			continue
		}
		out = append(out, xmatch.NewWorkloadObject(q.ID, o, q.MatchRadiusRad))
	}
	return out
}

// keep implements deterministic Bernoulli subsampling via splitmix64.
func keep(seed int64, qid, oid uint64, p float64) bool {
	x := uint64(seed) ^ qid*0x9E3779B97F4A7C15 ^ oid*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < p
}

// Arrivals produces inter-arrival offsets for a trace: offsets[i] is query
// i's arrival time relative to the start of the run.
type Arrivals interface {
	// Offsets returns n non-decreasing arrival offsets.
	Offsets(n int, seed int64) []time.Duration
}

// Poisson is a Poisson arrival process at the given rate ("saturation" in
// the paper's terms, queries per second).
type Poisson struct {
	RatePerSec float64
}

// Offsets implements Arrivals.
func (p Poisson) Offsets(n int, seed int64) []time.Duration {
	if p.RatePerSec <= 0 {
		panic("workload: Poisson rate must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / p.RatePerSec
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

// Uniform spaces arrivals at a fixed interval.
type Uniform struct {
	Interval time.Duration
}

// Offsets implements Arrivals.
func (u Uniform) Offsets(n int, _ int64) []time.Duration {
	if u.Interval <= 0 {
		panic("workload: Uniform interval must be positive")
	}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * u.Interval
	}
	return out
}

// Bursty alternates Poisson bursts with idle gaps, the no-steady-state
// pattern §6 argues arrival-rate-sensitive schedulers mishandle.
type Bursty struct {
	// BurstRate is the arrival rate inside a burst (queries/sec).
	BurstRate float64
	// BurstLen is the mean number of queries per burst.
	BurstLen int
	// Gap is the mean idle time between bursts.
	Gap time.Duration
}

// Offsets implements Arrivals.
func (b Bursty) Offsets(n int, seed int64) []time.Duration {
	if b.BurstRate <= 0 || b.BurstLen <= 0 || b.Gap <= 0 {
		panic("workload: Bursty parameters must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	inBurst := 0
	for i := range out {
		if inBurst == 0 {
			t += rng.ExpFloat64() * b.Gap.Seconds()
			inBurst = 1 + rng.Intn(2*b.BurstLen)
		}
		t += rng.ExpFloat64() / b.BurstRate
		inBurst--
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}

package disk

import (
	"math"
	"testing"
	"time"

	"liferaft/internal/simclock"
)

func TestCalibrationMatchesPaper(t *testing.T) {
	// The paper derived Tb = 1.2 s for a 40 MB bucket and Tm = 0.13 ms.
	m := SkyQuery()
	tb, tm := m.Calibrate(40 << 20)
	if err := math.Abs(tb.Seconds() - 1.2); err > 0.06 {
		t.Errorf("Tb = %v, want ~1.2s", tb)
	}
	if tm != 130*time.Microsecond {
		t.Errorf("Tm = %v, want 0.13ms", tm)
	}
}

func TestSortedProbeNearBreakEven(t *testing.T) {
	// The hybrid join break-even (Fig 2) is at a queue of ~3% of a
	// 10,000-object bucket: 300 probes should cost about one bucket scan.
	m := SkyQuery()
	probes := 300 * m.SortedProbe()
	scan := m.SequentialRead(40 << 20)
	ratio := float64(probes) / float64(scan)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("300 probes / bucket scan = %.2f, want ~1 (break-even at 3%%)", ratio)
	}
}

func TestCostMonotonicity(t *testing.T) {
	m := SkyQuery()
	if m.SequentialRead(1<<20) >= m.SequentialRead(2<<20) {
		t.Error("sequential cost should grow with bytes")
	}
	if m.SequentialRead(0) != 0 || m.SequentialRead(-5) != 0 {
		t.Error("non-positive reads are free")
	}
	if m.SortedProbe() >= m.RandomRead() {
		t.Error("sorted probe must be cheaper than a random read")
	}
	if m.Match(0) != 0 {
		t.Error("matching zero objects is free")
	}
	if m.Match(10) != 10*m.MatchCost {
		t.Error("Match is linear")
	}
}

// TestCostSaturatesInsteadOfWrapping: pathological counts used to
// overflow the int64-nanosecond multiply into a negative cost, running
// the simulated clock backwards (a negative credit). Every modelled cost
// must saturate at maxCost and stay non-negative.
func TestCostSaturatesInsteadOfWrapping(t *testing.T) {
	m := SkyQuery()
	huge := int(math.MaxInt64 / int64(time.Microsecond)) // n*MatchCost wraps
	if got := m.Match(huge); got != maxCost {
		t.Errorf("Match(huge) = %v, want saturated maxCost", got)
	}
	if got := m.Match(huge); got < 0 {
		t.Errorf("Match(huge) = %v, negative cost", got)
	}
	// A zero transfer rate makes the float blow up to +Inf: saturate,
	// don't convert Inf to a platform-defined int64.
	broken := m
	broken.SeqMBps = 0
	if got := broken.transfer(1 << 20); got != maxCost {
		t.Errorf("transfer with zero rate = %v, want saturated maxCost", got)
	}
	if got := m.transfer(math.MaxInt64); got != maxCost || got < 0 {
		t.Errorf("transfer(MaxInt64) = %v, want saturated maxCost", got)
	}
	if got := scale(-1, time.Second); got != 0 {
		t.Errorf("scale(-1) = %v, want 0", got)
	}
}

func TestDiskChargesVirtualClock(t *testing.T) {
	clk := simclock.NewVirtual()
	d := New(SkyQuery(), clk)
	start := clk.Now()
	c1 := d.ReadSequential(40 << 20)
	c2 := d.ReadProbes(10)
	c3 := d.MatchObjects(100)
	elapsed := clk.Now().Sub(start)
	if elapsed != c1+c2+c3 {
		t.Errorf("clock advanced %v, want %v", elapsed, c1+c2+c3)
	}
	st := d.Stats()
	if st.SeqReads != 1 || st.SeqBytes != 40<<20 || st.Probes != 10 || st.Matches != 100 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != elapsed {
		t.Errorf("busy = %v, want %v", st.BusyTime, elapsed)
	}
	if st.String() == "" {
		t.Error("Stats String empty")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero")
	}
	if d.Model() != SkyQuery() {
		t.Error("Model accessor")
	}
}

func TestDiskNilClockDefaultsToReal(t *testing.T) {
	d := New(SkyQuery(), nil)
	if d.ReadSequential(0) != 0 {
		t.Error("zero read should be free")
	}
}

func TestVSCANGreedyPrefersNearest(t *testing.T) {
	v := NewVSCAN(0, 1000)
	now := simclock.Epoch
	v.Add(Request{Cylinder: 900, Arrived: now.Add(-time.Hour), ID: 1}) // old but far
	v.Add(Request{Cylinder: 10, Arrived: now, ID: 2})                  // new but near
	req, ok := v.Next(now)
	if !ok || req.ID != 2 {
		t.Errorf("R=0 should pick nearest, got %+v", req)
	}
	if v.Head() != 10 {
		t.Errorf("head = %d", v.Head())
	}
}

func TestVSCANAgedPrefersOldest(t *testing.T) {
	v := NewVSCAN(1, 1000)
	now := simclock.Epoch.Add(time.Hour)
	v.Add(Request{Cylinder: 900, Arrived: simclock.Epoch, ID: 1}) // old, far
	v.Add(Request{Cylinder: 10, Arrived: now, ID: 2})             // new, near
	req, ok := v.Next(now)
	if !ok || req.ID != 1 {
		t.Errorf("R=1 should pick oldest, got %+v", req)
	}
}

func TestVSCANDrainsAll(t *testing.T) {
	v := NewVSCAN(0.5, 100)
	now := simclock.Epoch
	for i := 0; i < 20; i++ {
		v.Add(Request{Cylinder: i * 5, Arrived: now, ID: i})
	}
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		req, ok := v.Next(now.Add(time.Duration(i) * time.Second))
		if !ok {
			t.Fatal("ran out of requests early")
		}
		if seen[req.ID] {
			t.Fatalf("request %d serviced twice", req.ID)
		}
		seen[req.ID] = true
	}
	if _, ok := v.Next(now); ok {
		t.Error("Next on empty should fail")
	}
	if v.Pending() != 0 {
		t.Error("pending should be zero")
	}
}

func TestVSCANParamClamping(t *testing.T) {
	if v := NewVSCAN(-1, 0); v.R != 0 || v.Cylinders != 1 {
		t.Errorf("clamping failed: %+v", v)
	}
	if v := NewVSCAN(2, 10); v.R != 1 {
		t.Errorf("clamping failed: %+v", v)
	}
}

// SSTF (R=0) must yield total seek distance no worse than FIFO-ish aged
// order (R=1) on a scattered batch: the throughput/fairness trade-off the
// paper's Eq. 2 mirrors.
func TestVSCANSeekTradeoff(t *testing.T) {
	run := func(r float64) int {
		v := NewVSCAN(r, 1000)
		now := simclock.Epoch
		cyls := []int{500, 10, 510, 20, 520, 30, 530, 40}
		for i, c := range cyls {
			v.Add(Request{Cylinder: c, Arrived: now.Add(time.Duration(i) * time.Millisecond), ID: i})
		}
		total, prev := 0, 0
		for {
			req, ok := v.Next(now.Add(time.Hour))
			if !ok {
				break
			}
			d := req.Cylinder - prev
			if d < 0 {
				d = -d
			}
			total += d
			prev = req.Cylinder
		}
		return total
	}
	if greedy, aged := run(0), run(1); greedy > aged {
		t.Errorf("SSTF total seek %d should not exceed aged order %d", greedy, aged)
	}
}

// Package disk models the secondary-storage behaviour that drives every
// scheduling decision in LifeRaft. The paper's evaluation ran against SQL
// Server on 15 sets of mirrored disks and derived two empirical constants:
// Tb = 1.2 s to read a 40 MB bucket sequentially and Tm = 0.13 ms to
// cross-match one object in memory. This package reproduces those
// constants from an analytic seek/rotation/transfer model, and exposes the
// sequential-versus-random cost asymmetry that the hybrid join strategy
// (paper §3.4) and the workload throughput metric (Eq. 1) depend on.
//
// It also implements the VSCAN(R) disk-head scheduler (Geist & Daniel,
// TOCS 1987) that inspired LifeRaft's blend of greedy throughput and
// arrival-order age (paper §3.3): VSCAN(R) scores a request by a convex
// combination of seek distance and wait time exactly as LifeRaft's aged
// workload throughput metric blends contention and age.
package disk

import (
	"fmt"
	"sync"
	"time"

	"liferaft/internal/simclock"
)

// Model is an analytic disk cost model. All costs are deterministic; the
// simulator charges them to a Clock.
type Model struct {
	// AvgSeek is the average cost of a long (random) head repositioning.
	AvgSeek time.Duration
	// ShortSeek is the cost of a near-track repositioning, charged for
	// index probes issued in sorted (HTM ID) order, which land near the
	// previous probe.
	ShortSeek time.Duration
	// RotLatency is the average rotational latency for a random access.
	RotLatency time.Duration
	// ShortRot is the residual rotational latency for sorted probes.
	ShortRot time.Duration
	// SeqMBps is the effective sequential transfer rate of the array
	// (striping included), in MB/s.
	SeqMBps float64
	// PageSize is the number of bytes fetched by one index probe.
	PageSize int64
	// MatchCost is the in-memory cost of cross-matching one object
	// (the paper's Tm).
	MatchCost time.Duration
}

// SkyQuery returns the model calibrated to the paper's measured
// environment: a 40 MB bucket reads in Tb = 1.2 s, one object matches in
// Tm = 0.13 ms, and a sorted index probe costs ~4 ms so that the hybrid
// join break-even point falls at a workload-queue-to-bucket ratio of ~3 %
// for 10,000-object buckets (paper Figure 2).
func SkyQuery() Model {
	return Model{
		AvgSeek:    8 * time.Millisecond,
		ShortSeek:  2 * time.Millisecond,
		RotLatency: 4 * time.Millisecond,
		ShortRot:   1700 * time.Microsecond,
		SeqMBps:    33.67,
		PageSize:   8 << 10,
		MatchCost:  130 * time.Microsecond,
	}
}

// maxCost caps any single modelled cost: a cost model must slow the
// simulation down, never wrap int64 nanoseconds into a negative credit.
const maxCost = time.Duration(1<<63 - 1)

// scale returns n * unit saturating at maxCost instead of overflowing:
// the clamp happens in the count domain, before the multiply, so a
// pathological request (or a miscalibrated model) charges "forever",
// not a negative duration that would run the simulated clock backwards.
func scale(n int64, unit time.Duration) time.Duration {
	if n <= 0 || unit <= 0 {
		return 0
	}
	if n > int64(maxCost/unit) {
		return maxCost
	}
	return time.Duration(n) * unit
}

// transfer returns the time to move n bytes at the sequential rate.
func (m Model) transfer(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	sec := float64(n) / (m.SeqMBps * 1e6)
	// A zero or garbage rate makes sec ±Inf/NaN; both fail the < test
	// and saturate rather than converting to a platform-defined int64.
	if !(sec < maxCost.Seconds()) {
		return maxCost
	}
	return time.Duration(sec * float64(time.Second))
}

// SequentialRead returns the cost of reading n contiguous bytes: one full
// repositioning followed by streaming transfer.
func (m Model) SequentialRead(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.AvgSeek + m.RotLatency + m.transfer(n)
}

// RandomRead returns the cost of one isolated random page read.
func (m Model) RandomRead() time.Duration {
	return m.AvgSeek + m.RotLatency + m.transfer(m.PageSize)
}

// SortedProbe returns the cost of one index probe issued in sorted order
// (short seek plus residual rotation plus one page transfer). LifeRaft
// sorts each workload queue by HTM ID before an indexed join, so probes
// walk the index in key order.
func (m Model) SortedProbe() time.Duration {
	return m.ShortSeek + m.ShortRot + m.transfer(m.PageSize)
}

// Match returns the in-memory cost of cross-matching n objects (n * Tm).
func (m Model) Match(n int) time.Duration {
	return scale(int64(n), m.MatchCost)
}

// Calibrate empirically derives the paper's constants from the model, the
// way the authors derived theirs from measurements: Tb is the sequential
// read time of one bucket of the given byte size and Tm is the per-object
// match cost.
func (m Model) Calibrate(bucketBytes int64) (Tb, Tm time.Duration) {
	return m.SequentialRead(bucketBytes), m.MatchCost
}

// Stats counts the I/O issued against a Disk.
type Stats struct {
	SeqReads    int64 // sequential bucket reads
	SeqBytes    int64
	Probes      int64 // sorted index probes
	RandomReads int64 // isolated random page reads
	Matches     int64 // in-memory object matches charged
	BusyTime    time.Duration
}

// Add returns the element-wise sum of two stats snapshots, used to merge
// the per-shard disks of a sharded run into one aggregate. BusyTime sums
// — it is total arm-busy work across disks, not wall time.
func (s Stats) Add(o Stats) Stats {
	s.SeqReads += o.SeqReads
	s.SeqBytes += o.SeqBytes
	s.Probes += o.Probes
	s.RandomReads += o.RandomReads
	s.Matches += o.Matches
	s.BusyTime += o.BusyTime
	return s
}

// Disk charges model costs to a clock and accumulates statistics. It is
// safe for concurrent use.
type Disk struct {
	model Model
	clock simclock.Clock

	mu    sync.Mutex
	stats Stats
}

// New returns a Disk charging costs from model to clock.
func New(model Model, clock simclock.Clock) *Disk {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Disk{model: model, clock: clock}
}

// Model returns the disk's cost model.
func (d *Disk) Model() Model { return d.model }

// Fork returns a new Disk with the same cost model charging to clk, with
// fresh statistics. The sharded engine forks one disk per shard from the
// configured template so each shard models an independent disk arm.
func (d *Disk) Fork(clk simclock.Clock) *Disk { return New(d.model, clk) }

// ReadSequential charges the cost of sequentially reading n bytes.
func (d *Disk) ReadSequential(n int64) time.Duration {
	c := d.model.SequentialRead(n)
	d.charge(c)
	d.mu.Lock()
	d.stats.SeqReads++
	d.stats.SeqBytes += n
	d.mu.Unlock()
	return c
}

// ReadProbes charges the cost of n sorted index probes.
func (d *Disk) ReadProbes(n int) time.Duration {
	c := scale(int64(n), d.model.SortedProbe())
	d.charge(c)
	d.mu.Lock()
	d.stats.Probes += int64(n)
	d.mu.Unlock()
	return c
}

// AccountSequential records a real sequential read of n bytes that took
// elapsed wall time: the statistics advance exactly as ReadSequential's
// would, but nothing is charged to the clock — the time already passed
// while the I/O blocked. The file-backed bucket store reports its reads
// this way, so RunStats.Disk counts I/O identically across backends.
func (d *Disk) AccountSequential(n int64, elapsed time.Duration) {
	d.mu.Lock()
	d.stats.SeqReads++
	d.stats.SeqBytes += n
	d.stats.BusyTime += elapsed
	d.mu.Unlock()
}

// AccountProbes records n real index probes that took elapsed wall
// time, without charging the clock (see AccountSequential).
func (d *Disk) AccountProbes(n int, elapsed time.Duration) {
	d.mu.Lock()
	d.stats.Probes += int64(n)
	d.stats.BusyTime += elapsed
	d.mu.Unlock()
}

// ReadRandom charges the cost of n isolated random page reads — the
// access pattern of SkyQuery's pre-LifeRaft, index-only cross-match, where
// repeated unsorted index traversals touch scattered pages.
func (d *Disk) ReadRandom(n int) time.Duration {
	c := scale(int64(n), d.model.RandomRead())
	d.charge(c)
	d.mu.Lock()
	d.stats.RandomReads += int64(n)
	d.mu.Unlock()
	return c
}

// MatchObjects charges the in-memory match cost for n objects.
func (d *Disk) MatchObjects(n int) time.Duration {
	c := d.model.Match(n)
	d.charge(c)
	d.mu.Lock()
	d.stats.Matches += int64(n)
	d.mu.Unlock()
	return c
}

func (d *Disk) charge(c time.Duration) {
	if c <= 0 {
		return
	}
	d.clock.Sleep(c)
	d.mu.Lock()
	d.stats.BusyTime += c
	d.mu.Unlock()
}

// Stats returns a snapshot of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the accumulated statistics.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// String summarizes the stats.
func (s Stats) String() string {
	return fmt.Sprintf("seq=%d (%.1f MB) probes=%d matches=%d busy=%v",
		s.SeqReads, float64(s.SeqBytes)/1e6, s.Probes, s.Matches, s.BusyTime)
}

package disk

import (
	"time"
)

// This file implements the VSCAN(R) head scheduler of Geist & Daniel
// ("A Continuum of Disk Scheduling Algorithms", ACM TOCS 1987), cited by
// the paper as the inspiration for the aged workload throughput metric:
// VSCAN(R) interpolates between SSTF (R=0, pure greed, starvation-prone)
// and SCAN-like fairness (R=1) exactly as LifeRaft's α interpolates
// between most-contentious-first and arrival order. It is used by the
// ablation benches to demonstrate the analogy quantitatively.

// Request is a pending disk request at a cylinder position.
type Request struct {
	Cylinder int
	Arrived  time.Time
	ID       int
}

// VSCAN is a continuum disk-head scheduler. R=0 degenerates to shortest
// seek time first; R=1 approximates SCAN; intermediate values trade
// positioning time against request age.
type VSCAN struct {
	// R is the bias parameter in [0, 1].
	R float64
	// Cylinders is the number of cylinders on the (modeled) device,
	// used to normalize seek distances.
	Cylinders int

	head    int
	pending []Request
}

// NewVSCAN returns a scheduler for a device with the given cylinder count,
// head initially at cylinder 0.
func NewVSCAN(r float64, cylinders int) *VSCAN {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	if cylinders <= 0 {
		cylinders = 1
	}
	return &VSCAN{R: r, Cylinders: cylinders}
}

// Head returns the current head position.
func (v *VSCAN) Head() int { return v.head }

// Pending returns the number of queued requests.
func (v *VSCAN) Pending() int { return len(v.pending) }

// Add queues a request.
func (v *VSCAN) Add(r Request) { v.pending = append(v.pending, r) }

// Next selects, removes, and returns the next request to service at
// simulated instant now, moving the head to its cylinder. The selected
// request minimizes
//
//	(1-R) * normalizedSeekDistance - R * normalizedAge
//
// i.e. it prefers short seeks but increasingly favors old requests as R
// grows. ok is false when no requests are pending.
func (v *VSCAN) Next(now time.Time) (req Request, ok bool) {
	if len(v.pending) == 0 {
		return Request{}, false
	}
	maxAge := time.Duration(1)
	for _, r := range v.pending {
		if a := now.Sub(r.Arrived); a > maxAge {
			maxAge = a
		}
	}
	best, bestScore := -1, 0.0
	for i, r := range v.pending {
		dist := r.Cylinder - v.head
		if dist < 0 {
			dist = -dist
		}
		seek := float64(dist) / float64(v.Cylinders)
		age := float64(now.Sub(r.Arrived)) / float64(maxAge)
		score := (1-v.R)*seek - v.R*age
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	req = v.pending[best]
	v.pending = append(v.pending[:best], v.pending[best+1:]...)
	v.head = req.Cylinder
	return req, true
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"liferaft/internal/simclock"
)

func testGateway(t *testing.T, exec func(ctx context.Context, tenant, query string) (any, error)) *httptest.Server {
	t.Helper()
	eng := newStubEngine(simclock.NewVirtual())
	eng.auto = true
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	g, err := NewGateway(GatewayConfig{Exec: exec, Server: srv, DefaultTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return resp, out
}

func TestGatewayValidation(t *testing.T) {
	if _, err := NewGateway(GatewayConfig{}); err == nil {
		t.Error("missing Exec should fail")
	}
}

func TestGatewayQueryOK(t *testing.T) {
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) {
		return map[string]any{"echo": query, "tenant": tenant}, nil
	})
	resp, out := postQuery(t, ts, `{"tenant":"alice","query":"SELECT 1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	res := out["result"].(map[string]any)
	if res["echo"] != "SELECT 1" || res["tenant"] != "alice" {
		t.Errorf("result = %v", res)
	}
	if out["tenant"] != "alice" {
		t.Errorf("tenant = %v", out["tenant"])
	}
}

func TestGatewayTenantHeaderAndDefault(t *testing.T) {
	var got string
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) {
		got = tenant
		return "ok", nil
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"query":"q"}`))
	req.Header.Set("X-Tenant", "from-header")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got != "from-header" {
		t.Errorf("tenant = %q, want from-header", got)
	}
	postQuery(t, ts, `{"query":"q"}`)
	if got != "default" {
		t.Errorf("tenant = %q, want default", got)
	}
}

func TestGatewayErrorMapping(t *testing.T) {
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) {
		switch query {
		case "overload":
			return nil, fmt.Errorf("wrapped: %w", &OverloadError{
				Tenant: tenant, Reason: OverloadRate, RetryAfter: 2500 * time.Millisecond,
			})
		case "timeout":
			return nil, context.DeadlineExceeded
		case "closed":
			return nil, ErrClosed
		case "peer-down":
			return nil, fmt.Errorf("federation: dial 127.0.0.1:1: connection refused")
		default:
			return nil, &BadRequestError{Err: fmt.Errorf("parse error near %q", query)}
		}
	})

	resp, out := postQuery(t, ts, `{"query":"overload"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overload status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" { // 2.5s rounds up
		t.Errorf("Retry-After = %q, want 3", ra)
	}
	if out["retry_after_ms"].(float64) != 2500 {
		t.Errorf("retry_after_ms = %v", out["retry_after_ms"])
	}

	if resp, _ := postQuery(t, ts, `{"query":"timeout"}`); resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout status = %d, want 504", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts, `{"query":"closed"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts, `{"query":"bogus"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse-error status = %d, want 400", resp.StatusCode)
	}
	// Infrastructure failures are the server's fault, not the client's.
	if resp, _ := postQuery(t, ts, `{"query":"peer-down"}`); resp.StatusCode != http.StatusBadGateway {
		t.Errorf("peer-down status = %d, want 502", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts, `{"tenant":"a"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-query status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postQuery(t, ts, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-json status = %d, want 400", resp.StatusCode)
	}
}

func TestGatewayMethodNotAllowed(t *testing.T) {
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) { return nil, nil })
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query = %d, want 405", resp.StatusCode)
	}
}

func TestGatewayHealthAndStats(t *testing.T) {
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) { return "ok", nil })
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	// Drive one query through so stats carry a tenant entry.
	postQuery(t, ts, `{"tenant":"alice","query":"q"}`)
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	// The gateway's Exec stub does not route through the Server, so the
	// snapshot is present but empty of tenants — the daemon's Exec does
	// route through it. Shape, not contents, is what this test pins.
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats = %d", resp.StatusCode)
	}
}

// TestGatewayDeadline: the request context carries the gateway timeout.
// TestGatewayTimeoutOverflowClamped: a huge timeout_ms used to overflow
// the nanosecond multiplication into a negative Duration, so the request
// context expired before Exec ran and every such request 504'd. It must
// behave as "capped at MaxTimeout" instead.
func TestGatewayTimeoutOverflowClamped(t *testing.T) {
	deadlines := make(chan time.Duration, 1)
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Error("no deadline on exec context")
		}
		deadlines <- time.Until(dl)
		return "ok", nil
	})
	// 2^62 ms: time.Duration(v)*time.Millisecond wraps negative.
	resp, out := postQuery(t, ts, `{"query":"q","timeout_ms":4611686018427387904}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v (overflowed timeout expired the request?)", resp.StatusCode, out)
	}
	left := <-deadlines
	if left <= 0 {
		t.Errorf("deadline already expired by %v at exec time", -left)
	}
	// The default MaxTimeout is 5m; the clamped deadline must not exceed it.
	if left > 5*time.Minute {
		t.Errorf("deadline %v exceeds the MaxTimeout cap", left)
	}
}

func TestGatewayDeadline(t *testing.T) {
	ts := testGateway(t, func(ctx context.Context, tenant, query string) (any, error) {
		if _, ok := ctx.Deadline(); !ok {
			t.Error("no deadline on exec context")
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"query":"q","timeout_ms":20}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
}

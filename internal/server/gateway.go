package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"liferaft/internal/metric"
	"liferaft/internal/trace"
)

// Gateway is the HTTP+JSON front door of a LifeRaft node, served alongside
// the gob TCP federation transport:
//
//	POST /v1/query   {"tenant": "...", "query": "<SkyQL>", "timeout_ms": 0}
//	GET  /v1/stats   serving-layer snapshot (per-tenant breakdowns)
//	GET  /metrics    Prometheus text exposition (GatewayConfig.Registry)
//	GET  /healthz    liveness probe
//
// Query execution is injected (GatewayConfig.Exec) so the gateway stays
// independent of the federation layer: the daemon wires Exec to parse
// SkyQL and drive its portal, and the admission path inside the node
// applies the per-tenant limits. Backpressure surfaces as HTTP 429 with a
// Retry-After header; an expired deadline as 504.
type Gateway struct {
	cfg GatewayConfig
	mux *http.ServeMux
}

// GatewayConfig configures a Gateway.
type GatewayConfig struct {
	// Exec executes one admitted query for a tenant and returns a
	// JSON-marshalable result. Required.
	Exec func(ctx context.Context, tenant, query string) (any, error)
	// Server, when set, backs /v1/stats with its snapshot.
	Server *Server
	// DefaultTimeout bounds queries that do not ask for a deadline
	// (default 30s). MaxTimeout caps what clients may ask for
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Registry, when set, backs /metrics with the Prometheus text
	// rendering (a /metrics request without one returns 404).
	Registry *metric.Registry
	// Tracer, when set, gives every /v1/query a request-scoped trace:
	// responses carry a trace_id, latency histograms emit exemplars, and
	// /debug/traces (+ /debug/traces/{id}) serve the forensics rings.
	Tracer *trace.Recorder
}

// NewGateway validates cfg and builds the handler.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("server: GatewayConfig.Exec is required")
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	g := &Gateway{cfg: cfg, mux: http.NewServeMux()}
	g.mux.HandleFunc("/v1/query", g.handleQuery)
	g.mux.HandleFunc("/v1/stats", g.handleStats)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	g.mux.HandleFunc("/healthz", g.handleHealth)
	if cfg.Tracer != nil {
		th := cfg.Tracer.Handler()
		g.mux.Handle("/debug/traces", th)
		g.mux.Handle("/debug/traces/", th)
	}
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// BadRequestError marks an execution error as the client's fault (SkyQL
// parse/compile/validation failures): the gateway maps it to HTTP 400.
// Unwrapped errors from Exec are treated as server-side faults (502), so
// a down federation peer is never misreported as a bad query.
type BadRequestError struct {
	Err error
}

// Error implements error.
func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped cause.
func (e *BadRequestError) Unwrap() error { return e.Err }

// queryRequest is the /v1/query body.
type queryRequest struct {
	// Tenant identifies the client for admission control; the X-Tenant
	// header is an alternative. Empty means "default".
	Tenant string `json:"tenant"`
	// Query is the SkyQL text.
	Query string `json:"query"`
	// TimeoutMillis bounds execution; 0 means the gateway default.
	TimeoutMillis int64 `json:"timeout_ms"`
}

type queryResponse struct {
	Tenant    string  `json:"tenant"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Result    any     `json:"result"`
	// TraceID links the response to its capture under /debug/traces/{id}
	// (set when the gateway has a Tracer).
	TraceID string `json:"trace_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterMillis is set on 429 responses (alongside the standard
	// Retry-After header, which only has seconds resolution).
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
	// TraceID links the failure to its capture, like queryResponse.TraceID.
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty query"})
		return
	}
	timeout := g.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		// Clamp in the millisecond domain before converting: scaling a
		// caller-controlled count to nanoseconds first overflows int64 for
		// values past ~2.9e12 ms, yielding a negative timeout that expires
		// the request instantly instead of capping it.
		millis := req.TimeoutMillis
		if maxMillis := int64(g.cfg.MaxTimeout / time.Millisecond); millis > maxMillis {
			millis = maxMillis
		}
		timeout = time.Duration(millis) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Start a request-scoped trace (no-op without a Tracer): the serving
	// layer, engine, and federation record spans into it via the context.
	tr := g.cfg.Tracer.Start(req.Tenant, 0)
	ctx = trace.NewContext(ctx, tr)

	start := time.Now()
	res, err := g.cfg.Exec(ctx, req.Tenant, req.Query)
	var traceID string
	if tr != nil {
		// Echo the trace_id only when the trace was published: unsampled
		// fast traces are not in any ring, so a link would 404. Slow
		// traces are force-captured regardless of the sample rate.
		if d := g.cfg.Tracer.Finish(tr); d.Sampled || d.Slow {
			traceID = d.TraceID.String()
		}
	}
	if err != nil {
		g.writeError(w, traceID, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Tenant:    req.Tenant,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Result:    res,
		TraceID:   traceID,
	})
}

// writeError maps execution errors onto HTTP statuses: backpressure to
// 429 + Retry-After, expired deadlines to 504, client mistakes
// (BadRequestError: SkyQL parse/compile failures) to 400, and every other
// execution failure — a down peer, a dropped query — to 502.
func (g *Gateway) writeError(w http.ResponseWriter, traceID string, err error) {
	var over *OverloadError
	var bad *BadRequestError
	switch {
	case errors.As(err, &over):
		secs := int64(math.Ceil(over.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error:            err.Error(),
			RetryAfterMillis: over.RetryAfter.Milliseconds(),
			TraceID:          traceID,
		})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error(), TraceID: traceID})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error(), TraceID: traceID})
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error(), TraceID: traceID})
	default:
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error(), TraceID: traceID})
	}
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	if g.cfg.Server == nil {
		writeJSON(w, http.StatusOK, Stats{})
		return
	}
	writeJSON(w, http.StatusOK, g.cfg.Server.Stats())
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	if g.cfg.Registry == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "metrics not configured"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.cfg.Registry.WriteText(w)
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/simclock"
)

// stubEngine is a controllable Engine: submitted jobs stay in flight until
// the test completes them, so admission and queueing behaviour can be
// pinned deterministically.
type stubEngine struct {
	clk  simclock.Clock
	auto bool // complete every job immediately on submit

	mu       sync.Mutex
	inflight map[uint64]chan core.Result
	closed   bool
}

func newStubEngine(clk simclock.Clock) *stubEngine {
	return &stubEngine{clk: clk, inflight: make(map[uint64]chan core.Result)}
}

func (e *stubEngine) SubmitCtx(ctx context.Context, job core.Job) (<-chan core.Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, core.ErrClosed
	}
	ch := make(chan core.Result, 1)
	now := e.clk.Now()
	if e.auto {
		ch <- core.Result{QueryID: job.ID, Arrived: now, Completed: now}
		close(ch)
		return ch, nil
	}
	e.inflight[job.ID] = ch
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			e.Cancel(job.ID)
		}()
	}
	return ch, nil
}

func (e *stubEngine) Cancel(id uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ch, ok := e.inflight[id]; ok {
		now := e.clk.Now()
		ch <- core.Result{QueryID: id, Arrived: now, Completed: now, Cancelled: true}
		close(ch)
		delete(e.inflight, id)
	}
	return nil
}

// complete finishes one in-flight job.
func (e *stubEngine) complete(id uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ch, ok := e.inflight[id]; ok {
		now := e.clk.Now()
		ch <- core.Result{QueryID: id, Arrived: now, Completed: now}
		close(ch)
		delete(e.inflight, id)
	}
}

func (e *stubEngine) Clock() simclock.Clock        { return e.clk }
func (e *stubEngine) Stats() (core.RunStats, bool) { return core.RunStats{}, false }
func (e *stubEngine) inflightCount() int           { e.mu.Lock(); defer e.mu.Unlock(); return len(e.inflight) }
func (e *stubEngine) waitInflight(t *testing.T, n int) {
	waitFor(t, func() bool { return e.inflightCount() == n })
}

// waitFor polls cond for up to 5 s of real time.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerValidation(t *testing.T) {
	clk := simclock.NewVirtual()
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := New(newStubEngine(clk), Config{QueueDepth: -1}); err == nil {
		t.Error("negative QueueDepth should fail")
	}
	if _, err := New(newStubEngine(clk), Config{Tenants: []TenantConfig{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Error("duplicate tenant should fail")
	}
	if _, err := New(newStubEngine(clk), Config{Tenants: []TenantConfig{{Name: ""}}}); err == nil {
		t.Error("empty tenant name should fail")
	}
}

// TestServerRateLimit: a tenant limited to 1 query/sec with burst 2 gets
// its burst, then machine-readable backpressure, then more service as
// virtual time passes.
func TestServerRateLimit(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	eng.auto = true
	s, err := New(eng, Config{
		Tenants: []TenantConfig{{Name: "alice", Rate: 1, Burst: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := uint64(1); i <= 2; i++ {
		if _, err := s.Submit(context.Background(), "alice", core.Job{ID: i}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err = s.Submit(context.Background(), "alice", core.Job{ID: 3})
	over, ok := err.(*OverloadError)
	if !ok || over.Reason != OverloadRate {
		t.Fatalf("err = %v, want rate OverloadError", err)
	}
	if over.RetryAfter <= 0 || over.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %v, want (0, 1s]", over.RetryAfter)
	}
	clk.Advance(time.Second) // one token accrues
	if _, err := s.Submit(context.Background(), "alice", core.Job{ID: 4}); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	st := s.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].RejectedRate != 1 || st.Tenants[0].Admitted != 3 {
		t.Errorf("stats = %+v", st.Tenants)
	}
}

// TestServerQueueBackpressure: with the single engine slot occupied, a
// tenant's queue fills to its depth and then rejects.
func TestServerQueueBackpressure(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	s, err := New(eng, Config{MaxInFlight: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Job 1 occupies the engine slot.
	ch1, err := s.Submit(context.Background(), "bob", core.Job{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng.waitInflight(t, 1)
	// Jobs 2 and 3 fill the depth-2 queue; 4 must bounce.
	for i := uint64(2); i <= 3; i++ {
		if _, err := s.Submit(context.Background(), "bob", core.Job{ID: i}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err = s.Submit(context.Background(), "bob", core.Job{ID: 4})
	over, ok := err.(*OverloadError)
	if !ok || over.Reason != OverloadQueue {
		t.Fatalf("err = %v, want queue OverloadError", err)
	}
	// Draining the slot admits the queued jobs in order.
	eng.complete(1)
	if r := <-ch1; r.QueryID != 1 {
		t.Fatalf("result = %+v", r)
	}
	eng.waitInflight(t, 1)
	eng.complete(2)
	eng.waitInflight(t, 1)
	eng.complete(3)
	st := s.Stats()
	bob := st.Tenants[0]
	if bob.RejectedQueue != 1 {
		t.Errorf("rejected_queue = %d, want 1", bob.RejectedQueue)
	}
	waitFor(t, func() bool { return s.Stats().Tenants[0].Completed == 3 })
}

// TestServerCancelWhileQueued: a query abandoned while still in the fair
// queue resolves as cancelled without ever reaching the engine.
func TestServerCancelWhileQueued(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	s, err := New(eng, Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Submit(context.Background(), "bob", core.Job{ID: 1}); err != nil {
		t.Fatal(err)
	}
	eng.waitInflight(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	ch2, err := s.Submit(ctx, "bob", core.Job{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	eng.complete(1) // free the slot; the dispatcher now pops job 2
	r, ok := <-ch2
	if !ok || !r.Cancelled {
		t.Fatalf("result = %+v ok=%v, want cancelled", r, ok)
	}
	if eng.inflightCount() != 0 {
		t.Error("cancelled-in-queue job reached the engine")
	}
	waitFor(t, func() bool { return s.Stats().Tenants[0].Cancelled == 1 })
}

// TestServerCancelInFlight: cancelling a context after dispatch withdraws
// the query from the engine.
func TestServerCancelInFlight(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	s, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := s.Submit(ctx, "bob", core.Job{ID: 7})
	if err != nil {
		t.Fatal(err)
	}
	eng.waitInflight(t, 1)
	cancel()
	r, ok := <-ch
	if !ok || !r.Cancelled {
		t.Fatalf("result = %+v ok=%v, want cancelled", r, ok)
	}
}

// TestServerCloseDrains: Close stops admission but resolves everything
// already accepted.
func TestServerCloseDrains(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	eng.auto = true
	s, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan core.Result
	for i := uint64(1); i <= 20; i++ {
		ch, err := s.Submit(context.Background(), fmt.Sprintf("t%d", i%4), core.Job{ID: i})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		if _, ok := <-ch; !ok {
			t.Fatalf("query %d dropped at Close", i+1)
		}
	}
	if _, err := s.Submit(context.Background(), "late", core.Job{ID: 99}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestServerTenantTableBound: auto-registration stops at MaxTenants.
func TestServerTenantTableBound(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	eng.auto = true
	s, err := New(eng, Config{MaxTenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(context.Background(), fmt.Sprintf("t%d", i), core.Job{ID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = s.Submit(context.Background(), "one-too-many", core.Job{ID: 9})
	over, ok := err.(*OverloadError)
	if !ok || over.Reason != OverloadTenants {
		t.Errorf("err = %v, want tenants OverloadError", err)
	}
}

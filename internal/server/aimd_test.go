package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/metric"
	"liferaft/internal/simclock"
)

// completeOne finishes an arbitrary in-flight job, returning its ID.
func (e *stubEngine) completeOne() (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, ch := range e.inflight {
		now := e.clk.Now()
		ch <- core.Result{QueryID: id, Arrived: now, Completed: now}
		close(ch)
		delete(e.inflight, id)
		return id, true
	}
	return 0, false
}

// tenantRate reads a tenant's current bucket rate under the server lock.
func tenantRate(s *Server, name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[name]
	if t == nil || t.bucket == nil {
		return -1
	}
	return t.bucket.rate
}

// TestAIMDCutAndRegrow pins the controller end to end on a virtual clock:
// an SLO breach cuts the backlogged tenant's rate (and only that
// tenant's), and sustained headroom regrows it additively.
func TestAIMDCutAndRegrow(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	reg := metric.NewRegistry()
	s, err := New(eng, Config{
		MaxInFlight:     1,
		Registry:        reg,
		SLOP99:          time.Second,
		ControlInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// greedy backlogs 4 queued behind 1 in flight; quiet queues just one.
	for i := uint64(1); i <= 5; i++ {
		if _, err := s.Submit(context.Background(), "greedy", core.Job{ID: i}); err != nil {
			t.Fatalf("greedy submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(context.Background(), "quiet", core.Job{ID: 100}); err != nil {
		t.Fatalf("quiet submit: %v", err)
	}
	eng.waitInflight(t, 1)

	// One completion past the SLO: the tick at its await sees p99 > SLO
	// with greedy backlogged.
	clk.Advance(3 * time.Second)
	eng.complete(1)
	waitFor(t, func() bool { return tenantRate(s, "greedy") < aimdUnlimited })
	if r := tenantRate(s, "quiet"); r < aimdUnlimited {
		t.Errorf("quiet (no backlog) was cut to %v qps; cuts must hit only backlogged tenants", r)
	}

	// Drain everything.
	for done := 0; done < 5; {
		eng.waitInflight(t, 1)
		if _, ok := eng.completeOne(); ok {
			done++
		}
	}
	waitFor(t, func() bool {
		st := s.Stats()
		var n int64
		for _, ts := range st.Tenants {
			n += ts.Completed
		}
		return n == 6
	})

	// Headroom ticks: instant completions well under the SLO, empty
	// queue. Each tick regrows greedy by aimdStep.
	cutRate := tenantRate(s, "greedy")
	for i := 0; i < 4; i++ {
		clk.Advance(200 * time.Millisecond)
		if _, err := s.Submit(context.Background(), "quiet", core.Job{ID: uint64(1000 + i)}); err != nil {
			t.Fatalf("headroom submit %d: %v", i, err)
		}
		eng.waitInflight(t, 1)
		eng.completeOne()
		want := tenantRate(s, "greedy")
		waitFor(t, func() bool { return tenantRate(s, "greedy") >= want })
	}
	waitFor(t, func() bool { return tenantRate(s, "greedy") > cutRate })
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.inFlight == 0 && s.fq.len() == 0
	})

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`liferaft_admission_total{tenant="greedy",decision="admitted"} 5`,
		`liferaft_aimd_rate_cuts_total{tenant="greedy"}`,
		`liferaft_aimd_rate_raises_total{tenant="greedy"}`,
		`liferaft_tenant_rate_qps{tenant="greedy"}`,
		`liferaft_response_seconds_bucket{tenant="greedy",le="+Inf"}`,
		`liferaft_queue_wait_seconds_count{tenant="quiet"}`,
		"liferaft_inflight 0",
		"liferaft_slo_p99_seconds 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestStaticModeKeepsOldBehavior: -rate-mode=static must be the
// pre-adaptive serving layer exactly — no bucket for unlimited tenants,
// no controller ticks.
func TestStaticModeKeepsOldBehavior(t *testing.T) {
	clk := simclock.NewVirtual()
	eng := newStubEngine(clk)
	eng.auto = true
	s, err := New(eng, Config{RateMode: RateStatic})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(context.Background(), "x", core.Job{ID: 1}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := s.Submit(context.Background(), "x", core.Job{ID: 2}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenants["x"].bucket != nil {
		t.Error("static mode gave an unlimited tenant a token bucket")
	}
	if !s.ctlLast.IsZero() {
		t.Error("static mode ran controller ticks")
	}
}

package server

import (
	"math"
	"sort"
	"time"
)

// AIMD controller constants. The shape (multiplicative decrease, additive
// increase) is what makes concurrent tenants converge to a fair share
// under contention; see DESIGN-overload.md for the stability argument.
const (
	// aimdUnlimited is the rate a tenant without a configured limit
	// starts at in adaptive mode: admission-equivalent to no bucket, but
	// cuttable the moment the SLO breaches.
	aimdUnlimited = 1e9
	// aimdBeta is the multiplicative decrease factor per breach tick.
	aimdBeta = 0.5
	// aimdStep is the additive increase in queries/sec per headroom tick.
	aimdStep = 1.0
	// aimdMinRate floors a cut: every tenant keeps a trickle, so a
	// governed tenant still probes the server and recovers when load
	// lifts (and a misconfigured SLO cannot silence a tenant entirely).
	aimdMinRate = 0.5
	// aimdHeadroomFrac is the fraction of the SLO below which the
	// controller sees headroom; the gap between it and 1.0 is the
	// hysteresis band where rates hold still.
	aimdHeadroomFrac = 0.7
	// aimdBacklogMin is the queued-query count at which a tenant counts
	// as backlogged and eligible for a cut. One queued query is a
	// closed-loop client waiting its turn, not an overload driver; a
	// standing queue of two or more means the tenant submits faster than
	// its fair share drains.
	aimdBacklogMin = 2
)

// maybeControlTick runs one AIMD evaluation when ControlInterval has
// elapsed on the serving clock since the last one. It piggybacks on
// data-path events (Submit, await) under s.mu instead of a timer
// goroutine, so it works identically on the real clock and on a virtual
// clock, where timers never fire. Caller holds s.mu.
func (s *Server) maybeControlTick(now time.Time) {
	if s.cfg.RateMode != RateAdaptive {
		return
	}
	if s.ctlLast.IsZero() {
		s.ctlLast = now
		return
	}
	el := now.Sub(s.ctlLast)
	if el < s.cfg.ControlInterval {
		return
	}
	s.controlTick(now, el)
	s.ctlLast = now
}

// controlTick evaluates the SLO over the window since the last tick and
// moves per-tenant rates: multiplicative decrease for backlogged tenants
// on a breach, additive increase for capped tenants on headroom. Caller
// holds s.mu.
func (s *Server) controlTick(now time.Time, el time.Duration) {
	p99 := percentile(s.ctlWindow, 0.99)
	s.ctlWindow = s.ctlWindow[:0]
	slo := s.cfg.SLOP99.Seconds()
	queued := s.fq.len()
	// Two breach signals: the completed-response p99 over the window, and
	// a standing aggregate backlog deeper than one tenant's full queue —
	// the early sign of the latency the *next* window will complete with.
	breach := (p99 > slo) || (queued > s.cfg.QueueDepth)
	headroom := p99 < slo*aimdHeadroomFrac && queued <= s.cfg.MaxInFlight
	intervalSec := el.Seconds()
	for _, t := range s.tenants {
		if t.bucket == nil {
			continue
		}
		observed := float64(t.winCompleted) / intervalSec
		t.winCompleted = 0
		switch {
		case breach && t.flow.size() >= aimdBacklogMin:
			// Cut only backlogged tenants: their demand exceeds their
			// service share. A tenant with at most one queued query is
			// not the overload and keeps its rate.
			r := t.bucket.rate
			if r > aimdUnlimited/2 {
				// First cut from "unlimited": halving infinity means
				// nothing, so rebase to the tenant's delivered rate —
				// what the engine actually gave it — before decreasing.
				r = math.Max(observed, 2*aimdMinRate)
			}
			r = math.Max(aimdMinRate, r*aimdBeta)
			t.bucket.setRate(r, now)
			if s.obs != nil {
				s.obs.rateCuts.With(t.name).Inc()
				s.obs.cutEvents.Inc()
				s.obs.rateLevel.Observe(r)
			}
		case headroom && t.bucket.rate < t.maxRate:
			nr := math.Min(t.maxRate, t.bucket.rate+aimdStep)
			t.bucket.setRate(nr, now)
			if s.obs != nil {
				s.obs.rateRaises.With(t.name).Inc()
				s.obs.raiseEvent.Inc()
				s.obs.rateLevel.Observe(nr)
			}
		}
	}
	if s.obs != nil {
		s.obs.ctlP99.Set(p99)
	}
}

// percentile returns the p-th percentile of xs (sorting xs in place), or
// 0 for an empty slice.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	return xs[i]
}

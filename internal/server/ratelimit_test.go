package server

import (
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b := newTokenBucket(2, 4) // 2 tokens/sec, burst 4

	// The bucket starts full: the burst is admitted back to back.
	for i := 0; i < 4; i++ {
		if !b.take(1, t0) {
			t.Fatalf("take %d of initial burst failed", i)
		}
	}
	if b.take(1, t0) {
		t.Fatal("empty bucket admitted a query")
	}
	// Retry hint: one token at 2/sec is 500ms away.
	if w := b.wait(1, t0); w != 500*time.Millisecond {
		t.Errorf("wait = %v, want 500ms", w)
	}
	// After 1s, two tokens have accrued.
	t1 := t0.Add(time.Second)
	if !b.take(1, t1) || !b.take(1, t1) {
		t.Fatal("refilled tokens not admitted")
	}
	if b.take(1, t1) {
		t.Fatal("third query admitted after only 2 tokens refilled")
	}
	// Refill clamps at burst: a long idle period cannot bank more than
	// the bucket holds.
	t2 := t1.Add(time.Hour)
	b.refill(t2)
	if b.tokens != 4 {
		t.Errorf("tokens after long idle = %v, want burst 4", b.tokens)
	}
	// Time moving backwards (clock skew) must not mint tokens.
	for i := 0; i < 4; i++ {
		b.take(1, t2)
	}
	if b.take(1, t2.Add(-time.Minute)) {
		t.Error("backwards clock minted tokens")
	}
}

func TestTokenBucketBurstClamp(t *testing.T) {
	b := newTokenBucket(1, 0)
	if b.burst != 1 {
		t.Errorf("burst clamped to %v, want 1", b.burst)
	}
}

// Regression: with a tiny configured rate, deficit/rate*1e9 exceeds the
// int64 nanosecond range and the unclamped conversion produced a
// negative Retry-After. The hint must stay in [0, maxWait] for any
// rate.
func TestTokenBucketWaitClamped(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, rate := range []float64{1e-12, 1e-6, 0.001, 0} {
		b := newTokenBucket(rate, 1)
		if !b.take(1, t0) {
			t.Fatalf("rate %v: initial token not admitted", rate)
		}
		w := b.wait(1, t0)
		if w < 0 {
			t.Errorf("rate %v: wait = %v, negative Retry-After leaked", rate, w)
		}
		if w > maxWait {
			t.Errorf("rate %v: wait = %v exceeds clamp %v", rate, w, maxWait)
		}
		if w == 0 {
			t.Errorf("rate %v: wait = 0 for an empty bucket", rate)
		}
	}
	// Sane rates still get the exact hint, not the clamp.
	b := newTokenBucket(2, 1)
	b.take(1, t0)
	if w := b.wait(1, t0); w != 500*time.Millisecond {
		t.Errorf("wait = %v, want 500ms", w)
	}
}

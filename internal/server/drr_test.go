package server

import (
	"testing"

	"liferaft/internal/core"
	"liferaft/internal/xmatch"
)

// mkPending fabricates a pending job with the given workload-object count
// (the DRR cost unit).
func mkPending(id uint64, objects int) *pending {
	return &pending{job: core.Job{ID: id, Objects: make([]xmatch.WorkloadObject, objects)}}
}

// TestFairQueueFIFOWithinFlow: one flow pops in submission order.
func TestFairQueueFIFOWithinFlow(t *testing.T) {
	fq := newFairQueue(4)
	fl := fq.flowFor("a", 1)
	for i := uint64(1); i <= 5; i++ {
		fq.push(fl, mkPending(i, 3))
	}
	for i := uint64(1); i <= 5; i++ {
		if p := fq.pop(); p.job.ID != i {
			t.Fatalf("pop = %d, want %d", p.job.ID, i)
		}
	}
	if !fq.empty() {
		t.Error("queue should be empty")
	}
}

// TestFairQueueEqualShares: two backlogged flows with equal weights and
// equal costs alternate service, so a flood from one cannot starve the
// other.
func TestFairQueueEqualShares(t *testing.T) {
	fq := newFairQueue(4)
	flood := fq.flowFor("flood", 1)
	steady := fq.flowFor("steady", 1)
	for i := 0; i < 100; i++ {
		fq.push(flood, mkPending(uint64(i), 8))
	}
	for i := 0; i < 10; i++ {
		fq.push(steady, mkPending(uint64(1000+i), 8))
	}
	// Within the first 25 pops, the steady tenant must have received
	// close to half the service despite being outnumbered 10:1.
	got := 0
	for i := 0; i < 25; i++ {
		if fq.pop().job.ID >= 1000 {
			got++
		}
	}
	if got < 10 {
		t.Errorf("steady tenant got %d of its 10 jobs in 25 pops; flood starved it", got)
	}
}

// TestFairQueueWeightedShares: a weight-3 flow receives ~3x the service
// of a weight-1 flow, measured in cost units.
func TestFairQueueWeightedShares(t *testing.T) {
	fq := newFairQueue(4)
	heavy := fq.flowFor("heavy", 3)
	light := fq.flowFor("light", 1)
	for i := 0; i < 200; i++ {
		fq.push(heavy, mkPending(uint64(i), 6))
		fq.push(light, mkPending(uint64(1000+i), 6))
	}
	heavyCost, lightCost := 0, 0
	for i := 0; i < 120; i++ {
		p := fq.pop()
		if p.job.ID >= 1000 {
			lightCost += len(p.job.Objects)
		} else {
			heavyCost += len(p.job.Objects)
		}
	}
	ratio := float64(heavyCost) / float64(lightCost)
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("heavy/light service ratio = %.2f, want ~3 (weights 3:1)", ratio)
	}
}

// TestFairQueueCostFairness: flows with very different per-job costs get
// equal service measured in cost, not in job count.
func TestFairQueueCostFairness(t *testing.T) {
	fq := newFairQueue(4)
	big := fq.flowFor("big", 1)
	small := fq.flowFor("small", 1)
	for i := 0; i < 50; i++ {
		fq.push(big, mkPending(uint64(i), 20))
	}
	for i := 0; i < 1000; i++ {
		fq.push(small, mkPending(uint64(10000+i), 1))
	}
	bigCost, smallCost := 0, 0
	for i := 0; i < 400; i++ {
		p := fq.pop()
		if p.job.ID >= 10000 {
			smallCost++
		} else {
			bigCost += 20
		}
	}
	ratio := float64(bigCost) / float64(smallCost)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("big/small cost ratio = %.2f, want ~1 (equal weights)", ratio)
	}
}

// TestFairQueueIdleFlowForfeitsDeficit: a flow that drains and re-enters
// starts from zero deficit — idle time must not bank credit.
func TestFairQueueIdleFlowForfeitsDeficit(t *testing.T) {
	fq := newFairQueue(1)
	fl := fq.flowFor("a", 1)
	fq.push(fl, mkPending(1, 1))
	fq.pop()
	if fl.active || fl.deficit != 0 {
		t.Errorf("drained flow: active=%v deficit=%d, want inactive with 0", fl.active, fl.deficit)
	}
	// Re-entering requires fresh accumulation: a cost-5 job under
	// quantum 1 needs 5 visits.
	fq.push(fl, mkPending(2, 5))
	if p := fq.pop(); p.job.ID != 2 {
		t.Fatalf("pop = %d", p.job.ID)
	}
	if fl.deficit != 0 {
		t.Errorf("deficit after exact-cost pop = %d, want 0", fl.deficit)
	}
}

// Regression: pop used to head-pop with queue = queue[1:], which keeps
// the burst's full backing array reachable for the flow's lifetime. A
// drained burst must leave only a bounded backing array behind, and a
// mostly-drained one must not retain its peak allocation.
func TestFairQueuePopBoundsRetainedCapacity(t *testing.T) {
	const burst = 50_000
	fq := newFairQueue(4)
	fl := fq.flowFor("bursty", 1)
	for i := 0; i < burst; i++ {
		fq.push(fl, mkPending(uint64(i), 1))
	}
	if cap(fl.queue) < burst {
		t.Fatalf("setup: burst did not grow the queue (cap %d)", cap(fl.queue))
	}

	// Drain to a small live tail: the backing array must shrink with
	// the queue instead of staying at burst size.
	for i := 0; i < burst-10; i++ {
		fq.pop()
	}
	if fl.size() != 10 {
		t.Fatalf("live tail = %d, want 10", fl.size())
	}
	if c := cap(fl.queue); c > 4*flowShrinkCap {
		t.Errorf("after draining to 10 live jobs, retained cap = %d, want <= %d", c, 4*flowShrinkCap)
	}

	// Full drain: the burst array must be gone entirely.
	for fl.size() > 0 {
		fq.pop()
	}
	if c := cap(fl.queue); c > flowShrinkCap {
		t.Errorf("after full drain, retained cap = %d, want <= %d", c, flowShrinkCap)
	}
	if !fq.empty() {
		t.Error("queue should be empty")
	}

	// The flow must still work after shrinking: order preserved across
	// a compaction boundary.
	for i := 0; i < 100; i++ {
		fq.push(fl, mkPending(uint64(i), 1))
	}
	for i := 0; i < 100; i++ {
		if p := fq.pop(); p.job.ID != uint64(i) {
			t.Fatalf("post-shrink pop = %d, want %d", p.job.ID, i)
		}
	}
}

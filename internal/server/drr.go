package server

// fairQueue schedules pending work across tenants by deficit round robin
// (Shreedhar & Varghese, SIGCOMM '95): each flow (tenant) holds a FIFO of
// jobs with integer costs; on each visit a flow's deficit grows by
// quantum x weight and it may release jobs while the deficit covers their
// cost. Over time every backlogged flow receives service proportional to
// its weight regardless of how many jobs it enqueues — a tenant flooding
// ten thousand queries cannot starve a tenant submitting one.
//
// fairQueue is not safe for concurrent use; the Server serializes access
// under its mutex.
type fairQueue struct {
	quantum int64
	flows   map[string]*flow
	ring    []*flow // backlogged flows; head is the next visited
	queued  int
}

type flow struct {
	name   string
	weight int64
	// queue[head:] is the flow's FIFO. Pops advance head instead of
	// re-slicing from the front: a front re-slice (queue = queue[1:])
	// keeps the full backing array reachable forever, so one burst from
	// a tenant would pin its peak allocation for the flow's lifetime.
	// popFront compacts and shrinks as the queue drains (see
	// flowShrinkCap).
	queue    []*pending
	head     int
	deficit  int64
	credited bool // deficit already granted for the current visit
	active   bool // in the ring
}

// flowShrinkCap bounds the backing array a drained (or mostly drained)
// flow may retain: above it, popFront releases the array instead of
// recycling it. 32 pointers is one cache line of queue for a tenant's
// steady state.
const flowShrinkCap = 32

// size returns the number of queued jobs.
func (fl *flow) size() int { return len(fl.queue) - fl.head }

// front returns the head job without removing it.
func (fl *flow) front() *pending { return fl.queue[fl.head] }

// popFront removes and returns the head job, keeping the retained
// backing array bounded: the dead prefix is compacted away once it
// dominates the live tail, and an array left mostly (or entirely)
// slack is released rather than recycled.
func (fl *flow) popFront() *pending {
	p := fl.queue[fl.head]
	fl.queue[fl.head] = nil // release the reference
	fl.head++
	rem := fl.size()
	if rem == 0 {
		fl.head = 0
		if cap(fl.queue) > flowShrinkCap {
			fl.queue = nil
		} else {
			fl.queue = fl.queue[:0]
		}
		return p
	}
	if fl.head > flowShrinkCap && fl.head >= rem {
		if cap(fl.queue) > flowShrinkCap && cap(fl.queue) > 4*rem {
			// Mostly slack: move the live tail to a right-sized array.
			q := make([]*pending, rem)
			copy(q, fl.queue[fl.head:])
			fl.queue = q
		} else {
			// Slide the live tail down over the dead prefix.
			n := copy(fl.queue, fl.queue[fl.head:])
			tail := fl.queue[n:]
			for i := range tail {
				tail[i] = nil
			}
			fl.queue = fl.queue[:n]
		}
		fl.head = 0
	}
	return p
}

func newFairQueue(quantum int) *fairQueue {
	return &fairQueue{quantum: int64(quantum), flows: make(map[string]*flow)}
}

// jobCost is the DRR cost of a job: its workload-object count, the unit
// the engine's service time actually scales with. Empty jobs cost 1 so
// they still consume schedule share.
func jobCost(p *pending) int64 {
	if n := int64(len(p.job.Objects)); n > 0 {
		return n
	}
	return 1
}

// flowFor returns the named flow, creating it with the given weight.
func (f *fairQueue) flowFor(name string, weight int) *flow {
	fl := f.flows[name]
	if fl == nil {
		if weight < 1 {
			weight = 1
		}
		fl = &flow{name: name, weight: int64(weight)}
		f.flows[name] = fl
	}
	return fl
}

// push enqueues p on its tenant's flow.
func (f *fairQueue) push(fl *flow, p *pending) {
	fl.queue = append(fl.queue, p)
	f.queued++
	if !fl.active {
		fl.active = true
		fl.deficit = 0
		fl.credited = false
		f.ring = append(f.ring, fl)
	}
}

// empty reports whether no flow holds work.
func (f *fairQueue) empty() bool { return f.queued == 0 }

// len returns the total queued jobs across flows.
func (f *fairQueue) len() int { return f.queued }

// pop releases the next job per DRR. It panics on an empty queue; callers
// check empty() first. Each full ring pass credits every backlogged flow,
// so a job costlier than one quantum is released after proportionally many
// passes — weighted fairness emerges from exactly this accumulation.
func (f *fairQueue) pop() *pending {
	if f.queued == 0 {
		panic("server: pop on empty fair queue")
	}
	for {
		fl := f.ring[0]
		if !fl.credited {
			fl.deficit += f.quantum * fl.weight
			fl.credited = true
		}
		if cost := jobCost(fl.front()); cost <= fl.deficit {
			p := fl.popFront()
			fl.deficit -= cost
			f.queued--
			if fl.size() == 0 {
				// An emptied flow leaves the ring and forfeits its
				// deficit: credit must not accumulate while idle.
				fl.active = false
				fl.deficit = 0
				fl.credited = false
				f.ring = f.ring[1:]
			}
			return p
		}
		// Head job unaffordable: move to the back, re-credit next visit.
		fl.credited = false
		f.ring = append(f.ring[1:], fl)
	}
}

package server

import (
	"liferaft/internal/metric"
)

// servingMetrics holds the serving-layer metric families. Tenant-labeled
// families are capped (tenantSeriesCap) so a tenant churn cannot grow the
// registry or a scrape without bound: idle tenants fold into the "_other"
// overflow series with counts conserved (see internal/metric).
type servingMetrics struct {
	admission  *metric.CounterVec   // tenant, decision
	tbWait     *metric.HistogramVec // tenant: Retry-After handed to rate-limited queries
	queueWait  *metric.HistogramVec // tenant: admission → dispatch
	queueDepth *metric.GaugeVec     // tenant, at gather
	response   *metric.HistogramVec // tenant: admission → completion
	tenantRate *metric.GaugeVec     // tenant, at gather
	rateCuts   *metric.CounterVec   // tenant
	rateRaises *metric.CounterVec   // tenant
	rateLevel  *metric.Histogram    // rate in qps after every AIMD move
	cutEvents  *metric.Counter      // AIMD cuts across all tenants
	raiseEvent *metric.Counter      // AIMD raises across all tenants
	queued     *metric.Gauge
	inFlight   *metric.Gauge
	tenants    *metric.Gauge
	ctlP99     *metric.Gauge
	sloP99     *metric.Gauge
}

// tenantSeriesCap bounds every tenant-labeled family. 256 live tenants
// render individually; beyond that the least-recently-active fold into
// "_other".
const tenantSeriesCap = 256

// Admission decision label values.
const (
	decisionAdmitted        = "admitted"
	decisionRejectedRate    = "rejected_rate"
	decisionRejectedQueue   = "rejected_queue"
	decisionRejectedTenants = "rejected_tenants"
)

func newServingMetrics(reg *metric.Registry) *servingMetrics {
	tenant := []string{"tenant"}
	capped := metric.VecOpts{MaxSeries: tenantSeriesCap}
	return &servingMetrics{
		admission: reg.NewCounterVec("liferaft_admission_total",
			"Admission decisions by tenant: admitted, rejected_rate (token bucket empty), rejected_queue (tenant queue full), rejected_tenants (tenant table full).",
			[]string{"tenant", "decision"}, capped),
		tbWait: reg.NewHistogramVec("liferaft_tokenbucket_wait_seconds",
			"Retry-After hint handed to rate-limited queries (how long until a token accrues).",
			tenant, nil, capped),
		queueWait: reg.NewHistogramVec("liferaft_queue_wait_seconds",
			"Fair-queue wait on the serving clock, admission to dispatch.",
			tenant, nil, capped),
		queueDepth: reg.NewGaugeVec("liferaft_queue_depth",
			"Queries queued per tenant at scrape time.",
			tenant, capped),
		response: reg.NewHistogramVec("liferaft_response_seconds",
			"Client-observed response time on the serving clock, admission to engine completion.",
			tenant, nil, capped),
		tenantRate: reg.NewGaugeVec("liferaft_tenant_rate_qps",
			"Current per-tenant admission rate at scrape time; the AIMD controller moves it in adaptive mode.",
			tenant, capped),
		rateCuts: reg.NewCounterVec("liferaft_aimd_rate_cuts_total",
			"AIMD multiplicative rate decreases per tenant (SLO breach with that tenant backlogged).",
			tenant, capped),
		rateRaises: reg.NewCounterVec("liferaft_aimd_rate_raises_total",
			"AIMD additive rate increases per tenant (sustained headroom).",
			tenant, capped),
		rateLevel: reg.NewHistogram("liferaft_aimd_rate_level",
			"Distribution of per-tenant rates (qps) set by AIMD moves, all tenants pooled. Convergence shows as observations concentrating in one band; oscillation as a bimodal spread.",
			metric.ExpBuckets(0.5, 2, 14)),
		cutEvents: reg.NewCounter("liferaft_aimd_cut_events_total",
			"AIMD multiplicative decreases across all tenants."),
		raiseEvent: reg.NewCounter("liferaft_aimd_raise_events_total",
			"AIMD additive increases across all tenants."),
		queued: reg.NewGauge("liferaft_queued",
			"Queries queued across all tenants at scrape time."),
		inFlight: reg.NewGauge("liferaft_inflight",
			"Queries inside the engine at scrape time (bounded by MaxInFlight)."),
		tenants: reg.NewGauge("liferaft_tenants",
			"Registered tenants at scrape time (bounded by MaxTenants)."),
		ctlP99: reg.NewGauge("liferaft_control_p99_seconds",
			"Windowed p99 response time the AIMD controller saw at its last tick (0 until a window completes)."),
		sloP99: reg.NewGauge("liferaft_slo_p99_seconds",
			"Configured p99 response-time SLO driving the AIMD controller."),
	}
}

package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/geom"
	"liferaft/internal/workload"
	"liferaft/internal/xmatch"
)

// The acceptance geometry: a 32-bucket partition served by a 4-shard
// virtual-clock engine, one steady tenant next to one saturating-bursty
// tenant.
var (
	ltOnce   sync.Once
	ltPart   *bucket.Partition
	ltSteady []core.Job
	ltBursty []core.Job
)

func loadFixture(t *testing.T) (*bucket.Partition, []core.Job, []core.Job) {
	t.Helper()
	ltOnce.Do(func() {
		local, err := catalog.New(catalog.Config{
			Name: "sdss", N: 12_800, Seed: 21, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
			Name: "twomass", Seed: 22, Fraction: 0.8,
			JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ltPart, err = bucket.NewPartition(local, 400, 0) // 32 buckets
		if err != nil {
			t.Fatal(err)
		}
		mkJobs := func(seed int64, n int, minSel, maxSel float64) []core.Job {
			cfg := workload.DefaultTraceConfig(seed)
			cfg.NumQueries = n
			cfg.MinSelectivity, cfg.MaxSelectivity = minSel, maxSel
			tr, err := workload.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var jobs []core.Job
			for _, q := range tr.Queries {
				objs := workload.Materialize(q, remote, cfg.Seed)
				jobs = append(jobs, core.Job{Objects: objs, Pred: q.Predicate()})
			}
			return jobs
		}
		// The steady tenant issues small queries; the bursty tenant's are
		// larger and numerous — the flood a shared archive actually sees.
		ltSteady = mkJobs(31, 40, 0.1, 0.3)
		ltBursty = mkJobs(37, 300, 0.5, 1.0)
	})
	return ltPart, ltSteady, ltBursty
}

func newShardedLive(t *testing.T) *core.Live {
	t.Helper()
	part, _, _ := loadFixture(t)
	cfg, _ := core.NewVirtual(part, 0.5, false)
	cfg.Shards = 4
	l, err := core.NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

var ltNextID atomic.Uint64

// withID clones a template job under a fresh unique query ID (engines
// reject duplicate IDs); the workload objects carry the ID too.
func withID(j core.Job) core.Job {
	j.ID = ltNextID.Add(1)
	objs := make([]xmatch.WorkloadObject, len(j.Objects))
	for i, wo := range j.Objects {
		wo.QueryID = j.ID
		objs[i] = wo
	}
	j.Objects = objs
	return j
}

// runSteadyClosedLoop drives the steady tenant: one query outstanding at a
// time (a human astronomer at roughly 10% of what the engine could give
// them solo), submitted through the serving layer.
func runSteadyClosedLoop(t *testing.T, s *Server, jobs []core.Job) {
	t.Helper()
	for _, j := range jobs {
		ch, err := s.Submit(context.Background(), "steady", withID(j))
		if err != nil {
			t.Fatalf("steady submit: %v", err)
		}
		if _, ok := <-ch; !ok {
			t.Fatal("steady query dropped")
		}
	}
}

// TestLoadSteadyTenantBoundedP99 is the acceptance load test: with two
// tenants — one saturating and bursty, one steady — against a 4-shard
// virtual-clock engine, the steady tenant's p99 response time behind
// admission control stays within 2x of its solo-run p99, while submitting
// the same flood directly into the engine (no serving layer) degrades it
// by an order of magnitude.
func TestLoadSteadyTenantBoundedP99(t *testing.T) {
	_, steady, bursty := loadFixture(t)

	serveCfg := Config{
		MaxInFlight: 4,
		Quantum:     32,
		Tenants: []TenantConfig{
			{Name: "steady", Rate: -1},                         // unlimited; it self-paces
			{Name: "bursty", Rate: 2, Burst: 4, QueueDepth: 8}, // its fair share
		},
	}

	// Solo run: the steady tenant alone, through the serving layer.
	solo := newShardedLive(t)
	sSolo, err := New(solo, serveCfg)
	if err != nil {
		t.Fatal(err)
	}
	runSteadyClosedLoop(t, sSolo, steady)
	soloP99 := sSolo.TenantSummary("steady").P99
	sSolo.Close()
	solo.Close()
	if soloP99 <= 0 {
		t.Fatal("solo p99 is zero; fixture jobs too small")
	}

	// Competitive run with admission control: the bursty tenant floods
	// continuously (open loop, rejects dropped) while the steady tenant
	// runs its closed loop.
	eng := newShardedLive(t)
	s, err := New(eng, serveCfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	floodDone := make(chan struct{})
	var admitted, rejected int64
	go func() {
		defer close(floodDone)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_, err := s.Submit(context.Background(), "bursty", withID(bursty[i%len(bursty)]))
			if err != nil {
				rejected++
				time.Sleep(time.Millisecond) // real-time pause; virtual tokens accrue as the engine works
			} else {
				admitted++
			}
		}
	}()
	runSteadyClosedLoop(t, s, steady)
	close(done)
	<-floodDone
	fairP99 := s.TenantSummary("steady").P99
	burstyStats := s.TenantSummary("bursty")
	s.Close()
	eng.Close()
	if admitted == 0 || rejected == 0 {
		t.Fatalf("flood admitted=%d rejected=%d: not a saturating bursty tenant", admitted, rejected)
	}

	// No serving layer: the flood goes straight into the engine's
	// workload queues. The bursty tenant arrives faster than the engine
	// services, so the backlog — and with it the steady tenant's
	// response time — grows without bound; the test keeps the engine
	// backlogged at every steady submission (pre-load plus top-ups, the
	// steady state of a saturating open-loop arrival process) and checks
	// the steady tenant pays for it.
	raw := newShardedLive(t)
	next := 0
	flood := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := raw.Submit(withID(bursty[next%len(bursty)])); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	flood(500)
	var rawTimes []float64
	for _, j := range steady {
		ch, err := raw.Submit(withID(j))
		if err != nil {
			t.Fatal(err)
		}
		r, ok := <-ch
		if !ok {
			t.Fatal("steady query dropped")
		}
		rawTimes = append(rawTimes, r.ResponseTime().Seconds())
		flood(30)
	}
	raw.Close()
	rawP99 := percentileOf(rawTimes, 0.99)

	t.Logf("steady p99: solo=%.3fs fair=%.3fs raw=%.3fs (fair/solo=%.2fx raw/solo=%.2fx); bursty completed=%d",
		soloP99, fairP99, rawP99, fairP99/soloP99, rawP99/soloP99, burstyStats.Count)

	if fairP99 > 2*soloP99 {
		t.Errorf("steady p99 with admission = %.3fs, more than 2x solo %.3fs", fairP99, soloP99)
	}
	if rawP99 < 4*soloP99 {
		t.Errorf("steady p99 without serving layer = %.3fs, expected heavy degradation vs solo %.3fs", rawP99, soloP99)
	}
	if fairP99 >= rawP99 {
		t.Errorf("admission control did not help: fair %.3fs >= raw %.3fs", fairP99, rawP99)
	}
}

func percentileOf(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}

package server

import (
	"context"
	"testing"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/geom"
	"liferaft/internal/workload"
)

// BenchmarkServerSubmit measures the serving layer's end-to-end overhead:
// admission, fair queueing, dispatch, and result relay around a 4-shard
// virtual-clock engine.
func BenchmarkServerSubmit(b *testing.B) {
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: 12_800, Seed: 21, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
		Name: "twomass", Seed: 22, Fraction: 0.8,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	part, err := bucket.NewPartition(local, 400, 0)
	if err != nil {
		b.Fatal(err)
	}
	tcfg := workload.DefaultTraceConfig(41)
	tcfg.NumQueries = 64
	tr, err := workload.Generate(tcfg)
	if err != nil {
		b.Fatal(err)
	}
	var jobs []core.Job
	for _, q := range tr.Queries {
		jobs = append(jobs, core.Job{Objects: workload.Materialize(q, remote, tcfg.Seed), Pred: q.Predicate()})
	}
	cfg, _ := core.NewVirtual(part, 0.5, false)
	cfg.Shards = 4
	eng, err := core.NewLive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	s, err := New(eng, Config{MaxInFlight: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := s.Submit(context.Background(), "bench", withID(jobs[i%len(jobs)]))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := <-ch; !ok {
			b.Fatal("query dropped")
		}
	}
}

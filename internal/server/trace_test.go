package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/metric"
	"liferaft/internal/simclock"
	"liferaft/internal/trace"
)

// spanCoverage returns the fraction of [d.Start, d.End] covered by the
// union of the trace's span intervals (clipped to the window).
func spanCoverage(d trace.Data) float64 {
	total := d.End.Sub(d.Start).Seconds()
	if total <= 0 {
		return 1 // instantaneous response: nothing to attribute
	}
	type iv struct{ a, b time.Time }
	ivs := make([]iv, 0, len(d.Spans))
	for _, sp := range d.Spans {
		a, b := sp.Start, sp.End
		if a.Before(d.Start) {
			a = d.Start
		}
		if b.After(d.End) {
			b = d.End
		}
		if b.After(a) {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
	var covered float64
	var curA, curB time.Time
	for i, v := range ivs {
		if i == 0 || v.a.After(curB) {
			covered += curB.Sub(curA).Seconds()
			curA, curB = v.a, v.b
			continue
		}
		if v.b.After(curB) {
			curB = v.b
		}
	}
	covered += curB.Sub(curA).Seconds()
	return covered / total
}

// TestTracedRequestCoverageAndExemplar is the tentpole acceptance test:
// queries traced through the full serving path (admission → fair queue →
// sharded engine → bucket services → store reads) yield a capture whose
// spans account for at least 95% of the wall-clock (virtual) response
// time, the /metrics scrape links a liferaft_response_seconds bucket to
// that capture via an OpenMetrics exemplar, and slow traces survive in
// the forensics ring.
func TestTracedRequestCoverageAndExemplar(t *testing.T) {
	_, steady, _ := loadFixture(t)
	eng := newShardedLive(t)
	defer eng.Close()

	reg := metric.NewRegistry()
	srv, err := New(eng, Config{
		MaxInFlight: 2,
		Registry:    reg,
		Tenants:     []TenantConfig{{Name: "alice", Rate: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// SlowThreshold 1ns: every finished trace lands in the slow ring, so
	// the test exercises preferential retention without tuning durations.
	rec := trace.New(trace.Config{Now: eng.Clock().Now, SlowThreshold: time.Nanosecond})

	var captures []trace.Data
	for _, j := range steady[:6] {
		job := withID(j)
		tr := rec.Start("alice", job.ID)
		ctx := trace.NewContext(context.Background(), tr)
		ch, err := srv.Submit(ctx, "alice", job)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, ok := <-ch; !ok {
			t.Fatal("query dropped")
		}
		captures = append(captures, rec.Finish(tr))
	}

	stages := map[string]bool{}
	for _, d := range captures {
		if cov := spanCoverage(d); cov < 0.95 {
			t.Errorf("trace %s: spans cover %.1f%% of the %.3fs response, want >= 95%%",
				d.TraceID, cov*100, d.ResponseSec)
		}
		for _, sp := range d.Spans {
			stages[sp.Stage] = true
		}
	}
	for _, want := range []string{
		trace.StageAdmission, trace.StageQueueWait, trace.StageEngine,
		trace.StageEngineAdmit, trace.StageService, trace.StageStoreRead,
	} {
		if !stages[want] {
			t.Errorf("no %q span recorded across %d traced queries", want, len(captures))
		}
	}

	// The scrape carries at least one exemplar on a response bucket, and
	// it resolves to a finished capture.
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	var exemplarID string
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "liferaft_response_seconds_bucket") {
			continue
		}
		if i := strings.Index(line, `# {trace_id="`); i >= 0 {
			rest := line[i+len(`# {trace_id="`):]
			exemplarID = rest[:strings.IndexByte(rest, '"')]
			break
		}
	}
	if exemplarID == "" {
		t.Fatalf("no exemplar on liferaft_response_seconds:\n%s", b.String())
	}
	id, err := trace.ParseID(exemplarID)
	if err != nil {
		t.Fatalf("exemplar id %q: %v", exemplarID, err)
	}
	if _, ok := rec.Get(id); !ok {
		t.Fatalf("exemplar id %s does not resolve to a captured trace", exemplarID)
	}

	// Every query that consumed any virtual time breached the 1ns
	// threshold and must be held in the forensics ring. (Fully-cached
	// queries can complete with zero virtual elapsed and are not slow.)
	wantSlow := 0
	for _, d := range captures {
		if d.ResponseSec > 0 {
			wantSlow++
		}
	}
	if wantSlow == 0 {
		t.Fatal("no query consumed virtual time; fixture no longer exercises store reads")
	}
	if slow := rec.Slow(); len(slow) != wantSlow {
		t.Fatalf("slow ring has %d traces, want %d (threshold 1ns)", len(slow), wantSlow)
	}
}

// TestTracedRejectionSpan: an admission rejection annotates the trace
// instead of dropping it.
func TestTracedRejectionSpan(t *testing.T) {
	eng := newStubEngine(simclock.NewVirtual())
	eng.auto = true
	srv, err := New(eng, Config{
		MaxInFlight: 1,
		Tenants:     []TenantConfig{{Name: "t", Rate: 1, Burst: 1, QueueDepth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := trace.New(trace.Config{Now: eng.clk.Now})
	// The first query takes the only token; the virtual clock never
	// advances, so no token accrues and a later submit must reject.
	var rejected trace.Data
	for i := uint64(1); i <= 5; i++ {
		tr := rec.Start("t", i)
		ctx := trace.NewContext(context.Background(), tr)
		_, err := srv.Submit(ctx, "t", core.Job{ID: i})
		if err != nil {
			rejected = rec.Finish(tr)
			break
		}
	}
	if rejected.TraceID == 0 {
		t.Fatal("no submission rejected")
	}
	found := false
	for _, sp := range rejected.Spans {
		if sp.Stage == trace.StageAdmission && sp.Err != "" &&
			(sp.Attr == decisionRejectedRate || sp.Attr == decisionRejectedQueue) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error-annotated admission span in %+v", rejected.Spans)
	}
}

// TestGatewayTraceIDAndDebugEndpoints: with a Tracer configured, query
// responses carry a trace_id that resolves under /debug/traces/{id}, and
// the /debug/traces index lists it.
func TestGatewayTraceIDAndDebugEndpoints(t *testing.T) {
	eng := newStubEngine(simclock.NewVirtual())
	eng.auto = true
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := trace.New(trace.Config{Now: eng.clk.Now})
	g, err := NewGateway(GatewayConfig{
		Exec: func(ctx context.Context, tenant, query string) (any, error) {
			ch, err := srv.Submit(ctx, tenant, core.Job{ID: 1})
			if err != nil {
				return nil, err
			}
			<-ch
			return "ok", nil
		},
		Server: srv,
		Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	resp, out := postQuery(t, ts, `{"tenant":"alice","query":"SELECT 1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	id, _ := out["trace_id"].(string)
	if id == "" {
		t.Fatalf("response has no trace_id: %v", out)
	}

	dr, err := http.Get(ts.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces/%s status = %d", id, dr.StatusCode)
	}
	var d trace.Data
	if err := json.NewDecoder(dr.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.TraceID.String() != id {
		t.Fatalf("detail trace_id = %s, want %s", d.TraceID, id)
	}
	hasAdmission := false
	for _, sp := range d.Spans {
		if sp.Stage == trace.StageAdmission && sp.Attr == decisionAdmitted {
			hasAdmission = true
		}
	}
	if !hasAdmission {
		t.Fatalf("gateway-started trace has no admitted span: %+v", d.Spans)
	}

	ir, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer ir.Body.Close()
	body := new(strings.Builder)
	if _, err := io.Copy(body, ir.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), id) {
		t.Fatalf("/debug/traces index does not list %s:\n%s", id, body.String())
	}
}

// TestGatewaySampledOutTraceID: with a near-zero sample rate, responses
// stop echoing trace_ids (the capture they would link to is unpublished)
// and the recorder counts the traces as sampled out — while still
// recording them, so a slow one would be force-captured.
func TestGatewaySampledOutTraceID(t *testing.T) {
	eng := newStubEngine(simclock.NewVirtual())
	eng.auto = true
	srv, err := New(eng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rec := trace.New(trace.Config{Now: eng.clk.Now, Sample: 1e-12})
	g, err := NewGateway(GatewayConfig{
		Exec: func(ctx context.Context, tenant, query string) (any, error) {
			ch, err := srv.Submit(ctx, tenant, core.Job{ID: 1})
			if err != nil {
				return nil, err
			}
			<-ch
			return "ok", nil
		},
		Server: srv,
		Tracer: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	for i := 0; i < 8; i++ {
		resp, out := postQuery(t, ts, `{"tenant":"alice","query":"SELECT 1"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %v", resp.StatusCode, out)
		}
		if id, _ := out["trace_id"].(string); id != "" {
			t.Fatalf("query %d: unsampled response carries trace_id %s", i, id)
		}
	}
	_, finished, _, sampledOut := rec.Stats()
	if finished != 8 || sampledOut != 8 {
		t.Fatalf("finished/sampledOut = %d/%d, want 8/8", finished, sampledOut)
	}
	if got := rec.Recent(); len(got) != 0 {
		t.Fatalf("recent ring holds %d unsampled traces, want 0", len(got))
	}
}

package server

import (
	"math"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter measured against the
// serving clock: tokens accrue at rate per second up to burst, and each
// admitted query spends one. Running it on the engine's clock means the
// limiter is exact under the virtual clock (tests, capacity planning) and
// the real clock (deployments) alike.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket. rate must be positive; burst is
// clamped to at least 1 token.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := math.Max(1, float64(burst))
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

func (b *tokenBucket) refill(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
}

// take spends n tokens if available.
func (b *tokenBucket) take(n float64, now time.Time) bool {
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// wait returns how long until n tokens will have accrued — the
// Retry-After hint handed to a rate-limited tenant.
func (b *tokenBucket) wait(n float64, now time.Time) time.Duration {
	b.refill(now)
	deficit := n - b.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

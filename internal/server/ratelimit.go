package server

import (
	"math"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter measured against the
// serving clock: tokens accrue at rate per second up to burst, and each
// admitted query spends one. Running it on the engine's clock means the
// limiter is exact under the virtual clock (tests, capacity planning) and
// the real clock (deployments) alike.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket. rate must be positive; burst is
// clamped to at least 1 token.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := math.Max(1, float64(burst))
	return &tokenBucket{rate: rate, burst: b, tokens: b}
}

func (b *tokenBucket) refill(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		}
	}
	b.last = now
}

// unlimited reports whether the bucket is at the adaptive-mode
// "effectively unlimited" sentinel rate. Admission must skip take() then:
// on a stalled virtual clock (cache-hot engine, zero modeled cost) no
// tokens ever accrue, and an unlimited tenant would drain its burst and
// be rejected by a limiter that is supposed to not exist yet.
func (b *tokenBucket) unlimited() bool { return b.rate >= aimdUnlimited }

// setRate rebases the accrual rate at now. Tokens accrued so far are
// settled first, so a rate change never retroactively re-prices elapsed
// time. This is the AIMD controller's actuator.
func (b *tokenBucket) setRate(rate float64, now time.Time) {
	b.refill(now)
	b.rate = rate
}

// take spends n tokens if available.
func (b *tokenBucket) take(n float64, now time.Time) bool {
	b.refill(now)
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// maxWait caps the Retry-After hint. The float seconds-to-duration
// conversion below overflows time.Duration for tiny configured rates
// (deficit/rate can exceed 2^63 nanoseconds, flipping the hint
// negative), and a client can do nothing useful with an hours-long hint
// anyway — an hour is already "come back much later".
const maxWait = time.Hour

// wait returns how long until n tokens will have accrued — the
// Retry-After hint handed to a rate-limited tenant. The hint is clamped
// to [0, maxWait]: it must never be negative or garbage, whatever the
// configured rate.
func (b *tokenBucket) wait(n float64, now time.Time) time.Duration {
	b.refill(now)
	deficit := n - b.tokens
	if deficit <= 0 {
		return 0
	}
	sec := deficit / b.rate
	// Compare in float seconds: converting first would overflow the
	// integer nanosecond representation for tiny rates (NaN and ±Inf
	// from a zero or invalid rate land here too, via !(x < y)).
	if !(sec < maxWait.Seconds()) {
		return maxWait
	}
	return time.Duration(sec * float64(time.Second))
}

// Package server is the multi-tenant serving layer of a LifeRaft node: it
// sits between clients and the core engine and makes the paper's
// throughput-versus-starvation trade *per client* instead of only per
// bucket. Thousands of tenants hammering one archive must not starve each
// other before their queries ever reach the aged-workload-throughput
// scheduler, so the layer provides, in admission order:
//
//   - per-tenant token-bucket rate limits (admission control),
//   - bounded per-tenant queues with explicit backpressure — a full queue
//     or an empty bucket rejects with a machine-readable retry-after
//     instead of growing goroutines without bound,
//   - a deficit-round-robin fair queue across tenants, so a burst from
//     one tenant cannot monopolize the engine's Submit stream,
//   - deadline and cancellation threading: a query whose context expires
//     is withdrawn from the engine (core.Live.Cancel) so abandoned work
//     stops consuming workload-queue slots.
//
// The HTTP+JSON gateway over this layer lives in gateway.go; the gob TCP
// federation transport reaches the same layer through
// federation.NodeConfig.Serving.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/metric"
	"liferaft/internal/metrics"
	"liferaft/internal/simclock"
	"liferaft/internal/trace"
)

// Engine is the scheduling engine the serving layer feeds; *core.Live
// (single-disk or sharded) implements it.
type Engine interface {
	SubmitCtx(ctx context.Context, job core.Job) (<-chan core.Result, error)
	Cancel(id uint64) error
	Clock() simclock.Clock
	Stats() (core.RunStats, bool)
}

// TenantConfig declares one tenant's admission parameters.
type TenantConfig struct {
	// Name identifies the tenant in Submit calls and stats.
	Name string
	// Weight is the tenant's DRR share relative to other tenants;
	// values < 1 mean Config.DefaultWeight.
	Weight int
	// Rate is the tenant's sustained admission rate in queries per
	// second. 0 means Config.DefaultRate; negative means unlimited.
	Rate float64
	// Burst is the token-bucket capacity; values < 1 mean
	// Config.DefaultBurst.
	Burst int
	// QueueDepth bounds the tenant's pending queue; values < 1 mean
	// Config.QueueDepth.
	QueueDepth int
}

// Config configures a Server.
type Config struct {
	// DefaultRate is the admission rate (queries/sec) for tenants
	// without an explicit TenantConfig rate. 0 or negative disables rate
	// limiting by default.
	DefaultRate float64
	// DefaultBurst is the default token-bucket capacity; min 1.
	DefaultBurst int
	// QueueDepth bounds each tenant's pending queue (default 64). A full
	// queue rejects with backpressure rather than queueing unboundedly.
	QueueDepth int
	// MaxInFlight caps the queries concurrently inside the engine
	// (default 4); the fair queue picks which tenant fills a freed slot.
	MaxInFlight int
	// Quantum is the DRR quantum in workload objects (default 32).
	Quantum int
	// DefaultWeight is the DRR weight of unconfigured tenants (default 1).
	DefaultWeight int
	// MaxTenants bounds how many tenants may auto-register (default
	// 1024); beyond it, unknown tenants are rejected.
	MaxTenants int
	// ReservoirSize bounds the per-tenant response-time sample
	// (default 1024); summaries stay unbiased at fixed memory.
	ReservoirSize int
	// Tenants pre-registers tenants with explicit limits; all other
	// tenants auto-register with the defaults above on first use.
	Tenants []TenantConfig

	// RateMode selects admission-rate control. RateAdaptive (the
	// default) gives every tenant a token bucket — starting at its
	// configured Rate, or effectively unlimited — and moves the rates
	// with an AIMD controller driven by the SLO below. RateStatic is the
	// pre-adaptive behavior: rates stay exactly as configured and
	// tenants without a positive rate are never limited.
	RateMode RateMode
	// SLOP99 is the target p99 client-observed response time on the
	// serving clock (default 2s). In adaptive mode, a control window
	// whose p99 exceeds it cuts backlogged tenants' rates
	// multiplicatively; sustained headroom regrows them additively.
	SLOP99 time.Duration
	// ControlInterval is the AIMD evaluation period on the serving clock
	// (default 250ms).
	ControlInterval time.Duration
	// Registry, when non-nil, instruments the serving layer: admission
	// decisions, token-bucket waits, queue depth and wait, in-flight,
	// response latency, and AIMD rate moves (see docs/OPERATIONS.md for
	// every family).
	Registry *metric.Registry
}

// RateMode selects how per-tenant admission rates are managed.
type RateMode string

// Rate-control modes.
const (
	// RateAdaptive self-tunes per-tenant rates with the AIMD controller
	// (DESIGN-overload.md). The default.
	RateAdaptive RateMode = "adaptive"
	// RateStatic keeps configured rates fixed; unconfigured tenants are
	// unlimited. The pre-adaptive behavior.
	RateStatic RateMode = "static"
)

func (c Config) withDefaults() (Config, error) {
	if c.DefaultBurst < 1 {
		c.DefaultBurst = 8
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		return c, fmt.Errorf("server: QueueDepth %d must be positive", c.QueueDepth)
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.MaxInFlight < 0 {
		return c, fmt.Errorf("server: MaxInFlight %d must be positive", c.MaxInFlight)
	}
	if c.Quantum == 0 {
		c.Quantum = 32
	}
	if c.Quantum < 0 {
		return c, fmt.Errorf("server: Quantum %d must be positive", c.Quantum)
	}
	if c.DefaultWeight < 1 {
		c.DefaultWeight = 1
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 1024
	}
	if c.ReservoirSize < 1 {
		c.ReservoirSize = 1024
	}
	if c.RateMode == "" {
		c.RateMode = RateAdaptive
	}
	if c.RateMode != RateAdaptive && c.RateMode != RateStatic {
		return c, fmt.Errorf("server: unknown RateMode %q", c.RateMode)
	}
	if c.SLOP99 <= 0 {
		c.SLOP99 = 2 * time.Second
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 250 * time.Millisecond
	}
	seen := make(map[string]bool, len(c.Tenants))
	for _, tc := range c.Tenants {
		if tc.Name == "" {
			return c, fmt.Errorf("server: tenant with empty name")
		}
		if seen[tc.Name] {
			return c, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		seen[tc.Name] = true
	}
	return c, nil
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("server: closed")

// OverloadReason says which admission stage rejected a query.
type OverloadReason string

// Admission rejection reasons.
const (
	// OverloadRate: the tenant's token bucket is empty.
	OverloadRate OverloadReason = "rate"
	// OverloadQueue: the tenant's pending queue is full.
	OverloadQueue OverloadReason = "queue"
	// OverloadTenants: the tenant table is full (MaxTenants).
	OverloadTenants OverloadReason = "tenants"
)

// OverloadError is the backpressure signal: the query was rejected without
// queueing, and the client should retry no sooner than RetryAfter.
type OverloadError struct {
	Tenant     string
	Reason     OverloadReason
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: tenant %q overloaded (%s), retry after %v",
		e.Tenant, e.Reason, e.RetryAfter.Round(time.Millisecond))
}

// pending is one admitted query waiting for (or inside) the engine.
type pending struct {
	job    core.Job
	ctx    context.Context
	tenant *tenant
	out    chan core.Result
	enq    time.Time // serving-clock accept instant
	// tr is the request's trace (from the submit context; nil untraced);
	// dispatched is the serving-clock instant the fair queue released it.
	tr         *trace.Trace
	dispatched time.Time
}

// tenant is the per-tenant serving state.
type tenant struct {
	name   string
	weight int
	depth  int
	bucket *tokenBucket // nil when unlimited (static mode only)
	flow   *flow
	resp   *metrics.Reservoir
	// maxRate is the AIMD regrowth ceiling (the configured rate, or
	// aimdUnlimited); winCompleted counts completions since the last
	// control tick — the tenant's delivered rate, which is what the
	// controller rebases an unlimited tenant to before its first cut
	// (admissions would overstate it arbitrarily during a burst).
	maxRate      float64
	winCompleted int64

	submitted     int64
	rejectedRate  int64
	rejectedQueue int64
	completed     int64
	cancelled     int64
	failed        int64
	inFlight      int
}

// Server is the serving layer: admission control, fair queueing, and
// backpressure in front of one Engine.
type Server struct {
	cfg Config
	eng Engine
	clk simclock.Clock

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  map[string]*tenant
	fq       *fairQueue
	inFlight int
	closed   bool

	// obs holds resolved metric families (nil without a Registry);
	// ctlLast/ctlWindow are the AIMD controller's tick state (aimd.go),
	// guarded by mu like everything else.
	obs       *servingMetrics
	ctlLast   time.Time
	ctlWindow []float64

	wg        sync.WaitGroup // dispatcher + in-flight result waiters
	closeOnce sync.Once
}

// New starts a serving layer over eng. The engine is borrowed, not owned:
// Close drains the layer but leaves the engine running for its owner to
// close.
func New(eng Engine, cfg Config) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		clk:     eng.Clock(),
		tenants: make(map[string]*tenant),
		fq:      newFairQueue(cfg.Quantum),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Registry != nil {
		s.obs = newServingMetrics(cfg.Registry)
		s.obs.sloP99.Set(cfg.SLOP99.Seconds())
		cfg.Registry.OnGather(s.gather)
	}
	for _, tc := range cfg.Tenants {
		if _, err := s.register(tc); err != nil {
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// gather refreshes the scrape-time gauges (queue depths, in-flight,
// per-tenant rates); registered as the registry's OnGather hook.
func (s *Server) gather() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.queued.Set(float64(s.fq.len()))
	s.obs.inFlight.Set(float64(s.inFlight))
	s.obs.tenants.Set(float64(len(s.tenants)))
	for _, t := range s.tenants {
		s.obs.queueDepth.With(t.name).Set(float64(t.flow.size()))
		if t.bucket != nil {
			s.obs.tenantRate.With(t.name).Set(t.bucket.rate)
		}
	}
}

// register creates a tenant from its config; the caller holds no lock (New
// runs before the dispatcher starts) or s.mu (auto-registration).
func (s *Server) register(tc TenantConfig) (*tenant, error) {
	weight := tc.Weight
	if weight < 1 {
		weight = s.cfg.DefaultWeight
	}
	depth := tc.QueueDepth
	if depth < 1 {
		depth = s.cfg.QueueDepth
	}
	rate := tc.Rate
	if rate == 0 {
		rate = s.cfg.DefaultRate
	}
	burst := tc.Burst
	if burst < 1 {
		burst = s.cfg.DefaultBurst
	}
	// Seed the reservoir from the tenant name so runs are reproducible.
	var seed int64 = 1
	for _, r := range tc.Name {
		seed = seed*131 + int64(r)
	}
	resv, err := metrics.NewReservoir(s.cfg.ReservoirSize, seed)
	if err != nil {
		return nil, err
	}
	t := &tenant{name: tc.Name, weight: weight, depth: depth, resp: resv}
	switch {
	case s.cfg.RateMode == RateAdaptive:
		// Every tenant gets a cuttable bucket. Without a configured
		// rate it starts effectively unlimited — admission-identical to
		// no bucket until the controller's first cut.
		t.maxRate = rate
		if t.maxRate <= 0 {
			t.maxRate = aimdUnlimited
		}
		t.bucket = newTokenBucket(t.maxRate, burst)
	case rate > 0:
		t.maxRate = rate
		t.bucket = newTokenBucket(rate, burst)
	}
	t.flow = s.fq.flowFor(tc.Name, weight)
	s.tenants[tc.Name] = t
	return t, nil
}

// tenantLocked returns the named tenant, auto-registering unknown names
// with the server defaults. Caller holds s.mu.
func (s *Server) tenantLocked(name string) (*tenant, error) {
	if t := s.tenants[name]; t != nil {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, &OverloadError{Tenant: name, Reason: OverloadTenants, RetryAfter: time.Minute}
	}
	return s.register(TenantConfig{Name: name})
}

// Submit admits one query for a tenant. On admission it returns a channel
// delivering exactly one Result (then closing); the Result's Arrived is
// rewritten to the admission instant, so ResponseTime() is the
// client-observed latency including fair-queue wait. On overload it
// returns *OverloadError without queueing anything. When ctx expires
// before completion the query is cancelled all the way into the engine's
// workload queues and the Result carries Cancelled.
func (s *Server) Submit(ctx context.Context, tenantName string, job core.Job) (<-chan core.Result, error) {
	if ctx == nil {
		//lifevet:allow ctxflow -- nil-ctx compat fallback: there is no caller deadline to discard, and the root documents "run to completion"
		ctx = context.Background()
	}
	tr := trace.FromContext(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, err := s.tenantLocked(tenantName)
	if err != nil {
		if s.obs != nil {
			var oe *OverloadError
			if errors.As(err, &oe) {
				s.obs.admission.With(tenantName, decisionRejectedTenants).Inc()
			}
		}
		if tr != nil {
			n := s.clk.Now()
			tr.Add(trace.Span{Stage: trace.StageAdmission, Start: tr.StartTime(), End: n,
				Attr: decisionRejectedTenants, Err: err.Error()})
		}
		return nil, err
	}
	t.submitted++
	now := s.clk.Now()
	s.maybeControlTick(now)
	// Queue depth first: a queue-full rejection must not spend a rate
	// token, or a tenant retrying against a draining queue would be
	// double-penalized below its configured rate.
	if t.flow.size() >= t.depth {
		t.rejectedQueue++
		retry := 500 * time.Millisecond // advisory: roughly one service
		if t.bucket != nil && !t.bucket.unlimited() {
			retry = t.bucket.wait(1, now)
		}
		if s.obs != nil {
			s.obs.admission.With(t.name, decisionRejectedQueue).Inc()
		}
		oe := &OverloadError{Tenant: t.name, Reason: OverloadQueue, RetryAfter: retry}
		if tr != nil {
			tr.Add(trace.Span{Stage: trace.StageAdmission, Start: tr.StartTime(), End: now,
				Attr: decisionRejectedQueue, Score: retry.Seconds(), Err: oe.Error()})
		}
		return nil, oe
	}
	if t.bucket != nil && !t.bucket.unlimited() && !t.bucket.take(1, now) {
		t.rejectedRate++
		retry := t.bucket.wait(1, now)
		if s.obs != nil {
			s.obs.admission.With(t.name, decisionRejectedRate).Inc()
			s.obs.tbWait.With(t.name).Observe(retry.Seconds())
		}
		oe := &OverloadError{Tenant: t.name, Reason: OverloadRate, RetryAfter: retry}
		if tr != nil {
			// Score carries the token-bucket wait the client was told to
			// back off for.
			tr.Add(trace.Span{Stage: trace.StageAdmission, Start: tr.StartTime(), End: now,
				Attr: decisionRejectedRate, Score: retry.Seconds(), Err: oe.Error()})
		}
		return nil, oe
	}
	if s.obs != nil {
		s.obs.admission.With(t.name, decisionAdmitted).Inc()
	}
	if tr != nil {
		// The span opens at trace start, so request-arrival work before
		// the decision (parsing, tenant lookup) is attributed.
		tr.Add(trace.Span{Stage: trace.StageAdmission, Start: tr.StartTime(), End: now, Attr: decisionAdmitted})
		// The engine records its spans into the same trace.
		job.Trace = tr
	}
	p := &pending{job: job, ctx: ctx, tenant: t, out: make(chan core.Result, 1), enq: now, tr: tr}
	s.fq.push(t.flow, p)
	s.cond.Broadcast()
	return p.out, nil
}

// dispatch is the single scheduling goroutine: whenever an engine slot is
// free and some tenant has queued work, it asks the fair queue for the
// next query and hands it to the engine.
func (s *Server) dispatch() {
	defer s.wg.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !(s.closed && s.fq.empty()) && (s.inFlight >= s.cfg.MaxInFlight || s.fq.empty()) {
			s.cond.Wait()
		}
		if s.closed && s.fq.empty() {
			return
		}
		p := s.fq.pop()
		p.dispatched = s.clk.Now()
		if s.obs != nil {
			s.obs.queueWait.With(p.tenant.name).Observe(p.dispatched.Sub(p.enq).Seconds())
		}
		p.tr.Add(trace.Span{Stage: trace.StageQueueWait, Start: p.enq, End: p.dispatched})
		if p.ctx.Err() != nil {
			// Abandoned while queued: resolve without touching the
			// engine at all.
			p.tenant.cancelled++
			p.tr.Add(trace.Span{Stage: trace.StageEngine, Start: p.dispatched, End: p.dispatched,
				Err: "cancelled while queued"})
			//lifevet:allow lockdiscipline -- p.out has capacity 1 and this is its single resolution: the send can never block
			p.out <- core.Result{QueryID: p.job.ID, Arrived: p.enq, Completed: s.clk.Now(), Cancelled: true}
			close(p.out)
			continue
		}
		s.inFlight++
		p.tenant.inFlight++
		s.mu.Unlock()
		ch, err := s.eng.SubmitCtx(p.ctx, p.job)
		s.mu.Lock()
		if err != nil {
			// Engine refused (closing): resolve the waiter by closing
			// its channel without a result.
			s.inFlight--
			p.tenant.inFlight--
			p.tenant.failed++
			close(p.out)
			continue
		}
		s.wg.Add(1)
		go s.await(p, ch)
	}
}

// await relays one engine result to its waiter and frees the slot.
func (s *Server) await(p *pending, ch <-chan core.Result) {
	defer s.wg.Done()
	r, ok := <-ch
	s.mu.Lock()
	s.inFlight--
	p.tenant.inFlight--
	switch {
	case !ok:
		p.tenant.failed++
		p.tr.Add(trace.Span{Stage: trace.StageEngine, Start: p.dispatched, End: s.clk.Now(),
			Err: "engine closed before completion"})
	case r.Cancelled:
		p.tenant.cancelled++
		p.tr.Add(trace.Span{Stage: trace.StageEngine, Start: p.dispatched, End: r.Completed,
			Err: "cancelled"})
	default:
		p.tenant.completed++
		p.tenant.winCompleted++
		// Client-observed response: admission to engine completion,
		// both on the serving clock. The engine stamps Completed
		// authoritatively; rebase Arrived to the admission instant.
		d := r.Completed.Sub(p.enq)
		if d < 0 {
			d = 0
		}
		p.tenant.resp.Add(d.Seconds())
		p.tr.Add(trace.Span{Stage: trace.StageEngine, Start: p.dispatched, End: r.Completed,
			N: int64(r.Matches)})
		if s.obs != nil {
			// A traced request's response observation carries its trace ID
			// as an OpenMetrics exemplar: the p99 spike on a dashboard
			// links straight to the forensics capture. Unsampled traces get
			// no exemplar — the capture they would link to is unpublished.
			if id := p.tr.ID(); id != 0 && p.tr.Sampled() {
				s.obs.response.With(p.tenant.name).ObserveExemplar(d.Seconds(), id.String())
			} else {
				s.obs.response.With(p.tenant.name).Observe(d.Seconds())
			}
		}
		if s.cfg.RateMode == RateAdaptive {
			s.ctlWindow = append(s.ctlWindow, d.Seconds())
		}
	}
	s.maybeControlTick(s.clk.Now())
	s.cond.Broadcast()
	s.mu.Unlock()
	if ok {
		r.Arrived = p.enq
		p.out <- r
	}
	close(p.out)
}

// Close stops admitting queries, drains everything already queued through
// the engine, and waits for all in-flight results. The engine itself stays
// open (its owner closes it). Close is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.wg.Wait()
	return nil
}

// TenantStats is one tenant's serving-layer breakdown.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Weight    int    `json:"weight"`
	Submitted int64  `json:"submitted"`
	// Admitted = Submitted - rejections; Completed+Cancelled+Failed of
	// those have resolved so far.
	Admitted      int64 `json:"admitted"`
	RejectedRate  int64 `json:"rejected_rate"`
	RejectedQueue int64 `json:"rejected_queue"`
	Completed     int64 `json:"completed"`
	Cancelled     int64 `json:"cancelled"`
	Failed        int64 `json:"failed"`
	Queued        int   `json:"queued"`
	InFlight      int   `json:"in_flight"`
	// RespTime summarizes client-observed response times (seconds) of
	// completed queries: admission instant to engine completion. Mean,
	// min, max, and count are exact; dispersion and percentiles are
	// reservoir-sampled (see metrics.Reservoir and the Summary's
	// sampled/sample_size fields).
	RespTime metrics.Summary `json:"resp_time"`
	// RateQPS is the tenant's current admission rate in queries/sec
	// (0 = unlimited). The AIMD controller moves it in adaptive mode.
	RateQPS float64 `json:"rate_qps,omitempty"`
}

// Stats is a point-in-time snapshot of the serving layer.
type Stats struct {
	// Tenants is sorted by tenant name.
	Tenants  []TenantStats `json:"tenants"`
	Queued   int           `json:"queued"`
	InFlight int           `json:"in_flight"`
	// Engine carries the engine's merged RunStats when available (the
	// core engine finalizes statistics at Close).
	Engine   core.RunStats `json:"engine"`
	EngineOK bool          `json:"engine_ok"`
}

// Stats snapshots the serving layer; safe to call concurrently with
// Submit traffic.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	out := Stats{Queued: s.fq.len(), InFlight: s.inFlight}
	for _, t := range s.tenants {
		ts := TenantStats{
			Tenant:        t.name,
			Weight:        t.weight,
			Submitted:     t.submitted,
			Admitted:      t.submitted - t.rejectedRate - t.rejectedQueue,
			RejectedRate:  t.rejectedRate,
			RejectedQueue: t.rejectedQueue,
			Completed:     t.completed,
			Cancelled:     t.cancelled,
			Failed:        t.failed,
			Queued:        t.flow.size(),
			InFlight:      t.inFlight,
			RespTime:      t.resp.Summary(),
		}
		if t.bucket != nil {
			ts.RateQPS = t.bucket.rate
		}
		out.Tenants = append(out.Tenants, ts)
	}
	s.mu.Unlock()
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	out.Engine, out.EngineOK = s.eng.Stats()
	return out
}

// TenantSummary returns one tenant's response-time summary (zero Summary
// for unknown tenants).
func (s *Server) TenantSummary(name string) metrics.Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tenants[name]; t != nil {
		return t.resp.Summary()
	}
	return metrics.Summary{}
}

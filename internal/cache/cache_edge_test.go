package cache

import (
	"fmt"
	"testing"
)

// policies builds one cache of each policy at the given capacity.
func policies(t *testing.T, capacity int) map[PolicyName]Cache[int, string] {
	t.Helper()
	out := map[PolicyName]Cache[int, string]{}
	for _, p := range []PolicyName{PolicyLRU, PolicyClock, PolicyTwoQueue} {
		c, err := New[int, string](p, capacity)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = c
	}
	return out
}

// TestPutOverwriteAccounting: refreshing a resident key must not evict,
// must not grow Len, must not fire OnEvict, and must replace the value —
// under every policy, including a key resident in 2Q's probation
// segment.
func TestPutOverwriteAccounting(t *testing.T) {
	for p, c := range policies(t, 4) {
		t.Run(string(p), func(t *testing.T) {
			var evicted []int
			c.OnEvict(func(k int, _ string) { evicted = append(evicted, k) })
			// Put+Get each key: under 2Q a bare Put only reaches the
			// 1-slot probation FIFO (so a second Put would churn it, not
			// overwrite); the Get promotes to protected, making both keys
			// stably resident under every policy.
			c.Put(1, "a")
			c.Get(1)
			c.Put(2, "b")
			c.Get(2)
			before := c.Stats()
			c.Put(1, "a2") // overwrite, cache not even full
			c.Put(2, "b2")
			st := c.Stats()
			if st.Evictions != before.Evictions {
				t.Fatalf("overwrite evicted: %d -> %d", before.Evictions, st.Evictions)
			}
			if len(evicted) != 0 {
				t.Fatalf("OnEvict fired on overwrite: %v", evicted)
			}
			if c.Len() != 2 {
				t.Fatalf("len = %d after overwriting 2 resident keys, want 2", c.Len())
			}
			if v, ok := c.Get(1); !ok || v != "a2" {
				t.Fatalf("Get(1) = %q,%v want a2", v, ok)
			}
			if v, ok := c.Get(2); !ok || v != "b2" {
				t.Fatalf("Get(2) = %q,%v want b2", v, ok)
			}
		})
	}

	// 2Q: overwriting a key promoted to protected must stay in protected,
	// not duplicate into probation (Len would exceed reality and a later
	// probation eviction would ghost-fire for a live key).
	c := NewTwoQueue[int, string](8)
	c.Put(1, "a")
	c.Get(1) // promote to protected
	c.Put(1, "a2")
	if c.Len() != 1 {
		t.Fatalf("2q len = %d after overwrite of promoted key, want 1", c.Len())
	}
	if v, ok := c.Get(1); !ok || v != "a2" {
		t.Fatalf("2q Get = %q,%v want a2", v, ok)
	}
}

// TestOnEvictReentrancy: an OnEvict hook that calls back into the cache
// (the scheduler's index-maintenance hook reads φ(i) state, and a
// pin-style hook may re-Put) must observe the post-eviction state and
// must not corrupt the cache or livelock.
func TestOnEvictReentrancy(t *testing.T) {
	for p, c := range policies(t, 2) {
		t.Run(string(p), func(t *testing.T) {
			c := c
			var fired []int
			c.OnEvict(func(k int, v string) {
				fired = append(fired, k)
				// The contract: the hook observes a consistent cache with
				// the evicted key already gone.
				if c.Contains(k) {
					t.Fatalf("hook sees evicted key %d still resident", k)
				}
				// Reentrant reads must be safe.
				c.Get(k)
				c.Contains(k + 100)
			})
			for i := 0; i < 10; i++ {
				c.Put(i, fmt.Sprint(i))
			}
			if c.Len() > c.Cap() {
				t.Fatalf("len %d exceeds cap %d", c.Len(), c.Cap())
			}
			if len(fired) == 0 {
				t.Fatal("no evictions fired across 10 puts into a 2-cap cache")
			}
		})
	}

	// Reentrant Put from the hook (re-inserting the evicted victim — the
	// pin pattern): each policy must terminate and end consistent.
	for p, c := range policies(t, 2) {
		t.Run(string(p)+"/reput", func(t *testing.T) {
			c := c
			c.Put(0, "pinned")
			depth := 0
			c.OnEvict(func(k int, v string) {
				if k == 0 && depth == 0 {
					depth++
					c.Put(0, "pinned")
				}
			})
			for i := 1; i <= 6; i++ {
				c.Put(i, fmt.Sprint(i))
			}
			if c.Len() > c.Cap() {
				t.Fatalf("len %d exceeds cap %d after reentrant puts", c.Len(), c.Cap())
			}
			// The cache still works.
			c.Put(99, "x")
			if v, ok := c.Get(99); !ok || v != "x" {
				t.Fatalf("cache broken after reentrant hook: %q %v", v, ok)
			}
		})
	}
}

// TestTinyCapacities: zero and one-entry capacities must clamp, bound
// Len, count evictions, and keep serving — the degenerate configs a
// misconfigured ablation run feeds in.
func TestTinyCapacities(t *testing.T) {
	for _, capacity := range []int{0, 1} {
		for p, c := range policies(t, capacity) {
			t.Run(fmt.Sprintf("%s/cap%d", p, capacity), func(t *testing.T) {
				for i := 0; i < 8; i++ {
					c.Put(i, fmt.Sprint(i))
					if c.Len() > c.Cap() {
						t.Fatalf("len %d exceeds cap %d", c.Len(), c.Cap())
					}
				}
				// The most recent insert is resident under every policy at
				// cap >= 1... except none guarantee it at cap 1 after hook
				// games; just demand a resident, retrievable entry.
				if c.Len() == 0 {
					t.Fatal("cache empty after 8 puts")
				}
				st := c.Stats()
				if st.Evictions == 0 {
					t.Fatalf("no evictions counted: %+v", st)
				}
				// Get of a missing key on a tiny cache must not panic and
				// must count a miss.
				before := c.Stats().Misses
				if _, ok := c.Get(-1); ok {
					t.Fatal("hit for never-inserted key")
				}
				if c.Stats().Misses != before+1 {
					t.Fatal("miss not counted")
				}
			})
		}
	}
}

// TestEmptyHitRate: a fresh cache (and a fresh Stats zero value) must
// report 0, not NaN — this feeds straight into BENCH JSON and division
// by zero would poison every downstream gate comparison.
func TestEmptyHitRate(t *testing.T) {
	if hr := (Stats{}).HitRate(); hr != 0 {
		t.Fatalf("zero-value HitRate = %v, want 0", hr)
	}
	for p, c := range policies(t, 4) {
		if hr := c.Stats().HitRate(); hr != 0 || hr != hr {
			t.Fatalf("%s: fresh HitRate = %v, want 0", p, hr)
		}
		// Miss-only traffic: rate stays 0, still not NaN.
		c.Get(1)
		if hr := c.Stats().HitRate(); hr != 0 {
			t.Fatalf("%s: miss-only HitRate = %v, want 0", p, hr)
		}
	}
}

// TestRemoveThenReuse: an explicit Remove must free the slot for reuse
// without firing OnEvict or counting an eviction, under every policy.
func TestRemoveThenReuse(t *testing.T) {
	for p, c := range policies(t, 3) {
		t.Run(string(p), func(t *testing.T) {
			var fired []int
			c.OnEvict(func(k int, _ string) { fired = append(fired, k) })
			// Promote 1 and 2 (for 2Q: into protected), leave 3 fresh (for
			// 2Q: in probation) — Remove must then hit both segments.
			c.Put(1, "a")
			c.Get(1)
			c.Put(2, "b")
			c.Get(2)
			c.Put(3, "c")
			if !c.Remove(1) {
				t.Fatal("Remove(1) = false for resident key")
			}
			if c.Remove(1) {
				t.Fatal("Remove(1) = true twice")
			}
			if !c.Remove(3) {
				t.Fatal("Remove(3) = false for freshly put key")
			}
			if c.Contains(1) || c.Contains(3) {
				t.Fatal("removed key still resident")
			}
			if len(fired) != 0 || c.Stats().Evictions != 0 {
				t.Fatalf("explicit Remove counted as eviction: hook %v stats %+v", fired, c.Stats())
			}
			// The freed slots are reusable and the cache refills to
			// capacity without phantom evictions from the holes.
			c.Put(4, "d")
			c.Get(4)
			c.Put(5, "e")
			if c.Len() != 3 {
				t.Fatalf("len = %d, want 3 (cap)", c.Len())
			}
			if c.Stats().Evictions != 0 {
				t.Fatalf("refilling freed slots evicted: %+v", c.Stats())
			}
		})
	}
}

//go:build !unix

package disktier

import (
	"io"
	"os"
)

// mapFile falls back to a heap read on platforms without syscall.Mmap;
// the tier behaves identically, it just pays a copy per mapping.
func mapFile(f *os.File, size int64) ([]byte, error) {
	m := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), m); err != nil {
		return nil, err
	}
	return m, nil
}

func unmapFile([]byte) {}

// Package disktier implements the persistent local-disk cache tier of
// the tiered bucket store (RAM cache → disk tier → segment backend).
// Entries are opaque byte regions — the segment layer caches whole
// bucket-group block regions under their group index — stored one file
// per entry with a checksummed header, read back through mmap so a
// probe touches pages instead of copying the region through a pread
// buffer.
//
// The tier is a cache, not a store of record: every entry is
// reconstructible from the segment files below it, so fills are atomic
// (write-temp, rename) but not fsynced — a torn write from a crash
// either leaves a *.tmp file (ignored and removed at open) or a
// renamed file whose checksum fails validation and is dropped. Either
// way a reader falls through to the segment backend; the tier never
// serves bytes it cannot prove correct. Eviction state (the LRU order)
// persists across restarts in a small JSON sidecar, so a warm node
// restarts warm.
//
// All methods are safe for concurrent use: foreground readers on the
// shard scheduling goroutines share the tier with background promotion
// goroutines. Mapped entries are reference-counted so an eviction never
// unmaps a region a reader is still decoding from.
package disktier

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	// magic identifies a disk-tier entry file ("LFDT").
	magic = 0x4C464454
	// version is bumped on incompatible layout changes.
	version = 1
	// headerBlock is the size of the entry header region; the cached
	// data starts at this offset so it stays page-aligned in the mmap.
	headerBlock = 4096
	// headerBytes is the encoded header length within the block.
	headerBytes = 32
	// stateName is the persisted eviction-state sidecar.
	stateName = "STATE.json"
	// entrySuffix names entry files; temporaries use tmpSuffix and are
	// removed at open (a crash mid-fill leaves only temporaries).
	entrySuffix = ".lfdt"
	tmpSuffix   = ".tmp"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config configures a Tier.
type Config struct {
	// Dir is the cache directory, created if missing.
	Dir string
	// CapacityBytes bounds the cached data bytes (entry headers are not
	// counted); the least-recently-used entries are evicted past it.
	CapacityBytes int64
	// PromoteInflight bounds concurrent background promotions (Promote)
	// so prefetch I/O cannot starve foreground reads. Demand-miss
	// promotions (prefetch=false) draw from a separate budget of the
	// same size: speculative prefetch traffic can never crowd out the
	// fill for the group the foreground is missing on right now, and
	// vice versa. Default 2 per class.
	PromoteInflight int
}

// Stats counts tier activity since open. Bytes is current, not
// cumulative.
type Stats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Fills      int64 `json:"fills"`
	FillErrors int64 `json:"fill_errors"`
	Evictions  int64 `json:"evictions"`
	Bytes      int64 `json:"bytes"`
	Entries    int   `json:"entries"`
	// ValidationFailures counts entries dropped because their header or
	// data checksum failed — the fall-through-to-backend path.
	ValidationFailures int64 `json:"validation_failures"`
	// PrefetchIssued/Hits/Wasted account schedule-driven promotions: a
	// prefetched entry scores a hit on its first foreground read and is
	// wasted if evicted untouched.
	PrefetchIssued int64 `json:"prefetch_issued"`
	PrefetchHits   int64 `json:"prefetch_hits"`
	PrefetchWasted int64 `json:"prefetch_wasted"`
}

// entry is one cached region. mapped/data are nil until the first Get
// maps and validates the file.
type entry struct {
	key        uint32
	length     int64
	path       string
	prev, next *entry // LRU list, head = most recent
	mapped     []byte // whole-file mapping
	data       []byte // mapped[headerBlock : headerBlock+length]
	refs       int    // outstanding handles
	dead       bool   // evicted while pinned; last Release unmaps
	prefetched bool
	touched    bool
}

// Tier is the disk cache tier. Open one per cache directory.
type Tier struct {
	dir      string
	capacity int64

	mu         sync.Mutex
	idle       *sync.Cond
	entries    map[uint32]*entry
	head, tail *entry
	bytes      int64
	stats      Stats
	pending    map[uint32]bool
	// slots/demandSlots are the per-class in-flight budgets: prefetch
	// promotions and demand-miss promotions each bounded independently.
	slots       chan struct{}
	demandSlots chan struct{}
	closed      bool
}

// Open opens (creating if needed) the tier under cfg.Dir: temporaries
// from interrupted fills are removed, surviving entries are indexed,
// and the persisted LRU order is restored — entries the sidecar does
// not know land at the cold end. Entries beyond capacity are evicted
// immediately.
func Open(cfg Config) (*Tier, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("disktier: Config.Dir is required")
	}
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("disktier: CapacityBytes %d must be positive", cfg.CapacityBytes)
	}
	if cfg.PromoteInflight <= 0 {
		cfg.PromoteInflight = 2
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	t := &Tier{
		dir:         cfg.Dir,
		capacity:    cfg.CapacityBytes,
		entries:     make(map[uint32]*entry),
		pending:     make(map[uint32]bool),
		slots:       make(chan struct{}, cfg.PromoteInflight),
		demandSlots: make(chan struct{}, cfg.PromoteInflight),
	}
	t.idle = sync.NewCond(&t.mu)
	if err := t.scan(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	victims := t.evictLocked()
	t.mu.Unlock()
	removeFiles(victims)
	return t, nil
}

// scan indexes the directory's surviving entries in persisted order.
func (t *Tier) scan() error {
	names, err := os.ReadDir(t.dir)
	if err != nil {
		return err
	}
	found := make(map[uint32]*entry)
	for _, de := range names {
		name := de.Name()
		path := filepath.Join(t.dir, name)
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A crash mid-fill: never renamed, never readable.
			//lifevet:allow errdrop -- best-effort sweep of orphaned temp files at startup; a survivor is re-swept next restart and never served
			os.Remove(path)
		case strings.HasSuffix(name, entrySuffix):
			e, err := readEntryHeader(path)
			if err != nil {
				// Truncated or foreign file: drop it rather than serve it.
				os.Remove(path)
				t.stats.ValidationFailures++
				continue
			}
			if _, dup := found[e.key]; dup {
				//lifevet:allow errdrop -- best-effort removal of a duplicate key's extra file; the kept entry is intact either way
				os.Remove(path)
				continue
			}
			found[e.key] = e
		}
	}
	// Persisted order first (most recent first), unknown entries cold.
	var st struct {
		Order []uint32 `json:"order"`
	}
	if b, err := os.ReadFile(filepath.Join(t.dir, stateName)); err == nil {
		//lifevet:allow errdrop -- a corrupt recency sidecar only loses LRU order, never data; unknown entries just start cold
		_ = json.Unmarshal(b, &st)
	}
	for _, key := range st.Order {
		if e := found[key]; e != nil {
			t.pushTailLocked(e)
			t.entries[key] = e
			t.bytes += e.length
			delete(found, key)
		}
	}
	rest := make([]*entry, 0, len(found))
	for _, e := range found {
		rest = append(rest, e)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].key < rest[j].key })
	for _, e := range rest {
		t.pushTailLocked(e)
		t.entries[e.key] = e
		t.bytes += e.length
	}
	return nil
}

// readEntryHeader opens path and decodes/verifies its header only (data
// checksums are verified when the entry is first mapped).
func readEntryHeader(path string) (*entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hb [headerBytes]byte
	if _, err := f.ReadAt(hb[:], 0); err != nil {
		return nil, fmt.Errorf("disktier: short header: %w", err)
	}
	le := binary.LittleEndian
	if got := le.Uint32(hb[0:]); got != magic {
		return nil, fmt.Errorf("disktier: bad magic %#x", got)
	}
	if sum := crc32.Checksum(hb[:28], castagnoli); sum != le.Uint32(hb[28:]) {
		return nil, fmt.Errorf("disktier: header checksum mismatch")
	}
	if v := le.Uint32(hb[4:]); v != version {
		return nil, fmt.Errorf("disktier: version %d (reader supports %d)", v, version)
	}
	length := int64(le.Uint64(hb[16:]))
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() != headerBlock+length {
		return nil, fmt.Errorf("disktier: file is %d bytes, header says %d", fi.Size(), headerBlock+length)
	}
	return &entry{key: le.Uint32(hb[8:]), length: length, path: path}, nil
}

// marshalEntryHeader encodes the header block: magic, version, key,
// flags, data length, data CRC32-C, header CRC32-C.
func marshalEntryHeader(key uint32, data []byte) []byte {
	b := make([]byte, headerBlock)
	le := binary.LittleEndian
	le.PutUint32(b[0:], magic)
	le.PutUint32(b[4:], version)
	le.PutUint32(b[8:], key)
	le.PutUint32(b[12:], 0) // flags, reserved
	le.PutUint64(b[16:], uint64(len(data)))
	le.PutUint32(b[24:], crc32.Checksum(data, castagnoli))
	le.PutUint32(b[28:], crc32.Checksum(b[:28], castagnoli))
	return b
}

func entryName(key uint32) string { return fmt.Sprintf("grp-%08x%s", key, entrySuffix) }

// Dir returns the tier's directory.
func (t *Tier) Dir() string { return t.dir }

// CapacityBytes returns the configured capacity.
func (t *Tier) CapacityBytes() int64 { return t.capacity }

// Contains reports residency without touching recency (the φ-style
// probe; prefetch dedup uses it).
func (t *Tier) Contains(key uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entries[key] != nil
}

// Stats snapshots the counters.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Bytes = t.bytes
	s.Entries = len(t.entries)
	return s
}

// Handle pins one mapped entry. Release it promptly: an evicted entry's
// mapping is held until its last handle goes away.
type Handle struct {
	t *Tier
	e *entry
}

// Bytes returns the entry's cached data region, valid until Release.
func (h Handle) Bytes() []byte { return h.e.data }

// Release unpins the entry.
func (h Handle) Release() {
	t := h.t
	t.mu.Lock()
	h.e.refs--
	if h.e.dead && h.e.refs == 0 {
		t.unmapLocked(h.e)
	}
	t.mu.Unlock()
}

// Get returns a pinned handle for key, mapping and checksum-validating
// the entry's file on its first use. A missing, truncated, or corrupt
// entry counts a miss (corruption also drops the file), so the caller
// falls through to the segment backend.
func (t *Tier) Get(key uint32) (Handle, bool) {
	t.mu.Lock()
	e := t.entries[key]
	if e == nil {
		t.stats.Misses++
		t.mu.Unlock()
		return Handle{}, false
	}
	if e.mapped == nil {
		//lifevet:allow lockdiscipline -- first-use mapping validates the checksum under the tier lock; the open+read is paid once per entry lifetime, and lifting it out needs a per-entry mapping state machine
		err := t.mapLocked(e)
		if err != nil {
			// Validation failed: drop the entry and miss — the segment
			// store below remains the source of truth.
			t.dropLocked(e)
			path := e.path
			t.stats.ValidationFailures++
			t.stats.Misses++
			t.mu.Unlock()
			os.Remove(path)
			return Handle{}, false
		}
	}
	t.stats.Hits++
	if e.prefetched && !e.touched {
		t.stats.PrefetchHits++
	}
	e.touched = true
	t.moveFrontLocked(e)
	e.refs++
	t.mu.Unlock()
	return Handle{t: t, e: e}, true
}

// mapLocked maps and validates e's file. Checksum cost is paid once per
// mapping (per fill or per restart), not per read.
func (t *Tier) mapLocked(e *entry) error {
	f, err := os.Open(e.path)
	if err != nil {
		return err
	}
	m, err := mapFile(f, headerBlock+e.length)
	//lifevet:allow errdrop -- read-only descriptor close after mmap: the mapping outlives the fd and a close error cannot invalidate already-mapped pages
	f.Close()
	if err != nil {
		return err
	}
	le := binary.LittleEndian
	data := m[headerBlock : headerBlock+e.length]
	switch {
	case le.Uint32(m[0:]) != magic,
		le.Uint32(m[8:]) != e.key,
		int64(le.Uint64(m[16:])) != e.length:
		unmapFile(m)
		return fmt.Errorf("disktier: entry %d header mismatch", e.key)
	case crc32.Checksum(data, castagnoli) != le.Uint32(m[24:]):
		unmapFile(m)
		return fmt.Errorf("disktier: entry %d data checksum mismatch", e.key)
	}
	e.mapped, e.data = m, data
	return nil
}

func (t *Tier) unmapLocked(e *entry) {
	if e.mapped != nil {
		unmapFile(e.mapped)
		e.mapped, e.data = nil, nil
	}
}

// dropLocked detaches e from the index and list (no file removal, no
// eviction accounting).
func (t *Tier) dropLocked(e *entry) {
	delete(t.entries, e.key)
	t.unlinkLocked(e)
	t.bytes -= e.length
	if e.refs > 0 {
		e.dead = true
	} else {
		t.unmapLocked(e)
	}
}

func (t *Tier) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if t.head == e {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if t.tail == e {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (t *Tier) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

func (t *Tier) pushTailLocked(e *entry) {
	e.next, e.prev = nil, t.tail
	if t.tail != nil {
		t.tail.next = e
	}
	t.tail = e
	if t.head == nil {
		t.head = e
	}
}

func (t *Tier) moveFrontLocked(e *entry) {
	if t.head == e {
		return
	}
	t.unlinkLocked(e)
	t.pushFrontLocked(e)
}

// Fill installs data as the entry for key: the bytes land in a
// temporary file (with a checksummed header) renamed into place, so a
// crash mid-fill leaves no readable partial entry. No fsync — the tier
// is reconstructible and validation catches torn writes. Replacing an
// existing entry is an overwrite, not an eviction.
func (t *Tier) Fill(key uint32, data []byte, prefetched bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("disktier: tier is closed")
	}
	t.mu.Unlock()

	tmp, err := os.CreateTemp(t.dir, "fill-*"+tmpSuffix)
	if err != nil {
		return err
	}
	_, err = tmp.Write(marshalEntryHeader(key, data))
	if err == nil {
		_, err = tmp.Write(data)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	path := filepath.Join(t.dir, entryName(key))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		os.Remove(path)
		return fmt.Errorf("disktier: tier is closed")
	}
	if old := t.entries[key]; old != nil {
		t.dropLocked(old)
	}
	e := &entry{key: key, length: int64(len(data)), path: path, prefetched: prefetched}
	t.entries[key] = e
	t.pushFrontLocked(e)
	t.bytes += e.length
	t.stats.Fills++
	victims := t.evictLocked()
	order := t.orderLocked()
	t.mu.Unlock()
	removeFiles(victims)
	t.persistOrder(order)
	return nil
}

// evictLocked enforces capacity from the cold end, skipping pinned
// entries (they evict when pressure recurs after unpinning) and never
// the MRU head — evicting the entry a fill just installed would be
// self-defeating, so the tier runs transiently over capacity instead.
// Victims are detached from the index here but their files are NOT
// removed: the caller unlinks the returned paths after releasing t.mu,
// so foreground readers never wait on the filesystem. A crash between
// detach and unlink leaves an orphan file that the next Open's scan
// re-indexes or prunes — the tier is a cache, nothing is lost.
func (t *Tier) evictLocked() (victims []string) {
	e := t.tail
	for t.bytes > t.capacity && e != nil && e != t.head {
		victim := e
		e = e.prev
		if victim.refs > 0 {
			continue
		}
		if victim.prefetched && !victim.touched {
			t.stats.PrefetchWasted++
		}
		t.stats.Evictions++
		t.dropLocked(victim)
		victims = append(victims, victim.path)
	}
	return victims
}

// removeFiles unlinks evicted entry files. Callers invoke it after
// releasing t.mu.
//
//lifevet:allow errdrop -- eviction unlink is best-effort by design: a lingering file is re-swept at next startup scan and never served (its entry is gone)
func removeFiles(paths []string) {
	for _, p := range paths {
		os.Remove(p)
	}
}

// orderLocked snapshots the LRU order for the sidecar.
func (t *Tier) orderLocked() []uint32 {
	order := make([]uint32, 0, len(t.entries))
	for e := t.head; e != nil; e = e.next {
		order = append(order, e.key)
	}
	return order
}

// persistOrder writes the LRU order sidecar (atomic rename; loss of
// the sidecar loses recency, never data). It runs WITHOUT t.mu held —
// the order is a snapshot — so concurrent fills may write sidecars out
// of order; each write is internally consistent (own temp file, atomic
// rename) and a stale order only skews restart warmth, never data.
func (t *Tier) persistOrder(order []uint32) {
	b, err := json.Marshal(struct {
		Order []uint32 `json:"order"`
	}{Order: order})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(t.dir, stateName+"-*"+tmpSuffix)
	if err != nil {
		return
	}
	_, err = tmp.Write(b)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(t.dir, stateName)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Promote schedules a background fill of key from read, bounded by the
// in-flight budget. Returns false without work when the key is already
// resident or pending, the budget is exhausted, or the tier is closed —
// promotion is best-effort by design: the foreground path never depends
// on it.
func (t *Tier) Promote(key uint32, prefetch bool, read func() ([]byte, error)) bool {
	t.mu.Lock()
	if t.closed || t.pending[key] || t.entries[key] != nil {
		t.mu.Unlock()
		return false
	}
	slots := t.demandSlots
	if prefetch {
		slots = t.slots
	}
	select {
	case slots <- struct{}{}:
	default:
		t.mu.Unlock()
		return false
	}
	t.pending[key] = true
	if prefetch {
		t.stats.PrefetchIssued++
	}
	t.mu.Unlock()

	go func() {
		data, err := read()
		if err == nil {
			err = t.Fill(key, data, prefetch)
		}
		t.mu.Lock()
		if err != nil {
			t.stats.FillErrors++
		}
		delete(t.pending, key)
		<-slots
		if len(t.pending) == 0 {
			t.idle.Broadcast()
		}
		t.mu.Unlock()
	}()
	return true
}

// WaitIdle blocks until no promotions are in flight (benchmark warmup
// and tests).
func (t *Tier) WaitIdle() {
	t.mu.Lock()
	for len(t.pending) > 0 {
		t.idle.Wait()
	}
	t.mu.Unlock()
}

// Close persists the eviction state and unmaps every unpinned entry.
// In-flight promotions fail harmlessly afterward. Safe to call once;
// Get/Fill/Promote on a closed tier miss or error.
func (t *Tier) Close() error {
	t.WaitIdle()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	order := t.orderLocked()
	for e := t.head; e != nil; e = e.next {
		if e.refs == 0 {
			t.unmapLocked(e)
		}
	}
	t.mu.Unlock()
	t.persistOrder(order)
	return nil
}

package disktier

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openTier(t *testing.T, dir string, capacity int64) *Tier {
	t.Helper()
	tier, err := Open(Config{Dir: dir, CapacityBytes: capacity})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return tier
}

func fill(t *testing.T, tier *Tier, key uint32, data []byte) {
	t.Helper()
	if err := tier.Fill(key, data, false); err != nil {
		t.Fatalf("Fill(%d): %v", key, err)
	}
}

func payload(key uint32, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(key) + i)
	}
	return b
}

func TestFillGetRoundtrip(t *testing.T) {
	tier := openTier(t, t.TempDir(), 1<<20)
	defer tier.Close()

	want := payload(7, 12345)
	fill(t, tier, 7, want)
	h, ok := tier.Get(7)
	if !ok {
		t.Fatal("Get(7) missed after Fill")
	}
	if !bytes.Equal(h.Bytes(), want) {
		t.Fatal("Get returned different bytes than were filled")
	}
	h.Release()

	if _, ok := tier.Get(8); ok {
		t.Fatal("Get(8) hit without a fill")
	}
	st := tier.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 fill", st)
	}
	if st.Bytes != int64(len(want)) || st.Entries != 1 {
		t.Fatalf("stats bytes/entries = %d/%d, want %d/1", st.Bytes, st.Entries, len(want))
	}
}

func TestFillOverwriteIsNotEviction(t *testing.T) {
	tier := openTier(t, t.TempDir(), 1<<20)
	defer tier.Close()

	fill(t, tier, 3, payload(3, 100))
	fill(t, tier, 3, payload(9, 200))
	st := tier.Stats()
	if st.Evictions != 0 {
		t.Fatalf("overwrite counted %d evictions, want 0", st.Evictions)
	}
	if st.Bytes != 200 || st.Entries != 1 {
		t.Fatalf("after overwrite bytes/entries = %d/%d, want 200/1", st.Bytes, st.Entries)
	}
	h, ok := tier.Get(3)
	if !ok {
		t.Fatal("Get(3) missed after overwrite")
	}
	defer h.Release()
	if !bytes.Equal(h.Bytes(), payload(9, 200)) {
		t.Fatal("Get returned the stale pre-overwrite bytes")
	}
}

func TestEvictionIsLRUAndCapacityBounded(t *testing.T) {
	tier := openTier(t, t.TempDir(), 250)
	defer tier.Close()

	fill(t, tier, 1, payload(1, 100))
	fill(t, tier, 2, payload(2, 100))
	// Touch 1 so 2 is the LRU victim when 3 overflows capacity.
	if h, ok := tier.Get(1); ok {
		h.Release()
	} else {
		t.Fatal("Get(1) missed")
	}
	fill(t, tier, 3, payload(3, 100))

	if tier.Contains(2) {
		t.Fatal("LRU entry 2 survived an over-capacity fill")
	}
	if !tier.Contains(1) || !tier.Contains(3) {
		t.Fatal("recently-used entries were evicted instead of the LRU one")
	}
	st := tier.Stats()
	if st.Evictions != 1 || st.Bytes != 200 {
		t.Fatalf("stats = %+v, want 1 eviction and 200 bytes", st)
	}
}

func TestPinnedEntrySurvivesEviction(t *testing.T) {
	tier := openTier(t, t.TempDir(), 150)
	defer tier.Close()

	want := payload(1, 100)
	fill(t, tier, 1, want)
	h, ok := tier.Get(1)
	if !ok {
		t.Fatal("Get(1) missed")
	}
	// Overflows capacity; entry 1 is pinned so it is skipped, then
	// dropped as dead once released.
	fill(t, tier, 2, payload(2, 100))
	if !bytes.Equal(h.Bytes(), want) {
		t.Fatal("pinned handle bytes changed under eviction pressure")
	}
	h.Release()
	if !tier.Contains(2) {
		t.Fatal("entry 2 missing after fill")
	}
}

// A crash mid-fill leaves only a *.tmp file: it must never be readable
// as an entry, and open must clean it up.
func TestCrashMidFillLeavesNoReadableEntry(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 1<<20)
	fill(t, tier, 1, payload(1, 64))
	tier.Close()

	// Simulate a fill interrupted before rename: a partial temp file,
	// including one with a fully valid header+data prefix.
	if err := os.WriteFile(filepath.Join(dir, "fill-123"+tmpSuffix), marshalEntryHeader(9, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	tier = openTier(t, dir, 1<<20)
	defer tier.Close()
	if tier.Contains(9) {
		t.Fatal("interrupted fill became a readable entry")
	}
	if _, ok := tier.Get(9); ok {
		t.Fatal("Get(9) served a partial fill")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			t.Fatalf("temp file %s survived reopen", de.Name())
		}
	}
	if !tier.Contains(1) {
		t.Fatal("the completed entry was lost while cleaning temporaries")
	}
}

// Restart must reload the persisted eviction order: the entry touched
// before close survives a post-restart capacity squeeze, colder ones
// do not.
func TestRestartReloadsEvictionState(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 1<<20)
	fill(t, tier, 1, payload(1, 100))
	fill(t, tier, 2, payload(2, 100))
	fill(t, tier, 3, payload(3, 100))
	// Recency now 1 > 3 > 2 (fills pushed 3,2,1... then Get(1)).
	if h, ok := tier.Get(1); ok {
		h.Release()
	} else {
		t.Fatal("Get(1) missed")
	}
	tier.Close()

	// Reopen with room for two entries: 2 (coldest) must be the one
	// evicted, which requires the persisted order, not directory order.
	tier = openTier(t, dir, 250)
	defer tier.Close()
	if tier.Contains(2) {
		t.Fatal("coldest entry 2 survived the post-restart squeeze: eviction state was not reloaded")
	}
	if !tier.Contains(1) || !tier.Contains(3) {
		t.Fatal("warm entries 1/3 were evicted after restart: eviction state was not reloaded")
	}
	h, ok := tier.Get(1)
	if !ok {
		t.Fatal("Get(1) missed after restart")
	}
	defer h.Release()
	if !bytes.Equal(h.Bytes(), payload(1, 100)) {
		t.Fatal("restart returned different bytes than were filled")
	}
}

// A corrupt cached block must fall through to a miss (so the caller
// re-reads the segment backend), never serve bad data.
func TestCorruptEntryFallsThrough(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 1<<20)
	fill(t, tier, 5, payload(5, 4096))
	tier.Close()

	// Flip one data byte on disk.
	path := filepath.Join(dir, entryName(5))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerBlock+1000] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	tier = openTier(t, dir, 1<<20)
	defer tier.Close()
	if _, ok := tier.Get(5); ok {
		t.Fatal("Get served a corrupt entry")
	}
	st := tier.Stats()
	if st.ValidationFailures != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 validation failure and 1 miss", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry file was not dropped: stat err = %v", err)
	}
	// A second Get is a plain miss, not a second validation failure.
	if _, ok := tier.Get(5); ok {
		t.Fatal("Get hit after the corrupt entry was dropped")
	}
}

// A truncated (torn) entry file is dropped at open.
func TestTruncatedEntryDroppedAtOpen(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 1<<20)
	fill(t, tier, 6, payload(6, 2048))
	tier.Close()

	path := filepath.Join(dir, entryName(6))
	if err := os.Truncate(path, headerBlock+100); err != nil {
		t.Fatal(err)
	}
	tier = openTier(t, dir, 1<<20)
	defer tier.Close()
	if tier.Contains(6) {
		t.Fatal("truncated entry survived open")
	}
	if tier.Stats().ValidationFailures != 1 {
		t.Fatalf("stats = %+v, want 1 validation failure", tier.Stats())
	}
}

func TestPromoteDedupAndAccounting(t *testing.T) {
	tier := openTier(t, t.TempDir(), 1<<20)
	defer tier.Close()

	reads := 0
	read := func() ([]byte, error) { reads++; return payload(1, 128), nil }
	if !tier.Promote(1, true, read) {
		t.Fatal("first Promote refused")
	}
	tier.WaitIdle()
	// Already resident: no second read.
	if tier.Promote(1, true, read) {
		t.Fatal("Promote re-promoted a resident entry")
	}
	if reads != 1 {
		t.Fatalf("read ran %d times, want 1", reads)
	}

	st := tier.Stats()
	if st.PrefetchIssued != 1 || st.PrefetchHits != 0 {
		t.Fatalf("stats = %+v, want 1 prefetch issued, 0 hits", st)
	}
	// First foreground read of a prefetched entry is a prefetch hit;
	// the second is a plain hit.
	for i := 0; i < 2; i++ {
		h, ok := tier.Get(1)
		if !ok {
			t.Fatalf("Get(1) missed after promote (read %d)", i)
		}
		h.Release()
	}
	st = tier.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", st.PrefetchHits)
	}
}

func TestPromoteWastedOnUntouchedEviction(t *testing.T) {
	tier := openTier(t, t.TempDir(), 150)
	defer tier.Close()

	if !tier.Promote(1, true, func() ([]byte, error) { return payload(1, 100), nil }) {
		t.Fatal("Promote refused")
	}
	tier.WaitIdle()
	// Evict it untouched.
	fill(t, tier, 2, payload(2, 100))
	st := tier.Stats()
	if st.PrefetchWasted != 1 {
		t.Fatalf("prefetch wasted = %d, want 1", st.PrefetchWasted)
	}
}

func TestPromoteFailureDoesNotPoison(t *testing.T) {
	tier := openTier(t, t.TempDir(), 1<<20)
	defer tier.Close()

	if !tier.Promote(1, false, func() ([]byte, error) { return nil, fmt.Errorf("backend down") }) {
		t.Fatal("Promote refused")
	}
	tier.WaitIdle()
	if st := tier.Stats(); st.FillErrors != 1 {
		t.Fatalf("fill errors = %d, want 1", st.FillErrors)
	}
	// The key is retryable after the failed promote.
	if !tier.Promote(1, false, func() ([]byte, error) { return payload(1, 64), nil }) {
		t.Fatal("Promote refused after a failed attempt")
	}
	tier.WaitIdle()
	if !tier.Contains(1) {
		t.Fatal("retry promote did not land")
	}
}

func TestPromoteBudget(t *testing.T) {
	tier, err := Open(Config{Dir: t.TempDir(), CapacityBytes: 1 << 20, PromoteInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	release := make(chan struct{})
	if !tier.Promote(1, false, func() ([]byte, error) { <-release; return payload(1, 64), nil }) {
		t.Fatal("first Promote refused")
	}
	// Budget of 1 is held by the blocked promote.
	if tier.Promote(2, false, func() ([]byte, error) { return payload(2, 64), nil }) {
		t.Fatal("Promote exceeded the in-flight budget")
	}
	close(release)
	tier.WaitIdle()
	if !tier.Contains(1) {
		t.Fatal("budgeted promote did not land")
	}
}

func TestOpenRejectsBadConfig(t *testing.T) {
	if _, err := Open(Config{Dir: "", CapacityBytes: 1}); err == nil {
		t.Fatal("Open accepted an empty dir")
	}
	if _, err := Open(Config{Dir: t.TempDir(), CapacityBytes: 0}); err == nil {
		t.Fatal("Open accepted zero capacity")
	}
}

func TestStatePersistsAcrossManyCycles(t *testing.T) {
	dir := t.TempDir()
	for cycle := 0; cycle < 3; cycle++ {
		tier := openTier(t, dir, 1<<20)
		fill(t, tier, uint32(cycle), payload(uint32(cycle), 64))
		tier.Close()
	}
	tier := openTier(t, dir, 1<<20)
	defer tier.Close()
	for key := uint32(0); key < 3; key++ {
		if !tier.Contains(key) {
			t.Fatalf("entry %d lost across restart cycles", key)
		}
	}
}

// Eviction must unlink the victim's backing file, not just forget it:
// the tier frees disk space, and the caller observes it synchronously
// once Fill returns (files are removed after t.mu is released, before
// Fill's return).
func TestEvictionRemovesEntryFiles(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 250)
	defer tier.Close()

	fill(t, tier, 1, payload(1, 100))
	fill(t, tier, 2, payload(2, 100))
	fill(t, tier, 3, payload(3, 100)) // evicts 1 (coldest)

	if tier.Contains(1) {
		t.Fatal("LRU entry 1 survived an over-capacity fill")
	}
	if _, err := os.Stat(filepath.Join(dir, entryName(1))); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still on disk: stat err = %v", err)
	}
	for _, key := range []uint32{2, 3} {
		if _, err := os.Stat(filepath.Join(dir, entryName(key))); err != nil {
			t.Fatalf("resident entry %d file missing: %v", key, err)
		}
	}
}

// The LRU sidecar must be written by Fill itself, not only by Close: a
// node that crashes without a clean shutdown still restarts warm.
func TestSidecarDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 1<<20)
	fill(t, tier, 1, payload(1, 100))
	fill(t, tier, 2, payload(2, 100))
	fill(t, tier, 3, payload(3, 100))
	if h, ok := tier.Get(2); ok {
		h.Release()
	} else {
		t.Fatal("Get(2) missed")
	}
	// Crash: no Close, so recency (2 warmest) must come from the
	// sidecars the fills wrote. The Get's recency bump is allowed to be
	// lost (only fills persist), so squeeze to one survivor determined
	// by fill order alone: 3 was filled last.
	tier = openTier(t, dir, 150)
	defer tier.Close()
	if !tier.Contains(3) {
		t.Fatal("most-recently-filled entry 3 did not survive the post-crash squeeze: fills are not persisting the sidecar")
	}
	if tier.Contains(1) {
		t.Fatal("coldest entry 1 survived the post-crash squeeze")
	}
}

// No temp files may linger after fills, evictions, and sidecar writes:
// every CreateTemp is either renamed into place or removed.
func TestNoTempFilesAfterSteadyState(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 300)
	for key := uint32(0); key < 16; key++ {
		fill(t, tier, key, payload(key, 64))
	}
	tier.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), tmpSuffix) {
			t.Fatalf("temp file %s left behind", de.Name())
		}
	}
}

// Concurrent fills, gets, and promotions across overlapping keys: the
// lock/IO split (evict victims and sidecar writes outside t.mu) must
// hold up under the race detector, and every surviving entry must read
// back its own bytes.
func TestConcurrentFillGetPromote(t *testing.T) {
	tier := openTier(t, t.TempDir(), 4096)
	defer tier.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := uint32((g*50 + i) % 24)
				switch i % 3 {
				case 0:
					_ = tier.Fill(key, payload(key, 128), false)
				case 1:
					if h, ok := tier.Get(key); ok {
						if !bytes.Equal(h.Bytes(), payload(key, 128)) {
							t.Errorf("entry %d read back wrong bytes", key)
						}
						h.Release()
					}
				case 2:
					tier.Promote(key, g%2 == 0, func() ([]byte, error) {
						return payload(key, 128), nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	tier.WaitIdle()

	st := tier.Stats()
	if st.Bytes > 4096+128 {
		t.Fatalf("tier runs %d bytes, capacity 4096 (+1 MRU entry slack)", st.Bytes)
	}
}

//go:build unix

package disktier

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The mapping survives f being
// closed.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(m []byte) {
	if m != nil {
		//lifevet:allow errdrop -- Munmap failure leaves the pages mapped (a leak, not corruption) and there is no caller that could act on it
		_ = syscall.Munmap(m)
	}
}

// Package cache implements the bucket cache of the LifeRaft architecture
// (paper §4, Figure 3): a fixed-capacity in-memory store of recently read
// buckets. The paper uses a simple least-recently-used policy with a
// capacity of 20 buckets and manages it independently of the database
// server (SQL Server's buffer pool is flushed after every bucket read).
// CLOCK and 2Q policies are provided for the cache-policy ablation.
//
// The scheduler consults the cache *without* touching recency (Contains)
// when computing φ(i) in the workload throughput metric — whether a bucket
// is in memory decides whether its Tb is charged — and promotes entries
// only on real reads (Get/Put).
package cache

import (
	"container/list"
	"fmt"
)

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Add returns the element-wise sum of two stats snapshots, used to merge
// the per-shard bucket caches of a sharded run into one aggregate.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Puts += o.Puts
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d hitRate=%.1f%%",
		s.Hits, s.Misses, s.Evictions, 100*s.HitRate())
}

// Cache is a fixed-capacity key-value cache. Implementations are not safe
// for concurrent use; the engine serializes access on its scheduling
// goroutine.
type Cache[K comparable, V any] interface {
	// Get returns the cached value and promotes it per the policy.
	Get(k K) (V, bool)
	// Put inserts or refreshes a value, evicting per the policy.
	Put(k K, v V)
	// Contains reports membership without affecting recency. This is
	// the φ(i) probe of Eq. 1.
	Contains(k K) bool
	// Remove drops a key if present, reporting whether it was.
	Remove(k K) bool
	// Len returns the number of cached entries.
	Len() int
	// Cap returns the capacity.
	Cap() int
	// Stats returns a snapshot of the counters.
	Stats() Stats
}

type lruEntry[K comparable, V any] struct {
	k K
	v V
}

// LRU is a least-recently-used cache, the paper's policy.
type LRU[K comparable, V any] struct {
	cap   int
	ll    *list.List // front = most recent
	items map[K]*list.Element
	stats Stats
}

// NewLRU returns an LRU cache with the given capacity (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, ll: list.New(), items: make(map[K]*list.Element)}
}

// Get implements Cache.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		return el.Value.(lruEntry[K, V]).v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put implements Cache.
func (c *LRU[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if el, ok := c.items[k]; ok {
		el.Value = lruEntry[K, V]{k, v}
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry[K, V]).k)
		c.stats.Evictions++
	}
	c.items[k] = c.ll.PushFront(lruEntry[K, V]{k, v})
}

// Contains implements Cache.
func (c *LRU[K, V]) Contains(k K) bool { _, ok := c.items[k]; return ok }

// Remove implements Cache.
func (c *LRU[K, V]) Remove(k K) bool {
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, k)
	return true
}

// Len implements Cache.
func (c *LRU[K, V]) Len() int { return c.ll.Len() }

// Cap implements Cache.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Stats implements Cache.
func (c *LRU[K, V]) Stats() Stats { return c.stats }

// Keys returns the cached keys from most to least recently used; useful
// for tests and debugging.
func (c *LRU[K, V]) Keys() []K {
	out := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(lruEntry[K, V]).k)
	}
	return out
}

// Clock is a CLOCK (second-chance) cache: an LRU approximation with O(1)
// lookups and a rotating eviction hand. Included for the cache-policy
// ablation bench.
type Clock[K comparable, V any] struct {
	cap   int
	slots []clockSlot[K, V]
	index map[K]int
	hand  int
	stats Stats
}

type clockSlot[K comparable, V any] struct {
	k    K
	v    V
	ref  bool
	used bool
}

// NewClock returns a CLOCK cache with the given capacity (minimum 1).
func NewClock[K comparable, V any](capacity int) *Clock[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Clock[K, V]{cap: capacity, slots: make([]clockSlot[K, V], capacity), index: make(map[K]int)}
}

// Get implements Cache.
func (c *Clock[K, V]) Get(k K) (V, bool) {
	if i, ok := c.index[k]; ok {
		c.stats.Hits++
		c.slots[i].ref = true
		return c.slots[i].v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put implements Cache.
func (c *Clock[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if i, ok := c.index[k]; ok {
		c.slots[i].v = v
		c.slots[i].ref = true
		return
	}
	for {
		s := &c.slots[c.hand]
		if !s.used {
			*s = clockSlot[K, V]{k: k, v: v, ref: false, used: true}
			c.index[k] = c.hand
			c.hand = (c.hand + 1) % c.cap
			return
		}
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		delete(c.index, s.k)
		c.stats.Evictions++
		*s = clockSlot[K, V]{k: k, v: v, ref: false, used: true}
		c.index[k] = c.hand
		c.hand = (c.hand + 1) % c.cap
		return
	}
}

// Contains implements Cache.
func (c *Clock[K, V]) Contains(k K) bool { _, ok := c.index[k]; return ok }

// Remove implements Cache.
func (c *Clock[K, V]) Remove(k K) bool {
	i, ok := c.index[k]
	if !ok {
		return false
	}
	delete(c.index, k)
	c.slots[i] = clockSlot[K, V]{}
	return true
}

// Len implements Cache.
func (c *Clock[K, V]) Len() int { return len(c.index) }

// Cap implements Cache.
func (c *Clock[K, V]) Cap() int { return c.cap }

// Stats implements Cache.
func (c *Clock[K, V]) Stats() Stats { return c.stats }

// TwoQueue is a simplified 2Q cache: a FIFO probation queue admits new
// keys; a second hit promotes to a protected LRU segment. It resists the
// scan pollution that sequential bucket batches inflict on plain LRU.
type TwoQueue[K comparable, V any] struct {
	probation *LRU[K, V]
	protected *LRU[K, V]
	stats     Stats
}

// NewTwoQueue returns a 2Q cache with the given total capacity (minimum
// 2): a quarter (at least 1) probationary, the rest protected.
func NewTwoQueue[K comparable, V any](capacity int) *TwoQueue[K, V] {
	if capacity < 2 {
		capacity = 2
	}
	probCap := capacity / 4
	if probCap < 1 {
		probCap = 1
	}
	return &TwoQueue[K, V]{
		probation: NewLRU[K, V](probCap),
		protected: NewLRU[K, V](capacity - probCap),
	}
}

// Get implements Cache.
func (c *TwoQueue[K, V]) Get(k K) (V, bool) {
	if v, ok := c.protected.Get(k); ok {
		c.stats.Hits++
		return v, true
	}
	if v, ok := c.probation.Get(k); ok {
		// Second touch: promote.
		c.probation.Remove(k)
		c.promote(k, v)
		c.stats.Hits++
		return v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

func (c *TwoQueue[K, V]) promote(k K, v V) {
	before := c.protected.Stats().Evictions
	c.protected.Put(k, v)
	c.stats.Evictions += c.protected.Stats().Evictions - before
}

// Put implements Cache.
func (c *TwoQueue[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if c.protected.Contains(k) {
		c.protected.Put(k, v)
		return
	}
	before := c.probation.Stats().Evictions
	c.probation.Put(k, v)
	c.stats.Evictions += c.probation.Stats().Evictions - before
}

// Contains implements Cache.
func (c *TwoQueue[K, V]) Contains(k K) bool {
	return c.protected.Contains(k) || c.probation.Contains(k)
}

// Remove implements Cache.
func (c *TwoQueue[K, V]) Remove(k K) bool {
	return c.protected.Remove(k) || c.probation.Remove(k)
}

// Len implements Cache.
func (c *TwoQueue[K, V]) Len() int { return c.protected.Len() + c.probation.Len() }

// Cap implements Cache.
func (c *TwoQueue[K, V]) Cap() int { return c.protected.Cap() + c.probation.Cap() }

// Stats implements Cache.
func (c *TwoQueue[K, V]) Stats() Stats { return c.stats }

// PolicyName identifies a cache policy for configuration.
type PolicyName string

// Supported cache policies.
const (
	PolicyLRU      PolicyName = "lru"
	PolicyClock    PolicyName = "clock"
	PolicyTwoQueue PolicyName = "2q"
)

// New builds a cache of the named policy. It returns an error for unknown
// names so configuration mistakes surface early.
func New[K comparable, V any](policy PolicyName, capacity int) (Cache[K, V], error) {
	switch policy {
	case PolicyLRU, "":
		return NewLRU[K, V](capacity), nil
	case PolicyClock:
		return NewClock[K, V](capacity), nil
	case PolicyTwoQueue:
		return NewTwoQueue[K, V](capacity), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
}

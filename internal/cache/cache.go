// Package cache implements the bucket cache of the LifeRaft architecture
// (paper §4, Figure 3): a fixed-capacity in-memory store of recently read
// buckets. The paper uses a simple least-recently-used policy with a
// capacity of 20 buckets and manages it independently of the database
// server (SQL Server's buffer pool is flushed after every bucket read).
// CLOCK and 2Q policies are provided for the cache-policy ablation.
//
// The scheduler consults the cache *without* touching recency (Contains)
// when computing φ(i) in the workload throughput metric — whether a bucket
// is in memory decides whether its Tb is charged — and promotes entries
// only on real reads (Get/Put).
package cache

import (
	"fmt"
)

// Stats counts cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Puts      int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// Add returns the element-wise sum of two stats snapshots, used to merge
// the per-shard bucket caches of a sharded run into one aggregate.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Puts += o.Puts
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d hitRate=%.1f%%",
		s.Hits, s.Misses, s.Evictions, 100*s.HitRate())
}

// Cache is a fixed-capacity key-value cache. Implementations are not safe
// for concurrent use; the engine serializes access on its scheduling
// goroutine.
type Cache[K comparable, V any] interface {
	// Get returns the cached value and promotes it per the policy.
	Get(k K) (V, bool)
	// Put inserts or refreshes a value, evicting per the policy.
	Put(k K, v V)
	// Contains reports membership without affecting recency. This is
	// the φ(i) probe of Eq. 1.
	Contains(k K) bool
	// Remove drops a key if present, reporting whether it was.
	Remove(k K) bool
	// Len returns the number of cached entries.
	Len() int
	// Cap returns the capacity.
	Cap() int
	// Stats returns a snapshot of the counters.
	Stats() Stats
	// OnEvict registers fn to be called whenever an entry leaves the
	// cache through POLICY eviction (capacity pressure during Put or a
	// policy-internal promotion). Explicit Remove does not fire it. The
	// hook runs after the mutation completes, so it observes a
	// consistent cache (Contains(k) is already false for the evicted
	// key). The scheduler uses this to keep its incremental Ut index in
	// sync with φ(i); see internal/core/DESIGN-sched-index.md. A nil fn
	// clears the hook.
	OnEvict(fn func(K, V))
}

// LRU is a least-recently-used cache, the paper's policy. Entries live in
// a slab of slots linked into an intrusive recency list, so steady-state
// operation at capacity performs no allocations — the scheduler's
// zero-alloc service loop depends on this.
type LRU[K comparable, V any] struct {
	cap     int
	slots   []lruSlot[K, V]
	index   map[K]int32
	head    int32 // most recent, -1 when empty
	tail    int32 // least recent, -1 when empty
	free    []int32
	onEvict func(K, V)
	stats   Stats
}

type lruSlot[K comparable, V any] struct {
	k          K
	v          V
	prev, next int32 // -1 terminates
}

// NewLRU returns an LRU cache with the given capacity (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap:   capacity,
		slots: make([]lruSlot[K, V], 0, capacity),
		index: make(map[K]int32, capacity),
		head:  -1,
		tail:  -1,
	}
}

// unlink detaches slot i from the recency list.
func (c *LRU[K, V]) unlink(i int32) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
}

// pushFront makes slot i the most recent entry.
func (c *LRU[K, V]) pushFront(i int32) {
	s := &c.slots[i]
	s.prev, s.next = -1, c.head
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Get implements Cache.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	if i, ok := c.index[k]; ok {
		c.stats.Hits++
		c.unlink(i)
		c.pushFront(i)
		return c.slots[i].v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put implements Cache.
func (c *LRU[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if i, ok := c.index[k]; ok {
		c.slots[i].v = v
		c.unlink(i)
		c.pushFront(i)
		return
	}
	var (
		i       int32
		evicted bool
		ek      K
		ev      V
	)
	switch {
	case len(c.index) >= c.cap:
		// Reuse the least-recent slot in place of its evicted entry.
		i = c.tail
		ek, ev, evicted = c.slots[i].k, c.slots[i].v, true
		c.unlink(i)
		delete(c.index, ek)
		c.stats.Evictions++
	case len(c.free) > 0:
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	default:
		c.slots = append(c.slots, lruSlot[K, V]{})
		i = int32(len(c.slots) - 1)
	}
	c.slots[i].k, c.slots[i].v = k, v
	c.index[k] = i
	c.pushFront(i)
	if evicted && c.onEvict != nil {
		c.onEvict(ek, ev)
	}
}

// Contains implements Cache.
func (c *LRU[K, V]) Contains(k K) bool { _, ok := c.index[k]; return ok }

// Remove implements Cache.
func (c *LRU[K, V]) Remove(k K) bool {
	i, ok := c.index[k]
	if !ok {
		return false
	}
	c.unlink(i)
	delete(c.index, k)
	var zero lruSlot[K, V]
	c.slots[i] = zero
	c.free = append(c.free, i)
	return true
}

// Len implements Cache.
func (c *LRU[K, V]) Len() int { return len(c.index) }

// Cap implements Cache.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Stats implements Cache.
func (c *LRU[K, V]) Stats() Stats { return c.stats }

// OnEvict implements Cache.
func (c *LRU[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// Keys returns the cached keys from most to least recently used; useful
// for tests and debugging.
func (c *LRU[K, V]) Keys() []K {
	out := make([]K, 0, len(c.index))
	for i := c.head; i >= 0; i = c.slots[i].next {
		out = append(out, c.slots[i].k)
	}
	return out
}

// Clock is a CLOCK (second-chance) cache: an LRU approximation with O(1)
// lookups and a rotating eviction hand. Included for the cache-policy
// ablation bench.
type Clock[K comparable, V any] struct {
	cap     int
	slots   []clockSlot[K, V]
	index   map[K]int
	hand    int
	onEvict func(K, V)
	stats   Stats
}

type clockSlot[K comparable, V any] struct {
	k    K
	v    V
	ref  bool
	used bool
}

// NewClock returns a CLOCK cache with the given capacity (minimum 1).
func NewClock[K comparable, V any](capacity int) *Clock[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Clock[K, V]{cap: capacity, slots: make([]clockSlot[K, V], capacity), index: make(map[K]int)}
}

// Get implements Cache.
func (c *Clock[K, V]) Get(k K) (V, bool) {
	if i, ok := c.index[k]; ok {
		c.stats.Hits++
		c.slots[i].ref = true
		return c.slots[i].v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put implements Cache.
func (c *Clock[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if i, ok := c.index[k]; ok {
		c.slots[i].v = v
		c.slots[i].ref = true
		return
	}
	for {
		s := &c.slots[c.hand]
		if !s.used {
			*s = clockSlot[K, V]{k: k, v: v, ref: false, used: true}
			c.index[k] = c.hand
			c.hand = (c.hand + 1) % c.cap
			return
		}
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		ek, ev := s.k, s.v
		delete(c.index, s.k)
		c.stats.Evictions++
		*s = clockSlot[K, V]{k: k, v: v, ref: false, used: true}
		c.index[k] = c.hand
		c.hand = (c.hand + 1) % c.cap
		if c.onEvict != nil {
			c.onEvict(ek, ev)
		}
		return
	}
}

// Contains implements Cache.
func (c *Clock[K, V]) Contains(k K) bool { _, ok := c.index[k]; return ok }

// Remove implements Cache.
func (c *Clock[K, V]) Remove(k K) bool {
	i, ok := c.index[k]
	if !ok {
		return false
	}
	delete(c.index, k)
	c.slots[i] = clockSlot[K, V]{}
	return true
}

// Len implements Cache.
func (c *Clock[K, V]) Len() int { return len(c.index) }

// Cap implements Cache.
func (c *Clock[K, V]) Cap() int { return c.cap }

// Stats implements Cache.
func (c *Clock[K, V]) Stats() Stats { return c.stats }

// OnEvict implements Cache.
func (c *Clock[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// TwoQueue is a simplified 2Q cache: a FIFO probation queue admits new
// keys; a second hit promotes to a protected LRU segment. It resists the
// scan pollution that sequential bucket batches inflict on plain LRU.
type TwoQueue[K comparable, V any] struct {
	probation *LRU[K, V]
	protected *LRU[K, V]
	stats     Stats
}

// NewTwoQueue returns a 2Q cache with the given total capacity (minimum
// 2): a quarter (at least 1) probationary, the rest protected.
func NewTwoQueue[K comparable, V any](capacity int) *TwoQueue[K, V] {
	if capacity < 2 {
		capacity = 2
	}
	probCap := capacity / 4
	if probCap < 1 {
		probCap = 1
	}
	return &TwoQueue[K, V]{
		probation: NewLRU[K, V](probCap),
		protected: NewLRU[K, V](capacity - probCap),
	}
}

// Get implements Cache.
func (c *TwoQueue[K, V]) Get(k K) (V, bool) {
	if v, ok := c.protected.Get(k); ok {
		c.stats.Hits++
		return v, true
	}
	if v, ok := c.probation.Get(k); ok {
		// Second touch: promote.
		c.probation.Remove(k)
		c.promote(k, v)
		c.stats.Hits++
		return v, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

func (c *TwoQueue[K, V]) promote(k K, v V) {
	before := c.protected.Stats().Evictions
	c.protected.Put(k, v)
	c.stats.Evictions += c.protected.Stats().Evictions - before
}

// Put implements Cache.
func (c *TwoQueue[K, V]) Put(k K, v V) {
	c.stats.Puts++
	if c.protected.Contains(k) {
		c.protected.Put(k, v)
		return
	}
	before := c.probation.Stats().Evictions
	c.probation.Put(k, v)
	c.stats.Evictions += c.probation.Stats().Evictions - before
}

// Contains implements Cache.
func (c *TwoQueue[K, V]) Contains(k K) bool {
	return c.protected.Contains(k) || c.probation.Contains(k)
}

// Remove implements Cache.
func (c *TwoQueue[K, V]) Remove(k K) bool {
	return c.protected.Remove(k) || c.probation.Remove(k)
}

// Len implements Cache.
func (c *TwoQueue[K, V]) Len() int { return c.protected.Len() + c.probation.Len() }

// Cap implements Cache.
func (c *TwoQueue[K, V]) Cap() int { return c.protected.Cap() + c.probation.Cap() }

// Stats implements Cache.
func (c *TwoQueue[K, V]) Stats() Stats { return c.stats }

// OnEvict implements Cache. A key promoted from probation to protected
// never leaves the cache as a whole, so the hook is wired to the two
// inner segments: it fires only when capacity pressure in either segment
// pushes an entry out of the cache entirely.
func (c *TwoQueue[K, V]) OnEvict(fn func(K, V)) {
	c.probation.OnEvict(fn)
	c.protected.OnEvict(fn)
}

// PolicyName identifies a cache policy for configuration.
type PolicyName string

// Supported cache policies.
const (
	PolicyLRU      PolicyName = "lru"
	PolicyClock    PolicyName = "clock"
	PolicyTwoQueue PolicyName = "2q"
)

// New builds a cache of the named policy. It returns an error for unknown
// names so configuration mistakes surface early.
func New[K comparable, V any](policy PolicyName, capacity int) (Cache[K, V], error) {
	switch policy {
	case PolicyLRU, "":
		return NewLRU[K, V](capacity), nil
	case PolicyClock:
		return NewClock[K, V](capacity), nil
	case PolicyTwoQueue:
		return NewTwoQueue[K, V](capacity), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
}

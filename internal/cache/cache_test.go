package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[int, string](2)
	if c.Cap() != 2 || c.Len() != 0 {
		t.Fatal("fresh cache state")
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Error("Get(1)")
	}
	c.Put(3, "c") // evicts 2 (1 was just used)
	if c.Contains(2) {
		t.Error("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("1 and 3 should remain")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Puts != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU[int, string](2)
	c.Put(1, "a")
	c.Put(1, "a2")
	if c.Len() != 1 {
		t.Error("update should not grow cache")
	}
	if v, _ := c.Get(1); v != "a2" {
		t.Error("update lost")
	}
}

func TestLRUContainsDoesNotPromote(t *testing.T) {
	// φ(i) probes must not perturb recency, or the scheduler's metric
	// computation would itself reorder evictions.
	c := NewLRU[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Contains(1) // must NOT promote 1
	c.Put(3, 3)   // evicts 1 (oldest by true recency)
	if c.Contains(1) {
		t.Error("Contains promoted key 1")
	}
	if !c.Contains(2) {
		t.Error("key 2 should survive")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU[int, int](3)
	c.Put(1, 1)
	if !c.Remove(1) || c.Remove(1) {
		t.Error("Remove semantics")
	}
	if c.Len() != 0 {
		t.Error("Len after Remove")
	}
}

func TestLRUKeysOrder(t *testing.T) {
	c := NewLRU[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 2 {
		t.Errorf("Keys = %v, want [1 3 2]", keys)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := NewLRU[int, int](0)
	if c.Cap() != 1 {
		t.Error("capacity should clamp to 1")
	}
	c.Put(1, 1)
	c.Put(2, 2)
	if c.Len() != 1 || c.Contains(1) {
		t.Error("single-slot eviction")
	}
}

func TestLRUMissCounts(t *testing.T) {
	c := NewLRU[int, int](1)
	c.Get(9)
	c.Put(9, 9)
	c.Get(9)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate should be 0")
	}
	if st.String() == "" {
		t.Error("String empty")
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Error("Get(1)")
	}
	c.Put(3, "c") // 1 is referenced → second chance; 2 evicted
	if !c.Contains(1) {
		t.Error("referenced key 1 should survive one sweep")
	}
	if c.Contains(2) {
		t.Error("unreferenced key 2 should be evicted")
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Error("size accounting")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestClockUpdateAndRemove(t *testing.T) {
	c := NewClock[int, int](2)
	c.Put(1, 10)
	c.Put(1, 11)
	if v, _ := c.Get(1); v != 11 {
		t.Error("update lost")
	}
	if !c.Remove(1) || c.Remove(1) {
		t.Error("Remove semantics")
	}
	if c.Len() != 0 {
		t.Error("Len after Remove")
	}
	// Reuse the freed slot.
	c.Put(2, 20)
	if !c.Contains(2) {
		t.Error("slot reuse failed")
	}
	if c2 := NewClock[int, int](0); c2.Cap() != 1 {
		t.Error("capacity clamp")
	}
}

func TestTwoQueuePromotion(t *testing.T) {
	c := NewTwoQueue[int, int](8) // probation 2, protected 6
	if c.Cap() != 8 {
		t.Errorf("Cap = %d", c.Cap())
	}
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3) // 1 falls out of probation (cap 2) without a second touch
	if c.Contains(1) {
		t.Error("once-touched key should age out of probation")
	}
	c.Get(2) // promote to protected
	// Scan many one-shot keys through probation.
	for k := 10; k < 30; k++ {
		c.Put(k, k)
	}
	if !c.Contains(2) {
		t.Error("promoted key should survive a scan")
	}
	if c.Stats().Hits == 0 || c.Stats().Misses != 0 {
		c.Get(999)
		if c.Stats().Misses != 1 {
			t.Error("miss accounting")
		}
	}
}

func TestTwoQueueRemoveAndLen(t *testing.T) {
	c := NewTwoQueue[int, int](4)
	c.Put(1, 1)
	c.Get(1) // promoted
	c.Put(2, 2)
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if !c.Remove(1) || !c.Remove(2) || c.Remove(3) {
		t.Error("Remove semantics")
	}
	if c2 := NewTwoQueue[int, int](0); c2.Cap() < 2 {
		t.Error("capacity clamp")
	}
	// Put on an already-protected key must update in place.
	c.Put(5, 5)
	c.Get(5)
	c.Put(5, 55)
	if v, _ := c.Get(5); v != 55 {
		t.Error("protected update lost")
	}
}

func TestNewByPolicyName(t *testing.T) {
	for _, p := range []PolicyName{PolicyLRU, PolicyClock, PolicyTwoQueue, ""} {
		c, err := New[int, int](p, 4)
		if err != nil || c == nil {
			t.Errorf("New(%q): %v", p, err)
		}
	}
	if _, err := New[int, int]("bogus", 4); err == nil {
		t.Error("unknown policy should error")
	}
}

// Property: an LRU of capacity k, after any workload, holds exactly the k
// most recently put/hit distinct keys.
func TestQuickLRUHoldsMostRecent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const cap = 5
		c := NewLRU[int, int](cap)
		var recent []int // most recent first, distinct
		touch := func(k int) {
			for i, v := range recent {
				if v == k {
					recent = append(recent[:i], recent[i+1:]...)
					break
				}
			}
			recent = append([]int{k}, recent...)
			if len(recent) > cap {
				recent = recent[:cap]
			}
		}
		for i := 0; i < 200; i++ {
			k := rng.Intn(12)
			if rng.Intn(2) == 0 {
				c.Put(k, k)
				touch(k)
			} else if _, ok := c.Get(k); ok {
				touch(k)
			}
		}
		if c.Len() != len(recent) {
			return false
		}
		for _, k := range recent {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: no policy ever exceeds its capacity.
func TestQuickCapacityInvariant(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		caches := []Cache[int, int]{
			NewLRU[int, int](capacity),
			NewClock[int, int](capacity),
			NewTwoQueue[int, int](capacity),
		}
		for i := 0; i < 300; i++ {
			k := rng.Intn(40)
			for _, c := range caches {
				c.Put(k, k)
				c.Get(rng.Intn(40))
				if c.Len() > c.Cap() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestOnEvictFiresOnPolicyEviction: every policy must report entries
// pushed out by capacity pressure — the scheduler's incremental Ut index
// relies on seeing every membership change.
func TestOnEvictFiresOnPolicyEviction(t *testing.T) {
	for _, policy := range []PolicyName{PolicyLRU, PolicyClock, PolicyTwoQueue} {
		c, err := New[int, int](policy, 2)
		if err != nil {
			t.Fatal(err)
		}
		var evicted []int
		c.OnEvict(func(k, _ int) {
			evicted = append(evicted, k)
			if c.Contains(k) {
				t.Errorf("%s: hook fired while %d still in cache", policy, k)
			}
		})
		for k := 0; k < 10; k++ {
			c.Put(k, k)
		}
		if len(evicted)+c.Len() != 10 {
			t.Errorf("%s: %d evictions + %d resident != 10 puts",
				policy, len(evicted), c.Len())
		}
		if int64(len(evicted)) != c.Stats().Evictions {
			t.Errorf("%s: hook fired %d times, stats count %d evictions",
				policy, len(evicted), c.Stats().Evictions)
		}
	}
}

// TestOnEvictNotFiredByRemove: explicit removal is not a policy eviction.
func TestOnEvictNotFiredByRemove(t *testing.T) {
	for _, policy := range []PolicyName{PolicyLRU, PolicyClock, PolicyTwoQueue} {
		c, _ := New[int, int](policy, 4)
		fired := 0
		c.OnEvict(func(int, int) { fired++ })
		c.Put(1, 1)
		c.Remove(1)
		if fired != 0 {
			t.Errorf("%s: Remove fired the eviction hook", policy)
		}
	}
}

// TestTwoQueuePromotionDoesNotFireHook: moving a key between the
// probation and protected segments keeps it in the cache as a whole, so
// the hook must stay silent unless the promotion displaces another key.
func TestTwoQueuePromotionDoesNotFireHook(t *testing.T) {
	c := NewTwoQueue[int, int](8) // probation 2, protected 6
	var evicted []int
	c.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	c.Put(1, 1)
	c.Get(1) // promote into an empty protected segment
	if len(evicted) != 0 {
		t.Errorf("promotion evicted %v from a near-empty cache", evicted)
	}
	if !c.Contains(1) {
		t.Error("promoted key lost")
	}
}

// TestLRUSteadyStateAllocFree: at capacity, Put/Get/Contains reuse slots
// and allocate nothing — the scheduler's zero-alloc service loop calls
// Put on every cache-miss bucket service.
func TestLRUSteadyStateAllocFree(t *testing.T) {
	c := NewLRU[int, int](8)
	for k := 0; k < 64; k++ { // warm up past capacity
		c.Put(k, k)
	}
	k := 64
	allocs := testing.AllocsPerRun(200, func() {
		c.Put(k, k)
		c.Get(k - 3)
		c.Contains(k - 5)
		k++
	})
	if allocs != 0 {
		t.Errorf("steady-state LRU ops allocate %.1f/op, want 0", allocs)
	}
}

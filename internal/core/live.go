package core

import (
	"context"
	"errors"
	"sync"

	"liferaft/internal/shard"
	"liferaft/internal/simclock"
)

// Live runs the LifeRaft scheduler as a long-lived service: queries are
// submitted concurrently and results delivered on per-query channels. The
// scheduling loop owns the workload manager exclusively and services one
// bucket at a time, exactly as the paper's architecture prescribes
// ("buckets are read from disk by scheduler one at a time", §3); Submit
// never blocks on in-progress bucket services.
//
// Live is the deployment form a federation node uses (see the federation
// package); experiments use Run instead, which replays a trace against a
// virtual clock.
//
// With Config.Shards > 1, Live runs one inner engine per shard: Submit
// fans the query's workload objects out to the shards owning the buckets
// they overlap and the result channel delivers the merged Result when the
// last shard finishes. SetAlpha broadcasts to every shard.
type Live struct {
	inbox   chan submission
	closing chan struct{}
	done    chan struct{}
	clock   simclock.Clock

	// Sharded mode (Config.Shards > 1): inner engines and the fan-out
	// machinery; nil in single-disk mode. shardCfgs holds the forked
	// per-shard configs so Close can release their forked stores.
	inner     []*Live
	smap      *shard.Map
	shardCfgs []Config
	mergeWG   sync.WaitGroup
	closeOnce sync.Once

	mu        sync.Mutex
	closed    bool
	completed int // sharded mode: merged queries delivered
	cancelled int // sharded mode: merged queries cancelled

	// Err reports a scheduler construction failure; checked by callers
	// of NewLive via the returned error instead.
	stats   RunStats
	statsOK bool
}

type submission struct {
	job Job
	ch  chan Result
	// setAlpha, when non-nil, is a control message instead of a query:
	// the scheduling loop updates its age bias (the §4 adaptive knob).
	setAlpha *float64
	// cancel, when non-nil, is a control message withdrawing an in-flight
	// query: its remaining workload objects are dropped from the queues
	// and its waiter receives a Result with Cancelled set. The inbox is
	// FIFO, so a cancel always follows the submission it refers to.
	cancel *uint64
}

// Clock returns the engine's time source (set by its Config).
func (l *Live) Clock() simclock.Clock { return l.clock }

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("core: live engine closed")

// NewLive starts a live engine. The returned engine must be Closed to
// release its scheduling goroutine(s).
func NewLive(cfg Config) (*Live, error) {
	if cfg.Shards > 1 {
		return newShardedLive(cfg)
	}
	s, err := newScheduler(cfg)
	if err != nil {
		return nil, err
	}
	l := &Live{
		inbox:   make(chan submission, 1024),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		clock:   cfg.Clock,
	}
	go l.loop(cfg, s)
	return l, nil
}

// newShardedLive starts one inner single-shard engine per shard plus the
// fan-out front end.
func newShardedLive(cfg Config) (*Live, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m, err := shard.NewMap(cfg.Store.Partition(), cfg.Shards, cfg.ShardPartitioner)
	if err != nil {
		return nil, err
	}
	l := &Live{
		done:  make(chan struct{}),
		clock: cfg.Clock,
		smap:  m,
	}
	shardCfgs, err := forkConfigs(cfg, m)
	if err != nil {
		return nil, err
	}
	l.shardCfgs = shardCfgs
	for _, sc := range shardCfgs {
		in, err := NewLive(sc)
		if err != nil {
			for _, started := range l.inner {
				started.Close()
			}
			closeForked(shardCfgs)
			return nil, err
		}
		l.inner = append(l.inner, in)
	}
	return l, nil
}

// Submit enqueues a query. The returned channel delivers exactly one
// Result when the query completes, then closes.
func (l *Live) Submit(job Job) (<-chan Result, error) {
	if l.inner != nil {
		return l.submitSharded(job)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	ch := make(chan Result, 1)
	//lifevet:allow lockdiscipline -- the send deliberately happens inside l.mu: the closed check and the enqueue must be one atomic step against Close, and the loop drains the inbox until closing, so the send bounds in one step latency
	l.inbox <- submission{job: job, ch: ch}
	l.mu.Unlock()
	return ch, nil
}

// SubmitCtx is Submit with cancellation: when ctx expires before the query
// completes, the query is cancelled — its remaining workload objects are
// dropped from the queues so an abandoned query stops consuming workload
// slots — and the channel delivers a Result with Cancelled set (carrying
// the partial work done before the cancel). A ctx that can never be
// cancelled makes SubmitCtx identical to Submit.
func (l *Live) SubmitCtx(ctx context.Context, job Job) (<-chan Result, error) {
	inner, err := l.Submit(job)
	if err != nil {
		return nil, err
	}
	if ctx == nil || ctx.Done() == nil {
		return inner, nil
	}
	out := make(chan Result, 1)
	go func() {
		defer close(out)
		select {
		case r, ok := <-inner:
			if ok {
				out <- r
			}
		case <-ctx.Done():
			// Best-effort: if the engine is closing, the drain below
			// still delivers the (uncancelled) result.
			l.Cancel(job.ID)
			if r, ok := <-inner; ok {
				out <- r
			}
		}
	}()
	return out, nil
}

// Cancel withdraws an in-flight query by ID: its remaining workload
// objects are dropped from the queues and its result channel delivers a
// Result with Cancelled set. Cancelling an unknown or already completed
// query is a no-op. On a sharded engine the cancel is broadcast to every
// shard; shards that already finished their part ignore it, and the merged
// result is marked Cancelled if any shard cancelled.
func (l *Live) Cancel(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.inner != nil {
		for _, in := range l.inner {
			//lifevet:allow lockdiscipline -- the shard's own inbox send bounds in one shard step; the parent lock must span the broadcast so a concurrent Close cannot interleave
			if err := in.Cancel(id); err != nil {
				return err
			}
		}
		return nil
	}
	qid := id
	//lifevet:allow lockdiscipline -- same atomic closed-check-and-enqueue pattern as Submit: the loop drains the inbox until closing
	l.inbox <- submission{cancel: &qid}
	return nil
}

// submitSharded fans the job out to the shards owning its buckets and
// merges their results: the delivered Result completes when the last
// shard does, with assignments and matches summed and pairs concatenated
// in shard order.
func (l *Live) submitSharded(job Job) (<-chan Result, error) {
	// Keep the parent clock tracking the furthest shard clock: on a
	// virtual clock, observers of Clock() — the Adaptive saturation
	// estimator, empty-fan-out completion stamps — would otherwise see
	// time frozen at the engine start until Close.
	for _, in := range l.inner {
		simclock.Join(l.clock, in.Clock().Now())
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	ch := make(chan Result, 1)
	fan := l.smap.Fanout(job.Objects)
	var subs []<-chan Result
	for s, objs := range fan {
		if len(objs) == 0 {
			continue
		}
		//lifevet:allow lockdiscipline -- each shard Submit bounds in one shard step; the parent lock must span the fan-out so all shards see the submission before a concurrent Close
		c, err := l.inner[s].Submit(Job{ID: job.ID, Objects: objs, Pred: job.Pred, Trace: job.Trace})
		if err != nil {
			l.mu.Unlock()
			return nil, err
		}
		subs = append(subs, c)
	}
	if len(subs) == 0 {
		// No bucket overlaps anywhere: complete immediately, as the
		// single-disk engine does.
		now := l.clock.Now()
		ch <- Result{QueryID: job.ID, Arrived: now, Completed: now}
		close(ch)
		l.completed++
		l.mu.Unlock()
		return ch, nil
	}
	l.mergeWG.Add(1)
	l.mu.Unlock()
	go func() {
		defer l.mergeWG.Done()
		var merged Result
		first := true
		for _, c := range subs {
			r, ok := <-c
			if !ok {
				continue
			}
			if first {
				merged, first = r, false
				continue
			}
			merged.absorb(r)
		}
		ch <- merged
		close(ch)
		l.mu.Lock()
		if merged.Cancelled {
			l.cancelled++
		} else {
			l.completed++
		}
		l.mu.Unlock()
	}()
	return ch, nil
}

// SetAlpha changes the engine's age bias for all subsequent scheduling
// decisions (clamped to [0, 1]). This is the knob the paper's §4 adaptive
// tuning turns as workload saturation changes; see Adaptive for the
// closed loop.
func (l *Live) SetAlpha(alpha float64) error {
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.inner != nil {
		for _, in := range l.inner {
			//lifevet:allow lockdiscipline -- the shard's inbox send bounds in one shard step; the parent lock spans the broadcast so every shard sees the same α ordering
			if err := in.SetAlpha(alpha); err != nil {
				return err
			}
		}
		return nil
	}
	//lifevet:allow lockdiscipline -- same atomic closed-check-and-enqueue pattern as Submit
	l.inbox <- submission{setAlpha: &alpha}
	return nil
}

// Close stops accepting queries, waits for all submitted queries to
// complete, and shuts the scheduling loop down. It is idempotent.
func (l *Live) Close() error {
	if l.inner != nil {
		return l.closeSharded()
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.closing)
	}
	l.mu.Unlock()
	<-l.done
	return nil
}

// closeSharded drains every inner engine, waits for in-flight merges, and
// snapshots the merged statistics.
func (l *Live) closeSharded() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.closeOnce.Do(func() {
		for _, in := range l.inner {
			in.Close()
		}
		l.mergeWG.Wait()
		stats := mergeShardStats(l.smap, func(s int) (RunStats, int) {
			st, _ := l.inner[s].Stats()
			return st, st.Completed
		})
		l.mu.Lock()
		stats.Completed = l.completed
		stats.Cancelled = l.cancelled
		l.stats = stats
		l.statsOK = true
		l.mu.Unlock()
		// On a virtual parent clock, adopt the latest shard clock.
		for _, in := range l.inner {
			simclock.Join(l.clock, in.Clock().Now())
		}
		closeForked(l.shardCfgs)
		close(l.done)
	})
	<-l.done
	return nil
}

// Stats returns the run statistics accumulated up to Close. It is only
// valid after Close returns.
func (l *Live) Stats() (RunStats, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats, l.statsOK
}

func (l *Live) loop(cfg Config, s *scheduler) {
	defer close(l.done)
	start := cfg.Clock.Now()
	waiters := make(map[uint64]chan Result)
	completed := 0

	deliver := func(rs []Result) {
		for _, r := range rs {
			if !r.Cancelled {
				completed++
				if s.obs != nil {
					s.obs.completed.Inc()
				}
			}
			if ch := waiters[r.QueryID]; ch != nil {
				ch <- r
				close(ch)
				delete(waiters, r.QueryID)
			}
		}
		if s.obs != nil && len(rs) > 0 {
			if el := cfg.Clock.Now().Sub(start).Seconds(); el > 0 {
				s.obs.vqps.Set(float64(completed) / el)
			}
		}
	}
	admit := func(sub submission) {
		if sub.setAlpha != nil {
			s.cfg.Alpha = *sub.setAlpha
			return
		}
		if sub.cancel != nil {
			if r := s.cancel(*sub.cancel, cfg.Clock.Now()); r != nil {
				deliver([]Result{*r})
			}
			return
		}
		waiters[sub.job.ID] = sub.ch
		if r := s.admit(sub.job, cfg.Clock.Now()); r != nil {
			deliver([]Result{*r})
		}
	}
	drainInbox := func() {
		for {
			select {
			case sub := <-l.inbox:
				admit(sub)
			default:
				return
			}
		}
	}

	closing := false
	for {
		drainInbox()
		if !s.pendingWork() {
			if closing {
				// Definitive drain check: nothing pending and the
				// inbox is empty after the closing signal.
				select {
				case sub := <-l.inbox:
					admit(sub)
					continue
				default:
				}
				break
			}
			select {
			case sub := <-l.inbox:
				admit(sub)
			case <-l.closing:
				closing = true
			}
			continue
		}
		// step's slice aliases scheduler scratch (valid until the next
		// step); deliver sends the Results by value before then.
		done, _ := s.step(cfg.Clock.Now())
		deliver(done)
		if !closing {
			select {
			case <-l.closing:
				closing = true
			default:
			}
		}
	}
	l.mu.Lock()
	l.stats = s.finalize(cfg.Clock.Now().Sub(start), completed)
	l.statsOK = true
	l.mu.Unlock()
}

package core

import (
	"fmt"
	"sort"
	"time"

	"liferaft/internal/simclock"
	"liferaft/internal/xmatch"
)

// Run replays a query trace through the LifeRaft (or round-robin) engine:
// jobs[i] arrives at offsets[i] after the start of the run. It returns one
// Result per job, in completion order, plus aggregate statistics. With a
// virtual clock this is the discrete-event simulation used by every
// experiment; with a real clock it blocks for the actual durations.
//
// With Config.Shards > 1 the replay runs on the sharded engine: one
// worker and one modeled disk per shard, each servicing its own local
// schedule, with results and statistics merged across shards (see
// runSharded). Shards <= 1 is exactly the single-disk engine.
func Run(cfg Config, jobs []Job, offsets []time.Duration) ([]Result, RunStats, error) {
	if cfg.Shards > 1 {
		return runSharded(cfg, jobs, offsets)
	}
	return runEngine(cfg, jobs, offsets)
}

// runEngine is the single-disk replay loop: the legacy engine, and the
// per-shard worker body of the sharded one.
func runEngine(cfg Config, jobs []Job, offsets []time.Duration) ([]Result, RunStats, error) {
	if len(jobs) != len(offsets) {
		return nil, RunStats{}, fmt.Errorf("core: %d jobs but %d offsets", len(jobs), len(offsets))
	}
	s, err := newScheduler(cfg)
	if err != nil {
		return nil, RunStats{}, err
	}
	start := cfg.Clock.Now()
	var events simclock.EventQueue[Job]
	for i, j := range jobs {
		if offsets[i] < 0 {
			return nil, RunStats{}, fmt.Errorf("core: negative offset for job %d", i)
		}
		events.Push(start.Add(offsets[i]), j)
	}

	var results []Result
	for {
		now := cfg.Clock.Now()
		for _, ev := range events.PopUntil(now) {
			if r := s.admit(ev.Value, ev.At); r != nil {
				results = append(results, *r)
			}
		}
		if !s.pendingWork() {
			at, ok := events.PeekTime()
			if !ok {
				break // drained
			}
			// Idle until the next arrival.
			cfg.Clock.Sleep(at.Sub(now))
			continue
		}
		// step's slice aliases scheduler scratch (valid until the next
		// step); the append copies the Results out before then.
		done, _ := s.step(now)
		results = append(results, done...)
	}
	return results, s.finalize(cfg.Clock.Now().Sub(start), len(results)), nil
}

// RunNoShare is the paper's NoShare baseline: each query is evaluated
// independently and strictly in arrival order, sharing no I/O with other
// queries (§5: "NoShare, which evaluates each query independently (no I/O
// is shared) and in arrival order"). Each query still gets the hybrid join
// strategy for its own per-bucket workloads, but no bucket cache persists
// across queries.
func RunNoShare(cfg Config, jobs []Job, offsets []time.Duration) ([]Result, RunStats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, RunStats{}, err
	}
	if len(jobs) != len(offsets) {
		return nil, RunStats{}, fmt.Errorf("core: %d jobs but %d offsets", len(jobs), len(offsets))
	}
	part := cfg.Store.Partition()
	start := cfg.Clock.Now()
	var results []Result
	var stats RunStats
	order := arrivalOrder(offsets)
	for _, i := range order {
		job, arrive := jobs[i], start.Add(offsets[i])
		// Queries are picked up in arrival order; idle until this one
		// arrives if the previous ones finished early.
		if now := cfg.Clock.Now(); arrive.After(now) {
			cfg.Clock.Sleep(arrive.Sub(now))
		}
		res := Result{QueryID: job.ID, Arrived: arrive}

		// Group the query's own objects by bucket.
		byBucket := make(map[int][]xmatch.WorkloadObject)
		for _, wo := range job.Objects {
			for _, bi := range part.BucketsForRanges(wo.Ranges()) {
				byBucket[bi] = append(byBucket[bi], wo)
				res.Assignments++
			}
		}
		var preds map[uint64]xmatch.Predicate
		if job.Pred != nil {
			preds = map[uint64]xmatch.Predicate{job.ID: job.Pred}
		}
		for _, bi := range sortedKeys(byBucket) {
			wos := byBucket[bi]
			strategy := xmatch.ChooseStrategy(len(wos), part.Bucket(bi).Count(), cfg.HybridThreshold, false)
			var objs bucketObjects
			switch strategy {
			case xmatch.Scan:
				objs, _ = cfg.Store.ReadBucket(bi)
				stats.ScanServices++
			case xmatch.Index:
				objs, _ = cfg.Store.Probe(bi, len(wos))
				stats.IndexServices++
			}
			cfg.Disk.MatchObjects(len(wos))
			stats.BucketsServed++
			if cfg.MaterializeResults {
				pairs := xmatch.MergeJoin(objs, wos, preds)
				res.Pairs = append(res.Pairs, pairs...)
				res.Matches += len(pairs)
			}
		}
		res.Completed = cfg.Clock.Now()
		results = append(results, res)
	}
	stats.Completed = len(results)
	stats.Makespan = cfg.Clock.Now().Sub(start)
	stats.Disk = cfg.Disk.Stats()
	return results, stats, nil
}

// RunIndexOnly models SkyQuery's pre-LifeRaft approach: every cross-match
// object is resolved through a repeated spatial-index access — an isolated
// random page read per object, with none of the sorted-probe locality the
// hybrid join gets — in arrival order, with no scans and no batching. The
// paper reports this is ~7x slower than even NoShare.
func RunIndexOnly(cfg Config, jobs []Job, offsets []time.Duration) ([]Result, RunStats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, RunStats{}, err
	}
	if len(jobs) != len(offsets) {
		return nil, RunStats{}, fmt.Errorf("core: %d jobs but %d offsets", len(jobs), len(offsets))
	}
	part := cfg.Store.Partition()
	start := cfg.Clock.Now()
	var results []Result
	var stats RunStats
	for _, i := range arrivalOrder(offsets) {
		job, arrive := jobs[i], start.Add(offsets[i])
		if now := cfg.Clock.Now(); arrive.After(now) {
			cfg.Clock.Sleep(arrive.Sub(now))
		}
		res := Result{QueryID: job.ID, Arrived: arrive, Assignments: len(job.Objects)}
		const pagesPerProbe = 1
		cfg.Disk.ReadRandom(pagesPerProbe * len(job.Objects))
		cfg.Disk.MatchObjects(len(job.Objects))
		if cfg.MaterializeResults {
			var preds map[uint64]xmatch.Predicate
			if job.Pred != nil {
				preds = map[uint64]xmatch.Predicate{job.ID: job.Pred}
			}
			byBucket := make(map[int][]xmatch.WorkloadObject)
			for _, wo := range job.Objects {
				for _, bi := range part.BucketsForRanges(wo.Ranges()) {
					byBucket[bi] = append(byBucket[bi], wo)
				}
			}
			for _, bi := range sortedKeys(byBucket) {
				pairs := xmatch.IndexJoin(part.Materialize(bi), byBucket[bi], preds)
				res.Pairs = append(res.Pairs, pairs...)
				res.Matches += len(pairs)
			}
		}
		res.Completed = cfg.Clock.Now()
		results = append(results, res)
	}
	stats.Completed = len(results)
	stats.Makespan = cfg.Clock.Now().Sub(start)
	stats.Disk = cfg.Disk.Stats()
	return results, stats, nil
}

// arrivalOrder returns job indices sorted by offset (stable).
func arrivalOrder(offsets []time.Duration) []int {
	order := make([]int, len(offsets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return offsets[order[a]] < offsets[order[b]] })
	return order
}

func sortedKeys(m map[int][]xmatch.WorkloadObject) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

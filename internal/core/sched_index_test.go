package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/simclock"
	"liferaft/internal/xmatch"
)

// Unit tests for the incremental index primitives: the position-tracked
// heap, the two-level bitset, and the sorted non-destructive walker. The
// end-to-end contract (indexed decisions == exhaustive scans) lives in
// golden_test.go.

func TestQheapOrderAndRemoval(t *testing.T) {
	h := &qheap{slot: posUt, less: func(a, b *bqueue) bool {
		return a.ut > b.ut || (a.ut == b.ut && a.idx < b.idx)
	}}
	rng := rand.New(rand.NewSource(42))
	var qs []*bqueue
	for i := 0; i < 200; i++ {
		q := &bqueue{idx: i, ut: float64(rng.Intn(50))} // many key ties
		for j := range q.pos {
			q.pos[j] = -1
		}
		qs = append(qs, q)
		h.push(q)
	}
	// Random key updates with fix.
	for i := 0; i < 300; i++ {
		q := qs[rng.Intn(len(qs))]
		q.ut = float64(rng.Intn(50))
		h.fix(q)
	}
	// Remove a random half.
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	for _, q := range qs[:100] {
		h.remove(q)
	}
	rest := append([]*bqueue(nil), qs[100:]...)
	// Popping the head repeatedly must yield the exact total order.
	sort.Slice(rest, func(i, j int) bool { return h.less(rest[i], rest[j]) })
	for _, want := range rest {
		got := h.head()
		if got != want {
			t.Fatalf("heap head = idx %d ut %v, want idx %d ut %v",
				got.idx, got.ut, want.idx, want.ut)
		}
		h.remove(got)
	}
	if h.len() != 0 {
		t.Fatalf("%d elements left after draining", h.len())
	}
}

func TestHeapWalkSortedEnumeration(t *testing.T) {
	h := &qheap{slot: posAge, less: func(a, b *bqueue) bool {
		at, bt := a.ageFrontier[0].arrived, b.ageFrontier[0].arrived
		return at.Before(bt) || (at.Equal(bt) && a.idx < b.idx)
	}}
	rng := rand.New(rand.NewSource(7))
	var all []*bqueue
	for i := 0; i < 150; i++ {
		q := &bqueue{idx: i, ageFrontier: []agePoint{
			{arrived: simclock.Epoch.Add(time.Duration(rng.Intn(20)) * time.Second), weight: 1},
		}}
		for j := range q.pos {
			q.pos[j] = -1
		}
		all = append(all, q)
		h.push(q)
	}
	want := append([]*bqueue(nil), all...)
	sort.Slice(want, func(i, j int) bool { return h.less(want[i], want[j]) })
	var w heapWalk
	w.reset(h)
	for i, wq := range want {
		if p := w.peek(); p != wq {
			t.Fatalf("peek %d = idx %d, want idx %d", i, p.idx, wq.idx)
		}
		if g := w.next(); g != wq {
			t.Fatalf("walk %d = idx %d, want idx %d", i, g.idx, wq.idx)
		}
	}
	if w.next() != nil || w.peek() != nil {
		t.Fatal("walk should be exhausted")
	}
	if h.len() != 150 {
		t.Fatal("walk must not consume the heap")
	}
}

func TestBitsetSuccessor(t *testing.T) {
	const n = 100_000
	b := newBitset(n)
	want := map[int]bool{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		k := rng.Intn(n)
		want[k] = true
		b.set(k)
	}
	var sorted []int
	for k := range want {
		sorted = append(sorted, k)
	}
	sort.Ints(sorted)
	// Successor from every set point, its neighbor, and random probes.
	succ := func(from int) int {
		i := sort.SearchInts(sorted, from)
		if i == len(sorted) {
			return -1
		}
		return sorted[i]
	}
	for i := 0; i < 2000; i++ {
		from := rng.Intn(n + 10)
		if got := b.nextFrom(from); got != succ(from) {
			t.Fatalf("nextFrom(%d) = %d, want %d", from, got, succ(from))
		}
	}
	// Clearing must update the summary level too.
	for _, k := range sorted[:250] {
		b.clear(k)
		delete(want, k)
	}
	sorted = sorted[250:]
	for i := 0; i < 2000; i++ {
		from := rng.Intn(n + 10)
		if got := b.nextFrom(from); got != succ(from) {
			t.Fatalf("after clear: nextFrom(%d) = %d, want %d", from, got, succ(from))
		}
	}
}

// TestRoundRobinSparse: round-robin on a huge, nearly empty bucket space
// must cycle through exactly the non-empty buckets in index order — the
// regime where the seed's per-pick O(NumBuckets) scan collapsed.
func TestRoundRobinSparse(t *testing.T) {
	s := syntheticScheduler(t, 100_000, PolicyRoundRobin, 0)
	occupied := []int{17, 4093, 4096, 55_001, 99_999}
	for _, bi := range occupied {
		s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 1}, ageWeight: 1})
		s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 1}, ageWeight: 1})
	}
	s.queries[1] = &queryState{remaining: 2 * len(occupied), result: Result{QueryID: 1}}
	var got []int
	for s.pendingWork() {
		bi, ok := s.pick(simclock.Epoch)
		if !ok {
			t.Fatal("pending work but no pick")
		}
		got = append(got, bi)
		s.serviceBucket(bi, simclock.Epoch)
	}
	if !equalInts(got, occupied) {
		t.Fatalf("sparse RR visited %v, want %v", got, occupied)
	}
	// Wrap-around: refill two buckets with rrNext past both.
	for _, bi := range []int{100, 200} {
		s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 2}, ageWeight: 1})
	}
	s.queries[2] = &queryState{remaining: 2, result: Result{QueryID: 2}}
	if bi, _ := s.pick(simclock.Epoch); bi != 100 {
		t.Fatalf("wrap-around pick = %d, want 100", bi)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// syntheticScheduler builds a scheduler over an n-bucket partition with
// no real workload attached — queues are driven through pushItem. Used
// by index tests and the pick benchmarks.
func syntheticScheduler(tb testing.TB, n int, policy PolicyKind, alpha float64) *scheduler {
	tb.Helper()
	part := syntheticPartition(tb, n)
	cfg, _ := NewVirtual(part, alpha, false)
	cfg.Policy = policy
	s, err := newScheduler(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

var synthParts sync.Map // numBuckets -> *bucket.Partition

// syntheticPartition returns (and caches) a one-object-per-bucket
// partition with n buckets, the cheapest way to exercise large B.
func syntheticPartition(tb testing.TB, n int) *bucket.Partition {
	tb.Helper()
	if p, ok := synthParts.Load(n); ok {
		return p.(*bucket.Partition)
	}
	cat, err := catalog.New(catalog.Config{
		Name: "synth", N: n, Seed: 9, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	part, err := bucket.NewPartition(cat, 1, 0)
	if err != nil {
		tb.Fatal(err)
	}
	synthParts.Store(n, part)
	return part
}

// TestPickFallbackBudget pins the walk-budget fallback: in the
// anti-correlated regime (every high-Ut queue young, every old queue
// cold) the α-mix cannot bound the winner early, the walk must abandon
// itself within budget, and the fallback must agree with the scan.
func TestPickFallbackBudget(t *testing.T) {
	s := syntheticScheduler(t, 10_000, PolicyLifeRaft, 0.5)
	base := simclock.Epoch
	for bi := 0; bi < 10_000; bi++ {
		n, at := 1, base // old and cold
		if bi%2 == 0 {
			n, at = 7, base.Add(time.Hour) // hot and young
		}
		for k := 0; k < n; k++ {
			s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 1}, arrived: at, ageWeight: 1})
		}
	}
	now := base.Add(2 * time.Hour)
	got, ok := s.pickLifeRaftIndexed(now)
	if !ok {
		t.Fatal("no pick")
	}
	if s.pickFallbacks == 0 {
		t.Error("anti-correlated state should exhaust the walk budget")
	}
	want, _ := s.pickLifeRaftScan(now)
	if got != want {
		t.Fatalf("fallback pick %d != scan pick %d", got, want)
	}
	// The realistic fixture trace, by contrast, never falls back — that
	// property is implicitly covered by BenchmarkPick's fresh state; here
	// just confirm a correlated state converges without fallback.
	s2 := syntheticScheduler(t, 10_000, PolicyLifeRaft, 0.5)
	for bi := 0; bi < 10_000; bi++ {
		n := 1 + bi%7
		at := base.Add(time.Duration(bi) * time.Millisecond)
		for k := 0; k < n; k++ {
			s2.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 1}, arrived: at, ageWeight: 1})
		}
	}
	if _, ok := s2.pickLifeRaftIndexed(now); !ok {
		t.Fatal("no pick")
	}
	if s2.pickFallbacks != 0 {
		t.Errorf("correlated state fell back %d times; walk should converge", s2.pickFallbacks)
	}
}

// TestQoSIndexSkipsPickHeaps: with age depreciation the pick always
// scans, so the index must not pay for orderings it never reads.
func TestQoSIndexSkipsPickHeaps(t *testing.T) {
	part := syntheticPartition(t, 100)
	cfg, _ := NewVirtual(part, 0.5, false)
	cfg.AgeDepreciationGamma = 2
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.idx.ut != nil || s.idx.age != nil {
		t.Error("QoS scheduler maintains pick heaps it never consults")
	}
	if s.idx.needsUt() {
		t.Error("QoS scheduler without a spill cap should not cache Ut")
	}
	cfg2, _ := NewVirtual(part, 0.5, false)
	cfg2.AgeDepreciationGamma = 2
	cfg2.WorkloadMemoryCap = 10
	s2, err := newScheduler(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.idx.spill == nil || !s2.idx.needsUt() {
		t.Error("spill cap still needs the Ut min side under QoS")
	}
}

package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/simclock"
	"liferaft/internal/workload"
)

// Golden-equivalence property test: a full workload trace replayed
// through the reference scheduler (the seed's exhaustive O(B) scans,
// dropIndex mode) and through the incremental index must produce an
// identical bucket-service sequence, identical per-step completions, and
// identical RunStats — for every policy, with QoS weights, a spill cap,
// and mid-trace cancels. This is the contract that lets the indexed
// scheduler replace the scans without re-validating a single ablation
// figure.

var (
	goldenOnce    sync.Once
	goldenLocal   *catalog.Catalog // the local archive; the backend parity test re-partitions it
	goldenPart    *bucket.Partition
	goldenHotJobs []Job
	goldenUniJobs []Job
)

func goldenFixture(t *testing.T) (*bucket.Partition, []Job, []Job) {
	t.Helper()
	goldenOnce.Do(func() {
		local, err := catalog.New(catalog.Config{
			Name: "gold-sdss", N: 30000, Seed: 11, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		goldenLocal = local
		remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
			Name: "gold-2mass", Seed: 12, Fraction: 0.8,
			JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		goldenPart, err = bucket.NewPartition(local, 150, 0) // 200 buckets
		if err != nil {
			t.Fatal(err)
		}
		mkJobs := func(cfg workload.TraceConfig) []Job {
			tr, err := workload.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			jobs := make([]Job, 0, len(tr.Queries))
			for _, q := range tr.Queries {
				jobs = append(jobs, Job{
					ID:      q.ID,
					Objects: workload.Materialize(q, remote, cfg.Seed),
					Pred:    q.Predicate(),
				})
			}
			return jobs
		}
		hot := workload.DefaultTraceConfig(13)
		hot.NumQueries = 70
		hot.MinSelectivity, hot.MaxSelectivity = 0.2, 1.0
		goldenHotJobs = mkJobs(hot)

		uni := hot
		uni.Seed = 14
		uni.HotFraction = 0 // no hotspots: uniform sky coverage
		goldenUniJobs = mkJobs(uni)
	})
	return goldenPart, goldenHotJobs, goldenUniJobs
}

type goldenCase struct {
	name        string
	policy      PolicyKind
	alpha       float64
	gamma       float64
	memCap      int
	cachePolicy cache.PolicyName
	uniform     bool
	arrivalMS   int  // uniform inter-arrival in milliseconds
	cancels     bool // withdraw every 5th query mid-trace
}

func TestGoldenEquivalence(t *testing.T) {
	part, hotJobs, uniJobs := goldenFixture(t)
	cases := []goldenCase{
		{name: "liferaft-hot", policy: PolicyLifeRaft, alpha: 0.5, arrivalMS: 100},
		{name: "liferaft-uniform-cancels", policy: PolicyLifeRaft, alpha: 0.5,
			uniform: true, arrivalMS: 100, cancels: true},
		{name: "liferaft-greedy-uniform", policy: PolicyLifeRaft, alpha: 0,
			uniform: true, arrivalMS: 250},
		{name: "liferaft-fifo-hot", policy: PolicyLifeRaft, alpha: 1, arrivalMS: 100},
		{name: "liferaft-qos", policy: PolicyLifeRaft, alpha: 0.5, gamma: 2,
			arrivalMS: 100, cancels: true},
		{name: "liferaft-spill-2q", policy: PolicyLifeRaft, alpha: 0.5,
			memCap: 200, cachePolicy: cache.PolicyTwoQueue, arrivalMS: 5, cancels: true},
		{name: "rr-uniform-clock-cancels", policy: PolicyRoundRobin,
			cachePolicy: cache.PolicyClock, uniform: true, arrivalMS: 100, cancels: true},
		{name: "lsf-hot-cancels", policy: PolicyLeastShared, arrivalMS: 100, cancels: true},
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			jobs := hotJobs
			if gc.uniform {
				jobs = uniJobs
			}
			replayDual(t, part, gc, jobs)
		})
	}
}

// replayDual drives a reference (scan) and an indexed scheduler through
// the identical event sequence on forked virtual universes and fails on
// the first divergence in picks, completions, clocks, or final stats.
func replayDual(t *testing.T, part *bucket.Partition, gc goldenCase, jobs []Job) {
	t.Helper()
	mk := func() (Config, *scheduler) {
		cfg, _ := NewVirtual(part, gc.alpha, false)
		cfg.Policy = gc.policy
		cfg.AgeDepreciationGamma = gc.gamma
		cfg.WorkloadMemoryCap = gc.memCap
		if gc.cachePolicy != "" {
			cfg.CachePolicy = gc.cachePolicy
		}
		s, err := newScheduler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cfg, s
	}
	cfgA, ref := mk()
	ref.dropIndex() // reference: the seed's exhaustive scans
	cfgB, ixd := mk()
	if ixd.idx == nil {
		t.Fatal("indexed scheduler has no index")
	}

	// Cancels: every 5th query is withdrawn two services after it is
	// admitted, while its workload is still queued.
	cancelTargets := make(map[uint64]bool)
	if gc.cancels {
		for i, j := range jobs {
			if i%5 == 2 {
				cancelTargets[j.ID] = true
			}
		}
	}
	type cancelAt struct {
		step int
		qid  uint64
	}
	var cancels []cancelAt

	start := cfgA.Clock.Now()
	var events simclock.EventQueue[Job]
	for i, j := range jobs {
		events.Push(start.Add(time.Duration(i*gc.arrivalMS)*time.Millisecond), j)
	}

	var picks []int
	completedA, completedB := 0, 0
	steps, nextCancel := 0, 0
	for {
		nowA, nowB := cfgA.Clock.Now(), cfgB.Clock.Now()
		if !nowA.Equal(nowB) {
			t.Fatalf("step %d: clocks diverged: ref %v vs indexed %v", steps, nowA, nowB)
		}
		for _, ev := range events.PopUntil(nowA) {
			rA := ref.admit(ev.Value, ev.At)
			rB := ixd.admit(ev.Value, ev.At)
			if !reflect.DeepEqual(rA, rB) {
				t.Fatalf("step %d: admit(%d) results diverged: %+v vs %+v",
					steps, ev.Value.ID, rA, rB)
			}
			if cancelTargets[ev.Value.ID] {
				cancels = append(cancels, cancelAt{step: steps + 2, qid: ev.Value.ID})
			}
		}
		for nextCancel < len(cancels) && cancels[nextCancel].step <= steps {
			qid := cancels[nextCancel].qid
			nextCancel++
			rA := ref.cancel(qid, nowA)
			rB := ixd.cancel(qid, nowB)
			if !reflect.DeepEqual(rA, rB) {
				t.Fatalf("step %d: cancel(%d) diverged: %+v vs %+v", steps, qid, rA, rB)
			}
		}
		if ref.pendingWork() != ixd.pendingWork() {
			t.Fatalf("step %d: pendingWork diverged: ref %v vs indexed %v",
				steps, ref.pendingWork(), ixd.pendingWork())
		}
		if !ref.pendingWork() {
			at, ok := events.PeekTime()
			if !ok {
				break // both drained
			}
			cfgA.Clock.Sleep(at.Sub(nowA))
			cfgB.Clock.Sleep(at.Sub(nowB))
			continue
		}
		pA, okA := ref.pick(nowA)
		pB, okB := ixd.pick(nowB)
		if pA != pB || okA != okB {
			t.Fatalf("step %d: pick diverged: ref (%d,%v) vs indexed (%d,%v)",
				steps, pA, okA, pB, okB)
		}
		picks = append(picks, pA)
		doneA := append([]Result(nil), ref.serviceBucket(pA, nowA)...)
		doneB := append([]Result(nil), ixd.serviceBucket(pB, nowB)...)
		// Completion order within one service batch follows map
		// iteration in both schedulers; compare as sets.
		sortResults(doneA)
		sortResults(doneB)
		if !reflect.DeepEqual(doneA, doneB) {
			t.Fatalf("step %d (bucket %d): completions diverged:\nref: %+v\nidx: %+v",
				steps, pA, doneA, doneB)
		}
		completedA += len(doneA)
		completedB += len(doneB)
		steps++
	}
	if len(picks) == 0 {
		t.Fatal("trace produced no bucket services; fixture too small")
	}
	if gc.memCap > 0 && ref.stats.SpilledObjects == 0 {
		t.Error("spill cap set but the trace never spilled; tighten the cap")
	}
	if gc.cancels && ref.stats.Cancelled == 0 {
		t.Error("cancels scheduled but none landed in-flight; adjust the schedule")
	}
	stA := ref.finalize(cfgA.Clock.Now().Sub(start), completedA)
	stB := ixd.finalize(cfgB.Clock.Now().Sub(start), completedB)
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("RunStats diverged after %d services:\nref: %+v\nidx: %+v", steps, stA, stB)
	}
	if ref.memObjects != ixd.memObjects || ref.pendingItems != ixd.pendingItems {
		t.Fatalf("internal counters diverged: mem %d/%d pending %d/%d",
			ref.memObjects, ixd.memObjects, ref.pendingItems, ixd.pendingItems)
	}
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].QueryID < rs[j].QueryID })
}

package core

import (
	"fmt"
	"testing"
	"time"

	"liferaft/internal/xmatch"
)

// Benchmarks for the incremental scheduler index, at B ∈ {1k, 10k, 100k}
// active buckets: BenchmarkPick compares the indexed threshold-algorithm
// pick against the exhaustive-scan baseline (both in-tree), and
// BenchmarkStep measures the full service loop with -benchmem asserting
// the zero-alloc steady state. cmd/skybench -bench-json replays the same
// probes into BENCH_3.json for the cross-PR perf trajectory.

var benchBs = []int{1_000, 10_000, 100_000}

// populateQueues fills B bucket queues with varied lengths and ages so
// picks exercise realistic key diversity (uniform queues would tie).
func populateQueues(s *scheduler, bkts int) {
	base := s.cfg.Clock.Now()
	qs := &queryState{result: Result{QueryID: 1, Arrived: base}, arrived: base}
	// Sentinel work unit: the benchmark query must survive every service
	// even if one bucket briefly holds all remaining work.
	qs.remaining = 1
	s.queries[1] = qs
	for bi := 0; bi < bkts; bi++ {
		n := 1 + bi%7
		at := base.Add(time.Duration(bi%977) * time.Millisecond)
		for k := 0; k < n; k++ {
			s.pushItem(bi, item{
				wo:        xmatch.WorkloadObject{QueryID: 1},
				arrived:   at,
				ageWeight: 1,
			})
			qs.buckets = append(qs.buckets, bi)
			qs.remaining++
		}
	}
}

func BenchmarkPick(b *testing.B) {
	for _, bkts := range benchBs {
		s := syntheticScheduler(b, bkts, PolicyLifeRaft, 0.5)
		populateQueues(s, bkts)
		now := s.cfg.Clock.Now().Add(time.Hour)
		b.Run(fmt.Sprintf("indexed/B=%d", bkts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := s.pickLifeRaftIndexed(now); !ok {
					b.Fatal("no pick")
				}
			}
		})
		b.Run(fmt.Sprintf("scan/B=%d", bkts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := s.pickLifeRaftScan(now); !ok {
					b.Fatal("no pick")
				}
			}
		})
	}
}

// stepSteadyState services one bucket and refills it, keeping the number
// of active queues constant — the scheduler's steady-state regime.
func stepSteadyState(tb testing.TB, s *scheduler) {
	now := s.cfg.Clock.Now()
	bi, ok := s.pick(now)
	if !ok {
		tb.Fatal("no pending work")
	}
	n := len(s.queues[bi].items)
	s.serviceBucket(bi, now)
	qs := s.queries[1]
	for k := 0; k < n; k++ {
		s.pushItem(bi, item{
			wo:        xmatch.WorkloadObject{QueryID: 1},
			arrived:   now,
			ageWeight: 1,
		})
		qs.remaining++
	}
}

func BenchmarkStep(b *testing.B) {
	for _, bkts := range benchBs {
		b.Run(fmt.Sprintf("B=%d", bkts), func(b *testing.B) {
			s := syntheticScheduler(b, bkts, PolicyLifeRaft, 0.5)
			populateQueues(s, bkts)
			for i := 0; i < 64; i++ { // warm scratch and pools
				stepSteadyState(b, s)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stepSteadyState(b, s)
			}
		})
	}
}

// TestStepServiceLoopZeroAlloc asserts the -benchmem claim directly: a
// steady-state service iteration (pick, join-evaluate, retire, refill)
// allocates nothing once scratch and pools are warm.
func TestStepServiceLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s := syntheticScheduler(t, 10_000, PolicyLifeRaft, 0.5)
	populateQueues(s, 10_000)
	for i := 0; i < 256; i++ {
		stepSteadyState(t, s)
	}
	allocs := testing.AllocsPerRun(400, func() { stepSteadyState(t, s) })
	if allocs != 0 {
		t.Errorf("steady-state step allocates %.2f/op, want 0", allocs)
	}
}

package core

import (
	"reflect"
	"testing"

	"liferaft/internal/bucket"
	"liferaft/internal/cache/disktier"
	"liferaft/internal/disk"
	"liferaft/internal/segment"
	"liferaft/internal/simclock"
)

// mkTieredParity builds a file-backend engine whose store is wrapped in
// the disk cache tier (and, when depth > 0, scheduler prefetch), on the
// scaled parity cost model.
func mkTieredParity(t *testing.T, part *bucket.Partition, dir, tierDir string, pc parityCase, depth int) (Config, *scheduler) {
	t.Helper()
	set, err := segment.OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(part); err != nil {
		t.Fatal(err)
	}
	tier, err := disktier.Open(disktier.Config{Dir: tierDir, CapacityBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.Real{}
	d := disk.New(parityModel(), clk)
	backend := segment.NewTieredBackend(set, tier, pc.materialize)
	t.Cleanup(func() { backend.Close() })
	cfg := Config{
		Store:                bucket.NewStore(part, d, pc.materialize).WithBackend(backend),
		Disk:                 d,
		Clock:                clk,
		Policy:               pc.policy,
		Alpha:                pc.alpha,
		CacheBuckets:         20,
		MaterializeResults:   pc.materialize,
		AgeDepreciationGamma: pc.gamma,
		WorkloadMemoryCap:    pc.memCap,
		Backend:              BackendFile,
		DataDir:              dir,
		PrefetchDepth:        depth,
	}
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, s
}

// replayTieredParity steps a plain file engine and a tiered file engine
// in lockstep over the same jobs, demanding bit-identical picks and
// completions — the contract that tiering (cold or warm, with or
// without prefetch) changes where bytes are read from, never what the
// scheduler decides or what a query gets back.
func replayTieredParity(t *testing.T, part *bucket.Partition, dir, tierDir string, pc parityCase, depth int, jobs []Job) {
	t.Helper()
	cfgA, plain := mkFileParity(t, part, dir, pc)
	cfgB, tiered := mkTieredParity(t, part, dir, tierDir, pc, depth)

	startA, startB := cfgA.Clock.Now(), cfgB.Clock.Now()
	for _, j := range jobs {
		rA := plain.admit(j, startA)
		rB := tiered.admit(j, startB)
		if (rA == nil) != (rB == nil) {
			t.Fatalf("admit(%d): plain done=%v tiered done=%v", j.ID, rA != nil, rB != nil)
		}
	}
	steps, completed := 0, 0
	for plain.pendingWork() || tiered.pendingWork() {
		if plain.pendingWork() != tiered.pendingWork() {
			t.Fatalf("step %d: pendingWork diverged", steps)
		}
		pA, okA := plain.pick(cfgA.Clock.Now())
		pB, okB := tiered.pick(cfgB.Clock.Now())
		if pA != pB || okA != okB {
			t.Fatalf("step %d: pick diverged: plain (%d,%v) vs tiered (%d,%v)", steps, pA, okA, pB, okB)
		}
		if tiered.pre != nil {
			tiered.prefetchUpcoming(pB)
		}
		doneA := stripTimes(plain.serviceBucket(pA, cfgA.Clock.Now()))
		doneB := stripTimes(tiered.serviceBucket(pB, cfgB.Clock.Now()))
		if !reflect.DeepEqual(doneA, doneB) {
			t.Fatalf("step %d (bucket %d): completions diverged:\nplain:  %+v\ntiered: %+v", steps, pA, doneA, doneB)
		}
		completed += len(doneA)
		steps++
	}
	stA := stripStatTimes(plain.finalize(cfgA.Clock.Now().Sub(startA), completed))
	stB := stripStatTimes(tiered.finalize(cfgB.Clock.Now().Sub(startB), completed))
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("RunStats diverged after %d services (clock fields excluded):\nplain:  %+v\ntiered: %+v", steps, stA, stB)
	}
}

// TestTieredParity replays the golden hot trace against the tiered
// backend three ways: cold tier without prefetch, cold tier with
// prefetch, then (reusing the now-warm tier directory, as a restarted
// node would) warm tier with prefetch. Every variant must schedule and
// answer bit-identically to the plain file backend.
func TestTieredParity(t *testing.T) {
	part, dir, hotJobs, _ := parityFixture(t)
	pc := parityCase{policy: PolicyLifeRaft, alpha: 0.5, materialize: true}

	tierDir := t.TempDir()
	t.Run("cold-demand", func(t *testing.T) {
		replayTieredParity(t, part, dir, t.TempDir(), pc, 0, hotJobs)
	})
	t.Run("cold-prefetch", func(t *testing.T) {
		replayTieredParity(t, part, dir, tierDir, pc, 4, hotJobs)
	})
	t.Run("warm-prefetch", func(t *testing.T) {
		replayTieredParity(t, part, dir, tierDir, pc, 4, hotJobs)
	})
}

// TestTieredPrefetchPromotes proves the scheduler's prefetch hook
// actually lands groups in the disk tier: replaying with PrefetchDepth
// set must record prefetch issues, and by the end of a full replay the
// tier holds entries without any demand misses necessarily paying for
// them first.
func TestTieredPrefetchPromotes(t *testing.T) {
	part, dir, hotJobs, _ := parityFixture(t)
	pc := parityCase{policy: PolicyLifeRaft, alpha: 0.5}
	cfg, s := mkTieredParity(t, part, dir, t.TempDir(), pc, 8)

	start := cfg.Clock.Now()
	for _, j := range hotJobs {
		s.admit(j, start)
	}
	for s.pendingWork() {
		if _, ok := s.step(cfg.Clock.Now()); !ok {
			break
		}
	}
	tb := cfg.Store.Backend().(*segment.TieredBackend)
	tb.Tier().WaitIdle()
	st := tb.Tier().Stats()
	if st.PrefetchIssued == 0 {
		t.Fatal("a full replay with PrefetchDepth=8 issued no prefetches")
	}
	if st.Fills == 0 {
		t.Fatal("no tier fills landed during the replay")
	}
	if st.Entries == 0 {
		t.Fatal("tier is empty after the replay")
	}
}

// TestPrefetchConfigValidation: the knob requires a prefetch-capable
// backend and rejects nonsense.
func TestPrefetchConfigValidation(t *testing.T) {
	part, _, _, _ := parityFixture(t)
	cfg, _ := mkSimParity(t, part, parityCase{policy: PolicyLifeRaft, alpha: 0.5})
	cfg.PrefetchDepth = 4
	if _, err := newScheduler(cfg); err == nil {
		t.Fatal("PrefetchDepth accepted on a sim backend with no Prefetcher")
	}
	cfg.PrefetchDepth = -1
	if _, err := newScheduler(cfg); err == nil {
		t.Fatal("negative PrefetchDepth accepted")
	}
}

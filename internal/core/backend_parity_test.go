package core

import (
	"reflect"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/disk"
	"liferaft/internal/segment"
	"liferaft/internal/simclock"
)

// Backend parity: the golden workload traces replayed through the
// simulated disk and through the real-I/O file backend must make
// bit-identical scheduling decisions and return bit-identical results —
// same bucket-service sequence, same per-batch completions (down to the
// materialized match pairs, which proves the segment encoding
// round-trips objects exactly), same I/O and cache counters. Clocks are
// excluded from the comparison: the file backend runs on real time.
//
// The replay admits the whole trace up front (batch mode). With every
// arrival at the same instant, each queue's age is the same
// elapsed-since-start and the Eq. 2 normalization divides it away, so
// the scheduler's decisions are a function of queue state alone — the
// property that makes decision-level parity well-defined across a
// virtual and a real clock.

// parityModel is the SkyQuery model with every duration scaled down
// 1000x: identical cost *ratios* (the inputs to every scheduling
// decision and the hybrid strategy choice), but the file engine's real
// sleeps for still-modeled costs (Tm, spills) total milliseconds
// instead of minutes.
func parityModel() disk.Model {
	return disk.Model{
		AvgSeek:    8 * time.Microsecond,
		ShortSeek:  2 * time.Microsecond,
		RotLatency: 4 * time.Microsecond,
		ShortRot:   1700 * time.Nanosecond,
		SeqMBps:    33670,
		PageSize:   8 << 10,
		MatchCost:  130 * time.Nanosecond,
	}
}

// parityFixture re-partitions the golden catalog with a 64-byte object
// stride (the golden partition's 4 KiB stride would make a 123 MB test
// directory) and writes its segment store under t's temp dir, so the
// store lives exactly as long as the test (and its subtests) using it.
func parityFixture(t *testing.T) (*bucket.Partition, string, []Job, []Job) {
	t.Helper()
	_, hotJobs, uniJobs := goldenFixture(t)
	part, err := bucket.NewPartition(goldenLocal, 150, 64) // 200 buckets
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := segment.Write(dir, part, segment.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	return part, dir, hotJobs, uniJobs
}

type parityCase struct {
	name        string
	policy      PolicyKind
	alpha       float64
	gamma       float64
	memCap      int
	uniform     bool
	materialize bool
}

func TestBackendParity(t *testing.T) {
	part, dir, hotJobs, uniJobs := parityFixture(t)
	cases := []parityCase{
		{name: "liferaft-hot", policy: PolicyLifeRaft, alpha: 0.5},
		{name: "liferaft-greedy-uniform", policy: PolicyLifeRaft, alpha: 0, uniform: true},
		{name: "liferaft-fifo-qos", policy: PolicyLifeRaft, alpha: 1, gamma: 2},
		{name: "liferaft-spill", policy: PolicyLifeRaft, alpha: 0.5, memCap: 200},
		{name: "liferaft-materialize", policy: PolicyLifeRaft, alpha: 0.5, materialize: true},
		{name: "rr-uniform", policy: PolicyRoundRobin, uniform: true},
		{name: "lsf-hot", policy: PolicyLeastShared},
	}
	for _, pc := range cases {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			jobs := hotJobs
			if pc.uniform {
				jobs = uniJobs
			}
			replayBackends(t, part, dir, pc, jobs)
		})
	}
	t.Run("sharded", func(t *testing.T) { shardedParity(t, part, dir, hotJobs) })
}

// mkSimParity builds the simulated-backend engine on a virtual clock.
func mkSimParity(t *testing.T, part *bucket.Partition, pc parityCase) (Config, *scheduler) {
	t.Helper()
	clk := simclock.NewVirtual()
	d := disk.New(parityModel(), clk)
	cfg := Config{
		Store:                bucket.NewStore(part, d, pc.materialize),
		Disk:                 d,
		Clock:                clk,
		Policy:               pc.policy,
		Alpha:                pc.alpha,
		CacheBuckets:         20,
		MaterializeResults:   pc.materialize,
		AgeDepreciationGamma: pc.gamma,
		WorkloadMemoryCap:    pc.memCap,
	}
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, s
}

// mkFileParity builds the file-backend engine on the real clock over
// the segment store under dir.
func mkFileParity(t *testing.T, part *bucket.Partition, dir string, pc parityCase) (Config, *scheduler) {
	t.Helper()
	set, err := segment.OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() })
	if err := set.Validate(part); err != nil {
		t.Fatal(err)
	}
	clk := simclock.Real{}
	d := disk.New(parityModel(), clk)
	st := bucket.NewStore(part, d, pc.materialize).WithBackend(segment.NewBackend(set, pc.materialize))
	cfg := Config{
		Store:                st,
		Disk:                 d,
		Clock:                clk,
		Policy:               pc.policy,
		Alpha:                pc.alpha,
		CacheBuckets:         20,
		MaterializeResults:   pc.materialize,
		AgeDepreciationGamma: pc.gamma,
		WorkloadMemoryCap:    pc.memCap,
		Backend:              BackendFile,
		DataDir:              dir,
	}
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, s
}

// stripTimes zeroes the clock-dependent Result fields so batches
// compare across a virtual and a real clock.
func stripTimes(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].Arrived = time.Time{}
		out[i].Completed = time.Time{}
	}
	sortResults(out)
	return out
}

// stripStatTimes zeroes the clock-dependent RunStats fields.
func stripStatTimes(st RunStats) RunStats {
	st.Makespan = 0
	st.Disk.BusyTime = 0
	return st
}

func replayBackends(t *testing.T, part *bucket.Partition, dir string, pc parityCase, jobs []Job) {
	t.Helper()
	cfgA, sim := mkSimParity(t, part, pc)
	cfgB, file := mkFileParity(t, part, dir, pc)

	// Batch admission: the whole trace arrives before the first service.
	startA, startB := cfgA.Clock.Now(), cfgB.Clock.Now()
	for _, j := range jobs {
		rA := sim.admit(j, startA)
		rB := file.admit(j, startB)
		if (rA == nil) != (rB == nil) {
			t.Fatalf("admit(%d): sim done=%v file done=%v", j.ID, rA != nil, rB != nil)
		}
	}

	// Between admission and the first pick the virtual clock has not
	// moved, so every age would be exactly zero on the simulated side
	// only (real time always advances a little) and the age term would
	// degenerate to a tie there. Nudge the virtual clock so both
	// engines see positive ages, which the Eq. 2 normalization then
	// cancels identically.
	cfgA.Clock.Sleep(time.Millisecond)

	steps, completed := 0, 0
	for sim.pendingWork() || file.pendingWork() {
		if sim.pendingWork() != file.pendingWork() {
			t.Fatalf("step %d: pendingWork diverged", steps)
		}
		pA, okA := sim.pick(cfgA.Clock.Now())
		pB, okB := file.pick(cfgB.Clock.Now())
		if pA != pB || okA != okB {
			t.Fatalf("step %d: pick diverged: sim (%d,%v) vs file (%d,%v)", steps, pA, okA, pB, okB)
		}
		doneA := stripTimes(sim.serviceBucket(pA, cfgA.Clock.Now()))
		doneB := stripTimes(file.serviceBucket(pB, cfgB.Clock.Now()))
		if !reflect.DeepEqual(doneA, doneB) {
			t.Fatalf("step %d (bucket %d): completions diverged:\nsim:  %+v\nfile: %+v", steps, pA, doneA, doneB)
		}
		completed += len(doneA)
		steps++
	}
	if steps == 0 {
		t.Fatal("trace produced no bucket services; fixture too small")
	}
	if pc.memCap > 0 && sim.stats.SpilledObjects == 0 {
		t.Error("spill cap set but the trace never spilled; tighten the cap")
	}
	if pc.materialize && sim.stats.ScanServices == 0 {
		t.Error("materializing case never scanned a bucket")
	}

	stA := stripStatTimes(sim.finalize(cfgA.Clock.Now().Sub(startA), completed))
	stB := stripStatTimes(file.finalize(cfgB.Clock.Now().Sub(startB), completed))
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("RunStats diverged after %d services (clock fields excluded):\nsim:  %+v\nfile: %+v", steps, stA, stB)
	}
	if stB.Disk.SeqBytes == 0 && stB.Disk.Probes == 0 {
		t.Error("file backend performed no I/O at all")
	}
}

// shardedParity proves the file backend composes with the sharded
// engine: per-shard segment sets, merged results identical to the
// simulated sharded run (order excluded — completion order across
// shards is a property of the clocks).
func shardedParity(t *testing.T, part *bucket.Partition, dir string, hotJobs []Job) {
	offsets := make([]time.Duration, len(hotJobs))

	simClk := simclock.NewVirtual()
	simDisk := disk.New(parityModel(), simClk)
	simCfg := Config{
		Store: bucket.NewStore(part, simDisk, false), Disk: simDisk, Clock: simClk,
		Alpha: 0.5, CacheBuckets: 20, Shards: 4,
	}
	simRes, simStats, err := Run(simCfg, hotJobs, offsets)
	if err != nil {
		t.Fatal(err)
	}

	set, err := segment.OpenSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	fileDisk := disk.New(parityModel(), simclock.Real{})
	fileCfg := Config{
		Store: bucket.NewStore(part, fileDisk, false).WithBackend(segment.NewBackend(set, false)),
		Disk:  fileDisk, Clock: simclock.Real{},
		Alpha: 0.5, CacheBuckets: 20, Shards: 4,
		Backend: BackendFile, DataDir: dir,
	}
	fileRes, fileStats, err := Run(fileCfg, hotJobs, offsets)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(stripTimes(simRes), stripTimes(fileRes)) {
		t.Fatal("sharded results diverged between backends")
	}
	type counters struct {
		Served, Scans, Indexes int64
		SeqReads, SeqBytes     int64
		Probes, Matches        int64
	}
	count := func(st RunStats) counters {
		return counters{st.BucketsServed, st.ScanServices, st.IndexServices,
			st.Disk.SeqReads, st.Disk.SeqBytes, st.Disk.Probes, st.Disk.Matches}
	}
	if count(simStats) != count(fileStats) {
		t.Fatalf("sharded counters diverged:\nsim:  %+v\nfile: %+v", count(simStats), count(fileStats))
	}
}

package core

import (
	"fmt"
	"runtime"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/xmatch"
)

// PerfReport is one scheduler hot-path measurement at a given number of
// active buckets, produced by PerfProbe. cmd/skybench -bench-json writes
// a series of these into BENCH_<pr>.json so successive PRs accumulate a
// perf trajectory; the same quantities are covered by the in-tree
// BenchmarkPick/BenchmarkStep for benchstat-style comparison.
type PerfReport struct {
	// Buckets is the number of active (non-empty) bucket queues probed.
	Buckets int `json:"buckets"`
	// PickNsIndexed and PickNsScan are the mean wall-clock cost of one
	// LifeRaft pick via the incremental index and via the exhaustive
	// scan baseline. PickSpeedup is their ratio.
	PickNsIndexed float64 `json:"pick_ns_indexed"`
	PickNsScan    float64 `json:"pick_ns_scan"`
	PickSpeedup   float64 `json:"pick_speedup"`
	// PicksPerSec is 1e9 / PickNsIndexed.
	PicksPerSec float64 `json:"picks_per_sec"`
	// StepNsPerOp and StepAllocsPerOp measure one steady-state service
	// iteration (pick, join-evaluate, retire, refill). The allocation
	// count must be 0.
	StepNsPerOp     float64 `json:"step_ns_per_op"`
	StepAllocsPerOp float64 `json:"step_allocs_per_op"`
}

// PerfProbe measures the scheduler hot path on a synthetic workload with
// the given number of active bucket queues (one-object buckets, varied
// queue lengths and ages). It exists so the skybench binary can record
// the same quantities the in-tree benchmarks measure without importing
// the testing package.
//
//lifevet:allow wallclock -- the probe's whole purpose is measuring real elapsed time of the hot path; it never runs inside a replayed schedule
func PerfProbe(buckets int) (PerfReport, error) {
	if buckets < 1 {
		return PerfReport{}, fmt.Errorf("core: PerfProbe buckets %d < 1", buckets)
	}
	cat, err := catalog.New(catalog.Config{
		Name: "perfprobe", N: buckets, Seed: 9, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		return PerfReport{}, err
	}
	part, err := bucket.NewPartition(cat, 1, 0)
	if err != nil {
		return PerfReport{}, err
	}
	mk := func() (*scheduler, error) {
		cfg, _ := NewVirtual(part, 0.5, false)
		s, err := newScheduler(cfg)
		if err != nil {
			return nil, err
		}
		base := s.cfg.Clock.Now()
		qs := &queryState{result: Result{QueryID: 1, Arrived: base}, arrived: base}
		// Sentinel work unit: remaining never reaches zero, so the probe
		// query survives every service (at small B one service could
		// otherwise retire it and the refill would touch a freed query).
		qs.remaining = 1
		s.queries[1] = qs
		for bi := 0; bi < buckets; bi++ {
			at := base.Add(time.Duration(bi%977) * time.Millisecond)
			for k := 0; k < 1+bi%7; k++ {
				s.pushItem(bi, item{
					wo:        xmatch.WorkloadObject{QueryID: 1},
					arrived:   at,
					ageWeight: 1,
				})
				qs.buckets = append(qs.buckets, bi)
				qs.remaining++
			}
		}
		return s, nil
	}
	s, err := mk()
	if err != nil {
		return PerfReport{}, err
	}
	rep := PerfReport{Buckets: buckets}
	now := s.cfg.Clock.Now().Add(time.Hour)

	// Indexed pick: enough iterations for a stable mean.
	const indexedIters = 20_000
	t0 := time.Now()
	for i := 0; i < indexedIters; i++ {
		if _, ok := s.pickLifeRaftIndexed(now); !ok {
			return rep, fmt.Errorf("core: probe scheduler has no work")
		}
	}
	rep.PickNsIndexed = float64(time.Since(t0).Nanoseconds()) / indexedIters
	rep.PicksPerSec = 1e9 / rep.PickNsIndexed

	// Scan baseline: O(B) per pick, so bound total time instead.
	scanIters := 0
	t0 = time.Now()
	for time.Since(t0) < 300*time.Millisecond {
		if _, ok := s.pickLifeRaftScan(now); !ok {
			return rep, fmt.Errorf("core: probe scheduler has no work")
		}
		scanIters++
	}
	rep.PickNsScan = float64(time.Since(t0).Nanoseconds()) / float64(scanIters)
	rep.PickSpeedup = rep.PickNsScan / rep.PickNsIndexed

	// Steady-state service loop: service one bucket, refill it. Measure
	// time and allocations (mallocs delta across a stopped world).
	step := func() error {
		now := s.cfg.Clock.Now()
		bi, ok := s.pick(now)
		if !ok {
			return fmt.Errorf("core: probe ran out of work")
		}
		n := len(s.queues[bi].items)
		s.serviceBucket(bi, now)
		qs := s.queries[1]
		for k := 0; k < n; k++ {
			s.pushItem(bi, item{
				wo:        xmatch.WorkloadObject{QueryID: 1},
				arrived:   now,
				ageWeight: 1,
			})
			qs.remaining++
		}
		return nil
	}
	// Steady-state servicing drifts toward the anti-correlated regime
	// where picks fall back to the O(B) scan, so bound the iteration
	// count by B to keep the probe's wall clock flat across scales.
	stepIters := 4_096
	switch {
	case buckets >= 100_000:
		stepIters = 128
	case buckets >= 10_000:
		stepIters = 1_024
	}
	for i := 0; i < stepIters/4+64; i++ { // warm pools and scratch
		if err := step(); err != nil {
			return rep, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 = time.Now()
	for i := 0; i < stepIters; i++ {
		if err := step(); err != nil {
			return rep, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	rep.StepNsPerOp = float64(elapsed.Nanoseconds()) / float64(stepIters)
	rep.StepAllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(stepIters)
	return rep, nil
}

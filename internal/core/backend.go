package core

import (
	"fmt"

	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/cache/disktier"
	"liferaft/internal/disk"
	"liferaft/internal/segment"
	"liferaft/internal/simclock"
	"liferaft/internal/xmatch"
)

// BackendKind names the storage backend serving Config.Store.
type BackendKind string

const (
	// BackendSim serves buckets from the analytic disk model: costs are
	// charged to the configured clock (virtual for experiments) and
	// objects come from the synthetic catalog. The default, and the
	// configuration every paper figure and golden test runs.
	BackendSim BackendKind = "sim"
	// BackendFile serves buckets from segment files under
	// Config.DataDir with real I/O: reads block for as long as the
	// hardware takes and the engine runs on the real clock, so measured
	// throughput is hardware throughput. Built with NewFileBacked.
	BackendFile BackendKind = "file"
)

// NewFileBacked builds the real-I/O stack: the segment store under
// dataDir (written beforehand by segment.Write / cmd/skygen
// -write-segments) serves the buckets, the engine runs on
// simclock.Real, and the disk object keeps the SkyQuery model only for
// the costs that remain modeled (the in-memory match constant Tm and
// workload spill accounting) while real reads record their measured
// elapsed time. The store is validated against part before the first
// read; close it with cfg.Store.Close() when the engine is done.
func NewFileBacked(part *bucket.Partition, alpha float64, materialize bool, dataDir string) (Config, error) {
	set, err := segment.OpenSet(dataDir)
	if err != nil {
		return Config{}, err
	}
	return NewFileBackedFrom(part, alpha, materialize, set)
}

// NewFileBackedFrom is NewFileBacked over an already-opened segment
// set, taking ownership of it (cfg.Store.Close() releases it). Callers
// that just built or probed the store with segment.Ensure hand the open
// set straight over instead of paying a second open-and-verify pass
// over every segment file.
func NewFileBackedFrom(part *bucket.Partition, alpha float64, materialize bool, set *segment.Set) (Config, error) {
	if err := set.Validate(part); err != nil {
		set.Close()
		return Config{}, err
	}
	clk := simclock.Real{}
	d := disk.New(disk.SkyQuery(), clk)
	st := bucket.NewStore(part, d, materialize).WithBackend(segment.NewBackend(set, materialize))
	return Config{
		Store:              st,
		Disk:               d,
		Clock:              clk,
		Policy:             PolicyLifeRaft,
		Alpha:              alpha,
		CacheBuckets:       20,
		CachePolicy:        cache.PolicyLRU,
		HybridThreshold:    xmatch.DefaultThreshold,
		MaterializeResults: materialize,
		Backend:            BackendFile,
		DataDir:            set.Dir(),
	}, nil
}

// TierOptions configures the disk cache tier of a tiered file-backed
// engine (NewFileBackedTiered).
type TierOptions struct {
	// Dir is the disk tier's cache directory (created if missing;
	// reopening a warm directory restarts warm).
	Dir string
	// CapacityBytes bounds the tier's cached data bytes.
	CapacityBytes int64
	// PrefetchDepth is copied to Config.PrefetchDepth: how many
	// upcoming buckets the scheduler peeks after each pick. 0 disables
	// prefetch (the tier still caches on demand).
	PrefetchDepth int
	// PrefetchInflight bounds concurrent background promotions
	// (disktier.Config.PromoteInflight); 0 means the tier default.
	PrefetchInflight int
}

// NewFileBackedTiered is NewFileBacked with the disk cache tier layered
// between the engine and the segment files: reads that hit the tier are
// served from mmap'd group regions, misses fall through and promote,
// and (with TierOptions.PrefetchDepth > 0) the scheduler prefetches the
// buckets its own orderings say come next. cfg.Store.Close() closes the
// segment set and the tier (persisting its eviction state).
func NewFileBackedTiered(part *bucket.Partition, alpha float64, materialize bool, dataDir string, topt TierOptions) (Config, error) {
	set, err := segment.OpenSet(dataDir)
	if err != nil {
		return Config{}, err
	}
	return NewFileBackedTieredFrom(part, alpha, materialize, set, topt)
}

// NewFileBackedTieredFrom is NewFileBackedTiered over an already-opened
// segment set, taking ownership of it.
func NewFileBackedTieredFrom(part *bucket.Partition, alpha float64, materialize bool, set *segment.Set, topt TierOptions) (Config, error) {
	if err := set.Validate(part); err != nil {
		set.Close()
		return Config{}, err
	}
	tier, err := disktier.Open(disktier.Config{
		Dir:             topt.Dir,
		CapacityBytes:   topt.CapacityBytes,
		PromoteInflight: topt.PrefetchInflight,
	})
	if err != nil {
		set.Close()
		return Config{}, err
	}
	clk := simclock.Real{}
	d := disk.New(disk.SkyQuery(), clk)
	st := bucket.NewStore(part, d, materialize).WithBackend(segment.NewTieredBackend(set, tier, materialize))
	return Config{
		Store:              st,
		Disk:               d,
		Clock:              clk,
		Policy:             PolicyLifeRaft,
		Alpha:              alpha,
		CacheBuckets:       20,
		CachePolicy:        cache.PolicyLRU,
		HybridThreshold:    xmatch.DefaultThreshold,
		MaterializeResults: materialize,
		Backend:            BackendFile,
		DataDir:            set.Dir(),
		PrefetchDepth:      topt.PrefetchDepth,
	}, nil
}

// validateBackend checks the backend knob against the rest of the
// config; called from withDefaults after Store/Clock presence checks.
func (c Config) validateBackend() error {
	switch c.Backend {
	case BackendSim:
		if c.Store.Backend() != nil {
			return fmt.Errorf("core: Backend %q but Store has a real-I/O backend attached", c.Backend)
		}
	case BackendFile:
		if c.DataDir == "" {
			return fmt.Errorf("core: Backend %q requires DataDir", c.Backend)
		}
		if c.Store.Backend() == nil {
			return fmt.Errorf("core: Backend %q but Store serves the disk model; build the config with NewFileBacked", c.Backend)
		}
		if _, virtual := c.Clock.(*simclock.Virtual); virtual {
			return fmt.Errorf("core: Backend %q does real I/O and must run on the real clock, not a virtual one", c.Backend)
		}
	default:
		return fmt.Errorf("core: unknown Backend %q", c.Backend)
	}
	return nil
}

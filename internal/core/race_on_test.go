//go:build race

package core

// raceEnabled gates allocation-count assertions: the race runtime
// instruments allocations, so exact allocs/op checks only hold without it.
const raceEnabled = true

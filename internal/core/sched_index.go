package core

import (
	"math/bits"
	"time"
)

// This file implements the incremental scheduler index: priority
// structures over the non-empty bucket queues that turn every O(B) scan
// in the scheduler hot path into an O(log B) (or O(1)) operation. The
// structures are updated on exactly the events that can change their
// keys — push, service, spill, cancel, and cache admission/eviction (the
// last delivered through cache.Cache's OnEvict hook) — and the LifeRaft
// pick runs a threshold-algorithm walk over two orderings instead of
// rescoring every queue. DESIGN-sched-index.md documents the invariants;
// the golden-equivalence test in golden_test.go proves the pick sequence
// bit-identical to the exhaustive scans (kept in sched.go as the
// reference implementation and benchmark baseline).

// Heap slots in bqueue.pos. Each queue carries its position in every
// heap that currently holds it, so updates and removals are O(log B)
// with no auxiliary lookups and no allocation.
const (
	posUt    = iota // max side: ut DESC, idx ASC (LifeRaft pick)
	posAge          // frontier head arrival ASC, idx ASC (LifeRaft pick)
	posSpill        // min side: ut ASC, idx ASC, non-spilled only (victims)
	posLen          // queue length ASC, idx ASC (least-shared pick)
	numHeaps
)

// qheap is a binary heap of bucket queues with position tracking. The
// less function must be a strict total order (every ordering below ties
// on the unique bucket index), so the top element is unique and heap
// order is deterministic regardless of insertion history.
type qheap struct {
	slot int // which bqueue.pos entry this heap maintains
	less func(a, b *bqueue) bool
	s    []*bqueue
}

func (h *qheap) len() int      { return len(h.s) }
func (h *qheap) head() *bqueue { return h.s[0] }

func (h *qheap) swap(i, j int) {
	h.s[i], h.s[j] = h.s[j], h.s[i]
	h.s[i].pos[h.slot] = int32(i)
	h.s[j].pos[h.slot] = int32(j)
}

func (h *qheap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.s[i], h.s[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *qheap) down(i int) {
	n := len(h.s)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(h.s[l], h.s[m]) {
			m = l
		}
		if r < n && h.less(h.s[r], h.s[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// push inserts q; q must not already be in this heap.
func (h *qheap) push(q *bqueue) {
	h.s = append(h.s, q)
	q.pos[h.slot] = int32(len(h.s) - 1)
	h.up(len(h.s) - 1)
}

// fix restores heap order after q's key changed; no-op if q is absent.
func (h *qheap) fix(q *bqueue) {
	i := q.pos[h.slot]
	if i < 0 {
		return
	}
	h.up(int(i))
	h.down(int(q.pos[h.slot]))
}

// remove deletes q; no-op if q is absent.
func (h *qheap) remove(q *bqueue) {
	i := int(q.pos[h.slot])
	if i < 0 {
		return
	}
	last := len(h.s) - 1
	if i != last {
		h.swap(i, last)
	}
	h.s = h.s[:last]
	q.pos[h.slot] = -1
	if i != last {
		h.up(i)
		h.down(int(h.s[i].pos[h.slot]))
	}
}

// bitset is a two-level bitmap over bucket indices with fast circular
// successor queries: level 0 has one bit per bucket, the summary has one
// bit per level-0 word. NextFrom touches O(B/4096) words, so round-robin
// picks on a sparse 100k-bucket space cost a handful of cache lines
// instead of a full scan.
type bitset struct {
	words []uint64
	sum   []uint64
}

func newBitset(n int) *bitset {
	nw := (n + 63) / 64
	return &bitset{
		words: make([]uint64, nw),
		sum:   make([]uint64, (nw+63)/64),
	}
}

func (b *bitset) set(i int) {
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.sum[w>>6] |= 1 << (uint(w) & 63)
}

func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.sum[w>>6] &^= 1 << (uint(w) & 63)
	}
}

// nextFrom returns the smallest set index >= i, or -1 if none.
func (b *bitset) nextFrom(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b.words) {
		return -1
	}
	// Tail of the word containing i.
	if rem := b.words[w] >> (uint(i) & 63); rem != 0 {
		return i + bits.TrailingZeros64(rem)
	}
	// Walk the summary for the next non-empty word.
	for sw := w >> 6; sw < len(b.sum); sw++ {
		s := b.sum[sw]
		if sw == w>>6 {
			// Mask off words <= w.
			s &^= (1 << (uint(w)&63 + 1)) - 1
		}
		if s == 0 {
			continue
		}
		nw := sw<<6 + bits.TrailingZeros64(s)
		return nw<<6 + bits.TrailingZeros64(b.words[nw])
	}
	return -1
}

// schedIndex bundles the index structures a scheduler maintains. Each is
// built only when the configured policy (or the overflow extension)
// actually reads it, so non-LifeRaft engines pay no heap maintenance for
// orderings they never consult.
type schedIndex struct {
	ut       *qheap  // LifeRaft: workload-throughput max side
	age      *qheap  // LifeRaft: age-frontier order (exact when γ=0)
	spill    *qheap  // overflow: Ut min side over non-spilled queues
	lens     *qheap  // least-shared: queue length min side
	nonEmpty *bitset // round-robin: ordered non-empty bucket set

	// γ=0 makes every age weight exactly 1, so per-queue age order
	// reduces to frontier-arrival order and the two-heap pick is exact.
	// With QoS depreciation the ordering is time-varying and the pick
	// falls back to the exhaustive scan (see DESIGN-sched-index.md §4).
	exactAge bool

	// Threshold-walk scratch, reused across picks.
	walkUt, walkAge heapWalk
	epoch           uint64
}

// newSchedIndex sizes the index for cfg. part is the number of buckets.
func newSchedIndex(cfg Config, part int) *schedIndex {
	ix := &schedIndex{exactAge: cfg.AgeDepreciationGamma == 0}
	switch cfg.Policy {
	case PolicyLifeRaft:
		if !ix.exactAge {
			break // QoS picks always scan (§4): don't maintain unread heaps
		}
		ix.ut = &qheap{slot: posUt, less: func(a, b *bqueue) bool {
			return a.ut > b.ut || (a.ut == b.ut && a.idx < b.idx)
		}}
		ix.age = &qheap{slot: posAge, less: func(a, b *bqueue) bool {
			at, bt := a.ageFrontier[0].arrived, b.ageFrontier[0].arrived
			return at.Before(bt) || (at.Equal(bt) && a.idx < b.idx)
		}}
	case PolicyRoundRobin:
		ix.nonEmpty = newBitset(part)
	case PolicyLeastShared:
		ix.lens = &qheap{slot: posLen, less: func(a, b *bqueue) bool {
			return len(a.items) < len(b.items) ||
				(len(a.items) == len(b.items) && a.idx < b.idx)
		}}
	}
	if cfg.WorkloadMemoryCap > 0 {
		ix.spill = &qheap{slot: posSpill, less: func(a, b *bqueue) bool {
			return a.ut < b.ut || (a.ut == b.ut && a.idx < b.idx)
		}}
	}
	return ix
}

// needsUt reports whether any maintained ordering keys on Ut(i) — if so,
// the scheduler caches Ut per queue and refreshes it on every event that
// can change it (including cache membership flips via the OnEvict hook).
func (ix *schedIndex) needsUt() bool { return ix.ut != nil || ix.spill != nil }

// insert registers a newly non-empty queue in every maintained ordering.
func (ix *schedIndex) insert(q *bqueue) {
	if ix.ut != nil {
		ix.ut.push(q)
		ix.age.push(q)
	}
	if ix.spill != nil && !q.spilled {
		ix.spill.push(q)
	}
	if ix.lens != nil {
		ix.lens.push(q)
	}
	if ix.nonEmpty != nil {
		ix.nonEmpty.set(q.idx)
	}
}

// remove drops an emptied (or serviced) queue from every ordering.
func (ix *schedIndex) remove(q *bqueue) {
	if ix.ut != nil {
		ix.ut.remove(q)
		ix.age.remove(q)
	}
	if ix.spill != nil {
		ix.spill.remove(q)
	}
	if ix.lens != nil {
		ix.lens.remove(q)
	}
	if ix.nonEmpty != nil {
		ix.nonEmpty.clear(q.idx)
	}
}

// utChanged re-heaps the orderings keyed on the queue's cached Ut.
func (ix *schedIndex) utChanged(q *bqueue) {
	if ix.ut != nil {
		ix.ut.fix(q)
	}
	if ix.spill != nil {
		ix.spill.fix(q)
	}
}

// lenChanged re-heaps the ordering keyed on queue length.
func (ix *schedIndex) lenChanged(q *bqueue) {
	if ix.lens != nil {
		ix.lens.fix(q)
	}
}

// ageKeyChanged re-heaps the age ordering after a frontier rebuild.
func (ix *schedIndex) ageKeyChanged(q *bqueue) {
	if ix.age != nil {
		ix.age.fix(q)
	}
}

// heapWalk enumerates a qheap in sorted order without destroying it: a
// frontier of array positions, itself heap-ordered by the underlying
// less, starts at the root and expands to a popped node's children. k
// pops cost O(k log k); the backing slice is reused across picks.
type heapWalk struct {
	h    *qheap
	cand []int32
}

func (w *heapWalk) reset(h *qheap) {
	w.h = h
	w.cand = w.cand[:0]
	if len(h.s) > 0 {
		w.cand = append(w.cand, 0)
	}
}

func (w *heapWalk) cless(i, j int32) bool { return w.h.less(w.h.s[i], w.h.s[j]) }

// peek returns the next element without consuming it, or nil.
func (w *heapWalk) peek() *bqueue {
	if len(w.cand) == 0 {
		return nil
	}
	return w.h.s[w.cand[0]]
}

// next consumes and returns the next element in heap order, or nil.
func (w *heapWalk) next() *bqueue {
	if len(w.cand) == 0 {
		return nil
	}
	p := w.cand[0]
	q := w.h.s[p]
	// Pop the frontier root.
	last := len(w.cand) - 1
	w.cand[0] = w.cand[last]
	w.cand = w.cand[:last]
	w.candDown(0)
	// Expand to the popped node's heap children.
	if l := 2*p + 1; int(l) < len(w.h.s) {
		w.candPush(l)
	}
	if r := 2*p + 2; int(r) < len(w.h.s) {
		w.candPush(r)
	}
	return q
}

func (w *heapWalk) candPush(p int32) {
	w.cand = append(w.cand, p)
	i := len(w.cand) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.cless(w.cand[i], w.cand[parent]) {
			break
		}
		w.cand[i], w.cand[parent] = w.cand[parent], w.cand[i]
		i = parent
	}
}

func (w *heapWalk) candDown(i int) {
	n := len(w.cand)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && w.cless(w.cand[l], w.cand[m]) {
			m = l
		}
		if r < n && w.cless(w.cand[r], w.cand[m]) {
			m = r
		}
		if m == i {
			return
		}
		w.cand[i], w.cand[m] = w.cand[m], w.cand[i]
		i = m
	}
}

// pickLifeRaftIndexed computes the Eq. 2 argmax with a threshold-
// algorithm walk over the Ut and age orderings. The normalizers come
// straight from the two heads (both exact: the Ut heap is event-fresh,
// and with γ=0 the age head is the queue with the oldest frontier). The
// walk then consumes the two orderings in descending-score-bound order,
// scoring each newly seen queue with the exact seed formula, and stops
// as soon as the α-mix of the next unseen Ut and age — an upper bound on
// every unseen queue's score — can no longer beat the best seen score
// (or tie it with a lower bucket index). The result is bit-identical to
// pickLifeRaftScan: same floats, same lowest-index tie-break.
//
// When the α-mix cannot bound the winner within O(log B) pops — the
// anti-correlated regime where the highest-Ut queues are all young and
// the oldest queues all cold, which steady-state servicing itself
// produces — the pick abandons the walk and falls back to the exhaustive
// scan, so a pick never costs asymptotically more than the seed's.
func (s *scheduler) pickLifeRaftIndexed(now time.Time) (int, bool) {
	ix := s.idx
	if ix.ut.len() == 0 {
		return 0, false
	}
	// Walk budget: convergent walks need pops proportional to the
	// near-tie density at the top of the two orderings (equal-arrival
	// admission batches produce runs ~the batch width), so the cap
	// scales with B rather than log B. A pop costs a small multiple of
	// one scan candidate, so B/32 bounds the worst-case (fallback)
	// overhead at ~10% of the scan it falls back to.
	budget := 64 + ix.ut.len()/32
	alpha := s.cfg.Alpha
	maxUt := ix.ut.head().ut
	maxAge := s.age(ix.age.head(), now)

	//lifevet:allow hotpath-alloc -- the closure is called only below and does not escape: the compiler keeps it on the stack (pinned by the zero-alloc probe)
	score := func(q *bqueue) float64 {
		sc := 0.0
		if maxUt > 0 {
			sc += (1 - alpha) * q.ut / maxUt
		}
		if maxAge > 0 {
			sc += alpha * s.age(q, now) / maxAge
		}
		return sc
	}

	ix.epoch++
	epoch := ix.epoch
	ix.walkUt.reset(ix.ut)
	ix.walkAge.reset(ix.age)
	best, bestScore := -1, -1.0
	//lifevet:allow hotpath-alloc -- non-escaping closure, stack-allocated (pinned by the zero-alloc probe)
	consider := func(q *bqueue) {
		if q.seen == epoch {
			return
		}
		q.seen = epoch
		sc := score(q)
		if sc > bestScore || (sc == bestScore && (best < 0 || q.idx < best)) {
			best, bestScore = q.idx, sc
		}
	}
	var (
		lastUt          float64
		lastArr         time.Time
		haveUt, haveArr bool
	)
	for {
		up, ap := ix.walkUt.peek(), ix.walkAge.peek()
		if up == nil || ap == nil {
			break // an ordering is exhausted: every queue was seen
		}
		// Unseen queues sit at-or-after both peeks in their orderings,
		// so ut <= up.ut and age <= age(ap): their score is bounded by
		// the α-mix of the two peeks.
		bound := 0.0
		if maxUt > 0 {
			bound += (1 - alpha) * up.ut / maxUt
		}
		if maxAge > 0 {
			bound += alpha * s.age(ap, now) / maxAge
		}
		if bestScore > bound {
			break
		}
		// bestScore == bound: an unseen queue can still tie — and ties
		// need the globally lowest index. Normalization collapses
		// near-ulp key differences to identical scores (every cached
		// bucket's Ut rounds to within an ulp of 1/Tm), so a score tie
		// does NOT imply a key tie and gives no index bound. Keep
		// walking until the bound drops strictly below.
		//
		// Advance asymmetrically: a peek repeating the last popped key
		// (a flat run — e.g. thousands of equal-length queues sharing
		// one Ut) cannot lower the bound, and the run's best member is
		// the one the OTHER ordering surfaces first. Skip it and advance
		// the other walk; pop both when both are flat or both fresh, so
		// every iteration makes progress.
		utFlat := haveUt && up.ut == lastUt
		arrFlat := haveArr && ap.ageFrontier[0].arrived.Equal(lastArr)
		if !utFlat || arrFlat {
			q := ix.walkUt.next()
			lastUt, haveUt = q.ut, true
			consider(q)
			budget--
		}
		if !arrFlat || utFlat {
			q := ix.walkAge.next()
			lastArr, haveArr = q.ageFrontier[0].arrived, true
			consider(q)
			budget--
		}
		if budget <= 0 {
			s.pickFallbacks++
			return s.pickLifeRaftScan(now)
		}
	}
	return best, true
}

package core

import (
	"testing"

	"liferaft/internal/cache/disktier"
)

type stubTierBackend struct{}

func (stubTierBackend) ForegroundCounts() (int64, int64) { return 0, 0 }
func (stubTierBackend) Tier() *disktier.Tier             { return nil }

// pollTierMetrics must be a no-op when instrumentation is off: the
// metrics handle is nil whenever Config.Metrics was nil, and a tiered
// backend without an observer must not dereference it (regression for
// the nilguard finding on s.obs).
func TestPollTierMetricsWithoutObs(t *testing.T) {
	s := &scheduler{tierB: stubTierBackend{}}
	s.pollTierMetrics() // must return before touching s.obs or the tier
}

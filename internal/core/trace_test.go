package core

import (
	"strings"
	"testing"
	"time"

	"liferaft/internal/metric"
	"liferaft/internal/trace"
)

// TestSchedulerTracedQuerySpans drives the scheduler directly with one
// traced query among untraced ones and checks the span record: the
// admission fan-out, every bucket service that touched the query (with
// strategy, bucket index, and a positive Ut score), store reads, and
// cache attribution — and that the traced-query counter returns to zero
// so the fast path re-engages.
func TestSchedulerTracedQuerySpans(t *testing.T) {
	part, jobs := fixture(t)
	cfg, clk := NewVirtual(part, 0.25, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rec := trace.New(trace.Config{Now: clk.Now})
	traced := jobs[0]
	traced.Trace = rec.Start("core-test", traced.ID)

	now := clk.Now()
	if r := s.admit(traced, now); r != nil {
		t.Fatal("traced fixture job completed on admit")
	}
	if s.traced != 1 {
		t.Fatalf("traced counter = %d, want 1", s.traced)
	}
	for _, j := range jobs[1:4] {
		s.admit(j, now)
	}
	for s.pendingWork() {
		if _, ok := s.step(clk.Now()); !ok {
			t.Fatal("pending work but no step")
		}
	}
	if s.traced != 0 {
		t.Fatalf("traced counter = %d after drain, want 0", s.traced)
	}

	d := rec.Finish(traced.Trace)
	var admitN, svcN int64
	var services, reads int
	for _, sp := range d.Spans {
		switch sp.Stage {
		case trace.StageEngineAdmit:
			admitN = sp.N
		case trace.StageService:
			services++
			svcN += sp.N
			if sp.Attr != trace.AttrScanHit && sp.Attr != trace.AttrScanCold && sp.Attr != trace.AttrIndex {
				t.Errorf("service span has bad strategy %q", sp.Attr)
			}
			if sp.Score <= 0 {
				t.Errorf("service span on bucket %d has Ut score %v, want > 0", sp.Key, sp.Score)
			}
			if sp.End.Before(sp.Start) {
				t.Errorf("service span ends before it starts: %+v", sp)
			}
		case trace.StageStoreRead:
			reads++
			if sp.Attr != "scan" && sp.Attr != "probe" {
				t.Errorf("store_read span has bad kind %q", sp.Attr)
			}
			if !sp.End.After(sp.Start) {
				t.Errorf("store_read span has no duration: %+v", sp)
			}
		}
	}
	if admitN == 0 {
		t.Fatal("no engine_admit span")
	}
	if services == 0 {
		t.Fatal("no engine_service spans")
	}
	if svcN+int64(d.Dropped) < admitN {
		// Every assignment retires through some service span (modulo slab
		// overflow, counted in Dropped).
		t.Fatalf("service spans retire %d units (+%d dropped), admit fanned out %d", svcN, d.Dropped, admitN)
	}
	if reads == 0 {
		t.Fatal("no store_read spans (fixture should miss cache at least once)")
	}
	if d.CacheHits+d.CacheMisses != int64(services) {
		t.Fatalf("cache outcomes %d+%d, want one per service (%d)",
			d.CacheHits, d.CacheMisses, services)
	}
}

// TestSchedulerTracedCancelSpan: cancelling a traced query records an
// error-annotated cancel span and releases the traced counter.
func TestSchedulerTracedCancelSpan(t *testing.T) {
	part, jobs := fixture(t)
	cfg, clk := NewVirtual(part, 0.5, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(trace.Config{Now: clk.Now})
	job := jobs[0]
	job.Trace = rec.Start("core-test", job.ID)
	now := clk.Now()
	if r := s.admit(job, now); r != nil {
		t.Fatal("fixture job completed on admit")
	}
	if r := s.cancel(job.ID, now.Add(time.Second)); r == nil || !r.Cancelled {
		t.Fatalf("cancel = %+v", r)
	}
	if s.traced != 0 {
		t.Fatalf("traced counter = %d after cancel, want 0", s.traced)
	}
	d := rec.Finish(job.Trace)
	found := false
	for _, sp := range d.Spans {
		if sp.Stage == trace.StageCancel && sp.Err != "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no error-annotated cancel span in %+v", d.Spans)
	}
}

// TestRunPickExemplar: with engine metrics registered and a traced job in
// the replay, the pick-latency histogram carries at least one exemplar
// linking to that job's trace ID.
func TestRunPickExemplar(t *testing.T) {
	part, jobs := fixture(t)
	cfg, clk := NewVirtual(part, 0.25, false)
	reg := metric.NewRegistry()
	cfg.Metrics = NewEngineMetrics(reg)

	rec := trace.New(trace.Config{Now: clk.Now})
	run := append([]Job(nil), jobs[:8]...)
	tr := rec.Start("core-test", run[0].ID)
	run[0].Trace = tr

	if _, _, err := Run(cfg, run, satOffsets(len(run))); err != nil {
		t.Fatal(err)
	}
	rec.Finish(tr)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	marker := `# {trace_id="` + tr.ID().String() + `"}`
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "liferaft_engine_pick_seconds_bucket") && strings.Contains(line, marker) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no pick exemplar for trace %s in scrape:\n%s", tr.ID(), out)
	}
}

// TestUntracedJobUnchanged: replaying without traces must leave results
// and schedule statistics identical to the same replay with one traced
// job — tracing observes the schedule, it must not perturb it.
func TestUntracedJobUnchanged(t *testing.T) {
	part, jobs := fixture(t)
	run := func(withTrace bool) ([]Result, RunStats) {
		cfg, clk := NewVirtual(part, 0.25, true)
		js := append([]Job(nil), jobs[:10]...)
		var rec *trace.Recorder
		if withTrace {
			rec = trace.New(trace.Config{Now: clk.Now})
			for i := range js {
				js[i].Trace = rec.Start("core-test", js[i].ID)
			}
		}
		res, stats := mustRun(t, cfg, js, satOffsets(len(js)))
		return res, stats
	}
	resA, statsA := run(false)
	resB, statsB := run(true)
	if len(resA) != len(resB) {
		t.Fatalf("result counts differ: %d vs %d", len(resA), len(resB))
	}
	for i := range resA {
		if resA[i].QueryID != resB[i].QueryID || resA[i].Matches != resB[i].Matches ||
			!resA[i].Completed.Equal(resB[i].Completed) {
			t.Fatalf("result %d differs: %+v vs %+v", i, resA[i], resB[i])
		}
	}
	if statsA.BucketsServed != statsB.BucketsServed || statsA.ScanServices != statsB.ScanServices ||
		statsA.IndexServices != statsB.IndexServices {
		t.Fatalf("schedule stats differ: %+v vs %+v", statsA, statsB)
	}
}

package core

import (
	"strconv"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/metric"
)

// EngineMetrics holds the engine-side metric families, labeled by shard.
// Construct one per registry (NewEngineMetrics) and hand it to Config.
// Metrics; the engine resolves per-shard handles once at scheduler
// construction, so the hot scheduling path touches only atomics and the
// zero-alloc service loop stays zero-alloc (instrumentation is skipped
// entirely when Config.Metrics is nil, the default).
type EngineMetrics struct {
	pick      *metric.HistogramVec
	services  *metric.CounterVec
	completed *metric.CounterVec
	vqps      *metric.GaugeVec
	cacheHits *metric.CounterVec
	cacheMiss *metric.CounterVec
	readSec   *metric.HistogramVec
	readErrs  *metric.CounterVec

	// Per-tier cache families ({shard, tier}; tier is "ram" or "disk")
	// plus the prefetcher's outcome counters. The ram series count the
	// engine's bucket cache, the disk series the shared disktier; both
	// stay at zero on simulated backends.
	tierHits  *metric.CounterVec
	tierMiss  *metric.CounterVec
	tierEvict *metric.CounterVec
	tierBytes *metric.GaugeVec
	prefetch  *metric.CounterVec
}

// NewEngineMetrics registers the engine metric families on reg. Call at
// most once per registry (duplicate registration panics, like a duplicate
// flag).
func NewEngineMetrics(reg *metric.Registry) *EngineMetrics {
	shard := []string{"shard"}
	return &EngineMetrics{
		pick: reg.NewHistogramVec("liferaft_engine_pick_seconds",
			"Wall-clock latency of one scheduler pick (bucket selection).",
			shard, metric.ExpBuckets(5e-7, 4, 10), metric.VecOpts{}),
		services: reg.NewCounterVec("liferaft_engine_services_total",
			"Bucket services by join strategy (scan reads the bucket, index probes it).",
			[]string{"shard", "strategy"}, metric.VecOpts{}),
		completed: reg.NewCounterVec("liferaft_engine_completed_total",
			"Queries completed by the engine (cancelled queries excluded).",
			shard, metric.VecOpts{}),
		vqps: reg.NewGaugeVec("liferaft_engine_vqps",
			"Completed queries per second of engine clock time since start.",
			shard, metric.VecOpts{}),
		cacheHits: reg.NewCounterVec("liferaft_engine_cache_hits_total",
			"Bucket services that found the bucket in the cache.",
			shard, metric.VecOpts{}),
		cacheMiss: reg.NewCounterVec("liferaft_engine_cache_misses_total",
			"Bucket services that missed the cache.",
			shard, metric.VecOpts{}),
		readSec: reg.NewHistogramVec("liferaft_store_read_seconds",
			"Store read latency by kind (scan = full bucket, probe = index lookups); modeled cost on the sim backend, measured on segment files.",
			[]string{"shard", "kind"}, metric.ExpBuckets(1e-5, 4, 10), metric.VecOpts{}),
		readErrs: reg.NewCounterVec("liferaft_store_read_errors_total",
			"Store read failures by kind, including checksum mismatches; the store fail-stops after counting.",
			[]string{"shard", "kind"}, metric.VecOpts{}),
		tierHits: reg.NewCounterVec("liferaft_cache_hits_total",
			"Bucket cache hits by tier (ram = in-process bucket cache, disk = persistent disktier).",
			[]string{"shard", "tier"}, metric.VecOpts{}),
		tierMiss: reg.NewCounterVec("liferaft_cache_misses_total",
			"Bucket cache misses by tier.",
			[]string{"shard", "tier"}, metric.VecOpts{}),
		tierEvict: reg.NewCounterVec("liferaft_cache_evictions_total",
			"Cache evictions by tier. Disk-tier evictions are tier-global and reported under shard 0.",
			[]string{"shard", "tier"}, metric.VecOpts{}),
		tierBytes: reg.NewGaugeVec("liferaft_cache_bytes",
			"Bytes resident per cache tier (ram approximates buckets x bucket size; disk is exact). Disk-tier bytes are tier-global, reported under shard 0.",
			[]string{"shard", "tier"}, metric.VecOpts{}),
		prefetch: reg.NewCounterVec("liferaft_prefetch_total",
			"Schedule-driven disk-tier prefetch outcomes: issued (promotion scheduled), hit (prefetched group served a read), wasted (evicted untouched). Tier-global, reported under shard 0.",
			[]string{"shard", "outcome"}, metric.VecOpts{}),
	}
}

// Shard resolves the per-shard handles for shard i (0 for the single-disk
// engine). The returned EngineObs implements bucket.Observer.
func (m *EngineMetrics) Shard(i int) *EngineObs {
	s := strconv.Itoa(i)
	return &EngineObs{
		pick:      m.pick.With(s),
		scanSvc:   m.services.With(s, "scan"),
		indexSvc:  m.services.With(s, "index"),
		completed: m.completed.With(s),
		vqps:      m.vqps.With(s),
		cacheHits: m.cacheHits.With(s),
		cacheMiss: m.cacheMiss.With(s),
		readScan:  m.readSec.With(s, string(bucket.ReadScan)),
		readProbe: m.readSec.With(s, string(bucket.ReadProbe)),
		errScan:   m.readErrs.With(s, string(bucket.ReadScan)),
		errProbe:  m.readErrs.With(s, string(bucket.ReadProbe)),

		ramHits:    m.tierHits.With(s, "ram"),
		ramMiss:    m.tierMiss.With(s, "ram"),
		ramEvict:   m.tierEvict.With(s, "ram"),
		ramBytes:   m.tierBytes.With(s, "ram"),
		diskHits:   m.tierHits.With(s, "disk"),
		diskMiss:   m.tierMiss.With(s, "disk"),
		diskEvict:  m.tierEvict.With(s, "disk"),
		diskBytes:  m.tierBytes.With(s, "disk"),
		prefIssued: m.prefetch.With(s, "issued"),
		prefHits:   m.prefetch.With(s, "hit"),
		prefWasted: m.prefetch.With(s, "wasted"),
	}
}

// EngineObs is one shard's resolved metric handles. All methods are cheap
// atomic updates safe from the shard's scheduling goroutine.
type EngineObs struct {
	pick      *metric.Histogram
	scanSvc   *metric.Counter
	indexSvc  *metric.Counter
	completed *metric.Counter
	vqps      *metric.Gauge
	cacheHits *metric.Counter
	cacheMiss *metric.Counter
	readScan  *metric.Histogram
	readProbe *metric.Histogram
	errScan   *metric.Counter
	errProbe  *metric.Counter

	ramHits    *metric.Counter
	ramMiss    *metric.Counter
	ramEvict   *metric.Counter
	ramBytes   *metric.Gauge
	diskHits   *metric.Counter
	diskMiss   *metric.Counter
	diskEvict  *metric.Counter
	diskBytes  *metric.Gauge
	prefIssued *metric.Counter
	prefHits   *metric.Counter
	prefWasted *metric.Counter
}

// ObserveRead implements bucket.Observer.
func (o *EngineObs) ObserveRead(kind bucket.ReadKind, elapsed time.Duration) {
	if kind == bucket.ReadProbe {
		o.readProbe.Observe(elapsed.Seconds())
		return
	}
	o.readScan.Observe(elapsed.Seconds())
}

// ObserveReadError implements bucket.Observer. The store fail-stops right
// after this call, so the counter is the last trace a corrupt segment
// leaves in a scrape before the panic.
func (o *EngineObs) ObserveReadError(kind bucket.ReadKind, err error) {
	if kind == bucket.ReadProbe {
		o.errProbe.Inc()
		return
	}
	o.errScan.Inc()
}

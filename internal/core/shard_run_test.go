package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/shard"
	"liferaft/internal/workload"
	"liferaft/internal/xmatch"
)

// The sharded fixture is the acceptance workload: a uniform (no hotspot)
// trace over exactly 32 equal buckets.
var (
	shardOnce sync.Once
	shardPart *bucket.Partition
	shardJobs []Job
)

func shardFixture(t *testing.T) (*bucket.Partition, []Job) {
	t.Helper()
	shardOnce.Do(func() {
		local, err := catalog.New(catalog.Config{
			Name: "sdss", N: 12800, Seed: 11, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
			Name: "twomass", Seed: 12, Fraction: 0.8,
			JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		shardPart, err = bucket.NewPartition(local, 400, 0) // 32 buckets
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.DefaultTraceConfig(13)
		cfg.NumQueries = 96
		cfg.HotFraction = 0 // uniform: no hotspots
		cfg.MinSelectivity, cfg.MaxSelectivity = 0.3, 1.0
		tr, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tr.Queries {
			objs := workload.Materialize(q, remote, cfg.Seed)
			shardJobs = append(shardJobs, Job{ID: q.ID, Objects: objs, Pred: q.Predicate()})
		}
	})
	return shardPart, shardJobs
}

func shardCfg(part *bucket.Partition, shards int, materialize bool) Config {
	cfg, _ := NewVirtual(part, 0.25, materialize)
	cfg.Shards = shards
	return cfg
}

func byQueryID(res []Result) map[uint64]Result {
	out := make(map[uint64]Result, len(res))
	for _, r := range res {
		out[r.QueryID] = r
	}
	return out
}

func TestShardsValidation(t *testing.T) {
	part, jobs := shardFixture(t)
	cfg := shardCfg(part, -1, false)
	if _, _, err := Run(cfg, jobs[:1], []time.Duration{0}); err == nil {
		t.Error("negative Shards should fail")
	}
	cfg = shardCfg(part, 2, false)
	if _, _, err := Run(cfg, jobs[:2], []time.Duration{0}); err == nil {
		t.Error("mismatched lengths should fail on the sharded path")
	}
	if _, _, err := Run(cfg, jobs[:1], []time.Duration{-time.Second}); err == nil {
		t.Error("negative offset should fail on the sharded path")
	}
}

// TestShardedOneShardMatchesLegacy runs the full sharded machinery with
// K=1 (one shard owning every bucket) and requires it to reproduce the
// legacy single-disk engine exactly: same per-query results, same
// aggregate statistics modulo the PerShard breakdown.
func TestShardedOneShardMatchesLegacy(t *testing.T) {
	part, jobs := shardFixture(t)
	offs := uniformOffsets(len(jobs), 500*time.Millisecond)

	legacyRes, legacyStats, err := runEngine(shardCfg(part, 0, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	shardedRes, shardedStats, err := runSharded(shardCfg(part, 1, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}

	if len(shardedStats.PerShard) != 1 {
		t.Fatalf("PerShard has %d entries, want 1", len(shardedStats.PerShard))
	}
	agg := shardedStats
	agg.PerShard = nil
	if !reflect.DeepEqual(agg, legacyStats) {
		t.Errorf("sharded K=1 stats diverge:\n sharded %+v\n legacy  %+v", agg, legacyStats)
	}

	// The legacy engine's result order within one service batch is map
	// order; compare per query.
	lm, sm := byQueryID(legacyRes), byQueryID(shardedRes)
	if len(lm) != len(sm) {
		t.Fatalf("%d sharded results for %d legacy", len(sm), len(lm))
	}
	for id, lr := range lm {
		sr, ok := sm[id]
		if !ok {
			t.Fatalf("query %d missing from sharded results", id)
		}
		if !reflect.DeepEqual(sr, lr) {
			t.Fatalf("query %d diverges:\n sharded %+v\n legacy  %+v", id, sr, lr)
		}
	}
}

// TestShardedConservation checks, for several K and both partitioners,
// that the sharded engine completes every query exactly once with the
// same total assignments and matches as the single-disk engine, and that
// the merged statistics are consistent with their per-shard breakdown.
func TestShardedConservation(t *testing.T) {
	part, jobs := shardFixture(t)
	offs := uniformOffsets(len(jobs), 200*time.Millisecond)
	_, legacyStats, err := Run(shardCfg(part, 1, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	legacyRes, _, err := Run(shardCfg(part, 1, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	lm := byQueryID(legacyRes)

	parts := []shard.Partitioner{shard.ByRange{}, shard.ByHTMHash{}}
	for _, p := range parts {
		for _, k := range []int{2, 3, 4, 8, 64} {
			cfg := shardCfg(part, k, true)
			cfg.ShardPartitioner = p
			res, stats, err := Run(cfg, jobs, offs)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(jobs) {
				t.Fatalf("%s k=%d: %d results for %d jobs", p.Name(), k, len(res), len(jobs))
			}
			if stats.Completed != len(jobs) {
				t.Fatalf("%s k=%d: stats.Completed %d", p.Name(), k, stats.Completed)
			}
			for _, r := range res {
				l := lm[r.QueryID]
				if r.Assignments != l.Assignments {
					t.Fatalf("%s k=%d q%d: %d assignments, legacy %d",
						p.Name(), k, r.QueryID, r.Assignments, l.Assignments)
				}
				if r.Matches != l.Matches {
					t.Fatalf("%s k=%d q%d: %d matches, legacy %d",
						p.Name(), k, r.QueryID, r.Matches, l.Matches)
				}
				if r.Completed.Before(r.Arrived) {
					t.Fatalf("%s k=%d q%d completed before arrival", p.Name(), k, r.QueryID)
				}
			}
			// Merged counters must equal the per-shard sums, and the
			// breakdown must cover every bucket and query exactly.
			if len(stats.PerShard) != k {
				t.Fatalf("%s k=%d: PerShard has %d entries", p.Name(), k, len(stats.PerShard))
			}
			var served, scans, indexes, buckets int64
			var makespan time.Duration
			for s, ss := range stats.PerShard {
				if ss.Shard != s {
					t.Fatalf("%s k=%d: PerShard[%d].Shard = %d", p.Name(), k, s, ss.Shard)
				}
				served += ss.Stats.BucketsServed
				scans += ss.Stats.ScanServices
				indexes += ss.Stats.IndexServices
				buckets += int64(ss.Buckets)
				if ss.Stats.Makespan > makespan {
					makespan = ss.Stats.Makespan
				}
			}
			if served != stats.BucketsServed || scans != stats.ScanServices || indexes != stats.IndexServices {
				t.Fatalf("%s k=%d: aggregate counters diverge from PerShard sums", p.Name(), k)
			}
			if buckets != int64(part.NumBuckets()) {
				t.Fatalf("%s k=%d: shards own %d buckets, partition has %d",
					p.Name(), k, buckets, part.NumBuckets())
			}
			if makespan != stats.Makespan {
				t.Fatalf("%s k=%d: makespan %v is not the slowest shard's %v",
					p.Name(), k, stats.Makespan, makespan)
			}
			// The same total work was done; only its distribution moved.
			if stats.ScanServices+stats.IndexServices != stats.BucketsServed {
				t.Fatalf("%s k=%d: services don't sum to buckets served", p.Name(), k)
			}
			if stats.Disk.Matches != legacyStats.Disk.Matches {
				t.Fatalf("%s k=%d: %d matches charged, legacy %d",
					p.Name(), k, stats.Disk.Matches, legacyStats.Disk.Matches)
			}
		}
	}
}

// TestShardedSingleShardQuery submits one query whose workload objects
// all land on shard 0 (the lowest-ordinal objects under a range split):
// it must complete correctly while every other shard stays idle.
func TestShardedSingleShardQuery(t *testing.T) {
	part, _ := shardFixture(t)
	cat := part.Catalog()
	var wos []xmatch.WorkloadObject
	for _, o := range cat.Objects(0, 32) {
		wos = append(wos, xmatch.NewWorkloadObject(1, o, geom.ArcsecToRad(5)))
	}
	job := Job{ID: 1, Objects: wos}
	cfg := shardCfg(part, 4, true)
	cfg.ShardPartitioner = shard.ByRange{}
	res, stats, err := Run(cfg, []Job{job}, []time.Duration{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Assignments == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if stats.PerShard[0].Stats.BucketsServed == 0 {
		t.Error("shard 0 serviced nothing")
	}
	for s := 1; s < 4; s++ {
		if ss := stats.PerShard[s]; ss.Stats.BucketsServed != 0 || ss.Jobs != 0 {
			t.Errorf("shard %d should be idle, got %+v", s, ss)
		}
	}
}

// TestShardedNoWorkQuery: a query with no workload objects completes on
// arrival through the sharded path, as it does on the single-disk one.
func TestShardedNoWorkQuery(t *testing.T) {
	part, jobs := shardFixture(t)
	empty := Job{ID: 999}
	mixed := append([]Job{empty}, jobs[:4]...)
	offs := uniformOffsets(len(mixed), time.Second)
	res, stats, err := Run(shardCfg(part, 4, false), mixed, offs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(mixed) || stats.Completed != len(mixed) {
		t.Fatalf("%d results, completed %d, want %d", len(res), stats.Completed, len(mixed))
	}
	r := byQueryID(res)[999]
	if !r.Completed.Equal(r.Arrived) {
		t.Errorf("empty query should complete on arrival, got %+v", r)
	}
}

// TestShardedThroughputScaling is the acceptance criterion: on the
// uniform 32-bucket trace, four shards must deliver at least twice the
// virtual-clock scan throughput of one.
func TestShardedThroughputScaling(t *testing.T) {
	part, jobs := shardFixture(t)
	// A saturating uniform stream: service demand far exceeds the
	// arrival interval, so makespan is disk-bound, not arrival-bound.
	offs := uniformOffsets(len(jobs), time.Millisecond)
	vqps := func(k int) float64 {
		t.Helper()
		_, stats, err := Run(shardCfg(part, k, false), jobs, offs)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Throughput()
	}
	q1, q4 := vqps(1), vqps(4)
	if q4 < 2*q1 {
		t.Errorf("shards=4 throughput %.3f/s < 2x shards=1 %.3f/s", q4, q1)
	}
	t.Logf("virtual throughput: shards=1 %.3f/s, shards=4 %.3f/s (%.2fx)", q1, q4, q4/q1)
}

// TestShardedRunDeterministic: two identical sharded runs must agree
// exactly (worker goroutines may interleave, but each shard's virtual
// schedule and the merge are deterministic).
func TestShardedRunDeterministic(t *testing.T) {
	part, jobs := shardFixture(t)
	offs := uniformOffsets(len(jobs), 300*time.Millisecond)
	resA, statsA, err := Run(shardCfg(part, 4, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	resB, statsB, err := Run(shardCfg(part, 4, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(statsA, statsB) {
		t.Errorf("stats diverge across identical runs:\n a %+v\n b %+v", statsA, statsB)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Error("results diverge across identical runs")
	}
}

// TestLiveSharded drives the sharded live engine from concurrent
// submitters and checks merged delivery against the single-disk engine.
func TestLiveSharded(t *testing.T) {
	part, jobs := shardFixture(t)
	single, _, err := Run(shardCfg(part, 1, true), jobs, make([]time.Duration, len(jobs)))
	if err != nil {
		t.Fatal(err)
	}
	sm := byQueryID(single)

	cfg := shardCfg(part, 4, true)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetAlpha(0.5); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]Result, len(jobs))
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			ch, err := l.Submit(job)
			if err != nil {
				return
			}
			results[i] = <-ch
		}(i, job)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		want := sm[jobs[i].ID]
		if r.QueryID != jobs[i].ID {
			t.Fatalf("job %d: result for query %d", i, r.QueryID)
		}
		if r.Assignments != want.Assignments || r.Matches != want.Matches {
			t.Errorf("q%d: assignments/matches %d/%d, single-disk %d/%d",
				r.QueryID, r.Assignments, r.Matches, want.Assignments, want.Matches)
		}
	}
	stats, ok := l.Stats()
	if !ok {
		t.Fatal("no stats after Close")
	}
	if stats.Completed != len(jobs) {
		t.Errorf("completed %d, want %d", stats.Completed, len(jobs))
	}
	if len(stats.PerShard) != 4 {
		t.Errorf("PerShard has %d entries, want 4", len(stats.PerShard))
	}
	if _, err := l.Submit(jobs[0]); err != ErrClosed {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestShardedPairsMatchLegacy compares the materialized pair sets of a
// sharded run against the single-disk engine, pair by pair.
func TestShardedPairsMatchLegacy(t *testing.T) {
	part, jobs := shardFixture(t)
	offs := uniformOffsets(len(jobs), 400*time.Millisecond)
	legacy, _, err := Run(shardCfg(part, 1, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := Run(shardCfg(part, 4, true), jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	key := func(p xmatch.Pair) [3]uint64 { return [3]uint64{p.QueryID, p.Local.ID, p.Remote.ID} }
	sortPairs := func(ps []xmatch.Pair) [][3]uint64 {
		out := make([][3]uint64, len(ps))
		for i, p := range ps {
			out[i] = key(p)
		}
		sort.Slice(out, func(a, b int) bool {
			x, y := out[a], out[b]
			if x[0] != y[0] {
				return x[0] < y[0]
			}
			if x[1] != y[1] {
				return x[1] < y[1]
			}
			return x[2] < y[2]
		})
		return out
	}
	lm, sm := byQueryID(legacy), byQueryID(sharded)
	for id, lr := range lm {
		if !reflect.DeepEqual(sortPairs(lr.Pairs), sortPairs(sm[id].Pairs)) {
			t.Fatalf("query %d: pair sets diverge between sharded and single-disk", id)
		}
	}
}

// TestLiveShardedClockAdvances: the parent virtual clock must track the
// shard clocks while a sharded live engine runs — the Adaptive
// saturation estimator and empty-fan-out completion stamps read it — not
// stay frozen at the engine start until Close.
func TestLiveShardedClockAdvances(t *testing.T) {
	part, jobs := shardFixture(t)
	cfg := shardCfg(part, 2, false)
	start := cfg.Clock.Now()
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range jobs[:6] {
		ch, err := l.Submit(job)
		if err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	if !cfg.Clock.Now().After(start) {
		t.Error("parent clock frozen during sharded live run")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

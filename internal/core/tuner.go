package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"liferaft/internal/metrics"
)

// This file implements the workload-adaptive parameter selection of paper
// §4: trade-off curves between query throughput and response time are
// derived offline by replaying a representative workload at several α
// values and saturations; at runtime an arrival-rate estimate selects the
// α that minimizes response time while keeping throughput within a user
// tolerance of the maximum.

// CurveRunner executes the representative workload at one α and reports
// the results (typically a closure over Run and a generated trace).
type CurveRunner func(alpha float64) ([]Result, RunStats, error)

// DefaultAlphas are the bias settings the paper sweeps.
var DefaultAlphas = []float64{0, 0.25, 0.5, 0.75, 1.0}

// BuildCurve measures one trade-off curve by running the workload at each
// α.
func BuildCurve(alphas []float64, run CurveRunner) (metrics.Curve, error) {
	if len(alphas) == 0 {
		alphas = DefaultAlphas
	}
	curve := make(metrics.Curve, 0, len(alphas))
	for _, a := range alphas {
		results, stats, err := run(a)
		if err != nil {
			return nil, fmt.Errorf("core: curve point α=%v: %w", a, err)
		}
		resp := make([]float64, len(results))
		for i, r := range results {
			resp[i] = r.ResponseTime().Seconds()
		}
		curve = append(curve, metrics.TradeoffPoint{
			Alpha:      a,
			Throughput: stats.Throughput(),
			RespTime:   metrics.Summarize(resp).Mean,
		})
	}
	return curve, nil
}

// Tuner stores trade-off curves per saturation and answers "which α should
// the scheduler use right now". It is safe for concurrent use.
type Tuner struct {
	// Tolerance is the permitted throughput degradation (paper §4 uses
	// 20%: "average response time is minimized without sacrificing more
	// than 20% of maximum achievable throughput").
	Tolerance float64

	mu      sync.Mutex
	entries []tunerEntry
}

type tunerEntry struct {
	saturation float64
	curve      metrics.Curve
}

// NewTuner returns a tuner with the given throughput tolerance.
func NewTuner(tolerance float64) (*Tuner, error) {
	if tolerance < 0 || tolerance > 1 {
		return nil, fmt.Errorf("core: tolerance %v out of [0,1]", tolerance)
	}
	return &Tuner{Tolerance: tolerance}, nil
}

// AddCurve registers the measured curve for a saturation (queries/sec).
func (t *Tuner) AddCurve(saturation float64, curve metrics.Curve) error {
	if saturation <= 0 {
		return fmt.Errorf("core: non-positive saturation %v", saturation)
	}
	if len(curve) == 0 {
		return fmt.Errorf("core: empty curve")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = append(t.entries, tunerEntry{saturation, curve})
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].saturation < t.entries[j].saturation })
	return nil
}

// Alpha returns the bias for the given observed saturation: the curve of
// the nearest calibrated saturation is consulted with the tuner's
// tolerance. At low saturation this selects large α (arrival order, low
// response time); at high saturation smaller α (contention-driven
// batching) as Figure 4 prescribes.
func (t *Tuner) Alpha(saturation float64) (float64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) == 0 {
		return 0, fmt.Errorf("core: tuner has no curves")
	}
	best, bestDist := t.entries[0], math.Inf(1)
	for _, e := range t.entries {
		// Distance in log space: saturations spread geometrically.
		d := math.Abs(math.Log(e.saturation) - math.Log(math.Max(saturation, 1e-9)))
		if d < bestDist {
			best, bestDist = e, d
		}
	}
	p, err := best.curve.PickAlpha(t.Tolerance)
	if err != nil {
		return 0, err
	}
	return p.Alpha, nil
}

// SaturationEstimator tracks the query arrival rate with an exponentially
// weighted moving average, giving Live deployments the real-time
// saturation signal the tuner needs. It is safe for concurrent use.
type SaturationEstimator struct {
	halfLife time.Duration

	mu    sync.Mutex
	rate  float64 // queries per second
	last  time.Time
	prime bool
}

// NewSaturationEstimator builds an estimator whose memory decays with the
// given half-life (e.g. 5 minutes).
func NewSaturationEstimator(halfLife time.Duration) (*SaturationEstimator, error) {
	if halfLife <= 0 {
		return nil, fmt.Errorf("core: half-life must be positive")
	}
	return &SaturationEstimator{halfLife: halfLife}, nil
}

// Observe records one query arrival at instant now.
func (e *SaturationEstimator) Observe(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.prime {
		e.prime = true
		e.last = now
		return
	}
	dt := now.Sub(e.last).Seconds()
	e.last = now
	if dt <= 0 {
		// Coincident arrivals: treat as an infinitesimally small gap by
		// nudging the rate upward.
		e.rate *= 1.1
		return
	}
	inst := 1 / dt
	w := math.Exp(-dt * math.Ln2 / e.halfLife.Seconds())
	e.rate = w*e.rate + (1-w)*inst
}

// Rate returns the current arrival-rate estimate in queries per second.
func (e *SaturationEstimator) Rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rate
}

package core

import (
	"math"
	"testing"
	"time"

	"liferaft/internal/simclock"
	"liferaft/internal/xmatch"
)

// Unit tests for workload-manager internals: the age dominance frontier,
// the Eq. 1 metric, and policy selection mechanics.

func TestAgeFrontierDominance(t *testing.T) {
	q := &bqueue{idx: 0}
	base := simclock.Epoch
	// Uniform weights: only the first (oldest) point survives.
	for i := 0; i < 10; i++ {
		q.push(item{arrived: base.Add(time.Duration(i) * time.Second), ageWeight: 1})
	}
	if len(q.ageFrontier) != 1 {
		t.Fatalf("uniform-weight frontier has %d points, want 1", len(q.ageFrontier))
	}
	if !q.ageFrontier[0].arrived.Equal(base) {
		t.Fatal("frontier lost the oldest item")
	}
	// A later item with a HIGHER weight must join the frontier: it can
	// overtake the older, lower-weight point as time passes.
	q.push(item{arrived: base.Add(20 * time.Second), ageWeight: 5})
	if len(q.ageFrontier) != 2 {
		t.Fatalf("frontier has %d points after high-weight push, want 2", len(q.ageFrontier))
	}
	// A later item with a lower weight is dominated.
	q.push(item{arrived: base.Add(30 * time.Second), ageWeight: 2})
	if len(q.ageFrontier) != 2 {
		t.Fatalf("dominated push grew the frontier to %d", len(q.ageFrontier))
	}
}

func TestAgeFrontierMatchesBruteForce(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	cfg.AgeDepreciationGamma = 3
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := simclock.Epoch
	for i, j := range jobs[:20] {
		s.admit(j, base.Add(time.Duration(i)*time.Second))
	}
	now := base.Add(time.Hour)
	for _, q := range s.queues {
		got := s.age(q, now)
		want := 0.0
		for _, it := range q.items {
			if a := now.Sub(it.arrived).Seconds() * it.ageWeight; a > want {
				want = a
			}
		}
		if got != want {
			t.Fatalf("bucket %d: frontier age %v != brute force %v", q.idx, got, want)
		}
	}
}

func TestAgeWeightMonotone(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	cfg.AgeDepreciationGamma = 2
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger queries age more slowly; weight 1 for zero objects.
	if s.ageWeight(0) != 1 {
		t.Errorf("weight(0) = %v", s.ageWeight(0))
	}
	prev := s.ageWeight(1)
	for _, n := range []int{10, 100, 1000} {
		w := s.ageWeight(n)
		if w >= prev {
			t.Errorf("weight(%d) = %v not < weight of smaller query %v", n, w, prev)
		}
		prev = w
	}
	// γ=0 disables depreciation entirely.
	cfg2, _ := NewVirtual(part, 0.5, false)
	s2, _ := newScheduler(cfg2)
	if s2.ageWeight(1_000_000) != 1 {
		t.Error("γ=0 should not depreciate")
	}
}

func TestWorkloadThroughputEquation(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := &bqueue{idx: 0}
	if s.workloadThroughput(q) != 0 {
		t.Error("empty queue should have zero throughput")
	}
	for i := 0; i < 100; i++ {
		q.push(item{ageWeight: 1})
	}
	// Out of core: Ut = n / (Tb + Tm*n).
	want := 100 / (s.tbSec + s.tmSec*100)
	if got := s.workloadThroughput(q); got != want {
		t.Errorf("Ut = %v, want %v", got, want)
	}
	// Cached: Ut = n / (Tm*n) = 1/Tm regardless of n.
	s.cache.Put(0, nil)
	wantCached := 100 / (s.tmSec * 100)
	if got := s.workloadThroughput(q); math.Abs(got-wantCached) > 1e-9*wantCached {
		t.Errorf("cached Ut = %v, want %v", got, wantCached)
	}
}

func TestLongerQueueWinsWhenGreedy(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two synthetic queues: bucket 3 short, bucket 7 long.
	mk := func(s *scheduler, idx, n int, arrived time.Time) {
		for i := 0; i < n; i++ {
			s.pushItem(idx, item{arrived: arrived, ageWeight: 1})
		}
	}
	mk(s, 3, 5, simclock.Epoch)
	mk(s, 7, 500, simclock.Epoch)
	idx, ok := s.pick(simclock.Epoch.Add(time.Minute))
	if !ok || idx != 7 {
		t.Errorf("greedy pick = %d, want the contentious bucket 7", idx)
	}
	// With α=1, the older queue wins even if shorter.
	cfg2, _ := NewVirtual(part, 1, false)
	s2, err := newScheduler(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	mk(s2, 3, 5, simclock.Epoch.Add(-time.Hour))
	mk(s2, 7, 500, simclock.Epoch)
	idx, ok = s2.pick(simclock.Epoch.Add(time.Minute))
	if !ok || idx != 3 {
		t.Errorf("aged pick = %d, want the older bucket 3", idx)
	}
}

func TestCachedBucketPreferredAtAlphaZero(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(idx, n int) {
		for i := 0; i < n; i++ {
			s.pushItem(idx, item{arrived: simclock.Epoch, ageWeight: 1})
		}
	}
	mk(1, 50)  // cached below
	mk(2, 400) // longer but out of core
	s.cachePut(1, nil)
	// Eq. 1: a cached bucket's Ut = 1/Tm dwarfs any out-of-core queue
	// (Tb dominates), so the scheduler "favors buckets in memory" (§3.2).
	idx, ok := s.pick(simclock.Epoch.Add(time.Second))
	if !ok || idx != 1 {
		t.Errorf("pick = %d, want cached bucket 1", idx)
	}
}

func TestLeastSharedPicksSmallest(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	cfg.Policy = PolicyLeastShared
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for idx, n := range map[int]int{2: 30, 5: 3, 9: 300} {
		for i := 0; i < n; i++ {
			s.pushItem(idx, item{ageWeight: 1})
		}
	}
	idx, ok := s.pick(simclock.Epoch)
	if !ok || idx != 5 {
		t.Errorf("LSF pick = %d, want 5", idx)
	}
	if _, ok := s.pickLeastSharedIndexed(); !ok {
		t.Error("ok should be true with queues")
	}
	if _, ok := s.pickLeastSharedScan(); !ok {
		t.Error("scan reference should agree there is work")
	}
	empty, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.pick(simclock.Epoch); ok {
		t.Error("empty scheduler should report no work")
	}
}

func TestSpillEverythingSpilledStops(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	cfg.WorkloadMemoryCap = 1 // pathologically tight
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.admit(jobs[0], simclock.Epoch)
	s.admit(jobs[1], simclock.Epoch) // second admit spills over already-spilled queues
	// maybeSpill must terminate even when every queue is spilled.
	if s.stats.SpilledObjects == 0 {
		t.Error("expected spills under a cap of 1")
	}
}

func TestStepOnEmptySchedulerReportsNoWork(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.step(simclock.Epoch); ok {
		t.Error("step with no queues should report no work")
	}
	if s.pendingWork() {
		t.Error("pendingWork on empty scheduler")
	}
}

func TestRoundRobinCyclesInOrder(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	cfg.Policy = PolicyRoundRobin
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{10, 3, 7} {
		s.pushItem(idx, item{wo: xmatch.WorkloadObject{QueryID: 999}, ageWeight: 1})
	}
	s.queries[999] = &queryState{remaining: 3, result: Result{QueryID: 999}}
	// RR visits in ascending index order regardless of insertion order.
	var order []int
	for i := 0; i < 3; i++ {
		idx, ok := s.pick(simclock.Epoch)
		if !ok {
			t.Fatal("ran out")
		}
		order = append(order, idx)
		s.serviceBucket(idx, simclock.Epoch)
	}
	if order[0] != 3 || order[1] != 7 || order[2] != 10 {
		t.Errorf("RR order = %v, want [3 7 10]", order)
	}
	if s.pendingWork() {
		t.Error("all queues serviced but pendingWork still true")
	}
}

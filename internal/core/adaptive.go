package core

import (
	"fmt"
	"sync"
)

// Adaptive closes the §4 loop around a Live engine: every submitted query
// updates a saturation estimate; whenever the estimate has drifted enough,
// the tuner's trade-off curves select a new α and the engine is retuned.
// "LifeRaft will adaptively tune α based on workload saturation" (§3.3) —
// this is that component.
//
// The trade-off curves are derived offline (BuildCurve over a
// representative trace at several saturations, as the paper prescribes)
// and registered on the Tuner before serving.
type Adaptive struct {
	live  *Live
	tuner *Tuner
	est   *SaturationEstimator

	mu        sync.Mutex
	current   float64
	retunes   int
	threshold float64
}

// NewAdaptive wraps a live engine. threshold is the relative change in
// estimated saturation that triggers a retune (e.g. 0.25 = 25%); the
// initial α is taken from the tuner at zero load.
func NewAdaptive(live *Live, tuner *Tuner, est *SaturationEstimator, threshold float64) (*Adaptive, error) {
	if live == nil || tuner == nil || est == nil {
		return nil, fmt.Errorf("core: NewAdaptive requires live, tuner, and estimator")
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("core: retune threshold must be positive")
	}
	a := &Adaptive{live: live, tuner: tuner, est: est, threshold: threshold, current: -1}
	return a, nil
}

// Submit forwards to the live engine after updating the saturation
// estimate and, if warranted, the engine's α.
func (a *Adaptive) Submit(job Job) (<-chan Result, error) {
	a.est.Observe(a.live.Clock().Now())
	a.maybeRetune()
	return a.live.Submit(job)
}

// maybeRetune consults the tuner when the saturation estimate has moved by
// more than the threshold since the last retune.
func (a *Adaptive) maybeRetune() {
	rate := a.est.Rate()
	if rate <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.current > 0 {
		rel := rate / a.current
		if rel < 1+a.threshold && rel > 1/(1+a.threshold) {
			return // within the dead band
		}
	}
	alpha, err := a.tuner.Alpha(rate)
	if err != nil {
		return // no curves registered yet: keep the engine's α
	}
	//lifevet:allow lockdiscipline -- SetAlpha's inbox send bounds in one engine step; a.mu only serializes retune decisions and has no reader on the query path
	if a.live.SetAlpha(alpha) == nil {
		a.current = rate
		a.retunes++
	}
}

// Retunes reports how many times the α was changed.
func (a *Adaptive) Retunes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retunes
}

// Close closes the underlying engine.
func (a *Adaptive) Close() error { return a.live.Close() }

package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"liferaft/internal/shard"
	"liferaft/internal/simclock"
)

// runSharded replays a trace on the sharded engine: the bucket space is
// split across cfg.Shards shards (cfg.ShardPartitioner), each shard gets
// its own forked clock, disk, bucket cache, and workload queues, and a
// worker goroutine per shard services that shard's local
// aged-workload-throughput schedule. The coordinator fans each job's
// workload objects out to the shards owning the buckets they overlap,
// tracks per-query completion across shards (a query completes when its
// last shard does), and merges per-shard RunStats into one aggregate with
// a PerShard breakdown.
//
// On a virtual parent clock each shard charges costs to its own forked
// clock, so K shards replaying the same work finish in ~1/K the virtual
// time instead of serializing on one modeled disk; the parent clock is
// advanced to the latest shard finish before returning. On the real clock
// the shard workers genuinely run in parallel.
func runSharded(cfg Config, jobs []Job, offsets []time.Duration) ([]Result, RunStats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, RunStats{}, err
	}
	if len(jobs) != len(offsets) {
		return nil, RunStats{}, fmt.Errorf("core: %d jobs but %d offsets", len(jobs), len(offsets))
	}
	for i, off := range offsets {
		if off < 0 {
			return nil, RunStats{}, fmt.Errorf("core: negative offset for job %d", i)
		}
	}
	k := cfg.Shards
	m, err := shard.NewMap(cfg.Store.Partition(), k, cfg.ShardPartitioner)
	if err != nil {
		return nil, RunStats{}, err
	}
	start := cfg.Clock.Now()
	shardCfgs, err := forkConfigs(cfg, m)
	if err != nil {
		return nil, RunStats{}, err
	}
	defer closeForked(shardCfgs)

	// Fan the jobs out: each shard replays the sub-trace of jobs that
	// have work on it, at the original arrival offsets.
	coord := shard.NewCoordinator()
	subJobs := make([][]Job, k)
	subOffs := make([][]time.Duration, k)
	var results []Result
	for i, j := range jobs {
		fan := m.Fanout(j.Objects)
		width := 0
		for s := 0; s < k; s++ {
			if len(fan[s]) == 0 {
				continue
			}
			subJobs[s] = append(subJobs[s], Job{ID: j.ID, Objects: fan[s], Pred: j.Pred, Trace: j.Trace})
			subOffs[s] = append(subOffs[s], offsets[i])
			width++
		}
		if width == 0 {
			// No bucket overlaps anywhere: complete on arrival, as the
			// single-disk engine does.
			at := start.Add(offsets[i])
			results = append(results, Result{QueryID: j.ID, Arrived: at, Completed: at})
			continue
		}
		if err := coord.Register(j.ID, width); err != nil {
			return nil, RunStats{}, err
		}
	}

	// One worker per shard.
	type shardOut struct {
		res   []Result
		stats RunStats
		err   error
	}
	outs := make([]shardOut, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, stats, err := runEngine(shardCfgs[s], subJobs[s], subOffs[s])
			outs[s] = shardOut{res: res, stats: stats, err: err}
		}(s)
	}
	wg.Wait()
	for s := 0; s < k; s++ {
		if outs[s].err != nil {
			return nil, RunStats{}, fmt.Errorf("core: shard %d: %w", s, outs[s].err)
		}
	}

	// Merge per-query results: completion is the latest shard's, counts
	// sum, pairs concatenate in shard order (deterministic).
	partial := make(map[uint64]*Result)
	for s := 0; s < k; s++ {
		for _, r := range outs[s].res {
			mr := partial[r.QueryID]
			if mr == nil {
				r := r
				partial[r.QueryID] = &r
				mr = &r
			} else {
				mr.absorb(r)
			}
			if done, latest := coord.Complete(r.QueryID, r.Completed); done {
				mr.Completed = latest
				results = append(results, *mr)
				delete(partial, r.QueryID)
			}
		}
	}
	if n := coord.Pending(); n != 0 || len(partial) != 0 {
		return nil, RunStats{}, fmt.Errorf("core: %d queries never completed across shards", n+len(partial))
	}
	// Single-disk Run returns completion order; reproduce it across
	// shards (ties broken by arrival, then query ID, for determinism).
	sort.SliceStable(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if !ra.Completed.Equal(rb.Completed) {
			return ra.Completed.Before(rb.Completed)
		}
		if !ra.Arrived.Equal(rb.Arrived) {
			return ra.Arrived.Before(rb.Arrived)
		}
		return ra.QueryID < rb.QueryID
	})

	stats := mergeShardStats(m, func(s int) (RunStats, int) { return outs[s].stats, len(subJobs[s]) })
	stats.Completed = len(results)
	// The parent clock adopts the latest shard clock: the sharded
	// makespan is the slowest shard's, not the sum.
	simclock.Join(cfg.Clock, start.Add(stats.Makespan))
	return results, stats, nil
}

// forkConfigs builds the per-shard engine configs: each shard forks the
// parent clock (independent virtual time) and the template disk, rebinds
// the store to its own disk, gets its own bucket cache (newScheduler
// constructs it per config), and admits only the buckets it owns. A
// file-backed store is forked per shard too — every shard opens its own
// segment set, so concurrent shard scans never share file descriptors.
// The caller owns the forked stores and must close them (closeForked)
// when the shard engines are done.
func forkConfigs(cfg Config, m *shard.Map) ([]Config, error) {
	shardCfgs := make([]Config, m.Shards())
	for s := 0; s < m.Shards(); s++ {
		s := s
		sc := cfg
		sc.Shards = 1
		sc.ShardPartitioner = nil
		sc.Clock = simclock.Fork(cfg.Clock)
		sc.Disk = cfg.Disk.Fork(sc.Clock)
		st, err := cfg.Store.Fork(sc.Disk)
		if err != nil {
			closeForked(shardCfgs[:s])
			return nil, fmt.Errorf("core: forking store for shard %d: %w", s, err)
		}
		sc.Store = st
		sc.ownsBucket = func(b int) bool { return m.Owner(b) == s }
		sc.shardIndex = s
		shardCfgs[s] = sc
	}
	return shardCfgs, nil
}

// closeForked releases the per-shard forked stores (segment sets opened
// by forkConfigs); the template store stays with its owner.
func closeForked(shardCfgs []Config) {
	for _, sc := range shardCfgs {
		if sc.Store != nil {
			sc.Store.Close()
		}
	}
}

// mergeShardStats merges per-shard statistics into the aggregate view:
// counters sum, disk and cache stats sum, and Makespan is the latest
// shard finish. Completed is left for the caller (it counts merged
// queries, not per-shard completions).
func mergeShardStats(m *shard.Map, get func(s int) (RunStats, int)) RunStats {
	var agg RunStats
	agg.PerShard = make([]ShardStats, m.Shards())
	for s := 0; s < m.Shards(); s++ {
		st, jobs := get(s)
		agg.PerShard[s] = ShardStats{Shard: s, Buckets: m.Buckets(s), Jobs: jobs, Stats: st}
		agg.BucketsServed += st.BucketsServed
		agg.ScanServices += st.ScanServices
		agg.IndexServices += st.IndexServices
		agg.SpilledObjects += st.SpilledObjects
		agg.SpillFetches += st.SpillFetches
		// Per-shard cancellation counts can overstate the merged view (one
		// query cancelled on several shards); the sharded Live engine
		// overwrites Cancelled with the merged query count after this.
		agg.Cancelled += st.Cancelled
		agg.CancelledObjects += st.CancelledObjects
		agg.Disk = agg.Disk.Add(st.Disk)
		agg.Cache = agg.Cache.Add(st.Cache)
		if st.Makespan > agg.Makespan {
			agg.Makespan = st.Makespan
		}
	}
	return agg
}

package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/catalog"
	"liferaft/internal/disk"
	"liferaft/internal/geom"
	"liferaft/internal/metrics"
	"liferaft/internal/simclock"
	"liferaft/internal/workload"
)

// The test fixture builds one small archive, partition, and query trace,
// shared across tests (construction is the expensive part).
var (
	fixOnce sync.Once
	fixPart *bucket.Partition
	fixJobs []Job
)

func fixture(t *testing.T) (*bucket.Partition, []Job) {
	t.Helper()
	fixOnce.Do(func() {
		local, err := catalog.New(catalog.Config{
			Name: "sdss", N: 60000, Seed: 1, GenLevel: 4, CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The remote archive re-observes the same sky (see NewDerived):
		// cross-matches only exist between correlated catalogs.
		remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
			Name: "twomass", Seed: 2, Fraction: 0.8,
			JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fixPart, err = bucket.NewPartition(local, 300, 0) // 200 buckets
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.DefaultTraceConfig(3)
		cfg.NumQueries = 120
		cfg.MinSelectivity, cfg.MaxSelectivity = 0.2, 1.0
		tr, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tr.Queries {
			objs := workload.Materialize(q, remote, cfg.Seed)
			fixJobs = append(fixJobs, Job{ID: q.ID, Objects: objs, Pred: q.Predicate()})
		}
	})
	return fixPart, fixJobs
}

// satOffsets returns arrivals fast enough to saturate the engine (service
// demand per query far exceeds the interval), the regime of Figure 7.
func satOffsets(n int) []time.Duration { return uniformOffsets(n, 100*time.Millisecond) }

func uniformOffsets(n int, interval time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * interval
	}
	return out
}

func mustRun(t *testing.T, cfg Config, jobs []Job, offs []time.Duration) ([]Result, RunStats) {
	t.Helper()
	res, stats, err := Run(cfg, jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	return res, stats
}

func TestConfigValidation(t *testing.T) {
	part, _ := fixture(t)
	good, _ := NewVirtual(part, 0.5, false)
	bad := []func(Config) Config{
		func(c Config) Config { c.Store = nil; return c },
		func(c Config) Config { c.Disk = nil; return c },
		func(c Config) Config { c.Clock = nil; return c },
		func(c Config) Config { c.Policy = "bogus"; return c },
		func(c Config) Config { c.Alpha = -0.1; return c },
		func(c Config) Config { c.Alpha = 1.1; return c },
		func(c Config) Config { c.HybridThreshold = 1.5; return c },
		func(c Config) Config { c.HybridThreshold = -0.5; return c },
		func(c Config) Config { c.AgeDepreciationGamma = -1; return c },
		func(c Config) Config { c.WorkloadMemoryCap = -1; return c },
		func(c Config) Config { c.CachePolicy = "bogus"; return c },
	}
	for i, mut := range bad {
		if _, _, err := Run(mut(good), nil, nil); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestRunEmptyAndMismatched(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	res, stats := mustRun(t, cfg, nil, nil)
	if len(res) != 0 || stats.Completed != 0 {
		t.Error("empty run should complete nothing")
	}
	if _, _, err := Run(cfg, make([]Job, 2), make([]time.Duration, 1)); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, _, err := Run(cfg, make([]Job, 1), []time.Duration{-time.Second}); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestConservation(t *testing.T) {
	part, jobs := fixture(t)
	for _, alpha := range []float64{0, 0.5, 1} {
		cfg, _ := NewVirtual(part, alpha, false)
		res, stats := mustRun(t, cfg, jobs, uniformOffsets(len(jobs), 2*time.Second))
		if len(res) != len(jobs) {
			t.Fatalf("α=%v: %d results for %d jobs", alpha, len(res), len(jobs))
		}
		seen := make(map[uint64]bool)
		for _, r := range res {
			if seen[r.QueryID] {
				t.Fatalf("α=%v: query %d completed twice", alpha, r.QueryID)
			}
			seen[r.QueryID] = true
			if r.Completed.Before(r.Arrived) {
				t.Fatalf("α=%v: query %d completed before arrival", alpha, r.QueryID)
			}
		}
		if stats.Completed != len(jobs) {
			t.Fatalf("α=%v: stats.Completed = %d", alpha, stats.Completed)
		}
		if stats.BucketsServed == 0 || stats.Makespan <= 0 {
			t.Fatalf("α=%v: empty stats: %+v", alpha, stats)
		}
		if stats.String() == "" {
			t.Error("stats String")
		}
	}
}

func TestDeterminism(t *testing.T) {
	part, jobs := fixture(t)
	run := func() ([]Result, RunStats) {
		cfg, _ := NewVirtual(part, 0.25, false)
		return mustRun(t, cfg, jobs, uniformOffsets(len(jobs), 3*time.Second))
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1.Makespan != s2.Makespan || s1.BucketsServed != s2.BucketsServed {
		t.Fatalf("stats differ across identical runs: %v vs %v", s1, s2)
	}
	for i := range r1 {
		if r1[i].QueryID != r2[i].QueryID || !r1[i].Completed.Equal(r2[i].Completed) {
			t.Fatalf("completion order differs at %d", i)
		}
	}
}

// resultsByQuery collects materialized pairs keyed by query for
// cross-policy comparison.
func pairKeySet(res []Result) map[uint64]map[[2]uint64]bool {
	out := make(map[uint64]map[[2]uint64]bool)
	for _, r := range res {
		m := make(map[[2]uint64]bool, len(r.Pairs))
		for _, p := range r.Pairs {
			m[[2]uint64{p.Local.ID, p.Remote.ID}] = true
		}
		out[r.QueryID] = m
	}
	return out
}

func samePairs(a, b map[uint64]map[[2]uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for q, pa := range a {
		pb, ok := b[q]
		if !ok || len(pa) != len(pb) {
			return false
		}
		for k := range pa {
			if !pb[k] {
				return false
			}
		}
	}
	return true
}

// TestSchedulingDoesNotChangeAnswers is the core correctness property:
// LifeRaft at any α, round-robin, NoShare, and IndexOnly must all produce
// exactly the same cross-match pairs for every query — scheduling may
// only change *when* work happens.
func TestSchedulingDoesNotChangeAnswers(t *testing.T) {
	part, jobs := fixture(t)
	sub := jobs[:40]
	offs := uniformOffsets(len(sub), time.Second)

	ref := func() map[uint64]map[[2]uint64]bool {
		cfg, _ := NewVirtual(part, 0, true)
		res, _, err := RunNoShare(cfg, sub, offs)
		if err != nil {
			t.Fatal(err)
		}
		return pairKeySet(res)
	}()

	total := 0
	for _, m := range ref {
		total += len(m)
	}
	if total == 0 {
		t.Fatal("reference run found no matches; fixture too sparse")
	}

	for _, alpha := range []float64{0, 0.5, 1} {
		cfg, _ := NewVirtual(part, alpha, true)
		res, _ := mustRun(t, cfg, sub, offs)
		if !samePairs(ref, pairKeySet(res)) {
			t.Errorf("α=%v: pair set differs from NoShare reference", alpha)
		}
	}
	cfgRR, _ := NewVirtual(part, 0, true)
	cfgRR.Policy = PolicyRoundRobin
	res, _ := mustRun(t, cfgRR, sub, offs)
	if !samePairs(ref, pairKeySet(res)) {
		t.Error("round-robin: pair set differs")
	}
	cfgIdx, _ := NewVirtual(part, 0, true)
	resIdx, _, err := RunIndexOnly(cfgIdx, sub, offs)
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(ref, pairKeySet(resIdx)) {
		t.Error("index-only: pair set differs")
	}
}

// TestThroughputOrdering reproduces the headline result (Figure 7a):
// greedy LifeRaft well above NoShare, and IndexOnly far below NoShare.
func TestThroughputOrdering(t *testing.T) {
	part, jobs := fixture(t)
	offs := satOffsets(len(jobs))

	tput := func(alpha float64) float64 {
		cfg, _ := NewVirtual(part, alpha, false)
		_, stats := mustRun(t, cfg, jobs, offs)
		return stats.Throughput()
	}
	greedy, aged := tput(0), tput(1)

	cfgNS, _ := NewVirtual(part, 0, false)
	_, nsStats, err := RunNoShare(cfgNS, jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	noShare := nsStats.Throughput()

	cfgIO, _ := NewVirtual(part, 0, false)
	_, ioStats, err := RunIndexOnly(cfgIO, jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	indexOnly := ioStats.Throughput()

	if greedy < 1.5*noShare {
		t.Errorf("greedy throughput %.4f not >= 1.5x NoShare %.4f (paper: 2x)", greedy, noShare)
	}
	if greedy < aged {
		t.Errorf("greedy %.4f below α=1 %.4f", greedy, aged)
	}
	if aged < noShare {
		t.Errorf("even α=1 should beat NoShare via sharing: %.4f vs %.4f", aged, noShare)
	}
	if indexOnly > noShare/2 {
		t.Errorf("index-only %.4f should be far below NoShare %.4f (paper: 7x)", indexOnly, noShare)
	}
}

// TestAgedBiasOrdersCompletions: α=1 must track arrival order much more
// closely than α=0 (rank correlation of completion vs arrival).
func TestAgedBiasOrdersCompletions(t *testing.T) {
	part, jobs := fixture(t)
	offs := satOffsets(len(jobs))
	corr := func(alpha float64) float64 {
		cfg, _ := NewVirtual(part, alpha, false)
		res, _ := mustRun(t, cfg, jobs, offs)
		// Spearman-style: correlation between completion rank and ID
		// (IDs arrive in order).
		n := float64(len(res))
		var sum float64
		for rank, r := range res {
			d := float64(rank) - float64(r.QueryID)
			sum += d * d
		}
		return 1 - 6*sum/(n*(n*n-1))
	}
	cGreedy, cAged := corr(0), corr(1)
	if cAged < 0.8 {
		t.Errorf("α=1 completion/arrival correlation %.2f, want >= 0.8", cAged)
	}
	if cAged <= cGreedy {
		t.Errorf("α=1 correlation %.2f should exceed α=0's %.2f", cAged, cGreedy)
	}
}

// TestResponseTimeShape reproduces Figure 7b's shape: NoShare has the
// worst mean response time; α=1 beats α=0.
func TestResponseTimeShape(t *testing.T) {
	part, jobs := fixture(t)
	offs := satOffsets(len(jobs))
	meanResp := func(res []Result) float64 {
		xs := make([]float64, len(res))
		for i, r := range res {
			xs[i] = r.ResponseTime().Seconds()
		}
		return metrics.Summarize(xs).Mean
	}
	cfg0, _ := NewVirtual(part, 0, false)
	res0, _ := mustRun(t, cfg0, jobs, offs)
	cfg1, _ := NewVirtual(part, 1, false)
	res1, _ := mustRun(t, cfg1, jobs, offs)
	cfgNS, _ := NewVirtual(part, 0, false)
	resNS, _, err := RunNoShare(cfgNS, jobs, offs)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1, rNS := meanResp(res0), meanResp(res1), meanResp(resNS)
	if rNS <= r0 || rNS <= r1 {
		t.Errorf("NoShare response %.1fs should be worst (α0=%.1fs α1=%.1fs)", rNS, r0, r1)
	}
	if r1 >= r0 {
		t.Errorf("α=1 response %.1fs should beat α=0's %.1fs", r1, r0)
	}
}

// TestCacheHitRateByAlpha reproduces the §6 observation: the greedy
// scheduler services far more requests from the cache than the pure
// age-based one (paper: 40% vs 7%).
func TestCacheHitRateByAlpha(t *testing.T) {
	part, jobs := fixture(t)
	offs := satOffsets(len(jobs))
	hitRate := func(alpha float64) float64 {
		cfg, _ := NewVirtual(part, alpha, false)
		_, stats := mustRun(t, cfg, jobs, offs)
		return stats.Cache.HitRate()
	}
	greedy, aged := hitRate(0), hitRate(1)
	if greedy <= aged {
		t.Errorf("greedy hit rate %.2f should exceed age-based %.2f", greedy, aged)
	}
}

func TestHybridJoinUsed(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	_, stats := mustRun(t, cfg, jobs, satOffsets(len(jobs)))
	if stats.ScanServices == 0 || stats.IndexServices == 0 {
		t.Errorf("heterogeneous workload should use both strategies: %+v", stats)
	}
	// Threshold 0 is replaced by the default, so index still appears;
	// a threshold close to 1 forces index for nearly everything.
	cfgIdx, _ := NewVirtual(part, 0.5, false)
	cfgIdx.HybridThreshold = 0.999
	_, statsIdx := mustRun(t, cfgIdx, jobs, satOffsets(len(jobs)))
	if statsIdx.IndexServices <= stats.IndexServices {
		t.Error("raising the threshold should increase index services")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	cfg.Policy = PolicyRoundRobin
	res, stats := mustRun(t, cfg, jobs, uniformOffsets(len(jobs), 2*time.Second))
	if len(res) != len(jobs) {
		t.Fatalf("RR completed %d of %d", len(res), len(jobs))
	}
	if stats.BucketsServed == 0 {
		t.Fatal("RR served nothing")
	}
}

func TestQoSDepreciationHelpsShortQueries(t *testing.T) {
	part, jobs := fixture(t)
	// Split fixture jobs into "long" (many objects) and "short" ones.
	var sizes []int
	for _, j := range jobs {
		sizes = append(sizes, len(j.Objects))
	}
	// Median split.
	med := median(sizes)
	shortMean := func(gamma float64) float64 {
		cfg, _ := NewVirtual(part, 0.75, false)
		cfg.AgeDepreciationGamma = gamma
		res, _ := mustRun(t, cfg, jobs, satOffsets(len(jobs)))
		var xs []float64
		for _, r := range res {
			if len(jobs[r.QueryID].Objects) <= med {
				xs = append(xs, r.ResponseTime().Seconds())
			}
		}
		return metrics.Summarize(xs).Mean
	}
	plain, qos := shortMean(0), shortMean(4)
	if qos >= plain {
		t.Errorf("age depreciation should cut short-query response: γ=4 %.1fs vs γ=0 %.1fs", qos, plain)
	}
}

func median(xs []int) int {
	ys := make([]int, len(xs))
	copy(ys, xs)
	for i := 1; i < len(ys); i++ {
		for j := i; j > 0 && ys[j-1] > ys[j]; j-- {
			ys[j-1], ys[j] = ys[j], ys[j-1]
		}
	}
	return ys[len(ys)/2]
}

func TestWorkloadOverflowSpills(t *testing.T) {
	part, jobs := fixture(t)
	sub := jobs[:60]
	offs := uniformOffsets(len(sub), time.Second)

	cfgRef, _ := NewVirtual(part, 0.5, true)
	resRef, _ := mustRun(t, cfgRef, sub, offs)

	cfgCap, _ := NewVirtual(part, 0.5, true)
	cfgCap.WorkloadMemoryCap = 500
	resCap, statsCap := mustRun(t, cfgCap, sub, offs)

	if statsCap.SpilledObjects == 0 || statsCap.SpillFetches == 0 {
		t.Fatalf("tight cap should spill: %+v", statsCap)
	}
	if !samePairs(pairKeySet(resRef), pairKeySet(resCap)) {
		t.Error("overflow changed query answers")
	}
}

func TestCachePolicies(t *testing.T) {
	part, jobs := fixture(t)
	for _, p := range []cache.PolicyName{cache.PolicyLRU, cache.PolicyClock, cache.PolicyTwoQueue} {
		cfg, _ := NewVirtual(part, 0, false)
		cfg.CachePolicy = p
		res, _ := mustRun(t, cfg, jobs[:30], uniformOffsets(30, time.Second))
		if len(res) != 30 {
			t.Errorf("policy %s completed %d", p, len(res))
		}
	}
}

func TestImmediateCompletionForEmptyJob(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	res, _ := mustRun(t, cfg, []Job{{ID: 7}}, []time.Duration{time.Second})
	if len(res) != 1 || res[0].QueryID != 7 {
		t.Fatalf("empty job should complete immediately: %+v", res)
	}
	if res[0].ResponseTime() != 0 {
		t.Errorf("empty job response time = %v", res[0].ResponseTime())
	}
}

func TestLiveEngine(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.25, true)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub := jobs[:30]
	chans := make([]<-chan Result, len(sub))
	for i, j := range sub {
		ch, err := l.Submit(j)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, ch := range chans {
			r, ok := <-ch
			if !ok {
				t.Errorf("channel %d closed without result", i)
				return
			}
			if r.QueryID != sub[i].ID {
				t.Errorf("result %d has ID %d", i, r.QueryID)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("live engine timed out")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok || stats.Completed != len(sub) {
		t.Errorf("live stats = %+v ok=%v", stats, ok)
	}
	if _, err := l.Submit(sub[0]); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Error("Close must be idempotent")
	}
}

func TestTunerSelection(t *testing.T) {
	// Curves shaped like the paper's Figure 4.
	low := metrics.Curve{
		{Alpha: 0, Throughput: 0.105, RespTime: 220},
		{Alpha: 0.25, Throughput: 0.102, RespTime: 180},
		{Alpha: 0.5, Throughput: 0.100, RespTime: 150},
		{Alpha: 0.75, Throughput: 0.099, RespTime: 120},
		{Alpha: 1, Throughput: 0.098, RespTime: 100},
	}
	high := metrics.Curve{
		{Alpha: 0, Throughput: 0.40, RespTime: 420},
		{Alpha: 0.25, Throughput: 0.33, RespTime: 330},
		{Alpha: 0.5, Throughput: 0.26, RespTime: 320},
		{Alpha: 0.75, Throughput: 0.23, RespTime: 310},
		{Alpha: 1, Throughput: 0.20, RespTime: 300},
	}
	tn, err := NewTuner(0.20)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.AddCurve(0.1, low); err != nil {
		t.Fatal(err)
	}
	if err := tn.AddCurve(0.5, high); err != nil {
		t.Fatal(err)
	}
	// Low saturation: the paper picks α=1.0; high saturation: α=0.25.
	a, err := tn.Alpha(0.09)
	if err != nil || a != 1.0 {
		t.Errorf("low-saturation α = %v (%v), want 1.0", a, err)
	}
	a, err = tn.Alpha(0.6)
	if err != nil || a != 0.25 {
		t.Errorf("high-saturation α = %v (%v), want 0.25", a, err)
	}

	if _, err := NewTuner(-1); err == nil {
		t.Error("negative tolerance")
	}
	if err := tn.AddCurve(0, low); err == nil {
		t.Error("zero saturation")
	}
	if err := tn.AddCurve(1, nil); err == nil {
		t.Error("empty curve")
	}
	empty, _ := NewTuner(0.2)
	if _, err := empty.Alpha(0.1); err == nil {
		t.Error("empty tuner should error")
	}
}

func TestBuildCurve(t *testing.T) {
	part, jobs := fixture(t)
	sub := jobs[:25]
	curve, err := BuildCurve([]float64{0, 1}, func(alpha float64) ([]Result, RunStats, error) {
		cfg, _ := NewVirtual(part, alpha, false)
		return Run(cfg, sub, uniformOffsets(len(sub), time.Second))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 || curve[0].Alpha != 0 || curve[1].Alpha != 1 {
		t.Fatalf("curve = %+v", curve)
	}
	for _, p := range curve {
		if p.Throughput <= 0 || p.RespTime <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if _, err := BuildCurve(nil, func(float64) ([]Result, RunStats, error) {
		return nil, RunStats{}, nil
	}); err != nil {
		t.Error("default alphas should be used")
	}
}

func TestSaturationEstimator(t *testing.T) {
	est, err := NewSaturationEstimator(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSaturationEstimator(0); err == nil {
		t.Error("zero half-life")
	}
	now := simclock.Epoch
	// 0.5 q/s arrivals.
	for i := 0; i < 300; i++ {
		est.Observe(now)
		now = now.Add(2 * time.Second)
	}
	if r := est.Rate(); math.Abs(r-0.5) > 0.1 {
		t.Errorf("estimated rate %v, want ~0.5", r)
	}
	// Coincident arrivals bump the estimate instead of dividing by zero.
	before := est.Rate()
	est.Observe(now)
	est.Observe(now)
	if est.Rate() <= before {
		t.Error("coincident arrivals should nudge rate up")
	}
}

func TestNewVirtualDefaults(t *testing.T) {
	part, _ := fixture(t)
	cfg, clk := NewVirtual(part, 0.25, true)
	if cfg.Alpha != 0.25 || !cfg.MaterializeResults || cfg.CacheBuckets != 20 {
		t.Errorf("NewVirtual config = %+v", cfg)
	}
	if clk == nil || cfg.Clock != simclock.Clock(clk) {
		t.Error("clock not wired")
	}
	tb, _ := cfg.Disk.Model().Calibrate(part.BucketBytes(0))
	if tb <= 0 {
		t.Error("calibration")
	}
}

func TestDuplicateQueryIDPanics(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.admit(jobs[0], simclock.Epoch)
	defer func() {
		if recover() == nil {
			t.Error("duplicate admit should panic")
		}
	}()
	s.admit(jobs[0], simclock.Epoch)
}

// TestWorkConservingIdle: the engine must jump the clock across idle gaps
// rather than spin, and complete everything.
func TestWorkConservingIdle(t *testing.T) {
	part, jobs := fixture(t)
	sub := jobs[:10]
	offs := make([]time.Duration, len(sub))
	for i := range offs {
		offs[i] = time.Duration(i) * time.Hour // massive gaps
	}
	cfg, _ := NewVirtual(part, 0, false)
	res, stats := mustRun(t, cfg, sub, offs)
	if len(res) != len(sub) {
		t.Fatalf("completed %d of %d", len(res), len(sub))
	}
	if stats.Makespan < 9*time.Hour {
		t.Errorf("makespan %v should span the arrival gaps", stats.Makespan)
	}
	// Under extreme idleness every query is serviced promptly on arrival.
	for _, r := range res {
		if r.ResponseTime() > time.Hour {
			t.Errorf("query %d waited %v despite idle system", r.QueryID, r.ResponseTime())
		}
	}
}

func BenchmarkSchedulerStep(b *testing.B) {
	local, _ := catalog.New(catalog.Config{Name: "l", N: 60000, Seed: 1, GenLevel: 4, CacheTrixels: true})
	remote, _ := catalog.New(catalog.Config{Name: "r", N: 60000, Seed: 2, GenLevel: 4, CacheTrixels: true})
	part, _ := bucket.NewPartition(local, 300, 0)
	tcfg := workload.DefaultTraceConfig(3)
	tcfg.NumQueries = 60
	tr, _ := workload.Generate(tcfg)
	var jobs []Job
	for _, q := range tr.Queries {
		jobs = append(jobs, Job{ID: q.ID, Objects: workload.Materialize(q, remote, tcfg.Seed)})
	}
	offs := satOffsets(len(jobs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg, _ := NewVirtual(part, 0.5, false)
		if _, _, err := Run(cfg, jobs, offs); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = disk.SkyQuery // keep import for benchmark variants

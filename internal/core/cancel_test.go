package core

import (
	"context"
	"testing"
	"time"

	"liferaft/internal/simclock"
)

// bigJob returns a fixture job spanning at least minAssignments bucket
// assignments, so a real-clock engine needs many bucket services (tens of
// milliseconds each) to complete it — long enough that a cancel issued
// right after submission deterministically lands first.
func bigJob(t *testing.T, minObjects int) (job Job, rest []Job) {
	t.Helper()
	_, jobs := fixture(t)
	for i, j := range jobs {
		if len(j.Objects) >= minObjects {
			return j, append(append([]Job{}, jobs[:i]...), jobs[i+1:]...)
		}
	}
	t.Fatalf("no fixture job with >= %d objects", minObjects)
	return Job{}, nil
}

// TestSchedulerCancelDropsQueuedObjects drives the scheduler directly:
// cancelling one of two admitted queries must remove exactly its workload
// objects from the queues and leave the other query's intact.
func TestSchedulerCancelDropsQueuedObjects(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := cfg.Clock.Now()
	a, b := jobs[0], jobs[1]
	if r := s.admit(a, now); r != nil {
		t.Fatal("job a completed on admit; fixture job should have work")
	}
	if r := s.admit(b, now); r != nil {
		t.Fatal("job b completed on admit; fixture job should have work")
	}
	queued := func() (total int, forQuery map[uint64]int) {
		forQuery = make(map[uint64]int)
		for _, q := range s.queues {
			for _, it := range q.items {
				total++
				forQuery[it.wo.QueryID]++
			}
		}
		return
	}
	_, before := queued()
	if before[a.ID] == 0 || before[b.ID] == 0 {
		t.Fatalf("expected queued work for both queries, got %v", before)
	}
	memBefore := s.memObjects

	r := s.cancel(a.ID, now.Add(time.Second))
	if r == nil || !r.Cancelled || r.QueryID != a.ID {
		t.Fatalf("cancel result = %+v", r)
	}
	total, after := queued()
	if after[a.ID] != 0 {
		t.Errorf("%d workload objects of cancelled query %d still queued", after[a.ID], a.ID)
	}
	if after[b.ID] != before[b.ID] {
		t.Errorf("survivor query %d: %d objects queued, want %d", b.ID, after[b.ID], before[b.ID])
	}
	if want := memBefore - before[a.ID]; s.memObjects != want {
		t.Errorf("memObjects = %d, want %d", s.memObjects, want)
	}
	if total != after[b.ID] {
		t.Errorf("queues hold %d objects, want only survivor's %d", total, after[b.ID])
	}
	if s.stats.Cancelled != 1 || s.stats.CancelledObjects != int64(before[a.ID]) {
		t.Errorf("stats cancelled=%d objects=%d, want 1/%d",
			s.stats.Cancelled, s.stats.CancelledObjects, before[a.ID])
	}
	// Cancelling again (or an unknown query) is a no-op.
	if r := s.cancel(a.ID, now); r != nil {
		t.Error("double cancel should return nil")
	}
	if r := s.cancel(999999, now); r != nil {
		t.Error("cancel of unknown query should return nil")
	}
	// The frontier rebuild must keep the scheduler consistent: draining
	// the survivor completes it.
	for s.pendingWork() {
		if _, ok := s.step(cfg.Clock.Now()); !ok {
			t.Fatal("pending work but step found none")
		}
	}
	if len(s.queries) != 0 {
		t.Errorf("%d queries still tracked after drain", len(s.queries))
	}
}

// TestLiveCancelDropsWork submits a long-running job on the real clock and
// cancels it: the delivered result must be marked Cancelled and the engine
// must report dropped workload objects.
func TestLiveCancelDropsWork(t *testing.T) {
	part, _ := fixture(t)
	job, _ := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := l.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok {
		t.Fatal("channel closed without a result")
	}
	if !r.Cancelled {
		t.Fatalf("result not cancelled: %+v", r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok {
		t.Fatal("stats unavailable after Close")
	}
	if stats.Cancelled != 1 || stats.CancelledObjects == 0 {
		t.Errorf("stats cancelled=%d objects=%d, want 1 and > 0",
			stats.Cancelled, stats.CancelledObjects)
	}
	if stats.Completed != 0 {
		t.Errorf("completed = %d, want 0 (only query was cancelled)", stats.Completed)
	}
}

// TestLiveSubmitCtx covers the context path: an expired context cancels
// the query, a background context behaves exactly like Submit.
func TestLiveSubmitCtx(t *testing.T) {
	part, _ := fixture(t)
	job, rest := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before submission
	ch, err := l.SubmitCtx(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok || !r.Cancelled {
		t.Fatalf("result = %+v ok=%v, want a cancelled result", r, ok)
	}

	// A background context passes through untouched.
	ch, err = l.SubmitCtx(context.Background(), rest[0])
	if err != nil {
		t.Fatal(err)
	}
	r, ok = <-ch
	if !ok || r.Cancelled || r.QueryID != rest[0].ID {
		t.Fatalf("background-ctx result = %+v ok=%v", r, ok)
	}
}

// TestLiveCancelSharded covers the broadcast path: a cancel on a sharded
// engine reaches every shard and the merged result is marked Cancelled.
func TestLiveCancelSharded(t *testing.T) {
	part, _ := fixture(t)
	job, _ := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	cfg.Shards = 2
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := l.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok || !r.Cancelled {
		t.Fatalf("merged result = %+v ok=%v, want cancelled", r, ok)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok {
		t.Fatal("stats unavailable after Close")
	}
	if stats.Cancelled != 1 {
		t.Errorf("merged cancelled = %d, want 1", stats.Cancelled)
	}
	if stats.CancelledObjects == 0 {
		t.Error("no cancelled objects recorded across shards")
	}
	if err := l.Cancel(1); err != ErrClosed {
		t.Errorf("Cancel after Close = %v, want ErrClosed", err)
	}
}

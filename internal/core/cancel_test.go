package core

import (
	"context"
	"testing"
	"time"

	"liferaft/internal/simclock"
	"liferaft/internal/xmatch"
)

// bigJob returns a fixture job spanning at least minAssignments bucket
// assignments, so a real-clock engine needs many bucket services (tens of
// milliseconds each) to complete it — long enough that a cancel issued
// right after submission deterministically lands first.
func bigJob(t *testing.T, minObjects int) (job Job, rest []Job) {
	t.Helper()
	_, jobs := fixture(t)
	for i, j := range jobs {
		if len(j.Objects) >= minObjects {
			return j, append(append([]Job{}, jobs[:i]...), jobs[i+1:]...)
		}
	}
	t.Fatalf("no fixture job with >= %d objects", minObjects)
	return Job{}, nil
}

// TestSchedulerCancelDropsQueuedObjects drives the scheduler directly:
// cancelling one of two admitted queries must remove exactly its workload
// objects from the queues and leave the other query's intact.
func TestSchedulerCancelDropsQueuedObjects(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := cfg.Clock.Now()
	a, b := jobs[0], jobs[1]
	if r := s.admit(a, now); r != nil {
		t.Fatal("job a completed on admit; fixture job should have work")
	}
	if r := s.admit(b, now); r != nil {
		t.Fatal("job b completed on admit; fixture job should have work")
	}
	queued := func() (total int, forQuery map[uint64]int) {
		forQuery = make(map[uint64]int)
		for _, q := range s.queues {
			for _, it := range q.items {
				total++
				forQuery[it.wo.QueryID]++
			}
		}
		return
	}
	_, before := queued()
	if before[a.ID] == 0 || before[b.ID] == 0 {
		t.Fatalf("expected queued work for both queries, got %v", before)
	}
	memBefore := s.memObjects

	r := s.cancel(a.ID, now.Add(time.Second))
	if r == nil || !r.Cancelled || r.QueryID != a.ID {
		t.Fatalf("cancel result = %+v", r)
	}
	total, after := queued()
	if after[a.ID] != 0 {
		t.Errorf("%d workload objects of cancelled query %d still queued", after[a.ID], a.ID)
	}
	if after[b.ID] != before[b.ID] {
		t.Errorf("survivor query %d: %d objects queued, want %d", b.ID, after[b.ID], before[b.ID])
	}
	if want := memBefore - before[a.ID]; s.memObjects != want {
		t.Errorf("memObjects = %d, want %d", s.memObjects, want)
	}
	if total != after[b.ID] {
		t.Errorf("queues hold %d objects, want only survivor's %d", total, after[b.ID])
	}
	if s.stats.Cancelled != 1 || s.stats.CancelledObjects != int64(before[a.ID]) {
		t.Errorf("stats cancelled=%d objects=%d, want 1/%d",
			s.stats.Cancelled, s.stats.CancelledObjects, before[a.ID])
	}
	// Cancelling again (or an unknown query) is a no-op.
	if r := s.cancel(a.ID, now); r != nil {
		t.Error("double cancel should return nil")
	}
	if r := s.cancel(999999, now); r != nil {
		t.Error("cancel of unknown query should return nil")
	}
	// The frontier rebuild must keep the scheduler consistent: draining
	// the survivor completes it.
	for s.pendingWork() {
		if _, ok := s.step(cfg.Clock.Now()); !ok {
			t.Fatal("pending work but step found none")
		}
	}
	if len(s.queries) != 0 {
		t.Errorf("%d queries still tracked after drain", len(s.queries))
	}
}

// TestLiveCancelDropsWork submits a long-running job on the real clock and
// cancels it: the delivered result must be marked Cancelled and the engine
// must report dropped workload objects.
func TestLiveCancelDropsWork(t *testing.T) {
	part, _ := fixture(t)
	job, _ := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := l.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok {
		t.Fatal("channel closed without a result")
	}
	if !r.Cancelled {
		t.Fatalf("result not cancelled: %+v", r)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok {
		t.Fatal("stats unavailable after Close")
	}
	if stats.Cancelled != 1 || stats.CancelledObjects == 0 {
		t.Errorf("stats cancelled=%d objects=%d, want 1 and > 0",
			stats.Cancelled, stats.CancelledObjects)
	}
	if stats.Completed != 0 {
		t.Errorf("completed = %d, want 0 (only query was cancelled)", stats.Completed)
	}
}

// TestLiveSubmitCtx covers the context path: an expired context cancels
// the query, a background context behaves exactly like Submit.
func TestLiveSubmitCtx(t *testing.T) {
	part, _ := fixture(t)
	job, rest := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before submission
	ch, err := l.SubmitCtx(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok || !r.Cancelled {
		t.Fatalf("result = %+v ok=%v, want a cancelled result", r, ok)
	}

	// A background context passes through untouched.
	ch, err = l.SubmitCtx(context.Background(), rest[0])
	if err != nil {
		t.Fatal(err)
	}
	r, ok = <-ch
	if !ok || r.Cancelled || r.QueryID != rest[0].ID {
		t.Fatalf("background-ctx result = %+v ok=%v", r, ok)
	}
}

// TestLiveCancelSharded covers the broadcast path: a cancel on a sharded
// engine reaches every shard and the merged result is marked Cancelled.
func TestLiveCancelSharded(t *testing.T) {
	part, _ := fixture(t)
	job, _ := bigJob(t, 60)
	cfg := NewOn(part, 0.5, false, simclock.Real{})
	cfg.Shards = 2
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := l.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	r, ok := <-ch
	if !ok || !r.Cancelled {
		t.Fatalf("merged result = %+v ok=%v, want cancelled", r, ok)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok {
		t.Fatal("stats unavailable after Close")
	}
	if stats.Cancelled != 1 {
		t.Errorf("merged cancelled = %d, want 1", stats.Cancelled)
	}
	if stats.CancelledObjects == 0 {
		t.Error("no cancelled objects recorded across shards")
	}
	if err := l.Cancel(1); err != ErrClosed {
		t.Errorf("Cancel after Close = %v, want ErrClosed", err)
	}
}

// TestCancelTouchesOnlyOwningQueues: cancelling a query must examine only
// the queues on its admission-time membership list, not sweep every
// queue. A 1-object query cancelled among thousands of unrelated queues
// must leave the scheduler's cancel-visit counter at the query's own
// bucket count.
func TestCancelTouchesOnlyOwningQueues(t *testing.T) {
	s := syntheticScheduler(t, 10_000, PolicyLifeRaft, 0.5)
	now := simclock.Epoch
	// 4,000 unrelated queues from a backdrop query.
	backdrop := &queryState{result: Result{QueryID: 1, Arrived: now}, arrived: now}
	for bi := 0; bi < 4000; bi++ {
		s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 1}, arrived: now, ageWeight: 1})
		backdrop.buckets = append(backdrop.buckets, bi)
		backdrop.remaining++
	}
	s.queries[1] = backdrop
	// The victim: a tiny query owning 3 buckets, two shared with the
	// backdrop's range and one far away.
	victim := &queryState{result: Result{QueryID: 2, Arrived: now}, arrived: now}
	for _, bi := range []int{10, 2000, 9000} {
		s.pushItem(bi, item{wo: xmatch.WorkloadObject{QueryID: 2}, arrived: now, ageWeight: 1})
		victim.buckets = append(victim.buckets, bi)
		victim.remaining++
	}
	s.queries[2] = victim

	s.cancelVisited = 0
	r := s.cancel(2, now.Add(time.Second))
	if r == nil || !r.Cancelled {
		t.Fatalf("cancel result = %+v", r)
	}
	if s.cancelVisited != 3 {
		t.Errorf("cancel examined %d queues, want exactly the 3 owning ones", s.cancelVisited)
	}
	if s.stats.CancelledObjects != 3 {
		t.Errorf("cancelled objects = %d, want 3", s.stats.CancelledObjects)
	}
	// Unrelated queues must be untouched; shared buckets keep the
	// backdrop's item.
	for _, bi := range []int{10, 2000} {
		q := s.queues[bi]
		if q == nil || len(q.items) != 1 || q.items[0].wo.QueryID != 1 {
			t.Errorf("bucket %d: backdrop item disturbed: %+v", bi, q)
		}
	}
	if s.queues[9000] != nil {
		t.Error("bucket 9000 should be gone (victim was its only tenant)")
	}
	if s.pendingItems != 4000 {
		t.Errorf("pendingItems = %d, want 4000", s.pendingItems)
	}
}

// TestCancelVisitsScaleWithQueryNotQueues: driven through the public
// admit path — cancel cost is bounded by the query's own assignments
// even when the scheduler holds far more work from other queries.
func TestCancelVisitsScaleWithQueryNotQueues(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	s, err := newScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := cfg.Clock.Now()
	// Load every fixture job but the last; cancel only the last.
	for _, j := range jobs[:len(jobs)-1] {
		s.admit(j, now)
	}
	last := jobs[len(jobs)-1]
	if r := s.admit(last, now); r != nil {
		t.Skip("last fixture job has no work; pick another")
	}
	assignments := s.queries[last.ID].result.Assignments
	s.cancelVisited = 0
	if r := s.cancel(last.ID, now.Add(time.Second)); r == nil {
		t.Fatal("cancel returned nil")
	}
	if s.cancelVisited > assignments {
		t.Errorf("cancel visited %d queues for a query with %d assignments",
			s.cancelVisited, assignments)
	}
	if len(s.queues) == 0 {
		t.Error("unrelated work vanished")
	}
}

package core

import (
	"liferaft/internal/cache/disktier"
)

// This file wires the tiered bucket store into the scheduler: the
// Eq.-2-driven prefetch hook that runs after every pick, and the
// per-tier metric polling that turns the disk tier's counters into
// /metrics series. Both are nil-guarded single branches when the
// engine runs untiered, keeping the default service loop bit-identical
// and zero-alloc.

// tierBackend is what the scheduler needs from a tiered store backend
// (implemented by segment.TieredBackend); resolved once at
// construction.
type tierBackend interface {
	// ForegroundCounts returns this fork's tier hit/miss totals — the
	// per-shard numbers, since each shard owns its forked backend.
	ForegroundCounts() (hits, misses int64)
	// Tier returns the shared disk tier for the tier-global stats.
	Tier() *disktier.Tier
}

// prefetchUpcoming peeks the scheduler's own orderings for the buckets
// Eq. 2 is about to choose and asks the tiered backend to promote their
// groups. The peek reads the top of the Ut and age heaps — the two
// orderings whose maxima decide the next pick — via their array
// prefixes: a heap's first K slots hold a superset-of-top-K
// approximation that costs zero allocations and no heap mutation, which
// is the right trade for a best-effort hint. Residency and in-flight
// dedup happen inside the tier, so re-hinting the same group every pick
// is a map lookup, not I/O.
//
// The hook never touches scheduling state: tiering changes where bytes
// are read from, never which bucket is picked, so decisions stay
// bit-identical with prefetch on or off.
func (s *scheduler) prefetchUpcoming(picked int) {
	ix := s.idx
	if ix == nil || ix.ut == nil {
		return // non-LifeRaft policies (or QoS fallback) keep no Ut/age order
	}
	depth := s.cfg.PrefetchDepth
	for _, h := range [2]*qheap{ix.ut, ix.age} {
		n := len(h.s)
		if n > depth {
			n = depth
		}
		for i := 0; i < n; i++ {
			if q := h.s[i]; q.idx != picked {
				s.pre.PrefetchBucket(q.idx)
			}
		}
	}
}

// pollTierMetrics exports the tiered backend's counters after a
// service: foreground hit/miss deltas per shard, and — from shard 0
// only, so the tier-global numbers are not multiplied by the shard
// count — eviction, residency, and prefetch-outcome deltas from the
// shared tier.
func (s *scheduler) pollTierMetrics() {
	if s.obs == nil {
		return
	}
	hits, misses := s.tierB.ForegroundCounts()
	s.obs.diskHits.Add(float64(hits - s.lastTierHits))
	s.obs.diskMiss.Add(float64(misses - s.lastTierMisses))
	s.lastTierHits, s.lastTierMisses = hits, misses
	if s.cfg.shardIndex != 0 {
		return
	}
	st := s.tierB.Tier().Stats()
	s.obs.diskEvict.Add(float64(st.Evictions - s.lastTierStats.Evictions))
	s.obs.prefIssued.Add(float64(st.PrefetchIssued - s.lastTierStats.PrefetchIssued))
	s.obs.prefHits.Add(float64(st.PrefetchHits - s.lastTierStats.PrefetchHits))
	s.obs.prefWasted.Add(float64(st.PrefetchWasted - s.lastTierStats.PrefetchWasted))
	s.obs.diskBytes.Set(float64(st.Bytes))
	s.lastTierStats = st
}

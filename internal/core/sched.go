package core

import (
	"fmt"
	"math"
	"time"

	"liferaft/internal/cache"
	"liferaft/internal/xmatch"
)

// spillObjectBytes is the assumed on-disk footprint of one workload
// object (position, HTM range, query id) for the overflow extension.
const spillObjectBytes = 64

// item is one pending work unit: a workload object assigned to a bucket.
type item struct {
	wo      xmatch.WorkloadObject
	arrived time.Time
	// ageWeight depreciates this request's age in the scheduler metric
	// (QoS extension); 1 when the extension is off.
	ageWeight float64
}

// bqueue is the workload queue of one bucket (the W·j of §3.1).
type bqueue struct {
	idx     int
	items   []item
	spilled bool
	// ageFrontier holds the Pareto-dominant (arrived, ageWeight) points
	// of the queue: an item can only determine A(i) if no earlier item
	// has an equal-or-greater age weight. Items append in arrival order,
	// so the frontier's weights are strictly increasing; its length is
	// bounded by the number of distinct QoS weights, making the
	// scheduler's age computation O(frontier) instead of O(items).
	ageFrontier []agePoint
}

type agePoint struct {
	arrived time.Time
	weight  float64
}

// push appends an item and maintains the age frontier.
func (q *bqueue) push(it item) {
	q.items = append(q.items, it)
	n := len(q.ageFrontier)
	if n > 0 && q.ageFrontier[n-1].weight >= it.ageWeight {
		return // dominated: an older item ages at least as fast
	}
	q.ageFrontier = append(q.ageFrontier, agePoint{arrived: it.arrived, weight: it.ageWeight})
}

// queryState tracks one in-flight query.
type queryState struct {
	job       Job
	arrived   time.Time
	remaining int
	result    Result
}

// scheduler is the workload manager plus join evaluator of Figure 3. It is
// not safe for concurrent use; Run and Live serialize access.
type scheduler struct {
	cfg   Config
	cache cache.Cache[int, bucketObjects]

	queues  map[int]*bqueue
	queries map[uint64]*queryState
	preds   map[uint64]xmatch.Predicate

	rrNext     int
	memObjects int
	stats      RunStats

	// tbSec and tmSec are the empirical constants of Eq. 1 derived from
	// the disk model at construction.
	tbSec float64
	tmSec float64
}

func newScheduler(cfg Config) (*scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c, err := cache.New[int, bucketObjects](cfg.CachePolicy, cfg.CacheBuckets)
	if err != nil {
		return nil, err
	}
	part := cfg.Store.Partition()
	if part.NumBuckets() == 0 {
		return nil, fmt.Errorf("core: partition has no buckets")
	}
	tb, tm := cfg.Disk.Model().Calibrate(part.BucketBytes(0))
	return &scheduler{
		cfg:     cfg,
		cache:   c,
		queues:  make(map[int]*bqueue),
		queries: make(map[uint64]*queryState),
		preds:   make(map[uint64]xmatch.Predicate),
		tbSec:   tb.Seconds(),
		tmSec:   tm.Seconds(),
	}, nil
}

// admit pre-processes a job: every workload object is assigned to the
// queue of each bucket its bounding HTM range overlaps (the Query
// Pre-Processor of Figure 3). Queries with no overlapping work complete
// immediately.
func (s *scheduler) admit(job Job, arrived time.Time) (done *Result) {
	if _, dup := s.queries[job.ID]; dup {
		panic(fmt.Sprintf("core: duplicate query ID %d", job.ID))
	}
	qs := &queryState{
		job:     job,
		arrived: arrived,
		result:  Result{QueryID: job.ID, Arrived: arrived},
	}
	part := s.cfg.Store.Partition()
	weight := s.ageWeight(len(job.Objects))
	for _, wo := range job.Objects {
		for _, bi := range part.BucketsForRanges(wo.Ranges()) {
			if s.cfg.ownsBucket != nil && !s.cfg.ownsBucket(bi) {
				continue // another shard's bucket
			}
			q := s.queues[bi]
			if q == nil {
				q = &bqueue{idx: bi}
				s.queues[bi] = q
			}
			q.push(item{wo: wo, arrived: arrived, ageWeight: weight})
			if !q.spilled {
				s.memObjects++
			}
			qs.remaining++
			qs.result.Assignments++
		}
	}
	if qs.remaining == 0 {
		qs.result.Completed = arrived
		return &qs.result
	}
	s.queries[job.ID] = qs
	if job.Pred != nil {
		s.preds[job.ID] = job.Pred
	}
	s.maybeSpill()
	return nil
}

// ageWeight implements the QoS age-depreciation extension (§6).
func (s *scheduler) ageWeight(objects int) float64 {
	g := s.cfg.AgeDepreciationGamma
	if g == 0 {
		return 1
	}
	return 1 / (1 + g*math.Log1p(float64(objects)))
}

// maybeSpill enforces the workload memory cap by spilling the queues
// least likely to be scheduled soon (lowest workload throughput) to disk.
func (s *scheduler) maybeSpill() {
	cap := s.cfg.WorkloadMemoryCap
	if cap == 0 || s.memObjects <= cap {
		return
	}
	for s.memObjects > cap {
		var victim *bqueue
		worst := math.Inf(1)
		for _, q := range s.queues {
			if q.spilled || len(q.items) == 0 {
				continue
			}
			if ut := s.workloadThroughput(q); ut < worst {
				worst, victim = ut, q
			}
		}
		if victim == nil {
			return // everything already spilled
		}
		victim.spilled = true
		s.memObjects -= len(victim.items)
		s.stats.SpilledObjects += int64(len(victim.items))
		s.cfg.Disk.ReadSequential(int64(len(victim.items)) * spillObjectBytes) // write cost ≈ read cost
	}
}

// cancel withdraws an in-flight query: every workload object it still has
// queued is removed from the bucket queues (freeing the slots for other
// queries), its state is dropped, and a Result with Cancelled set is
// returned carrying whatever partial work completed before the cancel.
// Cancelling an unknown (or already completed) query returns nil.
func (s *scheduler) cancel(qid uint64, now time.Time) *Result {
	qs := s.queries[qid]
	if qs == nil {
		return nil
	}
	for idx, q := range s.queues {
		kept := q.items[:0]
		removed := 0
		for _, it := range q.items {
			if it.wo.QueryID == qid {
				removed++
				continue
			}
			kept = append(kept, it)
		}
		if removed == 0 {
			continue
		}
		q.items = kept
		if !q.spilled {
			s.memObjects -= removed
		}
		s.stats.CancelledObjects += int64(removed)
		qs.remaining -= removed
		if len(q.items) == 0 {
			delete(s.queues, idx)
			continue
		}
		// Rebuild the age dominance frontier from the surviving items.
		q.ageFrontier = nil
		items := q.items
		q.items = nil
		for _, it := range items {
			q.push(it)
		}
	}
	if qs.remaining != 0 {
		panic(fmt.Sprintf("core: query %d cancelled with %d unaccounted objects", qid, qs.remaining))
	}
	delete(s.queries, qid)
	delete(s.preds, qid)
	s.stats.Cancelled++
	qs.result.Completed = now
	qs.result.Cancelled = true
	return &qs.result
}

// pendingWork reports whether any queue holds items.
func (s *scheduler) pendingWork() bool {
	for _, q := range s.queues {
		if len(q.items) > 0 {
			return true
		}
	}
	return false
}

// workloadThroughput computes Ut(i) of Eq. 1 in objects per second:
//
//	Ut(i) = |W·i| / (Tb·φ(i) + Tm·|W·i|)
//
// where φ(i) is 0 when bucket i is cached.
func (s *scheduler) workloadThroughput(q *bqueue) float64 {
	n := float64(len(q.items))
	if n == 0 {
		return 0
	}
	phi := 1.0
	if s.cache.Contains(q.idx) {
		phi = 0
	}
	return n / (s.tbSec*phi + s.tmSec*n)
}

// age returns A(i): the (possibly depreciated) age in seconds of the
// oldest request in the queue, computed from the dominance frontier.
func (s *scheduler) age(q *bqueue, now time.Time) float64 {
	oldest := 0.0
	for _, p := range q.ageFrontier {
		if a := now.Sub(p.arrived).Seconds() * p.weight; a > oldest {
			oldest = a
		}
	}
	return oldest
}

// pick selects the next bucket to service per the configured policy.
// ok is false when no queue has work.
func (s *scheduler) pick(now time.Time) (int, bool) {
	switch s.cfg.Policy {
	case PolicyRoundRobin:
		return s.pickRoundRobin()
	case PolicyLeastShared:
		return s.pickLeastShared()
	default:
		return s.pickLifeRaft(now)
	}
}

// pickLifeRaft evaluates the aged workload throughput metric (Eq. 2)
// over all non-empty queues:
//
//	Ua(i) = Ût(i)·(1-α) + Â(i)·α
//
// where Ût and Â are Ut and A normalized to [0,1] over the current
// non-empty queues (DESIGN.md §3 explains the normalization), and returns
// the argmax. Ties break toward the lower bucket index, making schedules
// deterministic.
func (s *scheduler) pickLifeRaft(now time.Time) (int, bool) {
	maxUt, maxAge := 0.0, 0.0
	type scored struct {
		idx     int
		ut, age float64
	}
	cands := make([]scored, 0, len(s.queues))
	for _, q := range s.queues {
		if len(q.items) == 0 {
			continue
		}
		ut := s.workloadThroughput(q)
		age := s.age(q, now)
		cands = append(cands, scored{q.idx, ut, age})
		if ut > maxUt {
			maxUt = ut
		}
		if age > maxAge {
			maxAge = age
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	alpha := s.cfg.Alpha
	best, bestScore := -1, -1.0
	for _, c := range cands {
		score := 0.0
		if maxUt > 0 {
			score += (1 - alpha) * c.ut / maxUt
		}
		if maxAge > 0 {
			score += alpha * c.age / maxAge
		}
		if score > bestScore || (score == bestScore && (best < 0 || c.idx < best)) {
			best, bestScore = c.idx, score
		}
	}
	return best, true
}

// pickRoundRobin services non-empty buckets cyclically in HTM ID (= index)
// order, oblivious to queue length and age (§5: the RR baseline).
func (s *scheduler) pickRoundRobin() (int, bool) {
	n := s.cfg.Store.Partition().NumBuckets()
	for off := 0; off < n; off++ {
		idx := (s.rrNext + off) % n
		if q, ok := s.queues[idx]; ok && len(q.items) > 0 {
			s.rrNext = idx + 1
			return idx, true
		}
	}
	return 0, false
}

// pickLeastShared selects the non-empty queue with the fewest pending
// objects (ties toward the lower index): jobs that benefit least from
// future co-scheduling run first, after Agrawal et al.'s least-sharable
// policy for shared file scans (paper §6).
func (s *scheduler) pickLeastShared() (int, bool) {
	best, bestLen := -1, 0
	for _, q := range s.queues {
		n := len(q.items)
		if n == 0 {
			continue
		}
		if best < 0 || n < bestLen || (n == bestLen && q.idx < best) {
			best, bestLen = q.idx, n
		}
	}
	return best, best >= 0
}

// step services one bucket: it selects per policy, runs the hybrid join
// evaluator charging all I/O and match costs, and returns the queries
// completed by this batch. ok is false when no work was pending.
func (s *scheduler) step(now time.Time) (completed []Result, ok bool) {
	idx, ok := s.pick(now)
	if !ok {
		return nil, false
	}
	q := s.queues[idx]
	items := q.items
	q.items, q.ageFrontier = nil, nil
	delete(s.queues, idx)
	if q.spilled {
		// Fetch the spilled queue back from disk.
		s.stats.SpillFetches++
		s.cfg.Disk.ReadSequential(int64(len(items)) * spillObjectBytes)
	} else {
		s.memObjects -= len(items)
	}

	part := s.cfg.Store.Partition()
	bucketLen := part.Bucket(idx).Count()
	count := len(items)

	// The Join Evaluator: hybrid strategy per §3.4.
	objs, inMem := s.cache.Get(idx)
	strategy := xmatch.ChooseStrategy(count, bucketLen, s.cfg.HybridThreshold, inMem)
	var pairs []xmatch.Pair
	wos := make([]xmatch.WorkloadObject, count)
	for i, it := range items {
		wos[i] = it.wo
	}
	switch strategy {
	case xmatch.Scan:
		if !inMem {
			objs, _ = s.cfg.Store.ReadBucket(idx)
			s.cache.Put(idx, objs)
		}
		s.cfg.Disk.MatchObjects(count)
		if s.cfg.MaterializeResults {
			pairs = xmatch.MergeJoin(objs, wos, s.preds)
		}
		s.stats.ScanServices++
	case xmatch.Index:
		objs, _ = s.cfg.Store.Probe(idx, count)
		s.cfg.Disk.MatchObjects(count)
		if s.cfg.MaterializeResults {
			pairs = xmatch.IndexJoin(objs, wos, s.preds)
		}
		s.stats.IndexServices++
	}
	s.stats.BucketsServed++

	// Distribute results and retire work units.
	end := s.cfg.Clock.Now()
	byQuery := make(map[uint64][]xmatch.Pair)
	for _, p := range pairs {
		byQuery[p.QueryID] = append(byQuery[p.QueryID], p)
	}
	seen := make(map[uint64]int)
	for _, it := range items {
		seen[it.wo.QueryID]++
	}
	for qid, n := range seen {
		qs := s.queries[qid]
		if qs == nil {
			panic(fmt.Sprintf("core: work unit for unknown query %d", qid))
		}
		qs.remaining -= n
		if ps := byQuery[qid]; len(ps) > 0 {
			qs.result.Pairs = append(qs.result.Pairs, ps...)
			qs.result.Matches += len(ps)
		}
		if qs.remaining < 0 {
			panic(fmt.Sprintf("core: query %d over-completed", qid))
		}
		if qs.remaining == 0 {
			qs.result.Completed = end
			completed = append(completed, qs.result)
			delete(s.queries, qid)
			delete(s.preds, qid)
		}
	}
	return completed, true
}

// finalize snapshots run statistics.
func (s *scheduler) finalize(makespan time.Duration, completed int) RunStats {
	st := s.stats
	st.Completed = completed
	st.Makespan = makespan
	st.Disk = s.cfg.Disk.Stats()
	st.Cache = s.cache.Stats()
	return st
}

package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/cache/disktier"
	"liferaft/internal/trace"
	"liferaft/internal/xmatch"
)

// spillObjectBytes is the assumed on-disk footprint of one workload
// object (position, HTM range, query id) for the overflow extension.
const spillObjectBytes = 64

// item is one pending work unit: a workload object assigned to a bucket.
type item struct {
	wo      xmatch.WorkloadObject
	arrived time.Time
	// ageWeight depreciates this request's age in the scheduler metric
	// (QoS extension); 1 when the extension is off.
	ageWeight float64
}

// bqueue is the workload queue of one bucket (the W·j of §3.1).
type bqueue struct {
	idx     int
	items   []item
	spilled bool
	// ageFrontier holds the Pareto-dominant (arrived, ageWeight) points
	// of the queue: an item can only determine A(i) if no earlier item
	// has an equal-or-greater age weight. Items append in arrival order,
	// so the frontier's weights are strictly increasing; its length is
	// bounded by the number of distinct QoS weights, making the
	// scheduler's age computation O(frontier) instead of O(items).
	ageFrontier []agePoint

	// Incremental-index state (sched_index.go): the cached Ut(i) — kept
	// exact by refreshing on every event that can change it — plus this
	// queue's position in each maintained heap and the last pick epoch
	// that scored it.
	ut   float64
	pos  [numHeaps]int32
	seen uint64
}

type agePoint struct {
	arrived time.Time
	weight  float64
}

// scored is one pick candidate in the exhaustive-scan path; the backing
// slice is scheduler scratch so fallback picks stay allocation-free.
type scored struct {
	idx     int
	ut, age float64
}

// push appends an item and maintains the age frontier.
func (q *bqueue) push(it item) {
	q.items = append(q.items, it)
	n := len(q.ageFrontier)
	if n > 0 && q.ageFrontier[n-1].weight >= it.ageWeight {
		return // dominated: an older item ages at least as fast
	}
	q.ageFrontier = append(q.ageFrontier, agePoint{arrived: it.arrived, weight: it.ageWeight})
}

// rebuildFrontier recomputes the dominance frontier from the surviving
// items after a cancel removed some; items are still in arrival order, so
// the same dominance rule as push applies. The frontier slice is reused.
func rebuildFrontier(q *bqueue) {
	q.ageFrontier = q.ageFrontier[:0]
	for _, it := range q.items {
		n := len(q.ageFrontier)
		if n > 0 && q.ageFrontier[n-1].weight >= it.ageWeight {
			continue
		}
		q.ageFrontier = append(q.ageFrontier, agePoint{arrived: it.arrived, weight: it.ageWeight})
	}
}

// queryState tracks one in-flight query.
type queryState struct {
	job       Job
	arrived   time.Time
	remaining int
	result    Result
	// buckets records every bucket index this query fanned work out to
	// (the admission-time membership list), so cancel touches only the
	// owning queues instead of sweeping all of them. May contain
	// duplicates; cancel sorts and skips them.
	buckets []int
	// trace mirrors job.Trace (nil when the query is untraced).
	trace *trace.Trace
}

// scheduler is the workload manager plus join evaluator of Figure 3. It is
// not safe for concurrent use; Run and Live serialize access.
type scheduler struct {
	cfg   Config
	cache cache.Cache[int, bucketObjects]

	queues  map[int]*bqueue
	queries map[uint64]*queryState
	preds   map[uint64]xmatch.Predicate

	// idx is the incremental scheduler index (sched_index.go). nil runs
	// the reference implementation — the seed's exhaustive scans — which
	// the golden-equivalence test and the old-vs-new benchmarks compare
	// against; dropIndex switches a fresh scheduler into that mode.
	idx *schedIndex
	// pendingItems counts queued workload objects across all queues
	// (including spilled ones), making pendingWork O(1).
	pendingItems int

	rrNext     int
	memObjects int
	stats      RunStats

	// cancelVisited counts the bucket queues examined by cancel — a test
	// hook proving cancels touch only the cancelled query's queues.
	cancelVisited int
	// pickFallbacks counts indexed picks that exceeded the threshold
	// walk's pop budget and fell back to the exhaustive scan.
	pickFallbacks int

	// Scratch reused across service-loop iterations so a steady-state
	// step performs no allocations. The slice step returns aliases
	// completedBuf and is valid only until the next step; both engine
	// loops consume it immediately.
	wosBuf       []xmatch.WorkloadObject
	byQueryBuf   map[uint64][]xmatch.Pair
	seenBuf      map[uint64]int
	completedBuf []Result
	bisBuf       []int
	scoredBuf    []scored
	qPool        []*bqueue

	// tbSec and tmSec are the empirical constants of Eq. 1 derived from
	// the disk model at construction.
	tbSec float64
	tmSec float64

	// obs holds this shard's resolved metric handles; nil (the default)
	// skips all instrumentation, keeping the service loop zero-alloc and
	// bit-identical to the uninstrumented engine.
	obs *EngineObs

	// pre is the store backend's prefetch hook, non-nil only when
	// Config.PrefetchDepth > 0 resolved a tiered backend; the disabled
	// path costs one nil check per step.
	pre bucket.Prefetcher
	// tierB, non-nil only when metrics are on and the store backend is
	// tiered, feeds the per-tier cache families. ramBucketBytes sizes
	// the ram-tier bytes gauge (cached buckets x nominal bucket size).
	tierB          tierBackend
	lastTierHits   int64
	lastTierMisses int64
	lastTierStats  disktier.Stats
	ramBucketBytes float64

	// traced counts in-flight queries carrying a trace. While zero —
	// tracing disabled or no traced query admitted — the service loop
	// skips every span-recording branch, keeping its steady state
	// zero-alloc. svcTraceID carries the last serviced traced query's ID
	// out of serviceBucket so step can attach it to the pick-latency
	// histogram as an exemplar.
	traced     int
	svcTraceID trace.ID
}

func newScheduler(cfg Config) (*scheduler, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c, err := cache.New[int, bucketObjects](cfg.CachePolicy, cfg.CacheBuckets)
	if err != nil {
		return nil, err
	}
	part := cfg.Store.Partition()
	if part.NumBuckets() == 0 {
		return nil, fmt.Errorf("core: partition has no buckets")
	}
	tb, tm := cfg.Disk.Model().Calibrate(part.BucketBytes(0))
	s := &scheduler{
		cfg:        cfg,
		cache:      c,
		queues:     make(map[int]*bqueue),
		queries:    make(map[uint64]*queryState),
		preds:      make(map[uint64]xmatch.Predicate),
		idx:        newSchedIndex(cfg, part.NumBuckets()),
		byQueryBuf: make(map[uint64][]xmatch.Pair),
		seenBuf:    make(map[uint64]int),
		tbSec:      tb.Seconds(),
		tmSec:      tm.Seconds(),
	}
	// Policy evictions flip φ(i) for the evicted bucket; the hook keeps
	// that bucket's cached Ut in sync (admissions are the scheduler's
	// own cachePut calls).
	s.cache.OnEvict(func(k int, _ bucketObjects) {
		s.noteCacheChange(k)
		if s.obs != nil {
			s.obs.ramEvict.Inc()
		}
	})
	if cfg.PrefetchDepth > 0 {
		s.pre = cfg.Store.Prefetcher() // non-nil: withDefaults validated it
	}
	if cfg.Metrics != nil {
		s.obs = cfg.Metrics.Shard(cfg.shardIndex)
		// The store observer sees every read this engine issues; each
		// shard owns its forked store, so the handles never cross shards.
		cfg.Store.SetObserver(s.obs)
		if tb, ok := cfg.Store.Backend().(tierBackend); ok {
			s.tierB = tb
		}
		s.ramBucketBytes = float64(part.BucketBytes(0))
	}
	return s, nil
}

// dropIndex switches a freshly built scheduler to the reference
// implementation: exhaustive scans for every pick, spill-victim and
// pending-work decision. Must be called before the first admit. The
// golden-equivalence test drives a dropped scheduler next to an indexed
// one to prove their decision sequences bit-identical.
func (s *scheduler) dropIndex() { s.idx = nil }

// newQueue takes a recycled bqueue from the pool (or allocates one) and
// resets it for bucket bi.
func (s *scheduler) newQueue(bi int) *bqueue {
	var q *bqueue
	if n := len(s.qPool); n > 0 {
		q = s.qPool[n-1]
		s.qPool = s.qPool[:n-1]
	} else {
		q = &bqueue{}
	}
	q.idx = bi
	q.spilled = false
	q.ut = 0
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// releaseQueue returns an emptied, detached queue (and its item and
// frontier capacity) to the pool.
func (s *scheduler) releaseQueue(q *bqueue) {
	q.items = q.items[:0]
	q.ageFrontier = q.ageFrontier[:0]
	s.qPool = append(s.qPool, q)
}

// pushItem enqueues one work unit on bucket bi, creating the queue if
// needed, and keeps every maintained index ordering in sync.
func (s *scheduler) pushItem(bi int, it item) {
	q := s.queues[bi]
	isNew := q == nil
	if isNew {
		q = s.newQueue(bi)
		s.queues[bi] = q
	}
	q.push(it)
	s.pendingItems++
	if !q.spilled {
		s.memObjects++
	}
	if s.idx == nil {
		return
	}
	if isNew {
		if s.idx.needsUt() {
			q.ut = s.workloadThroughput(q)
		}
		s.idx.insert(q)
		return
	}
	if s.idx.needsUt() {
		s.refreshUt(q)
	}
	s.idx.lenChanged(q)
	// The age ordering keys on the frontier head, which an append-only
	// push never displaces — no age fix needed.
}

// detachQueue removes a queue from the map and every index ordering; the
// caller settles pendingItems/memObjects and recycles the queue.
func (s *scheduler) detachQueue(q *bqueue) {
	delete(s.queues, q.idx)
	if s.idx != nil {
		s.idx.remove(q)
	}
}

// refreshUt recomputes the cached Ut(i) and re-heaps the orderings keyed
// on it. The cached value is always the output of workloadThroughput, so
// indexed picks see bit-identical floats to a fresh exhaustive scan.
func (s *scheduler) refreshUt(q *bqueue) {
	q.ut = s.workloadThroughput(q)
	s.idx.utChanged(q)
}

// noteCacheChange records a bucket-cache membership change for bucket k:
// φ(k) flipped, so the bucket's queue (if any) gets a fresh Ut. Wired to
// the cache's eviction hook; cachePut calls it for admissions.
func (s *scheduler) noteCacheChange(k int) {
	if s.idx == nil || !s.idx.needsUt() {
		return
	}
	if q := s.queues[k]; q != nil {
		s.refreshUt(q)
	}
}

// cachePut inserts into the bucket cache and keeps the Ut index in sync:
// evictions arrive via the OnEvict hook, the admission via the explicit
// noteCacheChange. All scheduler cache inserts must go through here.
func (s *scheduler) cachePut(k int, v bucketObjects) {
	s.cache.Put(k, v)
	s.noteCacheChange(k)
}

// admit pre-processes a job: every workload object is assigned to the
// queue of each bucket its bounding HTM range overlaps (the Query
// Pre-Processor of Figure 3). Queries with no overlapping work complete
// immediately.
func (s *scheduler) admit(job Job, arrived time.Time) (done *Result) {
	if _, dup := s.queries[job.ID]; dup {
		panic(fmt.Sprintf("core: duplicate query ID %d", job.ID))
	}
	qs := &queryState{
		job:     job,
		arrived: arrived,
		result:  Result{QueryID: job.ID, Arrived: arrived},
		buckets: make([]int, 0, len(job.Objects)),
		trace:   job.Trace,
	}
	part := s.cfg.Store.Partition()
	weight := s.ageWeight(len(job.Objects))
	for _, wo := range job.Objects {
		s.bisBuf = part.AppendBucketsForRanges(s.bisBuf[:0], wo.Ranges())
		for _, bi := range s.bisBuf {
			if s.cfg.ownsBucket != nil && !s.cfg.ownsBucket(bi) {
				continue // another shard's bucket
			}
			s.pushItem(bi, item{wo: wo, arrived: arrived, ageWeight: weight})
			qs.buckets = append(qs.buckets, bi)
			qs.remaining++
			qs.result.Assignments++
		}
	}
	qs.trace.Add(trace.Span{
		Stage: trace.StageEngineAdmit, Start: arrived, End: arrived,
		N: int64(qs.result.Assignments),
	})
	if qs.remaining == 0 {
		qs.result.Completed = arrived
		return &qs.result
	}
	if qs.trace != nil {
		s.traced++
	}
	s.queries[job.ID] = qs
	if job.Pred != nil {
		s.preds[job.ID] = job.Pred
	}
	s.maybeSpill()
	return nil
}

// ageWeight implements the QoS age-depreciation extension (§6).
func (s *scheduler) ageWeight(objects int) float64 {
	g := s.cfg.AgeDepreciationGamma
	if g == 0 {
		return 1
	}
	return 1 / (1 + g*math.Log1p(float64(objects)))
}

// maybeSpill enforces the workload memory cap by spilling the queues
// least likely to be scheduled soon (lowest workload throughput) to disk.
func (s *scheduler) maybeSpill() {
	cap := s.cfg.WorkloadMemoryCap
	if cap == 0 || s.memObjects <= cap {
		return
	}
	for s.memObjects > cap {
		victim := s.spillVictim()
		if victim == nil {
			return // everything already spilled
		}
		victim.spilled = true
		if s.idx != nil && s.idx.spill != nil {
			s.idx.spill.remove(victim)
		}
		s.memObjects -= len(victim.items)
		s.stats.SpilledObjects += int64(len(victim.items))
		s.cfg.Disk.ReadSequential(int64(len(victim.items)) * spillObjectBytes) // write cost ≈ read cost
	}
}

// spillVictim selects the non-spilled queue with the lowest Ut(i) — the
// head of the spill ordering, or an exhaustive scan in reference mode.
// Ties break toward the lower bucket index in both paths.
func (s *scheduler) spillVictim() *bqueue {
	if s.idx != nil && s.idx.spill != nil {
		if s.idx.spill.len() == 0 {
			return nil
		}
		return s.idx.spill.head()
	}
	return s.spillVictimScan()
}

// spillVictimScan is the reference O(B) victim selection.
func (s *scheduler) spillVictimScan() *bqueue {
	var victim *bqueue
	worst := math.Inf(1)
	for _, q := range s.queues {
		if q.spilled || len(q.items) == 0 {
			continue
		}
		ut := s.workloadThroughput(q)
		if ut < worst || (ut == worst && (victim == nil || q.idx < victim.idx)) {
			worst, victim = ut, q
		}
	}
	return victim
}

// cancel withdraws an in-flight query: every workload object it still has
// queued is removed from the bucket queues (freeing the slots for other
// queries), its state is dropped, and a Result with Cancelled set is
// returned carrying whatever partial work completed before the cancel.
// Cancelling an unknown (or already completed) query returns nil.
//
// Only the queues on the query's admission-time membership list are
// touched, so cancelling a small query costs O(its own assignments), not
// O(all queued work).
func (s *scheduler) cancel(qid uint64, now time.Time) *Result {
	qs := s.queries[qid]
	if qs == nil {
		return nil
	}
	sort.Ints(qs.buckets)
	prev := -1
	for _, bi := range qs.buckets {
		if bi == prev {
			continue // duplicate membership entry
		}
		prev = bi
		q := s.queues[bi]
		if q == nil {
			continue // queue serviced (or emptied) since admission
		}
		s.cancelVisited++
		kept := q.items[:0]
		removed := 0
		for _, it := range q.items {
			if it.wo.QueryID == qid {
				removed++
				continue
			}
			kept = append(kept, it)
		}
		if removed == 0 {
			continue
		}
		q.items = kept
		s.pendingItems -= removed
		if !q.spilled {
			s.memObjects -= removed
		}
		s.stats.CancelledObjects += int64(removed)
		qs.remaining -= removed
		if len(q.items) == 0 {
			s.detachQueue(q)
			s.releaseQueue(q)
			continue
		}
		rebuildFrontier(q)
		if s.idx != nil {
			if s.idx.needsUt() {
				s.refreshUt(q)
			}
			s.idx.lenChanged(q)
			s.idx.ageKeyChanged(q)
		}
	}
	if qs.remaining != 0 {
		panic(fmt.Sprintf("core: query %d cancelled with %d unaccounted objects", qid, qs.remaining))
	}
	if qs.trace != nil {
		s.traced--
		qs.trace.Add(trace.Span{Stage: trace.StageCancel, Start: now, End: now, Err: "cancelled"})
	}
	delete(s.queries, qid)
	delete(s.preds, qid)
	s.stats.Cancelled++
	qs.result.Completed = now
	qs.result.Cancelled = true
	return &qs.result
}

// pendingWork reports whether any queue holds items. O(1): admission,
// service, and cancel maintain the pendingItems counter.
func (s *scheduler) pendingWork() bool {
	return s.pendingItems > 0
}

// workloadThroughput computes Ut(i) of Eq. 1 in objects per second:
//
//	Ut(i) = |W·i| / (Tb·φ(i) + Tm·|W·i|)
//
// where φ(i) is 0 when bucket i is cached.
func (s *scheduler) workloadThroughput(q *bqueue) float64 {
	n := float64(len(q.items))
	if n == 0 {
		return 0
	}
	phi := 1.0
	if s.cache.Contains(q.idx) {
		phi = 0
	}
	return n / (s.tbSec*phi + s.tmSec*n)
}

// age returns A(i): the (possibly depreciated) age in seconds of the
// oldest request in the queue, computed from the dominance frontier.
func (s *scheduler) age(q *bqueue, now time.Time) float64 {
	oldest := 0.0
	for _, p := range q.ageFrontier {
		if a := now.Sub(p.arrived).Seconds() * p.weight; a > oldest {
			oldest = a
		}
	}
	return oldest
}

// pick selects the next bucket to service per the configured policy.
// ok is false when no queue has work. The indexed paths and their scan
// references make identical decisions (golden_test.go); the scans remain
// both as the fallback where the index cannot order queues (QoS age
// weights, see DESIGN-sched-index.md §4) and as the benchmark baseline.
func (s *scheduler) pick(now time.Time) (int, bool) {
	switch s.cfg.Policy {
	case PolicyRoundRobin:
		if s.idx != nil {
			return s.pickRoundRobinIndexed()
		}
		return s.pickRoundRobinScan()
	case PolicyLeastShared:
		if s.idx != nil {
			return s.pickLeastSharedIndexed()
		}
		return s.pickLeastSharedScan()
	default:
		if s.idx != nil && s.idx.exactAge {
			return s.pickLifeRaftIndexed(now)
		}
		return s.pickLifeRaftScan(now)
	}
}

// pickLifeRaftScan evaluates the aged workload throughput metric (Eq. 2)
// over all non-empty queues:
//
//	Ua(i) = Ût(i)·(1-α) + Â(i)·α
//
// where Ût and Â are Ut and A normalized to [0,1] over the current
// non-empty queues (DESIGN.md §3 explains the normalization), and returns
// the argmax. Ties break toward the lower bucket index, making schedules
// deterministic. This is the seed's exhaustive O(B) pick, kept as the
// reference for pickLifeRaftIndexed and as the QoS fallback.
func (s *scheduler) pickLifeRaftScan(now time.Time) (int, bool) {
	maxUt, maxAge := 0.0, 0.0
	cands := s.scoredBuf[:0]
	for _, q := range s.queues {
		if len(q.items) == 0 {
			continue
		}
		ut := s.workloadThroughput(q)
		age := s.age(q, now)
		cands = append(cands, scored{q.idx, ut, age})
		if ut > maxUt {
			maxUt = ut
		}
		if age > maxAge {
			maxAge = age
		}
	}
	s.scoredBuf = cands
	if len(cands) == 0 {
		return 0, false
	}
	alpha := s.cfg.Alpha
	best, bestScore := -1, -1.0
	for _, c := range cands {
		score := 0.0
		if maxUt > 0 {
			score += (1 - alpha) * c.ut / maxUt
		}
		if maxAge > 0 {
			score += alpha * c.age / maxAge
		}
		if score > bestScore || (score == bestScore && (best < 0 || c.idx < best)) {
			best, bestScore = c.idx, score
		}
	}
	return best, true
}

// pickRoundRobinIndexed services non-empty buckets cyclically in HTM ID
// order using the ordered non-empty set: one circular successor query
// instead of scanning every bucket index.
func (s *scheduler) pickRoundRobinIndexed() (int, bool) {
	n := s.cfg.Store.Partition().NumBuckets()
	i := s.idx.nonEmpty.nextFrom(s.rrNext % n)
	if i < 0 {
		i = s.idx.nonEmpty.nextFrom(0) // wrap: any non-empty bucket is below rrNext
	}
	if i < 0 {
		return 0, false
	}
	s.rrNext = i + 1
	return i, true
}

// pickRoundRobinScan is the seed's O(NumBuckets) round-robin pick
// (§5: the RR baseline), kept as the reference implementation.
func (s *scheduler) pickRoundRobinScan() (int, bool) {
	n := s.cfg.Store.Partition().NumBuckets()
	for off := 0; off < n; off++ {
		idx := (s.rrNext + off) % n
		if q, ok := s.queues[idx]; ok && len(q.items) > 0 {
			s.rrNext = idx + 1
			return idx, true
		}
	}
	return 0, false
}

// pickLeastSharedIndexed selects the non-empty queue with the fewest
// pending objects — the head of the length ordering.
func (s *scheduler) pickLeastSharedIndexed() (int, bool) {
	if s.idx.lens.len() == 0 {
		return -1, false
	}
	return s.idx.lens.head().idx, true
}

// pickLeastSharedScan selects the non-empty queue with the fewest pending
// objects (ties toward the lower index): jobs that benefit least from
// future co-scheduling run first, after Agrawal et al.'s least-sharable
// policy for shared file scans (paper §6). Reference implementation.
func (s *scheduler) pickLeastSharedScan() (int, bool) {
	best, bestLen := -1, 0
	for _, q := range s.queues {
		n := len(q.items)
		if n == 0 {
			continue
		}
		if best < 0 || n < bestLen || (n == bestLen && q.idx < best) {
			best, bestLen = q.idx, n
		}
	}
	return best, best >= 0
}

// step services one bucket: it selects per policy, runs the hybrid join
// evaluator charging all I/O and match costs, and returns the queries
// completed by this batch. ok is false when no work was pending.
//
// The returned slice aliases scheduler scratch and is valid only until
// the next step (or serviceBucket) call; both engine loops consume it
// immediately (run.go appends the values, live.go delivers them).
func (s *scheduler) step(now time.Time) (completed []Result, ok bool) {
	if s.obs != nil {
		//lifevet:allow wallclock -- the pick-latency histogram measures real compute cost of the pick, not schedule time; it never feeds back into scheduling decisions
		t0 := time.Now()
		idx, ok := s.pick(now)
		//lifevet:allow wallclock -- see t0 above: wall-time observation of pick cost only
		d := time.Since(t0).Seconds()
		if !ok {
			s.obs.pick.Observe(d)
			return nil, false
		}
		if s.pre != nil {
			// Promote the buckets the orderings say come next while the
			// foreground service below is busy reading this one.
			s.prefetchUpcoming(idx)
		}
		// When the service touches a traced query, attach its trace ID to
		// the pick-latency observation as an exemplar — a slow pick on a
		// dashboard then links to a full schedule forensics capture.
		s.svcTraceID = 0
		completed = s.serviceBucket(idx, now)
		if s.svcTraceID != 0 {
			s.obs.pick.ObserveExemplar(d, s.svcTraceID.String())
		} else {
			s.obs.pick.Observe(d)
		}
		s.obs.ramBytes.Set(float64(s.cache.Len()) * s.ramBucketBytes)
		if s.tierB != nil {
			s.pollTierMetrics()
		}
		return completed, true
	}
	idx, ok := s.pick(now)
	if !ok {
		return nil, false
	}
	if s.pre != nil {
		s.prefetchUpcoming(idx)
	}
	return s.serviceBucket(idx, now), true
}

// serviceBucket runs the join evaluator for one picked bucket. Split from
// step so the golden-equivalence test can interpose on the pick.
func (s *scheduler) serviceBucket(idx int, now time.Time) []Result {
	q := s.queues[idx]
	// Tracing state, all gated on at least one traced query being in
	// flight so the untraced steady state pays one integer compare and
	// nothing else. The Ut score is computed before any queue mutation so
	// the span records the value the pick saw.
	traced := s.traced > 0
	var svcUt float64
	if traced {
		svcUt = s.workloadThroughput(q)
	}
	items := q.items
	s.pendingItems -= len(items)
	s.detachQueue(q)
	if q.spilled {
		// Fetch the spilled queue back from disk.
		s.stats.SpillFetches++
		s.cfg.Disk.ReadSequential(int64(len(items)) * spillObjectBytes)
	} else {
		s.memObjects -= len(items)
	}

	part := s.cfg.Store.Partition()
	bucketLen := part.Bucket(idx).Count()
	count := len(items)

	// The Join Evaluator: hybrid strategy per §3.4.
	objs, inMem := s.cache.Get(idx)
	if s.obs != nil {
		if inMem {
			s.obs.cacheHits.Inc()
			s.obs.ramHits.Inc()
		} else {
			s.obs.cacheMiss.Inc()
			s.obs.ramMiss.Inc()
		}
	}
	strategy := xmatch.ChooseStrategy(count, bucketLen, s.cfg.HybridThreshold, inMem)
	var pairs []xmatch.Pair
	wos := s.wosBuf[:0]
	for _, it := range items {
		wos = append(wos, it.wo)
	}
	s.wosBuf = wos
	var readT0, readT1 time.Time
	var readKind string
	switch strategy {
	case xmatch.Scan:
		if !inMem {
			if traced {
				readT0 = s.cfg.Clock.Now()
			}
			objs, _ = s.cfg.Store.ReadBucket(idx)
			if traced {
				readT1, readKind = s.cfg.Clock.Now(), "scan"
			}
			s.cachePut(idx, objs)
		}
		s.cfg.Disk.MatchObjects(count)
		if s.cfg.MaterializeResults {
			pairs = xmatch.MergeJoin(objs, wos, s.preds)
		}
		s.stats.ScanServices++
		if s.obs != nil {
			s.obs.scanSvc.Inc()
		}
	case xmatch.Index:
		if traced {
			readT0 = s.cfg.Clock.Now()
		}
		objs, _ = s.cfg.Store.Probe(idx, count)
		if traced {
			readT1, readKind = s.cfg.Clock.Now(), "probe"
		}
		s.cfg.Disk.MatchObjects(count)
		if s.cfg.MaterializeResults {
			pairs = xmatch.IndexJoin(objs, wos, s.preds)
		}
		s.stats.IndexServices++
		if s.obs != nil {
			s.obs.indexSvc.Inc()
		}
	}
	s.stats.BucketsServed++
	var svcAttr string
	if traced {
		switch {
		case strategy == xmatch.Index:
			svcAttr = trace.AttrIndex
		case inMem:
			svcAttr = trace.AttrScanHit
		default:
			svcAttr = trace.AttrScanCold
		}
	}

	// Distribute results and retire work units.
	end := s.cfg.Clock.Now()
	byQuery := s.byQueryBuf
	clear(byQuery)
	for _, p := range pairs {
		byQuery[p.QueryID] = append(byQuery[p.QueryID], p)
	}
	seen := s.seenBuf
	clear(seen)
	for _, it := range items {
		seen[it.wo.QueryID]++
	}
	completed := s.completedBuf[:0]
	for qid, n := range seen {
		qs := s.queries[qid]
		if qs == nil {
			panic(fmt.Sprintf("core: work unit for unknown query %d", qid))
		}
		qs.remaining -= n
		if ps := byQuery[qid]; len(ps) > 0 {
			qs.result.Pairs = append(qs.result.Pairs, ps...)
			qs.result.Matches += len(ps)
		}
		if qs.trace != nil {
			var read *trace.Span
			if readKind != "" {
				//lifevet:allow hotpath-alloc -- store-read spans exist only for sampled (traced) queries; the untraced steady state never takes this branch
				read = &trace.Span{
					Stage: trace.StageStoreRead, Start: readT0, End: readT1,
					Attr: readKind, Key: int64(idx),
				}
			}
			qs.trace.ServiceVisit(trace.Span{
				Stage: trace.StageService, Start: now, End: end,
				Attr: svcAttr, N: int64(n), Key: int64(idx), Score: svcUt,
			}, read, inMem)
			s.svcTraceID = qs.trace.ID()
		}
		if qs.remaining < 0 {
			panic(fmt.Sprintf("core: query %d over-completed", qid))
		}
		if qs.remaining == 0 {
			if qs.trace != nil {
				s.traced--
			}
			qs.result.Completed = end
			completed = append(completed, qs.result)
			delete(s.queries, qid)
			delete(s.preds, qid)
		}
	}
	s.completedBuf = completed
	s.releaseQueue(q)
	return completed
}

// finalize snapshots run statistics.
func (s *scheduler) finalize(makespan time.Duration, completed int) RunStats {
	st := s.stats
	st.Completed = completed
	st.Makespan = makespan
	st.Disk = s.cfg.Disk.Stats()
	st.Cache = s.cache.Stats()
	return st
}

// Package core implements LifeRaft itself: the data-driven, batch query
// scheduler of the paper. It contains the architecture of Figure 3 —
// query pre-processor, workload manager, aged-workload-throughput
// scheduler, hybrid join evaluator, and bucket cache — plus the baseline
// schedulers the evaluation compares against (NoShare, round-robin, and
// the index-only approach SkyQuery used before LifeRaft).
//
// The engine runs against a simclock.Clock: with a virtual clock, hours of
// schedule replay in milliseconds and all costs come from the disk model
// (the configuration used by every experiment); with the real clock the
// same decision logic serves live queries (see Live).
package core

import (
	"fmt"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/cache"
	"liferaft/internal/catalog"
	"liferaft/internal/disk"
	"liferaft/internal/shard"
	"liferaft/internal/simclock"
	"liferaft/internal/trace"
	"liferaft/internal/xmatch"
)

// PolicyKind selects the scheduling discipline.
type PolicyKind string

// Scheduling policies evaluated in the paper (§5).
const (
	// PolicyLifeRaft schedules the bucket with the maximum aged workload
	// throughput metric (Eq. 2); Alpha sets the age bias.
	PolicyLifeRaft PolicyKind = "liferaft"
	// PolicyRoundRobin services non-empty buckets cyclically in HTM ID
	// order, the "RR" baseline proposed for SkyQuery.
	PolicyRoundRobin PolicyKind = "rr"
	// PolicyLeastShared services the bucket with the smallest workload
	// queue first — the "least sharable file first" discipline of
	// Agrawal et al. that §6 argues is wrong for scientific workloads
	// (it maximizes future batching at the cost of buffering). Included
	// for the policy ablation.
	PolicyLeastShared PolicyKind = "lsf"
)

// Config configures an Engine.
type Config struct {
	// Store serves buckets; it determines the partition and disk model.
	Store *bucket.Store
	// Disk charges costs; it must be the disk the Store was built with.
	Disk *disk.Disk
	// Clock is the time source shared with Disk.
	Clock simclock.Clock

	// Policy selects the scheduler; default PolicyLifeRaft.
	Policy PolicyKind
	// Alpha is the age bias of Eq. 2 in [0, 1]: 0 is the greedy
	// most-contentious-first scheduler, 1 completes work in arrival
	// order. Ignored by round-robin.
	Alpha float64
	// CacheBuckets is the bucket cache capacity (the paper fixes 20).
	// Minimum 1.
	CacheBuckets int
	// CachePolicy selects the replacement policy; default LRU (paper).
	CachePolicy cache.PolicyName
	// HybridThreshold is the queue-to-bucket ratio below which an
	// out-of-core bucket is joined via the index (paper §3.4; default
	// 0.03 per Figure 2).
	HybridThreshold float64
	// MaterializeResults makes the evaluator produce actual match pairs.
	// Costs are charged identically either way (DESIGN.md §3).
	MaterializeResults bool

	// PrefetchDepth, when positive, enables the schedule-driven
	// prefetcher: after every pick the scheduler peeks the top
	// PrefetchDepth entries of its Ut and age orderings — the buckets
	// Eq. 2 will choose next — and asks the store's tiered backend to
	// promote their groups toward the fast tier ahead of their service.
	// Requires a Store whose backend implements bucket.Prefetcher
	// (build the config with NewFileBackedTiered); only the LifeRaft
	// policy maintains the orderings the peek reads, so other policies
	// ignore the knob. 0 (the default) disables the hook entirely and
	// leaves the service loop byte-for-byte on its untiered path.
	PrefetchDepth int

	// Backend selects the storage backend: BackendSim (default) serves
	// buckets from the analytic disk model on the configured clock;
	// BackendFile serves them from segment files under DataDir with
	// real I/O on the real clock. Build file-backed configs with
	// NewFileBacked, which opens and validates the segment store.
	Backend BackendKind
	// DataDir is the segment directory backing BackendFile.
	DataDir string

	// Shards runs the engine as K independent disk/worker shards: the
	// bucket space is partitioned across shards (ShardPartitioner), each
	// shard gets its own forked disk, bucket cache, and workload queues,
	// and a worker services each shard's local aged-workload-throughput
	// schedule concurrently. A query's completion is the completion of
	// its last shard. 0 or 1 preserves the single-disk engine exactly.
	// Config.Disk serves as the cost-model template; each shard forks
	// its own disk from it. Each shard's cache holds CacheBuckets
	// buckets (scaling out adds memory along with arms).
	Shards int
	// ShardPartitioner assigns buckets to shards when Shards > 1; nil
	// means shard.ByRange (contiguous, balanced bucket counts).
	ShardPartitioner shard.Partitioner
	// ownsBucket, when non-nil, restricts admission to the buckets a
	// shard owns. Set only by the sharded engine on its per-shard
	// configs; external callers cannot (and must not) set it.
	ownsBucket func(int) bool

	// Metrics, when non-nil, instruments the engine: pick latency,
	// service strategy, cache hit/miss, completions, and store read
	// latency are recorded per shard (internal/metric handles, resolved
	// once at construction; nil costs nothing on the hot path). The
	// sharded engine passes the same EngineMetrics to every shard with
	// the shard's own index.
	Metrics *EngineMetrics
	// shardIndex is the shard label the engine reports metrics under.
	// Set by forkConfigs; 0 for the single-disk engine.
	shardIndex int

	// AgeDepreciationGamma enables the §6 QoS extension: the age of a
	// query's requests is depreciated by 1/(1+γ·ln(1+objects)) so large
	// batch queries do not starve interactive ones. 0 disables.
	AgeDepreciationGamma float64
	// WorkloadMemoryCap bounds the number of workload objects held in
	// memory (the §6 overflow extension). When the cap is exceeded the
	// queues of the coldest buckets spill to disk, paying sequential
	// write cost now and a fetch cost when scheduled. 0 disables.
	WorkloadMemoryCap int
}

func (c Config) withDefaults() (Config, error) {
	if c.Store == nil {
		return c, fmt.Errorf("core: Config.Store is required")
	}
	if c.Disk == nil {
		return c, fmt.Errorf("core: Config.Disk is required")
	}
	if c.Clock == nil {
		return c, fmt.Errorf("core: Config.Clock is required")
	}
	if c.Backend == "" {
		c.Backend = BackendSim
	}
	if err := c.validateBackend(); err != nil {
		return c, err
	}
	if c.Policy == "" {
		c.Policy = PolicyLifeRaft
	}
	if c.Policy != PolicyLifeRaft && c.Policy != PolicyRoundRobin && c.Policy != PolicyLeastShared {
		return c, fmt.Errorf("core: unknown policy %q", c.Policy)
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("core: Alpha %v out of [0,1]", c.Alpha)
	}
	if c.CacheBuckets < 1 {
		c.CacheBuckets = 1
	}
	if c.HybridThreshold == 0 {
		c.HybridThreshold = xmatch.DefaultThreshold
	}
	if c.HybridThreshold < 0 || c.HybridThreshold >= 1 {
		return c, fmt.Errorf("core: HybridThreshold %v out of [0,1)", c.HybridThreshold)
	}
	if c.AgeDepreciationGamma < 0 {
		return c, fmt.Errorf("core: negative AgeDepreciationGamma")
	}
	if c.WorkloadMemoryCap < 0 {
		return c, fmt.Errorf("core: negative WorkloadMemoryCap")
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("core: negative Shards")
	}
	if c.PrefetchDepth < 0 {
		return c, fmt.Errorf("core: negative PrefetchDepth")
	}
	if c.PrefetchDepth > 0 && c.Store.Prefetcher() == nil {
		return c, fmt.Errorf("core: PrefetchDepth %d but the store's backend cannot prefetch; build the config with NewFileBackedTiered", c.PrefetchDepth)
	}
	return c, nil
}

// Job is one query as submitted to a node: the pre-processed list of
// workload objects plus an optional predicate. (The Query Pre-Processor of
// Figure 3 produces the Objects list; see workload.Materialize.)
type Job struct {
	ID      uint64
	Objects []xmatch.WorkloadObject
	Pred    xmatch.Predicate
	// Trace, when non-nil, collects per-stage spans for this query as the
	// scheduler services it (admission fan-out, bucket services with
	// strategy and Ut score, store reads, cache outcomes). nil — the
	// default — records nothing and costs nothing on the service loop.
	Trace *trace.Trace
}

// Result reports one completed query.
type Result struct {
	QueryID   uint64
	Arrived   time.Time
	Completed time.Time
	// Matches is the number of successful cross-match pairs. It is zero
	// in cost-only mode, where joins are not materialized.
	Matches int
	// Assignments is the number of (object, bucket) work units the
	// query expanded to.
	Assignments int
	// Pairs holds the materialized matches when the engine is
	// configured with MaterializeResults.
	Pairs []xmatch.Pair
	// Cancelled marks a query withdrawn before completion (Live.Cancel,
	// or a SubmitCtx context expiring): its remaining workload objects
	// were dropped from the queues, and the counters above reflect only
	// the work done before the cancel. Completed is the cancel instant.
	Cancelled bool
}

// ResponseTime returns Completed - Arrived.
func (r Result) ResponseTime() time.Duration { return r.Completed.Sub(r.Arrived) }

// absorb merges another shard's partial result for the same query into r:
// work counters sum, pairs concatenate, the arrival is the earliest and
// the completion the latest across shards.
func (r *Result) absorb(o Result) {
	r.Assignments += o.Assignments
	r.Matches += o.Matches
	r.Pairs = append(r.Pairs, o.Pairs...)
	if o.Arrived.Before(r.Arrived) {
		r.Arrived = o.Arrived
	}
	if o.Completed.After(r.Completed) {
		r.Completed = o.Completed
	}
	// A query cancelled on any shard is cancelled as a whole: the merged
	// result carries only the work done before the (first) cancel.
	r.Cancelled = r.Cancelled || o.Cancelled
}

// RunStats aggregates a run.
type RunStats struct {
	Completed     int
	Makespan      time.Duration
	Disk          disk.Stats
	Cache         cache.Stats
	BucketsServed int64
	ScanServices  int64
	IndexServices int64
	// SpilledObjects counts workload objects written to disk by the
	// overflow extension; SpillFetches counts queue fetch-backs.
	SpilledObjects int64
	SpillFetches   int64
	// Cancelled counts queries withdrawn before completion (merged across
	// shards by the sharded Live engine, so a query cancelled on several
	// shards counts once). CancelledObjects counts the workload objects
	// dropped from the queues by those cancellations.
	Cancelled        int
	CancelledObjects int64
	// PerShard breaks a sharded run down by shard (nil for the
	// single-disk engine). The aggregate fields above are the merged
	// view: counters sum across shards and Makespan is the latest shard
	// finish, so Throughput reflects the parallel wall clock.
	PerShard []ShardStats
}

// ShardStats is one shard's slice of a sharded run.
type ShardStats struct {
	// Shard is the shard index in [0, Config.Shards).
	Shard int
	// Buckets is how many buckets of the partition the shard owns.
	Buckets int
	// Jobs is how many queries fanned work out to this shard.
	Jobs int
	// Stats is the shard's own engine statistics, measured on its own
	// clock and disk.
	Stats RunStats
}

// Throughput returns completed queries per second of makespan.
func (s RunStats) Throughput() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	return float64(s.Completed) / s.Makespan.Seconds()
}

// String implements fmt.Stringer.
func (s RunStats) String() string {
	return fmt.Sprintf("completed=%d makespan=%v throughput=%.4f/s services=%d (scan=%d index=%d) cache=[%v]",
		s.Completed, s.Makespan.Round(time.Millisecond), s.Throughput(),
		s.BucketsServed, s.ScanServices, s.IndexServices, s.Cache)
}

// NewVirtual builds the standard experiment stack: a virtual clock, a disk
// with the SkyQuery model, a store over the partition (materializing if
// materialize is set), and a Config pre-filled with paper defaults
// (LifeRaft policy, 20-bucket LRU cache, 3% hybrid threshold).
func NewVirtual(part *bucket.Partition, alpha float64, materialize bool) (Config, *simclock.Virtual) {
	clk := simclock.NewVirtual()
	d := disk.New(disk.SkyQuery(), clk)
	st := bucket.NewStore(part, d, materialize)
	return Config{
		Store:              st,
		Disk:               d,
		Clock:              clk,
		Policy:             PolicyLifeRaft,
		Alpha:              alpha,
		CacheBuckets:       20,
		CachePolicy:        cache.PolicyLRU,
		HybridThreshold:    xmatch.DefaultThreshold,
		MaterializeResults: materialize,
	}, clk
}

// bucketObjects is the cached payload: a materialized bucket (nil in
// cost-only mode, where membership alone matters).
type bucketObjects []catalog.Object

// NewOn is NewVirtual generalized to a caller-provided clock: federation
// nodes pass the real clock (deployments) or a shared virtual clock
// (experiments).
func NewOn(part *bucket.Partition, alpha float64, materialize bool, clk simclock.Clock) Config {
	d := disk.New(disk.SkyQuery(), clk)
	st := bucket.NewStore(part, d, materialize)
	return Config{
		Store:              st,
		Disk:               d,
		Clock:              clk,
		Policy:             PolicyLifeRaft,
		Alpha:              alpha,
		CacheBuckets:       20,
		CachePolicy:        cache.PolicyLRU,
		HybridThreshold:    xmatch.DefaultThreshold,
		MaterializeResults: materialize,
	}
}

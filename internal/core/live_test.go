package core

import (
	"sync"
	"testing"
	"time"

	"liferaft/internal/metrics"
	"liferaft/internal/simclock"
	"liferaft/internal/workload"
)

// TestLiveConcurrentSubmitters hammers the live engine from many
// goroutines (run under -race in CI) and checks exactly-once delivery.
func TestLiveConcurrentSubmitters(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0.5, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	perWorker := len(jobs) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				job := jobs[w*perWorker+i]
				ch, err := l.Submit(job)
				if err != nil {
					errs[w] = err
					return
				}
				r, ok := <-ch
				if !ok || r.QueryID != job.ID {
					errs[w] = ErrClosed
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stats, ok := l.Stats()
	if !ok || stats.Completed != workers*perWorker {
		t.Errorf("stats = %+v, ok=%v", stats, ok)
	}
}

// TestLiveCloseWaitsForDrain: queries submitted before Close must all
// complete even when Close races the scheduler.
func TestLiveCloseWaitsForDrain(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan Result
	for _, j := range jobs[:20] {
		ch, err := l.Submit(j)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case _, ok := <-ch:
			if !ok {
				t.Fatalf("channel %d closed without a result", i)
			}
		default:
			t.Fatalf("channel %d empty after Close returned", i)
		}
	}
}

// TestLiveEmptyJobCompletesImmediately covers the no-overlap admit path.
func TestLiveEmptyJobCompletesImmediately(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ch, err := l.Submit(Job{ID: 424242})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.QueryID != 424242 || r.Assignments != 0 {
			t.Errorf("result = %+v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("empty job never completed")
	}
}

func TestLiveStatsBeforeClose(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Stats(); ok {
		t.Error("stats should be unavailable before Close")
	}
	l.Close()
}

func TestLiveRejectsBadConfig(t *testing.T) {
	if _, err := NewLive(Config{}); err == nil {
		t.Error("NewLive with empty config should fail")
	}
}

// TestTunerEndToEnd drives the full §4 adaptive loop on real engine runs:
// measure curves at two saturations, register them, and check that the
// selected α is (weakly) larger at the lower saturation.
func TestTunerEndToEnd(t *testing.T) {
	part, jobs := fixture(t)
	sub := jobs[:60]
	measure := func(rate float64) ([]float64, error) {
		offs := workload.Poisson{RatePerSec: rate}.Offsets(len(sub), 11)
		curve, err := BuildCurve(nil, func(alpha float64) ([]Result, RunStats, error) {
			cfg, _ := NewVirtual(part, alpha, false)
			return Run(cfg, sub, offs)
		})
		if err != nil {
			return nil, err
		}
		tn, err := NewTuner(0.2)
		if err != nil {
			return nil, err
		}
		if err := tn.AddCurve(rate, curve); err != nil {
			return nil, err
		}
		a, err := tn.Alpha(rate)
		return []float64{a}, err
	}
	low, err := measure(0.5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := measure(50)
	if err != nil {
		t.Fatal(err)
	}
	if low[0] < high[0] {
		t.Errorf("low-saturation α %v should be >= high-saturation α %v", low[0], high[0])
	}
}

// TestAdaptiveRetunes drives the full §4 closed loop: a live engine whose
// α follows the saturation estimate through the tuner's curves.
func TestAdaptiveRetunes(t *testing.T) {
	part, jobs := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tn, _ := NewTuner(0.2)
	// Curves shaped like the paper's: slow arrivals -> α=1, fast -> α=0.25.
	tn.AddCurve(0.1, metrics.Curve{
		{Alpha: 0.25, Throughput: 0.10, RespTime: 50},
		{Alpha: 1.0, Throughput: 0.10, RespTime: 20},
	})
	tn.AddCurve(10, metrics.Curve{
		{Alpha: 0.25, Throughput: 3.0, RespTime: 300},
		{Alpha: 1.0, Throughput: 1.5, RespTime: 280},
	})
	est, _ := NewSaturationEstimator(30 * time.Second)
	ad, err := NewAdaptive(l, tn, est, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	defer ad.Close()

	// Slow phase, then a burst: the estimator must cross the dead band
	// and trigger at least two retunes (initial + shift).
	clk := cfg.Clock.(*simclock.Virtual)
	var chans []<-chan Result
	for i := 0; i < 10; i++ {
		ch, err := ad.Submit(jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		clk.Advance(10 * time.Second) // 0.1 q/s
	}
	for i := 10; i < 40; i++ {
		ch, err := ad.Submit(jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		clk.Advance(100 * time.Millisecond) // 10 q/s burst
	}
	for _, ch := range chans {
		if _, ok := <-ch; !ok {
			t.Fatal("dropped query")
		}
	}
	if ad.Retunes() < 2 {
		t.Errorf("retunes = %d, want >= 2 (slow phase then burst)", ad.Retunes())
	}
}

func TestAdaptiveValidation(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, _ := NewLive(cfg)
	defer l.Close()
	tn, _ := NewTuner(0.2)
	est, _ := NewSaturationEstimator(time.Minute)
	if _, err := NewAdaptive(nil, tn, est, 0.25); err == nil {
		t.Error("nil live should fail")
	}
	if _, err := NewAdaptive(l, nil, est, 0.25); err == nil {
		t.Error("nil tuner should fail")
	}
	if _, err := NewAdaptive(l, tn, nil, 0.25); err == nil {
		t.Error("nil estimator should fail")
	}
	if _, err := NewAdaptive(l, tn, est, 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestSetAlphaClampsAndRejectsClosed(t *testing.T) {
	part, _ := fixture(t)
	cfg, _ := NewVirtual(part, 0, false)
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SetAlpha(2); err != nil { // clamped, accepted
		t.Fatal(err)
	}
	if err := l.SetAlpha(-1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.SetAlpha(0.5); err != ErrClosed {
		t.Errorf("SetAlpha after Close = %v", err)
	}
}

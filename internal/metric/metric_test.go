package metric

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("liferaft_test_total", "a counter")
	g := r.NewGauge("liferaft_test_depth", "a gauge")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Dec()
	out := render(t, r)
	for _, want := range []string{
		"# HELP liferaft_test_total a counter",
		"# TYPE liferaft_test_total counter",
		"liferaft_test_total 3",
		"# TYPE liferaft_test_depth gauge",
		"liferaft_test_depth 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 6 {
		t.Errorf("values: counter=%v gauge=%v", c.Value(), g.Value())
	}
}

func TestCounterPanicsOnDecrease(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("liferaft_test_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

// TestHistogramBucketBoundaries pins the boundary semantics: an
// observation equal to an upper bound lands in that bucket (le is <=),
// one just above lands in the next, and everything beyond the last bound
// lands only in +Inf. Cumulative rendering must reflect exactly that.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("liferaft_test_seconds", "boundaries", []float64{0.1, 1, 10})

	h.Observe(0.1) // == first bound: bucket le=0.1
	h.Observe(0.100001)
	h.Observe(1) // == second bound
	h.Observe(10)
	h.Observe(10.5) // beyond last bound: +Inf only
	h.Observe(-1)   // below everything: first bucket

	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	wantSum := 0.1 + 0.100001 + 1 + 10 + 10.5 + -1
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	out := render(t, r)
	for _, want := range []string{
		`liferaft_test_seconds_bucket{le="0.1"} 2`,  // -1, 0.1
		`liferaft_test_seconds_bucket{le="1"} 4`,    // + 0.100001, 1
		`liferaft_test_seconds_bucket{le="10"} 5`,   // + 10
		`liferaft_test_seconds_bucket{le="+Inf"} 6`, // + 10.5
		`liferaft_test_seconds_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending buckets did not panic")
		}
	}()
	r.NewHistogram("liferaft_bad_seconds", "x", []float64{1, 1})
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 7)
	if len(b) != 7 {
		t.Fatalf("len = %d", len(b))
	}
	if math.Abs(b[0]-1e-6) > 1e-18 || math.Abs(b[6]-1) > 1e-9 {
		t.Fatalf("range = [%v, %v], want [1e-6, 1]", b[0], b[6])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("not ascending at %d", i)
		}
	}
}

func TestVecLabelsAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("liferaft_admission_total", "per tenant", []string{"tenant", "decision"}, VecOpts{})
	v.With(`we"ird\ten`+"\nant", "admitted").Add(2)
	v.With("a", "rejected_rate").Inc()
	out := render(t, r)
	for _, want := range []string{
		`liferaft_admission_total{tenant="a",decision="rejected_rate"} 1`,
		`liferaft_admission_total{tenant="we\"ird\\ten\nant",decision="admitted"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestVecCardinalityBoundUnderChurn is the cardinality contract: 10k
// one-shot tenants resolve series in a Vec capped at 64, and the
// registry must stay bounded — idle tenants are folded into the
// "_other" overflow series with their counts conserved, so the scrape
// size and memory stay fixed while aggregate rates remain exact.
func TestVecCardinalityBoundUnderChurn(t *testing.T) {
	const cap = 64
	r := NewRegistry()
	v := r.NewCounterVec("liferaft_admission_total", "x", []string{"tenant"}, VecOpts{MaxSeries: cap})
	h := r.NewHistogramVec("liferaft_response_seconds", "x", []string{"tenant"}, []float64{0.1, 1}, VecOpts{MaxSeries: cap})
	for i := 0; i < 10_000; i++ {
		name := "tenant-" + string(rune('a'+i%26)) + "-" + itoa(i)
		v.With(name).Inc()
		h.With(name).Observe(float64(i%3) * 0.09)
	}
	if got := v.Series(); got > cap+1 {
		t.Errorf("counter vec series = %d, want <= %d (cap+overflow)", got, cap+1)
	}
	if got := h.Series(); got > cap+1 {
		t.Errorf("histogram vec series = %d, want <= %d", got, cap+1)
	}

	// Conservation: the sum over every rendered series equals the 10k
	// observations, fold-in included.
	out := render(t, r)
	if !strings.Contains(out, `tenant="_other"`) {
		t.Fatalf("overflow series not rendered:\n%s", out[:min(len(out), 2000)])
	}
	var total float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "liferaft_admission_total{") {
			var v float64
			if _, err := fmt.Sscan(line[strings.LastIndexByte(line, ' ')+1:], &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			total += v
		}
	}
	if total != 10_000 {
		t.Errorf("counter total across series = %v, want 10000 (counts must be conserved across eviction)", total)
	}
	var histCount uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "liferaft_response_seconds_count{") {
			var v uint64
			if _, err := fmt.Sscan(line[strings.LastIndexByte(line, ' ')+1:], &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			histCount += v
		}
	}
	if histCount != 10_000 {
		t.Errorf("histogram count across series = %d, want 10000", histCount)
	}

	// Recently-touched series survive; the LRU evicts idle ones.
	v.With("hot").Inc()
	for i := 0; i < 200; i++ {
		v.With("churn-" + itoa(i)).Inc()
		v.With("hot").Inc()
	}
	out = render(t, r)
	if !strings.Contains(out, `liferaft_admission_total{tenant="hot"} 201`) {
		t.Errorf("hot series evicted despite constant touches:\n%s", out[:min(len(out), 2000)])
	}
}

func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("liferaft_x_total", "x", []string{"tenant"}, VecOpts{MaxSeries: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With("t" + itoa((w+i)%32)).Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.Series(); got > 9 {
		t.Errorf("series = %d, want <= 9", got)
	}
}

func TestOnGather(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("liferaft_depth", "computed at scrape")
	r.OnGather(func() { g.Set(42) })
	out := render(t, r)
	if !strings.Contains(out, "liferaft_depth 42") {
		t.Errorf("gather callback did not run:\n%s", out)
	}
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("liferaft_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("liferaft_dup_total", "y")
}

// itoa avoids strconv in hot test loops for no reason other than keeping
// the imports minimal.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

// TestEscapeLabelTable pins the text-format escaping rules for label
// values character by character. Exemplar emission raised the stakes:
// a malformed escape inside `# {trace_id="..."}` breaks the whole
// scrape, not just one series.
func TestEscapeLabelTable(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"plain", "abc-123", "abc-123"},
		{"backslash", `a\b`, `a\\b`},
		{"quote", `a"b`, `a\"b`},
		{"newline", "a\nb", `a\nb`},
		{"all three", "\\\"\n", `\\\"\n`},
		{"double backslash", `\\`, `\\\\`},
		{"trailing backslash", `trail\`, `trail\\`},
		{"carriage return passes", "a\rb", "a\rb"},
		{"tab passes", "a\tb", "a\tb"},
		{"utf8 passes", "αβ≠", "αβ≠"},
		{"empty", "", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("%s: escapeLabel(%q) = %q, want %q", c.name, c.in, got, c.want)
		}
	}

	// End to end: a hostile label value renders into exactly one
	// well-formed line.
	r := NewRegistry()
	v := r.NewCounterVec("liferaft_esc_total", "x", []string{"tenant"}, VecOpts{})
	v.With("a\\b\"c\nd").Inc()
	out := render(t, r)
	want := `liferaft_esc_total{tenant="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("output missing %q:\n%s", want, out)
	}
}

// TestHistogramExemplar checks ObserveExemplar: counts behave exactly
// like Observe, and the bucket line the value landed in carries an
// OpenMetrics `# {trace_id="..."} value` suffix — the freshest exemplar
// per bucket wins, and untouched buckets stay clean.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("liferaft_test_seconds", "exemplars", []float64{0.1, 1, 10})

	h.Observe(0.05) // no exemplar on this bucket
	h.ObserveExemplar(0.5, "00000000deadbeef")
	h.ObserveExemplar(0.7, "00000000cafef00d") // same bucket: replaces
	h.ObserveExemplar(99, "ffff0000ffff0000")  // +Inf bucket
	h.ObserveExemplar(5, "")                   // empty id: plain observe

	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := render(t, r)
	for _, want := range []string{
		"liferaft_test_seconds_bucket{le=\"0.1\"} 1\n", // no exemplar suffix
		"liferaft_test_seconds_bucket{le=\"1\"} 3 # {trace_id=\"00000000cafef00d\"} 0.7\n",
		"liferaft_test_seconds_bucket{le=\"10\"} 4\n", // empty-id observe left it clean
		"liferaft_test_seconds_bucket{le=\"+Inf\"} 5 # {trace_id=\"ffff0000ffff0000\"} 99\n",
		"liferaft_test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `deadbeef`) {
		t.Error("replaced exemplar still rendered")
	}
}

// TestHistogramVecExemplar: exemplars work on labeled histograms and
// only on the series that recorded them.
func TestHistogramVecExemplar(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("liferaft_test_seconds", "x", []string{"tenant"}, []float64{1}, VecOpts{})
	v.With("a").ObserveExemplar(0.5, "0123456789abcdef")
	v.With("b").Observe(0.5)
	out := render(t, r)
	if !strings.Contains(out, "liferaft_test_seconds_bucket{tenant=\"a\",le=\"1\"} 1 # {trace_id=\"0123456789abcdef\"} 0.5\n") {
		t.Fatalf("missing exemplar on tenant a:\n%s", out)
	}
	if !strings.Contains(out, "liferaft_test_seconds_bucket{tenant=\"b\",le=\"1\"} 1\n") {
		t.Fatalf("tenant b line not clean:\n%s", out)
	}
}

// Package metric is a dependency-free Prometheus-client: counters,
// gauges, and histograms, optionally split by label values, registered
// in a Registry that renders the Prometheus text exposition format
// (text/plain; version=0.0.4) for a /metrics endpoint.
//
// Two properties matter more here than API familiarity:
//
//   - Observation is cheap and allocation-free. Handles (Counter, Gauge,
//     Histogram) are resolved once and then touched with a few atomic
//     operations, so the engine's zero-alloc service loop can be
//     instrumented without perturbing what it measures. Vec lookups
//     (With) take a mutex and are meant for admission-rate paths, not
//     per-pick paths.
//
//   - Label cardinality is bounded by construction. Every Vec carries a
//     MaxSeries cap; when a new label set would exceed it, the
//     least-recently-used series is folded into a reserved overflow
//     series (label value "_other") and its slot reused. Counter and
//     histogram totals are conserved across folding, so aggregate rates
//     stay correct while a 10k-tenant churn cannot grow the registry —
//     or a scrape — without bound. See docs/OPERATIONS.md.
//
// The package depends only on the standard library and exposes no
// global state: tests and multi-node processes build as many registries
// as they need.
package metric

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// OverflowLabel is the reserved label value that absorbs series evicted
// from a full Vec. Callers must not use it as a real label value.
const OverflowLabel = "_other"

// DefaultMaxSeries bounds a Vec's series count when the constructor is
// given no explicit cap.
const DefaultMaxSeries = 512

// kind is the metric family type, named exactly as the text format spells
// it.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Registry holds metric families and renders them in the text format.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names, rebuilt on registration
	gathers  []func()
}

// family is one named metric: a fixed type, help text, label schema, and
// a bounded set of series.
type family struct {
	name      string
	help      string
	typ       kind
	labels    []string
	buckets   []float64 // histogram upper bounds, ascending, no +Inf
	maxSeries int

	mu       sync.Mutex
	series   map[string]*series // key: joined label values
	overflow *series            // lazily created eviction sink
	clock    uint64             // LRU ticks for eviction order
}

// series is one labeled time series. Values are atomics so handle
// operations never take the family lock.
type series struct {
	labelVals []string
	touched   atomic.Uint64 // family.clock at last With resolution

	// counter/gauge payload.
	bits atomic.Uint64 // float64 bits

	// histogram payload (nil for counter/gauge): cumulative on render,
	// per-bucket on observe. counts[len(buckets)] is the +Inf bucket.
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64

	// exemplars[i] is the most recent trace-annotated observation that
	// landed in bucket i (nil when none); same length as counts. Only
	// ObserveExemplar writes here, so untraced observation paths pay
	// nothing.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one trace-annotated observation, rendered after its bucket
// line as OpenMetrics `# {trace_id="..."} value` so a dashboard spike
// links straight to a captured trace.
type exemplar struct {
	traceID string
	value   float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnGather registers f to run at the start of every WriteText — the hook
// for gauges computed from live state (queue depths, rates) instead of
// updated on every transition.
func (r *Registry) OnGather(f func()) {
	r.mu.Lock()
	r.gathers = append(r.gathers, f)
	r.mu.Unlock()
}

// register adds a family, panicking on a name or type conflict:
// registration happens at construction time and a conflict is a
// programming error, exactly like a duplicate flag name.
func (r *Registry) register(name, help string, typ kind, labels []string, buckets []float64, maxSeries int) *family {
	if err := checkName(name); err != nil {
		panic(fmt.Sprintf("metric: %v", err))
	}
	for _, l := range labels {
		if err := checkName(l); err != nil {
			panic(fmt.Sprintf("metric: family %s: label %v", name, err))
		}
	}
	if maxSeries <= 0 {
		maxSeries = DefaultMaxSeries
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metric: duplicate family %q", name))
	}
	f := &family{
		name: name, help: help, typ: typ, labels: labels,
		buckets: buckets, maxSeries: maxSeries,
		series: make(map[string]*series),
	}
	r.families[name] = f
	r.names = append(r.names, name)
	sort.Strings(r.names)
	return f
}

// checkName enforces the Prometheus metric/label name charset.
func checkName(s string) error {
	if s == "" {
		return fmt.Errorf("empty name")
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && !(i > 0 && c >= '0' && c <= '9') {
			return fmt.Errorf("invalid name %q", s)
		}
	}
	return nil
}

// ---- Unlabeled handles ----

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Add increases the counter by v; negative v panics (counters only go
// up — use a Gauge for values that fall).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("metric: counter decrease")
	}
	addFloat(&c.s.bits, v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add increases (or with negative v decreases) the gauge.
func (g *Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search beats linear walk from ~16 buckets; latency
	// histograms here have 10-20. sort.SearchFloat64s allocates nothing.
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.counts[i].Add(1)
	h.s.total.Add(1)
	addFloat(&h.s.sumBits, v)
}

// ObserveExemplar records one value and attaches traceID as the bucket's
// exemplar (replacing any earlier one — the freshest trace is the one an
// operator wants). An empty traceID degrades to a plain Observe. Unlike
// Observe this allocates; call it only on already-traced requests.
//
//lifevet:allow hotpath-alloc -- exemplars are recorded only for sampled (traced) requests, which are off the zero-alloc steady state by definition
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.counts[i].Add(1)
	h.s.total.Add(1)
	addFloat(&h.s.sumBits, v)
	if traceID != "" {
		h.s.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.s.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ---- Constructors ----

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, 1)
	return &Counter{s: f.getOrCreate(nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, 1)
	return &Gauge{s: f.getOrCreate(nil)}
}

// NewHistogram registers an unlabeled histogram with the given ascending
// bucket upper bounds (the implicit +Inf bucket is added automatically;
// nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	b := checkBuckets(name, buckets)
	f := r.register(name, help, kindHistogram, nil, b, 1)
	return &Histogram{s: f.getOrCreate(nil), buckets: b}
}

// VecOpts tunes a labeled family.
type VecOpts struct {
	// MaxSeries caps the number of live series (default
	// DefaultMaxSeries). At the cap, resolving a new label set folds the
	// least-recently-resolved series into the "_other" overflow series.
	MaxSeries int
}

// CounterVec is a counter family split by label values.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family split by label values.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family split by label values.
type HistogramVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels []string, opts VecOpts) *CounterVec {
	if len(labels) == 0 {
		panic("metric: vec with no labels")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil, opts.MaxSeries)}
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels []string, opts VecOpts) *GaugeVec {
	if len(labels) == 0 {
		panic("metric: vec with no labels")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil, opts.MaxSeries)}
}

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, labels []string, buckets []float64, opts VecOpts) *HistogramVec {
	if len(labels) == 0 {
		panic("metric: vec with no labels")
	}
	b := checkBuckets(name, buckets)
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, b, opts.MaxSeries)}
}

// With resolves the series for the given label values (one per declared
// label, in declaration order), creating — or, at the cardinality cap,
// evicting for — it as needed. Hold the returned handle briefly: a
// handle kept across evictions keeps writing, but to a series no longer
// rendered. Re-resolving on each use is what keeps the LRU honest.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{s: v.f.resolve(labelVals)}
}

// With resolves the series for the given label values; see
// CounterVec.With.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{s: v.f.resolve(labelVals)}
}

// With resolves the series for the given label values; see
// CounterVec.With.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{s: v.f.resolve(labelVals), buckets: v.f.buckets}
}

// Series returns the number of live series in the family, including the
// overflow series once created. It never exceeds MaxSeries+1.
func (v *CounterVec) Series() int { return v.f.count() }

// Series returns the number of live series; see CounterVec.Series.
func (v *GaugeVec) Series() int { return v.f.count() }

// Series returns the number of live series; see CounterVec.Series.
func (v *HistogramVec) Series() int { return v.f.count() }

// DefBuckets are general-purpose latency buckets in seconds, the
// Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n ascending buckets starting at start, each factor
// times the last — the shape for latencies spanning decades (a pick
// costs microseconds, a cold scan seconds).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metric: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// checkBuckets validates ascending order and defaults nil to DefBuckets.
func checkBuckets(name string, buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metric: histogram %s: no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metric: histogram %s: buckets not ascending at %d", name, i))
		}
	}
	// Strip a trailing +Inf: the implicit overflow bucket always exists.
	if math.IsInf(buckets[len(buckets)-1], 1) {
		buckets = buckets[:len(buckets)-1]
	}
	return buckets
}

// ---- Family internals ----

// seriesKey joins label values; 0x1f cannot appear in rendered values
// unescaped ambiguity-free, and label values containing it still produce
// distinct keys because it is preserved verbatim.
func seriesKey(labelVals []string) string { return strings.Join(labelVals, "\x1f") }

// newSeries builds an empty series for the family's type.
func (f *family) newSeries(labelVals []string) *series {
	s := &series{labelVals: labelVals}
	if f.typ == kindHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
		s.exemplars = make([]atomic.Pointer[exemplar], len(f.buckets)+1)
	}
	return s
}

// getOrCreate is resolve without the eviction policy, used for the
// single series of unlabeled families.
func (f *family) getOrCreate(labelVals []string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seriesKey(labelVals)
	if s := f.series[key]; s != nil {
		return s
	}
	s := f.newSeries(labelVals)
	f.series[key] = s
	return s
}

// resolve returns the series for labelVals, evicting the LRU series into
// the overflow sink when the family is at its cardinality cap.
func (f *family) resolve(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("metric: family %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelVals)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock++
	key := seriesKey(labelVals)
	if s := f.series[key]; s != nil {
		s.touched.Store(f.clock)
		return s
	}
	if len(f.series) >= f.maxSeries {
		f.evictLocked()
	}
	vals := make([]string, len(labelVals))
	copy(vals, labelVals)
	s := f.newSeries(vals)
	s.touched.Store(f.clock)
	f.series[key] = s
	return s
}

// evictLocked folds the least-recently-resolved series into the overflow
// series and removes it. Counter and histogram payloads are added into
// the sink so family totals are conserved; gauge payloads are dropped
// (summing point-in-time values of different series is meaningless).
func (f *family) evictLocked() {
	if f.overflow == nil {
		vals := make([]string, len(f.labels))
		for i := range vals {
			vals[i] = OverflowLabel
		}
		f.overflow = f.newSeries(vals)
	}
	var victimKey string
	var victim *series
	oldest := uint64(math.MaxUint64)
	for k, s := range f.series {
		if t := s.touched.Load(); t < oldest {
			oldest, victimKey, victim = t, k, s
		}
	}
	if victim == nil {
		return
	}
	switch f.typ {
	case kindCounter:
		addFloat(&f.overflow.bits, math.Float64frombits(victim.bits.Load()))
	case kindHistogram:
		for i := range victim.counts {
			f.overflow.counts[i].Add(victim.counts[i].Load())
		}
		f.overflow.total.Add(victim.total.Load())
		addFloat(&f.overflow.sumBits, math.Float64frombits(victim.sumBits.Load()))
	}
	delete(f.series, victimKey)
}

// count returns live series, including the overflow sink.
func (f *family) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.series)
	if f.overflow != nil {
		n++
	}
	return n
}

// ---- Rendering ----

// WriteText renders every family in the Prometheus text exposition
// format, families and series in sorted order so scrapes are
// deterministic and diffable. Gather callbacks run first.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	gathers := append([]func(){}, r.gathers...)
	names := append([]string{}, r.names...)
	r.mu.Unlock()
	for _, g := range gathers {
		g()
	}
	var b strings.Builder
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeText renders one family.
func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	all := make([]*series, 0, len(f.series)+1)
	for _, s := range f.series {
		all = append(all, s)
	}
	if f.overflow != nil {
		all = append(all, f.overflow)
	}
	f.mu.Unlock()
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		return lessLabels(all[i].labelVals, all[j].labelVals)
	})
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range all {
		switch f.typ {
		case kindHistogram:
			f.writeHistogram(b, s)
		default:
			fmt.Fprintf(b, "%s%s %s\n", f.name, f.labelString(s.labelVals, ""), formatValue(math.Float64frombits(s.bits.Load())))
		}
	}
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet,
// appending an OpenMetrics exemplar to any bucket line that has one.
func (f *family) writeHistogram(b *strings.Builder, s *series) {
	var cum uint64
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d", f.name, f.labelString(s.labelVals, formatValue(ub)), cum)
		f.writeExemplar(b, s, i)
		b.WriteByte('\n')
	}
	cum += s.counts[len(f.buckets)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d", f.name, f.labelString(s.labelVals, "+Inf"), cum)
	f.writeExemplar(b, s, len(f.buckets))
	b.WriteByte('\n')
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labelString(s.labelVals, ""), formatValue(math.Float64frombits(s.sumBits.Load())))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labelString(s.labelVals, ""), s.total.Load())
}

// writeExemplar appends bucket i's exemplar suffix, if recorded.
func (f *family) writeExemplar(b *strings.Builder, s *series, i int) {
	if i >= len(s.exemplars) {
		return
	}
	if ex := s.exemplars[i].Load(); ex != nil {
		fmt.Fprintf(b, ` # {trace_id="%s"} %s`, escapeLabel(ex.traceID), formatValue(ex.value))
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func (f *family) labelString(vals []string, le string) string {
	if len(vals) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l, escapeLabel(vals[i]))
	}
	if le != "" {
		if len(vals) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers
// without an exponent, specials as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline. The format is UTF-8, so everything else
// passes through verbatim (%q would over-escape non-ASCII).
func escapeLabel(v string) string {
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes help text (backslash and newline only, per format).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lessLabels orders label value tuples lexicographically.
func lessLabels(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

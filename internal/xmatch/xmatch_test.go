package xmatch

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
)

// makeField generates a deterministic local field and a workload queue
// whose objects are jittered copies of some locals (guaranteed matches)
// plus unrelated distant objects.
func makeField(seed int64, nLocal, nMatch, nMiss int, radiusArcsec float64) ([]catalog.Object, []WorkloadObject) {
	rng := rand.New(rand.NewSource(seed))
	center := geom.FromRaDec(rng.Float64()*360, rng.Float64()*120-60)
	locals := make([]catalog.Object, nLocal)
	for i := range locals {
		// Scatter within ~0.5 degree.
		p := jitter(rng, center, geom.Radians(0.5))
		locals[i] = catalog.Object{
			ID:    uint64(i),
			Pos:   p,
			HTMID: htm.Lookup(p, htm.PaperLevel),
			Mag:   14 + rng.Float64()*10,
		}
	}
	sortByHTM(locals)
	radius := geom.ArcsecToRad(radiusArcsec)
	var queue []WorkloadObject
	for i := 0; i < nMatch; i++ {
		base := locals[rng.Intn(len(locals))]
		p := jitter(rng, base.Pos, radius*0.8)
		remote := catalog.Object{ID: uint64(1000 + i), Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)}
		queue = append(queue, NewWorkloadObject(uint64(i%3), remote, radius))
	}
	for i := 0; i < nMiss; i++ {
		p := jitter(rng, center.Scale(-1).Normalize(), geom.Radians(1)) // antipode: no matches
		remote := catalog.Object{ID: uint64(5000 + i), Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)}
		queue = append(queue, NewWorkloadObject(uint64(i%3), remote, radius))
	}
	return locals, queue
}

func jitter(rng *rand.Rand, v geom.Vec3, maxRad float64) geom.Vec3 {
	return v.Add(geom.Vec3{
		X: rng.NormFloat64() * maxRad / 2,
		Y: rng.NormFloat64() * maxRad / 2,
		Z: rng.NormFloat64() * maxRad / 2,
	}).Normalize()
}

func sortByHTM(objs []catalog.Object) {
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objs[j-1].HTMID > objs[j].HTMID; j-- {
			objs[j-1], objs[j] = objs[j], objs[j-1]
		}
	}
}

func pairsEqual(a, b []Pair) bool {
	SortPairs(a)
	SortPairs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].QueryID != b[i].QueryID || a[i].Local.ID != b[i].Local.ID || a[i].Remote.ID != b[i].Remote.ID {
			return false
		}
	}
	return true
}

func TestNewWorkloadObjectBounds(t *testing.T) {
	p := geom.FromRaDec(123, 45)
	obj := catalog.Object{ID: 1, Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)}
	w := NewWorkloadObject(7, obj, geom.ArcsecToRad(5))
	if w.QueryID != 7 || w.MinID > w.MaxID {
		t.Fatalf("workload object malformed: %+v", w)
	}
	// The object's own trixel must fall inside the bounding range.
	if obj.HTMID < w.MinID || obj.HTMID > w.MaxID {
		t.Error("bounding range excludes the object's own trixel")
	}
	rs := w.Ranges()
	if len(rs) != 1 || rs[0].Start != w.MinID || rs[0].End != w.MaxID {
		t.Error("Ranges form")
	}
}

func TestNewWorkloadObjectZeroRadius(t *testing.T) {
	p := geom.FromRaDec(10, 10)
	obj := catalog.Object{ID: 1, Pos: p, HTMID: htm.Lookup(p, htm.PaperLevel)}
	w := NewWorkloadObject(1, obj, 0)
	if w.MinID > obj.HTMID || w.MaxID < obj.HTMID {
		t.Error("zero-radius bounds must include own trixel")
	}
}

func TestJoinsAgreeWithBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		locals, queue := makeField(seed, 300, 60, 20, 3)
		want := BruteForce(locals, queue, nil)
		if len(want) == 0 {
			t.Fatalf("seed %d: brute force found no matches; bad fixture", seed)
		}
		if got := MergeJoin(locals, queue, nil); !pairsEqual(got, want) {
			t.Errorf("seed %d: MergeJoin = %d pairs, brute force %d", seed, len(got), len(want))
		}
		if got := IndexJoin(locals, queue, nil); !pairsEqual(got, want) {
			t.Errorf("seed %d: IndexJoin = %d pairs, brute force %d", seed, len(got), len(want))
		}
	}
}

func TestJoinsEmptyInputs(t *testing.T) {
	locals, queue := makeField(1, 50, 10, 0, 3)
	if MergeJoin(nil, queue, nil) != nil || MergeJoin(locals, nil, nil) != nil {
		t.Error("MergeJoin with empty input should be nil")
	}
	if IndexJoin(nil, queue, nil) != nil || IndexJoin(locals, nil, nil) != nil {
		t.Error("IndexJoin with empty input should be nil")
	}
}

func TestMergeJoinDoesNotMutateQueue(t *testing.T) {
	locals, queue := makeField(2, 100, 20, 5, 3)
	before := make([]WorkloadObject, len(queue))
	copy(before, queue)
	MergeJoin(locals, queue, nil)
	if !reflect.DeepEqual(before, queue) {
		t.Error("MergeJoin reordered the caller's queue")
	}
}

func TestPredicatesApplied(t *testing.T) {
	locals, queue := makeField(3, 200, 50, 0, 3)
	all := BruteForce(locals, queue, nil)
	// Queries 0,1,2 are interleaved; restrict query 0 to bright locals.
	preds := map[uint64]Predicate{0: MagnitudeWindow(14, 16)}
	got := MergeJoin(locals, queue, preds)
	for _, p := range got {
		if p.QueryID == 0 && (p.Local.Mag < 14 || p.Local.Mag >= 16) {
			t.Fatalf("predicate violated: %v mag %v", p, p.Local.Mag)
		}
	}
	// Other queries unaffected.
	countQ1 := func(ps []Pair) int {
		n := 0
		for _, p := range ps {
			if p.QueryID == 1 {
				n++
			}
		}
		return n
	}
	if countQ1(got) != countQ1(all) {
		t.Error("predicate on query 0 changed query 1's results")
	}
	// Index join honors predicates identically.
	if got2 := IndexJoin(locals, queue, preds); !pairsEqual(got, got2) {
		t.Error("IndexJoin predicate handling differs from MergeJoin")
	}
}

func TestSeparationWithinRadius(t *testing.T) {
	locals, queue := makeField(4, 200, 40, 10, 2)
	for _, p := range MergeJoin(locals, queue, nil) {
		if p.SepRad > geom.ArcsecToRad(2)+geom.Epsilon {
			t.Fatalf("pair separation %v arcsec exceeds radius", geom.RadToArcsec(p.SepRad))
		}
	}
}

func TestChooseStrategy(t *testing.T) {
	// In-memory buckets always scan.
	if ChooseStrategy(1, 10000, 0.03, true) != Scan {
		t.Error("cached bucket must scan")
	}
	// Small queue: index. 3% of 10000 = 300.
	if ChooseStrategy(299, 10000, 0.03, false) != Index {
		t.Error("queue below threshold should use index")
	}
	if ChooseStrategy(300, 10000, 0.03, false) != Scan {
		t.Error("queue at threshold should scan")
	}
	// Default threshold kicks in for 0.
	if ChooseStrategy(299, 10000, 0, false) != Index {
		t.Error("default threshold")
	}
	// Empty bucket: scan (nothing to probe).
	if ChooseStrategy(10, 0, 0.03, false) != Scan {
		t.Error("empty bucket should scan")
	}
	if Scan.String() != "scan" || Index.String() != "index" {
		t.Error("Strategy strings")
	}
}

func TestPairString(t *testing.T) {
	locals, queue := makeField(5, 100, 10, 0, 3)
	ps := MergeJoin(locals, queue, nil)
	if len(ps) == 0 || ps[0].String() == "" {
		t.Error("Pair String")
	}
}

// Property: MergeJoin and IndexJoin agree with BruteForce on random
// fields of varying density and radius.
func TestQuickJoinEquivalence(t *testing.T) {
	f := func(seed int64, nl, nm uint8, r uint8) bool {
		locals, queue := makeField(seed, int(nl%100)+10, int(nm%30)+1, int(nm%10), float64(r%10)+0.5)
		want := BruteForce(locals, queue, nil)
		return pairsEqual(MergeJoin(locals, queue, nil), want) &&
			pairsEqual(IndexJoin(locals, queue, nil), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMergeJoin1kx300(b *testing.B) {
	locals, queue := makeField(1, 1000, 300, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeJoin(locals, queue, nil)
	}
}

func BenchmarkIndexJoin1kx30(b *testing.B) {
	locals, queue := makeField(1, 1000, 30, 0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IndexJoin(locals, queue, nil)
	}
}

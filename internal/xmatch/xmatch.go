// Package xmatch implements the probabilistic spatial join at the heart of
// SkyQuery's cross-match (paper §3): given a bucket of local catalog
// objects and a workload queue of objects shipped from remote archives,
// find all pairs within each remote object's positional-error radius and
// apply query-specific predicates.
//
// Three join strategies are provided, mirroring §3.4:
//
//   - MergeJoin: both inputs sorted by level-14 HTM ID are swept and
//     merged in one pass, the plane-sweep of Partition Based Spatial-Merge
//     Join adapted to the HTM curve. Used after a sequential bucket scan.
//   - IndexJoin: each workload object binary-searches the bucket's sorted
//     objects over its bounding ID range, standing in for probing the
//     database's spatial index. Used when the workload queue is small.
//   - BruteForce: the O(n·m) reference used by tests to verify both.
//
// All strategies return identical match sets; they differ only in I/O
// pattern (and therefore cost, which the engine charges via the disk
// model).
package xmatch

import (
	"fmt"
	"sort"

	"liferaft/internal/catalog"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
)

// WorkloadObject is one cross-match request: a remote archive object
// together with its bounding box of potential join regions (paper §3.1:
// "Included with each object is its mean cartesian coordinate and a range
// of HTM ID values"). It is the element of workload queues.
type WorkloadObject struct {
	// QueryID identifies the parent query.
	QueryID uint64
	// Obj is the remote object to be matched.
	Obj catalog.Object
	// Radius is the match radius in radians (instrument error circle).
	Radius float64
	// MinID and MaxID bound the level-14 HTM IDs of every possible
	// counterpart: the extremes of the cover of the error cap.
	MinID, MaxID htm.ID
}

// NewWorkloadObject builds a workload object for a remote object and match
// radius (radians), computing its bounding HTM ID range from the cover of
// the error cap.
func NewWorkloadObject(queryID uint64, obj catalog.Object, radius float64) WorkloadObject {
	cover := htm.CoverCap(geom.NewCap(obj.Pos, radius), htm.PaperLevel)
	w := WorkloadObject{QueryID: queryID, Obj: obj, Radius: radius}
	if len(cover) > 0 {
		w.MinID = cover[0].Start
		w.MaxID = cover[len(cover)-1].End
	} else {
		// A degenerate (zero-radius) cap still covers its own trixel.
		id := obj.HTMID
		w.MinID, w.MaxID = id, id
	}
	return w
}

// Ranges returns the bounding range as a one-element slice, the form
// BucketsForRanges consumes.
func (w WorkloadObject) Ranges() []htm.Range {
	return []htm.Range{{Start: w.MinID, End: w.MaxID}}
}

// Pair is one successful cross-match: a (local, remote) object pair within
// the remote object's error radius.
type Pair struct {
	QueryID uint64
	Local   catalog.Object
	Remote  catalog.Object
	// SepRad is the angular separation in radians.
	SepRad float64
}

// String implements fmt.Stringer.
func (p Pair) String() string {
	return fmt.Sprintf("q%d: local %d x remote %d (%.3f arcsec)",
		p.QueryID, p.Local.ID, p.Remote.ID, geom.RadToArcsec(p.SepRad))
}

// Predicate is a query-specific filter applied to pairs that succeed in
// the spatial join (paper §3.1: "query specific predicates are applied on
// the output tuples that succeed in the spatial join"). A nil Predicate
// accepts everything.
type Predicate func(local, remote catalog.Object) bool

// MagnitudeWindow returns a predicate accepting pairs whose local
// magnitude lies in [lo, hi), a typical cross-match photometric cut.
func MagnitudeWindow(lo, hi float64) Predicate {
	return func(local, _ catalog.Object) bool { return local.Mag >= lo && local.Mag < hi }
}

// verify appends the pair if the exact spherical distance and predicate
// accept it.
func verify(out []Pair, local catalog.Object, w WorkloadObject, pred Predicate) []Pair {
	sep := local.Pos.Angle(w.Obj.Pos)
	if sep > w.Radius+geom.Epsilon {
		return out
	}
	if pred != nil && !pred(local, w.Obj) {
		return out
	}
	return append(out, Pair{QueryID: w.QueryID, Local: local, Remote: w.Obj, SepRad: sep})
}

// MergeJoin cross-matches a bucket against a workload queue by a single
// simultaneous sweep of both inputs in HTM ID order. bucket must be sorted
// by HTMID (bucket stores materialize it that way); queue is sorted
// internally by MinID (the paper sorts the workload queue before the
// sweep). preds maps QueryID to that query's predicate; nil preds, or a
// missing entry, accepts all pairs.
//
// Complexity is O(n + m + candidates): the sweep maintains the set of
// workload intervals overlapping the current bucket object's ID, which
// stays tiny because error radii are arcseconds.
//
//lifevet:allow hotpath-alloc -- pair materialization runs only when Config.MaterializeResults is on; the zero-alloc probe pins the loop with materialization off
func MergeJoin(bucket []catalog.Object, queue []WorkloadObject, preds map[uint64]Predicate) []Pair {
	if len(bucket) == 0 || len(queue) == 0 {
		return nil
	}
	q := make([]WorkloadObject, len(queue))
	copy(q, queue)
	sort.Slice(q, func(i, j int) bool { return q[i].MinID < q[j].MinID })

	var out []Pair
	// active holds workload objects whose interval may still overlap
	// bucket objects at or beyond the sweep position, as a min-heap
	// substitute: since radii are uniform-ish and intervals short, a
	// slice with compaction is efficient and allocation-free.
	var active []WorkloadObject
	next := 0
	for _, local := range bucket {
		id := local.HTMID
		// Admit queue intervals starting at or before id.
		for next < len(q) && q[next].MinID <= id {
			active = append(active, q[next])
			next++
		}
		// Drop expired intervals and test the rest.
		w := 0
		for _, wo := range active {
			if wo.MaxID < id {
				continue // expired: compact away
			}
			active[w] = wo
			w++
			out = verify(out, local, wo, predFor(preds, wo.QueryID))
		}
		active = active[:w]
	}
	return out
}

// IndexJoin cross-matches by probing: for each workload object, the
// bucket's sorted objects are binary-searched over the object's bounding
// ID range and candidates are verified. This models an indexed join
// against the database's HTM index; the engine charges one sorted index
// probe per workload object.
//
//lifevet:allow hotpath-alloc -- pair materialization runs only when Config.MaterializeResults is on; the zero-alloc probe pins the loop with materialization off
func IndexJoin(bucket []catalog.Object, queue []WorkloadObject, preds map[uint64]Predicate) []Pair {
	if len(bucket) == 0 || len(queue) == 0 {
		return nil
	}
	var out []Pair
	for _, wo := range queue {
		lo := sort.Search(len(bucket), func(i int) bool { return bucket[i].HTMID >= wo.MinID })
		pred := predFor(preds, wo.QueryID)
		for i := lo; i < len(bucket) && bucket[i].HTMID <= wo.MaxID; i++ {
			out = verify(out, bucket[i], wo, pred)
		}
	}
	return out
}

// BruteForce is the O(n*m) reference join used to validate the other
// strategies.
func BruteForce(bucket []catalog.Object, queue []WorkloadObject, preds map[uint64]Predicate) []Pair {
	var out []Pair
	for _, local := range bucket {
		for _, wo := range queue {
			out = verify(out, local, wo, predFor(preds, wo.QueryID))
		}
	}
	return out
}

func predFor(preds map[uint64]Predicate, q uint64) Predicate {
	if preds == nil {
		return nil
	}
	return preds[q]
}

// Strategy selects the hybrid join plan of paper §3.4: an indexed join
// when the workload queue is smaller than threshold × bucket size, a
// sequential scan otherwise. The paper's measured break-even threshold is
// 3 % (Figure 2).
type Strategy int

// Join strategies.
const (
	// Scan reads the whole bucket sequentially and merge-joins.
	Scan Strategy = iota
	// Index probes the spatial index per workload object.
	Index
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == Index {
		return "index"
	}
	return "scan"
}

// DefaultThreshold is the paper's measured break-even queue-to-bucket
// ratio.
const DefaultThreshold = 0.03

// ChooseStrategy implements the hybrid decision. bucketInMemory short-
// circuits to Scan (merge over cached objects costs no I/O at all, so the
// index can never win).
func ChooseStrategy(queueLen, bucketLen int, threshold float64, bucketInMemory bool) Strategy {
	if bucketInMemory {
		return Scan
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if bucketLen > 0 && float64(queueLen) < threshold*float64(bucketLen) {
		return Index
	}
	return Scan
}

// SortPairs orders pairs deterministically (query, local, remote), making
// result comparisons in tests and federations stable.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].QueryID != ps[j].QueryID {
			return ps[i].QueryID < ps[j].QueryID
		}
		if ps[i].Local.ID != ps[j].Local.ID {
			return ps[i].Local.ID < ps[j].Local.ID
		}
		return ps[i].Remote.ID < ps[j].Remote.ID
	})
}

// Package exper regenerates every table and figure of the paper's
// evaluation (§5) plus the ablation studies DESIGN.md calls out. Each
// experiment returns a Table that prints the same rows or series the paper
// reports; cmd/skybench is the CLI front end and EXPERIMENTS.md records
// paper-versus-measured values.
package exper

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/geom"
	"liferaft/internal/workload"
)

// Scale sizes an experiment environment. The published evaluation ran on a
// 6 TB archive in 20,000 buckets of 10,000 objects; the shapes under study
// (sharing, contention, starvation) are preserved at much smaller scales
// as long as arrival rates are expressed relative to system capacity.
type Scale struct {
	Name string
	// LocalN is the local (SDSS) archive size in objects.
	LocalN int
	// RemoteFraction sizes the remote archive relative to the local one
	// (it re-observes the same sky; see catalog.NewDerived).
	RemoteFraction float64
	// GenLevel is the catalog materialization level.
	GenLevel int
	// ObjectsPerBucket partitions the local archive.
	ObjectsPerBucket int
	// NumQueries is the trace length (paper: 2,000).
	NumQueries int
	// CacheBuckets is the bucket cache capacity (paper: 20).
	CacheBuckets int
	// Materialize runs real joins; cost-only mode otherwise.
	Materialize bool
	// Shards runs every experiment's engine across K disk/worker
	// shards (core.Config.Shards); 0 or 1 is the paper's single disk.
	Shards int
	// Seed drives everything.
	Seed int64
}

// CI is the fast scale used by tests and benchmarks (~300 buckets,
// 600 queries; a full figure regenerates in well under a second).
func CI() Scale {
	return Scale{
		Name: "ci", LocalN: 120_000, RemoteFraction: 0.8, GenLevel: 4,
		ObjectsPerBucket: 400, NumQueries: 600, CacheBuckets: 20,
		Materialize: false, Seed: 42,
	}
}

// Mid is the scale EXPERIMENTS.md reports: the paper's 2,000-query trace
// over ~2,000 buckets; every figure regenerates in seconds.
func Mid() Scale {
	return Scale{
		Name: "mid", LocalN: 1_000_000, RemoteFraction: 0.8, GenLevel: 6,
		ObjectsPerBucket: 500, NumQueries: 2000, CacheBuckets: 20,
		Materialize: false, Seed: 42,
	}
}

// Paper approaches the published geometry: 20,000 buckets of 10,000
// objects and the 2,000-query trace. Expect minutes per figure.
func Paper() Scale {
	return Scale{
		Name: "paper", LocalN: 200_000_000, RemoteFraction: 0.5, GenLevel: 8,
		ObjectsPerBucket: 10_000, NumQueries: 2000, CacheBuckets: 20,
		Materialize: false, Seed: 42,
	}
}

// ScaleByName resolves "ci", "mid", or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "ci", "":
		return CI(), nil
	case "mid":
		return Mid(), nil
	case "paper":
		return Paper(), nil
	default:
		return Scale{}, fmt.Errorf("exper: unknown scale %q (ci|mid|paper)", name)
	}
}

// Env is a fully built experiment environment: archives, partition, trace,
// and pre-processed jobs, shared by all figures at one scale.
type Env struct {
	Scale  Scale
	Local  *catalog.Catalog
	Remote *catalog.Catalog
	Part   *bucket.Partition
	Trace  *workload.Trace
	Jobs   []core.Job

	capOnce sync.Once
	capQPS  float64
	capErr  error
}

// NewEnv builds the environment. Construction is the expensive step
// (catalog apportionment and workload materialization); every figure run
// afterwards reuses it.
func NewEnv(scale Scale) (*Env, error) {
	cacheTrixels := scale.LocalN <= 10_000_000 // keep paper-scale catalogs out of memory
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: scale.LocalN, Seed: scale.Seed, GenLevel: scale.GenLevel,
		CacheTrixels: cacheTrixels,
	})
	if err != nil {
		return nil, err
	}
	remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
		Name: "twomass", Seed: scale.Seed + 1, Fraction: scale.RemoteFraction,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: cacheTrixels,
	})
	if err != nil {
		return nil, err
	}
	part, err := bucket.NewPartition(local, scale.ObjectsPerBucket, 0)
	if err != nil {
		return nil, err
	}
	tcfg := workload.DefaultTraceConfig(scale.Seed)
	tcfg.NumQueries = scale.NumQueries
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.05, 1.0
	trace, err := workload.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	env := &Env{Scale: scale, Local: local, Remote: remote, Part: part, Trace: trace}
	for _, q := range trace.Queries {
		env.Jobs = append(env.Jobs, core.Job{
			ID:      q.ID,
			Objects: workload.Materialize(q, remote, tcfg.Seed),
			Pred:    q.Predicate(),
		})
	}
	return env, nil
}

// Config builds an engine config for this environment at the given α.
func (e *Env) Config(alpha float64) core.Config {
	cfg, _ := core.NewVirtual(e.Part, alpha, e.Scale.Materialize)
	cfg.CacheBuckets = e.Scale.CacheBuckets
	cfg.Shards = e.Scale.Shards
	return cfg
}

// SaturatedOffsets returns a uniform arrival stream at 1.25x system
// capacity — oversaturated so backlog grows (the regime of Figure 7), but
// still a continuous stream, so batches form and re-form the way they do
// in a live federation. (An all-at-once burst would degenerate to exactly
// one batch per bucket, erasing the ordering effects under study.)
func (e *Env) SaturatedOffsets() []time.Duration {
	cap, err := e.Capacity()
	if err != nil || cap <= 0 {
		cap = 1
	}
	interval := time.Duration(float64(time.Second) / (1.25 * cap))
	out := make([]time.Duration, len(e.Jobs))
	for i := range out {
		out[i] = time.Duration(i) * interval
	}
	return out
}

// PoissonOffsets returns Poisson arrivals at the given rate.
func (e *Env) PoissonOffsets(rate float64) []time.Duration {
	return workload.Poisson{RatePerSec: rate}.Offsets(len(e.Jobs), e.Scale.Seed+7)
}

// Capacity estimates the system's maximum query throughput: the greedy
// scheduler's completion rate when the entire trace is pending at once
// (pure batch mode, no arrival limit). Saturation levels are expressed as
// fractions of this capacity so experiments transfer across scales. The
// estimate is memoized.
func (e *Env) Capacity() (float64, error) {
	e.capOnce.Do(func() {
		offs := make([]time.Duration, len(e.Jobs))
		_, stats, err := core.Run(e.Config(0), e.Jobs, offs)
		if err != nil {
			e.capErr = err
			return
		}
		e.capQPS = stats.Throughput()
	})
	return e.capQPS, e.capErr
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table.
func (t Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

package exper

import (
	"fmt"
	"sort"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/disk"
	"liferaft/internal/metrics"
)

// respSummary summarizes response times in seconds.
func respSummary(results []core.Result) metrics.Summary {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = r.ResponseTime().Seconds()
	}
	return metrics.Summarize(xs)
}

// Fig2 regenerates Figure 2: the speed-up of a non-indexed sequential scan
// over an indexed join as a function of the workload-queue-to-bucket size
// ratio, for the paper's 10,000-object / 40 MB bucket geometry. The paper
// observes a break-even at ~3% of the bucket size and up to a twenty-fold
// gap at large queues.
func Fig2(_ *Env) Table {
	m := disk.SkyQuery()
	const bucketObjects = 10_000
	bucketBytes := int64(bucketObjects) * 4096 // 40 MB
	tb, tm := m.Calibrate(bucketBytes)

	t := Table{
		Title:  "Figure 2: scan vs. indexed join by workload queue ratio",
		Header: []string{"queue/bucket", "queue objs", "scan (s)", "index (s)", "scan speed-up"},
	}
	var breakEven float64
	prevRatio, prevSpeedup := 0.0, 0.0
	for _, ratio := range []float64{0.001, 0.002, 0.003, 0.005, 0.01, 0.02, 0.03, 0.05, 0.1, 0.2, 0.5, 1.0} {
		q := int(ratio * bucketObjects)
		if q < 1 {
			q = 1
		}
		scan := tb + time.Duration(q)*tm
		index := time.Duration(q)*m.SortedProbe() + time.Duration(q)*tm
		speedup := index.Seconds() / scan.Seconds()
		if breakEven == 0 && prevSpeedup < 1 && speedup >= 1 {
			// Interpolate the exact crossing between the two samples.
			frac := (1 - prevSpeedup) / (speedup - prevSpeedup)
			breakEven = prevRatio + frac*(ratio-prevRatio)
		}
		prevRatio, prevSpeedup = ratio, speedup
		t.Rows = append(t.Rows, []string{
			f3(ratio), fmt.Sprintf("%d", q),
			f3(scan.Seconds()), f3(index.Seconds()), f2(speedup),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("break-even at queue/bucket ≈ %s (paper: ~3%%)", pct(breakEven)),
		fmt.Sprintf("Tb=%v Tm=%v derived from the disk model (paper: 1.2s, 0.13ms)", tb, tm),
	)
	return t
}

// jobBuckets maps each job to the sorted distinct bucket indices its
// workload objects touch.
func (e *Env) jobBuckets() [][]int {
	out := make([][]int, len(e.Jobs))
	for i, j := range e.Jobs {
		seen := map[int]bool{}
		for _, wo := range j.Objects {
			for _, bi := range e.Part.BucketsForRanges(wo.Ranges()) {
				seen[bi] = true
			}
		}
		bs := make([]int, 0, len(seen))
		for b := range seen {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		out[i] = bs
	}
	return out
}

// Fig5 regenerates Figure 5: the top ten buckets by reuse, the queries
// touching them, and their temporal clustering. The paper reports the top
// ten buckets are accessed by 61% of queries and that overlapping queries
// are close in time.
func Fig5(env *Env) Table {
	jb := env.jobBuckets()
	touches := map[int][]int{} // bucket -> touching query numbers, ascending
	for q, bs := range jb {
		for _, b := range bs {
			touches[b] = append(touches[b], q)
		}
	}
	type bt struct {
		bucket int
		qs     []int
	}
	ranked := make([]bt, 0, len(touches))
	for b, qs := range touches {
		ranked = append(ranked, bt{b, qs})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if len(ranked[i].qs) != len(ranked[j].qs) {
			return len(ranked[i].qs) > len(ranked[j].qs)
		}
		return ranked[i].bucket < ranked[j].bucket
	})
	if len(ranked) > 10 {
		ranked = ranked[:10]
	}
	t := Table{
		Title:  "Figure 5: top ten buckets by reuse",
		Header: []string{"rank", "bucket", "queries", "first q", "last q", "median gap"},
	}
	inTop := map[int]bool{}
	for rank, e := range ranked {
		gaps := make([]float64, 0, len(e.qs)-1)
		for i := 1; i < len(e.qs); i++ {
			gaps = append(gaps, float64(e.qs[i]-e.qs[i-1]))
		}
		sort.Float64s(gaps)
		med := metrics.Percentile(gaps, 0.5)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rank+1), fmt.Sprintf("%d", e.bucket),
			fmt.Sprintf("%d", len(e.qs)),
			fmt.Sprintf("%d", e.qs[0]), fmt.Sprintf("%d", e.qs[len(e.qs)-1]),
			f2(med),
		})
		for _, q := range e.qs {
			inTop[q] = true
		}
	}
	frac := float64(len(inTop)) / float64(len(env.Jobs))
	t.Notes = append(t.Notes,
		fmt.Sprintf("top-10 buckets are accessed by %s of queries (paper: 61%%)", pct(frac)),
		"small median gaps show the temporal clustering the paper's scatter plot depicts")
	return t
}

// Fig6 regenerates Figure 6: the cumulative workload captured by the
// top-ranked buckets. The paper reports 2% of buckets capture 50% of the
// workload objects.
func Fig6(env *Env) Table {
	counts := make([]float64, env.Part.NumBuckets())
	for _, j := range env.Jobs {
		for _, wo := range j.Objects {
			for _, bi := range env.Part.BucketsForRanges(wo.Ranges()) {
				counts[bi]++
			}
		}
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	cum := metrics.CumulativeShare(counts)
	t := Table{
		Title:  "Figure 6: cumulative workload by bucket",
		Header: []string{"top buckets", "fraction of buckets", "share of workload"},
	}
	n := len(counts)
	for _, frac := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), pct(frac), pct(cum[k-1])})
	}
	rank50 := metrics.RankForShare(counts, 0.5)
	t.Notes = append(t.Notes,
		fmt.Sprintf("50%% of the workload sits in the top %d buckets = %s of all buckets (paper: 2%%)",
			rank50, pct(float64(rank50)/float64(n))),
		fmt.Sprintf("%d of %d buckets receive any workload", nonEmpty, n))
	return t
}

// AlgoResult is one scheduling algorithm's measured performance.
type AlgoResult struct {
	Name       string
	Throughput float64
	Resp       metrics.Summary
	Stats      core.RunStats
}

// runAlgorithms executes the Figure 7 algorithm sweep under the given
// arrival offsets.
func runAlgorithms(env *Env, offs []time.Duration) ([]AlgoResult, error) {
	var out []AlgoResult
	add := func(name string, res []core.Result, stats core.RunStats, err error) error {
		if err != nil {
			return fmt.Errorf("exper: %s: %w", name, err)
		}
		out = append(out, AlgoResult{Name: name, Throughput: stats.Throughput(), Resp: respSummary(res), Stats: stats})
		return nil
	}
	res, stats, err := core.RunNoShare(env.Config(0), env.Jobs, offs)
	if err := add("NoShare", res, stats, err); err != nil {
		return nil, err
	}
	for _, alpha := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		res, stats, err := core.Run(env.Config(alpha), env.Jobs, offs)
		if err := add(fmt.Sprintf("LifeRaft α=%.2f", alpha), res, stats, err); err != nil {
			return nil, err
		}
	}
	cfgRR := env.Config(0)
	cfgRR.Policy = core.PolicyRoundRobin
	res, stats, err = core.Run(cfgRR, env.Jobs, offs)
	if err := add("RR", res, stats, err); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig7 regenerates Figure 7: query throughput (a) and response time (b)
// across scheduling algorithms under a saturated arrival stream. The paper
// reports >2x throughput for the greedy scheduler over NoShare, RR on par
// with α=1, NoShare's response time worst of all, and greedy response time
// roughly twice the purely age-based scheduler's.
func Fig7(env *Env) (Table, error) {
	algos, err := runAlgorithms(env, env.SaturatedOffsets())
	if err != nil {
		return Table{}, err
	}
	baseResp := algos[0].Resp.Mean // NoShare
	t := Table{
		Title: "Figure 7: performance by scheduling algorithm",
		Header: []string{"algorithm", "throughput (q/s)", "mean resp (s)",
			"resp / NoShare", "resp CoV"},
	}
	var noShare, greedy float64
	for _, a := range algos {
		norm := 0.0
		if baseResp > 0 {
			norm = a.Resp.Mean / baseResp
		}
		t.Rows = append(t.Rows, []string{
			a.Name, f3(a.Throughput), f2(a.Resp.Mean), f2(norm), f2(a.Resp.CoV),
		})
		switch a.Name {
		case "NoShare":
			noShare = a.Throughput
		case "LifeRaft α=0.00":
			greedy = a.Throughput
		}
	}
	if noShare > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("greedy / NoShare throughput = %.2fx (paper: >2x)", greedy/noShare))
	}
	return t, nil
}

// GridPoint is one (saturation, α) cell of the Figure 8 sweep.
type GridPoint struct {
	Saturation float64 // queries/sec
	Alpha      float64
	Throughput float64
	RespMean   float64
}

// Fig8Grid sweeps arrival rate × age bias. Rates are chosen as the same
// fractions of system capacity the paper's 0.1–0.5 q/s represent relative
// to its ~0.4 q/s maximum, so the sweep transfers across scales.
func Fig8Grid(env *Env) ([]GridPoint, error) {
	capacity, err := env.Capacity()
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.25, 0.33, 0.42, 0.62, 1.25} // = paper's 0.1..0.5 over 0.4
	alphas := []float64{0, 0.25, 0.5, 0.75, 1.0}
	var grid []GridPoint
	for _, f := range fractions {
		rate := f * capacity
		offs := env.PoissonOffsets(rate)
		for _, a := range alphas {
			res, stats, err := core.Run(env.Config(a), env.Jobs, offs)
			if err != nil {
				return nil, err
			}
			grid = append(grid, GridPoint{
				Saturation: rate, Alpha: a,
				Throughput: stats.Throughput(), RespMean: respSummary(res).Mean,
			})
		}
	}
	return grid, nil
}

// Fig8 regenerates Figure 8: throughput (a) and response time (b) versus
// workload saturation for each α. The paper's findings: the throughput gap
// across α widens with saturation, while the response-time gap stays
// comparatively flat; raising α is progressively more attractive at lower
// saturation.
func Fig8(env *Env) (Table, []GridPoint, error) {
	grid, err := Fig8Grid(env)
	if err != nil {
		return Table{}, nil, err
	}
	t := Table{
		Title:  "Figure 8: parameter selection by workload saturation",
		Header: []string{"saturation (q/s)", "alpha", "throughput (q/s)", "mean resp (s)"},
	}
	for _, p := range grid {
		t.Rows = append(t.Rows, []string{f3(p.Saturation), f2(p.Alpha), f3(p.Throughput), f2(p.RespMean)})
	}
	// The §5.2 trade-off observation: moving α 0→1 at the lowest
	// saturation costs little throughput but cuts response time a lot.
	lo := grid[:5]
	dropT := 1 - lo[4].Throughput/lo[0].Throughput
	dropR := 1 - lo[4].RespMean/lo[0].RespMean
	t.Notes = append(t.Notes, fmt.Sprintf(
		"at the lowest saturation, α 0→1 sacrifices %s throughput for a %s response-time cut (paper: 7%% for 54%%)",
		pct(dropT), pct(dropR)))
	return t, grid, nil
}

// Fig4 regenerates Figure 4: normalized throughput/response trade-off
// curves at low and high saturation, and the α each curve selects under a
// 20% throughput tolerance (paper: α=1.0 at low saturation, α=0.25 at
// high).
func Fig4(env *Env, grid []GridPoint) (Table, error) {
	if grid == nil {
		var err error
		grid, err = Fig8Grid(env)
		if err != nil {
			return Table{}, err
		}
	}
	sats := map[float64]metrics.Curve{}
	var ordered []float64
	for _, p := range grid {
		if _, ok := sats[p.Saturation]; !ok {
			ordered = append(ordered, p.Saturation)
		}
		sats[p.Saturation] = append(sats[p.Saturation], metrics.TradeoffPoint{
			Alpha: p.Alpha, Throughput: p.Throughput, RespTime: p.RespMean,
		})
	}
	if len(ordered) < 2 {
		return Table{}, fmt.Errorf("exper: grid has %d saturations, need >= 2", len(ordered))
	}
	low, high := ordered[0], ordered[len(ordered)-1]
	t := Table{
		Title:  "Figure 4: trade-off curves by saturation (normalized)",
		Header: []string{"saturation", "alpha", "norm throughput", "norm resp"},
	}
	for _, s := range []float64{low, high} {
		label := "low"
		if s == high {
			label = "high"
		}
		for _, p := range sats[s].Normalized() {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%.3f q/s)", label, s), f2(p.Alpha), f2(p.Throughput), f2(p.RespTime),
			})
		}
		if pick, err := sats[s].PickAlpha(0.20); err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s saturation, 20%% tolerance selects α=%.2f (paper: %s)",
				label, pick.Alpha, map[string]string{"low": "1.0", "high": "0.25"}[label]))
		}
	}
	return t, nil
}

// IndexOnlyExp reproduces the §5 remark that SkyQuery's index-only
// evaluation is about seven times slower than even NoShare.
func IndexOnlyExp(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	_, ns, err := core.RunNoShare(env.Config(0), env.Jobs, offs)
	if err != nil {
		return Table{}, err
	}
	_, io, err := core.RunIndexOnly(env.Config(0), env.Jobs, offs)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "§5: index-only evaluation vs NoShare",
		Header: []string{"approach", "throughput (q/s)", "slowdown vs NoShare"},
		Rows: [][]string{
			{"NoShare", f3(ns.Throughput()), "1.00"},
			{"IndexOnly", f3(io.Throughput()), f2(ns.Throughput() / io.Throughput())},
		},
		Notes: []string{"paper: the index-exclusive approach is ~7x slower than NoShare"},
	}
	return t, nil
}

// CacheHitRates reproduces the §6 observation: 40% of requests serviced
// from the cache at α=0 versus 7% at α=1.
func CacheHitRates(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	t := Table{
		Title:  "§6: cache service rate by age bias",
		Header: []string{"alpha", "cache hit rate", "bucket reads"},
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1} {
		_, stats, err := core.Run(env.Config(alpha), env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			f2(alpha), pct(stats.Cache.HitRate()), fmt.Sprintf("%d", stats.Disk.SeqReads),
		})
	}
	t.Notes = append(t.Notes, "paper: 40% of requests serviced from cache at α=0, 7% at α=1")
	return t, nil
}

package exper

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envCI   *Env
	envErr  error
)

func ciEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		scale := CI()
		scale.NumQueries = 300 // trim for test speed; shapes unchanged
		envCI, envErr = NewEnv(scale)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envCI
}

func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q: %v", row, col, tab.Rows[row][col], err)
	}
	return x
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"ci", "mid", "paper", ""} {
		if _, err := ScaleByName(n); err != nil {
			t.Errorf("ScaleByName(%q): %v", n, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestEnvConstruction(t *testing.T) {
	env := ciEnv(t)
	if env.Part.NumBuckets() == 0 || len(env.Jobs) != 300 {
		t.Fatalf("env malformed: %d buckets, %d jobs", env.Part.NumBuckets(), len(env.Jobs))
	}
	nonEmpty := 0
	for _, j := range env.Jobs {
		if len(j.Objects) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(env.Jobs)*8/10 {
		t.Errorf("only %d of %d jobs carry workload", nonEmpty, len(env.Jobs))
	}
}

func TestFig2BreakEven(t *testing.T) {
	tab := Fig2(nil)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Speed-up must be monotone increasing and cross 1 near 3%.
	prev := 0.0
	var crossing float64
	for i := range tab.Rows {
		s := cell(t, tab, i, 4)
		if s < prev {
			t.Fatalf("speed-up not monotone at row %d", i)
		}
		if prev < 1 && s >= 1 {
			crossing = cell(t, tab, i, 0)
		}
		prev = s
	}
	if crossing < 0.01 || crossing > 0.06 {
		t.Errorf("break-even at ratio %v, want ~0.03 (paper: 3%%)", crossing)
	}
	// The large-queue end shows an order-of-magnitude gap (paper: ~20x).
	last := cell(t, tab, len(tab.Rows)-1, 4)
	if last < 8 {
		t.Errorf("ratio-1 speed-up %v, want >= 8 (paper: ~20x)", last)
	}
	if tab.String() == "" {
		t.Error("table renders empty")
	}
}

func TestFig5TopBucketCoverage(t *testing.T) {
	env := ciEnv(t)
	tab := Fig5(env)
	if len(tab.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(tab.Rows))
	}
	// Touch counts are ranked non-increasing.
	prev := cell(t, tab, 0, 2)
	for i := 1; i < len(tab.Rows); i++ {
		c := cell(t, tab, i, 2)
		if c > prev {
			t.Fatal("rows not ranked by reuse")
		}
		prev = c
	}
	// The coverage note must report a substantial fraction (paper: 61%).
	found := false
	for _, n := range tab.Notes {
		if i := strings.Index(n, "accessed by "); i >= 0 {
			found = true
			var v float64
			if _, err := fmt_sscan(n[i:], &v); err == nil && v < 40 {
				t.Errorf("top-10 coverage %v%%, want >= 40%%", v)
			}
		}
	}
	if !found {
		t.Error("coverage note missing")
	}
}

// fmt_sscan pulls the first float out of a note string.
func fmt_sscan(s string, v *float64) (int, error) {
	i := strings.IndexAny(s, "0123456789")
	if i < 0 {
		return 0, strconv.ErrSyntax
	}
	j := i
	for j < len(s) && (s[j] == '.' || (s[j] >= '0' && s[j] <= '9')) {
		j++
	}
	x, err := strconv.ParseFloat(s[i:j], 64)
	if err != nil {
		return 0, err
	}
	*v = x
	return 1, nil
}

func TestFig6HeavyTail(t *testing.T) {
	env := ciEnv(t)
	tab := Fig6(env)
	// Share is monotone in rank and the top 10% carries most workload.
	prev := 0.0
	for i := range tab.Rows {
		s := cell(t, tab, i, 2)
		if s < prev {
			t.Fatal("cumulative share not monotone")
		}
		prev = s
	}
	// Row for 10% of buckets:
	for i := range tab.Rows {
		if tab.Rows[i][1] == "10.0%" {
			if got := cell(t, tab, i, 2); got < 50 {
				t.Errorf("top 10%% of buckets carries %v%%, want >= 50%%", got)
			}
		}
	}
	if cell(t, tab, len(tab.Rows)-1, 2) < 99.9 {
		t.Error("full bucket set must carry 100% of workload")
	}
}

func TestFig7Shapes(t *testing.T) {
	env := ciEnv(t)
	tab, err := Fig7(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("want 7 algorithms, got %d", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	noShare, _ := strconv.ParseFloat(byName["NoShare"][1], 64)
	greedy, _ := strconv.ParseFloat(byName["LifeRaft α=0.00"][1], 64)
	aged, _ := strconv.ParseFloat(byName["LifeRaft α=1.00"][1], 64)
	rr, _ := strconv.ParseFloat(byName["RR"][1], 64)
	if greedy < 1.5*noShare {
		t.Errorf("greedy %.3f not >= 1.5x NoShare %.3f", greedy, noShare)
	}
	if greedy <= rr || greedy <= aged {
		t.Errorf("greedy %.3f should top RR %.3f and α=1 %.3f", greedy, rr, aged)
	}
	// RR lands in the neighborhood of α=1 (paper: similar).
	if rr > aged*1.6 || rr < aged*0.4 {
		t.Errorf("RR %.3f far from α=1 %.3f (paper: similar)", rr, aged)
	}
	// NoShare has the worst normalized response time (= 1.0, others < 1).
	for name, row := range byName {
		if name == "NoShare" {
			continue
		}
		norm, _ := strconv.ParseFloat(row[3], 64)
		if norm >= 1.0 {
			t.Errorf("%s response %.2fx NoShare, want < 1 (paper Fig 7b)", name, norm)
		}
	}
}

func TestFig8AndFig4(t *testing.T) {
	env := ciEnv(t)
	tab, grid, err := Fig8(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 25 || len(tab.Rows) != 25 {
		t.Fatalf("grid size %d, want 25", len(grid))
	}
	// Throughput rises with saturation for the greedy scheduler.
	var greedyT []float64
	for _, p := range grid {
		if p.Alpha == 0 {
			greedyT = append(greedyT, p.Throughput)
		}
	}
	if greedyT[len(greedyT)-1] <= greedyT[0] {
		t.Errorf("greedy throughput should rise with saturation: %v", greedyT)
	}
	// At the highest saturation the α-gap is material (paper: α=0 tops
	// α=1 by ~1.24x; CI scale compresses the gap — see EXPERIMENTS.md).
	last := grid[20:]
	if last[0].Throughput < 1.02*last[4].Throughput {
		t.Errorf("at high saturation α=0 (%.3f) should beat α=1 (%.3f)",
			last[0].Throughput, last[4].Throughput)
	}
	// And the gap must widen with saturation: at the lowest saturation
	// the schedulers are within noise of each other.
	lowGap := grid[0].Throughput / grid[4].Throughput
	highGap := last[0].Throughput / last[4].Throughput
	if highGap < lowGap {
		t.Errorf("throughput gap should widen with saturation: low %.3f high %.3f", lowGap, highGap)
	}

	tab4, err := Fig4(env, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab4.Rows) != 10 {
		t.Fatalf("Fig4 rows = %d, want 10", len(tab4.Rows))
	}
	// Normalized values are in (0, 1].
	for i := range tab4.Rows {
		for _, c := range []int{2, 3} {
			v := cell(t, tab4, i, c)
			if v <= 0 || v > 1.0001 {
				t.Fatalf("normalized value %v out of (0,1]", v)
			}
		}
	}
	// Fig4 also runs standalone (building its own grid).
	if _, err := Fig4(env, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexOnlySlowdown(t *testing.T) {
	env := ciEnv(t)
	tab, err := IndexOnlyExp(env)
	if err != nil {
		t.Fatal(err)
	}
	slowdown := cell(t, tab, 1, 2)
	if slowdown < 2 {
		t.Errorf("index-only slowdown %.2fx, want >= 2x (paper: ~7x)", slowdown)
	}
}

func TestCacheHitRatesShape(t *testing.T) {
	env := ciEnv(t)
	tab, err := CacheHitRates(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	greedy := cell(t, tab, 0, 1)
	aged := cell(t, tab, len(tab.Rows)-1, 1)
	if greedy <= aged {
		t.Errorf("α=0 hit rate %v%% should exceed α=1's %v%% (paper: 40%% vs 7%%)", greedy, aged)
	}
}

func TestAblations(t *testing.T) {
	env := ciEnv(t)
	if tab, err := AblationCachePolicy(env); err != nil || len(tab.Rows) != 3 {
		t.Errorf("cache policy ablation: %v", err)
	}
	if tab, err := AblationCacheSize(env); err != nil || len(tab.Rows) != 4 {
		t.Errorf("cache size ablation: %v", err)
	}
	if tab, err := AblationHybridThreshold(env); err != nil || len(tab.Rows) != 5 {
		t.Errorf("threshold ablation: %v", err)
	}
	if tab, err := AblationPolicy(env); err != nil || len(tab.Rows) != 3 {
		t.Errorf("policy ablation: %v", err)
	}
	qos, err := AblationQoS(env)
	if err != nil {
		t.Fatal(err)
	}
	// γ=4 must cut short-query response versus γ=0.
	if cell(t, qos, 2, 1) >= cell(t, qos, 0, 1) {
		t.Errorf("QoS γ=4 short resp %v should beat γ=0's %v", cell(t, qos, 2, 1), cell(t, qos, 0, 1))
	}
	ovf, err := AblationOverflow(env)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, ovf, 2, 2) == 0 {
		t.Error("tight cap should spill objects")
	}
	vs := AblationVSCAN(env)
	if len(vs.Rows) != 5 {
		t.Fatal("VSCAN rows")
	}
	// Seek grows and starvation shrinks as R rises.
	if cell(t, vs, 0, 1) > cell(t, vs, 4, 1) {
		t.Error("R=0 should have the smallest total seek")
	}
	if cell(t, vs, 0, 2) < cell(t, vs, 4, 2) {
		t.Error("R=0 should starve more than R=1")
	}
}

func TestCacheSizeMonotoneHitRate(t *testing.T) {
	env := ciEnv(t)
	tab, err := AblationCacheSize(env)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tab, 3, 2) <= cell(t, tab, 0, 2) {
		t.Errorf("80-bucket cache hit rate %v%% should exceed 1-bucket %v%%",
			cell(t, tab, 3, 2), cell(t, tab, 0, 2))
	}
}

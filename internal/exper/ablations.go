package exper

import (
	"fmt"
	"sort"
	"time"

	"liferaft/internal/cache"
	"liferaft/internal/core"
	"liferaft/internal/disk"
	"liferaft/internal/simclock"
)

// This file contains the ablation studies DESIGN.md calls out: design
// choices the paper fixes (LRU cache of 20 buckets, 3% hybrid threshold,
// most-contentious-first) swept to show why those choices hold, plus the
// §6 extensions (QoS age depreciation, workload overflow) and the VSCAN(R)
// analogy of §3.3.

// AblationCachePolicy sweeps the bucket cache replacement policy at α=0.
func AblationCachePolicy(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	t := Table{
		Title:  "Ablation: cache replacement policy (α=0)",
		Header: []string{"policy", "throughput (q/s)", "hit rate"},
	}
	for _, p := range []cache.PolicyName{cache.PolicyLRU, cache.PolicyClock, cache.PolicyTwoQueue} {
		cfg := env.Config(0)
		cfg.CachePolicy = p
		_, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{string(p), f3(stats.Throughput()), pct(stats.Cache.HitRate())})
	}
	t.Notes = append(t.Notes, "the paper fixes LRU; policies differ little because the scheduler itself creates the locality")
	return t, nil
}

// AblationCacheSize sweeps the bucket cache capacity at α=0 (the paper
// fixes 20 buckets).
func AblationCacheSize(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	t := Table{
		Title:  "Ablation: bucket cache capacity (α=0)",
		Header: []string{"buckets", "throughput (q/s)", "hit rate"},
	}
	for _, n := range []int{1, 5, 20, 80} {
		cfg := env.Config(0)
		cfg.CacheBuckets = n
		_, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f3(stats.Throughput()), pct(stats.Cache.HitRate())})
	}
	t.Notes = append(t.Notes, "a single-bucket cache is the Map-Reduce shared-scan analogue §6 contrasts against")
	return t, nil
}

// AblationHybridThreshold sweeps the indexed-join threshold around the
// paper's 3% break-even.
func AblationHybridThreshold(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	t := Table{
		Title:  "Ablation: hybrid join threshold (α=0.5)",
		Header: []string{"threshold", "throughput (q/s)", "scan services", "index services"},
	}
	for _, th := range []float64{0.003, 0.01, 0.03, 0.1, 0.3} {
		cfg := env.Config(0.5)
		cfg.HybridThreshold = th
		_, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			pct(th), f3(stats.Throughput()),
			fmt.Sprintf("%d", stats.ScanServices), fmt.Sprintf("%d", stats.IndexServices),
		})
	}
	return t, nil
}

// AblationPolicy compares most-contentious-first (LifeRaft α=0) with the
// least-sharable-first discipline of Agrawal et al. and round-robin — the
// §6 policy discussion.
func AblationPolicy(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	t := Table{
		Title:  "Ablation: batch policy (§6 discussion)",
		Header: []string{"policy", "throughput (q/s)", "mean resp (s)"},
	}
	run := func(name string, cfg core.Config) error {
		res, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, f3(stats.Throughput()), f2(respSummary(res).Mean)})
		return nil
	}
	if err := run("most-contentious (α=0)", env.Config(0)); err != nil {
		return Table{}, err
	}
	cfgLSF := env.Config(0)
	cfgLSF.Policy = core.PolicyLeastShared
	if err := run("least-sharable-first", cfgLSF); err != nil {
		return Table{}, err
	}
	cfgRR := env.Config(0)
	cfgRR.Policy = core.PolicyRoundRobin
	if err := run("round-robin", cfgRR); err != nil {
		return Table{}, err
	}
	t.Notes = append(t.Notes, "§6 predicts most-contentious-first wins on scientific workloads")
	return t, nil
}

// AblationQoS evaluates the §6 future-work extension: depreciating the age
// bias of long queries to protect interactive ones.
func AblationQoS(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	sizes := make([]int, len(env.Jobs))
	for i, j := range env.Jobs {
		sizes[i] = len(j.Objects)
	}
	med := medianInt(sizes)
	t := Table{
		Title:  "Extension: QoS age depreciation for long queries (α=0.75)",
		Header: []string{"gamma", "short resp (s)", "long resp (s)", "throughput (q/s)"},
	}
	for _, gamma := range []float64{0, 2, 4} {
		cfg := env.Config(0.75)
		cfg.AgeDepreciationGamma = gamma
		res, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		var short, long []float64
		for _, r := range res {
			rt := r.ResponseTime().Seconds()
			if len(env.Jobs[r.QueryID].Objects) <= med {
				short = append(short, rt)
			} else {
				long = append(long, rt)
			}
		}
		t.Rows = append(t.Rows, []string{
			f2(gamma), f2(mean(short)), f2(mean(long)), f3(stats.Throughput()),
		})
	}
	t.Notes = append(t.Notes, "γ>0 trades long-query latency for interactive-query latency at steady throughput")
	return t, nil
}

// AblationOverflow evaluates the §6 workload-overflow extension: bounding
// queue memory by spilling cold queues to disk.
func AblationOverflow(env *Env) (Table, error) {
	offs := env.SaturatedOffsets()
	// Find a cap that actually binds: half the peak in-memory queue
	// estimate (total assignments / 4 is a robust small cap).
	total := 0
	for _, j := range env.Jobs {
		total += len(j.Objects)
	}
	t := Table{
		Title:  "Extension: workload overflow to disk (α=0.5)",
		Header: []string{"memory cap (objs)", "throughput (q/s)", "spilled objs", "fetches"},
	}
	for _, cap := range []int{0, total / 4, total / 40} {
		cfg := env.Config(0.5)
		cfg.WorkloadMemoryCap = cap
		_, stats, err := core.Run(cfg, env.Jobs, offs)
		if err != nil {
			return Table{}, err
		}
		label := "unbounded"
		if cap > 0 {
			label = fmt.Sprintf("%d", cap)
		}
		t.Rows = append(t.Rows, []string{
			label, f3(stats.Throughput()),
			fmt.Sprintf("%d", stats.SpilledObjects), fmt.Sprintf("%d", stats.SpillFetches),
		})
	}
	t.Notes = append(t.Notes, "answers are unchanged under spilling; only I/O and timing shift")
	return t, nil
}

// AblationVSCAN demonstrates the §3.3 analogy quantitatively on the disk
// head scheduler that inspired Eq. 2: VSCAN(R) at R=0 minimizes total seek
// (high throughput, starvation-prone) and at R=1 approaches arrival order,
// exactly mirroring LifeRaft's α.
func AblationVSCAN(env *Env) Table {
	t := Table{
		Title:  "Analogy: VSCAN(R) disk-head scheduling (§3.3)",
		Header: []string{"R", "total seek (cyl)", "max wait (reqs serviced)"},
	}
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		seek, maxWait := runVSCAN(r, env.Scale.Seed)
		t.Rows = append(t.Rows, []string{f2(r), fmt.Sprintf("%d", seek), fmt.Sprintf("%d", maxWait)})
	}
	t.Notes = append(t.Notes, "R blends seek distance with request age as α blends contention with age (Eq. 2)")
	return t
}

// runVSCAN replays a fixed scattered request stream through VSCAN(R) and
// reports total seek distance plus the maximum number of other requests
// serviced while any single request waited (the starvation proxy).
func runVSCAN(r float64, seed int64) (totalSeek, maxWait int) {
	v := disk.NewVSCAN(r, 1000)
	now := simclock.Epoch
	// Deterministic scattered batch: two hot tracks plus a spread.
	id := 0
	for i := 0; i < 60; i++ {
		cyl := (i * 37) % 1000
		if i%3 != 0 {
			cyl = 100 + (i%2)*700 // clustered hot regions
		}
		v.Add(disk.Request{Cylinder: cyl, Arrived: now.Add(time.Duration(i) * time.Second), ID: id})
		id++
	}
	order := map[int]int{}
	prev := 0
	step := 0
	for {
		req, ok := v.Next(now.Add(2 * time.Minute))
		if !ok {
			break
		}
		d := req.Cylinder - prev
		if d < 0 {
			d = -d
		}
		totalSeek += d
		prev = req.Cylinder
		order[req.ID] = step
		step++
	}
	for idx, pos := range order {
		if wait := pos - idx; wait > maxWait {
			maxWait = wait
		}
	}
	return totalSeek, maxWait
}

func medianInt(xs []int) int {
	ys := make([]int, len(xs))
	copy(ys, xs)
	sort.Ints(ys)
	return ys[len(ys)/2]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

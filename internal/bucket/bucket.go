// Package bucket implements the equal-sized bucket partitioning of paper
// §3.1 (Figure 1) and the bucket store that serves them from the modeled
// disk.
//
// A partition divides a catalog's objects — already linearly ordered along
// the HTM space-filling curve — into consecutive buckets holding exactly
// the same number of objects (the last bucket may be short). Equal object
// counts give uniform I/O cost per bucket, the property the workload
// throughput metric (Eq. 1) relies on: every out-of-core bucket costs the
// same Tb. Each bucket also carries the contiguous level-14 HTM ID span it
// covers, so an incoming cross-match object's bounding ranges map to
// bucket indices by binary search.
package bucket

import (
	"fmt"
	"sort"
	"time"

	"liferaft/internal/catalog"
	"liferaft/internal/disk"
	"liferaft/internal/htm"
)

// DefaultObjectBytes reproduces the paper's bucket geometry: 10,000-object
// buckets of 40 MB are 4 KiB per object (SDSS photometric rows are wide).
const DefaultObjectBytes = 4096

// Bucket is one equal-sized partition of the catalog.
type Bucket struct {
	// Index is the bucket's position in HTM-curve order, 0-based.
	Index int
	// Lo and Hi delimit the global object ordinals [Lo, Hi).
	Lo, Hi int64
	// Span is the level-14 HTM ID range the bucket's objects fall in.
	// Spans of adjacent buckets may share a boundary trixel; the overlap
	// only widens the coarse filter (never loses a match).
	Span htm.Range
}

// Count returns the number of objects in the bucket.
func (b Bucket) Count() int { return int(b.Hi - b.Lo) }

// String implements fmt.Stringer.
func (b Bucket) String() string {
	return fmt.Sprintf("bucket %d: objects [%d,%d) span %v", b.Index, b.Lo, b.Hi, b.Span)
}

// Partition is an equal-sized bucketing of one catalog.
type Partition struct {
	cat         *catalog.Catalog
	perBucket   int
	objectBytes int64
	buckets     []Bucket
}

// NewPartition divides cat into buckets of exactly perBucket objects
// (the final bucket holds the remainder). objectBytes sets the on-disk
// size per object; pass 0 for DefaultObjectBytes.
func NewPartition(cat *catalog.Catalog, perBucket int, objectBytes int64) (*Partition, error) {
	if perBucket <= 0 {
		return nil, fmt.Errorf("bucket: perBucket %d must be positive", perBucket)
	}
	if objectBytes < 0 {
		return nil, fmt.Errorf("bucket: negative objectBytes %d", objectBytes)
	}
	if objectBytes == 0 {
		objectBytes = DefaultObjectBytes
	}
	total := int64(cat.Total())
	n := int((total + int64(perBucket) - 1) / int64(perBucket))
	p := &Partition{cat: cat, perBucket: perBucket, objectBytes: objectBytes}
	p.buckets = make([]Bucket, n)
	level := cat.GenLevel()
	for i := 0; i < n; i++ {
		lo := int64(i) * int64(perBucket)
		hi := lo + int64(perBucket)
		if hi > total {
			hi = total
		}
		first := cat.TrixelOf(lo)
		last := cat.TrixelOf(hi - 1)
		span := htm.Range{
			Start: htm.FromPos(first, level).RangeAtLevel(htm.PaperLevel).Start,
			End:   htm.FromPos(last, level).RangeAtLevel(htm.PaperLevel).End,
		}
		p.buckets[i] = Bucket{Index: i, Lo: lo, Hi: hi, Span: span}
	}
	return p, nil
}

// NumBuckets returns the number of buckets.
func (p *Partition) NumBuckets() int { return len(p.buckets) }

// Bucket returns bucket i.
func (p *Partition) Bucket(i int) Bucket { return p.buckets[i] }

// PerBucket returns the configured objects-per-bucket quota.
func (p *Partition) PerBucket() int { return p.perBucket }

// ObjectBytes returns the on-disk size per object. Segment files use it
// as their record stride, so the bytes a real read transfers equal the
// bytes the disk model charges for.
func (p *Partition) ObjectBytes() int64 { return p.objectBytes }

// BucketBytes returns the on-disk size of bucket i.
func (p *Partition) BucketBytes(i int) int64 {
	return int64(p.buckets[i].Count()) * p.objectBytes
}

// Catalog returns the underlying catalog.
func (p *Partition) Catalog() *catalog.Catalog { return p.cat }

// BucketsForRanges maps a sorted, merged list of level-14 HTM ranges (as
// produced by htm.CoverCap) to the indices of all buckets whose span
// overlaps any range. The result is sorted and duplicate-free.
func (p *Partition) BucketsForRanges(rs []htm.Range) []int {
	return p.AppendBucketsForRanges(nil, rs)
}

// AppendBucketsForRanges is BucketsForRanges into a caller-provided
// buffer: the overlapping bucket indices are appended to dst (normally
// dst[:0] of a reused slice) and the sorted, duplicate-free result
// returned. The scheduler's admission path uses this to avoid one slice
// allocation per workload object.
func (p *Partition) AppendBucketsForRanges(dst []int, rs []htm.Range) []int {
	out := dst
	base := len(out)
	n := len(p.buckets)
	for _, r := range rs {
		// First bucket whose span may overlap r: spans are ordered by
		// Start, so find the first bucket with Span.End >= r.Start.
		i := sort.Search(n, func(i int) bool { return p.buckets[i].Span.End >= r.Start })
		for ; i < n && p.buckets[i].Span.Start <= r.End; i++ {
			out = append(out, i)
		}
	}
	added := out[base:]
	if len(added) <= 1 {
		return out
	}
	sort.Ints(added)
	w := 1
	for i := 1; i < len(added); i++ {
		if added[i] != added[w-1] {
			added[w] = added[i]
			w++
		}
	}
	return out[:base+w]
}

// Materialize generates the objects of bucket i, sorted by HTM ID. The
// result is deterministic; it is what a sequential scan of the bucket
// returns.
func (p *Partition) Materialize(i int) []catalog.Object {
	b := p.buckets[i]
	return p.cat.Objects(b.Lo, b.Hi)
}

// Backend is a pluggable storage layer under a Store. The default
// (nil) backend is the analytic disk model: reads cost what the model
// says and objects come from the synthetic catalog. A non-nil backend
// performs real I/O — ReadBucket and Probe block for as long as the
// hardware takes — and the Store accounts the measured elapsed time to
// the disk's statistics instead of charging model cost to the clock.
// internal/segment provides the file-backed implementation.
type Backend interface {
	// ReadBucket returns bucket i's objects in HTM-curve order (nil in
	// cost-only mode) and the number of data bytes read.
	ReadBucket(i int) (objs []catalog.Object, bytesRead int64, err error)
	// Probe performs the I/O of n index probes into bucket i. In
	// materializing mode it returns the bucket's objects so the join
	// evaluator can probe them in memory, mirroring the simulated
	// store's contract.
	Probe(i, n int) (objs []catalog.Object, bytesRead int64, err error)
	// Fork opens an independent backend over the same data (fresh file
	// descriptors); each shard of a sharded engine gets its own.
	Fork() (Backend, error)
	// Close releases the backend's resources.
	Close() error
}

// Prefetcher is implemented by backends that can promote a bucket's
// storage region into a faster tier ahead of its service (the tiered
// segment backend). PrefetchBucket is asynchronous and best-effort: it
// returns true when a promotion was scheduled, false when the bucket is
// already resident, a promotion is pending, or the promotion budget is
// exhausted. Callers never depend on the promotion landing.
type Prefetcher interface {
	PrefetchBucket(i int) bool
}

// Prefetcher returns the store's backend as a Prefetcher when it is
// one, else nil — the scheduler's prefetch hook resolves its target
// through this.
func (s *Store) Prefetcher() Prefetcher {
	if p, ok := s.backend.(Prefetcher); ok {
		return p
	}
	return nil
}

// ReadKind tells a Store observer which access pattern a read used.
type ReadKind string

// Store read kinds.
const (
	// ReadScan: a full sequential scan of a bucket's data region.
	ReadScan ReadKind = "scan"
	// ReadProbe: index probes into a bucket's block run.
	ReadProbe ReadKind = "probe"
)

// Observer receives a callback per Store read — the hook the engine's
// metrics layer uses to export store/segment read latency and read
// errors without the Store depending on any metrics package. Observers
// must be safe for use from the single scheduling goroutine that owns
// the Store and must not block: they run on the service path.
type Observer interface {
	// ObserveRead reports one completed read: the access kind and its
	// elapsed cost — measured wall time on a real backend, modeled cost
	// on the simulated disk.
	ObserveRead(kind ReadKind, elapsed time.Duration)
	// ObserveReadError reports a failed backend read (checksum mismatch,
	// vanished file) just before the Store's fail-stop panic; it gives
	// the error a chance to reach a metrics scrape or log before the
	// process dies.
	ObserveReadError(kind ReadKind, err error)
}

// Store serves buckets from the modeled disk, charging sequential-scan
// cost for full bucket reads and sorted-probe cost for indexed access.
// The cache layer sits above the store (see the engine); every Store read
// is a real disk transfer.
type Store struct {
	part        *Partition
	dsk         *disk.Disk
	materialize bool
	// backend, when non-nil, replaces the modeled reads with real I/O
	// (see Backend). Read errors from a backend are fail-stop: a
	// checksum mismatch or vanished file panics rather than silently
	// serving wrong matches. DESIGN-segments.md discusses the trade.
	backend Backend
	// obs, when non-nil, is notified of every read; see Observer.
	obs Observer
}

// SetObserver attaches o to the store (nil detaches). The engine wires
// its per-shard metrics here; stores forked for shards each get their
// own observer.
func (s *Store) SetObserver(o Observer) { s.obs = o }

// NewStore builds a store over a partition. If materialize is false, reads
// charge I/O cost but return no objects — the cost-accurate mode used by
// paper-scale scheduling experiments (DESIGN.md §3).
func NewStore(part *Partition, d *disk.Disk, materialize bool) *Store {
	return &Store{part: part, dsk: d, materialize: materialize}
}

// Partition returns the store's partition.
func (s *Store) Partition() *Partition { return s.part }

// WithDisk returns a Store over the same partition, materialization
// mode, and backend that charges I/O to d. The sharded engine rebinds
// the configured store to each shard's own disk this way, so shards
// never contend for one modeled arm. A file-backed store's backend is
// shared by the copy; use Fork to give a shard its own descriptors.
func (s *Store) WithDisk(d *disk.Disk) *Store {
	return &Store{part: s.part, dsk: d, materialize: s.materialize, backend: s.backend}
}

// WithBackend returns a Store serving reads from b instead of the disk
// model (see Backend). The disk keeps accounting statistics — real
// reads record their measured elapsed time — so RunStats.Disk reports
// the same counters either way.
func (s *Store) WithBackend(b Backend) *Store {
	return &Store{part: s.part, dsk: s.dsk, materialize: s.materialize, backend: b}
}

// Backend returns the store's backend, nil for the simulated disk.
func (s *Store) Backend() Backend { return s.backend }

// Fork returns a Store charging I/O to d with its own backend instance:
// the sharding path, where every shard must own both its disk (modeled
// or accounted) and its file descriptors.
func (s *Store) Fork(d *disk.Disk) (*Store, error) {
	ns := s.WithDisk(d)
	if s.backend != nil {
		b, err := s.backend.Fork()
		if err != nil {
			return nil, err
		}
		ns.backend = b
	}
	return ns, nil
}

// Close releases the store's backend (segment file handles); a
// simulated store holds nothing and returns nil.
func (s *Store) Close() error {
	if s.backend != nil {
		return s.backend.Close()
	}
	return nil
}

// Materializing reports whether reads return objects.
func (s *Store) Materializing() bool { return s.materialize }

// ReadBucket performs a full sequential scan of bucket i, charging its
// disk cost — modeled cost on the simulated backend, measured elapsed
// time on a real one. The returned objects are nil in cost-only mode.
func (s *Store) ReadBucket(i int) ([]catalog.Object, time.Duration) {
	if s.backend != nil {
		start := time.Now()
		objs, n, err := s.backend.ReadBucket(i)
		if err != nil {
			if s.obs != nil {
				s.obs.ObserveReadError(ReadScan, err)
			}
			panic(fmt.Sprintf("bucket: backend scan of bucket %d: %v", i, err))
		}
		elapsed := time.Since(start)
		s.dsk.AccountSequential(n, elapsed)
		if s.obs != nil {
			s.obs.ObserveRead(ReadScan, elapsed)
		}
		return objs, elapsed
	}
	cost := s.dsk.ReadSequential(s.part.BucketBytes(i))
	if s.obs != nil {
		s.obs.ObserveRead(ReadScan, cost)
	}
	if !s.materialize {
		return nil, cost
	}
	return s.part.Materialize(i), cost
}

// Probe charges the cost of n index probes into bucket i (objects are
// located via the spatial index instead of a scan). In materializing mode
// it returns the bucket's objects so the caller can evaluate matches; the
// cost charged is the probe cost, not a scan.
func (s *Store) Probe(i, n int) ([]catalog.Object, time.Duration) {
	if s.backend != nil {
		start := time.Now()
		objs, _, err := s.backend.Probe(i, n)
		if err != nil {
			if s.obs != nil {
				s.obs.ObserveReadError(ReadProbe, err)
			}
			panic(fmt.Sprintf("bucket: backend probe of bucket %d: %v", i, err))
		}
		elapsed := time.Since(start)
		s.dsk.AccountProbes(n, elapsed)
		if s.obs != nil {
			s.obs.ObserveRead(ReadProbe, elapsed)
		}
		return objs, elapsed
	}
	cost := s.dsk.ReadProbes(n)
	if s.obs != nil {
		s.obs.ObserveRead(ReadProbe, cost)
	}
	if !s.materialize {
		return nil, cost
	}
	return s.part.Materialize(i), cost
}
